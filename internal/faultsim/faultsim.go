// Package faultsim generates deterministic, seeded node-failure scenarios
// for the resilient solver — the workload axis the paper leaves open. The
// paper's framework injects a single failure event at a marked iteration;
// its conclusions about checkpoint intervals and overheads become actionable
// only under realistic failure *processes*: repeated, clustered, and
// correlated node losses over a long solve.
//
// A Scenario describes such a process — a fixed schedule, or per-node
// exponential/Weibull inter-arrival draws (MTBF-parameterized, in units of
// solver iterations) with optional correlated group failures (a "blade" of
// adjacent ranks dying together) — and Compile turns it into the ordered
// event list []core.FailureSpec that core.Config.Failures consumes. The same
// seed always compiles to the same events, so whole experiment campaigns are
// bitwise reproducible.
package faultsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"esrp/internal/core"
)

// Model selects the inter-arrival process of a scenario.
type Model int

// Available failure-process models.
const (
	// ModelFixed replays an explicit schedule (Scenario.Schedule) verbatim,
	// after validation — the multi-event generalization of the paper's
	// marked-iteration injection.
	ModelFixed Model = iota
	// ModelExponential draws each node's failure times from a Poisson
	// process: i.i.d. exponential inter-arrivals with mean MTBF iterations.
	// Memoryless — the classic cluster-failure assumption behind the
	// Young/Daly checkpoint models the paper cites.
	ModelExponential
	// ModelWeibull draws i.i.d. Weibull inter-arrivals with mean MTBF and
	// shape k (Shape < 1: infant-mortality clustering, failures bunch early
	// after each repair; Shape > 1: wear-out, hazard grows with uptime;
	// Shape = 1 reduces to ModelExponential).
	ModelWeibull
)

// String returns the model's CLI name.
func (m Model) String() string {
	switch m {
	case ModelFixed:
		return "fixed"
	case ModelExponential:
		return "exp"
	case ModelWeibull:
		return "weibull"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel converts a CLI name to a Model.
func ParseModel(s string) (Model, error) {
	switch strings.ToLower(s) {
	case "fixed", "schedule":
		return ModelFixed, nil
	case "exp", "exponential", "poisson":
		return ModelExponential, nil
	case "weibull":
		return ModelWeibull, nil
	}
	return ModelFixed, fmt.Errorf("faultsim: unknown model %q", s)
}

// Scenario describes one failure process. The zero value is not valid; at
// minimum Nodes, Horizon and (for the stochastic models) MTBF must be set.
type Scenario struct {
	Model Model
	Nodes int // cluster size the failed ranks are drawn from

	// Horizon is the last iteration (inclusive) at which failures may
	// strike; events are generated in [1, Horizon]. Iteration 0 is excluded
	// so every scenario leaves the bootstrap iteration intact.
	Horizon int

	// MTBF is the per-node mean number of iterations between failures
	// (stochastic models). The cluster-level failure rate is Nodes/MTBF.
	MTBF float64

	// Shape is the Weibull shape parameter k (ModelWeibull only). Zero
	// means unset and defaults to 1, which reduces to the exponential
	// process; negative values are rejected.
	Shape float64

	// GroupSize > 1 enables correlated group failures: ranks are tiled into
	// aligned blades of GroupSize adjacent ranks (sharing a power supply,
	// chassis, or switch), and a failing node takes its whole blade down
	// with probability GroupProb.
	GroupSize int
	// GroupProb is the probability that an arrival escalates to its full
	// blade (default 0; ignored when GroupSize ≤ 1).
	GroupProb float64

	// MaxEvents caps the compiled event count (0 = no cap).
	MaxEvents int

	Seed int64 // RNG seed; same seed ⇒ identical compiled events

	// Schedule is the explicit event list for ModelFixed.
	Schedule []core.FailureSpec
}

// validate checks the scenario parameters.
func (s Scenario) validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("faultsim: need at least 2 nodes, got %d", s.Nodes)
	}
	if s.Model == ModelFixed {
		if len(s.Schedule) == 0 {
			return fmt.Errorf("faultsim: fixed model without a schedule")
		}
		return nil
	}
	if s.Horizon < 1 {
		return fmt.Errorf("faultsim: horizon must be ≥ 1 iteration, got %d", s.Horizon)
	}
	if s.MTBF <= 0 {
		return fmt.Errorf("faultsim: MTBF must be positive (iterations), got %g", s.MTBF)
	}
	if s.Model == ModelWeibull && s.Shape < 0 {
		return fmt.Errorf("faultsim: Weibull shape must be positive (or 0 for the default of 1), got %g", s.Shape)
	}
	if s.GroupSize < 0 || s.GroupSize >= s.Nodes {
		return fmt.Errorf("faultsim: group size must be in [0,%d), got %d", s.Nodes, s.GroupSize)
	}
	if s.GroupProb < 0 || s.GroupProb > 1 {
		return fmt.Errorf("faultsim: group probability must be in [0,1], got %g", s.GroupProb)
	}
	if s.MaxEvents < 0 {
		return fmt.Errorf("faultsim: MaxEvents must be ≥ 0, got %d", s.MaxEvents)
	}
	return nil
}

// MaxPsi returns the largest simultaneous-failure width the scenario can
// produce — what core.Config.Phi must cover for every event to be
// recoverable by redundancy.
func (s Scenario) MaxPsi() int {
	if s.Model == ModelFixed {
		psi := 0
		for _, ev := range s.Schedule {
			psi = max(psi, len(ev.Ranks))
		}
		return psi
	}
	if s.GroupSize > 1 && s.GroupProb > 0 {
		return s.GroupSize
	}
	return 1
}

// String describes the process for logs and reports. The seed is appended
// only when set: sweeps that override it per run (e.g. campaign grids)
// describe the process once, with the seed list reported separately.
func (s Scenario) String() string {
	var desc string
	switch s.Model {
	case ModelFixed:
		return fmt.Sprintf("fixed schedule, %d events", len(s.Schedule))
	case ModelWeibull:
		desc = fmt.Sprintf("weibull(MTBF=%g it/node, k=%g), horizon %d, groups %d@%.2f",
			s.MTBF, s.shape(), s.Horizon, s.GroupSize, s.GroupProb)
	default:
		desc = fmt.Sprintf("exponential(MTBF=%g it/node), horizon %d, groups %d@%.2f",
			s.MTBF, s.Horizon, s.GroupSize, s.GroupProb)
	}
	if s.Seed != 0 {
		desc += fmt.Sprintf(", seed %d", s.Seed)
	}
	return desc
}

func (s Scenario) shape() float64 {
	if s.Model == ModelWeibull && s.Shape > 0 {
		return s.Shape
	}
	return 1
}

// arrival is one raw per-node failure draw before event folding.
type arrival struct {
	time float64 // continuous time in iterations
	rank int
}

// Compile turns the scenario into the ordered event list core consumes:
// events at strictly increasing iterations ≥ 1, each with a contiguous
// ascending rank block. Compilation is deterministic in the scenario value
// (same seed ⇒ identical slice).
func (s Scenario) Compile() ([]core.FailureSpec, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.Model == ModelFixed {
		return s.compileFixed()
	}

	rng := rand.New(rand.NewSource(s.Seed))
	// Weibull scale λ chosen so the mean inter-arrival is MTBF:
	// E = λ·Γ(1+1/k). For k = 1 (and the exponential model) λ = MTBF.
	k := s.shape()
	scale := s.MTBF / math.Gamma(1+1/k)

	// Per-node renewal processes, nodes in rank order so the draw sequence
	// is reproducible.
	var arrivals []arrival
	for rank := 0; rank < s.Nodes; rank++ {
		t := 0.0
		for {
			u := rng.Float64()
			dt := scale * math.Pow(-math.Log(1-u), 1/k)
			t += dt
			if t > float64(s.Horizon) {
				break
			}
			arrivals = append(arrivals, arrival{time: t, rank: rank})
		}
	}
	sort.Slice(arrivals, func(i, j int) bool {
		if arrivals[i].time != arrivals[j].time {
			return arrivals[i].time < arrivals[j].time
		}
		return arrivals[i].rank < arrivals[j].rank
	})

	// Fold arrivals into the event timeline: map continuous times to
	// iterations, push forward to keep iterations strictly increasing (the
	// core contract), and escalate to the blade on the correlation draw.
	var events []core.FailureSpec
	prevIter := 0
	for _, a := range arrivals {
		if s.MaxEvents > 0 && len(events) >= s.MaxEvents {
			break
		}
		iter := max(int(a.time), prevIter+1)
		if iter > s.Horizon {
			break
		}
		ranks := []int{a.rank}
		if s.GroupSize > 1 && rng.Float64() < s.GroupProb {
			ranks = blade(a.rank, s.GroupSize, s.Nodes)
		}
		events = append(events, core.FailureSpec{Iteration: iter, Ranks: ranks})
		prevIter = iter
	}
	return events, nil
}

// compileFixed validates and normalizes the explicit schedule: events are
// sorted by iteration and must satisfy the same contract as the generated
// timelines.
func (s Scenario) compileFixed() ([]core.FailureSpec, error) {
	events := make([]core.FailureSpec, len(s.Schedule))
	for i, ev := range s.Schedule {
		events[i] = core.FailureSpec{
			Iteration: ev.Iteration,
			Ranks:     append([]int(nil), ev.Ranks...),
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Iteration < events[j].Iteration })
	for i, ev := range events {
		if ev.Iteration < 1 {
			return nil, fmt.Errorf("faultsim: event %d at iteration %d: scenarios start at iteration 1", i, ev.Iteration)
		}
		if i > 0 && ev.Iteration == events[i-1].Iteration {
			return nil, fmt.Errorf("faultsim: two events at iteration %d; merge their ranks or stagger them", ev.Iteration)
		}
		if len(ev.Ranks) == 0 {
			return nil, fmt.Errorf("faultsim: event %d has no ranks", i)
		}
		for k, r := range ev.Ranks {
			if r < 0 || r >= s.Nodes {
				return nil, fmt.Errorf("faultsim: event %d rank %d out of range [0,%d)", i, r, s.Nodes)
			}
			if k > 0 && r != ev.Ranks[k-1]+1 {
				return nil, fmt.Errorf("faultsim: event %d ranks %v are not a contiguous ascending block", i, ev.Ranks)
			}
		}
		if len(ev.Ranks) >= s.Nodes {
			return nil, fmt.Errorf("faultsim: event %d kills all %d nodes", i, s.Nodes)
		}
	}
	return events, nil
}

// blade returns the aligned group of width g containing rank r, clipped to
// the cluster — the correlated-failure unit (ranks sharing a chassis).
// validate() guarantees g < nodes, so a blade never covers the whole
// cluster.
func blade(r, g, nodes int) []int {
	lo := (r / g) * g
	hi := min(lo+g, nodes)
	ranks := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		ranks = append(ranks, i)
	}
	return ranks
}

// ParseSchedule reads the CLI form of a fixed schedule —
// "iter:r0-r1;iter:r0;..." (e.g. "20:2-3;50:5" = ranks {2,3} fail at
// iteration 20, rank 5 at iteration 50) — into an event list for
// Scenario.Schedule. Validation beyond syntax happens in Compile.
func ParseSchedule(s string) ([]core.FailureSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("faultsim: empty schedule")
	}
	var out []core.FailureSpec
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		iterRanks := strings.SplitN(part, ":", 2)
		if len(iterRanks) != 2 {
			return nil, fmt.Errorf("faultsim: event %q is not iter:ranks", part)
		}
		iter, err := strconv.Atoi(strings.TrimSpace(iterRanks[0]))
		if err != nil {
			return nil, fmt.Errorf("faultsim: event %q: bad iteration: %w", part, err)
		}
		var ranks []int
		if lohi := strings.SplitN(iterRanks[1], "-", 2); len(lohi) == 2 {
			lo, err1 := strconv.Atoi(strings.TrimSpace(lohi[0]))
			hi, err2 := strconv.Atoi(strings.TrimSpace(lohi[1]))
			if err1 != nil || err2 != nil || hi < lo {
				return nil, fmt.Errorf("faultsim: event %q: bad rank range", part)
			}
			for r := lo; r <= hi; r++ {
				ranks = append(ranks, r)
			}
		} else {
			r, err := strconv.Atoi(strings.TrimSpace(iterRanks[1]))
			if err != nil {
				return nil, fmt.Errorf("faultsim: event %q: bad rank: %w", part, err)
			}
			ranks = []int{r}
		}
		out = append(out, core.FailureSpec{Iteration: iter, Ranks: ranks})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faultsim: empty schedule")
	}
	return out, nil
}

// Describe renders a compiled timeline for logs: one line per event.
func Describe(events []core.FailureSpec) string {
	if len(events) == 0 {
		return "no failure events"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d failure events:\n", len(events))
	for i, ev := range events {
		fmt.Fprintf(&b, "  event %d: iteration %d, ranks %v\n", i, ev.Iteration, ev.Ranks)
	}
	return b.String()
}
