package faultsim

import (
	"reflect"
	"testing"

	"esrp/internal/core"
)

// checkTimeline asserts the core contract every compiled scenario must meet:
// strictly increasing iterations ≥ 1, contiguous ascending in-range rank
// blocks, never the whole cluster.
func checkTimeline(t *testing.T, events []core.FailureSpec, nodes, horizon int) {
	t.Helper()
	prev := 0
	for i, ev := range events {
		if ev.Iteration < 1 || ev.Iteration > horizon {
			t.Errorf("event %d iteration %d outside [1,%d]", i, ev.Iteration, horizon)
		}
		if i > 0 && ev.Iteration <= prev {
			t.Errorf("event %d iteration %d not after %d", i, ev.Iteration, prev)
		}
		prev = ev.Iteration
		if len(ev.Ranks) == 0 || len(ev.Ranks) >= nodes {
			t.Errorf("event %d has %d ranks on %d nodes", i, len(ev.Ranks), nodes)
		}
		for k, r := range ev.Ranks {
			if r < 0 || r >= nodes {
				t.Errorf("event %d rank %d out of range", i, r)
			}
			if k > 0 && r != ev.Ranks[k-1]+1 {
				t.Errorf("event %d ranks %v not contiguous", i, ev.Ranks)
			}
		}
	}
}

func TestExponentialDeterministic(t *testing.T) {
	sc := Scenario{Model: ModelExponential, Nodes: 16, Horizon: 400, MTBF: 900, Seed: 42}
	a, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed compiled differently:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("expected at least one event (16 nodes, horizon 400, MTBF 900)")
	}
	checkTimeline(t, a, sc.Nodes, sc.Horizon)

	sc.Seed = 43
	c, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical timelines")
	}
}

func TestMTBFScalesEventCount(t *testing.T) {
	count := func(mtbf float64) int {
		// Average over seeds so the comparison is about the process rate,
		// not one draw.
		total := 0
		for seed := int64(0); seed < 10; seed++ {
			sc := Scenario{Model: ModelExponential, Nodes: 32, Horizon: 1000, MTBF: mtbf, Seed: seed}
			ev, err := sc.Compile()
			if err != nil {
				t.Fatal(err)
			}
			total += len(ev)
		}
		return total
	}
	frequent, rare := count(2000), count(20000)
	if frequent <= rare {
		t.Fatalf("MTBF 2000 produced %d events, MTBF 20000 produced %d; expected more failures at the shorter MTBF", frequent, rare)
	}
}

func TestWeibullShapes(t *testing.T) {
	for _, shape := range []float64{0.5, 1.0, 3.0} {
		sc := Scenario{Model: ModelWeibull, Nodes: 16, Horizon: 500, MTBF: 700, Shape: shape, Seed: 7}
		ev, err := sc.Compile()
		if err != nil {
			t.Fatalf("shape %g: %v", shape, err)
		}
		checkTimeline(t, ev, sc.Nodes, sc.Horizon)
	}
}

func TestCorrelatedGroups(t *testing.T) {
	sc := Scenario{
		Model: ModelExponential, Nodes: 16, Horizon: 2000, MTBF: 2000,
		GroupSize: 4, GroupProb: 1, Seed: 3,
	}
	ev, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) == 0 {
		t.Fatal("expected events")
	}
	checkTimeline(t, ev, sc.Nodes, sc.Horizon)
	sawBlade := false
	for _, e := range ev {
		if len(e.Ranks) == 4 && e.Ranks[0]%4 == 0 {
			sawBlade = true
		}
	}
	if !sawBlade {
		t.Fatalf("GroupProb=1 produced no aligned 4-wide blade: %v", ev)
	}
	if sc.MaxPsi() != 4 {
		t.Fatalf("MaxPsi = %d, want 4", sc.MaxPsi())
	}
}

func TestMaxEventsCap(t *testing.T) {
	sc := Scenario{Model: ModelExponential, Nodes: 32, Horizon: 5000, MTBF: 100, MaxEvents: 3, Seed: 1}
	ev, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 3 {
		t.Fatalf("cap 3 yielded %d events", len(ev))
	}
}

func TestFixedScheduleValidation(t *testing.T) {
	ok := Scenario{Model: ModelFixed, Nodes: 8, Schedule: []core.FailureSpec{
		{Iteration: 30, Ranks: []int{2, 3}},
		{Iteration: 10, Ranks: []int{5}},
	}}
	ev, err := ok.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if ev[0].Iteration != 10 || ev[1].Iteration != 30 {
		t.Fatalf("schedule not sorted: %v", ev)
	}
	checkTimeline(t, ev, 8, 30)

	bad := []Scenario{
		{Model: ModelFixed, Nodes: 8}, // no schedule
		{Model: ModelFixed, Nodes: 8, Schedule: []core.FailureSpec{{Iteration: 0, Ranks: []int{1}}}},                                  // iteration 0
		{Model: ModelFixed, Nodes: 8, Schedule: []core.FailureSpec{{Iteration: 5, Ranks: []int{9}}}},                                  // out of range
		{Model: ModelFixed, Nodes: 8, Schedule: []core.FailureSpec{{Iteration: 5, Ranks: []int{1, 3}}}},                               // gap
		{Model: ModelFixed, Nodes: 8, Schedule: []core.FailureSpec{{Iteration: 5, Ranks: []int{1}}, {Iteration: 5, Ranks: []int{2}}}}, // same iter
		{Model: ModelFixed, Nodes: 4, Schedule: []core.FailureSpec{{Iteration: 5, Ranks: []int{0, 1, 2, 3}}}},                         // whole cluster
	}
	for i, sc := range bad {
		if _, err := sc.Compile(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestScenarioParamValidation(t *testing.T) {
	bad := []Scenario{
		{Model: ModelExponential, Nodes: 1, Horizon: 10, MTBF: 5},                // too few nodes
		{Model: ModelExponential, Nodes: 8, Horizon: 0, MTBF: 5},                 // no horizon
		{Model: ModelExponential, Nodes: 8, Horizon: 10, MTBF: 0},                // no MTBF
		{Model: ModelWeibull, Nodes: 8, Horizon: 10, MTBF: 5, Shape: -1},         // bad shape
		{Model: ModelExponential, Nodes: 8, Horizon: 10, MTBF: 5, GroupSize: 8},  // blade = cluster
		{Model: ModelExponential, Nodes: 8, Horizon: 10, MTBF: 5, GroupProb: 2},  // bad prob
		{Model: ModelExponential, Nodes: 8, Horizon: 10, MTBF: 5, MaxEvents: -1}, // bad cap
	}
	for i, sc := range bad {
		if _, err := sc.Compile(); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}

func TestParseModel(t *testing.T) {
	for name, want := range map[string]Model{
		"fixed": ModelFixed, "exp": ModelExponential, "poisson": ModelExponential, "weibull": ModelWeibull,
	} {
		got, err := ParseModel(name)
		if err != nil || got != want {
			t.Errorf("ParseModel(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseModel("nope"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestDescribe(t *testing.T) {
	if got := Describe(nil); got != "no failure events" {
		t.Errorf("Describe(nil) = %q", got)
	}
	ev := []core.FailureSpec{{Iteration: 10, Ranks: []int{1, 2}}}
	if got := Describe(ev); got == "" {
		t.Error("empty description")
	}
}
