package hostobs

import (
	"strconv"

	"esrp/internal/obs"
)

// BuildTrace converts the recorder into an obs.HostTrace: one thread per
// campaign worker, one "X" span per solved cell (named by the label
// callback, typically "matrix/strategy T=.. φ=..") and per successful
// steal. The phase arg distinguishes affinity-hit cells ("affinity") from
// context-switch cells ("cold"); steal spans carry the cells moved in the
// iter arg. Returns nil on a nil recorder.
func (r *CampaignRecorder) BuildTrace(process string, build obs.BuildInfo, label func(index int) (name, cat string)) *obs.HostTrace {
	if r == nil {
		return nil
	}
	t := &obs.HostTrace{
		Process:     process,
		WallSeconds: float64(r.WallNs()) / 1e9,
		Build:       build,
		Threads:     make([]obs.HostThread, len(r.workers)),
	}
	for w := range r.workers {
		wl := &r.workers[w]
		th := &t.Threads[w]
		th.Name = "worker " + strconv.Itoa(w)
		th.Spans = make([]obs.HostSpan, 0, len(wl.spans))
		for _, s := range wl.spans {
			hs := obs.HostSpan{
				Start: float64(s.startNs) / 1e9,
				End:   float64(s.endNs) / 1e9,
				Iter:  s.index,
			}
			switch s.kind {
			case spanCell:
				hs.Name, hs.Cat = label(s.index)
				if s.affinity {
					hs.Phase = "affinity"
				} else {
					hs.Phase = "cold"
				}
			case spanSteal:
				hs.Name, hs.Cat = "steal", "sched"
				hs.Phase = "steal"
			}
			th.Spans = append(th.Spans, hs)
		}
	}
	return t
}
