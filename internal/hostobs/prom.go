package hostobs

import (
	"fmt"
	"io"
)

// WritePrometheus renders the telemetry in Prometheus text exposition
// format. cmd/esrpcampaign appends it to the Report.WriteMetrics textfile
// so the simulated-clock campaign counters and the host-engine counters
// land in one scrape target. Output is deterministic for a given
// telemetry snapshot.
func (t *CampaignTelemetry) WritePrometheus(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP esrp_host_wall_seconds Wall-clock duration of the campaign run.\n")
	p("# TYPE esrp_host_wall_seconds gauge\n")
	p("esrp_host_wall_seconds %g\n", float64(t.WallNs)/1e9)

	p("# HELP esrp_host_cells_done_total Cells solved by the host engine.\n")
	p("# TYPE esrp_host_cells_done_total counter\n")
	p("esrp_host_cells_done_total %d\n", t.CellsDone)

	p("# HELP esrp_host_worker_busy_seconds Wall-clock time each worker spent solving cells.\n")
	p("# TYPE esrp_host_worker_busy_seconds gauge\n")
	for i, wk := range t.Workers {
		p("esrp_host_worker_busy_seconds{worker=\"%d\"} %g\n", i, float64(wk.BusyNs)/1e9)
	}
	p("# HELP esrp_host_worker_cells Cells solved per worker.\n")
	p("# TYPE esrp_host_worker_cells gauge\n")
	for i, wk := range t.Workers {
		p("esrp_host_worker_cells{worker=\"%d\"} %d\n", i, wk.Cells)
	}

	p("# HELP esrp_host_shard_cells Cells initially packed onto each scheduler shard.\n")
	p("# TYPE esrp_host_shard_cells gauge\n")
	for i, n := range t.ShardCells {
		p("esrp_host_shard_cells{shard=\"%d\"} %d\n", i, n)
	}

	p("# HELP esrp_host_steal_attempts_total stealTail calls against victim shards.\n")
	p("# TYPE esrp_host_steal_attempts_total counter\n")
	p("esrp_host_steal_attempts_total %d\n", t.StealAttempts)
	p("# HELP esrp_host_steals_total Successful steals.\n")
	p("# TYPE esrp_host_steals_total counter\n")
	p("esrp_host_steals_total %d\n", t.Steals)
	p("# HELP esrp_host_cells_stolen_total Cells moved between shards by steals.\n")
	p("# TYPE esrp_host_cells_stolen_total counter\n")
	p("esrp_host_cells_stolen_total %d\n", t.CellsStolen)

	p("# HELP esrp_host_affinity_hit_ratio Fraction of cells reusing the previous cell's Prepared context.\n")
	p("# TYPE esrp_host_affinity_hit_ratio gauge\n")
	p("esrp_host_affinity_hit_ratio %g\n", t.AffinityHitRate())

	p("# HELP esrp_host_barrier_wait_seconds_total Barrier wait time per member and regime.\n")
	p("# TYPE esrp_host_barrier_wait_seconds_total counter\n")
	for m := range t.Barrier.Members {
		for r := Regime(0); r < numRegimes; r++ {
			rw := t.Barrier.Members[m].Wait[r]
			if rw.Count == 0 {
				continue
			}
			p("esrp_host_barrier_wait_seconds_total{member=\"%d\",regime=%q} %g\n",
				m, RegimeName(r), float64(rw.SumNs)/1e9)
		}
	}
	p("# HELP esrp_host_barrier_waits_total Barrier waits per member and regime.\n")
	p("# TYPE esrp_host_barrier_waits_total counter\n")
	for m := range t.Barrier.Members {
		for r := Regime(0); r < numRegimes; r++ {
			rw := t.Barrier.Members[m].Wait[r]
			if rw.Count == 0 {
				continue
			}
			p("esrp_host_barrier_waits_total{member=\"%d\",regime=%q} %d\n",
				m, RegimeName(r), rw.Count)
		}
	}
	p("# HELP esrp_host_barrier_mean_arrival Mean arrival position per member (0 = always first).\n")
	p("# TYPE esrp_host_barrier_mean_arrival gauge\n")
	for m := range t.Barrier.Members {
		if t.Barrier.Members[m].Phases == 0 {
			continue
		}
		p("esrp_host_barrier_mean_arrival{member=\"%d\"} %g\n", m, t.Barrier.Members[m].MeanArrival)
	}
	p("# HELP esrp_host_barrier_aborts_total Barrier abort sweeps.\n")
	p("# TYPE esrp_host_barrier_aborts_total counter\n")
	p("esrp_host_barrier_aborts_total %d\n", t.Barrier.Aborts)

	if c := t.Cache; c != nil {
		p("# HELP esrp_host_cache_result_hits_total Cells served whole from the campaign cache's result tier.\n")
		p("# TYPE esrp_host_cache_result_hits_total counter\n")
		p("esrp_host_cache_result_hits_total %d\n", c.ResultHits)
		p("# HELP esrp_host_cache_schedule_hits_total Cells served by re-costing a cached event schedule.\n")
		p("# TYPE esrp_host_cache_schedule_hits_total counter\n")
		p("esrp_host_cache_schedule_hits_total %d\n", c.ScheduleHits)
		p("# HELP esrp_host_cache_misses_total Cells that had to solve.\n")
		p("# TYPE esrp_host_cache_misses_total counter\n")
		p("esrp_host_cache_misses_total %d\n", c.Misses)
		p("# HELP esrp_host_cache_read_bytes_total Framed bytes of validated cache entries read.\n")
		p("# TYPE esrp_host_cache_read_bytes_total counter\n")
		p("esrp_host_cache_read_bytes_total %d\n", c.BytesRead)
		p("# HELP esrp_host_cache_written_bytes_total Framed bytes of cache entries written.\n")
		p("# TYPE esrp_host_cache_written_bytes_total counter\n")
		p("esrp_host_cache_written_bytes_total %d\n", c.BytesWritten)
		p("# HELP esrp_host_cache_corrupt_total Cache entries rejected by frame validation or decoding.\n")
		p("# TYPE esrp_host_cache_corrupt_total counter\n")
		p("esrp_host_cache_corrupt_total %d\n", c.Corrupt)
	}

	p("# HELP esrp_host_phase_heap_bytes Heap in use at each campaign phase boundary.\n")
	p("# TYPE esrp_host_phase_heap_bytes gauge\n")
	for _, ph := range t.Phases {
		p("esrp_host_phase_heap_bytes{phase=%q} %d\n", ph.Phase, ph.HeapBytes)
	}
	p("# HELP esrp_host_phase_gc_pause_seconds Cumulative GC pause at each phase boundary.\n")
	p("# TYPE esrp_host_phase_gc_pause_seconds gauge\n")
	for _, ph := range t.Phases {
		p("esrp_host_phase_gc_pause_seconds{phase=%q} %g\n", ph.Phase, float64(ph.GCPauseNs)/1e9)
	}
	p("# HELP esrp_host_phase_goroutines Live goroutines at each phase boundary.\n")
	p("# TYPE esrp_host_phase_goroutines gauge\n")
	for _, ph := range t.Phases {
		p("esrp_host_phase_goroutines{phase=%q} %d\n", ph.Phase, ph.Goroutines)
	}
	p("# HELP esrp_host_phase_sched_latency_p99_seconds Approximate p99 goroutine scheduling latency at each phase boundary.\n")
	p("# TYPE esrp_host_phase_sched_latency_p99_seconds gauge\n")
	for _, ph := range t.Phases {
		p("esrp_host_phase_sched_latency_p99_seconds{phase=%q} %g\n", ph.Phase, ph.SchedLatencyP99)
	}
	return err
}
