// Package hostobs is the observability layer of the *host* execution
// engine — the mirror image of internal/obs. Where obs records what the
// simulated machine did on the deterministic LogGP clock, hostobs records
// what the real machine underneath did on the wall clock: how long rank
// goroutines waited in the combining-tree barrier (split by spin vs park
// regime), how the affinity-sharded campaign scheduler kept its workers
// busy, how much work the tail-stealing moved, and what the Go runtime
// (heap, GC, scheduler) was doing while a campaign ran.
//
// The layer follows the same zero-overhead-when-off discipline as
// obs.Recorder: every hot-path entry point is a method on a handle that
// nil-checks its receiver, so a solve or campaign without a recorder
// attached performs no clock reads, no atomics and no allocations — the
// zero-alloc gates and byte-identity contracts of the engine hold
// unchanged. With recording enabled the hot-path cost is a few padded
// atomic increments (histograms are fixed-size log-bucketed arrays; no
// allocation ever happens on a barrier wait or a scheduler pop), and the
// recorded data is exported after the run: as a Chrome trace_event JSON of
// host worker timelines (obs.HostTrace), as Prometheus textfile metrics
// appended to the campaign snapshot, and as condensed columns in the
// BENCH_*.json perf-trajectory exports.
package hostobs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the bucket count of the log-scaled wait histograms:
// bucket k holds samples with bits.Len64(ns) == k, i.e. waits in
// [2^(k-1), 2^k) nanoseconds; the top bucket absorbs everything from
// ~2.1 s (2^31 ns) up, far beyond any sane barrier wait.
const histBuckets = 32

// Hist is a fixed-size log-bucketed nanosecond histogram maintained with
// atomics — safe for concurrent observers, allocation-free after creation.
type Hist struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one nanosecond sample.
func (h *Hist) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	h.buckets[b].Add(1)
}

// Count returns the number of samples observed.
func (h *Hist) Count() int64 { return h.count.Load() }

// SumNs returns the total nanoseconds observed.
func (h *Hist) SumNs() int64 { return h.sumNs.Load() }

// Snapshot copies the bucket counts (index k = waits in [2^(k-1), 2^k) ns).
func (h *Hist) Snapshot() [histBuckets]int64 {
	var out [histBuckets]int64
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BucketUpperNs returns the exclusive upper bound of bucket k in
// nanoseconds (the last bucket is unbounded and reports its lower bound).
func BucketUpperNs(k int) int64 {
	if k >= histBuckets-1 {
		return int64(1) << (histBuckets - 2)
	}
	return int64(1) << k
}
