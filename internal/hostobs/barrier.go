package hostobs

import "sync/atomic"

// Regime classifies how a barrier member spent a wait: spinning on the
// phase counter, yielding to the Go scheduler, or parked on its wake
// channel. The split matters because the combining-tree barrier picks its
// policy from n vs GOMAXPROCS — spin time is cycles burnt on a core,
// park time is cycles given back to other rank goroutines.
type Regime int

const (
	RegimeSpin Regime = iota
	RegimeYield
	RegimePark
	numRegimes
)

// RegimeName returns the stable label used in traces and metrics.
func RegimeName(r Regime) string {
	switch r {
	case RegimeSpin:
		return "spin"
	case RegimeYield:
		return "yield"
	case RegimePark:
		return "park"
	}
	return "unknown"
}

// memberStats is one barrier member's counters, padded so members on
// different cores never false-share. The wait histograms are per regime.
type memberStats struct {
	_        [64]byte
	phases   atomic.Int64 // barrier phases this member completed
	releases atomic.Int64 // phases this member owned the release of
	orderSum atomic.Int64 // Σ arrival positions (0 = first to arrive)
	wait     [numRegimes]Hist
	_        [64]byte
}

// BarrierStats accumulates host-side barrier telemetry for up to Cap()
// members. All recording methods are safe on a nil receiver and do
// nothing, so an uninstrumented barrier pays only a nil check. A single
// BarrierStats may be shared by every arena of a Comm (root view and
// sub-communicators); members are indexed by view-local rank, so the
// histograms aggregate over all arenas a rank participates in.
type BarrierStats struct {
	members []memberStats
	aborts  atomic.Int64
}

// NewBarrierStats sizes the per-member counters for barriers of up to n
// members.
func NewBarrierStats(n int) *BarrierStats {
	if n < 1 {
		n = 1
	}
	return &BarrierStats{members: make([]memberStats, n)}
}

// Cap reports how many members the stats can record (0 on nil).
func (s *BarrierStats) Cap() int {
	if s == nil {
		return 0
	}
	return len(s.members)
}

// Arrive records that member arrived at a barrier phase in the given
// arrival position (0 = first of n). The running position sum exposes
// arrival-order skew: a member whose mean position hugs n-1 is the
// straggler every phase waits for.
func (s *BarrierStats) Arrive(member int, order int32) {
	if s == nil {
		return
	}
	m := &s.members[member]
	m.phases.Add(1)
	m.orderSum.Add(int64(order))
}

// Wait records ns nanoseconds spent by member waiting for a phase flip in
// the given regime.
func (s *BarrierStats) Wait(member int, r Regime, ns int64) {
	if s == nil {
		return
	}
	s.members[member].wait[r].Observe(ns)
}

// Release records that member completed the phase and released the others.
func (s *BarrierStats) Release(member int) {
	if s == nil {
		return
	}
	s.members[member].releases.Add(1)
}

// Abort records one barrier abort sweep.
func (s *BarrierStats) Abort() {
	if s == nil {
		return
	}
	s.aborts.Add(1)
}

// Aborts returns the abort count (0 on nil).
func (s *BarrierStats) Aborts() int64 {
	if s == nil {
		return 0
	}
	return s.aborts.Load()
}

// TotalWaitNs sums all members' wait time across regimes (0 on nil).
// Because members wait concurrently the sum can exceed wall time by up to
// a factor of Cap(); it never exceeds Cap() × wall time.
func (s *BarrierStats) TotalWaitNs() int64 {
	if s == nil {
		return 0
	}
	var total int64
	for i := range s.members {
		for r := range s.members[i].wait {
			total += s.members[i].wait[r].SumNs()
		}
	}
	return total
}

// RegimeWait is the snapshot of one member's waits in one regime.
type RegimeWait struct {
	Count   int64
	SumNs   int64
	Buckets [histBuckets]int64
}

// MemberWait is the snapshot of one barrier member.
type MemberWait struct {
	Phases      int64
	Releases    int64
	MeanArrival float64 // mean arrival position, 0 = always first
	Wait        [numRegimes]RegimeWait
}

// BarrierSnapshot is a point-in-time copy of all members' counters.
type BarrierSnapshot struct {
	Members []MemberWait
	Aborts  int64
}

// Snapshot copies the counters (nil receiver → zero snapshot). Safe to
// call while recording continues; each counter is read atomically.
func (s *BarrierStats) Snapshot() BarrierSnapshot {
	if s == nil {
		return BarrierSnapshot{}
	}
	out := BarrierSnapshot{
		Members: make([]MemberWait, len(s.members)),
		Aborts:  s.aborts.Load(),
	}
	for i := range s.members {
		m := &s.members[i]
		mw := &out.Members[i]
		mw.Phases = m.phases.Load()
		mw.Releases = m.releases.Load()
		if mw.Phases > 0 {
			mw.MeanArrival = float64(m.orderSum.Load()) / float64(mw.Phases)
		}
		for r := range m.wait {
			mw.Wait[r] = RegimeWait{
				Count:   m.wait[r].Count(),
				SumNs:   m.wait[r].SumNs(),
				Buckets: m.wait[r].Snapshot(),
			}
		}
	}
	return out
}
