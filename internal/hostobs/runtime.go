package hostobs

import (
	"runtime"
	"runtime/metrics"
)

// PhaseSample is one Go-runtime snapshot taken at a campaign phase
// boundary (start of run, contexts prepared, all cells done). Deltas
// between consecutive samples attribute heap growth and GC pauses to a
// phase; the absolute values feed the Prometheus textfile.
type PhaseSample struct {
	Phase           string  `json:"phase"`
	AtNs            int64   `json:"at_ns"` // recorder clock at the sample
	HeapBytes       uint64  `json:"heap_bytes"`
	GCPauseNs       uint64  `json:"gc_pause_ns"` // cumulative since process start
	NumGC           uint32  `json:"num_gc"`
	Goroutines      int     `json:"goroutines"`
	SchedLatencyP99 float64 `json:"sched_latency_p99_s"` // seconds; -1 if unavailable
}

// schedLatencySample reads /sched/latencies:seconds and returns its
// approximate p99 in seconds, or -1 when the runtime does not publish it.
func schedLatencySample() float64 {
	samples := []metrics.Sample{{Name: "/sched/latencies:seconds"}}
	metrics.Read(samples)
	if samples[0].Value.Kind() != metrics.KindFloat64Histogram {
		return -1
	}
	h := samples[0].Value.Float64Histogram()
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(float64(total) * 0.99)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Buckets[i+1] is the bucket's upper bound; the last bucket's
			// bound can be +Inf — report its finite lower bound instead.
			up := h.Buckets[i+1]
			if up > h.Buckets[len(h.Buckets)-2] {
				up = h.Buckets[i]
			}
			return up
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// SamplePhase snapshots the Go runtime under the given phase label.
// No-op on a nil recorder. ReadMemStats stops the world briefly, so this
// belongs at phase boundaries, never inside worker loops.
func (r *CampaignRecorder) SamplePhase(phase string) {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := PhaseSample{
		Phase:           phase,
		AtNs:            r.WallNs(),
		HeapBytes:       ms.HeapAlloc,
		GCPauseNs:       ms.PauseTotalNs,
		NumGC:           ms.NumGC,
		Goroutines:      runtime.NumGoroutine(),
		SchedLatencyP99: schedLatencySample(),
	}
	r.phaseMu.Lock()
	r.phases = append(r.phases, s)
	r.phaseMu.Unlock()
}

// PhaseSamples copies the samples taken so far (nil on a nil recorder).
func (r *CampaignRecorder) PhaseSamples() []PhaseSample {
	if r == nil {
		return nil
	}
	r.phaseMu.Lock()
	defer r.phaseMu.Unlock()
	return append([]PhaseSample(nil), r.phases...)
}

// GCPauseDeltaNs returns the GC pause time accrued between the first and
// last phase samples — the campaign-attributable pause total.
func (t *CampaignTelemetry) GCPauseDeltaNs() int64 {
	if len(t.Phases) < 2 {
		return 0
	}
	return int64(t.Phases[len(t.Phases)-1].GCPauseNs - t.Phases[0].GCPauseNs)
}
