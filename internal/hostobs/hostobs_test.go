package hostobs

import (
	"strings"
	"testing"

	"esrp/internal/obs"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	cases := []struct {
		ns     int64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{-5, 0},                   // clamped
		{int64(1) << 40, 31},      // beyond the top bucket's lower bound
		{int64(1)<<62 + 1000, 31}, // extreme values stay in range
	}
	for _, c := range cases {
		h.Observe(c.ns)
	}
	snap := h.Snapshot()
	counts := make(map[int]int64)
	for k, n := range snap {
		if n > 0 {
			counts[k] = n
		}
	}
	for _, c := range cases {
		if counts[c.bucket] == 0 {
			t.Errorf("sample %d ns landed outside expected bucket %d (snapshot %v)", c.ns, c.bucket, counts)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("count %d, want %d", h.Count(), len(cases))
	}
	var sum int64
	for _, n := range snap {
		sum += n
	}
	if sum != h.Count() {
		t.Errorf("bucket sum %d != count %d", sum, h.Count())
	}
	// Negative samples clamp to zero, so the sum only counts the rest.
	if h.SumNs() <= 0 {
		t.Errorf("sum %d, want positive", h.SumNs())
	}
}

// TestNilHandlesAreInert pins the zero-overhead-when-off discipline: every
// recording entry point must be callable through nil handles.
func TestNilHandlesAreInert(t *testing.T) {
	var s *BarrierStats
	s.Arrive(0, 0)
	s.Wait(0, RegimePark, 100)
	s.Release(0)
	s.Abort()
	if s.Cap() != 0 || s.Aborts() != 0 || s.TotalWaitNs() != 0 {
		t.Error("nil BarrierStats reported non-zero state")
	}
	if snap := s.Snapshot(); len(snap.Members) != 0 {
		t.Error("nil BarrierStats snapshot has members")
	}

	var r *CampaignRecorder
	r.Begin(4, 100, 8)
	r.SamplePhase("x")
	r.ShardLayout([]int{1, 2})
	if r.Worker(0) != nil {
		t.Error("nil recorder handed out a non-nil worker log")
	}
	if r.LiveCells() != 0 || r.LiveSteals() != 0 || r.WallNs() != 0 {
		t.Error("nil recorder reported non-zero live state")
	}
	if r.LiveWorkerCells() != nil || r.PhaseSamples() != nil {
		t.Error("nil recorder returned non-nil slices")
	}
	if tel := r.Telemetry(); tel.CellsDone != 0 || len(tel.Workers) != 0 {
		t.Error("nil recorder telemetry non-zero")
	}
	if r.BuildTrace("p", obs.BuildInfo{}, nil) != nil {
		t.Error("nil recorder built a trace")
	}

	var w *WorkerLog
	if w.Clock() != 0 {
		t.Error("nil worker log read the clock")
	}
	w.Cell(0, 3, true)
	w.StealAttempt()
	w.Steal(0, 5)
}

func TestBarrierStatsRecording(t *testing.T) {
	s := NewBarrierStats(3)
	if s.Cap() != 3 {
		t.Fatalf("cap %d, want 3", s.Cap())
	}
	s.Arrive(0, 0)
	s.Arrive(1, 1)
	s.Arrive(2, 2)
	s.Arrive(2, 0) // next phase: member 2 first
	s.Wait(0, RegimeSpin, 100)
	s.Wait(0, RegimePark, 1000)
	s.Wait(1, RegimeYield, 50)
	s.Release(2)
	s.Abort()

	snap := s.Snapshot()
	if snap.Aborts != 1 {
		t.Errorf("aborts %d, want 1", snap.Aborts)
	}
	if got := snap.Members[0].Wait[RegimeSpin].SumNs; got != 100 {
		t.Errorf("member 0 spin sum %d, want 100", got)
	}
	if got := snap.Members[0].Wait[RegimePark].Count; got != 1 {
		t.Errorf("member 0 park count %d, want 1", got)
	}
	if got := s.TotalWaitNs(); got != 1150 {
		t.Errorf("total wait %d, want 1150", got)
	}
	if snap.Members[2].Releases != 1 {
		t.Errorf("member 2 releases %d, want 1", snap.Members[2].Releases)
	}
	// Member 2 arrived last (position 2) then first (position 0): mean 1.
	if got := snap.Members[2].MeanArrival; got != 1 {
		t.Errorf("member 2 mean arrival %g, want 1", got)
	}
}

// TestRecordingIsAllocFree pins that the hot-path recording methods do not
// allocate — the histograms and counters are fixed-size atomics.
func TestRecordingIsAllocFree(t *testing.T) {
	s := NewBarrierStats(4)
	if n := testing.AllocsPerRun(200, func() {
		s.Arrive(1, 0)
		s.Wait(1, RegimeSpin, 123)
		s.Wait(1, RegimePark, 45678)
		s.Release(1)
	}); n != 0 {
		t.Errorf("BarrierStats recording allocates %.1f per phase, want 0", n)
	}
}

func TestCampaignRecorderTelemetry(t *testing.T) {
	r := NewCampaignRecorder()
	r.Begin(2, 10, 8)
	r.ShardLayout([]int{6, 4})
	r.SamplePhase("start")

	w0, w1 := r.Worker(0), r.Worker(1)
	t0 := w0.Clock()
	w0.Cell(t0, 0, false)
	w0.Cell(w0.Clock(), 1, true)
	w1.StealAttempt()
	w1.Steal(w1.Clock(), 3)
	w1.Cell(w1.Clock(), 9, false)
	r.SamplePhase("done")

	if got := r.LiveCells(); got != 3 {
		t.Errorf("live cells %d, want 3", got)
	}
	if got := r.LiveSteals(); got != 1 {
		t.Errorf("live steals %d, want 1", got)
	}
	if got := r.LiveWorkerCells(); got[0] != 2 || got[1] != 1 {
		t.Errorf("live worker cells %v, want [2 1]", got)
	}

	tel := r.Telemetry()
	if tel.CellsDone != 3 || tel.Steals != 1 || tel.StealAttempts != 1 || tel.CellsStolen != 3 {
		t.Errorf("telemetry %+v: wrong counters", tel)
	}
	if tel.AffinityHits != 1 {
		t.Errorf("affinity hits %d, want 1", tel.AffinityHits)
	}
	if got := tel.AffinityHitRate(); got <= 0.33 || got >= 0.34 {
		t.Errorf("affinity hit rate %g, want 1/3", got)
	}
	if len(tel.ShardCells) != 2 || tel.ShardCells[0] != 6 {
		t.Errorf("shard cells %v, want [6 4]", tel.ShardCells)
	}
	if len(tel.Phases) != 2 || tel.Phases[0].Phase != "start" || tel.Phases[1].Phase != "done" {
		t.Fatalf("phases %v, want start+done", tel.Phases)
	}
	if tel.Phases[0].HeapBytes == 0 || tel.Phases[0].Goroutines <= 0 {
		t.Errorf("phase sample missing runtime data: %+v", tel.Phases[0])
	}
	if tel.GCPauseDeltaNs() < 0 {
		t.Errorf("GC pause delta %d, want >= 0", tel.GCPauseDeltaNs())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewCampaignRecorder()
	r.Begin(1, 2, 4)
	r.ShardLayout([]int{2})
	r.SamplePhase("start")
	w := r.Worker(0)
	w.Cell(w.Clock(), 0, false)
	w.Cell(w.Clock(), 1, true)
	r.BarrierStats().Arrive(0, 0)
	r.BarrierStats().Wait(0, RegimePark, 5000)
	r.SamplePhase("done")

	tel := r.Telemetry()
	var sb strings.Builder
	if err := tel.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"esrp_host_cells_done_total 2",
		`esrp_host_shard_cells{shard="0"} 2`,
		"esrp_host_affinity_hit_ratio 0.5",
		`esrp_host_barrier_wait_seconds_total{member="0",regime="park"} 5e-06`,
		`esrp_host_phase_goroutines{phase="start"}`,
		"esrp_host_steals_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}
