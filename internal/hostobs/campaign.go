package hostobs

import (
	"sync"
	"sync/atomic"
	"time"
)

// spanKind distinguishes the two kinds of worker timeline spans.
type spanKind uint8

const (
	spanCell spanKind = iota
	spanSteal
)

// workerSpan is one interval on a worker's wall-clock timeline. Spans are
// appended by the owning worker goroutine only (single writer) and read
// after the campaign's completion barrier, so they need no locking.
type workerSpan struct {
	startNs  int64
	endNs    int64
	index    int // cell index, or cells moved for a steal span
	kind     spanKind
	affinity bool // cell reused the previous cell's Prepared context
}

// WorkerLog is one campaign worker's single-writer telemetry. All methods
// are nil-safe: campaign code unconditionally calls through the handle and
// a disabled recorder costs one nil check per call — in particular Clock
// returns 0 without reading the wall clock.
type WorkerLog struct {
	rec           *CampaignRecorder
	id            int
	spans         []workerSpan
	cells         int64
	busyNs        int64
	stealAttempts int64
	steals        int64
	cellsStolen   int64
	affinityHits  int64
}

// Clock returns nanoseconds since the campaign recorder started, or 0 on
// a nil handle. Worker hot paths bracket work with two Clock calls; when
// telemetry is off both return 0 and the span recording no-ops.
func (w *WorkerLog) Clock() int64 {
	if w == nil {
		return 0
	}
	return int64(time.Since(w.rec.start))
}

// Cell records one solved cell spanning [t0, now] on this worker's
// timeline. affinity marks a cell that reused the previous cell's
// Prepared context (the scheduler's affinity batching paying off).
func (w *WorkerLog) Cell(t0 int64, index int, affinity bool) {
	if w == nil {
		return
	}
	end := w.Clock()
	w.spans = append(w.spans, workerSpan{startNs: t0, endNs: end, index: index, kind: spanCell, affinity: affinity})
	w.cells++
	w.busyNs += end - t0
	if affinity {
		w.affinityHits++
	}
	w.rec.liveCells.Add(1)
	w.rec.liveWorkerCells[w.id].Add(1)
}

// StealAttempt records one stealTail call against a victim shard.
func (w *WorkerLog) StealAttempt() {
	if w == nil {
		return
	}
	w.stealAttempts++
}

// Steal records one successful steal spanning [t0, now] that moved `moved`
// cells onto this worker's shard.
func (w *WorkerLog) Steal(t0 int64, moved int) {
	if w == nil {
		return
	}
	w.spans = append(w.spans, workerSpan{startNs: t0, endNs: w.Clock(), index: moved, kind: spanSteal})
	w.steals++
	w.cellsStolen += int64(moved)
	w.rec.liveSteals.Add(1)
}

// CampaignRecorder collects host-side telemetry for one campaign run:
// per-worker timelines, steal traffic, shard layout, the shared barrier
// stats handed to every cell's solve, and runtime phase samples. A nil
// recorder is fully inert — every method (and every WorkerLog it hands
// out) nil-checks, so campaign output and allocation behaviour with
// telemetry off are bit-identical to an unbuilt recorder.
type CampaignRecorder struct {
	start      time.Time
	totalCells int
	workers    []WorkerLog
	shardCells []int
	barrier    *BarrierStats

	liveCells  atomic.Int64 // cells completed so far (progress meters)
	liveSteals atomic.Int64 // successful steals so far

	// liveWorkerCells mirrors each worker's completed-cell count with an
	// atomic so live meters can read per-shard progress while the
	// single-writer WorkerLog fields stay lock-free.
	liveWorkerCells []atomic.Int64

	// Cache counters (campaign cache runs only): hit/miss classification
	// is counted live from worker goroutines; the raw I/O figures are set
	// once by the engine after the workers join. cacheOn gates the
	// telemetry section so cache-less runs emit no cache metrics at all.
	cacheResultHits   atomic.Int64
	cacheScheduleHits atomic.Int64
	cacheMisses       atomic.Int64
	cacheOn           atomic.Bool
	cacheBytesRead    int64
	cacheBytesWritten int64
	cacheCorrupt      int64

	phaseMu sync.Mutex
	phases  []PhaseSample
}

// NewCampaignRecorder returns an empty recorder; Begin sizes it.
func NewCampaignRecorder() *CampaignRecorder { return &CampaignRecorder{} }

// Begin starts the wall clock and sizes per-worker logs and the shared
// barrier stats (maxNodes = the largest Nodes value in the grid, so one
// BarrierStats serves every cell's cluster).
func (r *CampaignRecorder) Begin(workers, totalCells, maxNodes int) {
	if r == nil {
		return
	}
	r.start = time.Now()
	r.totalCells = totalCells
	r.workers = make([]WorkerLog, workers)
	for i := range r.workers {
		r.workers[i].rec = r
		r.workers[i].id = i
	}
	r.liveWorkerCells = make([]atomic.Int64, workers)
	r.barrier = NewBarrierStats(maxNodes)
}

// Worker returns worker w's log handle (nil on a nil recorder), so worker
// loops hold one pointer and never re-index.
func (r *CampaignRecorder) Worker(w int) *WorkerLog {
	if r == nil {
		return nil
	}
	return &r.workers[w]
}

// BarrierStats returns the shared per-solve barrier stats (nil when the
// recorder is nil or Begin has not run).
func (r *CampaignRecorder) BarrierStats() *BarrierStats {
	if r == nil {
		return nil
	}
	return r.barrier
}

// ShardLayout records the scheduler's initial cells-per-shard packing.
func (r *CampaignRecorder) ShardLayout(cellsPerShard []int) {
	if r == nil {
		return
	}
	r.shardCells = append(r.shardCells[:0], cellsPerShard...)
}

// LiveCells returns cells completed so far — safe concurrently, for
// progress meters (0 on nil).
func (r *CampaignRecorder) LiveCells() int64 {
	if r == nil {
		return 0
	}
	return r.liveCells.Load()
}

// LiveSteals returns successful steals so far (0 on nil).
func (r *CampaignRecorder) LiveSteals() int64 {
	if r == nil {
		return 0
	}
	return r.liveSteals.Load()
}

// LiveWorkerCells copies each worker's completed-cell count so far — safe
// concurrently, for live shard meters (nil on a nil recorder).
func (r *CampaignRecorder) LiveWorkerCells() []int64 {
	if r == nil {
		return nil
	}
	out := make([]int64, len(r.liveWorkerCells))
	for i := range out {
		out[i] = r.liveWorkerCells[i].Load()
	}
	return out
}

// CacheResultHit counts one cell served whole from the cache's result
// tier (no solve, no re-cost). Nil-safe; called from worker goroutines.
func (r *CampaignRecorder) CacheResultHit() {
	if r == nil {
		return
	}
	r.cacheResultHits.Add(1)
}

// CacheScheduleHit counts one cell served from the schedule tier: the
// machine-independent result fields came from the cache and the simulated
// times from an O(events) re-cost of the stored schedule.
func (r *CampaignRecorder) CacheScheduleHit() {
	if r == nil {
		return
	}
	r.cacheScheduleHits.Add(1)
}

// CacheMiss counts one cell that had to solve (entry absent, corrupt, or
// not coverable by the stored tiers).
func (r *CampaignRecorder) CacheMiss() {
	if r == nil {
		return
	}
	r.cacheMisses.Add(1)
}

// SetCacheIO records the cache's raw I/O totals and marks the run as
// cache-backed (the gate for the telemetry's cache section). The engine
// calls it once after the workers join.
func (r *CampaignRecorder) SetCacheIO(bytesRead, bytesWritten, corrupt int64) {
	if r == nil {
		return
	}
	r.cacheBytesRead = bytesRead
	r.cacheBytesWritten = bytesWritten
	r.cacheCorrupt = corrupt
	r.cacheOn.Store(true)
}

// LiveCacheHits returns the hit/miss counts so far — safe concurrently,
// for progress meters (zeros on nil).
func (r *CampaignRecorder) LiveCacheHits() (resultHits, scheduleHits, misses int64) {
	if r == nil {
		return 0, 0, 0
	}
	return r.cacheResultHits.Load(), r.cacheScheduleHits.Load(), r.cacheMisses.Load()
}

// WallNs returns nanoseconds since Begin (0 on nil).
func (r *CampaignRecorder) WallNs() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.start))
}

// WorkerTelemetry is the aggregated per-worker view.
type WorkerTelemetry struct {
	Cells         int64
	BusyNs        int64
	StealAttempts int64
	Steals        int64
	CellsStolen   int64
	AffinityHits  int64
}

// CacheCounters is the campaign-cache section of the telemetry: how each
// cell was satisfied (result tier, schedule tier, or a real solve) and
// the store's raw I/O totals.
type CacheCounters struct {
	ResultHits   int64 `json:"result_hits"`
	ScheduleHits int64 `json:"schedule_hits"`
	Misses       int64 `json:"misses"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	Corrupt      int64 `json:"corrupt"`
}

// CampaignTelemetry is the post-run aggregate used by the Prometheus
// writer, the bench columns, and tests. Read it only after the campaign's
// workers have joined — worker fields are single-writer during the run.
type CampaignTelemetry struct {
	WallNs        int64
	TotalCells    int
	Workers       []WorkerTelemetry
	ShardCells    []int
	CellsDone     int64
	BusyNs        int64
	StealAttempts int64
	Steals        int64
	CellsStolen   int64
	AffinityHits  int64
	Barrier       BarrierSnapshot
	BarrierWaitNs int64
	Phases        []PhaseSample

	// Cache is non-nil only for cache-backed runs (SetCacheIO marks them).
	Cache *CacheCounters
}

// Telemetry aggregates the recorder (zero value on nil).
func (r *CampaignRecorder) Telemetry() CampaignTelemetry {
	if r == nil {
		return CampaignTelemetry{}
	}
	t := CampaignTelemetry{
		WallNs:        r.WallNs(),
		TotalCells:    r.totalCells,
		Workers:       make([]WorkerTelemetry, len(r.workers)),
		ShardCells:    append([]int(nil), r.shardCells...),
		Barrier:       r.barrier.Snapshot(),
		BarrierWaitNs: r.barrier.TotalWaitNs(),
		Phases:        r.PhaseSamples(),
	}
	if r.cacheOn.Load() {
		t.Cache = &CacheCounters{
			ResultHits:   r.cacheResultHits.Load(),
			ScheduleHits: r.cacheScheduleHits.Load(),
			Misses:       r.cacheMisses.Load(),
			BytesRead:    r.cacheBytesRead,
			BytesWritten: r.cacheBytesWritten,
			Corrupt:      r.cacheCorrupt,
		}
	}
	for i := range r.workers {
		w := &r.workers[i]
		t.Workers[i] = WorkerTelemetry{
			Cells:         w.cells,
			BusyNs:        w.busyNs,
			StealAttempts: w.stealAttempts,
			Steals:        w.steals,
			CellsStolen:   w.cellsStolen,
			AffinityHits:  w.affinityHits,
		}
		t.CellsDone += w.cells
		t.BusyNs += w.busyNs
		t.StealAttempts += w.stealAttempts
		t.Steals += w.steals
		t.CellsStolen += w.cellsStolen
		t.AffinityHits += w.affinityHits
	}
	return t
}

// AffinityHitRate is the fraction of cells that reused the previous
// cell's Prepared context on their worker.
func (t *CampaignTelemetry) AffinityHitRate() float64 {
	if t.CellsDone == 0 {
		return 0
	}
	return float64(t.AffinityHits) / float64(t.CellsDone)
}
