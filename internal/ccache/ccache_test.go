package ccache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"esrp/internal/cluster"
	"esrp/internal/core"
	"esrp/internal/matgen"
	"esrp/internal/obs"
	"esrp/internal/precond"
	"esrp/internal/replay"
	"esrp/internal/sparse"
)

// goldenInput is a fixed cell input used to pin the canonical encoding.
func goldenInput() CellInput {
	var m [32]byte
	for i := range m {
		m[i] = byte(i)
	}
	return CellInput{
		Matrix:   m,
		Nodes:    8,
		Strategy: core.StrategyESRP,
		T:        20,
		Phi:      1,
		Seed:     42,
		Events: []core.FailureSpec{
			{Iteration: 30, Ranks: []int{2, 3}},
			{Iteration: 75, Ranks: []int{5}},
		},
		Spares:   2,
		Rtol:     1e-8,
		MaxIter:  0,
		MaxBlock: 10,
		Precond:  precond.BlockJacobi,
		Kernel:   sparse.KernelAuto,
	}
}

// TestKeyGolden pins the canonical key encoding byte-for-byte. If this
// test fails, the encoding changed: every existing cache entry on every
// machine silently misses. That may be intended (then bump keyVersion and
// re-pin here), but it must never happen by accident — a field rename,
// reorder, or width change all land here.
func TestKeyGolden(t *testing.T) {
	const want = "1d3f56373eb6e84e47cfeeb0ffe6764eaf2248f8669c3d61c6302c9d36239eee"
	in := goldenInput()
	if got := in.Key().String(); got != want {
		t.Fatalf("canonical key changed:\n got %s\nwant %s\n(bump keyVersion if intentional)", got, want)
	}
}

// Every field of CellInput must perturb the key — a field the encoder
// skips would alias distinct cells onto one entry.
func TestKeyFieldSensitivity(t *testing.T) {
	base := goldenInput().Key()
	mutations := map[string]func(*CellInput){
		"Matrix":       func(in *CellInput) { in.Matrix[0] ^= 1 },
		"Nodes":        func(in *CellInput) { in.Nodes++ },
		"Strategy":     func(in *CellInput) { in.Strategy = core.StrategyIMCR },
		"T":            func(in *CellInput) { in.T++ },
		"Phi":          func(in *CellInput) { in.Phi++ },
		"Seed":         func(in *CellInput) { in.Seed++ },
		"EventIter":    func(in *CellInput) { in.Events[0].Iteration++ },
		"EventRanks":   func(in *CellInput) { in.Events[1].Ranks = []int{6} },
		"EventDropped": func(in *CellInput) { in.Events = in.Events[:1] },
		"EventsNilVsEmpty is NOT distinct — both encode zero events": nil,
		"Spares":   func(in *CellInput) { in.Spares++ },
		"Rtol":     func(in *CellInput) { in.Rtol = 1e-10 },
		"MaxIter":  func(in *CellInput) { in.MaxIter = 500 },
		"MaxBlock": func(in *CellInput) { in.MaxBlock++ },
		"Precond":  func(in *CellInput) { in.Precond = precond.Jacobi },
		"Kernel":   func(in *CellInput) { in.Kernel = sparse.KernelCSR },
	}
	for name, mutate := range mutations {
		if mutate == nil {
			continue
		}
		in := goldenInput()
		mutate(&in)
		if in.Key() == base {
			t.Errorf("mutating %s left the key unchanged", name)
		}
	}
	// Field boundaries are tagged: shifting a value between adjacent
	// fields must not collide.
	a, b := goldenInput(), goldenInput()
	a.T, a.Phi = 5, 7
	b.T, b.Phi = 7, 5
	if a.Key() == b.Key() {
		t.Error("swapping T and Phi collided")
	}
}

func TestMatrixDigestSensitivity(t *testing.T) {
	a := matgen.Poisson2D(8, 8)
	b := matgen.RHSOnes(a.Rows)
	d0 := MatrixDigest(a, b)
	if MatrixDigest(a, b) != d0 {
		t.Fatal("digest is not deterministic")
	}
	a2 := matgen.Poisson2D(8, 8)
	a2.Val[0] += 1e-12
	if MatrixDigest(a2, b) == d0 {
		t.Error("value perturbation did not change the digest")
	}
	b2 := append([]float64(nil), b...)
	b2[len(b2)-1] = 2
	if MatrixDigest(a, b2) == d0 {
		t.Error("rhs perturbation did not change the digest")
	}
}

func testBuild() obs.BuildInfo {
	return obs.BuildInfo{GoVersion: "go1.99", Revision: "abc123"}
}

func openTestCache(t *testing.T) *Cache {
	t.Helper()
	c, note, err := Open(t.TempDir(), testBuild(), MismatchBypass)
	if err != nil {
		t.Fatal(err)
	}
	if note != "" {
		t.Fatalf("fresh cache produced a note: %s", note)
	}
	if c == nil {
		t.Fatal("fresh cache is nil")
	}
	return c
}

func testEntry() *ResultEntry {
	return &ResultEntry{
		Model: cluster.DefaultCostModel(),
		Result: CellResult{
			Converged: true, Iterations: 123, TotalSteps: 130,
			RelResidual: 9.87e-9, SimTime: 0.0123456789, RecoveryTime: 0.001,
			WastedIters: 7, Drift: 1e-12, MaxNodeBytes: 4096, HaloBytes: 2048,
			BytesSent: 65536, ActiveNodes: 8, Kernels: "band+sellc×8",
			Recoveries: []core.RecoveryEvent{{Iteration: 30, Ranks: []int{2, 3}, Mode: core.RecoverySpare, RecoveredAt: 20, WastedIters: 7, SparesLeft: -1, ActiveNodes: 8}},
		},
	}
}

func testSchedule() *replay.Schedule {
	return &replay.Schedule{
		Nodes: 2,
		Views: [][]int{{0, 1}},
		Events: [][]replay.Event{
			{{Kind: replay.KindCompute, Val: 1.5}, {Kind: replay.KindSend, Peer: 1, Bytes: 64, AcctMsgs: 1, AcctBytes: 64}},
			{{Kind: replay.KindRecv, Peer: 0}},
		},
	}
}

func TestResultRoundTrip(t *testing.T) {
	c := openTestCache(t)
	in := goldenInput()
	k := in.Key()
	if _, ok := c.GetResult(k); ok {
		t.Fatal("hit on an empty cache")
	}
	want := testEntry()
	if err := c.PutResult(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.GetResult(k)
	if !ok {
		t.Fatal("miss after put")
	}
	if got.Model != want.Model || got.Result.SimTime != want.Result.SimTime ||
		got.Result.Iterations != want.Result.Iterations || len(got.Result.Recoveries) != 1 {
		t.Fatalf("entry did not round-trip: got %+v", got)
	}
	st := c.Stats()
	if st.BytesWritten == 0 || st.BytesRead == 0 || st.Corrupt != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	c := openTestCache(t)
	k := goldenInput().Key()
	if _, ok := c.GetSchedule(k); ok {
		t.Fatal("hit on an empty cache")
	}
	want := testSchedule()
	if err := c.PutSchedule(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.GetSchedule(k)
	if !ok {
		t.Fatal("miss after put")
	}
	wb, _ := want.EncodeBinary()
	gb, _ := got.EncodeBinary()
	if !bytes.Equal(wb, gb) {
		t.Fatal("schedule did not round-trip bit-exactly")
	}
}

// Corruption must read as a miss (and count), never a crash or a wrong
// answer: truncation, a flipped payload byte, a flipped checksum, a wrong
// magic, and garbage all land on the recompute path.
func TestCorruptionIsAMiss(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated-header":  func(b []byte) []byte { return b[:frameHeaderLen-2] },
		"truncated-payload": func(b []byte) []byte { return b[:len(b)-3] },
		"flipped-byte":      func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"flipped-crc":       func(b []byte) []byte { b[16] ^= 0xff; return b },
		"wrong-magic":       func(b []byte) []byte { copy(b, "NOTESRP!"); return b },
		"empty":             func(b []byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			c := openTestCache(t)
			k := goldenInput().Key()
			if err := c.PutResult(k, testEntry()); err != nil {
				t.Fatal(err)
			}
			if err := c.PutSchedule(k, testSchedule()); err != nil {
				t.Fatal(err)
			}
			for _, path := range []string{
				c.entryPath(resultTierDir, k, ".res"),
				c.entryPath(scheduleTierDir, k, ".sched"),
			} {
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if _, ok := c.GetResult(k); ok {
				t.Error("corrupt result entry was trusted")
			}
			if _, ok := c.GetSchedule(k); ok {
				t.Error("corrupt schedule entry was trusted")
			}
			if st := c.Stats(); st.Corrupt != 2 {
				t.Errorf("corrupt counter = %d, want 2", st.Corrupt)
			}
			// The miss is recoverable: a fresh put replaces the bad entry.
			if err := c.PutResult(k, testEntry()); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.GetResult(k); !ok {
				t.Error("re-put after corruption still misses")
			}
		})
	}
}

// A corrupted frame whose payload still validates but decodes to garbage
// (schedule tier): the decoder's own guards classify it as corrupt.
func TestUndecodableScheduleIsAMiss(t *testing.T) {
	c := openTestCache(t)
	k := goldenInput().Key()
	// A validly framed payload that is not an ESRPRPL1 stream.
	if err := writeFileAtomic(c.entryPath(scheduleTierDir, k, ".sched"), frame([]byte("not a schedule"))); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetSchedule(k); ok {
		t.Fatal("undecodable schedule was trusted")
	}
	if st := c.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	k := goldenInput().Key()
	if _, ok := c.GetResult(k); ok {
		t.Error("nil cache hit")
	}
	if _, ok := c.GetSchedule(k); ok {
		t.Error("nil cache hit")
	}
	if err := c.PutResult(k, testEntry()); err != nil {
		t.Error(err)
	}
	if err := c.PutSchedule(k, testSchedule()); err != nil {
		t.Error(err)
	}
	if c.Stats() != (IOStats{}) || c.Dir() != "" {
		t.Error("nil cache carries state")
	}
}

// A cache dir stamped by a different build must never be silently mixed:
// bypass runs cold and leaves it alone, refresh wipes and restamps.
func TestBuildMismatch(t *testing.T) {
	dir := t.TempDir()
	c1, _, err := Open(dir, testBuild(), MismatchBypass)
	if err != nil {
		t.Fatal(err)
	}
	k := goldenInput().Key()
	if err := c1.PutResult(k, testEntry()); err != nil {
		t.Fatal(err)
	}

	other := obs.BuildInfo{GoVersion: "go1.99", Revision: "def456"}
	c2, note, err := Open(dir, other, MismatchBypass)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != nil {
		t.Fatal("bypass returned a usable cache for a foreign build")
	}
	if note == "" {
		t.Fatal("bypass was silent")
	}
	// Bypass left the original entries intact.
	c1b, note, err := Open(dir, testBuild(), MismatchBypass)
	if err != nil || note != "" || c1b == nil {
		t.Fatalf("reopening with the original build: cache=%v note=%q err=%v", c1b, note, err)
	}
	if _, ok := c1b.GetResult(k); !ok {
		t.Fatal("bypass damaged the original cache")
	}

	c3, note, err := Open(dir, other, MismatchRefresh)
	if err != nil {
		t.Fatal(err)
	}
	if c3 == nil || note == "" {
		t.Fatalf("refresh: cache=%v note=%q", c3, note)
	}
	if _, ok := c3.GetResult(k); ok {
		t.Fatal("refresh kept a foreign build's entry")
	}
	// The refreshed stamp is the new build's.
	c4, note, err := Open(dir, other, MismatchBypass)
	if err != nil || note != "" || c4 == nil {
		t.Fatalf("reopening after refresh: cache=%v note=%q err=%v", c4, note, err)
	}
}

// An unreadable manifest means unknown provenance — handled exactly like
// a mismatch.
func TestGarbageManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, note, err := Open(dir, testBuild(), MismatchBypass)
	if err != nil {
		t.Fatal(err)
	}
	if c != nil || note == "" {
		t.Fatalf("garbage manifest: cache=%v note=%q", c, note)
	}
}

// The -schedules export and the schedule tier share one format; the
// reader additionally accepts the pre-cache bare binary stream.
func TestScheduleFileFormats(t *testing.T) {
	dir := t.TempDir()
	want := testSchedule()
	wb, err := want.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}

	framed := filepath.Join(dir, "framed.sched")
	if err := WriteScheduleFile(framed, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScheduleFile(framed)
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := got.EncodeBinary()
	if !bytes.Equal(wb, gb) {
		t.Fatal("framed schedule file did not round-trip")
	}

	bare := filepath.Join(dir, "bare.sched")
	if err := os.WriteFile(bare, wb, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = ReadScheduleFile(bare)
	if err != nil {
		t.Fatalf("bare pre-cache stream rejected: %v", err)
	}
	gb, _ = got.EncodeBinary()
	if !bytes.Equal(wb, gb) {
		t.Fatal("bare schedule file did not round-trip")
	}

	bad := filepath.Join(dir, "bad.sched")
	if err := os.WriteFile(bad, append([]byte(frameMagic), 1, 2, 3), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadScheduleFile(bad); err == nil {
		t.Fatal("truncated framed file accepted")
	}
}
