package ccache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"esrp/internal/replay"
)

// Every entry on disk is one framed payload:
//
//	magic "ESRPCCF1" (8 bytes)
//	payload length   (uint64 little-endian)
//	payload CRC-32   (IEEE, uint32 little-endian)
//	payload
//
// The frame is what makes interrupted sweeps resumable: a write cut short
// by a crash leaves a file whose length or checksum cannot match, so the
// reader classifies it as corrupt and the cell is recomputed — a partial
// entry is never trusted. Writes additionally go through a same-directory
// temp file + rename, so on POSIX filesystems a reader never observes a
// half-written final path in the first place; the frame is the defense for
// the cases rename can't cover (torn writes below the filesystem, manual
// tampering, truncated copies).
const frameMagic = "ESRPCCF1"

const frameHeaderLen = 8 + 8 + 4

// ErrCorrupt marks an entry that failed frame validation (wrong magic,
// length mismatch, checksum mismatch). Callers treat it as a miss.
var ErrCorrupt = errors.New("ccache: corrupt entry")

// frame returns the framed encoding of payload.
func frame(payload []byte) []byte {
	out := make([]byte, frameHeaderLen+len(payload))
	copy(out, frameMagic)
	binary.LittleEndian.PutUint64(out[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[16:], crc32.ChecksumIEEE(payload))
	copy(out[frameHeaderLen:], payload)
	return out
}

// unframe validates a framed encoding and returns the payload.
func unframe(data []byte) ([]byte, error) {
	if len(data) < frameHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the frame header", ErrCorrupt, len(data))
	}
	if string(data[:8]) != frameMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:8])
	}
	n := binary.LittleEndian.Uint64(data[8:])
	if n != uint64(len(data)-frameHeaderLen) {
		return nil, fmt.Errorf("%w: frame declares %d payload bytes, file carries %d", ErrCorrupt, n, len(data)-frameHeaderLen)
	}
	payload := data[frameHeaderLen:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[16:]); got != want {
		return nil, fmt.Errorf("%w: checksum %08x != stored %08x", ErrCorrupt, got, want)
	}
	return payload, nil
}

// writeFileAtomic writes data to path via a temp file in the same
// directory plus rename, creating parent directories as needed.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// WriteScheduleFile writes one recorded schedule as a framed entry — the
// single serializer for schedules on disk, shared by the cache's schedule
// tier and the `esrpcampaign -schedules` export.
func WriteScheduleFile(path string, s *replay.Schedule) error {
	payload, err := s.EncodeBinary()
	if err != nil {
		return err
	}
	return writeFileAtomic(path, frame(payload))
}

// ReadScheduleFile reads a schedule written by WriteScheduleFile. For
// compatibility with pre-cache exports it also accepts a bare ESRPRPL1
// stream (the unframed payload replay.WriteBinary emits).
func ReadScheduleFile(path string) (*replay.Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) >= len(frameMagic) && string(data[:len(frameMagic)]) == frameMagic {
		if data, err = unframe(data); err != nil {
			return nil, err
		}
	}
	return replay.DecodeBinary(data)
}
