// Package ccache is the persistent, content-addressed store for campaign
// artifacts: every cell of a sweep is a deterministic pure function of its
// inputs (the repo's oldest pinned invariant — byte-identical reports at
// any worker count), so its outputs can be addressed by a digest of those
// inputs and reused across process lifetimes. The store has two tiers
// under one key (see CellInput — the machine model is deliberately
// excluded from it):
//
//   - the result tier holds the condensed per-cell result together with
//     the cluster.CostModel it was computed under — an exact-model hit
//     fills the report cell with zero solves;
//   - the schedule tier holds the solve's recorded event schedule
//     (replay's ESRPRPL1 binary encoding) — a model mismatch re-costs the
//     schedule in O(events) via Schedule.Recost instead of re-solving, so
//     one cold sweep serves every machine point forever after.
//
// Entries are framed (length + CRC-32) and written atomically, so an
// interrupted sweep resumes safely: complete entries are reused, partial
// or corrupted ones are detected and recomputed, never trusted. A
// manifest stamps the build that produced the cache; a mismatching build
// bypasses or refreshes the directory, loudly, never silently mixes.
package ccache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"esrp/internal/cluster"
	"esrp/internal/core"
	"esrp/internal/obs"
	"esrp/internal/replay"
)

// FormatVersion is the on-disk layout version, stamped into the manifest.
// Layout changes bump it; an old-format directory is treated exactly like
// a build mismatch.
const FormatVersion = 1

// manifestName is the stamp file at the cache root.
const manifestName = "MANIFEST.json"

// Tier subdirectories under the cache root. Entries shard by the first
// two hex digits of their key so no single directory grows unbounded.
const (
	resultTierDir   = "res"
	scheduleTierDir = "sch"
)

// Manifest identifies the build and layout a cache directory was written
// by. It is stamped on first open and checked on every subsequent one.
type Manifest struct {
	Format int           `json:"format"`
	Build  obs.BuildInfo `json:"build"`
}

// MismatchPolicy selects what Open does when the directory's manifest was
// stamped by a different build (or an older format).
type MismatchPolicy int

const (
	// MismatchBypass keeps the directory untouched and opens no cache
	// (Open returns nil — every method on a nil *Cache is a safe no-op),
	// so the run computes everything fresh without mixing provenances.
	MismatchBypass MismatchPolicy = iota
	// MismatchRefresh deletes both tiers and restamps the manifest with
	// the current build, then opens the now-empty cache.
	MismatchRefresh
)

// CellResult is the condensed, report-shaped outcome of one cell — the
// exact fields internal/campaign copies out of core.Result. Everything
// here except SimTime and RecoveryTime is machine-independent (traffic
// counters measure payload bytes, recovery events carry iterations and
// ranks); the two simulated times are valid only under ResultEntry.Model
// and are re-derived from the schedule tier for any other machine.
type CellResult struct {
	Converged    bool                 `json:"converged"`
	Iterations   int                  `json:"iterations"`
	TotalSteps   int                  `json:"total_steps"`
	RelResidual  float64              `json:"rel_residual"`
	SimTime      float64              `json:"sim_time_s"`
	RecoveryTime float64              `json:"recovery_time_s"`
	WastedIters  int                  `json:"wasted_iters"`
	Drift        float64              `json:"drift"`
	MaxNodeBytes int64                `json:"max_node_bytes"`
	HaloBytes    int64                `json:"halo_bytes"`
	BytesSent    int64                `json:"bytes_sent"`
	ActiveNodes  int                  `json:"active_nodes"`
	Kernels      string               `json:"kernels,omitempty"`
	Recoveries   []core.RecoveryEvent `json:"recoveries,omitempty"`
}

// ResultEntry is one result-tier entry: the condensed cell outcome plus
// the machine model its simulated times were computed under. JSON floats
// round-trip exactly under Go's shortest-representation encoding, so a
// cache hit reproduces the cold run's report bytes bit-for-bit.
type ResultEntry struct {
	Model  cluster.CostModel `json:"model"`
	Result CellResult        `json:"result"`
}

// IOStats is a point-in-time snapshot of the cache's raw I/O counters.
// Hit/miss classification lives with the campaign engine (it decides
// which tier satisfies a cell); the cache itself counts bytes and
// rejected entries.
type IOStats struct {
	BytesRead    int64 // framed bytes of successfully validated entries
	BytesWritten int64 // framed bytes written (both tiers)
	Corrupt      int64 // entries rejected by frame validation or decoding
}

// Cache is an open cache directory. The zero value is unusable; obtain
// one from Open. A nil *Cache is fully inert: every method no-ops (Get
// misses, Put discards), so callers thread one handle unconditionally —
// the same contract obs, hostobs and replay recorders follow.
type Cache struct {
	dir string

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	corrupt      atomic.Int64
}

// Open opens (creating if absent) the cache directory and verifies its
// provenance manifest against build. On a mismatch it applies policy and
// returns a non-empty human-readable note describing what happened — the
// caller is expected to surface it (the CLI prints it to stderr). With
// MismatchBypass the returned cache is nil (inert); the error return is
// reserved for real I/O failures.
func Open(dir string, build obs.BuildInfo, policy MismatchPolicy) (*Cache, string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, "", err
	}
	want := Manifest{Format: FormatVersion, Build: build}
	mpath := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(mpath)
	switch {
	case os.IsNotExist(err):
		if err := stampManifest(mpath, want); err != nil {
			return nil, "", err
		}
		return &Cache{dir: dir}, "", nil
	case err != nil:
		return nil, "", err
	}
	var have Manifest
	if uerr := json.Unmarshal(data, &have); uerr == nil && have == want {
		return &Cache{dir: dir}, "", nil
	}
	// Unreadable manifests are handled like mismatches: the directory's
	// provenance is unknown, so its entries cannot be trusted.
	switch policy {
	case MismatchRefresh:
		for _, tier := range []string{resultTierDir, scheduleTierDir} {
			if err := os.RemoveAll(filepath.Join(dir, tier)); err != nil {
				return nil, "", err
			}
		}
		if err := stampManifest(mpath, want); err != nil {
			return nil, "", err
		}
		note := fmt.Sprintf("cache %s was written by %s; refreshed (entries discarded, restamped as %s)",
			dir, describeManifest(data, have), describeBuild(want.Build))
		return &Cache{dir: dir}, note, nil
	default:
		note := fmt.Sprintf("cache %s was written by %s, this binary is %s; bypassing it (use a refresh policy to rebuild in place)",
			dir, describeManifest(data, have), describeBuild(want.Build))
		return nil, note, nil
	}
}

func stampManifest(path string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(data, '\n'))
}

func describeManifest(raw []byte, m Manifest) string {
	if m == (Manifest{}) {
		return fmt.Sprintf("an unreadable manifest (%d bytes)", len(raw))
	}
	return fmt.Sprintf("format %d, %s", m.Format, describeBuild(m.Build))
}

func describeBuild(b obs.BuildInfo) string {
	rev := b.Revision
	if rev == "" {
		rev = "no-vcs"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Modified {
		rev += "+dirty"
	}
	return fmt.Sprintf("%s@%s", b.GoVersion, rev)
}

// Dir returns the cache root ("" on nil).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// Stats snapshots the raw I/O counters (zero on nil).
func (c *Cache) Stats() IOStats {
	if c == nil {
		return IOStats{}
	}
	return IOStats{
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
		Corrupt:      c.corrupt.Load(),
	}
}

// entryPath shards entries by the key's first hex byte.
func (c *Cache) entryPath(tier string, k Key, ext string) string {
	name := k.String()
	return filepath.Join(c.dir, tier, name[:2], name+ext)
}

// read loads and validates one framed entry; (nil, false) is a miss —
// absent, truncated, tampered and undecodable entries all land there, the
// last three also counting as corrupt.
func (c *Cache) read(path string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false // absent (or unreadable) = plain miss
	}
	payload, err := unframe(data)
	if err != nil {
		c.corrupt.Add(1)
		return nil, false
	}
	c.bytesRead.Add(int64(len(data)))
	return payload, true
}

// GetResult fetches a result-tier entry ((nil, false) on miss or nil c).
func (c *Cache) GetResult(k Key) (*ResultEntry, bool) {
	if c == nil {
		return nil, false
	}
	payload, ok := c.read(c.entryPath(resultTierDir, k, ".res"))
	if !ok {
		return nil, false
	}
	var e ResultEntry
	if err := json.Unmarshal(payload, &e); err != nil {
		c.corrupt.Add(1)
		return nil, false
	}
	return &e, true
}

// PutResult stores a result-tier entry (no-op on nil c). An existing
// entry is replaced atomically.
func (c *Cache) PutResult(k Key, e *ResultEntry) error {
	if c == nil {
		return nil
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return err
	}
	framed := frame(payload)
	if err := writeFileAtomic(c.entryPath(resultTierDir, k, ".res"), framed); err != nil {
		return err
	}
	c.bytesWritten.Add(int64(len(framed)))
	return nil
}

// GetSchedule fetches and decodes a schedule-tier entry ((nil, false) on
// miss or nil c). A schedule that fails frame validation or binary
// decoding counts as corrupt and misses — the caller re-solves and
// re-records, overwriting the bad entry.
func (c *Cache) GetSchedule(k Key) (*replay.Schedule, bool) {
	if c == nil {
		return nil, false
	}
	payload, ok := c.read(c.entryPath(scheduleTierDir, k, ".sched"))
	if !ok {
		return nil, false
	}
	s, err := replay.DecodeBinary(payload)
	if err != nil {
		c.corrupt.Add(1)
		return nil, false
	}
	return s, true
}

// PutSchedule stores a schedule-tier entry (no-op on nil c).
func (c *Cache) PutSchedule(k Key, s *replay.Schedule) error {
	if c == nil {
		return nil
	}
	payload, err := s.EncodeBinary()
	if err != nil {
		return err
	}
	framed := frame(payload)
	if err := writeFileAtomic(c.entryPath(scheduleTierDir, k, ".sched"), framed); err != nil {
		return err
	}
	c.bytesWritten.Add(int64(len(framed)))
	return nil
}
