package ccache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"esrp/internal/core"
	"esrp/internal/precond"
	"esrp/internal/sparse"
)

// Key is the content address of one campaign cell: the SHA-256 of the
// canonical encoding of the cell's complete input. Two cells with equal
// keys are guaranteed (modulo hash collision) to produce bit-identical
// trajectories and event schedules, because every input the solve depends
// on is folded in — and the machine model deliberately is NOT (see
// CellInput).
type Key [32]byte

// String returns the key as lowercase hex — the on-disk entry name.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// CellInput is everything a campaign cell's outcome depends on. The
// cluster.CostModel is deliberately absent: the replay engine's event
// schedules are machine-independent (PR 9's invariant, gated in CI by
// replay-equivalence), so one cached entry serves every machine point —
// result-tier hits when the stored model matches, schedule-tier re-costs
// otherwise. Everything machine-shaped lives in the entry VALUE
// (ResultEntry.Model), never in the key.
type CellInput struct {
	Matrix   [32]byte // MatrixDigest of the generated system (A and b)
	Nodes    int
	Strategy core.Strategy
	T        int
	Phi      int
	Seed     int64

	// Events is the compiled, φ-clamped failure timeline the cell actually
	// injects. Keying on the compiled events (not the scenario spec) means
	// two scenario parameterizations that compile to the same timeline
	// share entries, and any faultsim change that alters a timeline
	// changes the key.
	Events []core.FailureSpec

	Spares   int
	Rtol     float64
	MaxIter  int
	MaxBlock int
	Precond  precond.Kind
	Kernel   sparse.KernelKind
}

// keyVersion is folded into every digest; bump it whenever the canonical
// encoding (or the meaning of any encoded field) changes, so stale caches
// miss instead of resurfacing entries computed under old semantics.
const keyVersion = "esrp-ccache-key-v1"

// Key digests the canonical encoding. The encoding is a fixed-order,
// tag-prefixed byte string (ints as little-endian uint64, floats as their
// IEEE-754 bit patterns) — stable across Go versions, architectures and
// struct-field reordering, pinned byte-for-byte by TestKeyGolden.
func (in CellInput) Key() Key {
	h := sha256.New()
	var scratch [8]byte
	putU64 := func(tag byte, v uint64) {
		h.Write([]byte{tag})
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	putInt := func(tag byte, v int) { putU64(tag, uint64(int64(v))) }

	h.Write([]byte(keyVersion))
	h.Write([]byte{'M'})
	h.Write(in.Matrix[:])
	putInt('n', in.Nodes)
	putInt('s', int(in.Strategy))
	putInt('t', in.T)
	putInt('p', in.Phi)
	putU64('d', uint64(in.Seed))
	putInt('e', len(in.Events))
	for i := range in.Events {
		ev := &in.Events[i]
		putInt('i', ev.Iteration)
		putInt('r', len(ev.Ranks))
		for _, r := range ev.Ranks {
			putInt('g', r)
		}
	}
	putInt('S', in.Spares)
	putU64('f', math.Float64bits(in.Rtol))
	putInt('I', in.MaxIter)
	putInt('b', in.MaxBlock)
	putInt('P', int(in.Precond))
	putInt('k', int(in.Kernel))

	var k Key
	h.Sum(k[:0])
	return k
}

// MatrixDigest content-addresses one system (matrix and right-hand side):
// SHA-256 over the CSR dimensions, structure and values plus b, all in
// fixed-width little-endian encoding. Digesting the realized arrays (not
// the generator spec) means any generator change that alters a single
// entry changes every dependent cell key.
func MatrixDigest(a *sparse.CSR, b []float64) [32]byte {
	h := sha256.New()
	// Encode in bulk: one buffered Write per array instead of one hasher
	// call per element — the byte stream (and therefore the digest) is
	// unchanged, but hashing a large system costs a handful of calls. This
	// is the hot edge of a warm cache probe, paid once per (matrix, run).
	buf := make([]byte, 0, 64*1024)
	flush := func() {
		if len(buf) > 0 {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	putU64 := func(v uint64) {
		if len(buf)+8 > cap(buf) {
			flush()
		}
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	h.Write([]byte("esrp-ccache-mtx-v1"))
	putU64(uint64(a.Rows))
	putU64(uint64(a.Cols))
	putU64(uint64(len(a.RowPtr)))
	for _, v := range a.RowPtr {
		putU64(uint64(v))
	}
	putU64(uint64(len(a.ColIdx)))
	for _, v := range a.ColIdx {
		putU64(uint64(v))
	}
	putU64(uint64(len(a.Val)))
	for _, v := range a.Val {
		putU64(math.Float64bits(v))
	}
	putU64(uint64(len(b)))
	for _, v := range b {
		putU64(math.Float64bits(v))
	}
	flush()
	var d [32]byte
	h.Sum(d[:0])
	return d
}
