// Package aspmv implements the distributed sparse matrix–vector product and
// its augmented variant (ASpMV, Section 2.2 of the paper), which is the
// redundancy mechanism underlying ESR and ESRP.
//
// A Plan captures the static communication pattern of y = A·x under a block
// row distribution: the index sets I_{s,l} of vector entries node s must
// send to node l. Augmenting the plan for a redundancy target φ adds, per
// node s and designated destination d_{s,k} (Eq. 1), the resilient-copy sets
// Rc_{s,k} of entries shipped purely for redundancy, such that after every
// ASpMV each entry of the input vector resides on at least φ+1 distinct
// nodes (owner included) and therefore survives any simultaneous failure of
// up to φ nodes.
package aspmv

import (
	"fmt"
	"sort"

	"esrp/internal/cluster"
	"esrp/internal/dist"
	"esrp/internal/sparse"
)

// Transfer is one point-to-point leg of the exchange: the global indices of
// the vector entries to move between a fixed pair of nodes.
type Transfer struct {
	Peer int   // the other node's rank
	Idx  []int // sorted global indices
}

// Plan is the static communication schedule of the distributed SpMV for one
// matrix and partition. Plans are computed once at setup; the paper excludes
// setup from the measured runtimes and so does the harness.
type Plan struct {
	Part *dist.Partition
	Phi  int // redundancy target; 0 = plain SpMV plan

	// Send[s] lists, in ascending peer order, the entries node s sends for
	// the plain product (I_{s,l} for every l with nonzero coupling).
	Send [][]Transfer
	// Recv[s] mirrors Send: entries node s receives for the plain product.
	Recv [][]Transfer

	// ExtraSend[s] lists the resilient copies node s ships to its designated
	// destinations beyond the plain product (Rc_{s,k}); empty if Phi == 0.
	ExtraSend [][]Transfer
	// ExtraRecv mirrors ExtraSend.
	ExtraRecv [][]Transfer

	// views[s] is rank s's compact local view (ghost index maps, per-transfer
	// offsets, static ReceivedCopy layout); see exchanger.go.
	views []localView
}

// Designated returns d_{s,k}, the k-th designated destination node (1-based
// k) for resilient copies of node s's entries, per Eq. 1 of the paper: the
// φ nearest neighbours, alternating right and left.
func Designated(s, k, n int) int {
	var d int
	if k%2 == 1 {
		d = s + (k+1)/2
	} else {
		d = s - k/2
	}
	return ((d % n) + n) % n
}

// NewPlan computes the plain SpMV communication schedule for matrix a under
// partition part. Requirements: a square, part.M == a.Rows.
func NewPlan(a *sparse.CSR, part *dist.Partition) (*Plan, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("aspmv: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	if part.M != a.Rows {
		return nil, fmt.Errorf("aspmv: partition size %d != matrix size %d", part.M, a.Rows)
	}
	n := part.N
	p := &Plan{
		Part: part,
		Send: make([][]Transfer, n),
		Recv: make([][]Transfer, n),
	}
	needed := make([]bool, a.Rows)
	var touched []int
	for s := 0; s < n; s++ {
		lo, hi := part.Lo(s), part.Hi(s)
		touched = touched[:0]
		for i := lo; i < hi; i++ {
			cols, _ := a.Row(i)
			for _, j := range cols {
				if (j < lo || j >= hi) && !needed[j] {
					needed[j] = true
					touched = append(touched, j)
				}
			}
		}
		sort.Ints(touched)
		// Split the sorted ghost indices into per-owner runs.
		for b := 0; b < len(touched); {
			owner := part.Owner(touched[b])
			e := b
			ohi := part.Hi(owner)
			for e < len(touched) && touched[e] < ohi {
				e++
			}
			idx := append([]int(nil), touched[b:e]...)
			p.Recv[s] = append(p.Recv[s], Transfer{Peer: owner, Idx: idx})
			b = e
		}
		for _, j := range touched {
			needed[j] = false
		}
	}
	// Mirror receives into sends, in ascending destination order.
	for s := 0; s < n; s++ {
		for _, t := range p.Recv[s] {
			p.Send[t.Peer] = append(p.Send[t.Peer], Transfer{Peer: s, Idx: t.Idx})
		}
	}
	for s := 0; s < n; s++ {
		sort.Slice(p.Send[s], func(i, j int) bool { return p.Send[s][i].Peer < p.Send[s][j].Peer })
	}
	p.buildViews()
	return p, nil
}

// Augment extends the plan with resilient-copy transfers for redundancy
// target phi ≥ 1 (phi simultaneous node failures survivable). It implements
// the traversal of Section 2.2.1: for k = 1..φ, node s ships entry i ∈ I_s
// to d_{s,k} iff the entry is not already being sent there for the product
// and the running count of non-owner holders is still below φ.
func (p *Plan) Augment(phi int) error {
	n := p.Part.N
	if phi < 1 {
		return fmt.Errorf("aspmv: redundancy target must be ≥ 1, got %d", phi)
	}
	if phi > n-1 {
		return fmt.Errorf("aspmv: redundancy target %d needs at least %d nodes, have %d", phi, phi+1, n)
	}
	// Designated destinations must be distinct for the invariant to hold.
	for s := 0; s < n; s++ {
		seen := map[int]bool{s: true}
		for k := 1; k <= phi; k++ {
			d := Designated(s, k, n)
			if seen[d] {
				return fmt.Errorf("aspmv: designated destinations of node %d collide (n=%d, phi=%d)", s, n, phi)
			}
			seen[d] = true
		}
	}
	p.Phi = phi
	p.ExtraSend = make([][]Transfer, n)
	p.ExtraRecv = make([][]Transfer, n)
	for s := 0; s < n; s++ {
		lo, hi := p.Part.Lo(s), p.Part.Hi(s)
		m := hi - lo
		// holders[i-lo] = number of non-owner nodes that receive entry i in
		// the plain product (the paper's multiplicity m(i)).
		holders := make([]int, m)
		// sentTo[d] marks, for the current k-loop, which entries already go
		// to destination d (either for the product or as an earlier extra).
		sentTo := make(map[int]map[int]bool, phi+len(p.Send[s]))
		for _, t := range p.Send[s] {
			set := make(map[int]bool, len(t.Idx))
			for _, i := range t.Idx {
				set[i] = true
				holders[i-lo]++
			}
			sentTo[t.Peer] = set
		}
		for k := 1; k <= phi; k++ {
			d := Designated(s, k, n)
			already := sentTo[d]
			var extra []int
			for i := lo; i < hi; i++ {
				if already != nil && already[i] {
					continue
				}
				if holders[i-lo] >= phi {
					continue
				}
				extra = append(extra, i)
				holders[i-lo]++
			}
			if len(extra) == 0 {
				continue
			}
			if already == nil {
				already = make(map[int]bool, len(extra))
				sentTo[d] = already
			}
			for _, i := range extra {
				already[i] = true
			}
			p.ExtraSend[s] = append(p.ExtraSend[s], Transfer{Peer: d, Idx: extra})
		}
		sort.Slice(p.ExtraSend[s], func(i, j int) bool {
			return p.ExtraSend[s][i].Peer < p.ExtraSend[s][j].Peer
		})
	}
	for s := 0; s < n; s++ {
		for _, t := range p.ExtraSend[s] {
			p.ExtraRecv[t.Peer] = append(p.ExtraRecv[t.Peer], Transfer{Peer: s, Idx: t.Idx})
		}
	}
	for s := 0; s < n; s++ {
		sort.Slice(p.ExtraRecv[s], func(i, j int) bool {
			return p.ExtraRecv[s][i].Peer < p.ExtraRecv[s][j].Peer
		})
	}
	p.buildViews()
	return nil
}

// AugmentNaive extends the plan like Augment but without the paper's
// multiplicity counting (Section 2.2.1): node s ships its entire block to
// every designated destination d_{s,k} except the entries the product
// already delivers there. This is the obvious-but-wasteful baseline the
// Rc_{s,k} optimization is measured against (the redundancy invariant holds
// trivially); see BenchmarkAblationAugmentNaive.
func (p *Plan) AugmentNaive(phi int) error {
	n := p.Part.N
	if phi < 1 {
		return fmt.Errorf("aspmv: redundancy target must be ≥ 1, got %d", phi)
	}
	if phi > n-1 {
		return fmt.Errorf("aspmv: redundancy target %d needs at least %d nodes, have %d", phi, phi+1, n)
	}
	p.Phi = phi
	p.ExtraSend = make([][]Transfer, n)
	p.ExtraRecv = make([][]Transfer, n)
	for s := 0; s < n; s++ {
		lo, hi := p.Part.Lo(s), p.Part.Hi(s)
		already := make(map[int]map[int]bool, len(p.Send[s]))
		for _, t := range p.Send[s] {
			set := make(map[int]bool, len(t.Idx))
			for _, i := range t.Idx {
				set[i] = true
			}
			already[t.Peer] = set
		}
		for k := 1; k <= phi; k++ {
			d := Designated(s, k, n)
			var extra []int
			for i := lo; i < hi; i++ {
				if already[d] != nil && already[d][i] {
					continue
				}
				extra = append(extra, i)
			}
			if len(extra) > 0 {
				p.ExtraSend[s] = append(p.ExtraSend[s], Transfer{Peer: d, Idx: extra})
			}
		}
		sort.Slice(p.ExtraSend[s], func(i, j int) bool {
			return p.ExtraSend[s][i].Peer < p.ExtraSend[s][j].Peer
		})
	}
	for s := 0; s < n; s++ {
		for _, t := range p.ExtraSend[s] {
			p.ExtraRecv[t.Peer] = append(p.ExtraRecv[t.Peer], Transfer{Peer: s, Idx: t.Idx})
		}
	}
	for s := 0; s < n; s++ {
		sort.Slice(p.ExtraRecv[s], func(i, j int) bool {
			return p.ExtraRecv[s][i].Peer < p.ExtraRecv[s][j].Peer
		})
	}
	p.buildViews()
	return nil
}

// Holders returns, for every global index, the set of node ranks that hold a
// copy of the corresponding input-vector entry after one ASpMV: the owner
// plus every plain-product or resilient-copy receiver. Used by tests to
// check the φ+1 invariant and by the recovery phase to locate survivors.
func (p *Plan) Holders() [][]int {
	h := make([][]int, p.Part.M)
	for s := 0; s < p.Part.N; s++ {
		for i := p.Part.Lo(s); i < p.Part.Hi(s); i++ {
			h[i] = append(h[i], s)
		}
		for _, t := range p.Send[s] {
			for _, i := range t.Idx {
				h[i] = append(h[i], t.Peer)
			}
		}
		if p.ExtraSend != nil {
			for _, t := range p.ExtraSend[s] {
				for _, i := range t.Idx {
					h[i] = append(h[i], t.Peer)
				}
			}
		}
	}
	for i := range h {
		sort.Ints(h[i])
	}
	return h
}

// VerifyRedundancy checks that every entry has at least phi+1 distinct
// holders, returning a descriptive error for the first violation.
func (p *Plan) VerifyRedundancy(phi int) error {
	for i, hs := range p.Holders() {
		distinct := 0
		prev := -1
		for _, s := range hs {
			if s != prev {
				distinct++
				prev = s
			}
		}
		if distinct < phi+1 {
			return fmt.Errorf("aspmv: entry %d has %d holders, need %d", i, distinct, phi+1)
		}
	}
	return nil
}

// ExtraTraffic returns the total number of resilient-copy vector entries
// shipped per ASpMV (the pure redundancy overhead), and the number shipped
// for the plain product, for reporting.
func (p *Plan) ExtraTraffic() (extra, regular int) {
	for s := range p.Send {
		for _, t := range p.Send[s] {
			regular += len(t.Idx)
		}
	}
	for s := range p.ExtraSend {
		for _, t := range p.ExtraSend[s] {
			extra += len(t.Idx)
		}
	}
	return extra, regular
}

// Message tags used by the exchanges. The solver reserves tag ranges so that
// plan traffic never collides with recovery traffic.
const (
	TagHalo  = 100 // plain-product ghost entries
	TagExtra = 101 // resilient copies
)

// Exchange performs the plain SpMV halo exchange for node nd (view rank =
// partition part index): local entries of x are sent to consumers and ghost
// entries received into x (a full-length buffer). Returns nothing; x is
// ready for CSR.MulVecRows afterwards.
func (p *Plan) Exchange(nd *cluster.Node, x []float64) {
	s := nd.Rank()
	for _, t := range p.Send[s] {
		buf := gatherEntries(x, t.Idx)
		nd.Send(t.Peer, TagHalo, buf)
	}
	for _, t := range p.Recv[s] {
		vals := nd.Recv(t.Peer, TagHalo)
		scatterEntries(x, t.Idx, vals)
	}
}

// ReceivedCopy is the redundant information one node retains from one ASpMV:
// every input-vector entry it received (plain ghost entries and resilient
// copies alike), keyed by sorted global index. It is one queue slot's worth
// of one node's share of the distributed redundant copy p′ of the paper.
//
// Idx is the plan's static per-rank layout, shared by every copy the rank
// assembles — treat it as read-only. Only Val is per-iteration data.
type ReceivedCopy struct {
	Iter int // solver iteration the copy belongs to
	Idx  []int
	Val  []float64
}

// Lookup returns the values of the entries of the copy with global indices
// in [lo,hi), along with their indices. Binary search on the sorted index
// slice.
func (c *ReceivedCopy) Lookup(lo, hi int) (idx []int, val []float64) {
	b := sort.SearchInts(c.Idx, lo)
	e := sort.SearchInts(c.Idx, hi)
	return c.Idx[b:e], c.Val[b:e]
}

// ExchangeAugmented performs the ASpMV exchange on a full-length vector: the
// plain halo traffic plus the resilient copies. It returns the ReceivedCopy
// this node must retain (push into its redundancy queue) for iteration iter.
// The copy's Idx is the plan's precomputed sorted layout and its Val buffer
// is allocated with exact capacity — no per-iteration sorting or growth.
// The compact-buffer equivalent is Exchanger.StartAugmented/FinishAugmented.
func (p *Plan) ExchangeAugmented(nd *cluster.Node, x []float64, iter int) ReceivedCopy {
	if p.Phi < 1 {
		panic("aspmv: ExchangeAugmented on a non-augmented plan")
	}
	s := nd.Rank()
	for _, t := range p.Send[s] {
		nd.Send(t.Peer, TagHalo, gatherEntries(x, t.Idx))
	}
	for _, t := range p.ExtraSend[s] {
		nd.Send(t.Peer, TagExtra, gatherEntries(x, t.Idx))
	}
	v := &p.views[s]
	rc := ReceivedCopy{Iter: iter, Idx: v.copyIdx, Val: make([]float64, len(v.copyIdx))}
	for ti, t := range p.Recv[s] {
		vals := nd.Recv(t.Peer, TagHalo)
		scatterEntries(x, t.Idx, vals)
		for k, pos := range v.copyPos[ti] {
			rc.Val[pos] = vals[k]
		}
	}
	nPlain := len(p.Recv[s])
	for ti, t := range p.ExtraRecv[s] {
		vals := nd.Recv(t.Peer, TagExtra)
		for k, pos := range v.copyPos[nPlain+ti] {
			rc.Val[pos] = vals[k]
		}
	}
	return rc
}

func gatherEntries(x []float64, idx []int) []float64 {
	buf := make([]float64, len(idx))
	for k, i := range idx {
		buf[k] = x[i]
	}
	return buf
}

func scatterEntries(x []float64, idx []int, vals []float64) {
	if len(idx) != len(vals) {
		panic(fmt.Sprintf("aspmv: transfer length mismatch: %d indices, %d values", len(idx), len(vals)))
	}
	for k, i := range idx {
		x[i] = vals[k]
	}
}
