package aspmv

import (
	"sort"

	"esrp/internal/cluster"
)

// localView is the compact per-rank view of a plan: every transfer re-indexed
// into the node-local index space [0,m) owned ∪ [m,m+g) ghost, so the
// exchange operates on a ghost buffer of length g instead of a full-length
// vector. Views are static — computed once at plan setup and shared
// read-only by all exchanges.
type localView struct {
	ghost   []int // sorted global indices this rank receives for the product
	recvOff []int // per Recv transfer: start offset of its run within ghost

	sendIdx      [][]int // per Send transfer: owned-local indices (global − lo)
	extraSendIdx [][]int // per ExtraSend transfer: owned-local indices

	// sendContig/extraSendContig cache, per transfer, the start of its index
	// run when the indices are contiguous (-1 otherwise): those transfers —
	// whole-block ships under slab partitions — skip the per-entry gather.
	sendContig      []int
	extraSendContig []int

	// Augmented-exchange layout: the ReceivedCopy of one ASpMV always holds
	// the same (sorted) global indices, so the index slice and the position
	// of every incoming transfer element within it are precomputed. This is
	// what retires the per-iteration sortCopy and its allocation churn.
	copyIdx []int   // sorted global indices of the ReceivedCopy (plain + extra)
	copyPos [][]int // per Recv ⧺ ExtraRecv transfer: positions within copyIdx
	// copyContig caches, per transfer, the start of its position run when
	// the positions are contiguous (-1 otherwise): the scatter then becomes
	// one copy.
	copyContig []int
}

// buildViews (re)derives the per-rank local views. Called at the end of
// NewPlan and again by Augment/AugmentNaive to extend the copy layout.
func (p *Plan) buildViews() {
	n := p.Part.N
	p.views = make([]localView, n)
	for s := 0; s < n; s++ {
		v := &p.views[s]
		lo := p.Part.Lo(s)
		var extraSend, extraRecv []Transfer
		if p.ExtraSend != nil {
			extraSend = p.ExtraSend[s]
		}
		if p.ExtraRecv != nil {
			extraRecv = p.ExtraRecv[s]
		}
		for _, t := range p.Recv[s] {
			v.recvOff = append(v.recvOff, len(v.ghost))
			if len(v.ghost) > 0 && len(t.Idx) > 0 && t.Idx[0] <= v.ghost[len(v.ghost)-1] {
				panic("aspmv: Recv transfers are not globally sorted") // NewPlan invariant
			}
			v.ghost = append(v.ghost, t.Idx...)
		}
		v.sendIdx = make([][]int, len(p.Send[s]))
		v.sendContig = make([]int, len(p.Send[s]))
		for ti, t := range p.Send[s] {
			idx := make([]int, len(t.Idx))
			for k, gi := range t.Idx {
				idx[k] = gi - lo
			}
			v.sendIdx[ti] = idx
			v.sendContig[ti] = contiguousStart(idx)
		}
		v.extraSendIdx = make([][]int, len(extraSend))
		v.extraSendContig = make([]int, len(extraSend))
		for ti, t := range extraSend {
			idx := make([]int, len(t.Idx))
			for k, gi := range t.Idx {
				idx[k] = gi - lo
			}
			v.extraSendIdx[ti] = idx
			v.extraSendContig[ti] = contiguousStart(idx)
		}
		// Copy layout: plain ghost entries plus resilient copies, sorted.
		// The sets are disjoint (Augment never re-ships an entry the product
		// already delivers to the same node, and owners are unique).
		total := len(v.ghost)
		for _, t := range extraRecv {
			total += len(t.Idx)
		}
		v.copyIdx = make([]int, 0, total)
		v.copyIdx = append(v.copyIdx, v.ghost...)
		for _, t := range extraRecv {
			v.copyIdx = append(v.copyIdx, t.Idx...)
		}
		sort.Ints(v.copyIdx)
		v.copyPos = make([][]int, 0, len(p.Recv[s])+len(extraRecv))
		for _, transfers := range [][]Transfer{p.Recv[s], extraRecv} {
			for _, t := range transfers {
				pos := make([]int, len(t.Idx))
				// Transfer indices and the copy layout are both sorted, so
				// the positions fall out of one forward merge.
				cp := 0
				for k, gi := range t.Idx {
					for cp < len(v.copyIdx) && v.copyIdx[cp] < gi {
						cp++
					}
					pos[k] = cp
				}
				v.copyPos = append(v.copyPos, pos)
				v.copyContig = append(v.copyContig, contiguousStart(pos))
			}
		}
	}
}

// Ghost returns the sorted global indices of the ghost entries rank s
// receives for the plain product — the compact ghost index space the local
// matrix extraction (sparse.NewLocal) and the exchange halves share. The
// slice is plan-owned and read-only.
func (p *Plan) Ghost(s int) []int { return p.views[s].ghost }

// GhostLen returns the ghost-buffer length of rank s.
func (p *Plan) GhostLen(s int) int { return len(p.views[s].ghost) }

// RecvGhostOffset returns the start offset within rank s's ghost buffer of
// the run delivered by its ti-th Recv transfer. Recovery protocols use it to
// scatter per-peer payloads into a compact buffer.
func (p *Plan) RecvGhostOffset(s, ti int) int { return p.views[s].recvOff[ti] }

// CopyLen returns the entry count of rank s's augmented ReceivedCopy.
func (p *Plan) CopyLen(s int) int { return len(p.views[s].copyIdx) }

// Exchanger drives the halo exchange of one rank in Start/Finish halves over
// the compact local index space. Start posts all sends and receives; the
// caller then overlaps the interior-rows product with the in-flight halo and
// calls Finish (or FinishAugmented) to wait for and scatter the ghost
// values. All scratch is preallocated from the plan's static sizes, so a
// steady-state plain exchange performs no solver-side heap allocation.
//
// An Exchanger belongs to one simulated node's goroutine, like the
// cluster.Node it is used with. Create it after Augment when the plan is
// augmented, so the scratch covers the resilient-copy transfers too.
type Exchanger struct {
	p *Plan
	s int

	sendBuf []float64 // gather scratch, sized to the largest transfer
	reqs    []cluster.Request
	pool    [][]float64 // recycled ReceivedCopy value buffers

	inFlight  bool
	augmented bool
	haloBytes int64
}

// NewExchanger returns the exchange driver for rank s.
func (p *Plan) NewExchanger(s int) *Exchanger {
	v := &p.views[s]
	maxLen := 0
	for _, idx := range v.sendIdx {
		maxLen = max(maxLen, len(idx))
	}
	for _, idx := range v.extraSendIdx {
		maxLen = max(maxLen, len(idx))
	}
	nReqs := len(p.Recv[s])
	if p.ExtraRecv != nil {
		nReqs += len(p.ExtraRecv[s])
	}
	return &Exchanger{
		p: p, s: s,
		sendBuf: make([]float64, maxLen),
		reqs:    make([]cluster.Request, 0, nReqs),
	}
}

// GhostLen returns the rank's ghost-buffer length.
func (ex *Exchanger) GhostLen() int { return len(ex.p.views[ex.s].ghost) }

// HaloBytes returns the payload bytes this rank has sent through the
// exchanger (plain ghost entries plus resilient copies) — the measured halo
// traffic, as opposed to the planned volume of Plan.ExtraTraffic.
func (ex *Exchanger) HaloBytes() int64 { return ex.haloBytes }

// AddHaloBytes folds bytes carried over from a predecessor exchanger into
// the counter (used when a recovery re-plans onto a shrunken cluster).
func (ex *Exchanger) AddHaloBytes(n int64) { ex.haloBytes += n }

// postSends gathers and ships the owned entries of xOwn for one transfer
// list. xOwn is the node's owned block (length m). Contiguous index runs —
// the whole block, for slab partitions — skip the per-entry gather and ship
// straight out of xOwn (ISend copies the payload before returning).
func (ex *Exchanger) postSends(nd *cluster.Node, xOwn []float64, transfers []Transfer, idxs [][]int, contig []int, tag int) {
	for ti, t := range transfers {
		idx := idxs[ti]
		if c := contig[ti]; c >= 0 {
			seg := xOwn[c : c+len(idx)]
			nd.ISend(t.Peer, tag, seg)
			ex.haloBytes += int64(8 * len(seg))
			continue
		}
		buf := ex.sendBuf[:len(idx)]
		for k, i := range idx {
			buf[k] = xOwn[i]
		}
		nd.ISend(t.Peer, tag, buf)
		ex.haloBytes += int64(8 * len(buf))
	}
}

// contiguousStart returns the first element of idx when it is a contiguous
// ascending run (idx[k] = idx[0]+k), else -1.
func contiguousStart(idx []int) int {
	if len(idx) == 0 {
		return -1
	}
	for k, v := range idx {
		if v != idx[0]+k {
			return -1
		}
	}
	return idx[0]
}

// Start posts the plain halo exchange: sends of the owned entries consumers
// need, and nonblocking receives of this rank's ghost entries. The caller
// may compute on xOwn-independent data (interior rows) before Finish.
func (ex *Exchanger) Start(nd *cluster.Node, xOwn []float64) {
	if ex.inFlight {
		panic("aspmv: Start while an exchange is in flight")
	}
	v := &ex.p.views[ex.s]
	ex.postSends(nd, xOwn, ex.p.Send[ex.s], v.sendIdx, v.sendContig, TagHalo)
	ex.reqs = ex.reqs[:0]
	for _, t := range ex.p.Recv[ex.s] {
		ex.reqs = append(ex.reqs, nd.IRecv(t.Peer, TagHalo))
	}
	ex.inFlight, ex.augmented = true, false
}

// StartAugmented posts the ASpMV exchange: the plain halo traffic plus the
// resilient copies of the augmented plan.
func (ex *Exchanger) StartAugmented(nd *cluster.Node, xOwn []float64) {
	if ex.p.Phi < 1 {
		panic("aspmv: StartAugmented on a non-augmented plan")
	}
	if ex.inFlight {
		panic("aspmv: StartAugmented while an exchange is in flight")
	}
	v := &ex.p.views[ex.s]
	ex.postSends(nd, xOwn, ex.p.Send[ex.s], v.sendIdx, v.sendContig, TagHalo)
	ex.postSends(nd, xOwn, ex.p.ExtraSend[ex.s], v.extraSendIdx, v.extraSendContig, TagExtra)
	ex.reqs = ex.reqs[:0]
	for _, t := range ex.p.Recv[ex.s] {
		ex.reqs = append(ex.reqs, nd.IRecv(t.Peer, TagHalo))
	}
	for _, t := range ex.p.ExtraRecv[ex.s] {
		ex.reqs = append(ex.reqs, nd.IRecv(t.Peer, TagExtra))
	}
	ex.inFlight, ex.augmented = true, true
}

// Finish waits for the plain exchange and scatters the received values into
// the compact ghost buffer (length GhostLen).
func (ex *Exchanger) Finish(nd *cluster.Node, ghost []float64) {
	if !ex.inFlight || ex.augmented {
		panic("aspmv: Finish without a matching Start")
	}
	v := &ex.p.views[ex.s]
	for ti := range ex.reqs {
		vals := ex.reqs[ti].Wait()
		copy(ghost[v.recvOff[ti]:], vals)
		nd.Release(vals) // scattered: recycle the payload buffer
	}
	ex.inFlight = false
}

// FinishAugmented waits for the augmented exchange, scatters the plain ghost
// entries into the compact ghost buffer, and assembles the ReceivedCopy this
// rank must retain for iteration iter. The copy's index slice is the plan's
// static sorted layout (shared, read-only); the value buffer comes from the
// recycle pool when available, so steady-state ASpMV iterations reuse
// storage instead of growing the heap.
func (ex *Exchanger) FinishAugmented(nd *cluster.Node, ghost []float64, iter int) ReceivedCopy {
	if !ex.inFlight || !ex.augmented {
		panic("aspmv: FinishAugmented without a matching StartAugmented")
	}
	v := &ex.p.views[ex.s]
	val := ex.getValBuf(len(v.copyIdx))
	nPlain := len(ex.p.Recv[ex.s])
	for ti := range ex.reqs {
		vals := ex.reqs[ti].Wait()
		if ti < nPlain {
			copy(ghost[v.recvOff[ti]:], vals)
		}
		if c := v.copyContig[ti]; c >= 0 {
			copy(val[c:c+len(vals)], vals)
		} else {
			for k, pos := range v.copyPos[ti] {
				val[pos] = vals[k]
			}
		}
		nd.Release(vals) // scattered into ghost + val: recycle
	}
	ex.inFlight = false
	return ReceivedCopy{Iter: iter, Idx: v.copyIdx, Val: val}
}

// Recycle returns a ReceivedCopy value buffer (e.g. one evicted from the
// redundancy queue) to the pool for reuse by a later FinishAugmented.
func (ex *Exchanger) Recycle(val []float64) {
	if cap(ex.pool) == 0 {
		ex.pool = make([][]float64, 0, 4)
	}
	if len(ex.pool) < cap(ex.pool) {
		ex.pool = append(ex.pool, val)
	}
}

func (ex *Exchanger) getValBuf(n int) []float64 {
	for len(ex.pool) > 0 {
		buf := ex.pool[len(ex.pool)-1]
		ex.pool = ex.pool[:len(ex.pool)-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]float64, n)
}
