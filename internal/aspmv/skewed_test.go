package aspmv

import (
	"math"
	"testing"

	"esrp/internal/cluster"
	"esrp/internal/dist"
	"esrp/internal/sparse"
)

// skewedBandedSPD is the skewed analog of matgen.BandedSPD: a diagonally
// dominant banded SPD matrix whose first quarter of rows carries a far
// wider band (bw 24 vs 2), so a uniform block split concentrates the SpMV
// work on the low-rank nodes.
func skewedBandedSPD(n int) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		bw := 2
		if i < n/4 {
			bw = 24
		}
		for j := i + 1; j <= i+bw && j < n; j++ {
			b.AddSym(i, j, -1)
			rowAbs[i]++
			rowAbs[j]++
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, rowAbs[i]+1)
	}
	return b.Build()
}

func nnzWeights(a *sparse.CSR) []float64 {
	w := make([]float64, a.Rows)
	for i := range w {
		w[i] = float64(a.RowPtr[i+1] - a.RowPtr[i])
	}
	return w
}

// Plans must work identically on non-uniform partitions: the redundancy
// invariant holds after Augment, and the balanced layout actually lowers
// the maximum per-node nonzero load that motivates it.
func TestPlanOnBalancedSkewedPartition(t *testing.T) {
	a := skewedBandedSPD(600)
	nodes, phi := 8, 2
	block := dist.NewBlockPartition(a.Rows, nodes)
	bal, err := dist.NewBalancedWeightPartition(nnzWeights(a), nodes)
	if err != nil {
		t.Fatal(err)
	}
	if bal.Equal(block) {
		t.Fatal("balanced partition of a skewed matrix degenerated to the uniform split")
	}
	qBlock, err := block.Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	qBal, err := bal.Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	if qBal.MaxLoad >= qBlock.MaxLoad {
		t.Fatalf("balanced max nnz load %g not below uniform %g", qBal.MaxLoad, qBlock.MaxLoad)
	}

	p, err := NewPlan(a, bal)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Augment(phi); err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyRedundancy(phi); err != nil {
		t.Fatal(err)
	}
	// Every transfer must still respect ownership under the skewed layout.
	for s := 0; s < nodes; s++ {
		for _, tr := range p.Recv[s] {
			for _, i := range tr.Idx {
				if bal.Owner(i) != tr.Peer {
					t.Fatalf("node %d receives %d from %d, owner is %d", s, i, tr.Peer, bal.Owner(i))
				}
			}
		}
	}
}

// The distributed exchange on a balanced skewed partition must reproduce
// the sequential product exactly, as it does for uniform blocks.
func TestExchangeMatchesSequentialOnSkewedPartition(t *testing.T) {
	a := skewedBandedSPD(400)
	m := a.Rows
	nodes := 6
	part, err := dist.NewBalancedWeightPartition(nnzWeights(a), nodes)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(a, part)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m)
	for i := range x {
		x[i] = math.Cos(float64(i) * 0.37)
	}
	want := make([]float64, m)
	a.MulVec(want, x)

	got := make([]float64, m)
	comm := cluster.New(nodes, testModel())
	err = comm.Run(func(nd *cluster.Node) {
		lo, hi := part.Lo(nd.Rank()), part.Hi(nd.Rank())
		full := make([]float64, m)
		copy(full[lo:hi], x[lo:hi])
		plan.Exchange(nd, full)
		local := make([]float64, hi-lo)
		a.MulVecRows(local, full, lo, hi)
		parts := nd.Gather(0, local)
		if nd.Rank() == 0 {
			for s, p := range parts {
				copy(got[part.Lo(s):part.Hi(s)], p)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("entry %d: %g vs %g", i, got[i], want[i])
		}
	}
}
