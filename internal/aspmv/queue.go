package aspmv

import "fmt"

// Queue is the fixed-depth redundancy queue of Section 3: each ASpMV pushes
// the node's ReceivedCopy for one iteration, releasing the oldest copy.
// ESR uses depth 2 (copies of two successive iterations are always present);
// ESRP needs depth 3 so that a failure occurring after only the first push
// of a storage stage still leaves two successive copies from the previous
// stage available (Fig. 1 of the paper).
type Queue struct {
	depth int
	slots []ReceivedCopy // oldest first; len ≤ depth
}

// NewQueue creates a queue with the given depth (≥ 1).
func NewQueue(depth int) *Queue {
	if depth < 1 {
		panic(fmt.Sprintf("aspmv: queue depth must be ≥ 1, got %d", depth))
	}
	return &Queue{depth: depth, slots: make([]ReceivedCopy, 0, depth)}
}

// Depth returns the queue capacity.
func (q *Queue) Depth() int { return q.depth }

// Len returns the number of copies currently held.
func (q *Queue) Len() int { return len(q.slots) }

// Push inserts the copy as newest, dropping the oldest if full. The evicted
// copy (ok=true) is returned so callers can recycle its value buffer via
// Exchanger.Recycle.
func (q *Queue) Push(c ReceivedCopy) (evicted ReceivedCopy, ok bool) {
	if len(q.slots) == q.depth {
		evicted, ok = q.slots[0], true
		copy(q.slots, q.slots[1:])
		q.slots[q.depth-1] = c
		return evicted, ok
	}
	q.slots = append(q.slots, c)
	return ReceivedCopy{}, false
}

// ValBytes returns the bytes held in the queued copies' value buffers (the
// index layouts are plan-static and shared, so they are not counted).
func (q *Queue) ValBytes() int64 {
	var b int64
	for i := range q.slots {
		b += 8 * int64(len(q.slots[i].Val))
	}
	return b
}

// Iters returns the iteration numbers of the held copies, oldest first.
func (q *Queue) Iters() []int {
	it := make([]int, len(q.slots))
	for i, c := range q.slots {
		it[i] = c.Iter
	}
	return it
}

// Get returns the copy for the given iteration, or nil.
func (q *Queue) Get(iter int) *ReceivedCopy {
	for i := range q.slots {
		if q.slots[i].Iter == iter {
			return &q.slots[i]
		}
	}
	return nil
}

// LatestPair returns the newest pair of copies with successive iteration
// numbers (j-1, j) — the reconstruction needs p′^(j-1) and p′^(j). It
// returns ok=false if no such pair exists yet (e.g. before the first storage
// stage completed, or when only the first half of a stage was pushed and no
// previous stage exists).
func (q *Queue) LatestPair() (prev, cur *ReceivedCopy, ok bool) {
	for i := len(q.slots) - 1; i >= 1; i-- {
		if q.slots[i].Iter == q.slots[i-1].Iter+1 {
			return &q.slots[i-1], &q.slots[i], true
		}
	}
	return nil, nil, false
}

// Reset drops all copies (used when the solver restarts from scratch).
func (q *Queue) Reset() { q.slots = q.slots[:0] }
