package aspmv

import (
	"esrp/internal/cluster"
	"esrp/internal/sparse"
)

// MulOverlapped drives one plain halo exchange fused with the node's local
// product through its planned kernel: Start posts the traffic, the interior
// rows multiply while the halo is in flight, Finish scatters the ghost
// values, and the boundary rows complete the product. xg is the owned+ghost
// assembly buffer (length m + GhostLen) with xg[:m] already holding the
// owned block; dst has length m. With blocking the product waits for the
// whole halo first (the ablation path). The modeled compute cost charged per
// half matches the kernel's entry counts, so the simulated clock is
// independent of the storage layout.
func (ex *Exchanger) MulOverlapped(nd *cluster.Node, k sparse.Kernel, dst, xg []float64, blocking bool) {
	m := len(xg) - ex.GhostLen()
	ex.Start(nd, xg[:m])
	if blocking {
		ex.Finish(nd, xg[m:])
		k.Mul(dst, xg)
		nd.Compute(2 * float64(k.NNZ()))
		return
	}
	k.MulInterior(dst, xg)
	nd.Compute(2 * float64(k.InteriorNNZ()))
	ex.Finish(nd, xg[m:])
	k.MulBoundary(dst, xg)
	nd.Compute(2 * float64(k.BoundaryNNZ()))
}

// MulOverlappedAugmented is MulOverlapped for the augmented (resilient-copy)
// exchange: the same overlap structure, with the ReceivedCopy of iteration
// iter assembled by the Finish half and returned by value for the caller to
// retain.
func (ex *Exchanger) MulOverlappedAugmented(nd *cluster.Node, k sparse.Kernel, dst, xg []float64, iter int, blocking bool) ReceivedCopy {
	m := len(xg) - ex.GhostLen()
	ex.StartAugmented(nd, xg[:m])
	if blocking {
		rc := ex.FinishAugmented(nd, xg[m:], iter)
		k.Mul(dst, xg)
		nd.Compute(2 * float64(k.NNZ()))
		return rc
	}
	k.MulInterior(dst, xg)
	nd.Compute(2 * float64(k.InteriorNNZ()))
	rc := ex.FinishAugmented(nd, xg[m:], iter)
	k.MulBoundary(dst, xg)
	nd.Compute(2 * float64(k.BoundaryNNZ()))
	return rc
}
