package aspmv

import (
	"esrp/internal/cluster"
	"esrp/internal/obs"
	"esrp/internal/sparse"
)

// MulOverlapped drives one plain halo exchange fused with the node's local
// product through its planned kernel: Start posts the traffic, the interior
// rows multiply while the halo is in flight, Finish scatters the ghost
// values, and the boundary rows complete the product. xg is the owned+ghost
// assembly buffer (length m + GhostLen) with xg[:m] already holding the
// owned block; dst has length m. With blocking the product waits for the
// whole halo first (the ablation path). The modeled compute cost charged per
// half matches the kernel's entry counts, so the simulated clock is
// independent of the storage layout.
//
// Each half lands on the node's span timeline (halo_post, spmv_interior,
// halo_wait, spmv_boundary — or halo_wait then a single spmv span when
// blocking); the obs.Rank methods no-op when tracing is off.
func (ex *Exchanger) MulOverlapped(nd *cluster.Node, k sparse.Kernel, dst, xg []float64, blocking bool) {
	m := len(xg) - ex.GhostLen()
	tr := nd.Trace()
	t0 := nd.Clock()
	ex.Start(nd, xg[:m])
	tr.Span(obs.KindHaloPost, t0, nd.Clock())
	if blocking {
		t0 = nd.Clock()
		ex.Finish(nd, xg[m:])
		tr.Span(obs.KindHaloWait, t0, nd.Clock())
		t0 = nd.Clock()
		k.Mul(dst, xg)
		nd.Compute(2 * float64(k.NNZ()))
		tr.Span(obs.KindSpMV, t0, nd.Clock())
		return
	}
	t0 = nd.Clock()
	k.MulInterior(dst, xg)
	nd.Compute(2 * float64(k.InteriorNNZ()))
	tr.Span(obs.KindSpMVInterior, t0, nd.Clock())
	t0 = nd.Clock()
	ex.Finish(nd, xg[m:])
	tr.Span(obs.KindHaloWait, t0, nd.Clock())
	t0 = nd.Clock()
	k.MulBoundary(dst, xg)
	nd.Compute(2 * float64(k.BoundaryNNZ()))
	tr.Span(obs.KindSpMVBoundary, t0, nd.Clock())
}

// MulOverlappedAugmented is MulOverlapped for the augmented (resilient-copy)
// exchange: the same overlap structure and span taxonomy, with the
// ReceivedCopy of iteration iter assembled by the Finish half and returned
// by value for the caller to retain.
func (ex *Exchanger) MulOverlappedAugmented(nd *cluster.Node, k sparse.Kernel, dst, xg []float64, iter int, blocking bool) ReceivedCopy {
	m := len(xg) - ex.GhostLen()
	tr := nd.Trace()
	t0 := nd.Clock()
	ex.StartAugmented(nd, xg[:m])
	tr.Span(obs.KindHaloPost, t0, nd.Clock())
	if blocking {
		t0 = nd.Clock()
		rc := ex.FinishAugmented(nd, xg[m:], iter)
		tr.Span(obs.KindHaloWait, t0, nd.Clock())
		t0 = nd.Clock()
		k.Mul(dst, xg)
		nd.Compute(2 * float64(k.NNZ()))
		tr.Span(obs.KindSpMV, t0, nd.Clock())
		return rc
	}
	t0 = nd.Clock()
	k.MulInterior(dst, xg)
	nd.Compute(2 * float64(k.InteriorNNZ()))
	tr.Span(obs.KindSpMVInterior, t0, nd.Clock())
	t0 = nd.Clock()
	rc := ex.FinishAugmented(nd, xg[m:], iter)
	tr.Span(obs.KindHaloWait, t0, nd.Clock())
	t0 = nd.Clock()
	k.MulBoundary(dst, xg)
	nd.Compute(2 * float64(k.BoundaryNNZ()))
	tr.Span(obs.KindSpMVBoundary, t0, nd.Clock())
	return rc
}
