package aspmv

import (
	"testing"
	"testing/quick"

	"esrp/internal/dist"
	"esrp/internal/matgen"
)

func TestAugmentNaiveRedundancyInvariant(t *testing.T) {
	a := matgen.EmiliaLike(6, 6, 6, 5)
	part := dist.NewBlockPartition(a.Rows, 8)
	for _, phi := range []int{1, 2, 3} {
		plan, err := NewPlan(a, part)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.AugmentNaive(phi); err != nil {
			t.Fatalf("AugmentNaive(%d): %v", phi, err)
		}
		if err := plan.VerifyRedundancy(phi); err != nil {
			t.Fatalf("φ=%d: %v", phi, err)
		}
	}
}

func TestAugmentNaiveShipsAtLeastAsMuch(t *testing.T) {
	// The naive scheme must never ship fewer resilient copies than the
	// multiplicity-counted scheme, for any pattern and φ.
	f := func(seed int64, bwRaw, phiRaw uint8) bool {
		bw := 1 + int(bwRaw)%8
		phi := 1 + int(phiRaw)%3
		a := matgen.BandedSPD(240, bw, seed)
		part := dist.NewBlockPartition(a.Rows, 6)
		counted, err := NewPlan(a, part)
		if err != nil {
			return false
		}
		if err := counted.Augment(phi); err != nil {
			return false
		}
		naive, err := NewPlan(a, part)
		if err != nil {
			return false
		}
		if err := naive.AugmentNaive(phi); err != nil {
			return false
		}
		if err := naive.VerifyRedundancy(phi); err != nil {
			return false
		}
		ce, _ := counted.ExtraTraffic()
		ne, _ := naive.ExtraTraffic()
		return ne >= ce
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAugmentNaiveRejectsBadPhi(t *testing.T) {
	a := matgen.Poisson2D(8, 8)
	part := dist.NewBlockPartition(a.Rows, 4)
	plan, err := NewPlan(a, part)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.AugmentNaive(0); err == nil {
		t.Error("φ=0 must be rejected")
	}
	if err := plan.AugmentNaive(4); err == nil {
		t.Error("φ=n must be rejected")
	}
}

func TestAugmentNaiveExchangeWorks(t *testing.T) {
	// The exchanged product must be identical to the plain plan's, and the
	// retained copy must cover the node's plain ghost entries plus the
	// naive resilient copies.
	a := matgen.Poisson2D(12, 12)
	part := dist.NewBlockPartition(a.Rows, 4)
	plan, err := NewPlan(a, part)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.AugmentNaive(2); err != nil {
		t.Fatal(err)
	}
	holders := plan.Holders()
	for i, hs := range holders {
		if len(hs) < 3 {
			t.Fatalf("entry %d has %d holders, want ≥ 3", i, len(hs))
		}
	}
}
