package aspmv

import (
	"math/rand"
	"sync"
	"testing"

	"esrp/internal/cluster"
	"esrp/internal/dist"
	"esrp/internal/matgen"
	"esrp/internal/sparse"
)

// assembleCompact runs the compact Start/Finish exchange on every rank of a
// simulated cluster and returns each rank's owned+ghost buffer.
func assembleCompact(t *testing.T, a *sparse.CSR, plan *Plan, x []float64, augmented bool) ([][]float64, []ReceivedCopy) {
	t.Helper()
	n := plan.Part.N
	bufs := make([][]float64, n)
	copies := make([]ReceivedCopy, n)
	var mu sync.Mutex
	c := cluster.New(n, testModel())
	err := c.Run(func(nd *cluster.Node) {
		s := nd.Rank()
		lo, hi := plan.Part.Lo(s), plan.Part.Hi(s)
		m := hi - lo
		ex := plan.NewExchanger(s)
		buf := make([]float64, m+ex.GhostLen())
		copy(buf[:m], x[lo:hi])
		var rc ReceivedCopy
		if augmented {
			ex.StartAugmented(nd, buf[:m])
			rc = ex.FinishAugmented(nd, buf[m:], 3)
		} else {
			ex.Start(nd, buf[:m])
			ex.Finish(nd, buf[m:])
		}
		mu.Lock()
		bufs[s], copies[s] = buf, rc
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return bufs, copies
}

// TestExchangerMatchesExchange checks the compact Start/Finish halves
// against the full-length reference Exchange: the assembled owned+ghost
// buffer must hold exactly the entries the full-length path scatters.
func TestExchangerMatchesExchange(t *testing.T) {
	a := matgen.Poisson2D(14, 11)
	part := dist.NewBlockPartition(a.Rows, 6)
	plan, err := NewPlan(a, part)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	bufs, _ := assembleCompact(t, a, plan, x, false)
	for s := 0; s < part.N; s++ {
		lo, hi := part.Lo(s), part.Hi(s)
		m := hi - lo
		ghost := plan.Ghost(s)
		if len(bufs[s]) != m+len(ghost) {
			t.Fatalf("rank %d buffer length %d, want %d", s, len(bufs[s]), m+len(ghost))
		}
		for g, gi := range ghost {
			if bufs[s][m+g] != x[gi] {
				t.Fatalf("rank %d ghost slot %d (global %d): got %v, want %v", s, g, gi, bufs[s][m+g], x[gi])
			}
		}
	}
}

// TestExchangerAugmentedMatchesExchangeAugmented checks that the compact
// augmented exchange assembles bitwise the same ReceivedCopy as the
// full-length reference path, including the shared static index layout.
func TestExchangerAugmentedMatchesExchangeAugmented(t *testing.T) {
	a := matgen.Poisson2D(12, 12)
	part := dist.NewBlockPartition(a.Rows, 6)
	plan, err := NewPlan(a, part)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Augment(2); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	// Reference: full-length ExchangeAugmented.
	ref := make([]ReceivedCopy, part.N)
	var mu sync.Mutex
	c := cluster.New(part.N, testModel())
	if err := c.Run(func(nd *cluster.Node) {
		full := make([]float64, a.Rows)
		lo, hi := part.Lo(nd.Rank()), part.Hi(nd.Rank())
		copy(full[lo:hi], x[lo:hi])
		rc := plan.ExchangeAugmented(nd, full, 3)
		mu.Lock()
		ref[nd.Rank()] = rc
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	_, got := assembleCompact(t, a, plan, x, true)
	for s := 0; s < part.N; s++ {
		if got[s].Iter != 3 {
			t.Fatalf("rank %d: Iter = %d", s, got[s].Iter)
		}
		if len(got[s].Idx) != len(ref[s].Idx) || len(got[s].Val) != len(ref[s].Val) {
			t.Fatalf("rank %d: copy sizes (%d,%d) want (%d,%d)", s,
				len(got[s].Idx), len(got[s].Val), len(ref[s].Idx), len(ref[s].Val))
		}
		for k := range ref[s].Idx {
			if got[s].Idx[k] != ref[s].Idx[k] || got[s].Val[k] != ref[s].Val[k] {
				t.Fatalf("rank %d entry %d: got (%d,%v), want (%d,%v)", s, k,
					got[s].Idx[k], got[s].Val[k], ref[s].Idx[k], ref[s].Val[k])
			}
		}
		if len(got[s].Idx) > 0 && &got[s].Idx[0] != &ref[s].Idx[0] {
			t.Fatalf("rank %d: Idx must be the plan's shared static layout", s)
		}
	}
}

// TestExchangerRecyclesValBuffers pins the satellite fix for the
// per-iteration allocation churn: a value buffer handed back via Recycle is
// reused by the next FinishAugmented instead of allocating a fresh one.
func TestExchangerRecyclesValBuffers(t *testing.T) {
	a := matgen.Poisson2D(10, 10)
	part := dist.NewBlockPartition(a.Rows, 4)
	plan, err := NewPlan(a, part)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Augment(1); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i)
	}
	c := cluster.New(part.N, testModel())
	if err := c.Run(func(nd *cluster.Node) {
		s := nd.Rank()
		lo, hi := part.Lo(s), part.Hi(s)
		m := hi - lo
		ex := plan.NewExchanger(s)
		buf := make([]float64, m+ex.GhostLen())
		copy(buf[:m], x[lo:hi])

		ex.StartAugmented(nd, buf[:m])
		rc1 := ex.FinishAugmented(nd, buf[m:], 0)
		ex.Recycle(rc1.Val)
		ex.StartAugmented(nd, buf[:m])
		rc2 := ex.FinishAugmented(nd, buf[m:], 1)
		if len(rc1.Val) > 0 && &rc1.Val[0] != &rc2.Val[0] {
			panic("recycled value buffer was not reused")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestExchangerGuards covers the misuse panics.
func TestExchangerGuards(t *testing.T) {
	a := matgen.Poisson2D(8, 8)
	part := dist.NewBlockPartition(a.Rows, 2)
	plan, err := NewPlan(a, part)
	if err != nil {
		t.Fatal(err)
	}
	ex := plan.NewExchanger(0)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("Finish without Start", func() { ex.Finish(nil, nil) })
	mustPanic("FinishAugmented without Start", func() { ex.FinishAugmented(nil, nil, 0) })
	mustPanic("StartAugmented on plain plan", func() { ex.StartAugmented(nil, nil) })
}
