package aspmv

import (
	"testing"
	"testing/quick"
)

func mkCopy(iter int) ReceivedCopy {
	return ReceivedCopy{Iter: iter, Idx: []int{iter}, Val: []float64{float64(iter)}}
}

func TestQueuePushEvicts(t *testing.T) {
	q := NewQueue(3)
	for i := 0; i < 5; i++ {
		q.Push(mkCopy(i))
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	its := q.Iters()
	if its[0] != 2 || its[1] != 3 || its[2] != 4 {
		t.Fatalf("Iters = %v, want [2 3 4]", its)
	}
	if q.Get(1) != nil {
		t.Fatal("evicted copy must be gone")
	}
	if c := q.Get(3); c == nil || c.Val[0] != 3 {
		t.Fatal("Get(3) wrong")
	}
}

func TestQueueDepthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("depth 0 must panic")
		}
	}()
	NewQueue(0)
}

func TestLatestPairSuccessive(t *testing.T) {
	q := NewQueue(3)
	if _, _, ok := q.LatestPair(); ok {
		t.Fatal("empty queue has no pair")
	}
	q.Push(mkCopy(10))
	if _, _, ok := q.LatestPair(); ok {
		t.Fatal("single copy has no pair")
	}
	q.Push(mkCopy(11))
	prev, cur, ok := q.LatestPair()
	if !ok || prev.Iter != 10 || cur.Iter != 11 {
		t.Fatalf("pair = %v %v %v", prev, cur, ok)
	}
	// Push a non-successive copy (start of the next storage stage): the
	// previous stage's pair must still be found — the Fig. 1 scenario that
	// motivates queue depth 3.
	q.Push(mkCopy(20))
	prev, cur, ok = q.LatestPair()
	if !ok || prev.Iter != 10 || cur.Iter != 11 {
		t.Fatalf("after stage-1 push: pair = %v %v %v, want (10,11)", prev, cur, ok)
	}
	// Completing the stage replaces the usable pair.
	q.Push(mkCopy(21))
	prev, cur, ok = q.LatestPair()
	if !ok || prev.Iter != 20 || cur.Iter != 21 {
		t.Fatalf("after stage-2 push: pair = (%d,%d), want (20,21)", prev.Iter, cur.Iter)
	}
}

// With depth 2, the mid-stage failure scenario loses the recoverable pair —
// the design reason the paper requires depth 3 for ESRP.
func TestDepthTwoLosesPairMidStage(t *testing.T) {
	q2, q3 := NewQueue(2), NewQueue(3)
	for _, it := range []int{10, 11, 20} { // stage (10,11) complete, stage 20 half done
		q2.Push(mkCopy(it))
		q3.Push(mkCopy(it))
	}
	if _, _, ok := q2.LatestPair(); ok {
		t.Fatal("depth 2 should have lost the (10,11) pair")
	}
	if _, _, ok := q3.LatestPair(); !ok {
		t.Fatal("depth 3 must still hold the (10,11) pair")
	}
}

// Reproduces the queue timeline of Fig. 1 of the paper for T = 5.
func TestQueueTimelineFigure1(t *testing.T) {
	T := 5
	q := NewQueue(3)
	recoverableAt := func() (int, bool) {
		_, cur, ok := q.LatestPair()
		if !ok {
			return 0, false
		}
		return cur.Iter, true
	}
	for j := 0; j <= 2*T+2; j++ {
		isStorage := (j%T == 0 || (j-1)%T == 0) && j > 2
		if isStorage {
			q.Push(mkCopy(j))
		}
		wantOK := false
		wantIter := 0
		switch {
		case j < T+1: // before the first stage completes: unrecoverable
		case j < 2*T+1: // first stage complete: recover T+1
			wantOK, wantIter = true, T+1
		default: // second stage complete: recover 2T+1
			wantOK, wantIter = true, 2*T+1
		}
		it, ok := recoverableAt()
		if ok != wantOK || (ok && it != wantIter) {
			t.Fatalf("j=%d: recoverable=(%d,%v), want (%d,%v)", j, it, ok, wantIter, wantOK)
		}
	}
}

func TestQueueReset(t *testing.T) {
	q := NewQueue(2)
	q.Push(mkCopy(1))
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("Reset must empty the queue")
	}
	if q.Depth() != 2 {
		t.Fatal("Reset must keep the depth")
	}
}

// Property: after any push sequence, Len ≤ depth and Iters returns the most
// recent pushes in order.
func TestQueueProperty(t *testing.T) {
	f := func(iters []int, depthSeed uint8) bool {
		depth := 1 + int(depthSeed%4)
		q := NewQueue(depth)
		for _, it := range iters {
			q.Push(mkCopy(it))
		}
		if q.Len() > depth || q.Len() > len(iters) {
			return false
		}
		got := q.Iters()
		start := len(iters) - len(got)
		for k, it := range got {
			if it != iters[start+k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
