package aspmv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"esrp/internal/cluster"
	"esrp/internal/dist"
	"esrp/internal/matgen"
	"esrp/internal/sparse"
)

func testModel() cluster.CostModel {
	return cluster.CostModel{FlopTime: 1e-9, Latency: 1e-6, BytePeriod: 1e-9, Overhead: 1e-7}
}

func TestDesignatedEq1(t *testing.T) {
	// d_{s,k}: k odd → s+⌈k/2⌉, k even → s−k/2 (mod N).
	n := 10
	cases := []struct{ s, k, want int }{
		{3, 1, 4}, {3, 2, 2}, {3, 3, 5}, {3, 4, 1}, {3, 5, 6}, {3, 6, 0},
		{0, 2, 9}, // wraps below zero
		{9, 1, 0}, // wraps above n
	}
	for _, c := range cases {
		if got := Designated(c.s, c.k, n); got != c.want {
			t.Fatalf("Designated(%d,%d,%d) = %d, want %d", c.s, c.k, n, got, c.want)
		}
	}
}

func TestDesignatedDistinctNearestNeighbours(t *testing.T) {
	n := 16
	for s := 0; s < n; s++ {
		seen := map[int]bool{s: true}
		for k := 1; k <= 8; k++ {
			d := Designated(s, k, n)
			if seen[d] {
				t.Fatalf("s=%d k=%d: destination %d repeated", s, k, d)
			}
			seen[d] = true
		}
	}
}

func TestNewPlanTridiagonal(t *testing.T) {
	// Tridiagonal matrix on 4 nodes × 2 rows: each node exchanges exactly
	// the boundary entries with its neighbours.
	a := matgen.BandedSPD(8, 1, 1)
	part := dist.NewBlockPartition(8, 4)
	p, err := NewPlan(a, part)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 (rows 2,3) needs column 1 from node 0 and column 4 from node 2
	// (when those couplings exist in the random pattern); every transfer
	// index must be owned by the peer.
	for s := 0; s < 4; s++ {
		for _, tr := range p.Recv[s] {
			if tr.Peer == s {
				t.Fatalf("node %d receives from itself", s)
			}
			for _, i := range tr.Idx {
				if part.Owner(i) != tr.Peer {
					t.Fatalf("node %d receives index %d from %d, owner %d", s, i, tr.Peer, part.Owner(i))
				}
			}
		}
	}
}

func TestPlanSendRecvMirror(t *testing.T) {
	a := matgen.EmiliaLike(4, 4, 4, 3)
	part := dist.NewBlockPartition(64, 8)
	p, err := NewPlan(a, part)
	if err != nil {
		t.Fatal(err)
	}
	// Every Send[s]→l transfer must appear as Recv[l]←s with identical
	// indices.
	for s := 0; s < 8; s++ {
		for _, snd := range p.Send[s] {
			found := false
			for _, rcv := range p.Recv[snd.Peer] {
				if rcv.Peer != s {
					continue
				}
				found = true
				if len(rcv.Idx) != len(snd.Idx) {
					t.Fatalf("mirror length mismatch %d→%d", s, snd.Peer)
				}
				for k := range rcv.Idx {
					if rcv.Idx[k] != snd.Idx[k] {
						t.Fatalf("mirror index mismatch %d→%d", s, snd.Peer)
					}
				}
			}
			if !found {
				t.Fatalf("send %d→%d has no mirror", s, snd.Peer)
			}
		}
	}
}

func TestPlanRejectsBadShapes(t *testing.T) {
	b := sparse.NewBuilder(3, 4)
	b.Add(0, 0, 1)
	if _, err := NewPlan(b.Build(), dist.NewBlockPartition(3, 1)); err == nil {
		t.Fatal("non-square matrix must be rejected")
	}
	a := matgen.Poisson2D(2, 2)
	if _, err := NewPlan(a, dist.NewBlockPartition(5, 1)); err == nil {
		t.Fatal("partition size mismatch must be rejected")
	}
}

func TestAugmentValidation(t *testing.T) {
	a := matgen.Poisson2D(4, 4)
	part := dist.NewBlockPartition(16, 4)
	p, err := NewPlan(a, part)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Augment(0); err == nil {
		t.Fatal("phi=0 must be rejected")
	}
	if err := p.Augment(4); err == nil {
		t.Fatal("phi ≥ n must be rejected")
	}
	if err := p.Augment(3); err != nil {
		t.Fatal(err)
	}
}

// The paper's central redundancy guarantee: after Augment(phi), every vector
// entry has at least phi+1 distinct holders.
func TestAugmentRedundancyInvariant(t *testing.T) {
	for _, tc := range []struct {
		name  string
		a     *sparse.CSR
		nodes int
		phi   int
	}{
		{"poisson2d-phi1", matgen.Poisson2D(8, 8), 8, 1},
		{"poisson2d-phi3", matgen.Poisson2D(8, 8), 8, 3},
		{"emilia-phi1", matgen.EmiliaLike(4, 4, 4, 1), 8, 1},
		{"emilia-phi3", matgen.EmiliaLike(4, 4, 4, 1), 8, 3},
		{"emilia-phi8", matgen.EmiliaLike(5, 5, 5, 1), 12, 8},
		{"audikw-phi3", matgen.AudikwLike(3, 3, 3, 3, 1), 9, 3},
		{"diagonal-phi2", sparse.Identity(12), 6, 2}, // no product traffic at all
	} {
		part := dist.NewBlockPartition(tc.a.Rows, tc.nodes)
		p, err := NewPlan(tc.a, part)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := p.Augment(tc.phi); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := p.VerifyRedundancy(tc.phi); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
}

// Property-based version over random banded patterns, node counts, and phi.
func TestAugmentRedundancyInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 24 + rng.Intn(40)
		bw := 1 + rng.Intn(5)
		nodes := 4 + rng.Intn(8)
		phi := 1 + rng.Intn(3)
		if phi > nodes-1 {
			phi = nodes - 1
		}
		a := matgen.BandedSPD(n, bw, seed)
		part := dist.NewBlockPartition(n, nodes)
		p, err := NewPlan(a, part)
		if err != nil {
			return false
		}
		if err := p.Augment(phi); err != nil {
			return false
		}
		return p.VerifyRedundancy(phi) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Augmentation must not ship more copies than needed: for an entry already
// received by ≥ phi nodes in the plain product, no extras are sent.
func TestAugmentNoWasteWhenProductCovers(t *testing.T) {
	// A dense small matrix: every node needs every column, so the plain
	// product already replicates everything n-1 times.
	n := 12
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := -1.0
			if i == j {
				v = float64(n) + 1
			}
			b.Add(i, j, v)
		}
	}
	part := dist.NewBlockPartition(n, 6)
	p, err := NewPlan(b.Build(), part)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Augment(3); err != nil {
		t.Fatal(err)
	}
	extra, regular := p.ExtraTraffic()
	if extra != 0 {
		t.Fatalf("dense matrix needs no extra copies, got %d (regular %d)", extra, regular)
	}
}

func TestExtraTrafficGrowsWithPhi(t *testing.T) {
	a := matgen.EmiliaLike(5, 5, 5, 2)
	part := dist.NewBlockPartition(a.Rows, 10)
	extras := make(map[int]int)
	for _, phi := range []int{1, 3, 8} {
		p, err := NewPlan(a, part)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Augment(phi); err != nil {
			t.Fatal(err)
		}
		extras[phi], _ = p.ExtraTraffic()
	}
	// A 27-point stencil already ships every entry to at least one
	// neighbour, so phi=1 may need no extras at all; higher targets must
	// cost monotonically more and phi=8 strictly more than phi=3.
	if extras[1] > extras[3] || extras[3] >= extras[8] {
		t.Fatalf("extra traffic not monotone in phi: %v", extras)
	}
	if extras[8] == 0 {
		t.Fatal("phi=8 must require extra copies on a banded matrix")
	}
}

// Distributed exchange must produce exactly the sequential product.
func TestExchangeMatchesSequentialSpMV(t *testing.T) {
	a := matgen.EmiliaLike(4, 4, 4, 5)
	m := a.Rows
	part := dist.NewBlockPartition(m, 8)
	plan, err := NewPlan(a, part)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	want := make([]float64, m)
	a.MulVec(want, x)

	got := make([]float64, m)
	comm := cluster.New(8, testModel())
	err = comm.Run(func(nd *cluster.Node) {
		lo, hi := part.Lo(nd.Rank()), part.Hi(nd.Rank())
		full := make([]float64, m)
		copy(full[lo:hi], x[lo:hi])
		plan.Exchange(nd, full)
		local := make([]float64, hi-lo)
		a.MulVecRows(local, full, lo, hi)
		parts := nd.Gather(0, local)
		if nd.Rank() == 0 {
			for s, p := range parts {
				copy(got[part.Lo(s):part.Hi(s)], p)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("entry %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// The augmented exchange must (a) still produce the right product inputs and
// (b) leave every entry recoverable from the union of retained copies.
func TestExchangeAugmentedRetainsAllEntries(t *testing.T) {
	a := matgen.EmiliaLike(4, 4, 4, 6)
	m := a.Rows
	nodes, phi := 8, 3
	part := dist.NewBlockPartition(m, nodes)
	plan, err := NewPlan(a, part)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Augment(phi); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m)
	for i := range x {
		x[i] = float64(i)*0.25 - 3
	}
	copies := make([]ReceivedCopy, nodes)
	comm := cluster.New(nodes, testModel())
	err = comm.Run(func(nd *cluster.Node) {
		lo, hi := part.Lo(nd.Rank()), part.Hi(nd.Rank())
		full := make([]float64, m)
		copy(full[lo:hi], x[lo:hi])
		copies[nd.Rank()] = plan.ExchangeAugmented(nd, full, 7)
	})
	if err != nil {
		t.Fatal(err)
	}
	// For every possible contiguous failure of ≤ phi nodes, the union of
	// surviving retained copies must cover all lost entries with the right
	// values.
	for f0 := 0; f0 < nodes; f0++ {
		for w := 1; w <= phi && f0+w <= nodes; w++ {
			lost := map[int]bool{}
			for i := part.Lo(f0); i < part.Hi(f0+w-1+1-1); i++ {
				_ = i
			}
			flo, fhi := part.RangeOfParts(f0, f0+w)
			for i := flo; i < fhi; i++ {
				lost[i] = false
			}
			for s := 0; s < nodes; s++ {
				if s >= f0 && s < f0+w {
					continue // failed
				}
				idx, val := copies[s].Lookup(flo, fhi)
				for k, gi := range idx {
					if val[k] != x[gi] {
						t.Fatalf("node %d retained wrong value for %d: %g vs %g", s, gi, val[k], x[gi])
					}
					lost[gi] = true
				}
			}
			for gi, ok := range lost {
				if !ok {
					t.Fatalf("failure [%d,+%d): entry %d unrecoverable", f0, w, gi)
				}
			}
		}
	}
	for s := range copies {
		if copies[s].Iter != 7 {
			t.Fatalf("copy iter = %d, want 7", copies[s].Iter)
		}
	}
}

func TestExchangeAugmentedPanicsWithoutAugment(t *testing.T) {
	a := matgen.Poisson2D(4, 4)
	part := dist.NewBlockPartition(16, 4)
	plan, err := NewPlan(a, part)
	if err != nil {
		t.Fatal(err)
	}
	comm := cluster.New(4, testModel())
	runErr := comm.Run(func(nd *cluster.Node) {
		full := make([]float64, 16)
		plan.ExchangeAugmented(nd, full, 0)
	})
	if runErr == nil {
		t.Fatal("ExchangeAugmented on plain plan must fail")
	}
}

func TestReceivedCopyLookup(t *testing.T) {
	c := ReceivedCopy{Iter: 1, Idx: []int{2, 5, 9, 14}, Val: []float64{20, 50, 90, 140}}
	idx, val := c.Lookup(5, 14)
	if len(idx) != 2 || idx[0] != 5 || idx[1] != 9 || val[0] != 50 || val[1] != 90 {
		t.Fatalf("Lookup(5,14) = %v %v", idx, val)
	}
	if idx, _ := c.Lookup(0, 2); len(idx) != 0 {
		t.Fatal("empty range lookup must be empty")
	}
}

func TestHoldersIncludeOwner(t *testing.T) {
	a := matgen.Poisson2D(6, 6)
	part := dist.NewBlockPartition(36, 6)
	p, err := NewPlan(a, part)
	if err != nil {
		t.Fatal(err)
	}
	for i, hs := range p.Holders() {
		owner := part.Owner(i)
		found := false
		for _, h := range hs {
			if h == owner {
				found = true
			}
		}
		if !found {
			t.Fatalf("entry %d: owner %d missing from holders %v", i, owner, hs)
		}
	}
}
