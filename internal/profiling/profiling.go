// Package profiling wires the standard -cpuprofile/-memprofile/-allocsprofile
// flags into the command-line binaries, so future performance work can
// profile esrpbench and esrpcampaign without patching them.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins CPU profiling into cpuPath (if non-empty) and returns a stop
// function that finishes the CPU profile and writes a heap profile to
// memPath and an allocation profile to allocsPath (each if non-empty). The
// heap profile is GC-settled first so it reflects live objects; the allocs
// profile keeps every allocation site since process start, which is the
// view the zero-alloc work cares about. The stop function is idempotent:
// the first call finalizes the profiles and reports any error, later calls
// are no-ops returning the first call's error — so the binaries' error
// paths (which both defer stop and call it before os.Exit) cannot corrupt
// a profile by stopping twice.
func Start(cpuPath, memPath, allocsPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	var once sync.Once
	var stopErr error
	return func() error {
		once.Do(func() { stopErr = finish(cpuFile, memPath, allocsPath) })
		return stopErr
	}, nil
}

// finish finalizes the CPU profile and writes the heap and allocs snapshots.
func finish(cpuFile *os.File, memPath, allocsPath string) error {
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("profiling: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if allocsPath != "" {
		f, err := os.Create(allocsPath)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		// debug=0 keeps the binary proto format `go tool pprof` expects.
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			return fmt.Errorf("profiling: %w", err)
		}
		return f.Close()
	}
	return nil
}
