package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoOp(t *testing.T) {
	stop, err := Start("", "", "")
	if err != nil {
		t.Fatalf("Start with no paths: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestCPUHeapAndAllocsProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	allocs := filepath.Join(dir, "allocs.pprof")
	stop, err := Start(cpu, mem, allocs)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU and heap so the profiles have something to sample.
	s := 0.0
	for i := 0; i < 1_000_000; i++ {
		s += float64(i % 7)
	}
	_ = s
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem, allocs} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStopIdempotent(t *testing.T) {
	dir := t.TempDir()
	stop, err := Start(filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof"), filepath.Join(dir, "allocs.pprof"))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("first stop: %v", err)
	}
	// A second stop must not re-run StopCPUProfile or rewrite the heap
	// profile — it returns the first call's (nil) error.
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

func TestStopErrorSticky(t *testing.T) {
	dir := t.TempDir()
	// The heap profile targets a path whose parent does not exist, so the
	// stop fails; the failure must repeat verbatim instead of turning into
	// a spurious success.
	stop, err := Start("", filepath.Join(dir, "missing", "mem.pprof"), "")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	first := stop()
	if first == nil {
		t.Fatal("stop with unwritable heap path succeeded")
	}
	if second := stop(); second != first {
		t.Errorf("second stop returned %v, want the sticky first error %v", second, first)
	}
}

func TestStopErrorStickyAllocs(t *testing.T) {
	dir := t.TempDir()
	stop, err := Start("", "", filepath.Join(dir, "missing", "allocs.pprof"))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if stop() == nil {
		t.Fatal("stop with unwritable allocs path succeeded")
	}
}

func TestStartBadCPUPath(t *testing.T) {
	dir := t.TempDir()
	if _, err := Start(filepath.Join(dir, "missing", "cpu.pprof"), "", ""); err == nil {
		t.Fatal("Start with unwritable CPU path succeeded")
	}
}
