package campaign

import (
	"esrp/internal/ccache"
	"esrp/internal/cluster"
	"esrp/internal/core"
	"esrp/internal/precond"
	"esrp/internal/replay"
)

// cellCacheState classifies how the cache probe satisfied one cell.
type cellCacheState uint8

const (
	// cellMiss: no usable entry — the cell solves (and stores both tiers).
	cellMiss cellCacheState = iota
	// cellResultHit: the stored model matches the run's — the cell is
	// filled straight from the result tier, zero solves.
	cellResultHit
	// cellScheduleHit: the stored model differs — machine-independent
	// fields come from the result tier and the simulated times from an
	// O(events) re-cost of the stored schedule.
	cellScheduleHit
)

// cacheRun is the per-run cache context: keys, probe classifications and
// eagerly loaded entries for every cell. Probing happens before the
// prepare phase so fully-warm prep groups skip factorization entirely —
// that skip, not the solve skip, is most of the warm-path win on wide
// grids. Entries are validated (frame checksum + full decode) at probe
// time, so a hit can never degrade into a late corruption surprise; a
// corrupt entry is classified as a miss and recomputed, never trusted.
type cacheRun struct {
	model    cluster.CostModel // the run's effective recording model
	keys     []ccache.Key
	state    []cellCacheState
	entries  []*ccache.ResultEntry
	scheds   []*replay.Schedule
	compiled []bool // probe already filled c.Events/c.Clamped
}

// cellInputOf assembles the content address of one cell. The values
// mirror exactly what runCell puts into core.Config — in particular
// Spares is zeroed for strategies that never draw from the pool, and the
// default preconditioner is normalized to core's effective choice so
// spelled-out and defaulted grids share entries.
func (g *Grid) cellInputOf(c *Cell, strat core.Strategy, mdigest [32]byte) ccache.CellInput {
	spares := 0
	if strat == core.StrategyESR || strat == core.StrategyESRP {
		spares = g.Spares
	}
	pk := g.Precond
	if pk == precond.Default {
		pk = precond.BlockJacobi
	}
	return ccache.CellInput{
		Matrix:   mdigest,
		Nodes:    c.Nodes,
		Strategy: strat,
		T:        c.T,
		Phi:      c.Phi,
		Seed:     c.Seed,
		Events:   c.Events,
		Spares:   spares,
		Rtol:     g.Rtol,
		MaxIter:  g.MaxIter,
		MaxBlock: g.MaxBlock,
		Precond:  pk,
		Kernel:   g.Kernel,
	}
}

// probeCache compiles every cell's scenario, computes its content
// address, and classifies it against the cache (nil when the grid has no
// cache). Cells whose strategy fails to parse or whose scenario fails to
// compile stay misses; runCell surfaces their errors exactly as on the
// cold path.
func (g *Grid) probeCache(cells []Cell, matrices map[string]MatrixSpec) *cacheRun {
	if g.Cache == nil {
		return nil
	}
	model := cluster.DefaultCostModel()
	if g.CostModel != nil {
		model = *g.CostModel
	}
	cr := &cacheRun{
		model:    model,
		keys:     make([]ccache.Key, len(cells)),
		state:    make([]cellCacheState, len(cells)),
		entries:  make([]*ccache.ResultEntry, len(cells)),
		scheds:   make([]*replay.Schedule, len(cells)),
		compiled: make([]bool, len(cells)),
	}
	digests := make(map[string][32]byte, len(matrices))
	for name, m := range matrices {
		digests[name] = ccache.MatrixDigest(m.A, m.B)
	}
	for i := range cells {
		c := &cells[i]
		strat, err := core.ParseStrategy(c.Strategy)
		if err != nil {
			continue
		}
		if err := g.compileCell(c, strat); err != nil {
			continue
		}
		cr.compiled[i] = true
		in := g.cellInputOf(c, strat, digests[c.Matrix])
		cr.keys[i] = in.Key()
		entry, ok := g.Cache.GetResult(cr.keys[i])
		if !ok {
			continue
		}
		// An exact-model entry answers the cell from the result tier
		// alone; a machine sweep or a model change additionally needs the
		// recorded schedule. If the schedule tier can't deliver one, the
		// whole cell re-solves so both tiers get rewritten consistently.
		needSchedule := len(g.Machines) > 0 || entry.Model != model
		if !needSchedule {
			cr.state[i] = cellResultHit
			cr.entries[i] = entry
			continue
		}
		sched, ok := g.Cache.GetSchedule(cr.keys[i])
		if !ok {
			continue
		}
		cr.entries[i] = entry
		cr.scheds[i] = sched
		if entry.Model == model {
			cr.state[i] = cellResultHit
		} else {
			cr.state[i] = cellScheduleHit
		}
	}
	return cr
}

// needsPrep reports whether cell i still needs a Prepared context: every
// cell on a cache-less run, only the misses on a cache-backed one.
func (cr *cacheRun) needsPrep(i int) bool {
	return cr == nil || cr.state[i] == cellMiss
}

// fillFromCache completes one probe-classified hit: report fields from
// the result tier, simulated times re-costed for a schedule hit, machine
// sweep points replayed from the cached schedule. Returns false (and
// demotes the cell to a miss) only if a re-cost fails, in which case the
// caller falls through to a live solve.
func (g *Grid) fillFromCache(index int, c *Cell, mcs []MachineCell, cr *cacheRun) bool {
	entry := cr.entries[index]
	sched := cr.scheds[index]

	r := &entry.Result
	c.Converged = r.Converged
	c.Iterations = r.Iterations
	c.TotalSteps = r.TotalSteps
	c.RelResidual = r.RelResidual
	c.SimTime = r.SimTime
	c.RecoveryTime = r.RecoveryTime
	c.WastedIters = r.WastedIters
	c.Drift = r.Drift
	c.MaxNodeBytes = r.MaxNodeBytes
	c.HaloBytes = r.HaloBytes
	c.BytesSent = r.BytesSent
	c.ActiveNodes = r.ActiveNodes
	c.Kernels = r.Kernels
	c.Recoveries = r.Recoveries

	if cr.state[index] == cellScheduleHit {
		rep, err := sched.Recost(replay.CostModel(cr.model))
		if err != nil {
			cr.state[index] = cellMiss
			return false
		}
		// Recost is bit-for-bit equal to a live solve under the same
		// model (the replay-equivalence invariant), so the warm report
		// matches a cold run at this machine point exactly.
		c.SimTime = rep.SimTime
		c.RecoveryTime = rep.RecoveryTime
		// Upgrade the entry to the current model: the next run at this
		// machine point becomes a pure result hit.
		up := *entry
		up.Model = cr.model
		up.Result.SimTime = rep.SimTime
		up.Result.RecoveryTime = rep.RecoveryTime
		g.Cache.PutResult(cr.keys[index], &up)
		g.HostObs.CacheScheduleHit()
	} else {
		g.HostObs.CacheResultHit()
	}

	for mi := range mcs {
		rep, err := sched.Recost(replay.CostModel(g.Machines[mi].Model))
		if err != nil {
			mcs[mi].Err = err.Error()
			continue
		}
		mcs[mi].SimTime = rep.SimTime
		mcs[mi].RecoveryTime = rep.RecoveryTime
		mcs[mi].BytesSent = rep.BytesSent
		mcs[mi].MsgsSent = rep.MsgsSent
	}
	if sched != nil && g.OnCellSchedule != nil {
		g.OnCellSchedule(index, c, sched)
	}
	cr.scheds[index] = nil // probe loaded eagerly; release once consumed
	return true
}

// storeCell writes a freshly solved cell into both tiers (schedule first,
// so a crash between the two writes leaves a state the next probe treats
// as a plain miss). Store failures are deliberately non-fatal: the cache
// is an accelerator, and a cell that fails to persist simply recomputes
// next run.
func (g *Grid) storeCell(index int, c *Cell, res *core.Result, sched *replay.Schedule, cr *cacheRun) {
	if c.Err != "" {
		return
	}
	if sched != nil {
		g.Cache.PutSchedule(cr.keys[index], sched) //nolint:errcheck // best-effort persist
	}
	g.Cache.PutResult(cr.keys[index], &ccache.ResultEntry{ //nolint:errcheck // best-effort persist
		Model: cr.model,
		Result: ccache.CellResult{
			Converged:    res.Converged,
			Iterations:   res.Iterations,
			TotalSteps:   res.TotalSteps,
			RelResidual:  res.RelResidual,
			SimTime:      res.SimTime,
			RecoveryTime: res.RecoveryTime,
			WastedIters:  res.WastedIters,
			Drift:        res.Drift,
			MaxNodeBytes: res.MaxNodeBytes,
			HaloBytes:    res.HaloBytes,
			BytesSent:    res.BytesSent,
			ActiveNodes:  res.ActiveNodes,
			Kernels:      core.CondenseKernels(res.Kernels),
			Recoveries:   res.Events,
		},
	})
}
