// Package campaign runs whole experiment grids — the cross-product of
// strategy × checkpoint interval T × redundancy φ × matrix × node count ×
// scenario seed — concurrently across host cores, one simulated cluster per
// cell. Where the harness replays the paper's fixed constellation (single
// injected failure, two locations), a campaign sweeps stochastic
// multi-failure scenarios from internal/faultsim over arbitrary grids,
// aggregates per-cell results into median/percentile statistics over seeds,
// and exports structured JSON/CSV for downstream analysis.
//
// Every cell is deterministic (the simulated cluster is, and the scenario is
// seeded), so a campaign's output is bitwise reproducible regardless of how
// the cells are scheduled onto workers.
package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"esrp/internal/ccache"
	"esrp/internal/cluster"
	"esrp/internal/core"
	"esrp/internal/faultsim"
	"esrp/internal/hostobs"
	"esrp/internal/obs"
	"esrp/internal/precond"
	"esrp/internal/replay"
	"esrp/internal/sparse"
)

// MatrixSpec names one SPD system of the grid.
type MatrixSpec struct {
	Name string
	A    *sparse.CSR
	B    []float64 // nil = b for x* = ones
}

// MachinePoint is one machine model of a machine-parameter sweep
// (Grid.Machines): a named cluster.CostModel the recorded schedules are
// re-costed under.
type MachinePoint struct {
	Name  string            `json:"name"`
	Model cluster.CostModel `json:"model"`
}

// Grid describes one campaign: the sweep axes, the failure process, and the
// solver settings shared by every cell.
type Grid struct {
	Matrices   []MatrixSpec
	Nodes      []int           // simulated cluster sizes
	Strategies []core.Strategy // swept strategies
	Ts         []int           // checkpoint intervals (ESRP uses T > 2, IMCR T > 1)
	Phis       []int           // redundancy counts
	Seeds      []int64         // scenario seeds; one cell per seed

	// Scenario is the failure-process template; its Nodes and Seed fields
	// are overridden per cell. The zero value (ModelFixed with no schedule)
	// means failure-free cells.
	Scenario faultsim.Scenario

	// Spares is the replacement-node pool for ESR/ESRP cells (0 =
	// unlimited, the paper's framework); once exhausted, recovery falls
	// back to the no-spare shrink. Other strategies always replace.
	Spares int

	Rtol      float64 // outer tolerance (default 1e-8)
	MaxIter   int     // iteration cap (0 = solver default)
	MaxBlock  int     // block Jacobi bound (default 10)
	Precond   precond.Kind
	Kernel    sparse.KernelKind // SpMV layout for every cell (zero = planner)
	CostModel *cluster.CostModel

	// Workers bounds the number of cells solved concurrently on the host
	// (default: GOMAXPROCS). Each cell spawns its own simulated cluster.
	Workers int

	// TraceSample enables span tracing on every N-th cell of the enumerated
	// grid (1 = every cell, 0 = off). Sampling keys on the cell's position
	// in the deterministic grid order, so the traced subset — and each
	// trace's content — is independent of Workers.
	TraceSample int

	// OnCellTrace receives the trace of every sampled cell. It is called
	// from worker goroutines and must be safe for concurrent use. Traces are
	// delivered only through this callback; the report itself is unchanged
	// by sampling.
	OnCellTrace func(index int, c *Cell, tr *obs.Trace)

	// Progress, when set, is called after each finished cell with the count
	// of completed cells and the grid size — the hook for live progress
	// meters. Called from worker goroutines.
	Progress func(done, total int)

	// Machines, when non-empty, adds a machine-parameter sweep axis on the
	// replay engine: each cell's solve runs exactly once with schedule
	// recording on (under CostModel — the recording model), and the schedule
	// is re-costed under every machine point in O(events), filling
	// Report.MachineCells at fixed (cell, machine) indices. The replays ride
	// the affinity-sharded worker scheduler with their cell, so the report
	// bytes stay independent of Workers.
	Machines []MachinePoint

	// OnCellSchedule, when set together with Machines, receives every
	// successfully recorded cell's schedule (for artifact export). Called
	// from worker goroutines; must be safe for concurrent use.
	OnCellSchedule func(index int, c *Cell, s *replay.Schedule)

	// Cache, when set, consults the persistent content-addressed store
	// (internal/ccache) before solving: each cell's complete input is
	// digested (machine model excluded — see ccache.CellInput), an
	// exact-model entry fills the cell from the result tier with zero
	// solves, a model mismatch re-costs the cached event schedule in
	// O(events), and misses solve once and persist both tiers. Hits land
	// at their grid indices, so report JSON/CSV stay byte-identical to a
	// cold run at any worker count. Prep groups whose every cell hits
	// skip factorization entirely. Nil (the default) is the cold path,
	// bit-identical to pre-cache behaviour.
	Cache *ccache.Cache

	// HostObs, when set, records host-side execution telemetry for the run:
	// per-worker wall-clock cell/steal timelines, shard layout and steal
	// traffic, prepKey-affinity hit rate, barrier wait histograms shared by
	// every cell's simulated cluster, and Go-runtime samples at phase
	// boundaries. Nil (the default) records nothing — the worker loop then
	// never reads the wall clock, and report bytes, cell trajectories and
	// allocation behaviour are identical to a recorder-less run.
	HostObs *hostobs.CampaignRecorder
}

// Cell is one grid point: its coordinates, the compiled scenario, and the
// condensed solve result.
type Cell struct {
	Matrix   string `json:"matrix"`
	Nodes    int    `json:"nodes"`
	Strategy string `json:"strategy"`
	T        int    `json:"t"`
	Phi      int    `json:"phi"`
	Seed     int64  `json:"seed"`

	Events  []core.FailureSpec `json:"events,omitempty"`  // compiled timeline (after φ-clamping)
	Clamped int                `json:"clamped,omitempty"` // events narrowed to fit φ

	Converged    bool                 `json:"converged"`
	Iterations   int                  `json:"iterations"`
	TotalSteps   int                  `json:"total_steps"`
	RelResidual  float64              `json:"rel_residual"`
	SimTime      float64              `json:"sim_time_s"`
	RecoveryTime float64              `json:"recovery_time_s"`
	WastedIters  int                  `json:"wasted_iters"`
	Drift        float64              `json:"drift"`
	MaxNodeBytes int64                `json:"max_node_bytes"`
	HaloBytes    int64                `json:"halo_bytes"`
	BytesSent    int64                `json:"bytes_sent"`
	ActiveNodes  int                  `json:"active_nodes"`
	Kernels      string               `json:"kernels,omitempty"` // condensed per-node SpMV layouts
	Recoveries   []core.RecoveryEvent `json:"recoveries,omitempty"`

	Err string `json:"error,omitempty"` // non-empty: the cell failed to run
}

// Aggregate condenses one (matrix, nodes, strategy, T, φ) group over its
// seeds: robust statistics of the per-seed results.
type Aggregate struct {
	Matrix   string `json:"matrix"`
	Nodes    int    `json:"nodes"`
	Strategy string `json:"strategy"`
	T        int    `json:"t"`
	Phi      int    `json:"phi"`

	Seeds         int     `json:"seeds"`
	ConvergedRate float64 `json:"converged_rate"`
	Errors        int     `json:"errors"`

	MedianTime float64 `json:"median_time_s"`
	P10Time    float64 `json:"p10_time_s"`
	P90Time    float64 `json:"p90_time_s"`

	MedianIters    float64 `json:"median_iters"`
	MedianRecovery float64 `json:"median_recovery_s"`
	MedianWasted   float64 `json:"median_wasted_iters"`
	MeanEvents     float64 `json:"mean_events"`
	MaxNodeBytes   int64   `json:"max_node_bytes"`
	ShrunkCells    int     `json:"shrunk_cells"` // cells that finished on fewer nodes
}

// MachineCell is one (cell, machine) point of a machine sweep: the recorded
// cell's schedule re-costed under that machine model.
type MachineCell struct {
	Cell         int     `json:"cell"`    // index into Report.Cells
	Machine      int     `json:"machine"` // index into Report.Machines
	SimTime      float64 `json:"sim_time_s"`
	RecoveryTime float64 `json:"recovery_time_s"`
	BytesSent    int64   `json:"bytes_sent"`
	MsgsSent     int64   `json:"msgs_sent"`
	Err          string  `json:"error,omitempty"`
}

// Report is a campaign's full output.
type Report struct {
	Scenario   string      `json:"scenario"` // the failure process (per-cell seeds listed in Seeds)
	Seeds      []int64     `json:"seeds"`    // scenario seeds the grid swept
	Spares     int         `json:"spares"`
	Cells      []Cell      `json:"cells"`
	Aggregates []Aggregate `json:"aggregates"`

	// Machine sweep output (Grid.Machines): MachineCells[i*len(Machines)+m]
	// is cell i replayed under machine m.
	Machines     []MachinePoint `json:"machines,omitempty"`
	MachineCells []MachineCell  `json:"machine_cells,omitempty"`
}

func (g Grid) withDefaults() (Grid, error) {
	if len(g.Matrices) == 0 {
		return g, fmt.Errorf("campaign: no matrices")
	}
	// Default into a copy: Run takes the grid by value, so filling names
	// and right-hand sides must not leak into the caller's slice.
	g.Matrices = append([]MatrixSpec(nil), g.Matrices...)
	for i := range g.Matrices {
		m := &g.Matrices[i]
		if m.A == nil {
			return g, fmt.Errorf("campaign: matrix %d (%q) is nil", i, m.Name)
		}
		if m.Name == "" {
			m.Name = fmt.Sprintf("matrix%d", i)
		}
		if m.B == nil {
			b := make([]float64, m.A.Rows)
			one := make([]float64, m.A.Rows)
			for k := range one {
				one[k] = 1
			}
			m.A.MulVecRows(b, one, 0, m.A.Rows)
			m.B = b
		}
	}
	if len(g.Nodes) == 0 {
		g.Nodes = []int{8}
	}
	if len(g.Strategies) == 0 {
		g.Strategies = []core.Strategy{core.StrategyESRP, core.StrategyIMCR}
	}
	if len(g.Ts) == 0 {
		g.Ts = []int{20}
	}
	if len(g.Phis) == 0 {
		g.Phis = []int{1}
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []int64{1}
	}
	// A seed-independent scenario (fixed schedule, or the zero value =
	// failure-free) makes every seed's cell bit-identical; collapse the
	// seed axis instead of running redundant copies.
	if g.Scenario.Model == faultsim.ModelFixed && len(g.Seeds) > 1 {
		g.Seeds = g.Seeds[:1]
	}
	if g.Rtol <= 0 {
		g.Rtol = 1e-8
	}
	if g.MaxBlock <= 0 {
		g.MaxBlock = 10
	}
	if g.Spares < 0 {
		return g, fmt.Errorf("campaign: spares must be ≥ 0, got %d", g.Spares)
	}
	if g.Workers <= 0 {
		g.Workers = runtime.GOMAXPROCS(0)
	}
	if len(g.Machines) > 0 {
		g.Machines = append([]MachinePoint(nil), g.Machines...)
		for i := range g.Machines {
			if g.Machines[i].Name == "" {
				g.Machines[i].Name = fmt.Sprintf("machine%d", i)
			}
		}
	}
	return g, nil
}

// tsFor maps the grid's interval list to the strategy's admissible cells,
// mirroring the harness conventions: ESR is the T = 1 point, ESRP needs
// T > 2, IMCR T > 1, and None has no interval axis.
func (g Grid) tsFor(s core.Strategy) []int {
	switch s {
	case core.StrategyNone:
		return []int{0}
	case core.StrategyESR:
		return []int{1}
	case core.StrategyESRP:
		var out []int
		for _, t := range g.Ts {
			if t > 2 {
				out = append(out, t)
			}
		}
		return out
	case core.StrategyIMCR:
		var out []int
		for _, t := range g.Ts {
			if t > 1 {
				out = append(out, t)
			}
		}
		return out
	}
	return nil
}

func (g Grid) phisFor(s core.Strategy) []int {
	if s == core.StrategyNone {
		return []int{0}
	}
	return g.Phis
}

// Run executes the campaign: it enumerates the grid, solves every cell
// concurrently across Workers host goroutines, and aggregates the per-seed
// statistics. Cell errors are recorded, not fatal; Run fails only on an
// invalid grid.
func Run(g Grid) (*Report, error) {
	g, err := g.withDefaults()
	if err != nil {
		return nil, err
	}

	// Enumerate the cross-product in deterministic order. A requested
	// strategy with no admissible interval is a configuration error, not a
	// silent omission from the export.
	for _, strat := range g.Strategies {
		if len(g.tsFor(strat)) == 0 {
			return nil, fmt.Errorf("campaign: strategy %v has no admissible checkpoint interval in %v (ESRP needs T > 2, IMCR T > 1)", strat, g.Ts)
		}
	}
	var cells []Cell
	for _, m := range g.Matrices {
		for _, n := range g.Nodes {
			for _, strat := range g.Strategies {
				for _, t := range g.tsFor(strat) {
					for _, phi := range g.phisFor(strat) {
						for _, seed := range g.Seeds {
							cells = append(cells, Cell{
								Matrix: m.Name, Nodes: n,
								Strategy: strat.String(), T: t, Phi: phi, Seed: seed,
							})
						}
					}
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("campaign: empty grid (no admissible strategy×T cells)")
	}

	matrices := make(map[string]MatrixSpec, len(g.Matrices))
	for _, m := range g.Matrices {
		matrices[m.Name] = m
	}

	// Host telemetry (inert when HostObs is nil): one barrier-stats sink
	// sized for the largest cluster of the grid serves every cell, and the
	// runtime sampler brackets the prepare and solve phases.
	maxNodes := 0
	for _, n := range g.Nodes {
		if n > maxNodes {
			maxNodes = n
		}
	}
	g.HostObs.Begin(g.Workers, len(cells), maxNodes)
	g.HostObs.SamplePhase("start")

	// Probe the persistent cache first (nil cacheRun when Grid.Cache is
	// nil): every cell's scenario compiles, its content address resolves,
	// and hits load their entries — so the prepare phase below can skip
	// factorizing contexts no miss needs, which on a fully-warm sweep
	// eliminates setup along with the solves.
	cr := g.probeCache(cells, matrices)
	if cr != nil {
		g.HostObs.SamplePhase("cache-probed")
	}

	// Build each distinct solve context (partition, plan, local matrices,
	// preconditioners) exactly once, before the pool starts: many cells
	// differ only in T, seed or strategy-within-augmentation and share the
	// same read-only context, so the per-cell setup collapses to a map
	// lookup. A context that fails to prepare stays nil and the cell falls
	// back to the old per-cell path (surfacing the same error).
	preps := g.prepareContexts(cells, matrices, cr.needsPrep)
	g.HostObs.SamplePhase("prepared")

	// Executor half: drain the affinity-sharded schedule (see schedule.go)
	// on Workers goroutines. Results land at their cell index, so the
	// report order is independent of scheduling and stealing. Each worker
	// owns one Workspace: consecutive cells on the same worker — batched by
	// shared Prepared context — reuse the solver's vector buffers instead
	// of re-allocating them. Progress is an atomic post-increment per
	// finished cell, so callbacks see each value of 1..total exactly once
	// (delivery order across workers is not a contract).
	// Machine-sweep results live at fixed (cell, machine) indices, so the
	// sweep output is as scheduling-independent as the cells themselves.
	var machineCells []MachineCell
	if nm := len(g.Machines); nm > 0 {
		machineCells = make([]MachineCell, len(cells)*nm)
		for i := range cells {
			for mi := 0; mi < nm; mi++ {
				machineCells[i*nm+mi] = MachineCell{Cell: i, Machine: mi}
			}
		}
	}

	sched := newSchedule(cells, g.Workers)
	sched.rec = g.HostObs
	if g.HostObs != nil {
		layout := make([]int, len(sched.shards))
		for i := range sched.shards {
			layout[i] = len(sched.shards[i].queue)
		}
		g.HostObs.ShardLayout(layout)
	}
	var wg sync.WaitGroup
	var done atomic.Int64
	total := len(cells)
	for w := 0; w < g.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := core.NewWorkspace()
			wl := g.HostObs.Worker(w) // nil handle when telemetry is off
			var lastKey prepKey
			haveKey := false
			for {
				i, ok := sched.next(w)
				if !ok {
					return
				}
				c := &cells[i]
				key := prepKeyOf(c)
				t0 := wl.Clock()
				var mcs []MachineCell
				if nm := len(g.Machines); nm > 0 {
					mcs = machineCells[i*nm : (i+1)*nm]
				}
				g.runCell(i, c, matrices[c.Matrix], preps[key], ws, mcs, cr)
				wl.Cell(t0, i, haveKey && key == lastKey)
				lastKey, haveKey = key, true
				if g.Progress != nil {
					g.Progress(int(done.Add(1)), total)
				}
			}
		}(w)
	}
	wg.Wait()
	g.HostObs.SamplePhase("done")
	if g.Cache != nil {
		io := g.Cache.Stats()
		g.HostObs.SetCacheIO(io.BytesRead, io.BytesWritten, io.Corrupt)
	}

	return &Report{
		Scenario:     g.Scenario.String(),
		Seeds:        g.Seeds,
		Spares:       g.Spares,
		Cells:        cells,
		Aggregates:   aggregate(cells),
		Machines:     g.Machines,
		MachineCells: machineCells,
	}, nil
}

// prepKey identifies the solve context a cell needs: everything that shapes
// the partition/plan/local-matrix setup. T, seed and the IMCR-vs-None
// distinction don't: they only affect the dynamic solve.
type prepKey struct {
	Matrix string
	Nodes  int
	Phi    int // plan augmentation level (0 = plain product)
}

func prepKeyOf(c *Cell) prepKey {
	phi := 0
	if strat, err := core.ParseStrategy(c.Strategy); err == nil &&
		(strat == core.StrategyESR || strat == core.StrategyESRP) {
		phi = c.Phi
		if phi <= 0 {
			phi = 1 // mirror core's withDefaults: redundant strategies get φ ≥ 1
		}
	}
	return prepKey{Matrix: c.Matrix, Nodes: c.Nodes, Phi: phi}
}

// prepareContexts builds the distinct Prepared contexts of the grid, keyed
// by prepKey. The distinct keys are enumerated in deterministic cell order,
// then built concurrently across the worker budget — contexts are
// independent, and per-rank preconditioner factorization is the expensive
// part of a wide grid's setup. need(i) filters which cells still require a
// context: a cache-backed run only prepares for its misses, so a fully-warm
// prep group skips factorization along with its solves.
func (g Grid) prepareContexts(cells []Cell, matrices map[string]MatrixSpec, need func(i int) bool) map[prepKey]*core.Prepared {
	preps := make(map[prepKey]*core.Prepared)
	var order []prepKey
	for i := range cells {
		if !need(i) {
			continue
		}
		key := prepKeyOf(&cells[i])
		if _, ok := preps[key]; !ok {
			preps[key] = nil
			order = append(order, key)
		}
	}
	firstCell := make(map[prepKey]*Cell, len(order))
	for i := range cells {
		if !need(i) {
			continue
		}
		key := prepKeyOf(&cells[i])
		if firstCell[key] == nil {
			firstCell[key] = &cells[i]
		}
	}

	var mu sync.Mutex
	jobs := make(chan prepKey)
	var wg sync.WaitGroup
	for w := 0; w < min(g.Workers, len(order)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for key := range jobs {
				c := firstCell[key]
				strat, err := core.ParseStrategy(c.Strategy)
				if err != nil {
					continue // the cell's own solve reports the error
				}
				m := matrices[c.Matrix]
				prep, err := core.Prepare(core.Config{
					A: m.A, B: m.B, Nodes: c.Nodes,
					Strategy: strat, T: c.T, Phi: c.Phi,
					Rtol: g.Rtol, MaxIter: g.MaxIter,
					PrecondKind: g.Precond, MaxBlock: g.MaxBlock,
					Kernel: g.Kernel,
				})
				if err != nil {
					prep = nil // cells fall back to per-cell setup and surface the error
				}
				mu.Lock()
				preps[key] = prep
				mu.Unlock()
			}
		}()
	}
	for _, key := range order {
		jobs <- key
	}
	close(jobs)
	wg.Wait()
	return preps
}

// compileCell compiles the cell's failure scenario and applies the φ-clamp,
// filling c.Events and c.Clamped. Redundancy covers at most φ simultaneous
// failures; events wider than the cell's φ are clamped to their first φ
// ranks (still a contiguous block) so every cell of the grid is admissible.
// The clamp count is recorded — a grid with many clamps should raise φ or
// shrink the correlation groups.
func (g *Grid) compileCell(c *Cell, strat core.Strategy) error {
	var events []core.FailureSpec
	if g.Scenario.Model != faultsim.ModelFixed || len(g.Scenario.Schedule) > 0 {
		sc := g.Scenario
		sc.Nodes = c.Nodes
		sc.Seed = c.Seed
		var err error
		events, err = sc.Compile()
		if err != nil {
			return err
		}
	}
	if strat != core.StrategyNone && c.Phi > 0 {
		for i := range events {
			if len(events[i].Ranks) > c.Phi {
				events[i].Ranks = events[i].Ranks[:c.Phi]
				c.Clamped++
			}
		}
	}
	c.Events = events
	return nil
}

// runCell compiles the cell's scenario, solves it, and condenses the result
// in place. index is the cell's position in the grid order (the trace
// sampling key). mcs, when non-nil, is this cell's machine-sweep result
// window (one entry per Grid.Machines point): the solve is recorded once and
// each point's figures come from an O(events) replay of the schedule. cr,
// when non-nil, is the cache context: hits fill the cell without solving,
// misses solve with recording on and persist both tiers.
func (g Grid) runCell(index int, c *Cell, m MatrixSpec, prep *core.Prepared, ws *core.Workspace, mcs []MachineCell, cr *cacheRun) {
	strat, err := core.ParseStrategy(c.Strategy)
	if err != nil {
		c.Err = err.Error()
		return
	}
	if cr == nil || !cr.compiled[index] {
		if err := g.compileCell(c, strat); err != nil {
			c.Err = err.Error()
			return
		}
	}
	if cr != nil && cr.state[index] != cellMiss && g.fillFromCache(index, c, mcs, cr) {
		return
	}
	if cr != nil {
		g.HostObs.CacheMiss()
	}

	cfg := core.Config{
		A: m.A, B: m.B, Nodes: c.Nodes,
		Strategy: strat, T: c.T, Phi: c.Phi,
		Rtol: g.Rtol, MaxIter: g.MaxIter,
		PrecondKind: g.Precond, MaxBlock: g.MaxBlock,
		Kernel:    g.Kernel,
		CostModel: g.CostModel,
		Failures:  c.Events,
		Prepared:  prep,
		Workspace: ws,
		HostStats: g.HostObs.BarrierStats(), // nil when telemetry is off
	}
	if strat == core.StrategyESR || strat == core.StrategyESRP {
		cfg.Spares = g.Spares
	}
	traced := g.TraceSample > 0 && index%g.TraceSample == 0 && g.OnCellTrace != nil
	if traced {
		cfg.Observe = &obs.Options{Trace: true}
	}
	// Record whenever a machine sweep needs the schedule, or a cache miss
	// will persist it: the schedule tier is what lets future runs serve
	// any machine point without a solve.
	var srec *replay.Recorder
	if len(mcs) > 0 || (cr != nil && cr.compiled[index]) {
		srec = replay.NewRecorder()
		cfg.Record = srec
	}
	res, err := core.Solve(cfg)
	if err != nil {
		c.Err = err.Error()
		for i := range mcs {
			mcs[i].Err = err.Error()
		}
		return
	}
	var sched *replay.Schedule
	if srec != nil {
		sched = srec.Schedule()
		for mi := range mcs {
			rep, rerr := sched.Recost(replay.CostModel(g.Machines[mi].Model))
			if rerr != nil {
				mcs[mi].Err = rerr.Error()
				continue
			}
			mcs[mi].SimTime = rep.SimTime
			mcs[mi].RecoveryTime = rep.RecoveryTime
			mcs[mi].BytesSent = rep.BytesSent
			mcs[mi].MsgsSent = rep.MsgsSent
		}
		if g.OnCellSchedule != nil {
			g.OnCellSchedule(index, c, sched)
		}
	}
	if cr != nil && cr.compiled[index] {
		g.storeCell(index, c, res, sched, cr)
	}
	c.Converged = res.Converged
	c.Iterations = res.Iterations
	c.TotalSteps = res.TotalSteps
	c.RelResidual = res.RelResidual
	c.SimTime = res.SimTime
	c.RecoveryTime = res.RecoveryTime
	c.WastedIters = res.WastedIters
	c.Drift = res.Drift
	c.MaxNodeBytes = res.MaxNodeBytes
	c.HaloBytes = res.HaloBytes
	c.BytesSent = res.BytesSent
	c.ActiveNodes = res.ActiveNodes
	c.Kernels = core.CondenseKernels(res.Kernels)
	c.Recoveries = res.Events
	if traced && res.Trace != nil {
		g.OnCellTrace(index, c, res.Trace)
	}
}

// aggKey orders groups deterministically.
type aggKey struct {
	Matrix   string
	Nodes    int
	Strategy string
	T, Phi   int
}

// aggregate groups the cells by coordinates and computes the seed
// statistics.
func aggregate(cells []Cell) []Aggregate {
	groups := make(map[aggKey][]*Cell)
	var keys []aggKey
	for i := range cells {
		c := &cells[i]
		k := aggKey{c.Matrix, c.Nodes, c.Strategy, c.T, c.Phi}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], c)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Matrix != b.Matrix {
			return a.Matrix < b.Matrix
		}
		if a.Nodes != b.Nodes {
			return a.Nodes < b.Nodes
		}
		if a.Strategy != b.Strategy {
			return a.Strategy < b.Strategy
		}
		if a.T != b.T {
			return a.T < b.T
		}
		return a.Phi < b.Phi
	})

	out := make([]Aggregate, 0, len(keys))
	for _, k := range keys {
		group := groups[k]
		a := Aggregate{Matrix: k.Matrix, Nodes: k.Nodes, Strategy: k.Strategy, T: k.T, Phi: k.Phi, Seeds: len(group)}
		var times, iters, recov, wasted []float64
		events := 0
		for _, c := range group {
			if c.Err != "" {
				a.Errors++
				continue
			}
			if c.Converged {
				a.ConvergedRate++
			}
			times = append(times, c.SimTime)
			iters = append(iters, float64(c.Iterations))
			recov = append(recov, c.RecoveryTime)
			wasted = append(wasted, float64(c.WastedIters))
			// Count failures that actually struck (events scheduled past
			// convergence never fire), matching Summary's figure.
			events += len(c.Recoveries)
			a.MaxNodeBytes = max(a.MaxNodeBytes, c.MaxNodeBytes)
			if c.ActiveNodes > 0 && c.ActiveNodes < c.Nodes {
				a.ShrunkCells++
			}
		}
		if n := len(group) - a.Errors; n > 0 {
			a.ConvergedRate /= float64(n)
			a.MeanEvents = float64(events) / float64(n)
		}
		a.MedianTime = percentile(times, 50)
		a.P10Time = percentile(times, 10)
		a.P90Time = percentile(times, 90)
		a.MedianIters = percentile(iters, 50)
		a.MedianRecovery = percentile(recov, 50)
		a.MedianWasted = percentile(wasted, 50)
		out = append(out, a)
	}
	return out
}

// percentile returns the nearest-rank p-th percentile of xs (0 on empty).
func percentile(xs []float64, p int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := (p*len(s) + 50) / 100 // nearest rank, 1-based
	if i < 1 {
		i = 1
	}
	if i > len(s) {
		i = len(s)
	}
	return s[i-1]
}

// WriteJSON emits the full report (cells + aggregates) as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV emits one row per cell — the flat form for spreadsheets and
// plotting scripts.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"matrix", "nodes", "strategy", "t", "phi", "seed",
		"events", "converged", "iterations", "sim_time_s", "recovery_time_s",
		"wasted_iters", "drift", "max_node_bytes", "halo_bytes", "active_nodes", "error",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range r.Cells {
		row := []string{
			c.Matrix, strconv.Itoa(c.Nodes), c.Strategy, strconv.Itoa(c.T),
			strconv.Itoa(c.Phi), strconv.FormatInt(c.Seed, 10),
			strconv.Itoa(len(c.Recoveries)), strconv.FormatBool(c.Converged),
			strconv.Itoa(c.Iterations),
			strconv.FormatFloat(c.SimTime, 'g', -1, 64),
			strconv.FormatFloat(c.RecoveryTime, 'g', -1, 64),
			strconv.Itoa(c.WastedIters),
			strconv.FormatFloat(c.Drift, 'g', -1, 64),
			strconv.FormatInt(c.MaxNodeBytes, 10),
			strconv.FormatInt(c.HaloBytes, 10),
			strconv.Itoa(c.ActiveNodes),
			c.Err,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
