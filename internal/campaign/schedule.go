package campaign

import (
	"sync"

	"esrp/internal/hostobs"
)

// This file is the scheduling half of the campaign engine. Run enumerates
// the grid (the deterministic cell order is the report contract) and hands
// the cell indices to a schedule; the executor workers in Run drain it.
// Scheduling policy lives here, solving stays in runCell — results always
// land at their cell index, so the report bytes are identical however the
// schedule plays out.
//
// Policy: affinity-aware sharding with bounded work stealing. Cells that
// share a Prepared context (same prepKey: matrix, nodes, φ-augmentation)
// are queued contiguously on one shard, so one worker solves them
// back-to-back — the context's partition/plan/factorization stay hot in
// cache and the worker's Workspace keeps the right vector shapes, instead
// of ping-ponging between contexts. Shards drain independently (no shared
// dispatch channel); when a worker's own shard runs dry it steals a bounded
// chunk from the tail of the fullest remaining shard, so a skewed grid
// (one huge matrix next to toy ones) cannot leave workers idle behind a
// serialized dispenser.

// stealChunk bounds how many cells one steal transfers. Small enough that
// a nearly-drained campaign spreads its tail across all workers, large
// enough that a thief amortizes the scan over several cells of the same
// affinity run (stolen tails are contiguous grid order, usually one key).
const stealChunk = 8

// schedule is a set of per-worker cell queues. rec, when non-nil, receives
// steal telemetry (attempts, successes, cells moved, steal spans); the
// own-shard pop path is untouched by it, so the hot path of a telemetry-off
// run is byte-for-byte the old one.
type schedule struct {
	shards []shard
	rec    *hostobs.CampaignRecorder
}

// shard is one worker's queue of cell indices. The owner pops at head —
// preserving the affinity-batched order the scheduler laid out — and
// thieves take from the tail, so a victim keeps the prefix it is already
// working through.
type shard struct {
	mu    sync.Mutex
	queue []int
	head  int
}

// pop takes the next index owned by this shard.
func (sh *shard) pop() (int, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.head >= len(sh.queue) {
		return 0, false
	}
	i := sh.queue[sh.head]
	sh.head++
	return i, true
}

// remaining reports the queued-but-unclaimed cell count.
func (sh *shard) remaining() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.queue) - sh.head
}

// stealTail removes and returns up to chunk indices from the tail, at most
// half the remainder (rounded up) so the victim is never fully drained by
// a single thief while it still works the head.
func (sh *shard) stealTail(chunk int) []int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	avail := len(sh.queue) - sh.head
	if avail <= 0 {
		return nil
	}
	k := (avail + 1) / 2
	if k > chunk {
		k = chunk
	}
	stolen := append([]int(nil), sh.queue[len(sh.queue)-k:]...)
	sh.queue = sh.queue[:len(sh.queue)-k]
	return stolen
}

// push appends stolen indices to the shard's own queue.
func (sh *shard) push(idx []int) {
	if len(idx) == 0 {
		return
	}
	sh.mu.Lock()
	sh.queue = append(sh.queue, idx...)
	sh.mu.Unlock()
}

// newSchedule lays the cells out over nw shards. Affinity batches — maximal
// runs of cell indices sharing a prepKey, in grid order — are assigned whole
// to the least-loaded shard at that point (ties to the lowest shard), a
// deterministic LPT-style packing: workers start on disjoint contexts and
// only the steals, if any, mix them.
func newSchedule(cells []Cell, nw int) *schedule {
	s := &schedule{shards: make([]shard, nw)}
	var batch []int
	var batchKey prepKey
	flush := func() {
		if len(batch) == 0 {
			return
		}
		best := 0
		for j := 1; j < nw; j++ {
			if len(s.shards[j].queue) < len(s.shards[best].queue) {
				best = j
			}
		}
		s.shards[best].queue = append(s.shards[best].queue, batch...)
		batch = nil
	}
	for i := range cells {
		key := prepKeyOf(&cells[i])
		if len(batch) > 0 && key != batchKey {
			flush()
		}
		batchKey = key
		batch = append(batch, i)
	}
	flush()
	return s
}

// next returns the next cell index for worker me: its own shard first, then
// a bounded steal from the fullest other shard (the surplus joins me's own
// queue). It returns false only when every shard is drained.
func (s *schedule) next(me int) (int, bool) {
	own := &s.shards[me]
	if i, ok := own.pop(); ok {
		return i, true
	}
	wl := s.rec.Worker(me) // nil handle when telemetry is off
	for {
		victim, best := -1, 0
		for j := range s.shards {
			if j == me {
				continue
			}
			if r := s.shards[j].remaining(); r > best {
				victim, best = j, r
			}
		}
		if victim < 0 {
			return 0, false
		}
		t0 := wl.Clock()
		wl.StealAttempt()
		stolen := s.shards[victim].stealTail(stealChunk)
		if len(stolen) == 0 {
			continue // lost the race to the victim's owner; rescan
		}
		own.push(stolen[1:])
		wl.Steal(t0, len(stolen))
		return stolen[0], true
	}
}
