package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"esrp/internal/ccache"
	"esrp/internal/cluster"
	"esrp/internal/core"
	"esrp/internal/hostobs"
	"esrp/internal/obs"
	"esrp/internal/replay"
)

// openCache opens a test cache in dir (creating a fresh one on first use).
func openCache(t *testing.T, dir string) *ccache.Cache {
	t.Helper()
	c, note, err := ccache.Open(dir, obs.BuildInfo{GoVersion: "test"}, ccache.MismatchBypass)
	if err != nil {
		t.Fatal(err)
	}
	if note != "" {
		t.Fatalf("unexpected cache note: %s", note)
	}
	return c
}

// runJSON runs g and renders its report.
func runJSON(t *testing.T, g Grid) []byte {
	t.Helper()
	rep, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// cacheCounters runs g with a recorder attached and returns the cache
// section of its telemetry alongside the report bytes.
func cacheCounters(t *testing.T, g Grid) ([]byte, *hostobs.CacheCounters) {
	t.Helper()
	rec := hostobs.NewCampaignRecorder()
	g.HostObs = rec
	out := runJSON(t, g)
	tel := rec.Telemetry()
	if g.Cache != nil && tel.Cache == nil {
		t.Fatal("cache-backed run produced no cache telemetry")
	}
	return out, tel.Cache
}

// A warm re-run must be byte-identical to its cold run and touch zero
// solves — at any worker count. This is the cache's core contract: hits
// land at grid indices, so scheduling cannot perturb the report.
func TestCacheWarmRunByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cold := tinyGrid()
	cold.Cache = openCache(t, dir)
	coldJSON, coldCtr := cacheCounters(t, cold)
	if coldCtr.Misses == 0 || coldCtr.ResultHits != 0 || coldCtr.ScheduleHits != 0 {
		t.Fatalf("cold run counters: %+v", coldCtr)
	}

	baseline := runJSON(t, tinyGrid()) // cache-less reference
	if !bytes.Equal(coldJSON, baseline) {
		t.Fatal("cold cache-backed run differs from the cache-less run")
	}

	for _, workers := range []int{1, 3, 4} {
		warm := tinyGrid()
		warm.Workers = workers
		warm.Cache = openCache(t, dir)
		warmJSON, ctr := cacheCounters(t, warm)
		if !bytes.Equal(warmJSON, coldJSON) {
			t.Fatalf("warm run (workers=%d) is not byte-identical to the cold run", workers)
		}
		if ctr.Misses != 0 || ctr.ScheduleHits != 0 || ctr.ResultHits != coldCtr.Misses {
			t.Fatalf("warm run (workers=%d) counters: %+v (want %d pure result hits)", workers, ctr, coldCtr.Misses)
		}
	}
}

// A machine-point-only change must be served entirely from the schedule
// tier — zero solves — and match a cacheless cold run under that model
// bit-for-bit (the replay-equivalence invariant, now across processes).
func TestCacheMachineChangeServedByScheduleTier(t *testing.T) {
	dir := t.TempDir()
	warmup := tinyGrid()
	warmup.Cache = openCache(t, dir)
	if _, err := Run(warmup); err != nil {
		t.Fatal(err)
	}

	slow := cluster.DefaultCostModel()
	slow.Latency *= 4
	slow.BytePeriod *= 2

	warm := tinyGrid()
	warm.CostModel = &slow
	warm.Cache = openCache(t, dir)
	warmJSON, ctr := cacheCounters(t, warm)
	if ctr.Misses != 0 || ctr.ResultHits != 0 || ctr.ScheduleHits == 0 {
		t.Fatalf("machine-change counters: %+v (want pure schedule hits)", ctr)
	}

	ref := tinyGrid()
	ref.CostModel = &slow
	if !bytes.Equal(warmJSON, runJSON(t, ref)) {
		t.Fatal("schedule-tier re-cost differs from a live solve under the new model")
	}

	// The re-cost upgraded the entries: a further run at the same model is
	// pure result hits.
	again := tinyGrid()
	again.CostModel = &slow
	again.Cache = openCache(t, dir)
	againJSON, ctr2 := cacheCounters(t, again)
	if ctr2.Misses != 0 || ctr2.ScheduleHits != 0 || ctr2.ResultHits == 0 {
		t.Fatalf("post-upgrade counters: %+v (want pure result hits)", ctr2)
	}
	if !bytes.Equal(againJSON, warmJSON) {
		t.Fatal("upgraded entries changed the report")
	}
}

// A warm machine sweep (Grid.Machines) replays cached schedules instead
// of solving, and its machine_cells match the cold sweep's exactly.
func TestCacheWarmMachineSweep(t *testing.T) {
	dir := t.TempDir()
	fast := cluster.DefaultCostModel()
	fast.FlopTime /= 2
	machines := []MachinePoint{
		{Name: "base", Model: cluster.DefaultCostModel()},
		{Name: "fast", Model: fast},
	}

	cold := tinyGrid()
	cold.Machines = machines
	cold.Cache = openCache(t, dir)
	coldJSON, _ := cacheCounters(t, cold)

	warm := tinyGrid()
	warm.Machines = machines
	warm.Cache = openCache(t, dir)
	warmJSON, ctr := cacheCounters(t, warm)
	if ctr.Misses != 0 {
		t.Fatalf("warm sweep counters: %+v (want zero misses)", ctr)
	}
	if !bytes.Equal(warmJSON, coldJSON) {
		t.Fatal("warm machine sweep differs from the cold sweep")
	}
}

// Corrupting entries between runs must force recomputation of exactly the
// damaged cells — byte-identical output, never a crash, never trust.
func TestCacheCorruptEntriesRecompute(t *testing.T) {
	dir := t.TempDir()
	cold := tinyGrid()
	cold.Cache = openCache(t, dir)
	coldJSON, coldCtr := cacheCounters(t, cold)

	// Damage every result-tier entry three ways: truncate, flip, garble.
	var resFiles []string
	if err := filepath.WalkDir(filepath.Join(dir, "res"), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			resFiles = append(resFiles, path)
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if int64(len(resFiles)) != coldCtr.Misses {
		t.Fatalf("expected %d result entries, found %d", coldCtr.Misses, len(resFiles))
	}
	for i, path := range resFiles {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0:
			data = data[:len(data)/2]
		case 1:
			data[len(data)-1] ^= 0x01
		case 2:
			copy(data, "BADMAGIC")
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	warm := tinyGrid()
	warm.Cache = openCache(t, dir)
	warmJSON, ctr := cacheCounters(t, warm)
	if !bytes.Equal(warmJSON, coldJSON) {
		t.Fatal("recomputed run differs from the cold run")
	}
	if ctr.ResultHits != 0 || ctr.Misses != coldCtr.Misses {
		t.Fatalf("corrupted-cache counters: %+v (want all misses)", ctr)
	}
	if ctr.Corrupt == 0 {
		t.Fatal("corruption went uncounted")
	}

	// The misses healed the cache: a third run is all hits again.
	again := tinyGrid()
	again.Cache = openCache(t, dir)
	againJSON, ctr2 := cacheCounters(t, again)
	if !bytes.Equal(againJSON, coldJSON) || ctr2.Misses != 0 {
		t.Fatalf("cache did not heal: counters %+v", ctr2)
	}
}

// An interrupted sweep leaves a partial cache; resuming reuses what
// completed and computes the rest.
func TestCachePartialSweepResumes(t *testing.T) {
	dir := t.TempDir()
	// "Interrupt" by running a narrower grid first: one strategy only.
	partial := tinyGrid()
	partial.Strategies = []core.Strategy{core.StrategyESRP}
	partial.Cache = openCache(t, dir)
	_, pc := cacheCounters(t, partial)

	full := tinyGrid()
	full.Cache = openCache(t, dir)
	fullJSON, fc := cacheCounters(t, full)
	if fc.ResultHits != pc.Misses || fc.Misses == 0 {
		t.Fatalf("resume counters: partial=%+v full=%+v", pc, fc)
	}
	if !bytes.Equal(fullJSON, runJSON(t, tinyGrid())) {
		t.Fatal("resumed run differs from a cold run")
	}
}

// Cells keyed equal across different grids must not collide when any
// solve-relevant grid knob differs: the key covers rtol, spares, kernels.
func TestCacheKeyedByGridKnobs(t *testing.T) {
	dir := t.TempDir()
	g1 := tinyGrid()
	g1.Cache = openCache(t, dir)
	if _, err := Run(g1); err != nil {
		t.Fatal(err)
	}

	g2 := tinyGrid()
	g2.Rtol = 1e-6 // looser: fewer iterations — must not reuse 1e-8 entries
	g2.Cache = openCache(t, dir)
	json2, ctr := cacheCounters(t, g2)
	if ctr.ResultHits != 0 || ctr.ScheduleHits != 0 {
		t.Fatalf("rtol change hit stale entries: %+v", ctr)
	}
	ref := tinyGrid()
	ref.Rtol = 1e-6
	if !bytes.Equal(json2, runJSON(t, ref)) {
		t.Fatal("rtol-changed run differs from its cold reference")
	}
}

// The -schedules export path and the schedule tier share one serializer:
// a schedule delivered via OnCellSchedule from a warm (cached) sweep is
// bit-identical to the cold recording.
func TestCacheScheduleCallbackBitIdentical(t *testing.T) {
	dir := t.TempDir()
	machines := []MachinePoint{{Name: "base", Model: cluster.DefaultCostModel()}}

	run := func(g Grid) map[int][]byte {
		g.Machines = machines
		out := make(map[int][]byte)
		var mu sync.Mutex
		g.OnCellSchedule = func(index int, c *Cell, s *replay.Schedule) {
			b, err := s.EncodeBinary()
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			out[index] = b
			mu.Unlock()
		}
		if _, err := Run(g); err != nil {
			t.Fatal(err)
		}
		return out
	}

	cold := tinyGrid()
	cold.Cache = openCache(t, dir)
	coldScheds := run(cold)

	warm := tinyGrid()
	warm.Cache = openCache(t, dir)
	warmScheds := run(warm)

	if len(coldScheds) == 0 || len(coldScheds) != len(warmScheds) {
		t.Fatalf("schedule counts differ: cold %d warm %d", len(coldScheds), len(warmScheds))
	}
	for idx, cb := range coldScheds {
		if !bytes.Equal(cb, warmScheds[idx]) {
			t.Fatalf("cell %d: cached schedule differs from the recording", idx)
		}
	}
}
