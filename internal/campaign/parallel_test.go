package campaign

import (
	"bytes"
	"runtime"
	"sort"
	"sync"
	"testing"

	"esrp/internal/core"
	"esrp/internal/faultsim"
	"esrp/internal/matgen"
	"esrp/internal/obs"
)

// stealHeavyGrid is a grid whose cells ALL share one Prepared context
// (IMCR's prepKey ignores T and seed), so the scheduler lays every cell on
// one shard and the other workers live entirely off work stealing — the
// adversarial layout for the executor.
func stealHeavyGrid() Grid {
	return Grid{
		Matrices:   []MatrixSpec{{Name: "poisson", A: matgen.Poisson2D(24, 24)}},
		Nodes:      []int{4},
		Strategies: []core.Strategy{core.StrategyIMCR},
		Ts:         []int{2, 3, 4, 5, 6, 8, 10, 12},
		Phis:       []int{1},
		Seeds:      []int64{1, 2, 3},
		Scenario: faultsim.Scenario{
			Model: faultsim.ModelExponential, MTBF: 300, Horizon: 40,
		},
		Workers: 8,
	}
}

// TestCampaignWorkerHammer runs the steal-heavy layout with many more
// workers than affinity batches: 24 cells on one shard, 8 workers, 4
// simulated ranks per cell. Under -race this traps unsafe sharing anywhere
// in the scheduler/executor split or the per-worker workspace reuse; the
// result assertions pin that stolen cells still solve correctly.
func TestCampaignWorkerHammer(t *testing.T) {
	rep, err := Run(stealHeavyGrid())
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 * 3; len(rep.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(rep.Cells), want)
	}
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Errorf("cell T=%d seed=%d errored: %s", c.T, c.Seed, c.Err)
		}
		if !c.Converged {
			t.Errorf("cell T=%d seed=%d did not converge", c.T, c.Seed)
		}
	}
}

// TestCampaignDeterministicAcrossWorkers pins the byte-identity contract
// with work stealing in play: JSON report, CSV export and every sampled
// trace must be identical for Workers ∈ {1, 3, NumCPU} on the steal-heavy
// grid (one affinity batch, so any parallel run steals).
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	collect := func(workers int) (jsonB, csvB []byte, traces map[int][]byte) {
		g := stealHeavyGrid()
		g.Workers = workers
		g.TraceSample = 5
		var mu sync.Mutex
		traces = map[int][]byte{}
		g.OnCellTrace = func(index int, c *Cell, tr *obs.Trace) {
			var buf bytes.Buffer
			if err := tr.WriteChrome(&buf); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			traces[index] = buf.Bytes()
			mu.Unlock()
		}
		rep, err := Run(g)
		if err != nil {
			t.Fatal(err)
		}
		var jb, cb bytes.Buffer
		if err := rep.WriteJSON(&jb); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteCSV(&cb); err != nil {
			t.Fatal(err)
		}
		return jb.Bytes(), cb.Bytes(), traces
	}

	workerCounts := []int{1, 3, runtime.NumCPU()}
	refJSON, refCSV, refTraces := collect(workerCounts[0])
	if len(refTraces) == 0 {
		t.Fatal("no traces sampled")
	}
	for _, w := range workerCounts[1:] {
		jb, cb, tr := collect(w)
		if !bytes.Equal(refJSON, jb) {
			t.Errorf("JSON differs between workers=1 and workers=%d", w)
		}
		if !bytes.Equal(refCSV, cb) {
			t.Errorf("CSV differs between workers=1 and workers=%d", w)
		}
		if len(tr) != len(refTraces) {
			t.Errorf("workers=%d sampled %d traces, workers=1 sampled %d", w, len(tr), len(refTraces))
			continue
		}
		for idx, a := range refTraces {
			if !bytes.Equal(a, tr[idx]) {
				t.Errorf("cell %d trace differs between workers=1 and workers=%d", idx, w)
			}
		}
	}
}

// TestCampaignProgressExact pins the progress contract under the maximal
// worker count: the callback receives every value of 1..total exactly once
// (atomic post-increment), and total is the grid size on every call. Run
// with -race this also proves the callback's done counter is not a torn or
// repeated snapshot.
func TestCampaignProgressExact(t *testing.T) {
	g := stealHeavyGrid()
	var mu sync.Mutex
	var dones []int
	g.Progress = func(done, total int) {
		mu.Lock()
		dones = append(dones, done)
		mu.Unlock()
		if total != 8*3 {
			t.Errorf("progress total %d, want %d", total, 8*3)
		}
	}
	rep, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != len(rep.Cells) {
		t.Fatalf("progress fired %d times, want %d", len(dones), len(rep.Cells))
	}
	sort.Ints(dones)
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress done values not exactly 1..%d: position %d holds %d", len(rep.Cells), i, d)
		}
	}
}
