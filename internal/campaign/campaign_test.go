package campaign

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"esrp/internal/core"
	"esrp/internal/faultsim"
	"esrp/internal/matgen"
	"esrp/internal/obs"
)

func tinyGrid() Grid {
	return Grid{
		Matrices:   []MatrixSpec{{Name: "poisson", A: matgen.Poisson2D(32, 32)}},
		Nodes:      []int{6},
		Strategies: []core.Strategy{core.StrategyESR, core.StrategyESRP, core.StrategyIMCR},
		Ts:         []int{10},
		Phis:       []int{1},
		Seeds:      []int64{1, 2},
		Scenario: faultsim.Scenario{
			Model: faultsim.ModelExponential, MTBF: 400, Horizon: 60,
		},
		Workers: 4,
	}
}

func TestRunTinyGrid(t *testing.T) {
	rep, err := Run(tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	// 1 matrix × 1 node count × (ESR + ESRP + IMCR) × 1 T × 1 φ × 2 seeds.
	if want := 3 * 2; len(rep.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(rep.Cells), want)
	}
	if len(rep.Aggregates) != 3 {
		t.Fatalf("got %d aggregates, want 3", len(rep.Aggregates))
	}
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Errorf("cell %s/%s T=%d φ=%d seed=%d errored: %s", c.Matrix, c.Strategy, c.T, c.Phi, c.Seed, c.Err)
		}
		if !c.Converged {
			t.Errorf("cell %s seed %d did not converge", c.Strategy, c.Seed)
		}
	}
	for _, a := range rep.Aggregates {
		if a.Seeds != 2 || a.ConvergedRate != 1 {
			t.Errorf("aggregate %+v: want 2 seeds, full convergence", a)
		}
		if a.MedianTime <= 0 || a.P90Time < a.P10Time {
			t.Errorf("aggregate times inconsistent: %+v", a)
		}
	}
}

// The same grid must produce byte-identical JSON regardless of worker
// scheduling — the reproducibility contract of the campaign engine.
func TestCampaignReproducible(t *testing.T) {
	render := func(workers int) []byte {
		g := tinyGrid()
		g.Workers = workers
		rep, err := Run(g)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b, c := render(1), render(4), render(4)
	if !bytes.Equal(a, b) || !bytes.Equal(b, c) {
		t.Fatal("campaign JSON differs across runs/worker counts")
	}
}

// A spare-pool grid: events beyond the pool shrink the cluster, and the
// aggregates surface it.
func TestCampaignSparePoolShrinks(t *testing.T) {
	g := Grid{
		Matrices:   []MatrixSpec{{Name: "poisson", A: matgen.Poisson2D(40, 40)}},
		Nodes:      []int{8},
		Strategies: []core.Strategy{core.StrategyESR},
		Phis:       []int{1},
		Seeds:      []int64{5},
		Spares:     1,
		Scenario: faultsim.Scenario{
			Model: faultsim.ModelFixed,
			Schedule: []core.FailureSpec{
				{Iteration: 15, Ranks: []int{2}},
				{Iteration: 35, Ranks: []int{5}},
				{Iteration: 55, Ranks: []int{1}},
			},
		},
	}
	rep, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.Err != "" || !c.Converged {
		t.Fatalf("cell failed: err=%q converged=%v", c.Err, c.Converged)
	}
	if c.ActiveNodes != 6 {
		t.Fatalf("active nodes %d, want 6 (two shrinks past the 1-spare pool)", c.ActiveNodes)
	}
	if len(c.Recoveries) != 3 {
		t.Fatalf("got %d recoveries, want 3", len(c.Recoveries))
	}
	if rep.Aggregates[0].ShrunkCells != 1 {
		t.Fatalf("aggregate shrunk cells = %d, want 1", rep.Aggregates[0].ShrunkCells)
	}
}

// Events wider than the cell's φ are clamped, not fatal.
func TestCampaignClampsWideEvents(t *testing.T) {
	g := Grid{
		Matrices:   []MatrixSpec{{Name: "poisson", A: matgen.Poisson2D(32, 32)}},
		Nodes:      []int{8},
		Strategies: []core.Strategy{core.StrategyESR},
		Phis:       []int{1},
		Seeds:      []int64{1},
		Scenario: faultsim.Scenario{
			Model: faultsim.ModelFixed,
			Schedule: []core.FailureSpec{
				{Iteration: 20, Ranks: []int{2, 3}}, // ψ = 2 > φ = 1
			},
		},
	}
	rep, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.Err != "" {
		t.Fatalf("clamped cell errored: %s", c.Err)
	}
	if c.Clamped != 1 || len(c.Events[0].Ranks) != 1 {
		t.Fatalf("clamping not applied: clamped=%d event ranks=%v", c.Clamped, c.Events[0].Ranks)
	}
}

func TestWriteJSONAndCSV(t *testing.T) {
	g := tinyGrid()
	g.Strategies = []core.Strategy{core.StrategyESR}
	g.Seeds = []int64{1}
	rep, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	var jb bytes.Buffer
	if err := rep.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(jb.Bytes(), &back); err != nil {
		t.Fatalf("exported JSON does not round-trip: %v", err)
	}
	if len(back.Cells) != len(rep.Cells) || len(back.Aggregates) != len(rep.Aggregates) {
		t.Fatal("JSON round-trip lost cells or aggregates")
	}

	var cb bytes.Buffer
	if err := rep.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cb.String()), "\n")
	if len(lines) != 1+len(rep.Cells) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(rep.Cells))
	}
	if !strings.HasPrefix(lines[0], "matrix,nodes,strategy") {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
}

func TestRenderAndSummary(t *testing.T) {
	rep, err := Run(tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	tbl := Render(rep)
	if !strings.Contains(tbl, "ESR") || !strings.Contains(tbl, "IMCR") || !strings.Contains(tbl, "poisson") {
		t.Fatalf("render missing groups:\n%s", tbl)
	}
	sum := Summary(rep)
	if !strings.Contains(sum, "campaign:") || !strings.Contains(sum, "fastest group") {
		t.Fatalf("summary incomplete:\n%s", sum)
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := Run(Grid{}); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := Run(Grid{Matrices: []MatrixSpec{{Name: "x"}}}); err == nil {
		t.Error("nil matrix accepted")
	}
	// A grid whose strategies admit no T cell is empty.
	g := Grid{
		Matrices:   []MatrixSpec{{Name: "p", A: matgen.Poisson2D(8, 8)}},
		Strategies: []core.Strategy{core.StrategyESRP},
		Ts:         []int{1}, // ESRP needs T > 2
	}
	if _, err := Run(g); err == nil {
		t.Error("empty cross-product accepted")
	}
}

// TestDefaultedPhiSharesContexts pins the prepKey normalization: a grid
// with Phi = 0 cells (core defaults redundant strategies to φ = 1) must not
// collide augmenting (ESRP) and plain-plan (IMCR) cells on one prepared
// context — pre-fix, every IMCR cell errored with a Prepared augmentation
// mismatch.
func TestDefaultedPhiSharesContexts(t *testing.T) {
	g := tinyGrid()
	g.Phis = []int{0}
	rep, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Fatalf("cell %s/T%d/phi%d/seed%d failed: %s", c.Strategy, c.T, c.Phi, c.Seed, c.Err)
		}
		if !c.Converged {
			t.Fatalf("cell %s/T%d/phi%d/seed%d did not converge", c.Strategy, c.T, c.Phi, c.Seed)
		}
	}
}

// TestTraceSampling checks campaign telemetry: sampled cells deliver traces
// keyed by grid index (not worker order), the sampled traces are
// byte-identical across worker counts, the unsampled report JSON is
// untouched by sampling, and the progress callback counts every cell.
func TestTraceSampling(t *testing.T) {
	collect := func(workers int) (map[int][]byte, []byte, int) {
		g := tinyGrid()
		g.Workers = workers
		g.TraceSample = 2 // indices 0, 2, 4
		var mu sync.Mutex
		traces := map[int][]byte{}
		g.OnCellTrace = func(index int, c *Cell, tr *obs.Trace) {
			var buf bytes.Buffer
			if err := tr.WriteChrome(&buf); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			traces[index] = buf.Bytes()
			mu.Unlock()
		}
		var done atomic.Int64
		var sawTotal atomic.Int64
		g.Progress = func(d, total int) {
			done.Add(1)
			if d == total {
				sawTotal.Add(1)
			}
		}
		rep, err := Run(g)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if int(done.Load()) != len(rep.Cells) || sawTotal.Load() != 1 {
			t.Errorf("progress fired %d times (done==total %d), want %d/1",
				done.Load(), sawTotal.Load(), len(rep.Cells))
		}
		return traces, buf.Bytes(), len(rep.Cells)
	}

	seq, seqJSON, cells := collect(1)
	par, parJSON, _ := collect(4)
	if want := (cells + 1) / 2; len(seq) != want {
		t.Fatalf("sampled %d traces, want %d", len(seq), want)
	}
	if len(seq) != len(par) {
		t.Fatalf("worker counts sampled different cells: %d vs %d", len(seq), len(par))
	}
	for idx, a := range seq {
		b, ok := par[idx]
		if !ok {
			t.Errorf("cell %d sampled sequentially but not in parallel", idx)
			continue
		}
		if !bytes.Equal(a, b) {
			t.Errorf("cell %d trace differs across worker counts", idx)
		}
		if err := obs.ValidateChromeTrace(a); err != nil {
			t.Errorf("cell %d trace invalid: %v", idx, err)
		}
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Error("report JSON differs across worker counts with sampling on")
	}

	// Sampling must not leak into the report: the same grid without
	// sampling produces the same JSON.
	plain, err := Run(tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plain.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), seqJSON) {
		t.Error("trace sampling changed the campaign report JSON")
	}
}

// TestWriteMetrics checks the Prometheus textfile export: deterministic
// output, well-formed lines, and a build-info gauge.
func TestWriteMetrics(t *testing.T) {
	rep, err := Run(tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	build := obs.BuildInfo{GoVersion: "go1.24", Revision: "abc123", Modified: true}
	render := func() string {
		var buf bytes.Buffer
		if err := rep.WriteMetrics(&buf, build); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("metrics output is not deterministic")
	}
	for _, want := range []string{
		"esrp_campaign_cells_total 6",
		"esrp_campaign_cell_errors_total 0",
		`esrp_campaign_converged_rate{matrix="poisson",nodes="6",strategy="ESR",t="1",phi="1"} 1`,
		`esrp_build_info{go_version="go1.24",vcs_revision="abc123",vcs_modified="true"} 1`,
	} {
		if !strings.Contains(a, want) {
			t.Errorf("metrics output lacks %q:\n%s", want, a)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(a), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed metric line %q", line)
		}
	}
}
