package campaign

import (
	"fmt"
	"strings"
)

// Render prints the aggregate table: one row per (matrix, nodes, strategy,
// T, φ) group with the seed statistics.
func Render(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Campaign results — scenario: %s", r.Scenario)
	if r.Spares > 0 {
		fmt.Fprintf(&b, ", spare pool: %d", r.Spares)
	}
	fmt.Fprintf(&b, "\n")
	fmt.Fprintf(&b, "%-16s %5s %-8s %5s %4s %5s | %5s %9s %9s %9s | %7s %7s %6s\n",
		"Matrix", "Nodes", "Strategy", "T", "phi", "seeds",
		"conv", "med[s]", "p10[s]", "p90[s]", "med rec", "events", "shrunk")
	for _, a := range r.Aggregates {
		fmt.Fprintf(&b, "%-16s %5d %-8s %5d %4d %5d | %4.0f%% %9.4g %9.4g %9.4g | %7.4g %7.1f %6d\n",
			a.Matrix, a.Nodes, a.Strategy, a.T, a.Phi, a.Seeds,
			100*a.ConvergedRate, a.MedianTime, a.P10Time, a.P90Time,
			a.MedianRecovery, a.MeanEvents, a.ShrunkCells)
	}
	if errs := totalErrors(r); errs > 0 {
		fmt.Fprintf(&b, "%d cells failed to run; see their error fields in the JSON export.\n", errs)
	}
	return b.String()
}

// Summary prints a compact headline: grid size, convergence, and the
// fastest/slowest strategy groups by median time.
func Summary(r *Report) string {
	var b strings.Builder
	converged, shrunk, recoveries := 0, 0, 0
	for _, c := range r.Cells {
		if c.Converged {
			converged++
		}
		if c.ActiveNodes > 0 && c.ActiveNodes < c.Nodes {
			shrunk++
		}
		recoveries += len(c.Recoveries)
	}
	fmt.Fprintf(&b, "campaign: %d cells (%d groups), %d converged, %d failure events handled, %d cells finished on a shrunken cluster\n",
		len(r.Cells), len(r.Aggregates), converged, recoveries, shrunk)
	if errs := totalErrors(r); errs > 0 {
		fmt.Fprintf(&b, "  %d cells errored\n", errs)
	}
	if len(r.Aggregates) > 0 {
		best, worst := r.Aggregates[0], r.Aggregates[0]
		for _, a := range r.Aggregates[1:] {
			if a.MedianTime < best.MedianTime {
				best = a
			}
			if a.MedianTime > worst.MedianTime {
				worst = a
			}
		}
		fmt.Fprintf(&b, "  fastest group: %s/%s T=%d φ=%d on %d nodes — median %.4g s\n",
			best.Matrix, best.Strategy, best.T, best.Phi, best.Nodes, best.MedianTime)
		fmt.Fprintf(&b, "  slowest group: %s/%s T=%d φ=%d on %d nodes — median %.4g s\n",
			worst.Matrix, worst.Strategy, worst.T, worst.Phi, worst.Nodes, worst.MedianTime)
	}
	return b.String()
}

func totalErrors(r *Report) int {
	n := 0
	for _, c := range r.Cells {
		if c.Err != "" {
			n++
		}
	}
	return n
}
