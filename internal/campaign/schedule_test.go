package campaign

import (
	"sort"
	"sync"
	"testing"
)

// fakeCells builds a cell list whose prepKeys follow the given pattern of
// matrix names (nodes/phi constant), so affinity batches are the maximal
// runs of equal letters.
func fakeCells(pattern string) []Cell {
	cells := make([]Cell, len(pattern))
	for i, r := range pattern {
		cells[i] = Cell{Matrix: string(r), Nodes: 4, Strategy: "imcr", T: 5, Phi: 1}
	}
	return cells
}

// TestScheduleAffinityBatches pins the scheduler half: affinity runs stay
// whole on one shard, and batches go to the least-loaded shard in grid
// order (ties to the lowest shard).
func TestScheduleAffinityBatches(t *testing.T) {
	// Runs: aaa (3), bb (2), c (1), ddd (3) over 2 shards.
	// LPT packing: aaa→0, bb→1, c→1 (load 2<3), ddd→1? loads 3 vs 3 → tie
	// to shard 0? After aaa→0(3), bb→1(2), c→1(3): tie 3,3 → shard 0.
	s := newSchedule(fakeCells("aaabbcddd"), 2)
	got := [][]int{s.shards[0].queue, s.shards[1].queue}
	want := [][]int{{0, 1, 2, 6, 7, 8}, {3, 4, 5}}
	for sh := range want {
		if len(got[sh]) != len(want[sh]) {
			t.Fatalf("shard %d = %v, want %v", sh, got, want)
		}
		for i := range want[sh] {
			if got[sh][i] != want[sh][i] {
				t.Fatalf("shard %d = %v, want %v", sh, got[sh], want[sh])
			}
		}
	}
}

// TestScheduleStealBounds pins stealTail's policy: at most stealChunk, at
// most half the remainder (rounded up), from the tail, never below what the
// owner already claimed.
func TestScheduleStealBounds(t *testing.T) {
	sh := &shard{queue: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}
	sh.head = 2 // owner claimed 0, 1
	stolen := sh.stealTail(stealChunk)
	if len(stolen) != 4 { // half of the 8 remaining
		t.Fatalf("stole %v, want 4 tail items", stolen)
	}
	if stolen[0] != 6 || stolen[3] != 9 {
		t.Fatalf("stole %v, want the tail [6 7 8 9]", stolen)
	}
	if r := sh.remaining(); r != 4 {
		t.Fatalf("victim remaining %d, want 4", r)
	}
	// A huge remainder is still chunk-bounded.
	big := &shard{queue: make([]int, 100)}
	if got := len(big.stealTail(stealChunk)); got != stealChunk {
		t.Fatalf("stole %d from a 100-cell shard, want %d", got, stealChunk)
	}
	// Draining a near-empty shard takes what's left.
	tiny := &shard{queue: []int{7}}
	if got := tiny.stealTail(stealChunk); len(got) != 1 || got[0] != 7 {
		t.Fatalf("stole %v from a 1-cell shard, want [7]", got)
	}
	if got := tiny.stealTail(stealChunk); got != nil {
		t.Fatalf("stole %v from an empty shard, want nil", got)
	}
}

// TestScheduleDrainsExactlyOnce runs a steal-heavy layout — every cell in
// one shard, many thieves — and requires each index to come out of next()
// exactly once across all workers. Run with -race this also traps unsafe
// shard handoff.
func TestScheduleDrainsExactlyOnce(t *testing.T) {
	const n, nw = 500, 8
	// One giant affinity run: everything lands on shard 0, workers 1..7
	// live entirely off steals.
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{Matrix: "m", Nodes: 4, Strategy: "imcr", T: 5, Phi: 1}
	}
	s := newSchedule(cells, nw)
	if got := len(s.shards[0].queue); got != n {
		t.Fatalf("steal-heavy layout: shard 0 has %d cells, want all %d", got, n)
	}

	var mu sync.Mutex
	var got []int
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []int
			for {
				i, ok := s.next(w)
				if !ok {
					break
				}
				mine = append(mine, i)
			}
			mu.Lock()
			got = append(got, mine...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("drained %d cells, want %d", len(got), n)
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("cell %d delivered %d times or out of set (sorted[%d]=%d)", i, 0, i, v)
		}
	}
}
