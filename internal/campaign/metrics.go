package campaign

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"esrp/internal/obs"
)

// WriteMetrics emits the report as a Prometheus textfile snapshot — the
// format node_exporter's textfile collector scrapes — so a campaign's
// outcome can land on a dashboard without a bespoke exporter. The output is
// deterministic: campaign-level counters first, then one gauge family per
// aggregate statistic with the aggregates in report (sorted) order, and the
// build stamp last. All values come from the finished report; this is a
// snapshot, not a live endpoint.
func (r *Report) WriteMetrics(w io.Writer, build obs.BuildInfo) error {
	var b strings.Builder

	var cells, errs, converged, recoveries, wasted int
	var simTime, recovTime float64
	var bytesSent int64
	for i := range r.Cells {
		c := &r.Cells[i]
		cells++
		if c.Err != "" {
			errs++
			continue
		}
		if c.Converged {
			converged++
		}
		recoveries += len(c.Recoveries)
		wasted += c.WastedIters
		simTime += c.SimTime
		recovTime += c.RecoveryTime
		bytesSent += c.BytesSent
	}

	counter := func(name, help string, v string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, v)
	}
	counter("esrp_campaign_cells_total", "Grid cells the campaign ran.", strconv.Itoa(cells))
	counter("esrp_campaign_cell_errors_total", "Cells that failed to run.", strconv.Itoa(errs))
	counter("esrp_campaign_cells_converged_total", "Cells whose solve converged.", strconv.Itoa(converged))
	counter("esrp_campaign_recoveries_total", "Failure events recovered from across all cells.", strconv.Itoa(recoveries))
	counter("esrp_campaign_wasted_iters_total", "Iterations discarded to rollback across all cells.", strconv.Itoa(wasted))
	counter("esrp_campaign_sim_time_seconds_total", "Summed simulated solve time across cells.", formatFloat(simTime))
	counter("esrp_campaign_recovery_seconds_total", "Summed simulated recovery time across cells.", formatFloat(recovTime))
	counter("esrp_campaign_bytes_sent_total", "Summed simulated network traffic across cells.", strconv.FormatInt(bytesSent, 10))

	gauge := func(name, help string, value func(a *Aggregate) string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for i := range r.Aggregates {
			a := &r.Aggregates[i]
			fmt.Fprintf(&b, "%s{matrix=%q,nodes=\"%d\",strategy=%q,t=\"%d\",phi=\"%d\"} %s\n",
				name, escapeLabel(a.Matrix), a.Nodes, escapeLabel(a.Strategy), a.T, a.Phi, value(a))
		}
	}
	gauge("esrp_campaign_median_time_seconds", "Median simulated solve time over the group's seeds.",
		func(a *Aggregate) string { return formatFloat(a.MedianTime) })
	gauge("esrp_campaign_median_recovery_seconds", "Median simulated recovery time over the group's seeds.",
		func(a *Aggregate) string { return formatFloat(a.MedianRecovery) })
	gauge("esrp_campaign_converged_rate", "Fraction of the group's cells that converged.",
		func(a *Aggregate) string { return formatFloat(a.ConvergedRate) })
	gauge("esrp_campaign_max_node_bytes", "Peak per-node memory footprint over the group's seeds.",
		func(a *Aggregate) string { return strconv.FormatInt(a.MaxNodeBytes, 10) })

	fmt.Fprintf(&b, "# HELP esrp_build_info Build provenance of the binary that ran the campaign.\n")
	fmt.Fprintf(&b, "# TYPE esrp_build_info gauge\n")
	fmt.Fprintf(&b, "esrp_build_info{go_version=%q,vcs_revision=%q,vcs_modified=%q} 1\n",
		escapeLabel(build.GoVersion), escapeLabel(build.Revision), strconv.FormatBool(build.Modified))

	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel guards the few characters the Prometheus text format reserves
// inside label values (the %q verb already escapes quotes and backslashes in
// a compatible way, so only raw newlines need flattening beforehand).
func escapeLabel(s string) string {
	return strings.ReplaceAll(s, "\n", " ")
}
