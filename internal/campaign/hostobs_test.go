package campaign

import (
	"bytes"
	"testing"

	"esrp/internal/hostobs"
	"esrp/internal/obs"
)

// runWithRecorder runs the steal-heavy grid with host telemetry on and
// returns the report bytes plus the recorder for inspection.
func runWithRecorder(t *testing.T, workers int) ([]byte, []byte, *hostobs.CampaignRecorder) {
	t.Helper()
	g := stealHeavyGrid()
	g.Workers = workers
	rec := hostobs.NewCampaignRecorder()
	g.HostObs = rec
	rep, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	var jb, cb bytes.Buffer
	if err := rep.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes(), rec
}

// TestHostObsOutputByteIdentical pins the acceptance contract: enabling the
// host recorder must not change a single byte of the campaign's JSON or CSV
// output, at any worker count.
func TestHostObsOutputByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 3} {
		g := stealHeavyGrid()
		g.Workers = workers
		rep, err := Run(g)
		if err != nil {
			t.Fatal(err)
		}
		var jb, cb bytes.Buffer
		if err := rep.WriteJSON(&jb); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteCSV(&cb); err != nil {
			t.Fatal(err)
		}

		obsJSON, obsCSV, _ := runWithRecorder(t, workers)
		if !bytes.Equal(jb.Bytes(), obsJSON) {
			t.Errorf("workers=%d: JSON differs with host telemetry on", workers)
		}
		if !bytes.Equal(cb.Bytes(), obsCSV) {
			t.Errorf("workers=%d: CSV differs with host telemetry on", workers)
		}
	}
}

// TestHostObsTelemetrySanity runs the steal-heavy grid (all 24 cells on one
// shard) with several workers and checks the recorder's aggregate story:
// every cell accounted once, shards sum to the grid, steals happened, the
// shared barrier saw traffic, and phase samples bracket the run.
func TestHostObsTelemetrySanity(t *testing.T) {
	_, _, rec := runWithRecorder(t, 4)
	tel := rec.Telemetry()

	const total = 8 * 3
	if tel.TotalCells != total || tel.CellsDone != total {
		t.Errorf("cells: total %d done %d, want %d", tel.TotalCells, tel.CellsDone, total)
	}
	var shardSum int
	for _, n := range tel.ShardCells {
		shardSum += n
	}
	if shardSum != total {
		t.Errorf("shard layout sums to %d, want %d", shardSum, total)
	}
	// One prepKey → one shard; with 4 workers the other three live off
	// steals alone.
	if tel.Steals == 0 || tel.CellsStolen == 0 {
		t.Errorf("steal-heavy grid recorded %d steals moving %d cells, want > 0", tel.Steals, tel.CellsStolen)
	}
	if tel.StealAttempts < tel.Steals {
		t.Errorf("%d attempts < %d successful steals", tel.StealAttempts, tel.Steals)
	}
	var workerCells int64
	for _, w := range tel.Workers {
		workerCells += w.Cells
	}
	if workerCells != total {
		t.Errorf("per-worker cells sum to %d, want %d", workerCells, total)
	}
	if tel.BusyNs <= 0 || tel.BusyNs > int64(len(tel.Workers))*tel.WallNs {
		t.Errorf("busy %dns outside (0, workers×wall=%dns]", tel.BusyNs, int64(len(tel.Workers))*tel.WallNs)
	}
	// Every cell's solve runs 4 simulated ranks through the instrumented
	// barrier, so the shared stats must have seen phases.
	var phases int64
	for _, m := range tel.Barrier.Members {
		phases += m.Phases
	}
	if phases == 0 {
		t.Error("shared barrier stats saw no phases")
	}
	if tel.BarrierWaitNs < 0 {
		t.Errorf("negative barrier wait %d", tel.BarrierWaitNs)
	}
	if len(tel.Phases) < 3 {
		t.Fatalf("got %d phase samples, want start/prepared/done", len(tel.Phases))
	}
	if tel.Phases[0].Phase != "start" || tel.Phases[len(tel.Phases)-1].Phase != "done" {
		t.Errorf("phase samples %q..%q, want start..done", tel.Phases[0].Phase, tel.Phases[len(tel.Phases)-1].Phase)
	}
	if hits := tel.AffinityHitRate(); hits < 0 || hits > 1 {
		t.Errorf("affinity hit rate %g outside [0,1]", hits)
	}
}

// TestBuildHostTraceValidates converts a live recorder into a Chrome trace
// and runs it through the same validator the simulated-clock traces use.
func TestBuildHostTraceValidates(t *testing.T) {
	g := stealHeavyGrid()
	g.Workers = 3
	rec := hostobs.NewCampaignRecorder()
	g.HostObs = rec
	rep, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	tr := BuildHostTrace(rec, rep, obs.BuildInfo{GoVersion: "test", Revision: "deadbeef"})
	if tr == nil {
		t.Fatal("BuildHostTrace returned nil for a live recorder")
	}
	if len(tr.Threads) != 3 {
		t.Fatalf("trace has %d threads, want one per worker (3)", len(tr.Threads))
	}
	var spans int
	for _, th := range tr.Threads {
		spans += len(th.Spans)
	}
	if spans < 8*3 {
		t.Errorf("trace has %d spans, want at least one per cell (%d)", spans, 8*3)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("host trace failed Chrome validation: %v", err)
	}
	if BuildHostTrace(nil, rep, obs.BuildInfo{}) != nil {
		t.Error("BuildHostTrace on a nil recorder returned a trace")
	}
}
