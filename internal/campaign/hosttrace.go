package campaign

import (
	"fmt"

	"esrp/internal/hostobs"
	"esrp/internal/obs"
)

// BuildHostTrace converts the recorder of a finished campaign into the
// wall-clock Chrome trace of its host workers, labeling every cell span
// with the cell's grid coordinates so the host timeline and the sampled
// simulated-clock cell traces cross-reference by eye in Perfetto. Returns
// nil when rec is nil.
func BuildHostTrace(rec *hostobs.CampaignRecorder, rep *Report, build obs.BuildInfo) *obs.HostTrace {
	if rec == nil {
		return nil
	}
	return rec.BuildTrace("esrp host workers", build, func(index int) (string, string) {
		if rep == nil || index < 0 || index >= len(rep.Cells) {
			return fmt.Sprintf("cell %d", index), "cell"
		}
		c := &rep.Cells[index]
		name := fmt.Sprintf("%s/%s n=%d T=%d φ=%d seed=%d",
			c.Matrix, c.Strategy, c.Nodes, c.T, c.Phi, c.Seed)
		return name, c.Strategy
	})
}
