package harness

import (
	"fmt"
	"math"
	"strings"
)

// RenderFigureASCII draws the paper's Fig. 2/3 layout as a log-scale ASCII
// scatter: checkpoint intervals clustered on the x-axis, runtime overhead on
// a logarithmic y-axis, one marker column per strategy within each cluster
// (P = ESRP, E = ESR, C = IMCR), markers 1..9 keyed by φ position in the
// sweep. failureFree selects subfigure (a), otherwise (b).
func RenderFigureASCII(r *Report, failureFree bool) string {
	ts := tsAbove1(r.Spec.Ts)
	if len(ts) == 0 {
		return "no intervals > 1 to plot\n"
	}
	type point struct {
		col    int
		value  float64
		marker byte
	}
	var points []point
	colsPerCluster := 3*len(r.Spec.Phis) + 3
	esrCells := cellsWithT(r.ESRP, 1)
	for ci, t := range ts {
		base := 2 + ci*colsPerCluster
		for pi, phi := range r.Spec.Phis {
			digit := byte('1' + pi)
			add := func(off int, c *Cell) {
				if c == nil {
					return
				}
				v := c.FFOverhead
				if !failureFree {
					v = medianFailOverhead(c)
				}
				points = append(points, point{col: base + off, value: v, marker: digit})
			}
			add(pi, findPhi(cellsWithT(r.ESRP, t), phi))
			add(len(r.Spec.Phis)+1+pi, findPhi(esrCells, phi))
			add(2*len(r.Spec.Phis)+2+pi, findPhi(cellsWithT(r.IMCR, t), phi))
		}
	}

	// Log-scale y-axis spanning the positive overheads; values at or below
	// the floor (including the exact-zero φ=1 cases) sit on the bottom row.
	const rows = 12
	minV, maxV := math.Inf(1), 0.0
	for _, p := range points {
		if p.value > 0 {
			if p.value < minV {
				minV = p.value
			}
			if p.value > maxV {
				maxV = p.value
			}
		}
	}
	if maxV == 0 { // all-zero degenerate case
		minV, maxV = 1e-4, 1
	}
	if minV == maxV {
		minV = maxV / 10
	}
	logMin, logMax := math.Log10(minV), math.Log10(maxV)

	width := 2 + len(ts)*colsPerCluster
	grid := make([][]byte, rows)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(v float64) int {
		if v <= minV {
			return rows - 1
		}
		frac := (math.Log10(v) - logMin) / (logMax - logMin)
		y := int(math.Round(float64(rows-1) * (1 - frac)))
		if y < 0 {
			y = 0
		}
		if y > rows-1 {
			y = rows - 1
		}
		return y
	}
	for _, p := range points {
		if p.col < width {
			grid[rowOf(p.value)][p.col] = p.marker
		}
	}

	var b strings.Builder
	kind := "(b) node failures introduced"
	if failureFree {
		kind = "(a) failure-free solver"
	}
	fmt.Fprintf(&b, "%s — %s, runtime overhead (log scale)\n", r.Spec.Name, kind)
	fmt.Fprintf(&b, "columns per T-cluster: ESRP | ESR | IMCR; markers 1..%d = φ %v\n",
		len(r.Spec.Phis), r.Spec.Phis)
	for y := 0; y < rows; y++ {
		frac := 1 - float64(y)/float64(rows-1)
		label := math.Pow(10, logMin+frac*(logMax-logMin))
		fmt.Fprintf(&b, "%8.3f%% |%s\n", 100*label, string(grid[y]))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	axis := []byte(strings.Repeat(" ", width))
	for ci, t := range ts {
		lbl := fmt.Sprintf("T=%d", t)
		at := 2 + ci*colsPerCluster
		copy(axis[at:min(at+len(lbl), width)], lbl)
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", string(axis))
	return b.String()
}
