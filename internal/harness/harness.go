// Package harness drives the paper's experimental constellation (Section 5)
// on the simulated cluster: reference runs, failure-free resilient runs, and
// runs with injected node failures, for every combination of strategy
// (ESRP including the T = 1 ESR case, and IMCR), checkpointing interval T,
// and redundancy φ, at the paper's two failure locations (rank blocks
// starting at 0 and at N/2).
//
// The harness computes the paper's metrics — relative runtime overhead over
// the non-resilient reference, reconstruction overhead, and residual drift
// (Eq. 2) — and renders them in the layout of Tables 1–4 and Figures 2–3.
//
// Runtimes are simulated (LogGP model, see internal/cluster), so a single
// repetition is deterministic; the Reps knob exists for API fidelity with
// the paper's ≥5 repetitions and for exercising the median path.
package harness

import (
	"fmt"
	"sort"

	"esrp/internal/cluster"
	"esrp/internal/core"
	"esrp/internal/dist"
	"esrp/internal/obs"
	"esrp/internal/precond"
	"esrp/internal/sparse"
)

// Location identifies where the contiguous block of failed ranks starts,
// matching the paper's "Start" (rank 0) and "Center" (rank N/2) rows.
type Location int

// Failure locations of the paper's constellation.
const (
	LocStart Location = iota
	LocCenter
)

// String returns the paper's label for the location.
func (l Location) String() string {
	switch l {
	case LocStart:
		return "Start"
	case LocCenter:
		return "Center"
	default:
		return fmt.Sprintf("Location(%d)", int(l))
	}
}

// Ranks returns the contiguous failed-rank block of ψ nodes for this
// location on an n-node cluster.
func (l Location) Ranks(psi, n int) []int {
	base := 0
	if l == LocCenter {
		base = n / 2
	}
	ranks := make([]int, psi)
	for i := range ranks {
		ranks[i] = base + i
	}
	return ranks
}

// Spec describes one experiment family: one matrix, one cluster size, and
// the sweep over strategies, intervals and redundancy counts.
type Spec struct {
	Name   string      // matrix label for the rendered tables
	Matrix *sparse.CSR // the SPD system
	B      []float64   // right-hand side (nil = b for x*=ones)

	Nodes int // simulated cluster size (paper: 128; defaults to 32)

	Rtol      float64 // outer tolerance (paper: 1e-8)
	InnerRtol float64 // reconstruction tolerance (paper: 1e-14)
	MaxBlock  int     // block Jacobi block bound (paper: 10)

	Ts   []int // checkpoint intervals; for ESRP a leading 1 means "plain ESR"
	Phis []int // redundancy counts φ (= ψ in the failure runs)

	Locations []Location // failure locations (default Start, Center)

	Reps int // repetitions per setting; median is reported (default 1)

	MaxIter   int                // per-run iteration cap (0 = solver default)
	CostModel *cluster.CostModel // nil = cluster default
	Precond   precond.Kind       // zero value = block Jacobi
	Kernel    sparse.KernelKind  // SpMV layout (zero value = planner-chosen)

	// BalanceNNZ runs the whole constellation on the weight-balanced block
	// row distribution instead of the paper's uniform split (see
	// dist.NewBalancedWeightPartition); the report then carries the quality
	// of the balanced layout.
	BalanceNNZ bool

	// Timeline adds one multi-failure scenario run beyond the paper's
	// single-event constellation: the event list (e.g. compiled by
	// internal/faultsim) is injected into one ESRP/ESR solve and the
	// per-event recovery records land in Report.Scenario. Spares bounds the
	// replacement pool for that run (0 = unlimited); once exhausted,
	// recovery falls back to the no-spare shrink and the report shows the
	// cluster getting smaller.
	Timeline []core.FailureSpec
	Spares   int

	// Observe enables span tracing / iteration series on every run of the
	// constellation (nil = off, the instrumentation-free hot path). The
	// reference run's trace is kept on Report.RefTrace.
	Observe *obs.Options
}

func (s Spec) withDefaults() (Spec, error) {
	if s.Matrix == nil {
		return s, fmt.Errorf("harness: missing matrix")
	}
	if s.Name == "" {
		s.Name = "matrix"
	}
	if s.B == nil {
		b := make([]float64, s.Matrix.Rows)
		one := make([]float64, s.Matrix.Rows)
		for i := range one {
			one[i] = 1
		}
		s.Matrix.MulVecRows(b, one, 0, s.Matrix.Rows)
		s.B = b
	}
	if s.Nodes <= 0 {
		s.Nodes = 32
	}
	if s.Rtol <= 0 {
		s.Rtol = 1e-8
	}
	if s.InnerRtol <= 0 {
		s.InnerRtol = 1e-14
	}
	if s.MaxBlock <= 0 {
		s.MaxBlock = 10
	}
	if len(s.Ts) == 0 {
		s.Ts = []int{1, 20, 50, 100}
	}
	if len(s.Phis) == 0 {
		s.Phis = []int{1, 3, 8}
	}
	if len(s.Locations) == 0 {
		s.Locations = []Location{LocStart, LocCenter}
	}
	if s.Reps <= 0 {
		s.Reps = 1
	}
	if s.Precond == precond.Default {
		s.Precond = precond.BlockJacobi
	}
	return s, nil
}

// Cell is one measured setting of the constellation — one row-group entry of
// Table 2/3.
type Cell struct {
	Strategy core.Strategy
	T        int
	Phi      int

	// Failure-free measurement.
	FFTime     float64 // median simulated runtime with resilience, no failure
	FFOverhead float64 // (FFTime − t0)/t0
	FFIters    int
	// FFMaxNodeBytes and FFHaloBytes carry the failure-free run's per-node
	// memory footprint and measured halo traffic (redundancy included).
	FFMaxNodeBytes int64
	FFHaloBytes    int64

	// Failure measurements, one per location (parallel to Spec.Locations).
	Fail []FailureCell
}

// FailureCell is one failure run: ψ = φ simultaneous failures at a location.
type FailureCell struct {
	Location Location
	Psi      int

	Time             float64 // median simulated runtime including recovery
	Overhead         float64 // (Time − t0)/t0
	RecoveryOverhead float64 // median RecoveryTime / t0
	WastedIters      int
	Drift            float64
	Converged        bool
	FailureIter      int // iteration the failure was injected at
}

// Report aggregates one Spec's measurements.
type Report struct {
	Spec Spec

	RefTime  float64 // t0: median simulated runtime of the non-resilient PCG
	RefIters int     // C: iterations of the reference run
	RefDrift float64 // residual drift of the reference (Eq. 2)

	// RefMaxNodeBytes is the largest per-node dynamic solver footprint of
	// the reference run — O(n/s + halo) under the compact local data path.
	RefMaxNodeBytes int64
	// RefHaloBytes is the measured (not planned) halo payload volume the
	// reference run's SpMV exchanges shipped, summed over nodes.
	RefHaloBytes int64

	// Partition describes the quality (per-node nonzero load, imbalance
	// factor, SpMV ghost volume) of the block row distribution the runs
	// used — the uniform split, or the balanced one with Spec.BalanceNNZ.
	Partition *dist.Quality

	// Kernels condenses the per-node SpMV kernel layouts of the reference
	// run ("band×30, band+sellc×2"): the planner's choices under KernelAuto,
	// or the forced kind.
	Kernels string

	ESRP []Cell // sorted by (T, φ); T = 1 entries are plain ESR
	IMCR []Cell // sorted by (T, φ); no T = 1 entry

	// Scenario is the multi-failure scenario run (Spec.Timeline), nil when
	// no timeline was configured.
	Scenario *ScenarioCell

	// RefTrace is the reference run's span timeline (nil unless
	// Spec.Observe enables tracing).
	RefTrace *obs.Trace
}

// ScenarioCell is the measured multi-failure scenario run: one solve under
// the whole event timeline, with the per-event recovery records.
type ScenarioCell struct {
	Strategy core.Strategy
	T        int
	Phi      int
	Spares   int

	Time        float64 // simulated runtime including all recoveries
	Overhead    float64 // (Time − t0)/t0
	Converged   bool
	WastedIters int
	Drift       float64
	ActiveNodes int // nodes still iterating at the end (< N after shrinks)

	Events []core.RecoveryEvent // one record per handled failure event
}

// FailureIteration returns the paper's injection point for interval T: two
// iterations before the end of the checkpoint interval containing iteration
// C/2 — the worst case, where almost all progress since the interval's
// storage stage is lost. For T = 1 (plain ESR) it is simply C/2.
func FailureIteration(c, t int) int {
	if t <= 1 {
		return c / 2
	}
	k := (c / 2) / t
	j := (k+1)*t - 2
	if j < 0 {
		j = 0
	}
	return j
}

// Run executes the full constellation for the spec and returns the report.
func Run(spec Spec) (*Report, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	rep := &Report{Spec: spec}
	if rep.Partition, err = partitionQuality(spec); err != nil {
		return nil, fmt.Errorf("harness: partition diagnostics: %w", err)
	}

	ref, err := runMedian(spec, core.Config{Strategy: core.StrategyNone}, spec.Reps)
	if err != nil {
		return nil, fmt.Errorf("harness: reference run: %w", err)
	}
	if !ref.Converged {
		return nil, fmt.Errorf("harness: reference solver did not converge in %d iterations", ref.Iterations)
	}
	rep.RefTime = ref.SimTime
	rep.RefIters = ref.Iterations
	rep.RefDrift = ref.Drift
	rep.RefMaxNodeBytes = ref.MaxNodeBytes
	rep.RefHaloBytes = ref.HaloBytes
	rep.Kernels = core.CondenseKernels(ref.Kernels)
	rep.RefTrace = ref.Trace

	for _, t := range spec.Ts {
		for _, phi := range spec.Phis {
			cell, err := runCell(spec, esrpConfig(t), t, phi, rep)
			if err != nil {
				return nil, err
			}
			rep.ESRP = append(rep.ESRP, *cell)
		}
	}
	for _, t := range spec.Ts {
		if t <= 1 {
			continue // the paper's IMCR sweep starts at T = 20
		}
		for _, phi := range spec.Phis {
			cell, err := runCell(spec, core.StrategyIMCR, t, phi, rep)
			if err != nil {
				return nil, err
			}
			rep.IMCR = append(rep.IMCR, *cell)
		}
	}
	if len(spec.Timeline) > 0 {
		if rep.Scenario, err = runScenario(spec, rep); err != nil {
			return nil, fmt.Errorf("harness: scenario run: %w", err)
		}
	}
	return rep, nil
}

// runScenario executes the multi-failure timeline once, on the spec's first
// interval/redundancy setting (ESR when that interval is ≤ 2, ESRP
// otherwise), with the configured spare pool. ψ beyond φ is the caller's
// responsibility, exactly as for core.Config.
func runScenario(spec Spec, rep *Report) (*ScenarioCell, error) {
	t := spec.Ts[0]
	phi := spec.Phis[0]
	strat := esrpConfig(t)
	if strat == core.StrategyESR {
		t = 1 // the solve forces T = 1 for ESR; report the interval actually used
	}
	cfg := spec.config(core.Config{Strategy: strat, T: t, Phi: phi})
	cfg.Failures = spec.Timeline
	cfg.Spares = spec.Spares
	res, err := core.Solve(cfg)
	if err != nil {
		return nil, err
	}
	return &ScenarioCell{
		Strategy:    strat,
		T:           t,
		Phi:         phi,
		Spares:      spec.Spares,
		Time:        res.SimTime,
		Overhead:    overhead(res.SimTime, rep.RefTime),
		Converged:   res.Converged,
		WastedIters: res.WastedIters,
		Drift:       res.Drift,
		ActiveNodes: res.ActiveNodes,
		Events:      res.Events,
	}, nil
}

// esrpConfig maps a checkpoint interval to the strategy the paper would use:
// T ≤ 2 degenerates to plain ESR (Section 3), otherwise ESRP.
func esrpConfig(t int) core.Strategy {
	if t <= 2 {
		return core.StrategyESR
	}
	return core.StrategyESRP
}

// runCell measures one (strategy, T, φ) setting: the failure-free run plus
// one failure run per location with ψ = φ simultaneous failures.
func runCell(spec Spec, strat core.Strategy, t, phi int, rep *Report) (*Cell, error) {
	base := core.Config{Strategy: strat, T: t, Phi: phi}
	ff, err := runMedian(spec, base, spec.Reps)
	if err != nil {
		return nil, fmt.Errorf("harness: %v T=%d φ=%d failure-free: %w", strat, t, phi, err)
	}
	cell := &Cell{
		Strategy:       strat,
		T:              t,
		Phi:            phi,
		FFTime:         ff.SimTime,
		FFOverhead:     overhead(ff.SimTime, rep.RefTime),
		FFIters:        ff.Iterations,
		FFMaxNodeBytes: ff.MaxNodeBytes,
		FFHaloBytes:    ff.HaloBytes,
	}
	fiter := FailureIteration(rep.RefIters, t)
	for _, loc := range spec.Locations {
		cfg := base
		cfg.Failure = &core.FailureSpec{
			Iteration: fiter,
			Ranks:     loc.Ranks(phi, spec.Nodes),
		}
		fr, err := runMedian(spec, cfg, spec.Reps)
		if err != nil {
			return nil, fmt.Errorf("harness: %v T=%d φ=ψ=%d %v: %w", strat, t, phi, loc, err)
		}
		cell.Fail = append(cell.Fail, FailureCell{
			Location:         loc,
			Psi:              phi,
			Time:             fr.SimTime,
			Overhead:         overhead(fr.SimTime, rep.RefTime),
			RecoveryOverhead: fr.RecoveryTime / rep.RefTime,
			WastedIters:      fr.WastedIters,
			Drift:            fr.Drift,
			Converged:        fr.Converged,
			FailureIter:      fiter,
		})
	}
	return cell, nil
}

func overhead(t, t0 float64) float64 { return (t - t0) / t0 }

// partitionQuality analyzes the block row distribution the spec's runs use,
// asking the solver for it (core.PartitionFor) so the report never drifts
// from the distribution actually executed.
func partitionQuality(spec Spec) (*dist.Quality, error) {
	part, err := core.PartitionFor(spec.config(core.Config{}))
	if err != nil {
		return nil, err
	}
	return part.Analyze(spec.Matrix)
}

// config completes a strategy skeleton with the spec's problem and solver
// settings — the single source of the Spec→Config mapping, shared by the
// runs and the partition diagnostics.
func (s Spec) config(cfg core.Config) core.Config {
	cfg.A = s.Matrix
	cfg.B = s.B
	cfg.Nodes = s.Nodes
	cfg.Rtol = s.Rtol
	cfg.InnerRtol = s.InnerRtol
	cfg.MaxBlock = s.MaxBlock
	cfg.MaxIter = s.MaxIter
	cfg.PrecondKind = s.Precond
	cfg.CostModel = s.CostModel
	cfg.BalanceNNZ = s.BalanceNNZ
	cfg.Kernel = s.Kernel
	cfg.Observe = s.Observe
	return cfg
}

// runMedian completes the config from the spec, runs it Reps times, and
// returns the run whose simulated time is the median.
func runMedian(spec Spec, cfg core.Config, reps int) (*core.Result, error) {
	cfg = spec.config(cfg)

	results := make([]*core.Result, 0, reps)
	for i := 0; i < reps; i++ {
		r, err := core.Solve(cfg)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].SimTime < results[j].SimTime })
	return results[len(results)/2], nil
}

// DriftStats condenses the drift of all failure runs of a report into the
// paper's Table 4 row: reference drift, median drift, and minimum drift
// (the worst accuracy loss) over all ESRP failure experiments.
func (r *Report) DriftStats() (ref, median, min float64) {
	var drifts []float64
	for _, c := range r.ESRP {
		for _, f := range c.Fail {
			drifts = append(drifts, f.Drift)
		}
	}
	if len(drifts) == 0 {
		return r.RefDrift, r.RefDrift, r.RefDrift
	}
	sort.Float64s(drifts)
	return r.RefDrift, drifts[len(drifts)/2], drifts[0]
}
