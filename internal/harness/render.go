package harness

import (
	"fmt"
	"strings"

	"esrp/internal/sparse"
)

// RenderTable1 prints the test-matrix inventory in the layout of the paper's
// Table 1: name, problem type, size, and nonzero count.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Test matrices\n")
	fmt.Fprintf(&b, "%-24s %-14s %12s %14s %10s\n", "Matrix", "Problem type", "Problem size", "#NZ", "nnz/row")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-14s %12d %14d %10.1f\n",
			r.Name, r.ProblemType, r.Size, r.NNZ, float64(r.NNZ)/float64(r.Size))
	}
	return b.String()
}

// Table1Row is one matrix entry of Table 1.
type Table1Row struct {
	Name        string
	ProblemType string
	Size        int
	NNZ         int
}

// NewTable1Row describes a generated matrix.
func NewTable1Row(name, problemType string, a *sparse.CSR) Table1Row {
	return Table1Row{Name: name, ProblemType: problemType, Size: a.Rows, NNZ: a.NNZ()}
}

// RenderOverheadTable prints a report in the layout of the paper's Tables 2
// and 3: per strategy and checkpoint interval, the failure-free overhead for
// each φ, and per location the overall and reconstruction overheads for
// ψ = φ simultaneous failures. Overheads are percentages relative to the
// reference time t0.
func RenderOverheadTable(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Results for matrix %s. Reference time t0 = %.4g s (simulated). C = %d iterations.\n",
		r.Spec.Name, r.RefTime, r.RefIters)
	fmt.Fprintf(&b, "N = %d nodes. All overheads relative to t0, in %%.\n\n", r.Spec.Nodes)

	phis := r.Spec.Phis
	header := func() {
		fmt.Fprintf(&b, "%-9s %4s |", "Strategy", "T")
		for _, phi := range phis {
			fmt.Fprintf(&b, " ff φ=%-3d", phi)
		}
		fmt.Fprintf(&b, "| %-7s|", "Loc")
		for _, phi := range phis {
			fmt.Fprintf(&b, " ov ψ=%-3d", phi)
		}
		fmt.Fprintf(&b, "|")
		for _, phi := range phis {
			fmt.Fprintf(&b, " rc ψ=%-3d", phi)
		}
		fmt.Fprintf(&b, "\n")
	}
	header()

	renderGroup := func(label string, cells []Cell) {
		byT := groupByT(cells)
		for _, t := range sortedKeys(byT) {
			group := byT[t]
			name := label
			if label == "ESRP" && t == 1 {
				name = "ESR"
			}
			for li, loc := range r.Spec.Locations {
				if li == 0 {
					fmt.Fprintf(&b, "%-9s %4d |", name, t)
					for _, phi := range phis {
						if c := findPhi(group, phi); c != nil {
							fmt.Fprintf(&b, " %7.2f ", 100*c.FFOverhead)
						} else {
							fmt.Fprintf(&b, " %7s ", "-")
						}
					}
				} else {
					fmt.Fprintf(&b, "%-9s %4s |%s", "", "", strings.Repeat(" ", 9*len(phis)))
				}
				fmt.Fprintf(&b, "| %-7s|", loc)
				for _, phi := range phis {
					if f := findFail(group, phi, loc); f != nil {
						fmt.Fprintf(&b, " %7.2f ", 100*f.Overhead)
					} else {
						fmt.Fprintf(&b, " %7s ", "-")
					}
				}
				fmt.Fprintf(&b, "|")
				for _, phi := range phis {
					if f := findFail(group, phi, loc); f != nil {
						fmt.Fprintf(&b, " %7.2f ", 100*f.RecoveryOverhead)
					} else {
						fmt.Fprintf(&b, " %7s ", "-")
					}
				}
				fmt.Fprintf(&b, "\n")
			}
		}
	}
	renderGroup("ESRP", r.ESRP)
	fmt.Fprintln(&b)
	renderGroup("IMCR", r.IMCR)
	return b.String()
}

// RenderDriftTable prints the paper's Table 4: residual drift (Eq. 2) of the
// reference runs and the median/minimum drift over all ESRP failure runs.
func RenderDriftTable(reports []*Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: Residual drift (Eq. 2)\n")
	fmt.Fprintf(&b, "%-24s %14s %14s %14s\n", "Matrix", "Reference", "Median", "Minimum")
	for _, r := range reports {
		ref, med, min := r.DriftStats()
		fmt.Fprintf(&b, "%-24s %14.3e %14.3e %14.3e\n", r.Spec.Name, ref, med, min)
	}
	return b.String()
}

// RenderFigure prints the data series of the paper's Fig. 2 (Emilia-like) or
// Fig. 3 (audikw-like): for each checkpoint interval T > 1, the median
// runtime overhead over all locations for ESRP, ESR and IMCR, one marker per
// φ. failureFree selects subfigure (a); otherwise (b).
func RenderFigure(r *Report, failureFree bool) string {
	var b strings.Builder
	kind := "(b) Node failures introduced"
	if failureFree {
		kind = "(a) Failure-free solver"
	}
	fmt.Fprintf(&b, "Figure data for %s — %s\n", r.Spec.Name, kind)
	fmt.Fprintf(&b, "median runtime overhead [%%] per (strategy, T); markers φ = %v\n\n", r.Spec.Phis)
	fmt.Fprintf(&b, "%-10s", "T")
	for _, strat := range []string{"ESRP", "ESR", "IMCR"} {
		for _, phi := range r.Spec.Phis {
			fmt.Fprintf(&b, " %s(φ=%d)", strat, phi)
		}
	}
	fmt.Fprintf(&b, "\n")

	esrCells := cellsWithT(r.ESRP, 1)
	for _, t := range tsAbove1(r.Spec.Ts) {
		fmt.Fprintf(&b, "%-10d", t)
		for _, phi := range r.Spec.Phis {
			writePoint(&b, findPhi(cellsWithT(r.ESRP, t), phi), failureFree)
		}
		for _, phi := range r.Spec.Phis {
			writePoint(&b, findPhi(esrCells, phi), failureFree)
		}
		for _, phi := range r.Spec.Phis {
			writePoint(&b, findPhi(cellsWithT(r.IMCR, t), phi), failureFree)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// writePoint emits one figure marker: the failure-free overhead, or the
// median overhead over all failure locations.
func writePoint(b *strings.Builder, c *Cell, failureFree bool) {
	if c == nil {
		fmt.Fprintf(b, " %9s", "-")
		return
	}
	v := c.FFOverhead
	if !failureFree {
		v = medianFailOverhead(c)
	}
	fmt.Fprintf(b, " %8.2f%%", 100*v)
}

func medianFailOverhead(c *Cell) float64 {
	if len(c.Fail) == 0 {
		return 0
	}
	vals := make([]float64, 0, len(c.Fail))
	for _, f := range c.Fail {
		vals = append(vals, f.Overhead)
	}
	sortFloats(vals)
	if n := len(vals); n%2 == 1 {
		return vals[n/2]
	} else {
		return (vals[n/2-1] + vals[n/2]) / 2
	}
}

// Summary prints a one-paragraph comparison of the report's headline shape
// results, for example binaries and logs.
func Summary(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: reference %d iterations, t0 = %.4g s (simulated)\n", r.Spec.Name, r.RefIters, r.RefTime)
	if r.Partition != nil {
		layout := "uniform"
		if r.Spec.BalanceNNZ {
			layout = "nnz-balanced"
		}
		fmt.Fprintf(&b, "  partition (%s, %d nodes): %s\n", layout, r.Spec.Nodes, r.Partition)
	}
	if r.RefMaxNodeBytes > 0 {
		fmt.Fprintf(&b, "  per-node memory ≤ %s (O(local+halo)); measured halo traffic %s per reference solve\n",
			fmtBytes(r.RefMaxNodeBytes), fmtBytes(r.RefHaloBytes))
	}
	if r.Kernels != "" {
		fmt.Fprintf(&b, "  spmv kernels (%v): %s\n", r.Spec.Kernel, r.Kernels)
	}
	if esr := findPhi(cellsWithT(r.ESRP, 1), r.Spec.Phis[0]); esr != nil {
		fmt.Fprintf(&b, "  ESR    (T=1,  φ=%d): failure-free overhead %6.2f%%\n", r.Spec.Phis[0], 100*esr.FFOverhead)
	}
	for _, t := range tsAbove1(r.Spec.Ts) {
		if c := findPhi(cellsWithT(r.ESRP, t), r.Spec.Phis[0]); c != nil {
			fmt.Fprintf(&b, "  ESRP   (T=%-3d φ=%d): failure-free overhead %6.2f%%, with failures %6.2f%%\n",
				t, c.Phi, 100*c.FFOverhead, 100*medianFailOverhead(c))
		}
		if c := findPhi(cellsWithT(r.IMCR, t), r.Spec.Phis[0]); c != nil {
			fmt.Fprintf(&b, "  IMCR   (T=%-3d φ=%d): failure-free overhead %6.2f%%, with failures %6.2f%%\n",
				t, c.Phi, 100*c.FFOverhead, 100*medianFailOverhead(c))
		}
	}
	if r.Scenario != nil {
		b.WriteString(RenderScenario(r.Scenario, r.Spec.Nodes))
	}
	return b.String()
}

// RenderScenario prints the multi-failure scenario run: the headline line
// plus one line per recovery event, so the whole failure process is visible
// in the report.
func RenderScenario(s *ScenarioCell, nodes int) string {
	var b strings.Builder
	status := "converged"
	if !s.Converged {
		status = "DID NOT CONVERGE"
	}
	pool := "unlimited spares"
	if s.Spares > 0 {
		pool = fmt.Sprintf("%d spares", s.Spares)
	}
	fmt.Fprintf(&b, "  scenario (%v T=%d φ=%d, %s): %d failure events, %s, overhead %6.2f%%, %d iterations wasted\n",
		s.Strategy, s.T, s.Phi, pool, len(s.Events), status, 100*s.Overhead, s.WastedIters)
	for i, ev := range s.Events {
		fmt.Fprintf(&b, "    event %d: %s\n", i, ev)
	}
	if s.ActiveNodes < nodes {
		fmt.Fprintf(&b, "    cluster shrank to %d of %d nodes\n", s.ActiveNodes, nodes)
	}
	return b.String()
}

// --- small helpers -----------------------------------------------------------

// fmtBytes renders a byte count with a binary-prefix unit for the summary.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func groupByT(cells []Cell) map[int][]Cell {
	m := make(map[int][]Cell)
	for _, c := range cells {
		m[c.T] = append(m[c.T], c)
	}
	return m
}

func sortedKeys(m map[int][]Cell) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortInts(keys)
	return keys
}

func cellsWithT(cells []Cell, t int) []Cell {
	var out []Cell
	for _, c := range cells {
		if c.T == t {
			out = append(out, c)
		}
	}
	return out
}

func findPhi(cells []Cell, phi int) *Cell {
	for i := range cells {
		if cells[i].Phi == phi {
			return &cells[i]
		}
	}
	return nil
}

func findFail(cells []Cell, phi int, loc Location) *FailureCell {
	c := findPhi(cells, phi)
	if c == nil {
		return nil
	}
	for i := range c.Fail {
		if c.Fail[i].Location == loc {
			return &c.Fail[i]
		}
	}
	return nil
}

func tsAbove1(ts []int) []int {
	var out []int
	for _, t := range ts {
		if t > 1 {
			out = append(out, t)
		}
	}
	return out
}

func sortInts(x []int) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
