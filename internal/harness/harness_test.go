package harness

import (
	"strings"
	"testing"

	"esrp/internal/core"
	"esrp/internal/matgen"
)

// smallSpec builds a fast constellation: a 2-D Poisson matrix on 8 nodes
// with a reduced sweep, converging in a few hundred iterations.
func smallSpec() Spec {
	return Spec{
		Name:   "poisson2d-24x24",
		Matrix: matgen.Poisson2D(24, 24),
		Nodes:  8,
		Ts:     []int{1, 10, 25},
		Phis:   []int{1, 2},
		Rtol:   1e-8,
	}
}

func TestRunSmallConstellation(t *testing.T) {
	rep, err := Run(smallSpec())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.RefIters <= 0 {
		t.Fatalf("reference iterations = %d, want > 0", rep.RefIters)
	}
	if rep.RefTime <= 0 {
		t.Fatalf("reference time = %g, want > 0", rep.RefTime)
	}
	if rep.RefMaxNodeBytes <= 0 || rep.RefHaloBytes <= 0 {
		t.Fatalf("footprint figures missing: per-node %d B, halo %d B", rep.RefMaxNodeBytes, rep.RefHaloBytes)
	}
	if full := int64(8 * rep.Spec.Matrix.Rows); rep.RefMaxNodeBytes >= full {
		t.Errorf("per-node memory %d B reaches a full-length vector (%d B); the data path must stay O(local+halo)",
			rep.RefMaxNodeBytes, full)
	}
	// 3 intervals × 2 φ for ESRP; IMCR skips T = 1.
	if got, want := len(rep.ESRP), 6; got != want {
		t.Errorf("len(ESRP) = %d, want %d", got, want)
	}
	if got, want := len(rep.IMCR), 4; got != want {
		t.Errorf("len(IMCR) = %d, want %d", got, want)
	}
	for _, c := range rep.ESRP {
		if c.FFIters != rep.RefIters {
			t.Errorf("ESRP T=%d φ=%d failure-free iterations %d differ from reference %d (redundancy must not change the trajectory)",
				c.T, c.Phi, c.FFIters, rep.RefIters)
		}
		if len(c.Fail) != 2 {
			t.Fatalf("ESRP T=%d φ=%d: %d failure cells, want 2", c.T, c.Phi, len(c.Fail))
		}
		for _, f := range c.Fail {
			if !f.Converged {
				t.Errorf("ESRP T=%d φ=%d %v: failure run did not converge", c.T, c.Phi, f.Location)
			}
			if f.Overhead < 0 {
				t.Errorf("ESRP T=%d φ=%d %v: negative overhead %g", c.T, c.Phi, f.Location, f.Overhead)
			}
		}
	}
}

func TestESRPStrategySelection(t *testing.T) {
	if got := esrpConfig(1); got != core.StrategyESR {
		t.Errorf("esrpConfig(1) = %v, want ESR", got)
	}
	if got := esrpConfig(2); got != core.StrategyESR {
		t.Errorf("esrpConfig(2) = %v, want ESR", got)
	}
	if got := esrpConfig(20); got != core.StrategyESRP {
		t.Errorf("esrpConfig(20) = %v, want ESRP", got)
	}
}

func TestFailureIteration(t *testing.T) {
	cases := []struct {
		c, t, want int
	}{
		{1000, 1, 500},    // ESR: failure at C/2
		{1000, 20, 518},   // interval [500,520): inject at 520-2
		{1000, 100, 598},  // interval [500,600): inject at 600-2
		{10279, 20, 5138}, // C/2 = 5139 lies in [5120, 5140): inject at 5138
		{10, 50, 48},      // interval [0,50): inject at 48 even past convergence
		{0, 1, 0},
	}
	for _, tc := range cases {
		if got := FailureIteration(tc.c, tc.t); got != tc.want {
			t.Errorf("FailureIteration(%d, %d) = %d, want %d", tc.c, tc.t, got, tc.want)
		}
	}
}

func TestFailureIterationInsideHalfInterval(t *testing.T) {
	// The injection point must lie in the interval containing C/2 and be
	// exactly two before its end, for a range of C and T.
	for _, c := range []int{100, 500, 1234, 10279} {
		for _, tt := range []int{5, 20, 50, 100} {
			j := FailureIteration(c, tt)
			k := (c / 2) / tt
			if j < k*tt || j >= (k+1)*tt {
				t.Errorf("C=%d T=%d: injection %d outside interval [%d,%d)", c, tt, j, k*tt, (k+1)*tt)
			}
			if (k+1)*tt-j != 2 {
				t.Errorf("C=%d T=%d: injection %d is %d before interval end, want 2", c, tt, j, (k+1)*tt-j)
			}
		}
	}
}

func TestLocationRanks(t *testing.T) {
	if got := LocStart.Ranks(3, 16); got[0] != 0 || got[2] != 2 {
		t.Errorf("Start ranks = %v, want [0 1 2]", got)
	}
	if got := LocCenter.Ranks(2, 16); got[0] != 8 || got[1] != 9 {
		t.Errorf("Center ranks = %v, want [8 9]", got)
	}
	if LocStart.String() != "Start" || LocCenter.String() != "Center" {
		t.Errorf("location labels wrong: %v %v", LocStart, LocCenter)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	rep, err := Run(smallSpec())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tbl := RenderOverheadTable(rep)
	for _, want := range []string{"ESRP", "ESR", "IMCR", "Start", "Center", "Reference time"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("overhead table missing %q:\n%s", want, tbl)
		}
	}
	drift := RenderDriftTable([]*Report{rep})
	if !strings.Contains(drift, rep.Spec.Name) || !strings.Contains(drift, "Median") {
		t.Errorf("drift table malformed:\n%s", drift)
	}
	figA := RenderFigure(rep, true)
	figB := RenderFigure(rep, false)
	if !strings.Contains(figA, "Failure-free") || !strings.Contains(figB, "failures introduced") {
		t.Errorf("figure renderers malformed:\n%s\n%s", figA, figB)
	}
	sum := Summary(rep)
	if !strings.Contains(sum, "ESRP") {
		t.Errorf("summary missing ESRP:\n%s", sum)
	}
}

func TestRenderTable1(t *testing.T) {
	a := matgen.Poisson2D(10, 10)
	out := RenderTable1([]Table1Row{NewTable1Row("poisson", "Test", a)})
	if !strings.Contains(out, "poisson") || !strings.Contains(out, "100") {
		t.Errorf("table 1 malformed:\n%s", out)
	}
}

func TestDriftStats(t *testing.T) {
	rep := &Report{RefDrift: -0.01}
	ref, med, min := rep.DriftStats()
	if ref != -0.01 || med != -0.01 || min != -0.01 {
		t.Errorf("empty drift stats = %g %g %g, want all -0.01", ref, med, min)
	}
	rep.ESRP = []Cell{
		{Fail: []FailureCell{{Drift: -0.03}, {Drift: -0.01}}},
		{Fail: []FailureCell{{Drift: -0.02}}},
	}
	_, med, min = rep.DriftStats()
	if min != -0.03 {
		t.Errorf("min drift = %g, want -0.03", min)
	}
	if med != -0.02 {
		t.Errorf("median drift = %g, want -0.02", med)
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Run(Spec{}); err == nil {
		t.Error("Run with no matrix should fail")
	}
}

func TestMedianOverReps(t *testing.T) {
	spec := smallSpec()
	spec.Ts = []int{10}
	spec.Phis = []int{1}
	spec.Reps = 3 // deterministic, but exercises the median path
	rep, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.ESRP) != 1 || len(rep.IMCR) != 1 {
		t.Fatalf("unexpected cell counts: %d ESRP, %d IMCR", len(rep.ESRP), len(rep.IMCR))
	}
}

func TestRenderFigureASCII(t *testing.T) {
	rep, err := Run(smallSpec())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, ff := range []bool{true, false} {
		out := RenderFigureASCII(rep, ff)
		if !strings.Contains(out, "T=10") || !strings.Contains(out, "T=25") {
			t.Errorf("ASCII figure missing T clusters:\n%s", out)
		}
		if !strings.Contains(out, "%") || !strings.Contains(out, "1") {
			t.Errorf("ASCII figure missing axis or markers:\n%s", out)
		}
	}
	empty := RenderFigureASCII(&Report{Spec: Spec{Ts: []int{1}}}, true)
	if !strings.Contains(empty, "no intervals") {
		t.Errorf("degenerate figure: %q", empty)
	}
}

func TestRunReportsPartitionQuality(t *testing.T) {
	spec := smallSpec()
	spec.Ts = []int{1}
	spec.Phis = []int{1}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partition == nil {
		t.Fatal("report lacks partition diagnostics")
	}
	// Poisson2D is structurally uniform: the uniform split is near-perfect.
	if rep.Partition.Imbalance < 1 || rep.Partition.Imbalance > 1.1 {
		t.Fatalf("uniform Poisson partition imbalance %g", rep.Partition.Imbalance)
	}
	if rep.Partition.GhostTotal <= 0 {
		t.Fatalf("ghost volume %d, want > 0 on a distributed stencil", rep.Partition.GhostTotal)
	}
	if s := Summary(rep); !strings.Contains(s, "partition (uniform") {
		t.Fatalf("Summary lacks the partition line:\n%s", s)
	}
}

func TestRunBalancedSpec(t *testing.T) {
	spec := smallSpec()
	spec.Ts = []int{10}
	spec.Phis = []int{1}
	spec.BalanceNNZ = true
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partition == nil {
		t.Fatal("report lacks partition diagnostics")
	}
	if s := Summary(rep); !strings.Contains(s, "partition (nnz-balanced") {
		t.Fatalf("Summary lacks the balanced partition line:\n%s", s)
	}
	// The reported quality must describe the partition the solver ran on,
	// not a re-derivation with different weights.
	part, err := core.PartitionFor(rep.Spec.config(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	q, err := part.Analyze(rep.Spec.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	if q.MaxLoad != rep.Partition.MaxLoad || q.GhostTotal != rep.Partition.GhostTotal {
		t.Fatalf("report quality %v differs from the solver's partition %v", rep.Partition, q)
	}
	for _, c := range rep.ESRP {
		for _, f := range c.Fail {
			if !f.Converged {
				t.Fatalf("balanced ESRP T=%d φ=%d %v did not converge", c.T, c.Phi, f.Location)
			}
		}
	}
}

// A multi-failure timeline on a spare pool that exhausts mid-run: the
// scenario cell records every recovery and the summary renders them.
func TestScenarioTimelineInReport(t *testing.T) {
	spec := Spec{
		Name:   "poisson2d-32x32",
		Matrix: matgen.Poisson2D(32, 32),
		Nodes:  8,
		Ts:     []int{1}, // scenario runs plain ESR
		Phis:   []int{1},
		Spares: 1,
		Timeline: []core.FailureSpec{
			{Iteration: 15, Ranks: []int{2}},
			{Iteration: 35, Ranks: []int{5}},
			{Iteration: 55, Ranks: []int{1}},
		},
	}
	rep, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sc := rep.Scenario
	if sc == nil {
		t.Fatal("timeline configured but Report.Scenario is nil")
	}
	if !sc.Converged {
		t.Fatal("scenario run did not converge")
	}
	if len(sc.Events) != 3 {
		t.Fatalf("scenario recorded %d events, want 3", len(sc.Events))
	}
	if sc.Events[0].Mode != core.RecoverySpare {
		t.Errorf("event 0 mode %q, want spare (pool of 1)", sc.Events[0].Mode)
	}
	for _, ev := range sc.Events[1:] {
		if ev.Mode != core.RecoveryShrink {
			t.Errorf("post-exhaustion event mode %q, want shrink", ev.Mode)
		}
	}
	if sc.ActiveNodes != 6 {
		t.Errorf("scenario finished on %d nodes, want 6", sc.ActiveNodes)
	}
	if sc.Overhead <= 0 {
		t.Errorf("scenario overhead %g, want > 0 (three recoveries cost time)", sc.Overhead)
	}

	sum := Summary(rep)
	if !strings.Contains(sum, "scenario") || !strings.Contains(sum, "shrink recovery") {
		t.Fatalf("summary does not render the scenario events:\n%s", sum)
	}
	if !strings.Contains(sum, "cluster shrank to 6 of 8 nodes") {
		t.Fatalf("summary does not render the shrink:\n%s", sum)
	}
}

// Without a timeline the scenario cell stays nil and the summary is
// unchanged.
func TestNoTimelineNoScenario(t *testing.T) {
	spec := smallSpec()
	spec.Ts = []int{1}
	spec.Phis = []int{1}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != nil {
		t.Fatal("no timeline configured but Report.Scenario is set")
	}
	if strings.Contains(Summary(rep), "scenario") {
		t.Fatal("summary mentions a scenario without one configured")
	}
}
