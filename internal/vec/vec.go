// Package vec provides the serial dense-vector kernels that every simulated
// node applies to its local block of a distributed vector.
//
// All functions operate on raw []float64 slices. They are deliberately free
// of bounds-checking conveniences: callers pass equally sized slices, and the
// functions panic (via the runtime) on mismatched lengths, which in this code
// base always indicates a partitioning bug rather than a recoverable error.
package vec

import "math"

// Dot returns the inner product x·y of two equally long vectors.
func Dot(x, y []float64) float64 {
	var s float64
	for i, xi := range x {
		s += xi * y[i]
	}
	return s
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	for i, xi := range x {
		y[i] += a * xi
	}
}

// Axpby computes y = a*x + b*y in place.
func Axpby(a float64, x []float64, b float64, y []float64) {
	for i, xi := range x {
		y[i] = a*xi + b*y[i]
	}
}

// XpayInto computes dst = x + a*y. dst may alias x or y.
func XpayInto(dst, x []float64, a float64, y []float64) {
	for i := range dst {
		dst[i] = x[i] + a*y[i]
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Copy copies src into dst (lengths must match).
func Copy(dst, src []float64) {
	copy(dst, src)
}

// Clone returns a freshly allocated copy of x.
func Clone(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

// Zero sets all entries of x to zero.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets all entries of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Norm2Sq returns the squared Euclidean norm of x.
func Norm2Sq(x []float64) float64 {
	return Dot(x, x)
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Norm2Sq(x))
}

// NormInf returns the maximum absolute entry of x (0 for empty x).
func NormInf(x []float64) float64 {
	var m float64
	for _, xi := range x {
		if a := math.Abs(xi); a > m {
			m = a
		}
	}
	return m
}

// Sub computes dst = x - y.
func Sub(dst, x, y []float64) {
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// Add computes dst = x + y.
func Add(dst, x, y []float64) {
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// MaxAbsDiff returns max_i |x[i]-y[i]|, a convenient trajectory-comparison
// metric for reconstruction-exactness tests.
func MaxAbsDiff(x, y []float64) float64 {
	var m float64
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}

// Equalish reports whether x and y agree entrywise within absolute
// tolerance tol.
func Equalish(x, y []float64, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	return MaxAbsDiff(x, y) <= tol
}
