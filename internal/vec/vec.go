// Package vec provides the serial dense-vector kernels that every simulated
// node applies to its local block of a distributed vector.
//
// All functions operate on raw []float64 slices. They are deliberately free
// of bounds-checking conveniences: callers pass equally sized slices, and the
// functions panic (via the runtime) on mismatched lengths, which in this code
// base always indicates a partitioning bug rather than a recoverable error.
package vec

import "math"

// Dot returns the inner product x·y of two equally long vectors. The loop
// is 4-way unrolled with a single accumulator updated in index order, so the
// summation order — and therefore the floating-point result — is bitwise
// identical to the naive loop.
func Dot(x, y []float64) float64 {
	var s float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y4 := y[i : i+4 : i+4]
		x4 := x[i : i+4 : i+4]
		s += x4[0] * y4[0]
		s += x4[1] * y4[1]
		s += x4[2] * y4[2]
		s += x4[3] * y4[3]
	}
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// Dot2 returns x·y and x·x in one sweep — the fused form of the solver's
// per-iteration (r·z, r·r) pair. Each accumulator is updated in index order,
// so both sums are bitwise identical to two separate Dot calls.
func Dot2(x, y []float64) (xy, xx float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4 := x[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		xy += x4[0] * y4[0]
		xx += x4[0] * x4[0]
		xy += x4[1] * y4[1]
		xx += x4[1] * x4[1]
		xy += x4[2] * y4[2]
		xx += x4[2] * x4[2]
		xy += x4[3] * y4[3]
		xx += x4[3] * x4[3]
	}
	for ; i < len(x); i++ {
		xy += x[i] * y[i]
		xx += x[i] * x[i]
	}
	return xy, xx
}

// Dot3 returns x·y, z·y and x·x in one sweep — the pipelined solver's fused
// (γ, δ, ‖r‖²) triple with x = r, y = u, z = w. Order-preserving like Dot2.
func Dot3(x, y, z []float64) (xy, zy, xx float64) {
	for i := range x {
		xi, yi := x[i], y[i]
		xy += xi * yi
		zy += z[i] * yi
		xx += xi * xi
	}
	return xy, zy, xx
}

// Axpy computes y += a*x in place (4-way unrolled; elementwise, so the
// result is bitwise identical to the naive loop).
func Axpy(a float64, x, y []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4 := x[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		y4[0] += a * x4[0]
		y4[1] += a * x4[1]
		y4[2] += a * x4[2]
		y4[3] += a * x4[3]
	}
	for ; i < len(x); i++ {
		y[i] += a * x[i]
	}
}

// AxpyPair computes y += a*x and v += b*u in one sweep — the solver's fused
// iterand/residual update (x += α·p, r −= α·q). All four slices must have
// equal length; the updates are elementwise, so results are bitwise
// identical to two Axpy calls.
func AxpyPair(a float64, x, y []float64, b float64, u, v []float64) {
	for i := range x {
		y[i] += a * x[i]
		v[i] += b * u[i]
	}
}

// Axpby computes y = a*x + b*y in place.
func Axpby(a float64, x []float64, b float64, y []float64) {
	for i, xi := range x {
		y[i] = a*xi + b*y[i]
	}
}

// XpayInto computes dst = x + a*y. dst may alias x or y.
func XpayInto(dst, x []float64, a float64, y []float64) {
	for i := range dst {
		dst[i] = x[i] + a*y[i]
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Copy copies src into dst (lengths must match).
func Copy(dst, src []float64) {
	copy(dst, src)
}

// Clone returns a freshly allocated copy of x.
func Clone(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

// Zero sets all entries of x to zero.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets all entries of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Norm2Sq returns the squared Euclidean norm of x.
func Norm2Sq(x []float64) float64 {
	return Dot(x, x)
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Norm2Sq(x))
}

// NormInf returns the maximum absolute entry of x (0 for empty x).
func NormInf(x []float64) float64 {
	var m float64
	for _, xi := range x {
		if a := math.Abs(xi); a > m {
			m = a
		}
	}
	return m
}

// Sub computes dst = x - y.
func Sub(dst, x, y []float64) {
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// Add computes dst = x + y.
func Add(dst, x, y []float64) {
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// MaxAbsDiff returns max_i |x[i]-y[i]|, a convenient trajectory-comparison
// metric for reconstruction-exactness tests.
func MaxAbsDiff(x, y []float64) float64 {
	var m float64
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}

// Equalish reports whether x and y agree entrywise within absolute
// tolerance tol.
func Equalish(x, y []float64, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	return MaxAbsDiff(x, y) <= tol
}
