package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot = %g, want 12", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %g, want 0", got)
	}
}

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy: y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestAxpby(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, 4}
	Axpby(2, x, 3, y)
	if y[0] != 11 || y[1] != 16 {
		t.Fatalf("Axpby: got %v, want [11 16]", y)
	}
}

func TestXpayInto(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{10, 20}
	dst := make([]float64, 2)
	XpayInto(dst, x, 3, y)
	if dst[0] != 31 || dst[1] != 62 {
		t.Fatalf("XpayInto: got %v, want [31 62]", dst)
	}
	// Aliasing dst with y (the p-update pattern in PCG).
	XpayInto(y, x, 3, y)
	if y[0] != 31 || y[1] != 62 {
		t.Fatalf("XpayInto aliased: got %v, want [31 62]", y)
	}
}

func TestScaleZeroFillCopyClone(t *testing.T) {
	x := []float64{1, 2, 3}
	Scale(2, x)
	if x[1] != 4 {
		t.Fatalf("Scale: got %v", x)
	}
	c := Clone(x)
	c[0] = 99
	if x[0] == 99 {
		t.Fatal("Clone must not share storage")
	}
	Fill(x, 7)
	if x[2] != 7 {
		t.Fatalf("Fill: got %v", x)
	}
	Zero(x)
	if x[0] != 0 || x[1] != 0 || x[2] != 0 {
		t.Fatalf("Zero: got %v", x)
	}
	dst := make([]float64, 3)
	Copy(dst, c)
	if dst[1] != c[1] {
		t.Fatalf("Copy: got %v", dst)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Norm2(x); !almostEq(got, 5, 1e-15) {
		t.Fatalf("Norm2 = %g, want 5", got)
	}
	if got := Norm2Sq(x); got != 25 {
		t.Fatalf("Norm2Sq = %g, want 25", got)
	}
	if got := NormInf(x); got != 4 {
		t.Fatalf("NormInf = %g, want 4", got)
	}
	if got := NormInf(nil); got != 0 {
		t.Fatalf("NormInf(nil) = %g, want 0", got)
	}
}

func TestSubAddMaxAbsDiff(t *testing.T) {
	x := []float64{5, 7}
	y := []float64{1, 2}
	d := make([]float64, 2)
	Sub(d, x, y)
	if d[0] != 4 || d[1] != 5 {
		t.Fatalf("Sub: got %v", d)
	}
	Add(d, x, y)
	if d[0] != 6 || d[1] != 9 {
		t.Fatalf("Add: got %v", d)
	}
	if got := MaxAbsDiff(x, y); got != 5 {
		t.Fatalf("MaxAbsDiff = %g, want 5", got)
	}
}

func TestEqualish(t *testing.T) {
	if !Equalish([]float64{1, 2}, []float64{1, 2 + 1e-12}, 1e-10) {
		t.Fatal("Equalish should accept tiny differences")
	}
	if Equalish([]float64{1}, []float64{1, 2}, 1) {
		t.Fatal("Equalish must reject length mismatch")
	}
	if Equalish([]float64{1, 2}, []float64{1, 3}, 1e-10) {
		t.Fatal("Equalish must reject large differences")
	}
}

// Property: Dot is symmetric and bilinear against Axpy.
func TestDotPropertySymmetry(t *testing.T) {
	f := func(xs []float64) bool {
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				xs[i] = 1
			}
		}
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = float64(i%7) - 3
		}
		return almostEq(Dot(xs, ys), Dot(ys, xs), 1e-9*(1+math.Abs(Dot(xs, ys))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ‖x‖² = x·x ≥ 0 and Norm2 is absolutely homogeneous.
func TestNormProperties(t *testing.T) {
	f := func(xs []float64) bool {
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				xs[i] = 1
			}
		}
		n := Norm2(xs)
		if n < 0 {
			return false
		}
		scaled := Clone(xs)
		Scale(-2, scaled)
		return almostEq(Norm2(scaled), 2*n, 1e-9*(1+2*n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
