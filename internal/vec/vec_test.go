package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot = %g, want 12", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %g, want 0", got)
	}
}

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy: y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestAxpby(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, 4}
	Axpby(2, x, 3, y)
	if y[0] != 11 || y[1] != 16 {
		t.Fatalf("Axpby: got %v, want [11 16]", y)
	}
}

func TestXpayInto(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{10, 20}
	dst := make([]float64, 2)
	XpayInto(dst, x, 3, y)
	if dst[0] != 31 || dst[1] != 62 {
		t.Fatalf("XpayInto: got %v, want [31 62]", dst)
	}
	// Aliasing dst with y (the p-update pattern in PCG).
	XpayInto(y, x, 3, y)
	if y[0] != 31 || y[1] != 62 {
		t.Fatalf("XpayInto aliased: got %v, want [31 62]", y)
	}
}

func TestScaleZeroFillCopyClone(t *testing.T) {
	x := []float64{1, 2, 3}
	Scale(2, x)
	if x[1] != 4 {
		t.Fatalf("Scale: got %v", x)
	}
	c := Clone(x)
	c[0] = 99
	if x[0] == 99 {
		t.Fatal("Clone must not share storage")
	}
	Fill(x, 7)
	if x[2] != 7 {
		t.Fatalf("Fill: got %v", x)
	}
	Zero(x)
	if x[0] != 0 || x[1] != 0 || x[2] != 0 {
		t.Fatalf("Zero: got %v", x)
	}
	dst := make([]float64, 3)
	Copy(dst, c)
	if dst[1] != c[1] {
		t.Fatalf("Copy: got %v", dst)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Norm2(x); !almostEq(got, 5, 1e-15) {
		t.Fatalf("Norm2 = %g, want 5", got)
	}
	if got := Norm2Sq(x); got != 25 {
		t.Fatalf("Norm2Sq = %g, want 25", got)
	}
	if got := NormInf(x); got != 4 {
		t.Fatalf("NormInf = %g, want 4", got)
	}
	if got := NormInf(nil); got != 0 {
		t.Fatalf("NormInf(nil) = %g, want 0", got)
	}
}

func TestSubAddMaxAbsDiff(t *testing.T) {
	x := []float64{5, 7}
	y := []float64{1, 2}
	d := make([]float64, 2)
	Sub(d, x, y)
	if d[0] != 4 || d[1] != 5 {
		t.Fatalf("Sub: got %v", d)
	}
	Add(d, x, y)
	if d[0] != 6 || d[1] != 9 {
		t.Fatalf("Add: got %v", d)
	}
	if got := MaxAbsDiff(x, y); got != 5 {
		t.Fatalf("MaxAbsDiff = %g, want 5", got)
	}
}

func TestEqualish(t *testing.T) {
	if !Equalish([]float64{1, 2}, []float64{1, 2 + 1e-12}, 1e-10) {
		t.Fatal("Equalish should accept tiny differences")
	}
	if Equalish([]float64{1}, []float64{1, 2}, 1) {
		t.Fatal("Equalish must reject length mismatch")
	}
	if Equalish([]float64{1, 2}, []float64{1, 3}, 1e-10) {
		t.Fatal("Equalish must reject large differences")
	}
}

// Property: Dot is symmetric and bilinear against Axpy.
func TestDotPropertySymmetry(t *testing.T) {
	f := func(xs []float64) bool {
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				xs[i] = 1
			}
		}
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = float64(i%7) - 3
		}
		return almostEq(Dot(xs, ys), Dot(ys, xs), 1e-9*(1+math.Abs(Dot(xs, ys))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ‖x‖² = x·x ≥ 0 and Norm2 is absolutely homogeneous.
func TestNormProperties(t *testing.T) {
	f := func(xs []float64) bool {
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				xs[i] = 1
			}
		}
		n := Norm2(xs)
		if n < 0 {
			return false
		}
		scaled := Clone(xs)
		Scale(-2, scaled)
		return almostEq(Norm2(scaled), 2*n, 1e-9*(1+2*n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// referenceDot is the naive single-statement loop the unrolled kernels must
// reproduce bit for bit.
func referenceDot(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// TestFusedKernelsBitwiseIdentical pins the fused/unrolled kernels (Dot,
// Dot2, Dot3, Axpy, AxpyPair) to the naive loops with exact == comparisons
// across awkward lengths (remainder handling) and adversarial values where
// a reordered summation would differ in the last ulp.
func TestFusedKernelsBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 100, 1023} {
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		for i := 0; i < n; i++ {
			// Mixed magnitudes make float addition order-sensitive.
			x[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(16)-8))
			y[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(16)-8))
			z[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(16)-8))
		}
		if got, want := Dot(x, y), referenceDot(x, y); got != want {
			t.Fatalf("n=%d: Dot %v != naive %v", n, got, want)
		}
		xy, xx := Dot2(x, y)
		if xy != referenceDot(x, y) || xx != referenceDot(x, x) {
			t.Fatalf("n=%d: Dot2 (%v,%v) != naive (%v,%v)", n, xy, xx, referenceDot(x, y), referenceDot(x, x))
		}
		xy3, zy3, xx3 := Dot3(x, y, z)
		if xy3 != referenceDot(x, y) || zy3 != referenceDot(z, y) || xx3 != referenceDot(x, x) {
			t.Fatalf("n=%d: Dot3 mismatch", n)
		}

		a, b := 0.7381, -1.2941
		y1 := append([]float64(nil), y...)
		y2 := append([]float64(nil), y...)
		Axpy(a, x, y1)
		for i := range y2 {
			y2[i] += a * x[i]
		}
		for i := range y1 {
			if y1[i] != y2[i] {
				t.Fatalf("n=%d: Axpy[%d] %v != naive %v", n, i, y1[i], y2[i])
			}
		}

		p1 := append([]float64(nil), y...)
		v1 := append([]float64(nil), z...)
		p2 := append([]float64(nil), y...)
		v2 := append([]float64(nil), z...)
		AxpyPair(a, x, p1, b, x, v1)
		Axpy(a, x, p2)
		Axpy(b, x, v2)
		for i := range p1 {
			if p1[i] != p2[i] || v1[i] != v2[i] {
				t.Fatalf("n=%d: AxpyPair[%d] (%v,%v) != (%v,%v)", n, i, p1[i], v1[i], p2[i], v2[i])
			}
		}
	}
}
