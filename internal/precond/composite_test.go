package precond

import (
	"math/rand"
	"testing"

	"esrp/internal/matgen"
	"esrp/internal/vec"
)

func TestCompositeMatchesSegments(t *testing.T) {
	// A composite of the per-node preconditioners over [0,n) must act like
	// the node-local pieces applied independently.
	a := matgen.EmiliaLike(5, 5, 5, 3)
	n := a.Rows
	mid := n / 2
	p1, err := NewBlockJacobi(a, 0, mid, 10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewBlockJacobi(a, mid, n, 10)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewComposite([]Preconditioner{p1, p2}, []int{mid, n - mid})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Len() != n {
		t.Fatalf("Len = %d, want %d", comp.Len(), n)
	}
	if comp.CouplesAcrossNodes() {
		t.Fatal("composite of node-local parts must be node-local")
	}

	rng := rand.New(rand.NewSource(1))
	r := make([]float64, n)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	zc := make([]float64, n)
	comp.Apply(zc, r)
	zs := make([]float64, n)
	p1.Apply(zs[:mid], r[:mid])
	p2.Apply(zs[mid:], r[mid:])
	if d := vec.MaxAbsDiff(zc, zs); d != 0 {
		t.Fatalf("composite Apply differs from segments by %g", d)
	}

	// SolveRestricted must invert Apply segment-wise.
	back := make([]float64, n)
	comp.SolveRestricted(back, zc)
	if d := vec.MaxAbsDiff(back, r); d > 1e-9 {
		t.Fatalf("SolveRestricted(Apply(r)) off by %g", d)
	}

	if comp.ApplyFlops() != p1.ApplyFlops()+p2.ApplyFlops() {
		t.Fatal("ApplyFlops must sum the segments")
	}
	if comp.SolveRestrictedFlops() != p1.SolveRestrictedFlops()+p2.SolveRestrictedFlops() {
		t.Fatal("SolveRestrictedFlops must sum the segments")
	}
	if comp.Name() != "composite" {
		t.Fatalf("Name = %q", comp.Name())
	}
}

func TestCompositeMixedKinds(t *testing.T) {
	a := matgen.Poisson2D(10, 10)
	p1, err := NewIC0(a, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewBlockJacobi(a, 50, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewComposite([]Preconditioner{p1, p2}, []int{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, 100)
	for i := range r {
		r[i] = float64(i%7) - 3
	}
	z := make([]float64, 100)
	comp.Apply(z, r)
	back := make([]float64, 100)
	comp.SolveRestricted(back, z)
	if d := vec.MaxAbsDiff(back, r); d > 1e-8 {
		t.Fatalf("mixed composite inverse off by %g", d)
	}
}

func TestCompositeValidation(t *testing.T) {
	a := matgen.Poisson2D(4, 4)
	p1, _ := NewBlockJacobi(a, 0, 8, 10)
	if _, err := NewComposite([]Preconditioner{p1}, []int{8, 8}); err == nil {
		t.Error("mismatched parts/sizes must fail")
	}
	if _, err := NewComposite([]Preconditioner{p1}, []int{-1}); err == nil {
		t.Error("negative size must fail")
	}
	comp, err := NewComposite(nil, nil)
	if err != nil {
		t.Fatalf("empty composite: %v", err)
	}
	comp.Apply(nil, nil) // must not panic
	if comp.Len() != 0 {
		t.Fatalf("empty Len = %d", comp.Len())
	}
}
