package precond

import (
	"fmt"
	"math"

	"esrp/internal/sparse"
)

// IC0PC is a node-local zero-fill incomplete Cholesky preconditioner:
// A[Iloc,Iloc] ≈ L·Lᵀ with L restricted to the lower-triangular sparsity of
// the local diagonal block, and P = (L·Lᵀ)⁻¹ applied by forward/backward
// substitution.
//
// The paper's conclusions call for evaluating ESRP with "more appropriate
// preconditioners" than block Jacobi; IC(0) is the classic next step. It
// remains node-local (blocks never cross the partition), so the exact state
// reconstruction of Alg. 2 works unchanged: P[If, I\If] = 0 and
// SolveRestricted is a pair of sparse triangular multiplications,
// r = L·(Lᵀ·v).
//
// Factorization breakdown (a non-positive pivot, possible for general SPD
// matrices under zero fill) is handled with the standard Manteuffel-style
// diagonal shift: the local block is refactored as IC0(A + αI) with α
// doubling until the factorization succeeds.
type IC0PC struct {
	n int
	// Lower-triangular factor in CSR (row-major, diagonal last in each row).
	rowPtr []int
	colIdx []int
	val    []float64
	shift  float64 // diagonal shift α used (0 in the common case)
	flops  float64

	// runs is the band decomposition of the factor's sparsity: maximal row
	// ranges whose column pattern is one offset set shifted with the row
	// (diagonal last, offset 0). On stencil blocks the whole factor is a
	// handful of runs, and both substitution sweeps then walk offset
	// patterns instead of loading a column index per entry. nil when runs
	// are too short to pay (irregular blocks keep the generic CSR sweeps).
	// Either path performs identical arithmetic in identical order.
	runs []icRun
}

// icRun is one shifted-pattern row range [i0,i1) of the factor: entry k of
// row i sits at column i+off[k], with off[len-1] = 0 (the diagonal).
type icRun struct {
	i0, i1 int
	off    []int
}

// icMinRunAvg gates the band substitution: below this average run length the
// pattern bookkeeping costs more than the saved index loads.
const icMinRunAvg = 4

// buildRuns decomposes the factored pattern into shifted runs, keeping them
// only when long runs dominate.
func (p *IC0PC) buildRuns() {
	var runs []icRun
	for i := 0; i < p.n; {
		r0, r1 := p.rowPtr[i], p.rowPtr[i+1]
		off := make([]int, r1-r0)
		for k, t := 0, r0; t < r1; k, t = k+1, t+1 {
			off[k] = p.colIdx[t] - i
		}
		u := i + 1
		for u < p.n && p.sameShiftedRow(u, off) {
			u++
		}
		runs = append(runs, icRun{i0: i, i1: u, off: off})
		i = u
	}
	if p.n > 0 && float64(p.n) >= icMinRunAvg*float64(len(runs)) {
		p.runs = runs
	}
}

// sameShiftedRow reports whether factor row i's columns equal i+off entry
// for entry.
func (p *IC0PC) sameShiftedRow(i int, off []int) bool {
	r0, r1 := p.rowPtr[i], p.rowPtr[i+1]
	if r1-r0 != len(off) {
		return false
	}
	for k, t := 0, r0; t < r1; k, t = k+1, t+1 {
		if p.colIdx[t] != i+off[k] {
			return false
		}
	}
	return true
}

// NewIC0 builds the node-local IC(0) preconditioner for rows [lo,hi) of a.
func NewIC0(a *sparse.CSR, lo, hi int) (*IC0PC, error) {
	n := hi - lo
	p := &IC0PC{n: n}
	if n == 0 {
		p.rowPtr = []int{0}
		return p, nil
	}
	// Extract the lower triangle (local indices) of the diagonal block.
	var maxDiag float64
	p.rowPtr = make([]int, n+1)
	for i := lo; i < hi; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if j >= lo && j <= i {
				p.rowPtr[i-lo+1]++
				if j == i && vals[k] > maxDiag {
					maxDiag = vals[k]
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		p.rowPtr[i+1] += p.rowPtr[i]
	}
	nnz := p.rowPtr[n]
	p.colIdx = make([]int, nnz)
	base := make([]float64, nnz) // original block values (lower triangle)
	pos := append([]int(nil), p.rowPtr[:n]...)
	diagPos := make([]int, n)
	for i := lo; i < hi; i++ {
		cols, vals := a.Row(i)
		li := i - lo
		hasDiag := false
		for k, j := range cols {
			if j >= lo && j <= i {
				p.colIdx[pos[li]] = j - lo
				base[pos[li]] = vals[k]
				if j == i {
					diagPos[li] = pos[li]
					hasDiag = true
				}
				pos[li]++
			}
		}
		if !hasDiag {
			return nil, fmt.Errorf("precond: row %d has no diagonal entry", i)
		}
		if diagPos[li] != p.rowPtr[li+1]-1 {
			return nil, fmt.Errorf("precond: row %d diagonal not last in lower triangle", i)
		}
	}
	// Factor, shifting the diagonal on breakdown.
	p.val = make([]float64, nnz)
	shift := 0.0
	for attempt := 0; ; attempt++ {
		if err := p.factor(base, shift); err == nil {
			break
		}
		if attempt == 0 {
			shift = 1e-3 * maxDiag
		} else {
			shift *= 2
		}
		if attempt > 60 || !(shift > 0) {
			return nil, fmt.Errorf("precond: IC(0) breakdown persists up to shift %g", shift)
		}
	}
	p.shift = shift
	p.flops = 4 * float64(nnz) // forward + backward substitution
	p.buildRuns()
	return p, nil
}

// factor runs the zero-fill incomplete Cholesky on the stored pattern with
// the given diagonal shift, writing into p.val. It returns an error on a
// non-positive pivot.
func (p *IC0PC) factor(base []float64, shift float64) error {
	n := p.n
	for i := 0; i < n; i++ {
		r0, r1 := p.rowPtr[i], p.rowPtr[i+1]
		for t := r0; t < r1; t++ {
			j := p.colIdx[t]
			s := base[t]
			if j == i {
				s += shift
			}
			// s -= Σ_k L[i,k]·L[j,k] over shared k < j.
			ti, tj := r0, p.rowPtr[j]
			tiEnd, tjEnd := r1, p.rowPtr[j+1]-1 // exclude j's diagonal
			for ti < tiEnd && tj < tjEnd {
				ci, cj := p.colIdx[ti], p.colIdx[tj]
				switch {
				case ci < cj:
					ti++
				case cj < ci:
					tj++
				default:
					if ci >= j {
						ti, tj = tiEnd, tjEnd // done: only k < j contribute
						break
					}
					s -= p.val[ti] * p.val[tj]
					ti++
					tj++
				}
			}
			if j == i {
				if s <= 0 {
					return fmt.Errorf("precond: non-positive pivot %g at local row %d", s, i)
				}
				p.val[t] = math.Sqrt(s)
			} else {
				p.val[t] = s / p.val[p.rowPtr[j+1]-1]
			}
		}
	}
	return nil
}

// Name implements Preconditioner.
func (*IC0PC) Name() string { return "ic0" }

// Shift returns the diagonal shift applied to make the factorization
// succeed (0 when IC(0) succeeded unshifted).
func (p *IC0PC) Shift() float64 { return p.shift }

// Apply implements Preconditioner: z = (L·Lᵀ)⁻¹ r by forward substitution
// L·y = r followed by backward substitution Lᵀ·z = y. On stencil blocks both
// sweeps walk the factor's band runs (no per-entry column loads); the
// generic CSR sweeps remain for irregular patterns. Same operands, same
// order, bitwise-identical z either way.
func (p *IC0PC) Apply(z, r []float64) {
	if p.runs != nil {
		p.applyBand(z, r)
		return
	}
	n := p.n
	// Forward: y overwrites z.
	for i := 0; i < n; i++ {
		s := r[i]
		r0, r1 := p.rowPtr[i], p.rowPtr[i+1]
		for t := r0; t < r1-1; t++ {
			s -= p.val[t] * z[p.colIdx[t]]
		}
		z[i] = s / p.val[r1-1]
	}
	// Backward: traverse rows in reverse, scattering.
	for i := n - 1; i >= 0; i-- {
		r0, r1 := p.rowPtr[i], p.rowPtr[i+1]
		zi := z[i] / p.val[r1-1]
		z[i] = zi
		for t := r0; t < r1-1; t++ {
			z[p.colIdx[t]] -= p.val[t] * zi
		}
	}
}

// applyBand is Apply's substitution pair over the factor's band runs.
func (p *IC0PC) applyBand(z, r []float64) {
	for _, rn := range p.runs {
		w := len(rn.off)
		off := rn.off[:max(w-1, 0)] // off-diagonal offsets (diagonal is last)
		vi := p.rowPtr[rn.i0]
		for i := rn.i0; i < rn.i1; i++ {
			s := r[i]
			v := p.val[vi : vi+w-1]
			for k, o := range off {
				s -= v[k] * z[i+o]
			}
			z[i] = s / p.val[vi+w-1]
			vi += w
		}
	}
	for ri := len(p.runs) - 1; ri >= 0; ri-- {
		rn := p.runs[ri]
		w := len(rn.off)
		off := rn.off[:max(w-1, 0)]
		vi := p.rowPtr[rn.i1] - w
		for i := rn.i1 - 1; i >= rn.i0; i-- {
			zi := z[i] / p.val[vi+w-1]
			z[i] = zi
			v := p.val[vi : vi+w-1]
			for k, o := range off {
				z[i+o] -= v[k] * zi
			}
			vi -= w
		}
	}
}

// ApplyFlops implements Preconditioner.
func (p *IC0PC) ApplyFlops() float64 { return p.flops }

// SolveRestricted implements Preconditioner: P = (L·Lᵀ)⁻¹ on the local
// block, so solving P[Iloc,Iloc]·r = v is the multiplication r = L·(Lᵀ·v).
func (p *IC0PC) SolveRestricted(r, v []float64) {
	n := p.n
	// u = Lᵀ·v (gather transposed: u[i] = Σ_j L[j,i]·v[j] = column dot).
	u := make([]float64, n)
	for j := 0; j < n; j++ {
		r0, r1 := p.rowPtr[j], p.rowPtr[j+1]
		vj := v[j]
		for t := r0; t < r1; t++ {
			u[p.colIdx[t]] += p.val[t] * vj
		}
	}
	// r = L·u.
	for i := 0; i < n; i++ {
		s := 0.0
		r0, r1 := p.rowPtr[i], p.rowPtr[i+1]
		for t := r0; t < r1; t++ {
			s += p.val[t] * u[p.colIdx[t]]
		}
		r[i] = s
	}
}

// SolveRestrictedFlops implements Preconditioner.
func (p *IC0PC) SolveRestrictedFlops() float64 { return p.flops }

// CouplesAcrossNodes implements Preconditioner: the factorization is
// restricted to the node's diagonal block.
func (*IC0PC) CouplesAcrossNodes() bool { return false }
