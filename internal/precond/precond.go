// Package precond implements the preconditioners used by the paper's
// experiments. The solver applies the preconditioner as a linear operator
// z = P·r (P ≈ A⁻¹); the ESR reconstruction phase additionally needs the
// *inverse* action restricted to the failed index range (line 6 of Alg. 2:
// solve P[If,If]·r = v).
//
// The paper uses a block Jacobi preconditioner with non-overlapping,
// uniformly sized blocks of at most 10 rows, all rows of a block owned by a
// single node. Because blocks never cross node boundaries, P is block
// diagonal with respect to the partition, so P[If, I\If] = 0 and both Apply
// and SolveRestricted are node-local operations.
package precond

import (
	"fmt"

	"esrp/internal/dense"
	"esrp/internal/sparse"
)

// Preconditioner is the node-local preconditioner interface. All methods
// operate on the local index range [lo,hi) the instance was built for;
// slices have length hi-lo.
type Preconditioner interface {
	// Name identifies the preconditioner kind (for reports).
	Name() string
	// Apply computes z = P·r on the local range.
	Apply(z, r []float64)
	// ApplyFlops returns the modeled flop count of one Apply.
	ApplyFlops() float64
	// SolveRestricted solves P[Iloc,Iloc]·r = v for r on the local range.
	// For preconditioners representing an inverse action (like block
	// Jacobi), this is a forward multiplication by the original blocks.
	SolveRestricted(r, v []float64)
	// SolveRestrictedFlops returns the modeled flop count of one
	// SolveRestricted.
	SolveRestrictedFlops() float64
	// CouplesAcrossNodes reports whether P has nonzeros outside the node
	// diagonal blocks (then P[If, I\If] ≠ 0 and reconstruction would need a
	// halo of r; false for every implementation here).
	CouplesAcrossNodes() bool
}

// Kind selects a preconditioner implementation.
type Kind int

// Available preconditioner kinds. The zero value Default lets Config structs
// leave the field unset and get the paper's choice (block Jacobi); pass None
// explicitly for plain CG.
const (
	Default Kind = iota // unset: the solver substitutes BlockJacobi
	None                // identity (plain CG)
	Jacobi
	BlockJacobi
	IC0 // node-local zero-fill incomplete Cholesky (paper's future work)
)

// String returns the canonical name of the kind.
func (k Kind) String() string {
	switch k {
	case Default:
		return "default"
	case None:
		return "none"
	case Jacobi:
		return "jacobi"
	case BlockJacobi:
		return "block-jacobi"
	case IC0:
		return "ic0"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "none", "identity":
		return None, nil
	case "jacobi":
		return Jacobi, nil
	case "block-jacobi", "blockjacobi", "bj":
		return BlockJacobi, nil
	case "ic0", "icc", "ichol":
		return IC0, nil
	}
	return None, fmt.Errorf("precond: unknown kind %q", s)
}

// Build constructs the preconditioner of the given kind for the local row
// range [lo,hi) of matrix a. maxBlock bounds the block size for BlockJacobi
// (the paper uses 10).
func Build(kind Kind, a *sparse.CSR, lo, hi, maxBlock int) (Preconditioner, error) {
	switch kind {
	case None:
		return Identity{n: hi - lo}, nil
	case Jacobi:
		return NewJacobi(a, lo, hi)
	case Default, BlockJacobi:
		return NewBlockJacobi(a, lo, hi, maxBlock)
	case IC0:
		return NewIC0(a, lo, hi)
	default:
		return nil, fmt.Errorf("precond: unknown kind %d", int(kind))
	}
}

// Identity is the trivial preconditioner P = I (plain CG).
type Identity struct{ n int }

// NewIdentity returns the identity preconditioner for n local rows.
func NewIdentity(n int) Identity { return Identity{n: n} }

// Name implements Preconditioner.
func (Identity) Name() string { return "none" }

// Apply implements Preconditioner: z = r.
func (p Identity) Apply(z, r []float64) { copy(z, r) }

// ApplyFlops implements Preconditioner.
func (Identity) ApplyFlops() float64 { return 0 }

// SolveRestricted implements Preconditioner: r = v.
func (p Identity) SolveRestricted(r, v []float64) { copy(r, v) }

// SolveRestrictedFlops implements Preconditioner.
func (Identity) SolveRestrictedFlops() float64 { return 0 }

// CouplesAcrossNodes implements Preconditioner.
func (Identity) CouplesAcrossNodes() bool { return false }

// PointJacobi is the diagonal preconditioner P = diag(A)⁻¹.
type PointJacobi struct {
	invDiag []float64
	diag    []float64
}

// NewJacobi builds the point Jacobi preconditioner for rows [lo,hi) of a.
func NewJacobi(a *sparse.CSR, lo, hi int) (*PointJacobi, error) {
	n := hi - lo
	p := &PointJacobi{invDiag: make([]float64, n), diag: make([]float64, n)}
	for i := lo; i < hi; i++ {
		d := a.At(i, i)
		if d <= 0 {
			return nil, fmt.Errorf("precond: non-positive diagonal %g at row %d", d, i)
		}
		p.diag[i-lo] = d
		p.invDiag[i-lo] = 1 / d
	}
	return p, nil
}

// Name implements Preconditioner.
func (*PointJacobi) Name() string { return "jacobi" }

// Apply implements Preconditioner: z_i = r_i / A_ii.
func (p *PointJacobi) Apply(z, r []float64) {
	for i := range z {
		z[i] = r[i] * p.invDiag[i]
	}
}

// ApplyFlops implements Preconditioner.
func (p *PointJacobi) ApplyFlops() float64 { return float64(len(p.invDiag)) }

// SolveRestricted implements Preconditioner: P is diag(A)⁻¹, so solving
// P·r = v means r_i = A_ii·v_i.
func (p *PointJacobi) SolveRestricted(r, v []float64) {
	for i := range r {
		r[i] = v[i] * p.diag[i]
	}
}

// SolveRestrictedFlops implements Preconditioner.
func (p *PointJacobi) SolveRestrictedFlops() float64 { return float64(len(p.diag)) }

// CouplesAcrossNodes implements Preconditioner.
func (*PointJacobi) CouplesAcrossNodes() bool { return false }

// BlockJacobiPC applies P = blockdiag(B_1⁻¹, …, B_m⁻¹) where each B_b is a
// dense diagonal block of A, factored once by Cholesky at construction. The
// factors of all blocks live in one flat packed-triangle arena
// (dense.BlockCholesky), so the per-iteration Apply is a single batched
// backsolve sweep over contiguous memory instead of a pointer chase through
// per-block heap objects.
type BlockJacobiPC struct {
	offsets []int // local block boundaries, offsets[0]=0 … offsets[m]=n
	bc      dense.BlockCholesky
	flops   float64
}

// NewBlockJacobi builds the block Jacobi preconditioner for rows [lo,hi) of
// a, with uniformly sized non-overlapping blocks of at most maxBlock rows
// ("as few blocks as possible", per the paper's Section 5).
func NewBlockJacobi(a *sparse.CSR, lo, hi, maxBlock int) (*BlockJacobiPC, error) {
	if maxBlock <= 0 {
		return nil, fmt.Errorf("precond: maxBlock must be positive, got %d", maxBlock)
	}
	n := hi - lo
	p := &BlockJacobiPC{}
	if n == 0 {
		p.offsets = []int{0}
		return p, nil
	}
	nblocks := (n + maxBlock - 1) / maxBlock
	base, rem := n/nblocks, n%nblocks
	p.offsets = make([]int, nblocks+1)
	off := 0
	for b := 0; b < nblocks; b++ {
		p.offsets[b] = off
		off += base
		if b < rem {
			off++
		}
	}
	p.offsets[nblocks] = n
	for b := 0; b < nblocks; b++ {
		b0, b1 := lo+p.offsets[b], lo+p.offsets[b+1]
		bs := b1 - b0
		blk := dense.New(bs)
		for i := b0; i < b1; i++ {
			cols, vals := a.Row(i)
			for k, j := range cols {
				if j >= b0 && j < b1 {
					blk.Set(i-b0, j-b0, vals[k])
				}
			}
		}
		if err := p.bc.Append(blk); err != nil {
			return nil, fmt.Errorf("precond: block %d (rows %d..%d): %w", b, b0, b1, err)
		}
		p.flops += 2 * float64(bs*bs)
	}
	return p, nil
}

// Name implements Preconditioner.
func (*BlockJacobiPC) Name() string { return "block-jacobi" }

// NumBlocks returns the number of diagonal blocks.
func (p *BlockJacobiPC) NumBlocks() int { return p.bc.NumBlocks() }

// Apply implements Preconditioner: per block, z_b = B_b⁻¹ r_b — one batched
// sweep over the flat factor arena.
func (p *BlockJacobiPC) Apply(z, r []float64) {
	if n := p.offsets[len(p.offsets)-1]; n > 0 && &z[0] != &r[0] {
		copy(z[:n], r[:n])
	}
	nb := p.bc.NumBlocks()
	b := 0
	for ; b+1 < nb; b += 2 {
		p.bc.SolvePair(b, b+1, z[p.offsets[b]:p.offsets[b+1]], z[p.offsets[b+1]:p.offsets[b+2]])
	}
	for ; b < nb; b++ {
		p.bc.Solve(b, z[p.offsets[b]:p.offsets[b+1]])
	}
}

// ApplyFlops implements Preconditioner.
func (p *BlockJacobiPC) ApplyFlops() float64 { return p.flops }

// SolveRestricted implements Preconditioner. P's diagonal blocks are the
// *inverses* B_b⁻¹, so solving P[Iloc,Iloc]·r = v amounts to multiplying by
// the original blocks: r_b = B_b·v_b, reconstituted from the Cholesky factor.
func (p *BlockJacobiPC) SolveRestricted(r, v []float64) {
	for b := 0; b < p.bc.NumBlocks(); b++ {
		b0, b1 := p.offsets[b], p.offsets[b+1]
		p.bc.MulVec(b, r[b0:b1], v[b0:b1])
	}
}

// SolveRestrictedFlops implements Preconditioner.
func (p *BlockJacobiPC) SolveRestrictedFlops() float64 { return p.flops }

// CouplesAcrossNodes implements Preconditioner: blocks are node-local.
func (*BlockJacobiPC) CouplesAcrossNodes() bool { return false }
