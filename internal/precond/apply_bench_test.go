package precond

import (
	"testing"

	"esrp/internal/matgen"
)

// BenchmarkBlockJacobiApply measures the batched backsolve sweep on one
// node's share of the Emilia-analog hostbench case (256 rows, blocks ≤ 10).
func BenchmarkBlockJacobiApply(b *testing.B) {
	a := matgen.EmiliaLike(16, 16, 16, 923)
	p, err := NewBlockJacobi(a, 1024, 1280, 10)
	if err != nil {
		b.Fatal(err)
	}
	r := make([]float64, 256)
	z := make([]float64, 256)
	for i := range r {
		r[i] = float64(i%13) - 6
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(z, r)
	}
}
