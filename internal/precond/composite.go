package precond

import "fmt"

// Composite applies a sequence of node-local preconditioners to consecutive
// segments of a larger local range. It is used by the no-spare-node
// recovery (cf. [Pachajoa, Pacher, Gansterer 2019], ref. 22 of the paper):
// when a surviving node adopts the row range of failed nodes, it must keep
// applying the *identical* preconditioner operator the cluster used before
// the failure — the failed nodes' diagonal blocks, not one re-derived from
// the merged range — or the solver would leave the reference trajectory.
type Composite struct {
	segs  []compositeSeg
	total int
}

type compositeSeg struct {
	off, n int
	pc     Preconditioner
}

// NewComposite stitches parts together; sizes[i] is the local length of
// parts[i]. Segments are laid out consecutively in the given order.
func NewComposite(parts []Preconditioner, sizes []int) (*Composite, error) {
	if len(parts) != len(sizes) {
		return nil, fmt.Errorf("precond: %d parts but %d sizes", len(parts), len(sizes))
	}
	c := &Composite{}
	off := 0
	for i, p := range parts {
		if sizes[i] < 0 {
			return nil, fmt.Errorf("precond: negative segment size %d", sizes[i])
		}
		if p.CouplesAcrossNodes() {
			return nil, fmt.Errorf("precond: composite segments must be node-local")
		}
		c.segs = append(c.segs, compositeSeg{off: off, n: sizes[i], pc: p})
		off += sizes[i]
	}
	c.total = off
	return c, nil
}

// Len returns the total local length the composite covers.
func (c *Composite) Len() int { return c.total }

// Name implements Preconditioner.
func (c *Composite) Name() string { return "composite" }

// Apply implements Preconditioner segment-wise.
func (c *Composite) Apply(z, r []float64) {
	for _, s := range c.segs {
		s.pc.Apply(z[s.off:s.off+s.n], r[s.off:s.off+s.n])
	}
}

// ApplyFlops implements Preconditioner.
func (c *Composite) ApplyFlops() float64 {
	var f float64
	for _, s := range c.segs {
		f += s.pc.ApplyFlops()
	}
	return f
}

// SolveRestricted implements Preconditioner segment-wise.
func (c *Composite) SolveRestricted(r, v []float64) {
	for _, s := range c.segs {
		s.pc.SolveRestricted(r[s.off:s.off+s.n], v[s.off:s.off+s.n])
	}
}

// SolveRestrictedFlops implements Preconditioner.
func (c *Composite) SolveRestrictedFlops() float64 {
	var f float64
	for _, s := range c.segs {
		f += s.pc.SolveRestrictedFlops()
	}
	return f
}

// CouplesAcrossNodes implements Preconditioner: all segments are local.
func (c *Composite) CouplesAcrossNodes() bool { return false }
