package precond

import (
	"math"
	"testing"
	"testing/quick"

	"esrp/internal/matgen"
	"esrp/internal/sparse"
)

func TestKindStringAndParse(t *testing.T) {
	for _, k := range []Kind{None, Jacobi, BlockJacobi} {
		parsed, err := ParseKind(k.String())
		if err != nil {
			t.Fatal(err)
		}
		if parsed != k {
			t.Fatalf("parse(%q) = %v", k.String(), parsed)
		}
	}
	if _, err := ParseKind("nonsense"); err == nil {
		t.Fatal("unknown kind must error")
	}
	for _, alias := range []string{"identity", "bj", "blockjacobi"} {
		if _, err := ParseKind(alias); err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
	}
}

func TestIdentity(t *testing.T) {
	p := NewIdentity(3)
	r := []float64{1, 2, 3}
	z := make([]float64, 3)
	p.Apply(z, r)
	if z[1] != 2 {
		t.Fatal("identity Apply must copy")
	}
	p.SolveRestricted(z, r)
	if z[2] != 3 {
		t.Fatal("identity SolveRestricted must copy")
	}
	if p.ApplyFlops() != 0 || p.SolveRestrictedFlops() != 0 || p.CouplesAcrossNodes() {
		t.Fatal("identity metadata wrong")
	}
}

func TestJacobi(t *testing.T) {
	a := matgen.Poisson2D(3, 3) // diagonal 4 everywhere
	p, err := NewJacobi(a, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	r := []float64{4, 8, 12, 16}
	z := make([]float64, 4)
	p.Apply(z, r)
	for i := range z {
		if z[i] != r[i]/4 {
			t.Fatalf("Jacobi Apply[%d] = %g", i, z[i])
		}
	}
	// SolveRestricted inverts Apply.
	back := make([]float64, 4)
	p.SolveRestricted(back, z)
	for i := range back {
		if math.Abs(back[i]-r[i]) > 1e-14 {
			t.Fatalf("SolveRestricted∘Apply ≠ id at %d", i)
		}
	}
}

func TestJacobiRejectsNonPositiveDiagonal(t *testing.T) {
	b := sparse.NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(1, 1, -1)
	if _, err := NewJacobi(b.Build(), 0, 2); err == nil {
		t.Fatal("negative diagonal must be rejected")
	}
}

func TestBlockJacobiBlockLayout(t *testing.T) {
	a := matgen.Poisson2D(5, 5) // 25 rows
	p, err := NewBlockJacobi(a, 0, 25, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 25 rows, max block 10 → 3 uniform blocks of sizes 9,8,8.
	if p.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d, want 3", p.NumBlocks())
	}
	sizes := []int{p.offsets[1] - p.offsets[0], p.offsets[2] - p.offsets[1], p.offsets[3] - p.offsets[2]}
	if sizes[0] != 9 || sizes[1] != 8 || sizes[2] != 8 {
		t.Fatalf("block sizes %v, want [9 8 8]", sizes)
	}
}

func TestBlockJacobiApplySolveInverse(t *testing.T) {
	a := matgen.EmiliaLike(3, 3, 3, 1)
	lo, hi := 9, 21
	p, err := NewBlockJacobi(a, lo, hi, 5)
	if err != nil {
		t.Fatal(err)
	}
	n := hi - lo
	r := make([]float64, n)
	for i := range r {
		r[i] = float64(i) - 3.5
	}
	z := make([]float64, n)
	p.Apply(z, r)
	back := make([]float64, n)
	p.SolveRestricted(back, z)
	for i := range back {
		if math.Abs(back[i]-r[i]) > 1e-10*(1+math.Abs(r[i])) {
			t.Fatalf("SolveRestricted(Apply(r)) ≠ r at %d: %g vs %g", i, back[i], r[i])
		}
	}
	if p.ApplyFlops() <= 0 {
		t.Fatal("block Jacobi must report positive flops")
	}
	if p.CouplesAcrossNodes() {
		t.Fatal("block Jacobi is node-local")
	}
}

func TestBlockJacobiMatchesExactBlockSolve(t *testing.T) {
	// For a block size covering the whole local range, Apply must equal a
	// direct solve with the diagonal block.
	a := matgen.Poisson2D(2, 3) // 6 rows
	p, err := NewBlockJacobi(a, 0, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks() != 1 {
		t.Fatalf("want a single block, got %d", p.NumBlocks())
	}
	r := []float64{1, 0, 0, 0, 0, 0}
	z := make([]float64, 6)
	p.Apply(z, r)
	// Verify A·z = r on the block.
	az := make([]float64, 6)
	a.MulVec(az, z)
	for i := range az {
		if math.Abs(az[i]-r[i]) > 1e-12 {
			t.Fatalf("A·z ≠ r at %d: %g", i, az[i])
		}
	}
}

func TestBlockJacobiEmptyRange(t *testing.T) {
	a := matgen.Poisson2D(2, 2)
	p, err := NewBlockJacobi(a, 2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	p.Apply(nil, nil) // must not panic
	if p.NumBlocks() != 0 {
		t.Fatalf("empty range NumBlocks = %d", p.NumBlocks())
	}
}

func TestBlockJacobiRejectsBadBlockAndSPD(t *testing.T) {
	a := matgen.Poisson2D(2, 2)
	if _, err := NewBlockJacobi(a, 0, 4, 0); err == nil {
		t.Fatal("maxBlock 0 must be rejected")
	}
	b := sparse.NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(1, 1, -2)
	if _, err := NewBlockJacobi(b.Build(), 0, 2, 2); err == nil {
		t.Fatal("indefinite block must be rejected")
	}
}

func TestBuildFactory(t *testing.T) {
	a := matgen.Poisson2D(3, 3)
	for _, k := range []Kind{None, Jacobi, BlockJacobi} {
		p, err := Build(k, a, 0, 9, 10)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if p.Name() != k.String() {
			t.Fatalf("Name %q != kind %q", p.Name(), k.String())
		}
	}
	if _, err := Build(Kind(99), a, 0, 9, 10); err == nil {
		t.Fatal("unknown kind must error")
	}
}

// Property: for random banded SPD matrices and random local ranges,
// SolveRestricted is the exact inverse of Apply.
func TestApplySolveInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 20 + int(seed%13+13)%13
		a := matgen.BandedSPD(n, 3, seed)
		lo := int(seed%5+5) % 5
		hi := n - lo
		for _, k := range []Kind{Jacobi, BlockJacobi} {
			p, err := Build(k, a, lo, hi, 4)
			if err != nil {
				return false
			}
			m := hi - lo
			r := make([]float64, m)
			for i := range r {
				r[i] = math.Sin(float64(i) + float64(seed))
			}
			z := make([]float64, m)
			back := make([]float64, m)
			p.Apply(z, r)
			p.SolveRestricted(back, z)
			for i := range back {
				if math.Abs(back[i]-r[i]) > 1e-8*(1+math.Abs(r[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
