package precond

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"esrp/internal/matgen"
	"esrp/internal/sparse"
	"esrp/internal/vec"
)

func TestIC0ExactOnPoisson(t *testing.T) {
	// For a tridiagonal-within-block pattern with no fill, IC(0) can be
	// inexact; but for any SPD block it must produce an SPD operator whose
	// Apply and SolveRestricted are mutual inverses.
	a := matgen.Poisson2D(12, 12)
	p, err := NewIC0(a, 0, a.Rows)
	if err != nil {
		t.Fatalf("NewIC0: %v", err)
	}
	if p.Name() != "ic0" {
		t.Fatalf("name = %q", p.Name())
	}
	if p.CouplesAcrossNodes() {
		t.Fatal("IC0 must be node-local")
	}
	checkApplyInverse(t, p, a.Rows, 1e-10)
}

func TestIC0ExactForDiagonal(t *testing.T) {
	// A diagonal matrix factors exactly: P = A⁻¹.
	b := sparse.NewBuilder(5, 5)
	d := []float64{4, 9, 16, 25, 36}
	for i, v := range d {
		b.Add(i, i, v)
	}
	a := b.Build()
	p, err := NewIC0(a, 0, 5)
	if err != nil {
		t.Fatalf("NewIC0: %v", err)
	}
	r := []float64{1, 2, 3, 4, 5}
	z := make([]float64, 5)
	p.Apply(z, r)
	for i := range z {
		if math.Abs(z[i]-r[i]/d[i]) > 1e-14 {
			t.Fatalf("z[%d] = %g, want %g", i, z[i], r[i]/d[i])
		}
	}
	if p.Shift() != 0 {
		t.Fatalf("diagonal matrix should not need a shift, got %g", p.Shift())
	}
}

func TestIC0ExactWhenPatternComplete(t *testing.T) {
	// When the lower-triangular pattern equals the exact Cholesky factor's
	// pattern (e.g. a dense-banded SPD block with full fill inside the
	// band... simplest: a dense small block), IC(0) IS Cholesky, so
	// z = A⁻¹·r exactly.
	rng := rand.New(rand.NewSource(5))
	n := 8
	dense := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64()
			dense[i*n+j] = v
			dense[j*n+i] = v
		}
	}
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				s += math.Abs(dense[i*n+j])
			}
		}
		dense[i*n+i] = s + 1
	}
	a := sparse.FromDense(n, n, dense, 0)
	p, err := NewIC0(a, 0, n)
	if err != nil {
		t.Fatalf("NewIC0: %v", err)
	}
	// Check A·(P·r) = r.
	r := make([]float64, n)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	z := make([]float64, n)
	p.Apply(z, r)
	az := make([]float64, n)
	a.MulVec(az, z)
	if d := vec.MaxAbsDiff(az, r); d > 1e-10 {
		t.Fatalf("dense IC0 should invert exactly; A·P·r off by %g", d)
	}
}

// checkApplyInverse verifies SolveRestricted(Apply(r)) == r: the two methods
// must be mutual inverses for the reconstruction algebra of Alg. 2 to hold.
func checkApplyInverse(t *testing.T, p Preconditioner, n int, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	r := make([]float64, n)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	z := make([]float64, n)
	p.Apply(z, r)
	back := make([]float64, n)
	p.SolveRestricted(back, z)
	if d := vec.MaxAbsDiff(back, r); d > tol {
		t.Fatalf("SolveRestricted(Apply(r)) deviates from r by %g (tol %g)", d, tol)
	}
}

func TestIC0ApplyInverseProperty(t *testing.T) {
	// Property: for random banded SPD matrices and random local ranges that
	// mimic node blocks, Apply and SolveRestricted invert each other.
	f := func(seed int64, nRaw, bwRaw uint8) bool {
		n := 20 + int(nRaw)%60
		bw := 1 + int(bwRaw)%6
		a := matgen.BandedSPD(n, bw, seed)
		lo, hi := n/4, n/4+n/2
		p, err := NewIC0(a, lo, hi)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 1))
		m := hi - lo
		r := make([]float64, m)
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		z := make([]float64, m)
		p.Apply(z, r)
		back := make([]float64, m)
		p.SolveRestricted(back, z)
		return vec.MaxAbsDiff(back, r) < 1e-8*(1+vec.NormInf(r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIC0ReducesIterationsVsBlockJacobi(t *testing.T) {
	// IC(0) over the whole local block uses strictly more coupling than
	// 10-row block Jacobi, so PCG preconditioned with it must converge in
	// fewer iterations. Measured here with a direct power-style check: the
	// preconditioned operator's effectiveness is observed through an actual
	// sequential PCG in the core tests; at the precond level we check SPD
	// sanity of Apply via positivity of rᵀ·P·r on random vectors.
	a := matgen.EmiliaLike(6, 6, 6, 7)
	p, err := NewIC0(a, 0, a.Rows)
	if err != nil {
		t.Fatalf("NewIC0: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		r := make([]float64, a.Rows)
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		z := make([]float64, a.Rows)
		p.Apply(z, r)
		if dot := vec.Dot(r, z); dot <= 0 {
			t.Fatalf("trial %d: rᵀ·P·r = %g, P not positive definite", trial, dot)
		}
	}
}

func TestIC0BreakdownShift(t *testing.T) {
	// A matrix that is SPD but whose zero-fill factorization breaks down:
	// classic example needs indefinite-ish fill; force the path by building
	// a barely-SPD arrowhead matrix where dropping fill produces a negative
	// pivot.
	n := 6
	b := sparse.NewBuilder(n, n)
	for j := 1; j < n; j++ {
		b.AddSym(0, j, 1.0)
	}
	for i := 0; i < n; i++ {
		if i == 0 {
			b.Add(0, 0, float64(n)-1+0.5)
		} else {
			b.Add(i, i, 1.01)
		}
	}
	a := b.Build()
	p, err := NewIC0(a, 0, n)
	if err != nil {
		// Breakdown beyond shifting is acceptable only if the matrix is not
		// SPD; here it is, so any error is a failure.
		t.Fatalf("NewIC0: %v", err)
	}
	// Whether or not a shift was needed, the operator must be usable.
	checkApplyInverse(t, p, n, 1e-8)
}

func TestIC0EmptyRange(t *testing.T) {
	a := matgen.Poisson2D(4, 4)
	p, err := NewIC0(a, 8, 8)
	if err != nil {
		t.Fatalf("NewIC0 on empty range: %v", err)
	}
	p.Apply(nil, nil)
	p.SolveRestricted(nil, nil)
}

func TestIC0BuildAndParse(t *testing.T) {
	a := matgen.Poisson2D(6, 6)
	p, err := Build(IC0, a, 0, 36, 10)
	if err != nil {
		t.Fatalf("Build(IC0): %v", err)
	}
	if p.Name() != "ic0" {
		t.Fatalf("name = %q", p.Name())
	}
	k, err := ParseKind("ic0")
	if err != nil || k != IC0 {
		t.Fatalf("ParseKind(ic0) = %v, %v", k, err)
	}
	if IC0.String() != "ic0" {
		t.Fatalf("String() = %q", IC0.String())
	}
}

// TestIC0BandApplyBitwise pins the band substitution sweeps to the generic
// CSR sweeps bit for bit: on a stencil block the factor decomposes into long
// shifted runs (the band path), and forcing runs off must reproduce the
// exact same z.
func TestIC0BandApplyBitwise(t *testing.T) {
	a := matgen.Poisson3D(5, 5, 12)
	p, err := NewIC0(a, 60, 240)
	if err != nil {
		t.Fatal(err)
	}
	if p.runs == nil {
		t.Fatal("stencil factor did not take the band substitution path")
	}
	rng := rand.New(rand.NewSource(11))
	r := make([]float64, p.n)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	band := make([]float64, p.n)
	p.Apply(band, r)
	generic := make([]float64, p.n)
	runs := p.runs
	p.runs = nil
	p.Apply(generic, r)
	p.runs = runs
	for i := range band {
		if math.Float64bits(band[i]) != math.Float64bits(generic[i]) {
			t.Fatalf("z[%d]: band %x != generic %x", i,
				math.Float64bits(band[i]), math.Float64bits(generic[i]))
		}
	}
}

// TestIC0IrregularSkipsBandRuns: a random-pattern factor must keep the
// generic sweeps (short runs would cost more than they save).
func TestIC0IrregularSkipsBandRuns(t *testing.T) {
	a := matgen.BandedSPD(120, 9, 3)
	p, err := NewIC0(a, 0, 120)
	if err != nil {
		t.Fatal(err)
	}
	if p.runs != nil {
		t.Fatalf("random banded factor took the band path (%d runs over %d rows)", len(p.runs), p.n)
	}
}
