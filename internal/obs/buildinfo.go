package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the binary that produced a measurement, so perf
// artifacts (traces, BENCH_*.json rows, metric snapshots) stay
// attributable to a toolchain and source revision.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"vcs_revision,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"` // dirty working tree at build
}

// CurrentBuild reads the running binary's build metadata: the Go runtime
// version always, and the VCS revision when the binary was built inside a
// checkout (debug.ReadBuildInfo exposes vcs.* settings for module builds;
// plain `go test` binaries usually carry none, leaving Revision empty).
func CurrentBuild() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				bi.Revision = s.Value
			case "vcs.modified":
				bi.Modified = s.Value == "true"
			}
		}
	}
	return bi
}
