package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestKindTables(t *testing.T) {
	cats := map[string]bool{"compute": true, "comm": true, "resilience": true}
	for k := Kind(0); k < kindCount; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
		if !cats[k.Category()] {
			t.Errorf("kind %v has unknown category %q", k, k.Category())
		}
	}
	if Kind(200).String() != "unknown" || Kind(200).Category() != "unknown" {
		t.Error("out-of-range kind must map to unknown")
	}
	if KindRecovery.Leaf() {
		t.Error("the recovery envelope must not count as a leaf")
	}
	if !KindVec.Leaf() || !KindAllreduce.Leaf() {
		t.Error("ordinary kinds must be leaves")
	}
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	rk := rec.Rank(3) // nil recorder: nil rank
	if rk != nil {
		t.Fatal("nil Recorder.Rank must be nil")
	}
	// All recording methods must be no-ops on a nil receiver.
	rk.SetIter(5)
	rk.SetPhase(PhaseRecovery)
	rk.Span(KindVec, 0, 1)
	rk.Envelope(2, 0, 1)
	rk.Point(0, 0, 1e-3, 0.5, 100, 2)

	var opts *Options
	if opts.Enabled() {
		t.Error("nil Options must report disabled")
	}
	if (&Options{}).Enabled() {
		t.Error("zero Options must report disabled")
	}
	if !(&Options{Trace: true}).Enabled() || !(&Options{Series: true}).Enabled() {
		t.Error("set Options must report enabled")
	}
}

func TestSpanCoalescing(t *testing.T) {
	rec := NewRecorder(Options{Trace: true}, 1)
	rk := rec.Rank(0)
	rk.SetIter(7)
	rk.Span(KindVec, 0, 1)
	rk.Span(KindVec, 1, 2)     // abuts with same attribution: coalesce
	rk.Span(KindVec, 2, 2)     // zero-length: dropped
	rk.Span(KindPrecond, 2, 3) // different kind: new span
	rk.Span(KindVec, 4, 5)     // gap: new span
	rk.SetIter(8)
	rk.Span(KindVec, 5, 6) // abuts but different iter: new span

	tr := rec.Build(6)
	spans := tr.Ranks[0]
	want := []Span{
		{Kind: KindVec, Iter: 7, Start: 0, End: 2},
		{Kind: KindPrecond, Iter: 7, Start: 2, End: 3},
		{Kind: KindVec, Iter: 7, Start: 4, End: 5},
		{Kind: KindVec, Iter: 8, Start: 5, End: 6},
	}
	if len(spans) != len(want) {
		t.Fatalf("got %d spans, want %d: %+v", len(spans), len(want), spans)
	}
	for i, s := range spans {
		if s != want[i] {
			t.Errorf("span %d: got %+v, want %+v", i, s, want[i])
		}
	}
}

func TestSeriesOnlyRankZero(t *testing.T) {
	rec := NewRecorder(Options{Series: true}, 3)
	for g := 0; g < 3; g++ {
		rec.Rank(g).Point(0, 0, 1e-2, float64(g), 10, 1)
	}
	tr := rec.Build(1)
	if len(tr.Series) != 1 || tr.Series[0].Clock != 0 {
		t.Fatalf("series must hold rank 0's point only, got %+v", tr.Series)
	}
	if len(tr.Ranks[0]) != 0 {
		t.Error("series-only options must not record spans")
	}
}

func TestMarkWasted(t *testing.T) {
	rec := NewRecorder(Options{Series: true}, 1)
	rk := rec.Rank(0)
	// Iterations 0,1,2 then a rollback to 1: steps at iters 1 and 2 before
	// the rollback are re-run, so they are wasted.
	for step, iter := range []int{0, 1, 2, 1, 2, 3} {
		rk.Point(step, iter, 1e-3, float64(step), 0, 0)
	}
	tr := rec.Build(6)
	want := []bool{false, true, true, false, false, false}
	for i, p := range tr.Series {
		if p.Wasted != want[i] {
			t.Errorf("point %d (iter %d): wasted=%v, want %v", i, p.Iter, p.Wasted, want[i])
		}
	}
}

func TestRecoveryStatsAndCoverage(t *testing.T) {
	rec := NewRecorder(Options{Trace: true}, 2)
	r0, r1 := rec.Rank(0), rec.Rank(1)
	r0.Span(KindVec, 0, 6)
	r0.Envelope(10, 6, 9)
	r0.Span(KindRecoverGather, 6, 9)
	r0.Span(KindVec, 9, 10)
	r1.Span(KindVec, 0, 4)
	r1.Envelope(10, 6, 8)

	tr := rec.Build(10)
	stats := tr.RecoveryStats()
	if len(stats) != 1 {
		t.Fatalf("got %d recovery stats, want 1", len(stats))
	}
	if st := stats[0]; st.Iter != 10 || st.Time != 3 || st.Ranks != 2 {
		t.Errorf("stat = %+v, want Iter 10, Time 3, Ranks 2", st)
	}

	rank, frac := tr.Coverage()
	if rank != 0 {
		t.Errorf("critical rank = %d, want 0", rank)
	}
	if frac != 1.0 { // rank 0's leaves cover [0,10) exactly
		t.Errorf("coverage = %v, want 1.0", frac)
	}
}

func TestWriteChromeDeterministicAndValid(t *testing.T) {
	build := func() *bytes.Buffer {
		rec := NewRecorder(Options{Trace: true, Series: true}, 2)
		rk := rec.Rank(0)
		rk.SetIter(0)
		rk.Span(KindVec, 0, 1)
		rk.Span(KindAllreduce, 1, 2)
		rk.Point(0, 0, 1e-3, 2, 64, 1)
		rk.Envelope(0, 2, 3)
		rec.Rank(1).Span(KindPrecond, 0, 2)
		tr := rec.Build(3)
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	a, b := build(), build()
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteChrome is not byte-deterministic for identical traces")
	}
	if err := ValidateChromeTrace(a.Bytes()); err != nil {
		t.Fatalf("emitted trace fails validation: %v", err)
	}
	for _, name := range []string{"vec", "allreduce", "precond", "recovery", "relres", "thread_name"} {
		if !strings.Contains(a.String(), `"`+name+`"`) {
			t.Errorf("trace JSON lacks %q event", name)
		}
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	bad := []string{
		`not json`,
		`{"traceEvents":[]}`,
		`{"traceEvents":[{"ph":"X","ts":0,"dur":1,"tid":0}]}`,     // no name
		`{"traceEvents":[{"name":"x","ph":"Z"}]}`,                 // unknown phase
		`{"traceEvents":[{"name":"x","ph":"X","dur":1,"tid":0}]}`, // no ts
		`{"traceEvents":[{"name":"x","ph":"X","ts":-1,"dur":1}]}`, // negative ts
		`{"traceEvents":[{"name":"bogus_meta","ph":"M"}]}`,        // unknown metadata
		`{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1}]}`,  // no tid
		`{"traceEvents":[{"name":"relres","ph":"C"}]}`,            // counter without ts
	}
	for _, s := range bad {
		if err := ValidateChromeTrace([]byte(s)); err == nil {
			t.Errorf("validator accepted %s", s)
		}
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	rec := NewRecorder(Options{Series: true}, 1)
	rk := rec.Rank(0)
	rk.Point(0, 0, 1e-1, 1.0, 100, 2)
	rk.Point(1, 1, 1e-2, 2.5, 250, 5)
	tr := rec.Build(2.5)
	var buf bytes.Buffer
	if err := tr.WriteSeriesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d CSV lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if lines[0] != "step,iter,relres,clock,clock_delta,bytes,bytes_delta,msgs,msgs_delta,wasted" {
		t.Errorf("bad header: %s", lines[0])
	}
	if lines[2] != "1,1,0.01,2.5,1.5,250,150,5,3,0" {
		t.Errorf("bad delta row: %s", lines[2])
	}
}

func TestTotals(t *testing.T) {
	rec := NewRecorder(Options{Trace: true}, 2)
	rec.Rank(0).Span(KindVec, 0, 2)
	rec.Rank(1).Span(KindVec, 0, 1)
	rec.Rank(1).Span(KindSpMV, 1, 4)
	tr := rec.Build(4)
	tot := tr.Totals()
	if tot[KindVec] != 3 || tot[KindSpMV] != 3 {
		t.Errorf("totals = %v, want vec 3, spmv 3", tot)
	}
}

func TestCurrentBuild(t *testing.T) {
	b := CurrentBuild()
	if b.GoVersion == "" {
		t.Error("CurrentBuild must report the Go version")
	}
}
