package obs

import (
	"encoding/json"
	"io"
)

// HostTrace is a wall-clock execution trace of the *host* machine — the
// counterpart of Trace, whose timelines run on the simulated LogGP clock.
// internal/hostobs builds one from a campaign recorder: one thread per
// host worker, spans for solved cells and steals. It serializes through
// the same trace_event writer machinery as Trace, so a simulated-clock
// trace and the wall-clock trace of the same campaign open side by side
// in Perfetto and pass the same ValidateChromeTrace check.
type HostTrace struct {
	Process     string // process_name shown in the viewer
	WallSeconds float64
	Build       BuildInfo
	Threads     []HostThread
}

// HostThread is one host worker's timeline.
type HostThread struct {
	Name  string
	Spans []HostSpan
}

// HostSpan is one wall-clock interval. Start/End are seconds from the
// trace origin; Iter and Phase land in the event args (Iter carries the
// cell index for cell spans and the cells moved for steal spans).
type HostSpan struct {
	Name  string
	Cat   string
	Start float64
	End   float64
	Iter  int
	Phase string
}

// WriteChrome emits the host trace as Chrome trace_event JSON in the same
// object form as Trace.WriteChrome. Byte-deterministic for a given trace.
func (t *HostTrace) WriteChrome(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.puts(`{"displayTimeUnit":"ms","otherData":`)
	meta, err := json.Marshal(struct {
		WallSeconds float64 `json:"wall_seconds"`
		Workers     int     `json:"workers"`
		GoVersion   string  `json:"go_version"`
		Revision    string  `json:"vcs_revision,omitempty"`
	}{t.WallSeconds, len(t.Threads), t.Build.GoVersion, t.Build.Revision})
	if err != nil {
		return err
	}
	bw.put(meta)
	bw.puts(`,"traceEvents":[`)

	first := true
	emit := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			bw.err = err
			return
		}
		if !first {
			bw.puts(",\n")
		} else {
			bw.puts("\n")
			first = false
		}
		bw.put(b)
	}

	emit(chromeMeta{Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: chromeMetaArgs{Name: t.Process}})
	for tid, th := range t.Threads {
		emit(chromeMeta{Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: chromeMetaArgs{Name: th.Name}})
	}
	for tid, th := range t.Threads {
		for _, s := range th.Spans {
			emit(chromeSpan{
				Name: s.Name,
				Cat:  s.Cat,
				Ph:   "X",
				Ts:   s.Start * usPerSec,
				Dur:  (s.End - s.Start) * usPerSec,
				Pid:  0,
				Tid:  tid,
				Args: chromeArgs{Iter: s.Iter, Phase: s.Phase},
			})
		}
	}
	bw.puts("\n]}\n")
	return bw.err
}
