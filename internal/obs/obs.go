// Package obs is the solver's observability substrate: per-rank span
// timelines and per-iteration metric series recorded on the *simulated*
// LogGP clock (internal/cluster), not the host clock. A span is a
// half-open interval [Start, End) of one rank's simulated time attributed
// to one activity kind — a compute phase, a communication slot, or a
// resilience action — so the trace explains where the modeled runtime of
// a solve went, iteration by iteration and failure by failure.
//
// The layer is zero-overhead when disabled: every hot-path entry point is
// a method on *Rank that nil-checks its receiver, and a solve without a
// Recorder carries nil Ranks everywhere. With recording enabled the data
// model stays deterministic: each rank's buffer is written only by that
// rank's goroutine, all timestamps come from the deterministic simulated
// clock, and export walks ranks in ascending order — the same seed and
// configuration therefore produce byte-identical trace files.
package obs

// Kind identifies the activity a span measures.
type Kind uint8

// Span kinds. All kinds except KindRecovery are "leaf" kinds: their spans
// are disjoint on a rank's timeline and sum to (almost all of) the rank's
// simulated clock. KindRecovery is an envelope — one span per handled
// failure event enclosing the detection, gather, reconstruction and
// restore leaves — and is excluded from coverage sums.
const (
	// KindVec covers fused vector kernels and local dot-product sweeps.
	KindVec Kind = iota
	// KindPrecond covers preconditioner applications.
	KindPrecond
	// KindSpMV covers the whole local sparse product when the halo
	// exchange is blocking (no interior/boundary split).
	KindSpMV
	// KindSpMVInterior covers the interior-rows product overlapping the
	// in-flight halo exchange.
	KindSpMVInterior
	// KindSpMVBoundary covers the boundary-rows product after the halo
	// arrived.
	KindSpMVBoundary
	// KindHaloPost covers posting the halo exchange (send overheads).
	KindHaloPost
	// KindHaloWait covers waiting for the in-flight halo at Finish.
	KindHaloWait
	// KindAllreduce covers allreduce/barrier collectives.
	KindAllreduce
	// KindBcast covers broadcasts.
	KindBcast
	// KindGather covers gathers.
	KindGather
	// KindCheckpoint covers checkpoint shipment: IMCR/pipelined buddy
	// exchanges, including the re-ship after a recovery.
	KindCheckpoint
	// KindRecoverGather covers post-failure state retrieval: redundant-copy
	// and iterand-halo gathers (ESR/ESRP) or checkpoint restores (IMCR).
	KindRecoverGather
	// KindReconstruct covers the local reconstruction arithmetic of
	// Alg. 2 (lines 4-7) on replacement nodes.
	KindReconstruct
	// KindInnerSolve covers the compute of the inner-system PCG
	// (Alg. 2 line 8); its collectives and halo traffic appear as the
	// usual communication kinds within the recovery phase.
	KindInnerSolve
	// KindDetect covers the modeled failure-detection charge
	// (core.Config.DetectionTime).
	KindDetect
	// KindRecovery is the per-failure-event envelope span (not a leaf).
	KindRecovery

	kindCount
)

var kindNames = [kindCount]string{
	"vec", "precond", "spmv", "spmv_interior", "spmv_boundary",
	"halo_post", "halo_wait", "allreduce", "bcast", "gather",
	"checkpoint", "recover_gather", "reconstruct", "inner_solve",
	"detect", "recovery",
}

var kindCats = [kindCount]string{
	"compute", "compute", "compute", "compute", "compute",
	"comm", "comm", "comm", "comm", "comm",
	"resilience", "resilience", "compute", "compute",
	"resilience", "resilience",
}

// String returns the span name used in trace exports.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Category returns the trace category ("compute", "comm", "resilience").
func (k Kind) Category() string {
	if int(k) < len(kindCats) {
		return kindCats[k]
	}
	return "unknown"
}

// Leaf reports whether spans of this kind count toward timeline coverage
// (everything except the KindRecovery envelope).
func (k Kind) Leaf() bool { return k != KindRecovery }

// Phase tags a span with the solver's coarse mode at record time.
type Phase uint8

// Phases.
const (
	// PhaseSteady is normal iteration (checkpoint writes included — they
	// carry their own kind).
	PhaseSteady Phase = iota
	// PhaseRecovery spans the handling of one failure event, from
	// detection to the restored scalars.
	PhaseRecovery
)

// String returns the phase name used in trace exports.
func (p Phase) String() string {
	if p == PhaseRecovery {
		return "recovery"
	}
	return "steady"
}

// Span is one attributed interval of a rank's simulated timeline.
type Span struct {
	Kind  Kind
	Phase Phase
	Iter  int // solver iteration the span belongs to (-1 = outside the loop)
	Start float64
	End   float64
}

// Dur returns the span length in simulated seconds.
func (s Span) Dur() float64 { return s.End - s.Start }

// IterPoint is one sample of the per-iteration metric series, recorded by
// rank 0 at the end of each productive loop iteration. Clock, Bytes and
// Msgs are cumulative (rank 0's own counters — deterministic, unlike the
// machine-wide totals mid-run); deltas are derived at export. Wasted is
// filled when the trace is built: a point is wasted when a later rollback
// re-ran its iteration.
type IterPoint struct {
	Step   int     `json:"step"`   // loop step index (counts rolled-back work)
	Iter   int     `json:"iter"`   // trajectory iteration the step completed
	RelRes float64 `json:"relres"` // relative recurrence residual
	Clock  float64 `json:"clock"`  // rank 0 simulated clock, cumulative seconds
	Bytes  int64   `json:"bytes"`  // rank 0 payload bytes sent, cumulative
	Msgs   int64   `json:"msgs"`   // rank 0 messages sent, cumulative
	Wasted bool    `json:"wasted"` // discarded by a later rollback
}

// Options selects what a Recorder captures.
type Options struct {
	// Trace records per-rank span timelines.
	Trace bool
	// Series records the per-iteration metric series on rank 0.
	Series bool
}

// enabled reports whether the options ask for any recording at all.
func (o Options) enabled() bool { return o.Trace || o.Series }

// Enabled reports whether o asks for any recording (nil-safe).
func (o *Options) Enabled() bool { return o != nil && o.enabled() }

// Recorder owns the per-rank recording buffers of one solve. Each rank's
// buffer is handed to that rank's goroutine (Rank) and written only
// there; Build runs after the solve, single-threaded.
type Recorder struct {
	opts  Options
	ranks []*Rank
}

// NewRecorder returns a recorder for an n-node solve.
func NewRecorder(opts Options, n int) *Recorder {
	rec := &Recorder{opts: opts, ranks: make([]*Rank, n)}
	for g := range rec.ranks {
		rec.ranks[g] = &Rank{
			rank:   g,
			iter:   -1,
			spans:  opts.Trace,
			series: opts.Series && g == 0,
		}
	}
	return rec
}

// Rank returns global rank g's recording buffer. Nil-safe: a nil Recorder
// yields a nil *Rank, whose methods are all no-ops — the disabled path.
func (rec *Recorder) Rank(g int) *Rank {
	if rec == nil {
		return nil
	}
	return rec.ranks[g]
}

// Rank is one rank's recording buffer. All recording methods nil-check the
// receiver so instrumentation sites need no guards of their own; only the
// owning rank's goroutine may call them during a run.
type Rank struct {
	rank   int
	spans  bool
	series bool

	iter  int
	phase Phase

	buf    []Span
	env    []Span // KindRecovery envelopes, kept apart from the leaves
	points []IterPoint
}

// SetIter sets the iteration subsequent spans are attributed to.
func (rk *Rank) SetIter(j int) {
	if rk == nil {
		return
	}
	rk.iter = j
}

// SetPhase sets the phase subsequent spans are attributed to.
func (rk *Rank) SetPhase(p Phase) {
	if rk == nil {
		return
	}
	rk.phase = p
}

// Span records one leaf interval [start, end) of the rank's simulated
// timeline under the current iteration and phase. Zero-length spans are
// dropped; a span abutting the previous one with identical attribution is
// coalesced into it, keeping steady-state buffers compact.
func (rk *Rank) Span(kind Kind, start, end float64) {
	if rk == nil || !rk.spans || end <= start {
		return
	}
	if n := len(rk.buf); n > 0 {
		last := &rk.buf[n-1]
		if last.Kind == kind && last.Iter == rk.iter && last.Phase == rk.phase && last.End == start {
			last.End = end
			return
		}
	}
	rk.buf = append(rk.buf, Span{Kind: kind, Phase: rk.phase, Iter: rk.iter, Start: start, End: end})
}

// Envelope records the per-failure-event KindRecovery envelope enclosing
// the event's leaf spans. iter is the iteration the failure struck.
func (rk *Rank) Envelope(iter int, start, end float64) {
	if rk == nil || !rk.spans || end <= start {
		return
	}
	rk.env = append(rk.env, Span{Kind: KindRecovery, Phase: PhaseRecovery, Iter: iter, Start: start, End: end})
}

// Point appends one sample to the per-iteration series. Only rank 0's
// buffer has the series enabled, so call sites need no rank check.
func (rk *Rank) Point(step, iter int, relres, clock float64, bytes, msgs int64) {
	if rk == nil || !rk.series {
		return
	}
	rk.points = append(rk.points, IterPoint{
		Step: step, Iter: iter, RelRes: relres,
		Clock: clock, Bytes: bytes, Msgs: msgs,
	})
}

// Build assembles the immutable Trace after the run completed. simTime is
// the solve's modeled runtime (max simulated clock over ranks).
func (rec *Recorder) Build(simTime float64) *Trace {
	t := &Trace{
		Nodes:     len(rec.ranks),
		SimTime:   simTime,
		Ranks:     make([][]Span, len(rec.ranks)),
		Envelopes: make([][]Span, len(rec.ranks)),
		Build:     CurrentBuild(),
	}
	for g, rk := range rec.ranks {
		t.Ranks[g] = rk.buf
		t.Envelopes[g] = rk.env
		if rk.series {
			t.Series = append(t.Series, rk.points...)
		}
	}
	markWasted(t.Series)
	return t
}

// markWasted flags series points discarded by a later rollback: point k is
// wasted iff some strictly later point re-ran an iteration ≤ its own. One
// reverse sweep over the running minimum of later iterations suffices.
func markWasted(points []IterPoint) {
	minLater := int(^uint(0) >> 1) // max int
	for k := len(points) - 1; k >= 0; k-- {
		points[k].Wasted = points[k].Iter >= minLater
		if points[k].Iter < minLater {
			minLater = points[k].Iter
		}
	}
}
