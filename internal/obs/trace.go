package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Trace is the structured observability record of one solve: the per-rank
// span timelines, the recovery envelopes, the per-iteration series, and
// the build metadata of the binary that produced it. All times are
// simulated seconds (internal/cluster's LogGP clock).
type Trace struct {
	Nodes     int
	SimTime   float64  // modeled runtime: max simulated clock over ranks
	Ranks     [][]Span // leaf spans per global rank, in time order
	Envelopes [][]Span // KindRecovery envelopes per global rank
	Series    []IterPoint
	Build     BuildInfo
}

// Totals sums leaf span time per kind over all ranks.
func (t *Trace) Totals() map[Kind]float64 {
	totals := make(map[Kind]float64, int(kindCount))
	for _, spans := range t.Ranks {
		for _, s := range spans {
			totals[s.Kind] += s.Dur()
		}
	}
	return totals
}

// Coverage returns the critical rank — the rank whose timeline extends
// furthest, i.e. the one defining SimTime — and the fraction of its final
// clock covered by leaf spans. Instrumented solves cover ≥95%: the only
// unattributed time is host-free bookkeeping the cost model charges
// nothing for.
func (t *Trace) Coverage() (rank int, fraction float64) {
	bestEnd := -1.0
	for g, spans := range t.Ranks {
		if n := len(spans); n > 0 && spans[n-1].End > bestEnd {
			bestEnd = spans[n-1].End
			rank = g
		}
	}
	if bestEnd <= 0 || t.SimTime <= 0 {
		return rank, 0
	}
	sum := 0.0
	for _, s := range t.Ranks[rank] {
		sum += s.Dur()
	}
	return rank, sum / t.SimTime
}

// RecoveryStat condenses one failure event's recovery cost out of the
// envelope spans: the modeled time is the longest envelope over ranks
// (recovery is a collective episode; the slowest participant defines it).
type RecoveryStat struct {
	Iter  int     // iteration the failure struck
	Time  float64 // max envelope duration over ranks, simulated seconds
	Ranks int     // ranks that recorded an envelope for this event
}

// RecoveryStats groups the recovery envelopes by failure iteration, in
// timeline order.
func (t *Trace) RecoveryStats() []RecoveryStat {
	byIter := make(map[int]*RecoveryStat)
	var order []int
	for _, spans := range t.Envelopes {
		for _, s := range spans {
			st, ok := byIter[s.Iter]
			if !ok {
				st = &RecoveryStat{Iter: s.Iter}
				byIter[s.Iter] = st
				order = append(order, s.Iter)
			}
			st.Ranks++
			if d := s.Dur(); d > st.Time {
				st.Time = d
			}
		}
	}
	sort.Ints(order)
	out := make([]RecoveryStat, 0, len(order))
	for _, it := range order {
		out = append(out, *byIter[it])
	}
	return out
}

// chromeSpan is one complete ("X") trace_event. Field order is the
// serialization order, which encoding/json keeps stable — part of the
// byte-determinism contract of WriteChrome.
type chromeSpan struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	Ts   float64    `json:"ts"`  // microseconds
	Dur  float64    `json:"dur"` // microseconds
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	Args chromeArgs `json:"args"`
}

type chromeArgs struct {
	Iter  int    `json:"iter"`
	Phase string `json:"phase"`
}

// chromeMeta is one metadata ("M") event naming the process or a thread.
type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args chromeMetaArgs `json:"args"`
}

type chromeMetaArgs struct {
	Name string `json:"name"`
}

// chromeCounter is one counter ("C") event carrying the residual series.
type chromeCounter struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args counterRelArgs `json:"args"`
}

type counterRelArgs struct {
	RelRes float64 `json:"relres"`
}

const usPerSec = 1e6 // simulated seconds → trace_event microseconds

// WriteChrome emits the trace as Chrome trace_event JSON (the object
// form, with "traceEvents"), viewable in Perfetto / chrome://tracing.
// The simulated cluster appears as one process, each rank as one thread;
// recovery envelopes nest around their leaf spans. Output is
// byte-deterministic for a given trace.
func (t *Trace) WriteChrome(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.puts(`{"displayTimeUnit":"ms","otherData":`)
	meta, err := json.Marshal(struct {
		SimTime   float64 `json:"sim_time_seconds"`
		Nodes     int     `json:"nodes"`
		GoVersion string  `json:"go_version"`
		Revision  string  `json:"vcs_revision,omitempty"`
	}{t.SimTime, t.Nodes, t.Build.GoVersion, t.Build.Revision})
	if err != nil {
		return err
	}
	bw.put(meta)
	bw.puts(`,"traceEvents":[`)

	first := true
	emit := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			bw.err = err
			return
		}
		if !first {
			bw.puts(",\n")
		} else {
			bw.puts("\n")
			first = false
		}
		bw.put(b)
	}

	emit(chromeMeta{Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: chromeMetaArgs{Name: "esrp simulated cluster"}})
	for g := 0; g < t.Nodes; g++ {
		emit(chromeMeta{Name: "thread_name", Ph: "M", Pid: 0, Tid: g,
			Args: chromeMetaArgs{Name: "rank " + strconv.Itoa(g)}})
	}
	for g := 0; g < t.Nodes; g++ {
		// Envelopes first: at equal start timestamps the enclosing event
		// must precede its children for viewers that resolve nesting by
		// order, and a fixed order keeps the bytes deterministic.
		for _, s := range t.Envelopes[g] {
			emit(spanEvent(g, s))
		}
		for _, s := range t.Ranks[g] {
			emit(spanEvent(g, s))
		}
	}
	for _, p := range t.Series {
		emit(chromeCounter{Name: "relres", Ph: "C", Ts: p.Clock * usPerSec,
			Pid: 0, Tid: 0, Args: counterRelArgs{RelRes: p.RelRes}})
	}
	bw.puts("\n]}\n")
	return bw.err
}

func spanEvent(rank int, s Span) chromeSpan {
	return chromeSpan{
		Name: s.Kind.String(),
		Cat:  s.Kind.Category(),
		Ph:   "X",
		Ts:   s.Start * usPerSec,
		Dur:  s.Dur() * usPerSec,
		Pid:  0,
		Tid:  rank,
		Args: chromeArgs{Iter: s.Iter, Phase: s.Phase.String()},
	}
}

// errWriter latches the first write error so emission code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) put(b []byte) {
	if ew.err == nil {
		_, ew.err = ew.w.Write(b)
	}
}

func (ew *errWriter) puts(s string) { ew.put([]byte(s)) }

// ValidateChromeTrace checks data against the Chrome trace_event schema
// subset this package emits: a JSON object with a non-empty "traceEvents"
// array whose events carry a name and a known phase, complete events
// carrying non-negative ts/dur and a thread id. It is the validation the
// CI observability job and esrpsolve's self-check run; no external schema
// tooling is required.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace has no traceEvents")
	}
	for i, raw := range doc.TraceEvents {
		var ev struct {
			Name *string  `json:"name"`
			Ph   *string  `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return fmt.Errorf("obs: event %d: %w", i, err)
		}
		if ev.Name == nil || *ev.Name == "" {
			return fmt.Errorf("obs: event %d: missing name", i)
		}
		if ev.Ph == nil {
			return fmt.Errorf("obs: event %d (%s): missing ph", i, *ev.Name)
		}
		switch *ev.Ph {
		case "X":
			if ev.Ts == nil || *ev.Ts < 0 {
				return fmt.Errorf("obs: event %d (%s): complete event needs ts ≥ 0", i, *ev.Name)
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				return fmt.Errorf("obs: event %d (%s): complete event needs dur ≥ 0", i, *ev.Name)
			}
			if ev.Tid == nil {
				return fmt.Errorf("obs: event %d (%s): complete event needs tid", i, *ev.Name)
			}
		case "M":
			if *ev.Name != "process_name" && *ev.Name != "thread_name" {
				return fmt.Errorf("obs: event %d: unknown metadata event %q", i, *ev.Name)
			}
		case "C":
			if ev.Ts == nil || *ev.Ts < 0 {
				return fmt.Errorf("obs: event %d (%s): counter event needs ts ≥ 0", i, *ev.Name)
			}
		default:
			return fmt.Errorf("obs: event %d (%s): unsupported phase %q", i, *ev.Name, *ev.Ph)
		}
	}
	return nil
}

// WriteSeriesCSV emits the per-iteration series as CSV with cumulative
// and delta columns. Deterministic for a given trace.
func (t *Trace) WriteSeriesCSV(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.puts("step,iter,relres,clock,clock_delta,bytes,bytes_delta,msgs,msgs_delta,wasted\n")
	prevClock := 0.0
	var prevBytes, prevMsgs int64
	for _, p := range t.Series {
		wasted := "0"
		if p.Wasted {
			wasted = "1"
		}
		bw.puts(strconv.Itoa(p.Step) + "," + strconv.Itoa(p.Iter) + "," +
			strconv.FormatFloat(p.RelRes, 'g', -1, 64) + "," +
			strconv.FormatFloat(p.Clock, 'g', -1, 64) + "," +
			strconv.FormatFloat(p.Clock-prevClock, 'g', -1, 64) + "," +
			strconv.FormatInt(p.Bytes, 10) + "," + strconv.FormatInt(p.Bytes-prevBytes, 10) + "," +
			strconv.FormatInt(p.Msgs, 10) + "," + strconv.FormatInt(p.Msgs-prevMsgs, 10) + "," +
			wasted + "\n")
		prevClock, prevBytes, prevMsgs = p.Clock, p.Bytes, p.Msgs
	}
	return bw.err
}

// WriteSeriesJSON emits the per-iteration series as a JSON array of
// IterPoint objects.
func (t *Trace) WriteSeriesJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Series)
}
