package sparse

// bandUnroll is the row unroll width of the period-1 band loop: four
// consecutive rows share one pass over the offset pattern, with four
// independent accumulators and x loads that land on adjacent entries.
const bandUnroll = 4

// bandMaxPeriod caps the detected pattern period (the dof count of blocked
// stencil matrices; audikw-class problems use 3). It also bounds the
// accumulator array of the periodic loop.
const bandMaxPeriod = 8

// bandRun is a maximal sequence of consecutive local rows [i0,i1) whose
// compact column indices follow one offset pattern with period d: the d rows
// of a group share identical columns, and each group's columns are the
// previous group's shifted by d —
//
//	cols(i) = (i0 + d·⌊(i−i0)/d⌋) + off,  entry for entry, source order.
//
// d = 1 is the scalar stencil (Emilia-class): every row shifts by one.
// d = dof covers vertex-blocked stencils (audikw-class), where the dof rows
// of a vertex couple the same columns. Stencil interiors are almost
// entirely such runs; a run's values are contiguous in the Local's CSR
// storage, so the kernel streams them without copying.
type bandRun struct {
	i0, i1 int
	d      int   // pattern period (≥ 1); i1−i0 is a multiple of d
	base   int   // offset of row i0's first entry in the Local's Vals
	off    []int // column offsets relative to the group base, source order
}

// bandRows is the constant-band layout of one row block: the block's rows
// decomposed into periodic shifted-pattern runs. Within a run the column of
// entry k is groupBase+off[k] — no per-entry index loads; the period-1 loop
// reuses each offset across four rows, the period-d loop additionally loads
// each x entry once per group instead of once per row. Rows that fit no run
// degenerate to single-row runs (correct, CSR-equivalent speed); the
// planner only picks this layout when long runs dominate.
type bandRows struct {
	vals []float64 // the Local's value storage (shared, read-only)
	runs []bandRun
	nz   int
}

func newBandRows(l *Local, rows []int) *bandRows {
	b := &bandRows{vals: l.Vals}
	for t := 0; t < len(rows); {
		i0 := rows[t]
		cols, _ := l.Row(i0)
		off := make([]int, len(cols))
		for k, c := range cols {
			off[k] = c - i0
		}
		// Period: 1 + the consecutive rows whose columns equal row i0's.
		d := 1
		for t+d < len(rows) && d < bandMaxPeriod &&
			rows[t+d] == i0+d && colsEqualShifted(l, rows[t+d], cols, 0) {
			d++
		}
		// Extend by whole groups: group g is d consecutive rows whose
		// columns are cols(i0) shifted by g·d.
		groups := 1
		for {
			gt := t + groups*d
			base := groups * d
			ok := gt+d <= len(rows)
			for r := 0; ok && r < d; r++ {
				ok = rows[gt+r] == i0+base+r && colsEqualShifted(l, rows[gt+r], cols, base)
			}
			if !ok {
				break
			}
			groups++
		}
		run := bandRun{i0: i0, i1: i0 + groups*d, d: d, base: l.RowPtr[i0], off: off}
		b.nz += (run.i1 - run.i0) * len(off)
		b.runs = append(b.runs, run)
		t += groups * d
	}
	return b
}

// colsEqualShifted reports whether local row i's compact columns equal
// cols+s entry for entry.
func colsEqualShifted(l *Local, i int, cols []int, s int) bool {
	ci, _ := l.Row(i)
	if len(ci) != len(cols) {
		return false
	}
	for k, c := range ci {
		if c != cols[k]+s {
			return false
		}
	}
	return true
}

func (b *bandRows) name() string { return "band" }
func (b *bandRows) nnz() int     { return b.nz }

// coveredRows counts the rows in runs long enough for the fast loops: the
// planner's statistic. Period-1 runs need bandUnroll rows to feed the
// unrolled loop; a periodic run pays off from its first full group (the
// group shares every x load across its d rows).
func (b *bandRows) coveredRows() int {
	covered := 0
	for _, rn := range b.runs {
		if n := rn.i1 - rn.i0; n >= bandMinRun || rn.d > 1 {
			covered += n
		}
	}
	return covered
}

func (b *bandRows) mul(dst, x []float64) {
	for ri := range b.runs {
		rn := &b.runs[ri]
		if rn.d > 1 {
			b.mulPeriodic(rn, dst, x)
			continue
		}
		off := rn.off
		w := len(off)
		vi := rn.base
		i := rn.i0
		if w > 0 {
			for ; i+bandUnroll <= rn.i1; i += bandUnroll {
				v0 := b.vals[vi : vi+w : vi+w]
				v1 := b.vals[vi+w : vi+2*w : vi+2*w]
				v2 := b.vals[vi+2*w : vi+3*w : vi+3*w]
				v3 := b.vals[vi+3*w : vi+4*w : vi+4*w]
				var a0, a1, a2, a3 float64
				for k, o := range off {
					xo := x[i+o : i+o+4 : i+o+4]
					a0 += v0[k] * xo[0]
					a1 += v1[k] * xo[1]
					a2 += v2[k] * xo[2]
					a3 += v3[k] * xo[3]
				}
				dst[i] = a0
				dst[i+1] = a1
				dst[i+2] = a2
				dst[i+3] = a3
				vi += bandUnroll * w
			}
		}
		for ; i < rn.i1; i++ {
			v := b.vals[vi : vi+w : vi+w]
			var a float64
			for k, o := range off {
				a += v[k] * x[i+o]
			}
			dst[i] = a
			vi += w
		}
	}
}

// mulPeriodic is the period-d loop: the d rows of a group read the same
// columns, so each x entry is loaded once per group and feeds d independent
// accumulators. The dominant dof counts (2, 3, 4) run with scalar
// accumulators so they live in registers; other periods take the generic
// array loop.
func (b *bandRows) mulPeriodic(rn *bandRun, dst, x []float64) {
	off := rn.off
	w := len(off)
	vi := rn.base
	switch rn.d {
	case 2:
		for i := rn.i0; i < rn.i1; i += 2 {
			v0 := b.vals[vi : vi+w : vi+w]
			v1 := b.vals[vi+w : vi+2*w : vi+2*w]
			var a0, a1 float64
			for k, o := range off {
				xv := x[i+o]
				a0 += v0[k] * xv
				a1 += v1[k] * xv
			}
			dst[i] = a0
			dst[i+1] = a1
			vi += 2 * w
		}
	case 3:
		for i := rn.i0; i < rn.i1; i += 3 {
			v0 := b.vals[vi : vi+w : vi+w]
			v1 := b.vals[vi+w : vi+2*w : vi+2*w]
			v2 := b.vals[vi+2*w : vi+3*w : vi+3*w]
			var a0, a1, a2 float64
			for k, o := range off {
				xv := x[i+o]
				a0 += v0[k] * xv
				a1 += v1[k] * xv
				a2 += v2[k] * xv
			}
			dst[i] = a0
			dst[i+1] = a1
			dst[i+2] = a2
			vi += 3 * w
		}
	case 4:
		for i := rn.i0; i < rn.i1; i += 4 {
			v0 := b.vals[vi : vi+w : vi+w]
			v1 := b.vals[vi+w : vi+2*w : vi+2*w]
			v2 := b.vals[vi+2*w : vi+3*w : vi+3*w]
			v3 := b.vals[vi+3*w : vi+4*w : vi+4*w]
			var a0, a1, a2, a3 float64
			for k, o := range off {
				xv := x[i+o]
				a0 += v0[k] * xv
				a1 += v1[k] * xv
				a2 += v2[k] * xv
				a3 += v3[k] * xv
			}
			dst[i] = a0
			dst[i+1] = a1
			dst[i+2] = a2
			dst[i+3] = a3
			vi += 4 * w
		}
	default:
		d := rn.d
		for i := rn.i0; i < rn.i1; i += d {
			var acc [bandMaxPeriod]float64
			for k, o := range off {
				xv := x[i+o]
				vk := vi + k
				for r := 0; r < d; r++ {
					acc[r] += b.vals[vk+r*w] * xv
				}
			}
			for r := 0; r < d; r++ {
				dst[i+r] = acc[r]
			}
			vi += d * w
		}
	}
}
