package sparse

import (
	"math/rand"
	"sort"
	"testing"
)

// randomSparse returns a random n×n matrix with ~density nonzeros per row
// plus a full diagonal, deterministic in seed.
func randomSparse(n, perRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, float64(i+1))
		for k := 0; k < perRow; k++ {
			b.Add(i, rng.Intn(n), rng.NormFloat64())
		}
	}
	return b.Build()
}

// ghostOf returns the sorted set of off-range columns referenced by rows
// [lo,hi) — the reference computation NewLocal is tested against.
func ghostOf(a *CSR, lo, hi int) []int {
	seen := map[int]bool{}
	for i := lo; i < hi; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			if j < lo || j >= hi {
				seen[j] = true
			}
		}
	}
	ghost := make([]int, 0, len(seen))
	for j := range seen {
		ghost = append(ghost, j)
	}
	sort.Ints(ghost)
	return ghost
}

// TestLocalIndexMapRoundTrip is the property test of the ghost index maps:
// global→compact→global is the identity on every referenced column, owned
// columns land in [0,M) and ghosts in [M,M+G).
func TestLocalIndexMapRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		a := randomSparse(80, 4, seed)
		lo, hi := 20, 50
		l, err := NewLocal(a, lo, hi, ghostOf(a, lo, hi))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < a.Cols; j++ {
			c := l.CompactCol(j)
			owned := j >= lo && j < hi
			switch {
			case c == -1:
				if owned {
					t.Fatalf("seed %d: owned column %d unmapped", seed, j)
				}
			case owned && (c < 0 || c >= l.M):
				t.Fatalf("seed %d: owned column %d mapped to %d outside [0,%d)", seed, j, c, l.M)
			case !owned && (c < l.M || c >= l.M+l.G()):
				t.Fatalf("seed %d: ghost column %d mapped to %d outside [%d,%d)", seed, j, c, l.M, l.M+l.G())
			}
			if c >= 0 && l.GlobalCol(c) != j {
				t.Fatalf("seed %d: round trip %d -> %d -> %d", seed, j, c, l.GlobalCol(c))
			}
		}
		// Every stored compact column round-trips to a column the global row
		// actually stores.
		for i := 0; i < l.M; i++ {
			cols, _ := l.Row(i)
			gcols, _ := a.Row(lo + i)
			if len(cols) != len(gcols) {
				t.Fatalf("seed %d: row %d has %d entries locally, %d globally", seed, i, len(cols), len(gcols))
			}
			for k, c := range cols {
				if l.GlobalCol(c) != gcols[k] {
					t.Fatalf("seed %d: row %d entry %d maps to column %d, want %d (source order must be preserved)",
						seed, i, k, l.GlobalCol(c), gcols[k])
				}
			}
		}
	}
}

// TestLocalInteriorRowsReferenceNoGhost is the second index-map property:
// interior rows reference owned columns only, boundary rows at least one
// ghost, and the two lists partition [0,M).
func TestLocalInteriorRowsReferenceNoGhost(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		a := randomSparse(60, 3, seed+100)
		lo, hi := 15, 45
		l, err := NewLocal(a, lo, hi, ghostOf(a, lo, hi))
		if err != nil {
			t.Fatal(err)
		}
		covered := make([]int, l.M)
		for _, i := range l.InteriorRows {
			covered[i]++
			cols, _ := l.Row(i)
			for _, c := range cols {
				if c >= l.M {
					t.Fatalf("seed %d: interior row %d references ghost column %d", seed, i, c)
				}
			}
		}
		for _, i := range l.BoundaryRows {
			covered[i]++
			ghost := false
			cols, _ := l.Row(i)
			for _, c := range cols {
				ghost = ghost || c >= l.M
			}
			if !ghost {
				t.Fatalf("seed %d: boundary row %d has no ghost column", seed, i)
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("seed %d: row %d covered %d times by interior+boundary", seed, i, c)
			}
		}
		if l.InteriorNNZ()+l.BoundaryNNZ() != l.NNZ() {
			t.Fatalf("seed %d: nnz split %d+%d != %d", seed, l.InteriorNNZ(), l.BoundaryNNZ(), l.NNZ())
		}
	}
}

// TestLocalMulMatchesMulVecRows checks that interior+boundary products on
// the compact index space reproduce the global-matrix row product bitwise.
func TestLocalMulMatchesMulVecRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSparse(90, 5, 7)
	lo, hi := 30, 70
	l, err := NewLocal(a, lo, hi, ghostOf(a, lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	xfull := make([]float64, a.Cols)
	for i := range xfull {
		xfull[i] = rng.NormFloat64()
	}
	// Assemble the compact owned+ghost vector.
	xloc := make([]float64, l.M+l.G())
	copy(xloc, xfull[lo:hi])
	for g, j := range l.Ghost {
		xloc[l.M+g] = xfull[j]
	}
	want := make([]float64, hi-lo)
	a.MulVecRows(want, xfull, lo, hi)

	got := make([]float64, hi-lo)
	l.MulInterior(got, xloc)
	l.MulBoundary(got, xloc)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("split product row %d: got %v, want %v (must be bitwise identical)", i, got[i], want[i])
		}
	}
	got2 := make([]float64, hi-lo)
	l.Mul(got2, xloc)
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("Mul row %d: got %v, want %v", i, got2[i], want[i])
		}
	}
}

// TestLocalMulAllocs pins the steady-state local product to zero heap
// allocations — the kernel the solver runs every iteration.
func TestLocalMulAllocs(t *testing.T) {
	a := randomSparse(100, 4, 11)
	lo, hi := 25, 75
	l, err := NewLocal(a, lo, hi, ghostOf(a, lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, l.M+l.G())
	for i := range x {
		x[i] = float64(i)
	}
	dst := make([]float64, l.M)
	if n := testing.AllocsPerRun(50, func() {
		l.MulInterior(dst, x)
		l.MulBoundary(dst, x)
	}); n != 0 {
		t.Fatalf("local SpMV kernel allocates %v times per run, want 0", n)
	}
}

// TestLocalErrors covers the validation paths.
func TestLocalErrors(t *testing.T) {
	a := randomSparse(20, 3, 3)
	if _, err := NewLocal(a, 5, 25, nil); err == nil {
		t.Fatal("row range beyond the matrix must fail")
	}
	if _, err := NewLocal(a, 5, 15, nil); err == nil {
		t.Fatal("missing ghost set must fail when rows couple outside the range")
	}
	if _, err := NewLocal(a, 5, 15, []int{4, 4}); err == nil {
		t.Fatal("duplicate ghost indices must fail")
	}
	if _, err := NewLocal(a, 5, 15, []int{4, 2}); err == nil {
		t.Fatal("unsorted ghost indices must fail")
	}
}
