package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix Market coordinate-format I/O, covering the subset used by the
// SuiteSparse collection matrices the paper evaluates on: real or pattern
// entries, general or symmetric storage. Writing always emits
// "coordinate real", using symmetric storage when the matrix is symmetric.

// ReadMatrixMarket parses a Matrix Market "matrix coordinate" stream.
// Symmetric (and skew-symmetric) storage is expanded to full storage;
// pattern entries get value 1.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("sparse: not a MatrixMarket matrix header: %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: only coordinate format supported, got %q", header[2])
	}
	field := header[3]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported field type %q", field)
	}
	symmetry := "general"
	if len(header) >= 5 {
		symmetry = header[4]
	}
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("sparse: missing MatrixMarket size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %v", line, err)
		}
		break
	}

	b := NewBuilder(rows, cols)
	read := 0
	for read < nnz {
		if !sc.Scan() {
			return nil, fmt.Errorf("sparse: expected %d entries, got %d", nnz, read)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %v", f[0], err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad column index %q: %v", f[1], err)
		}
		v := 1.0
		if field != "pattern" {
			if len(f) < 3 {
				return nil, fmt.Errorf("sparse: missing value in %q", line)
			}
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %v", f[2], err)
			}
		}
		i, j = i-1, j-1 // 1-based on disk
		b.Add(i, j, v)
		if i != j {
			switch symmetry {
			case "symmetric":
				b.Add(j, i, v)
			case "skew-symmetric":
				b.Add(j, i, -v)
			}
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// WriteMatrixMarket writes a in coordinate real format. If a is numerically
// symmetric, only the lower triangle is written with "symmetric" storage.
func WriteMatrixMarket(w io.Writer, a *CSR) error {
	bw := bufio.NewWriter(w)
	sym := a.IsSymmetric(0)
	storage := "general"
	nnz := a.NNZ()
	if sym {
		storage = "symmetric"
		nnz = 0
		for i := 0; i < a.Rows; i++ {
			cols, _ := a.Row(i)
			for _, j := range cols {
				if j <= i {
					nnz++
				}
			}
		}
	}
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real %s\n", storage); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.Rows, a.Cols, nnz); err != nil {
		return err
	}
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if sym && j > i {
				continue
			}
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
