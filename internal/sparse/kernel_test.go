package sparse

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// localOf extracts the Local view of rows [lo,hi) of a, deriving the ghost
// set from the rows' out-of-range references (what aspmv.Plan.Ghost would
// deliver).
func localOf(t testing.TB, a *CSR, lo, hi int) *Local {
	t.Helper()
	seen := map[int]bool{}
	for i := lo; i < hi; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			if j < lo || j >= hi {
				seen[j] = true
			}
		}
	}
	ghost := make([]int, 0, len(seen))
	for j := range seen {
		ghost = append(ghost, j)
	}
	sort.Ints(ghost)
	l, err := NewLocal(a, lo, hi, ghost)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// stencil27 builds a scalar 27-point stencil matrix on an n³ grid — the
// Emilia/audikw sparsity-pattern class the band kernel targets.
func stencil27(n int) *CSR {
	idx := func(i, j, k int) int { return (i*n+j)*n + k }
	b := NewBuilder(n*n*n, n*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				r := idx(i, j, k)
				diag := 1.0
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						for dk := -1; dk <= 1; dk++ {
							if di == 0 && dj == 0 && dk == 0 {
								continue
							}
							ii, jj, kk := i+di, j+dj, k+dk
							if ii < 0 || ii >= n || jj < 0 || jj >= n || kk < 0 || kk >= n {
								continue
							}
							w := 1 / float64(di*di+dj*dj+dk*dk)
							b.Add(r, idx(ii, jj, kk), -w)
							diag += w
						}
					}
				}
				b.Add(r, r, diag)
			}
		}
	}
	return b.Build()
}

// raggedSparse builds a deliberately irregular matrix: random row lengths,
// empty rows, and rows whose only entries are far off-diagonal.
func raggedSparse(n int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0: // empty row
		case 1: // diagonal only
			b.Add(i, i, 1+rng.Float64())
		default:
			for k, kn := 0, 1+rng.Intn(7); k < kn; k++ {
				b.Add(i, rng.Intn(n), rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

// mmSample is a tiny Matrix Market general matrix with ragged rows.
const mmSample = `%%MatrixMarket matrix coordinate real general
6 6 9
1 1 2.5
1 4 -1.0
2 2 3.0
3 1 -0.5
3 3 1.5
3 6 0.25
5 5 4.0
6 2 -0.75
6 6 2.0
`

// kernelMatrices enumerates the property-test inputs: stencil, random,
// ragged (empty rows included), and Matrix-Market-parsed.
func kernelMatrices(t testing.TB) map[string]*CSR {
	t.Helper()
	mm, err := ReadMatrixMarket(strings.NewReader(mmSample))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*CSR{
		"stencil27-6":  stencil27(6),
		"random-80":    randomSparse(80, 6, 7),
		"ragged-97":    raggedSparse(97, 3),
		"matrixmarket": mm,
	}
}

// TestKernelsBitwiseIdentical is the kernel-format property test: for every
// matrix class, every row split (including the single-node g=0 halo case),
// and every kernel kind, Mul/MulInterior/MulBoundary must reproduce the
// scalar CSR traversal bit for bit — the invariant that keeps solver
// trajectories independent of the storage layout.
func TestKernelsBitwiseIdentical(t *testing.T) {
	kinds := []KernelKind{KernelAuto, KernelCSR, KernelSellC, KernelBand}
	for name, a := range kernelMatrices(t) {
		splits := [][2]int{{0, a.Rows}} // single node: no ghosts at all
		third := a.Rows / 3
		if third > 0 {
			splits = append(splits, [2]int{0, third}, [2]int{third, 2 * third}, [2]int{2 * third, a.Rows})
		}
		for _, sp := range splits {
			l := localOf(t, a, sp[0], sp[1])
			rng := rand.New(rand.NewSource(int64(sp[0]) + 99))
			x := make([]float64, l.M+l.G())
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			// Sprinkle in signed zeros: padding or reordering bugs show up
			// exactly where -0.0 partial sums get normalized to +0.0.
			if len(x) > 2 {
				x[0], x[len(x)/2] = math.Copysign(0, -1), math.Copysign(0, -1)
			}
			want := make([]float64, l.M)
			l.Mul(want, x)
			wantI := make([]float64, l.M)
			wantB := make([]float64, l.M)
			l.MulInterior(wantI, x)
			l.MulBoundary(wantB, x)
			for _, kind := range kinds {
				k := BuildKernel(l, kind)
				t.Run(fmt.Sprintf("%s/rows%d-%d/%v", name, sp[0], sp[1], kind), func(t *testing.T) {
					checkBits := func(op string, got, want []float64) {
						t.Helper()
						for i := range got {
							if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
								t.Fatalf("%s (%s): row %d = %x, csr %x", op, k.Name(), i,
									math.Float64bits(got[i]), math.Float64bits(want[i]))
							}
						}
					}
					got := make([]float64, l.M)
					k.Mul(got, x)
					checkBits("Mul", got, want)
					gotI := make([]float64, l.M)
					k.MulInterior(gotI, x)
					checkBits("MulInterior", gotI, wantI)
					gotB := make([]float64, l.M)
					k.MulBoundary(gotB, x)
					checkBits("MulBoundary", gotB, wantB)
					if k.NNZ() != l.NNZ() || k.InteriorNNZ() != l.InteriorNNZ() || k.BoundaryNNZ() != l.BoundaryNNZ() {
						t.Fatalf("nnz accounting (%d,%d,%d) != local (%d,%d,%d)",
							k.NNZ(), k.InteriorNNZ(), k.BoundaryNNZ(), l.NNZ(), l.InteriorNNZ(), l.BoundaryNNZ())
					}
				})
			}
		}
	}
}

// TestKernelPlannerPicksBandForStencil pins the planner's headline decision:
// a stencil slab's interior rows go to the band layout, and the forced kinds
// report their own names.
func TestKernelPlannerPicksBandForStencil(t *testing.T) {
	a := stencil27(8)
	l := localOf(t, a, 128, 384) // an interior slab with halo on both sides
	if name := BuildKernel(l, KernelAuto).Name(); !strings.Contains(name, "band") {
		t.Fatalf("planner chose %q for a 27-point stencil slab, want a band interior", name)
	}
	if name := BuildKernel(l, KernelCSR).Name(); name != "csr" {
		t.Fatalf("forced csr reports %q", name)
	}
	if name := BuildKernel(l, KernelSellC).Name(); name != "sellc" {
		t.Fatalf("forced sellc reports %q", name)
	}
	if name := BuildKernel(l, KernelBand).Name(); name != "band" {
		t.Fatalf("forced band reports %q", name)
	}
	irregular := raggedSparse(97, 3)
	li := localOf(t, irregular, 0, 97)
	if name := BuildKernel(li, KernelAuto).Name(); strings.Contains(name, "band") {
		t.Fatalf("planner chose %q for a ragged matrix, band runs cannot dominate there", name)
	}
}

// BenchmarkKernelMul measures the raw local product per layout on a stencil
// slab — the arithmetic floor the planner converts into solve wall-clock.
func BenchmarkKernelMul(b *testing.B) {
	a := stencil27(24) // 13824 rows, ~350k nnz
	l := localOf(b, a, 3456, 10368)
	x := make([]float64, l.M+l.G())
	for i := range x {
		x[i] = float64(i%17) * 0.25
	}
	dst := make([]float64, l.M)
	for _, kind := range []KernelKind{KernelCSR, KernelSellC, KernelBand, KernelAuto} {
		k := BuildKernel(l, kind)
		b.Run(kind.String(), func(b *testing.B) {
			b.SetBytes(int64(12 * l.NNZ()))
			for i := 0; i < b.N; i++ {
				k.Mul(dst, x)
			}
		})
	}
}
