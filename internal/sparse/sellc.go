package sparse

import "sort"

// sellChunk is the SELL-C chunk width: 8 rows share one inner loop, giving
// the scalar CPU eight independent accumulator chains instead of CSR's one.
// The per-row dependency chain of floating-point adds is what bounds the CSR
// traversal (one entry per add latency); interleaving eight rows keeps the
// FMA pipeline full without reordering any row's accumulation.
const sellChunk = 8

// sellSigma is the σ sorting window: within each window of slots the rows
// are stably sorted by length so chunks come out uniform and run the fully
// unrolled loop. Sorting only permutes which rows share a chunk — every row
// still accumulates its own entries in source order into its own dst slot —
// so results stay bitwise identical to CSR. The window is kept small so the
// rows sharing a chunk stay near each other and their x loads stay local.
const sellSigma = 8 * sellChunk

// sellRows is the SELL-C-σ (sliced ELL) layout of one row block: rows are
// grouped into chunks of 8 slots after the per-window length sort, and each
// chunk stores its entries lane-major: entry k of slot t at
// cols[ptr + k*8 + t]. Within a lane, k ascends in the row's source entry
// order, so each row's products accumulate exactly as in the CSR traversal.
//
// Chunks whose 8 rows all share one length run the fully unrolled loop;
// ragged or partial chunks fall back to a guarded lane walk that never reads
// the zero padding (a padded multiply-add could flip a -0.0 partial sum to
// +0.0, which the bitwise-identity contract forbids).
type sellRows struct {
	rows     []int  // target local row per slot (σ-permuted block order)
	rowLen   []int  // entries per slot
	chunkPtr []int  // per chunk: start offset into cols/vals (len nchunks+1)
	uniform  []bool // per chunk: full 8 slots of one shared length
	cols     []int32
	vals     []float64
	nz       int
}

func newSellRows(l *Local, rows []int) *sellRows {
	n := len(rows)
	nch := (n + sellChunk - 1) / sellChunk
	s := &sellRows{
		rows:     append([]int(nil), rows...),
		rowLen:   make([]int, n),
		chunkPtr: make([]int, nch+1),
		uniform:  make([]bool, nch),
	}
	rowLenOf := func(i int) int { return l.RowPtr[i+1] - l.RowPtr[i] }
	// σ window sort: uniform-length chunks wherever the block allows it.
	for w0 := 0; w0 < n; w0 += sellSigma {
		w1 := min(w0+sellSigma, n)
		win := s.rows[w0:w1]
		sort.SliceStable(win, func(a, b int) bool { return rowLenOf(win[a]) < rowLenOf(win[b]) })
	}
	for t, i := range s.rows {
		s.rowLen[t] = rowLenOf(i)
		s.nz += s.rowLen[t]
	}
	for c := 0; c < nch; c++ {
		lo := c * sellChunk
		hi := min(lo+sellChunk, n)
		w := 0
		uniform := hi-lo == sellChunk
		for t := lo; t < hi; t++ {
			if s.rowLen[t] != s.rowLen[lo] {
				uniform = false
			}
			w = max(w, s.rowLen[t])
		}
		s.uniform[c] = uniform
		base := len(s.cols)
		s.cols = append(s.cols, make([]int32, w*sellChunk)...)
		s.vals = append(s.vals, make([]float64, w*sellChunk)...)
		for t := lo; t < hi; t++ {
			cols, vals := l.Row(s.rows[t])
			lane := t - lo
			for k := range cols {
				s.cols[base+k*sellChunk+lane] = int32(cols[k])
				s.vals[base+k*sellChunk+lane] = vals[k]
			}
		}
		s.chunkPtr[c+1] = len(s.cols)
	}
	return s
}

func (s *sellRows) name() string { return "sellc" }
func (s *sellRows) nnz() int     { return s.nz }

func (s *sellRows) mul(dst, x []float64) {
	for c := 0; c+1 < len(s.chunkPtr); c++ {
		base := s.chunkPtr[c]
		w := (s.chunkPtr[c+1] - base) / sellChunk
		lo := c * sellChunk
		if s.uniform[c] {
			var a0, a1, a2, a3, a4, a5, a6, a7 float64
			for k := 0; k < w; k++ {
				o := base + k*sellChunk
				cc := s.cols[o : o+8 : o+8]
				vv := s.vals[o : o+8 : o+8]
				a0 += vv[0] * x[cc[0]]
				a1 += vv[1] * x[cc[1]]
				a2 += vv[2] * x[cc[2]]
				a3 += vv[3] * x[cc[3]]
				a4 += vv[4] * x[cc[4]]
				a5 += vv[5] * x[cc[5]]
				a6 += vv[6] * x[cc[6]]
				a7 += vv[7] * x[cc[7]]
			}
			r := s.rows[lo : lo+8 : lo+8]
			dst[r[0]] = a0
			dst[r[1]] = a1
			dst[r[2]] = a2
			dst[r[3]] = a3
			dst[r[4]] = a4
			dst[r[5]] = a5
			dst[r[6]] = a6
			dst[r[7]] = a7
			continue
		}
		// Ragged or partial chunk: k-major walk with a per-lane length guard
		// (slots are length-sorted within the window, so the guard flips at
		// most once per lane and predicts well). Padding is never read.
		hi := min(lo+sellChunk, len(s.rows))
		nl := hi - lo
		var acc [sellChunk]float64
		lens := s.rowLen[lo:hi]
		for k := 0; k < w; k++ {
			o := base + k*sellChunk
			for lane := 0; lane < nl; lane++ {
				if k < lens[lane] {
					acc[lane] += s.vals[o+lane] * x[s.cols[o+lane]]
				}
			}
		}
		for lane := 0; lane < nl; lane++ {
			dst[s.rows[lo+lane]] = acc[lane]
		}
	}
}
