package sparse

import "fmt"

// KernelKind selects the storage layout the local SpMV runs through.
//
// Every kind computes the exact same per-row dot products in the exact same
// accumulation order as Local.Mul (the scalar CSR traversal), so solver
// trajectories are bitwise identical across kinds; the layouts differ only in
// how entries are streamed through the CPU. KernelAuto lets the Prepare-time
// planner inspect each row block's structure and pick per block.
type KernelKind int

// Available kernel kinds.
const (
	// KernelAuto (the zero value) picks per row block: the constant-band
	// layout for blocks dominated by shifted-pattern row runs (stencil
	// interiors), sliced-ELL for regular-width blocks, scalar CSR otherwise.
	KernelAuto KernelKind = iota
	// KernelCSR forces the generic scalar CSR traversal (the fallback every
	// irregular Matrix-Market input uses).
	KernelCSR
	// KernelSellC forces the SELL-C sliced-ELL layout (chunk 8, unrolled
	// inner loop, one independent accumulator per in-flight row).
	KernelSellC
	// KernelBand forces the constant-band/stencil layout (per-run column
	// offset patterns, no per-entry index loads).
	KernelBand
)

// String returns the canonical flag name of the kind.
func (k KernelKind) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelCSR:
		return "csr"
	case KernelSellC:
		return "sellc"
	case KernelBand:
		return "band"
	default:
		return fmt.Sprintf("KernelKind(%d)", int(k))
	}
}

// ParseKernelKind converts a flag value ("auto", "csr", "sellc", "band").
func ParseKernelKind(s string) (KernelKind, error) {
	switch s {
	case "auto", "":
		return KernelAuto, nil
	case "csr":
		return KernelCSR, nil
	case "sellc", "sell", "sell-c":
		return KernelSellC, nil
	case "band", "stencil":
		return KernelBand, nil
	}
	return KernelAuto, fmt.Errorf("sparse: unknown kernel kind %q (want auto|csr|sellc|band)", s)
}

// Valid reports whether k is one of the defined kinds.
func (k KernelKind) Valid() bool { return k >= KernelAuto && k <= KernelBand }

// Kernel computes the local SpMV of one node through a concrete storage
// layout. The interior/boundary split mirrors Local: MulInterior touches only
// x[:M] and may run while the halo exchange filling x[M:] is in flight;
// MulBoundary needs the received ghost values. All implementations write
// dst[i] exactly once per covered row with the row's products accumulated in
// source entry order, so results are bitwise identical to Local.Mul.
type Kernel interface {
	// Name identifies the layout for reports ("csr", "sellc", "band", or a
	// mixed "interior+boundary" pair like "band+sellc").
	Name() string
	NNZ() int
	InteriorNNZ() int
	BoundaryNNZ() int
	Mul(dst, x []float64)
	MulInterior(dst, x []float64)
	MulBoundary(dst, x []float64)
}

// Name implements Kernel for the generic CSR fallback.
func (l *Local) Name() string { return "csr" }

// blockMul multiplies one row block (the interior or boundary rows) of a
// local matrix.
type blockMul interface {
	mul(dst, x []float64)
	nnz() int
	name() string
}

// planned is a Kernel assembled from one blockMul per row block. The two
// blocks partition the local rows, and rows are independent (each writes only
// its own dst entry), so Mul may run them back to back in any order and still
// match Local.Mul bit for bit.
type planned struct {
	interior blockMul
	boundary blockMul
	label    string
}

func (p *planned) Name() string                 { return p.label }
func (p *planned) NNZ() int                     { return p.interior.nnz() + p.boundary.nnz() }
func (p *planned) InteriorNNZ() int             { return p.interior.nnz() }
func (p *planned) BoundaryNNZ() int             { return p.boundary.nnz() }
func (p *planned) MulInterior(dst, x []float64) { p.interior.mul(dst, x) }
func (p *planned) MulBoundary(dst, x []float64) { p.boundary.mul(dst, x) }
func (p *planned) Mul(dst, x []float64) {
	p.interior.mul(dst, x)
	p.boundary.mul(dst, x)
}

// csrRows is the scalar CSR traversal over an explicit row subset — the
// layout Local.MulInterior/MulBoundary already use, packaged as a blockMul.
type csrRows struct {
	l    *Local
	rows []int
	nz   int
}

func newCSRRows(l *Local, rows []int) *csrRows {
	nz := 0
	for _, i := range rows {
		nz += l.RowPtr[i+1] - l.RowPtr[i]
	}
	return &csrRows{l: l, rows: rows, nz: nz}
}

func (c *csrRows) name() string { return "csr" }
func (c *csrRows) nnz() int     { return c.nz }

func (c *csrRows) mul(dst, x []float64) {
	for _, i := range c.rows {
		dst[i] = c.l.mulRow(i, x)
	}
}

// BuildKernel derives the SpMV kernel of kind for a local matrix. KernelCSR
// returns the Local itself; the other kinds build per-block layouts from the
// Local's storage (per-row source entry order preserved). KernelAuto runs the
// per-block planner; forced kinds apply the same layout to both blocks.
func BuildKernel(l *Local, kind KernelKind) Kernel {
	switch kind {
	case KernelCSR:
		return l
	case KernelSellC:
		return assemble(newSellRows(l, l.InteriorRows), newSellRows(l, l.BoundaryRows))
	case KernelBand:
		return assemble(newBandRows(l, l.InteriorRows), newBandRows(l, l.BoundaryRows))
	case KernelAuto:
		ik := planBlock(l, l.InteriorRows)
		bk := planBlock(l, l.BoundaryRows)
		if ik.name() == "csr" && bk.name() == "csr" {
			return l // both blocks degenerate: the Local is the kernel
		}
		return assemble(ik, bk)
	default:
		panic(fmt.Sprintf("sparse: BuildKernel with invalid kind %d", int(kind)))
	}
}

// assemble wraps two block kernels as a planned Kernel, deriving the report
// label from the (non-empty) blocks.
func assemble(interior, boundary blockMul) *planned {
	label := ""
	switch {
	case interior.nnz() == 0 && boundary.nnz() == 0:
		label = interior.name()
	case interior.nnz() == 0:
		label = boundary.name()
	case boundary.nnz() == 0:
		label = interior.name()
	case interior.name() == boundary.name():
		label = interior.name()
	default:
		label = interior.name() + "+" + boundary.name()
	}
	return &planned{interior: interior, boundary: boundary, label: label}
}

// Planner thresholds: a block goes to the band layout when at least
// bandCoverage of its rows sit in shifted-pattern runs long enough to feed
// the unrolled band loop (rows outside runs fall back to CSR speed inside
// the band kernel, so moderate coverage already wins — a stencil slab's
// grid-edge rows break the runs at every grid line, capping coverage near
// (n-2)/n); sliced-ELL needs at least one full chunk of rows to pay for its
// gather/scatter indirection.
const (
	bandMinRun   = bandUnroll
	bandCoverage = 0.6
	// sellMaxMeanRow bounds the mean row length SELL-C is planned for.
	// Short rows leave the scalar CSR loop dominated by per-row overhead,
	// which the chunked loop amortizes over 8 rows (measured ~1.9× on
	// ragged 3-entry rows, ~1.1× at 7, parity by ~25); long regular rows
	// already saturate the load ports in CSR order, and the chunk
	// bookkeeping only costs there.
	sellMaxMeanRow = 16
)

// planBlock inspects one row block's structure and picks its layout: band
// when shifted-pattern runs dominate, SELL-C for any block with at least one
// full chunk of rows, scalar CSR for tiny remainders.
func planBlock(l *Local, rows []int) blockMul {
	if len(rows) == 0 {
		return newCSRRows(l, rows)
	}
	band := newBandRows(l, rows)
	if float64(band.coveredRows()) >= bandCoverage*float64(len(rows)) {
		return band
	}
	if len(rows) >= sellChunk && band.nnz() <= sellMaxMeanRow*len(rows) {
		return newSellRows(l, rows)
	}
	return newCSRRows(l, rows)
}
