// Package sparse implements compressed sparse row (CSR) matrices and the
// structural operations the ESR/ESRP algorithms need: sequential SpMV,
// submatrix extraction by index range (A[If,If], A[If,I\If]), symmetry
// checks, bandwidth statistics, and Matrix Market I/O.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row format.
type CSR struct {
	Rows, Cols int
	RowPtr     []int     // len Rows+1
	ColIdx     []int     // len nnz, column indices, sorted within each row
	Val        []float64 // len nnz
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.ColIdx) }

// Row returns the column indices and values of row i as sub-slices of the
// matrix storage (do not modify the index slice).
func (a *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColIdx[lo:hi], a.Val[lo:hi]
}

// At returns A(i,j), using binary search within row i.
func (a *CSR) At(i, j int) float64 {
	cols, vals := a.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// MulVec computes dst = A*x sequentially. dst must have length Rows and must
// not alias x.
func (a *CSR) MulVec(dst, x []float64) {
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		var s float64
		for k := lo; k < hi; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		dst[i] = s
	}
}

// MulVecRows computes dst = (A x) restricted to rows [r0,r1): dst[i-r0] holds
// row i of the product. This is the local kernel of the distributed SpMV,
// where x is a full-length vector assembled from local plus received entries.
func (a *CSR) MulVecRows(dst, x []float64, r0, r1 int) {
	for i := r0; i < r1; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		var s float64
		for k := lo; k < hi; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		dst[i-r0] = s
	}
}

// Diag returns a copy of the main diagonal.
func (a *CSR) Diag() []float64 {
	d := make([]float64, min(a.Rows, a.Cols))
	for i := range d {
		d[i] = a.At(i, i)
	}
	return d
}

// IsSymmetric reports whether the matrix is structurally and numerically
// symmetric within absolute tolerance tol. Cost O(nnz log nnz-per-row).
func (a *CSR) IsSymmetric(tol float64) bool {
	if a.Rows != a.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if math.Abs(vals[k]-a.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Bandwidth returns the maximum |i-j| over stored entries.
func (a *CSR) Bandwidth() int {
	bw := 0
	for i := 0; i < a.Rows; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			if d := max(i-j, j-i); d > bw {
				bw = d
			}
		}
	}
	return bw
}

// SubRange extracts the dense submatrix A[r0:r1, c0:c1) as a CSR with local
// (shifted) indices. Used for A[If,If] when the failed index set If is a
// contiguous range, which it always is for contiguous-rank failures under a
// block row distribution.
func (a *CSR) SubRange(r0, r1, c0, c1 int) *CSR {
	nb := NewBuilder(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if j >= c0 && j < c1 {
				nb.Add(i-r0, j-c0, vals[k])
			}
		}
	}
	return nb.Build()
}

// SubRowsOutsideCols extracts rows [r0,r1) with only the columns *outside*
// [c0,c1), keeping global column indices. This is A[If, I\If] from Alg. 2.
func (a *CSR) SubRowsOutsideCols(r0, r1, c0, c1 int) *CSR {
	nb := NewBuilder(r1-r0, a.Cols)
	for i := r0; i < r1; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if j < c0 || j >= c1 {
				nb.Add(i-r0, j, vals[k])
			}
		}
	}
	return nb.Build()
}

// Dense materializes the matrix as row-major dense storage (testing helper;
// quadratic memory — small matrices only).
func (a *CSR) Dense() []float64 {
	d := make([]float64, a.Rows*a.Cols)
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			d[i*a.Cols+j] = vals[k]
		}
	}
	return d
}

// ColRangeOfRow returns the smallest and largest column index stored in row i,
// or (-1,-1) for an empty row.
func (a *CSR) ColRangeOfRow(i int) (lo, hi int) {
	cols, _ := a.Row(i)
	if len(cols) == 0 {
		return -1, -1
	}
	return cols[0], cols[len(cols)-1]
}

// Validate checks structural invariants (monotone RowPtr, sorted unique
// column indices in range). It returns a descriptive error on violation.
func (a *CSR) Validate() error {
	if len(a.RowPtr) != a.Rows+1 {
		return fmt.Errorf("sparse: RowPtr has length %d, want %d", len(a.RowPtr), a.Rows+1)
	}
	if a.RowPtr[0] != 0 || a.RowPtr[a.Rows] != len(a.ColIdx) || len(a.ColIdx) != len(a.Val) {
		return fmt.Errorf("sparse: inconsistent storage lengths")
	}
	for i := 0; i < a.Rows; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		cols, _ := a.Row(i)
		for k, j := range cols {
			if j < 0 || j >= a.Cols {
				return fmt.Errorf("sparse: row %d has column %d out of range [0,%d)", i, j, a.Cols)
			}
			if k > 0 && cols[k-1] >= j {
				return fmt.Errorf("sparse: row %d columns not strictly increasing at position %d", i, k)
			}
		}
	}
	return nil
}

// Builder accumulates COO triplets and assembles a CSR matrix. Duplicate
// (i,j) entries are summed, which makes finite-element-style assembly of the
// generator stencils straightforward.
type Builder struct {
	rows, cols int
	i, j       []int
	v          []float64
}

// NewBuilder returns a Builder for an rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Add appends the triplet (i,j,v).
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of %dx%d", i, j, b.rows, b.cols))
	}
	b.i = append(b.i, i)
	b.j = append(b.j, j)
	b.v = append(b.v, v)
}

// AddSym appends (i,j,v) and, if i != j, (j,i,v).
func (b *Builder) AddSym(i, j int, v float64) {
	b.Add(i, j, v)
	if i != j {
		b.Add(j, i, v)
	}
}

// NNZ returns the number of accumulated triplets (before duplicate merging).
func (b *Builder) NNZ() int { return len(b.v) }

// Build assembles the CSR, sorting rows, merging duplicates, and dropping
// explicit zeros that result from exact cancellation.
func (b *Builder) Build() *CSR {
	// Counting sort by row.
	count := make([]int, b.rows+1)
	for _, i := range b.i {
		count[i+1]++
	}
	for i := 0; i < b.rows; i++ {
		count[i+1] += count[i]
	}
	perm := make([]int, len(b.i))
	next := make([]int, b.rows)
	for k, i := range b.i {
		perm[count[i]+next[i]] = k
		next[i]++
	}
	rowPtr := make([]int, b.rows+1)
	colIdx := make([]int, 0, len(b.i))
	val := make([]float64, 0, len(b.i))
	type ent struct {
		j int
		v float64
	}
	var scratch []ent
	for i := 0; i < b.rows; i++ {
		scratch = scratch[:0]
		for k := count[i]; k < count[i+1]; k++ {
			t := perm[k]
			scratch = append(scratch, ent{b.j[t], b.v[t]})
		}
		sort.Slice(scratch, func(x, y int) bool { return scratch[x].j < scratch[y].j })
		for k := 0; k < len(scratch); {
			j := scratch[k].j
			var s float64
			for k < len(scratch) && scratch[k].j == j {
				s += scratch[k].v
				k++
			}
			colIdx = append(colIdx, j)
			val = append(val, s)
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &CSR{Rows: b.rows, Cols: b.cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// FromDense builds a CSR from row-major dense storage, dropping entries with
// |v| <= drop.
func FromDense(rows, cols int, data []float64, drop float64) *CSR {
	b := NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := data[i*cols+j]; math.Abs(v) > drop {
				b.Add(i, j, v)
			}
		}
	}
	return b.Build()
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSR {
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 1)
	}
	return b.Build()
}
