package sparse

import (
	"fmt"
	"sort"
)

// Local is the per-node view of a square CSR matrix under a block row
// distribution: the rows [Lo,Hi) with every column renumbered into the
// compact index space
//
//	[0, M)      — owned columns (global j ↦ j−Lo), and
//	[M, M+G())  — ghost columns (global j ↦ M + position of j in Ghost).
//
// A node holding a Local needs only O(M + nnz(local) + G) memory instead of
// the O(n) a full-length halo buffer costs, which is what makes the solver's
// per-node footprint independent of the global problem size.
//
// Rows are split by structure into *interior* rows, which reference no ghost
// column and can therefore be multiplied before the halo exchange completes,
// and *boundary* rows, which must wait for the ghost values. The split is
// what the overlapped SpMV data path (aspmv.Exchanger Start/Finish) computes
// against.
//
// The entry order within each row is preserved from the source matrix, so
// per-row products accumulate in the same order as CSR.MulVecRows on the
// global matrix and the distributed solver trajectories stay bitwise
// identical to the full-length path.
type Local struct {
	Lo, Hi int   // owned global row range
	M      int   // Hi − Lo
	Ghost  []int // sorted global indices of the ghost columns (not owned)

	RowPtr []int     // len M+1
	Cols   []int     // compact column indices, source order per row
	Vals   []float64 // entry values

	// InteriorRows and BoundaryRows partition [0,M) (compact row indices,
	// each ascending): interior rows reference owned columns only.
	InteriorRows []int
	BoundaryRows []int

	nnzInterior int
	nnzBoundary int
}

// NewLocal extracts the local view of rows [lo,hi) of a. ghost must be the
// sorted set of all columns outside [lo,hi) referenced by those rows —
// exactly what aspmv.Plan.Ghost provides; the slice is retained, not copied.
// Supersets are allowed (unreferenced ghost entries simply waste a slot);
// a referenced column missing from ghost is an error.
func NewLocal(a *CSR, lo, hi int, ghost []int) (*Local, error) {
	if lo < 0 || hi > a.Rows || lo > hi {
		return nil, fmt.Errorf("sparse: local row range [%d,%d) invalid for %d rows", lo, hi, a.Rows)
	}
	for k := 1; k < len(ghost); k++ {
		if ghost[k] <= ghost[k-1] {
			return nil, fmt.Errorf("sparse: ghost indices must be sorted and unique, got %d after %d", ghost[k], ghost[k-1])
		}
	}
	m := hi - lo
	l := &Local{
		Lo: lo, Hi: hi, M: m, Ghost: ghost,
		RowPtr: make([]int, m+1),
		Cols:   make([]int, 0, a.RowPtr[hi]-a.RowPtr[lo]),
		Vals:   make([]float64, 0, a.RowPtr[hi]-a.RowPtr[lo]),
	}
	for i := lo; i < hi; i++ {
		cols, vals := a.Row(i)
		interior := true
		// Values carry over untransformed: one bulk copy per row. Only the
		// column indices need the compact renumbering.
		l.Vals = append(l.Vals, vals...)
		base := len(l.Cols)
		l.Cols = l.Cols[:base+len(cols)]
		out := l.Cols[base:]
		// Ghost lookups amortize over the row: columns ascend within a CSR
		// row and the ghost set is sorted, so after one binary search for
		// the row's first ghost column the cursor only advances linearly.
		g := -1
		for k, j := range cols {
			if j >= lo && j < hi {
				out[k] = j - lo
				continue
			}
			if g < 0 {
				g = sort.SearchInts(ghost, j)
			} else {
				// Short forward scan for the common adjacent-ghost case; a
				// long jump (e.g. to the next halo plane) re-searches only
				// the remaining tail.
				for lim := g + 8; g < len(ghost) && ghost[g] < j; g++ {
					if g == lim {
						g += sort.SearchInts(ghost[g:], j)
						break
					}
				}
			}
			if g == len(ghost) || ghost[g] != j {
				return nil, fmt.Errorf("sparse: row %d references column %d missing from the ghost set", i, j)
			}
			out[k] = m + g
			interior = false
		}
		l.RowPtr[i-lo+1] = len(l.Cols)
		if interior {
			l.InteriorRows = append(l.InteriorRows, i-lo)
			l.nnzInterior += len(cols)
		} else {
			l.BoundaryRows = append(l.BoundaryRows, i-lo)
			l.nnzBoundary += len(cols)
		}
	}
	return l, nil
}

// G returns the number of ghost columns.
func (l *Local) G() int { return len(l.Ghost) }

// NNZ returns the number of stored entries.
func (l *Local) NNZ() int { return len(l.Cols) }

// InteriorNNZ returns the entries in interior rows.
func (l *Local) InteriorNNZ() int { return l.nnzInterior }

// BoundaryNNZ returns the entries in boundary rows.
func (l *Local) BoundaryNNZ() int { return l.nnzBoundary }

// CompactCol maps a global column index to its compact index, or -1 if the
// column is neither owned nor in the ghost set.
func (l *Local) CompactCol(j int) int {
	if j >= l.Lo && j < l.Hi {
		return j - l.Lo
	}
	g := sort.SearchInts(l.Ghost, j)
	if g < len(l.Ghost) && l.Ghost[g] == j {
		return l.M + g
	}
	return -1
}

// GlobalCol maps a compact column index back to the global index.
func (l *Local) GlobalCol(c int) int {
	if c < l.M {
		return l.Lo + c
	}
	return l.Ghost[c-l.M]
}

// Row returns the compact column indices and values of local row i (source
// order; sub-slices of the storage, do not modify).
func (l *Local) Row(i int) (cols []int, vals []float64) {
	lo, hi := l.RowPtr[i], l.RowPtr[i+1]
	return l.Cols[lo:hi], l.Vals[lo:hi]
}

// mulRow accumulates local row i of the product against the assembled
// owned+ghost vector x (length M+G).
func (l *Local) mulRow(i int, x []float64) float64 {
	lo, hi := l.RowPtr[i], l.RowPtr[i+1]
	cols := l.Cols[lo:hi]
	vals := l.Vals[lo:hi]
	var s float64
	for k, v := range vals {
		s += v * x[cols[k]]
	}
	return s
}

// Mul computes dst = A_local · x over all local rows. x is the assembled
// owned+ghost vector of length M+G(); dst has length M.
func (l *Local) Mul(dst, x []float64) {
	for i := 0; i < l.M; i++ {
		dst[i] = l.mulRow(i, x)
	}
}

// MulInterior computes the interior rows of the product. Interior rows read
// only x[:M], so the call may run while the halo exchange filling x[M:] is
// still in flight.
func (l *Local) MulInterior(dst, x []float64) {
	for _, i := range l.InteriorRows {
		dst[i] = l.mulRow(i, x)
	}
}

// MulBoundary computes the boundary rows of the product; x[M:] must hold the
// received ghost values.
func (l *Local) MulBoundary(dst, x []float64) {
	for _, i := range l.BoundaryRows {
		dst[i] = l.mulRow(i, x)
	}
}
