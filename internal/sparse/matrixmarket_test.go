package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestReadMatrixMarketGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 1 2.0
2 2 3.0
3 3 4.0
1 3 -1.5
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 3 || a.Cols != 3 || a.NNZ() != 4 {
		t.Fatalf("dims %dx%d nnz %d", a.Rows, a.Cols, a.NNZ())
	}
	if a.At(0, 2) != -1.5 || a.At(1, 1) != 3 {
		t.Fatal("wrong entries")
	}
}

func TestReadMatrixMarketSymmetricExpands(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 2.0
2 1 -1.0
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != -1 || a.At(1, 0) != -1 {
		t.Fatal("symmetric storage not expanded")
	}
	if a.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", a.NNZ())
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 || a.At(1, 1) != 1 {
		t.Fatal("pattern entries must be 1")
	}
}

func TestReadMatrixMarketRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not a header\n1 1 0\n",
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n", // missing entry
	} {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q must be rejected", in)
		}
	}
}

func TestWriteReadRoundTripGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomCSR(rng, 9, 7, 0.3) // rectangular → general storage
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != b.NNZ() || a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("round trip changed shape: %dx%d/%d vs %dx%d/%d",
			a.Rows, a.Cols, a.NNZ(), b.Rows, b.Cols, b.NNZ())
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("(%d,%d): %g vs %g", i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
}

func TestWriteReadRoundTripSymmetric(t *testing.T) {
	a := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "symmetric") {
		t.Fatal("symmetric matrix should be written in symmetric storage")
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("(%d,%d): %g vs %g", i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
}
