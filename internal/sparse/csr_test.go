package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSmall(t *testing.T) *CSR {
	t.Helper()
	// [ 2 -1  0 ]
	// [-1  2 -1 ]
	// [ 0 -1  2 ]
	b := NewBuilder(3, 3)
	for i := 0; i < 3; i++ {
		b.Add(i, i, 2)
	}
	b.AddSym(0, 1, -1)
	b.AddSym(1, 2, -1)
	a := b.Build()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	b := NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				b.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2)
	b.Add(1, 1, 5)
	a := b.Build()
	if a.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (duplicates merged)", a.NNZ())
	}
	if a.At(0, 0) != 3 {
		t.Fatalf("At(0,0) = %g, want 3 (summed)", a.At(0, 0))
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range must panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestAtAndRow(t *testing.T) {
	a := buildSmall(t)
	if a.At(1, 0) != -1 || a.At(1, 1) != 2 || a.At(0, 2) != 0 {
		t.Fatal("At returned wrong values")
	}
	cols, vals := a.Row(1)
	if len(cols) != 3 || cols[0] != 0 || vals[1] != 2 {
		t.Fatalf("Row(1): cols=%v vals=%v", cols, vals)
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCSR(rng, 17, 13, 0.3)
	d := a.Dense()
	x := make([]float64, 13)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, 17)
	a.MulVec(got, x)
	for i := 0; i < 17; i++ {
		var want float64
		for j := 0; j < 13; j++ {
			want += d[i*13+j] * x[j]
		}
		if math.Abs(got[i]-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("MulVec[%d] = %g, want %g", i, got[i], want)
		}
	}
}

func TestMulVecRows(t *testing.T) {
	a := buildSmall(t)
	x := []float64{1, 2, 3}
	full := make([]float64, 3)
	a.MulVec(full, x)
	part := make([]float64, 2)
	a.MulVecRows(part, x, 1, 3)
	if part[0] != full[1] || part[1] != full[2] {
		t.Fatalf("MulVecRows: got %v, want %v", part, full[1:])
	}
}

func TestDiag(t *testing.T) {
	a := buildSmall(t)
	d := a.Diag()
	if len(d) != 3 || d[0] != 2 || d[2] != 2 {
		t.Fatalf("Diag = %v", d)
	}
}

func TestIsSymmetric(t *testing.T) {
	a := buildSmall(t)
	if !a.IsSymmetric(0) {
		t.Fatal("tridiagonal Laplacian must be symmetric")
	}
	b := NewBuilder(2, 2)
	b.Add(0, 1, 1)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	if b.Build().IsSymmetric(0) {
		t.Fatal("asymmetric pattern reported symmetric")
	}
}

func TestBandwidth(t *testing.T) {
	a := buildSmall(t)
	if bw := a.Bandwidth(); bw != 1 {
		t.Fatalf("Bandwidth = %d, want 1", bw)
	}
	if bw := Identity(5).Bandwidth(); bw != 0 {
		t.Fatalf("Identity bandwidth = %d, want 0", bw)
	}
}

func TestSubRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomCSR(rng, 12, 12, 0.4)
	s := a.SubRange(3, 9, 3, 9)
	if s.Rows != 6 || s.Cols != 6 {
		t.Fatalf("SubRange dims %dx%d, want 6x6", s.Rows, s.Cols)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if s.At(i, j) != a.At(i+3, j+3) {
				t.Fatalf("SubRange(%d,%d) = %g, want %g", i, j, s.At(i, j), a.At(i+3, j+3))
			}
		}
	}
}

func TestSubRowsOutsideCols(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomCSR(rng, 10, 10, 0.5)
	s := a.SubRowsOutsideCols(2, 5, 2, 5)
	if s.Rows != 3 || s.Cols != 10 {
		t.Fatalf("dims %dx%d, want 3x10", s.Rows, s.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 10; j++ {
			want := a.At(i+2, j)
			if j >= 2 && j < 5 {
				want = 0
			}
			if s.At(i, j) != want {
				t.Fatalf("(%d,%d) = %g, want %g", i, j, s.At(i, j), want)
			}
		}
	}
}

func TestColRangeOfRow(t *testing.T) {
	a := buildSmall(t)
	lo, hi := a.ColRangeOfRow(1)
	if lo != 0 || hi != 2 {
		t.Fatalf("ColRangeOfRow(1) = (%d,%d), want (0,2)", lo, hi)
	}
	empty := NewBuilder(2, 2).Build()
	if lo, hi := empty.ColRangeOfRow(0); lo != -1 || hi != -1 {
		t.Fatalf("empty row range = (%d,%d), want (-1,-1)", lo, hi)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	a := buildSmall(t)
	a.ColIdx[0] = 99
	if err := a.Validate(); err == nil {
		t.Fatal("Validate must reject out-of-range column")
	}
}

func TestFromDense(t *testing.T) {
	d := []float64{1, 0, 0, 2}
	a := FromDense(2, 2, d, 0)
	if a.NNZ() != 2 || a.At(0, 0) != 1 || a.At(1, 1) != 2 {
		t.Fatalf("FromDense: %v", a)
	}
}

func TestIdentity(t *testing.T) {
	a := Identity(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	a.MulVec(y, x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("Identity·x ≠ x at %d", i)
		}
	}
}

// Property: Build→Dense→FromDense round-trips for random matrices.
func TestCSRDenseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(15), 1+rng.Intn(15)
		a := randomCSR(rng, rows, cols, 0.3)
		b := FromDense(rows, cols, a.Dense(), 0)
		if a.NNZ() != b.NNZ() {
			return false
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if a.At(i, j) != b.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: SubRange(0,n,0,n) is the identity transformation.
func TestSubRangeFullIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randomCSR(rng, n, n, 0.4)
		s := a.SubRange(0, n, 0, n)
		if s.NNZ() != a.NNZ() {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if s.At(i, j) != a.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
