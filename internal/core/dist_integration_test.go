package core

import (
	"testing"

	"esrp/internal/dist"
	"esrp/internal/matgen"
	"esrp/internal/vec"
)

// The balanced distribution changes only data placement, never the Krylov
// process: a solve with BalanceNNZ must land on the same solution as the
// uniform block split, on an SPD problem with a known ground truth.
func TestBalancedPartitionSameSolutionAsUniform(t *testing.T) {
	a := skewedSPD(600)
	b, xstar := matgen.RHSForSolution(a, 9)

	uniform := solveOK(t, Config{A: a, B: b, Nodes: 6, CostModel: fastModel()})
	balanced := solveOK(t, Config{A: a, B: b, Nodes: 6, BalanceNNZ: true, CostModel: fastModel()})

	if d := vec.MaxAbsDiff(uniform.X, xstar); d > 1e-5 {
		t.Fatalf("uniform solve off the ground truth by %g", d)
	}
	if d := vec.MaxAbsDiff(balanced.X, xstar); d > 1e-5 {
		t.Fatalf("balanced solve off the ground truth by %g", d)
	}
	if d := vec.MaxAbsDiff(uniform.X, balanced.X); d > 1e-5 {
		t.Fatalf("balanced and uniform solutions differ by %g", d)
	}
}

// buildPartition must hand the solver exactly the partition the dist
// package computes for the documented weight model.
func TestBuildPartitionMatchesDist(t *testing.T) {
	a := skewedSPD(400)
	cfg := Config{A: a, B: make([]float64, a.Rows), Nodes: 5, MaxBlock: 10, BalanceNNZ: true}
	got, err := PartitionFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perRow := 16.0 + 2*float64(cfg.MaxBlock)
	weights := make([]float64, a.Rows)
	for i := range weights {
		weights[i] = 2*float64(a.RowPtr[i+1]-a.RowPtr[i]) + perRow
	}
	want, err := dist.NewBalancedWeightPartition(weights, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("buildPartition gave %v, want %v", got, want)
	}
	// Without balancing it must be the uniform block split.
	cfg.BalanceNNZ = false
	got, err = PartitionFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(dist.NewBlockPartition(a.Rows, 5)) {
		t.Fatalf("uniform buildPartition gave %v", got)
	}
}

// The no-spare recovery's repartitioning is dist.ShrinkAfterLoss; assert
// the shrunken layout it continues on is the one the helper predicts.
func TestNoSpareShrinkMatchesDistHelper(t *testing.T) {
	a := skewedSPD(800)
	b, _ := matgen.RHSForSolution(a, 4)
	nodes := 8
	failed := []int{2, 3}
	cfg := Config{
		A: a, B: b, Nodes: nodes,
		Strategy: StrategyESRP, T: 10, Phi: 2,
		NoSpareNodes: true,
		Failure:      &FailureSpec{Iteration: 15, Ranks: failed},
		CostModel:    fastModel(),
	}
	res := solveOK(t, cfg)
	if res.ActiveNodes != nodes-len(failed) {
		t.Fatalf("ActiveNodes = %d, want %d", res.ActiveNodes, nodes-len(failed))
	}
	part := dist.NewBlockPartition(a.Rows, nodes)
	survivors := []int{0, 1, 4, 5, 6, 7}
	shrunk, err := part.ShrinkAfterLoss(survivors)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.N != res.ActiveNodes {
		t.Fatalf("predicted %d parts, solver continued on %d nodes", shrunk.N, res.ActiveNodes)
	}
	// The adopter (old rank 4, new rank 2) absorbs the failed block.
	wantLo, wantHi := part.Lo(failed[0]), part.Hi(4)
	if shrunk.Lo(2) != wantLo || shrunk.Hi(2) != wantHi {
		t.Fatalf("adopter range [%d,%d), want [%d,%d)", shrunk.Lo(2), shrunk.Hi(2), wantLo, wantHi)
	}
	checkSolution(t, cfg, res, 5e-8)
}
