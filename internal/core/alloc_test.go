package core

import (
	"runtime/debug"
	"testing"

	"esrp/internal/sparse"
)

// perIterationAllocs measures the marginal heap allocations of one extra CG
// iteration: two fixed-length solves (unreachable tolerance) that differ
// only in MaxIter, sharing a Prepared context and a Workspace exactly like
// campaign cells do. Setup allocations (goroutines, exchanger, result
// gather) are identical on both sides and cancel; what remains is the
// steady-state loop — solver vector updates, Exchanger Start/Finish, and
// the arena collectives — which the zero-allocation hot path must keep off
// the heap entirely.
func perIterationAllocs(t *testing.T, mut func(*Config)) float64 {
	t.Helper()
	base := baseConfig(t)
	base.Rtol = 1e-300 // never converges: iteration count == MaxIter
	mut(&base)

	prep, err := Prepare(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Prepared = prep
	base.Workspace = NewWorkspace()

	solve := func(iters int) {
		cfg := base
		cfg.MaxIter = iters
		res, err := Solve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations != iters {
			t.Fatalf("expected fixed-length run of %d iterations, got %d", iters, res.Iterations)
		}
	}
	solve(130) // warm the workspace, pools and arena banks
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const short, long = 30, 130
	aShort := testing.AllocsPerRun(5, func() { solve(short) })
	aLong := testing.AllocsPerRun(5, func() { solve(long) })
	return (aLong - aShort) / float64(long-short)
}

// TestSolveIterationZeroAlloc gates the steady-state CG iteration at zero
// heap allocations per iteration across the strategies: the plain loop, the
// every-iteration augmented exchange of ESR (ReceivedCopy retention through
// the recycle pool), ESRP's periodic storage stages, and IMCR's buddy
// checkpoints (payload buffers reused, superseded ones released). The whole
// table runs once per forced SpMV kernel on top of the suite's default
// (ESRP_TEST_KERNEL or auto), so no storage layout can smuggle a
// per-iteration allocation into the product path.
func TestSolveIterationZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; gate runs in the non-race job")
	}
	strategies := []struct {
		name string
		mut  func(*Config)
	}{
		{"none", func(cfg *Config) {}},
		{"esr", func(cfg *Config) { cfg.Strategy = StrategyESR; cfg.Phi = 1 }},
		{"esrp-T10", func(cfg *Config) { cfg.Strategy = StrategyESRP; cfg.T = 10; cfg.Phi = 1 }},
		{"imcr-T10", func(cfg *Config) { cfg.Strategy = StrategyIMCR; cfg.T = 10; cfg.Phi = 1 }},
	}
	kernels := []sparse.KernelKind{testKernel(t)}
	for _, kind := range []sparse.KernelKind{sparse.KernelCSR, sparse.KernelSellC, sparse.KernelBand} {
		if kind != kernels[0] {
			kernels = append(kernels, kind)
		}
	}
	for _, kind := range kernels {
		for _, sub := range strategies {
			t.Run(kind.String()+"/"+sub.name, func(t *testing.T) {
				mut := func(cfg *Config) {
					cfg.Kernel = kind
					sub.mut(cfg)
				}
				// A genuine leak shows up at ≥ 1 alloc per iteration (1.0) or per
				// checkpoint stage (≥ 0.1 at T=10); the threshold tolerates only
				// the ±1-per-solve constant of runtime internals (goroutine park
				// bookkeeping) that the fixed-length delta cannot fully cancel.
				if per := perIterationAllocs(t, mut); per > 0.02 {
					t.Fatalf("steady-state CG iteration allocates %.2f times (want 0)", per)
				}
			})
		}
	}
}

// TestWorkspaceReuseKeepsTrajectory pins the campaign-style reuse path to
// the fresh-allocation path bit for bit: same Prepared + Workspace solves,
// including a failure/recovery cell, must reproduce the residual trajectory
// and iterand of an isolated solve exactly — a recycled buffer that leaks
// one stale value would show up here.
func TestWorkspaceReuseKeepsTrajectory(t *testing.T) {
	scenarios := localPathScenarios(t)
	ws := NewWorkspace()
	for _, name := range []string{"none-ff", "esr-fail", "esrp-fail", "imcr-fail", "esrp-nospare-fail"} {
		cfg, ok := scenarios[name]
		if !ok {
			t.Fatalf("missing scenario %s", name)
		}
		fresh, err := Solve(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prep, err := Prepare(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Two reused runs back to back: the second consumes buffers the
		// first left dirty.
		for pass := 0; pass < 2; pass++ {
			reused := cfg
			reused.Prepared = prep
			reused.Workspace = ws
			res, err := Solve(reused)
			if err != nil {
				t.Fatalf("%s pass %d: %v", name, pass, err)
			}
			if len(res.Residuals) != len(fresh.Residuals) {
				t.Fatalf("%s pass %d: residual log %d entries, fresh %d", name, pass, len(res.Residuals), len(fresh.Residuals))
			}
			for i := range res.Residuals {
				if res.Residuals[i] != fresh.Residuals[i] {
					t.Fatalf("%s pass %d: residual %d = %v, fresh %v (must be bitwise identical)",
						name, pass, i, res.Residuals[i], fresh.Residuals[i])
				}
			}
			for i := range res.X {
				if res.X[i] != fresh.X[i] {
					t.Fatalf("%s pass %d: x[%d] = %v, fresh %v", name, pass, i, res.X[i], fresh.X[i])
				}
			}
			if res.SimTime != fresh.SimTime || res.BytesSent != fresh.BytesSent {
				t.Fatalf("%s pass %d: clock/traffic (%v,%d) differ from fresh (%v,%d)",
					name, pass, res.SimTime, res.BytesSent, fresh.SimTime, fresh.BytesSent)
			}
		}
	}
}

// TestPreparedRejectsMismatch: silently reusing a context built for other
// settings would corrupt trajectories, so compatibility is validated.
func TestPreparedRejectsMismatch(t *testing.T) {
	cfg := baseConfig(t)
	prep, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Strategy = StrategyESR // needs an augmented plan; prep's is plain
	bad.Phi = 1
	bad.Prepared = prep
	if _, err := Solve(bad); err == nil {
		t.Fatal("Solve accepted a Prepared context with mismatched augmentation")
	}
	bad2 := cfg
	bad2.Nodes = cfg.Nodes * 2
	bad2.Prepared = prep
	if _, err := Solve(bad2); err == nil {
		t.Fatal("Solve accepted a Prepared context for the wrong node count")
	}
}
