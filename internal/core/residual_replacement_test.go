package core

import (
	"math"
	"testing"
)

func TestResidualReplacementReducesDrift(t *testing.T) {
	// With periodic replacement the recurrence residual is re-anchored to
	// b − A·x, so |drift| (Eq. 2) must not grow beyond the plain solver's.
	plain := baseConfig(t)
	plainRes := solveOK(t, plain)

	rr := baseConfig(t)
	rr.ResidualReplacementInterval = 20
	rrRes := solveOK(t, rr)

	if math.Abs(rrRes.Drift) > math.Abs(plainRes.Drift)+1e-12 {
		t.Fatalf("replacement drift %g worse than plain %g", rrRes.Drift, plainRes.Drift)
	}
	if !rrRes.Converged {
		t.Fatal("did not converge with residual replacement")
	}
	checkSolution(t, rr, rrRes, 5e-8)
}

func TestResidualReplacementCostsTime(t *testing.T) {
	plain := baseConfig(t)
	plainRes := solveOK(t, plain)
	rr := baseConfig(t)
	rr.ResidualReplacementInterval = 10
	rrRes := solveOK(t, rr)
	if rrRes.SimTime <= plainRes.SimTime {
		t.Fatalf("replacement must cost modeled time: %g vs %g", rrRes.SimTime, plainRes.SimTime)
	}
}

func TestResidualReplacementWithESRPRecovery(t *testing.T) {
	// The replacement keeps p = z + β·p_prev valid, so exact reconstruction
	// must still hold along the replaced trajectory.
	cfg := baseConfig(t)
	cfg.ResidualReplacementInterval = 15
	cfg.Strategy = StrategyESRP
	cfg.T = 10
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: 38, Ranks: []int{3}}
	res := checkExactRecovery(t, cfg, 3)
	if res.RecoveredAt != 31 {
		t.Fatalf("RecoveredAt = %d, want 31", res.RecoveredAt)
	}
}

func TestResidualReplacementDeterministic(t *testing.T) {
	cfg := baseConfig(t)
	cfg.ResidualReplacementInterval = 25
	r1 := solveOK(t, cfg)
	r2 := solveOK(t, cfg)
	if r1.Iterations != r2.Iterations || r1.SimTime != r2.SimTime {
		t.Fatalf("nondeterministic: %d/%g vs %d/%g", r1.Iterations, r1.SimTime, r2.Iterations, r2.SimTime)
	}
}
