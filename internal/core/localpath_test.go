package core

import (
	"testing"
)

// localPathScenarios covers every strategy/recovery path the overlapped
// compact SpMV must leave bit-for-bit unchanged.
func localPathScenarios(t *testing.T) map[string]Config {
	t.Helper()
	mk := func(mut func(*Config)) Config {
		cfg := baseConfig(t)
		cfg.RecordResiduals = true
		mut(&cfg)
		return cfg
	}
	return map[string]Config{
		"none-ff": mk(func(cfg *Config) {}),
		"esr-fail": mk(func(cfg *Config) {
			cfg.Strategy = StrategyESR
			cfg.Phi = 1
			cfg.Failure = &FailureSpec{Iteration: 40, Ranks: []int{3}}
		}),
		"esrp-fail": mk(func(cfg *Config) {
			cfg.Strategy = StrategyESRP
			cfg.T = 10
			cfg.Phi = 2
			cfg.Failure = &FailureSpec{Iteration: 28, Ranks: []int{1, 2}}
		}),
		"imcr-fail": mk(func(cfg *Config) {
			cfg.Strategy = StrategyIMCR
			cfg.T = 10
			cfg.Phi = 1
			cfg.Failure = &FailureSpec{Iteration: 33, Ranks: []int{4}}
		}),
		"esrp-nospare-fail": mk(func(cfg *Config) {
			cfg.Strategy = StrategyESRP
			cfg.T = 10
			cfg.Phi = 1
			cfg.NoSpareNodes = true
			cfg.Failure = &FailureSpec{Iteration: 28, Ranks: []int{5}}
		}),
	}
}

// TestOverlapMatchesBlockingTrajectory is the acceptance check of the
// overlapped exchange: against the blocking ablation it must produce
// bitwise-identical iterates, residual logs and recovery behavior for every
// strategy, while finishing in strictly lower simulated time — the overlap
// only reorders when clocks advance, never what is computed.
func TestOverlapMatchesBlockingTrajectory(t *testing.T) {
	for name, cfg := range localPathScenarios(t) {
		t.Run(name, func(t *testing.T) {
			blocking := cfg
			blocking.BlockingExchange = true
			over := solveOK(t, cfg)
			block := solveOK(t, blocking)

			if over.Iterations != block.Iterations || over.TotalSteps != block.TotalSteps {
				t.Fatalf("iterations differ: overlapped (%d,%d), blocking (%d,%d)",
					over.Iterations, over.TotalSteps, block.Iterations, block.TotalSteps)
			}
			if over.Recovered != block.Recovered || over.RecoveredAt != block.RecoveredAt {
				t.Fatalf("recovery behavior differs: overlapped (%v,%d), blocking (%v,%d)",
					over.Recovered, over.RecoveredAt, block.Recovered, block.RecoveredAt)
			}
			if len(over.Residuals) != len(block.Residuals) {
				t.Fatalf("residual logs differ in length: %d vs %d", len(over.Residuals), len(block.Residuals))
			}
			for i := range over.Residuals {
				if over.Residuals[i] != block.Residuals[i] {
					t.Fatalf("residual %d differs: %v vs %v (must be bitwise identical)",
						i, over.Residuals[i], block.Residuals[i])
				}
			}
			for i := range over.X {
				if over.X[i] != block.X[i] {
					t.Fatalf("x[%d] differs: %v vs %v (must be bitwise identical)", i, over.X[i], block.X[i])
				}
			}
			if over.BytesSent != block.BytesSent || over.HaloBytes != block.HaloBytes {
				t.Fatalf("traffic differs: overlapped (%d,%d), blocking (%d,%d)",
					over.BytesSent, over.HaloBytes, block.BytesSent, block.HaloBytes)
			}
			if over.SimTime >= block.SimTime {
				t.Fatalf("overlapped exchange must be strictly faster: %g >= %g simsec",
					over.SimTime, block.SimTime)
			}
		})
	}
}

// TestPipelinedOverlapMatchesBlocking repeats the identity check for the
// pipelined solver's data path.
func TestPipelinedOverlapMatchesBlocking(t *testing.T) {
	cfg := baseConfig(t)
	cfg.RecordResiduals = true
	blocking := cfg
	blocking.BlockingExchange = true
	over, err := SolvePipelined(cfg)
	if err != nil {
		t.Fatal(err)
	}
	block, err := SolvePipelined(blocking)
	if err != nil {
		t.Fatal(err)
	}
	if !over.Converged || !block.Converged {
		t.Fatal("pipelined runs did not converge")
	}
	if over.Iterations != block.Iterations {
		t.Fatalf("iterations differ: %d vs %d", over.Iterations, block.Iterations)
	}
	for i := range over.X {
		if over.X[i] != block.X[i] {
			t.Fatalf("x[%d] differs: %v vs %v", i, over.X[i], block.X[i])
		}
	}
	if over.SimTime >= block.SimTime {
		t.Fatalf("overlapped pipelined solve must be strictly faster: %g >= %g", over.SimTime, block.SimTime)
	}
}

// TestPerNodeMemoryIsLocal verifies the O(n/s + halo) footprint: doubling
// the cluster size must shrink the largest per-node state accordingly, and
// no node may hold even one full-length vector's worth of dynamic data —
// the pFull design this refactor retired held at least 8·Rows bytes each.
func TestPerNodeMemoryIsLocal(t *testing.T) {
	cfg := baseConfig(t)
	fullVec := int64(8 * cfg.A.Rows)

	cfg.Nodes = 4
	mem4 := solveOK(t, cfg).MaxNodeBytes
	cfg.Nodes = 16
	mem16 := solveOK(t, cfg).MaxNodeBytes

	if mem16 >= fullVec {
		t.Fatalf("per-node state %d B at 16 nodes exceeds one full-length vector (%d B)", mem16, fullVec)
	}
	if mem16 >= (mem4*2)/3 {
		t.Fatalf("per-node state must shrink with the cluster: %d B at 4 nodes, %d B at 16", mem4, mem16)
	}

	// Redundant storage grows the footprint but stays local too.
	cfg.Strategy = StrategyESR
	cfg.Phi = 1
	esrMem := solveOK(t, cfg).MaxNodeBytes
	if esrMem <= mem16 {
		t.Fatalf("ESR redundancy must be accounted: %d B <= plain %d B", esrMem, mem16)
	}
	if esrMem >= 2*fullVec {
		t.Fatalf("ESR per-node state %d B is not O(local+halo)", esrMem)
	}
}

// TestHaloBytesMeasured checks the measured halo accounting: nonzero for a
// coupled system, larger when the exchange is augmented with resilient
// copies, and consistent with the planned extra traffic.
func TestHaloBytesMeasured(t *testing.T) {
	cfg := baseConfig(t)
	plain := solveOK(t, cfg)
	if plain.HaloBytes <= 0 {
		t.Fatal("plain solve reports no measured halo bytes")
	}
	if plain.HaloBytes >= plain.BytesSent {
		t.Fatalf("halo bytes %d must be below total point-to-point traffic %d (collectives excluded)",
			plain.HaloBytes, plain.BytesSent)
	}
	cfg.Strategy = StrategyESR
	cfg.Phi = 1
	esr := solveOK(t, cfg)
	if esr.HaloBytes <= plain.HaloBytes {
		t.Fatalf("augmented exchanges must ship more halo bytes: ESR %d vs plain %d",
			esr.HaloBytes, plain.HaloBytes)
	}
}
