package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// -update-golden regenerates testdata/golden_trajectories.json from the
// current solver. Run it ONLY when a change is meant to alter trajectories;
// performance work must leave the file untouched.
var updateGolden = flag.Bool("update-golden", false, "regenerate the golden trajectory file")

// goldenRecord pins everything a fixed-seed solve must reproduce bit for
// bit: the residual trajectory (as raw float64 bits, so == comparisons catch
// single-ulp drift), a digest of the converged iterand, the simulated clock,
// the traffic counters, and the recovery event log.
type goldenRecord struct {
	Iterations   int             `json:"iterations"`
	TotalSteps   int             `json:"total_steps"`
	Converged    bool            `json:"converged"`
	ResidualBits []string        `json:"residual_bits"`
	XDigest      string          `json:"x_digest"`
	SimTimeBits  string          `json:"sim_time_bits"`
	BytesSent    int64           `json:"bytes_sent"`
	MsgsSent     int64           `json:"msgs_sent"`
	HaloBytes    int64           `json:"halo_bytes"`
	MaxNodeBytes int64           `json:"max_node_bytes"`
	Events       []RecoveryEvent `json:"events"`
}

func goldenPath() string { return filepath.Join("testdata", "golden_trajectories.json") }

func recordOf(res *Result) goldenRecord {
	bits := make([]string, len(res.Residuals))
	for i, v := range res.Residuals {
		bits[i] = fmt.Sprintf("%016x", math.Float64bits(v))
	}
	h := fnv.New64a()
	var b [8]byte
	for _, v := range res.X {
		u := math.Float64bits(v)
		for k := 0; k < 8; k++ {
			b[k] = byte(u >> (8 * k))
		}
		h.Write(b[:])
	}
	ev := res.Events
	if ev == nil {
		ev = []RecoveryEvent{}
	}
	return goldenRecord{
		Iterations:   res.Iterations,
		TotalSteps:   res.TotalSteps,
		Converged:    res.Converged,
		ResidualBits: bits,
		XDigest:      fmt.Sprintf("%016x", h.Sum64()),
		SimTimeBits:  fmt.Sprintf("%016x", math.Float64bits(res.SimTime)),
		BytesSent:    res.BytesSent,
		MsgsSent:     res.MsgsSent,
		HaloBytes:    res.HaloBytes,
		MaxNodeBytes: res.MaxNodeBytes,
		Events:       ev,
	}
}

// TestGoldenTrajectories pins the residual trajectories, iterand digest,
// simulated clock, traffic counters and Result.Events of every
// strategy/recovery path against the committed golden file. Any execution
// rewrite (collectives, kernels, buffer reuse) must keep these byte-
// identical; only deliberate numerical changes may regenerate the file.
func TestGoldenTrajectories(t *testing.T) {
	scenarios := localPathScenarios(t)
	names := make([]string, 0, len(scenarios))
	for name := range scenarios {
		names = append(names, name)
	}
	sort.Strings(names)

	got := make(map[string]goldenRecord, len(names))
	for _, name := range names {
		res, err := Solve(scenarios[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name] = recordOf(res)
	}

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d scenarios)", goldenPath(), len(got))
		return
	}

	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var want map[string]goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d scenarios, test produced %d", len(want), len(got))
	}
	for _, name := range names {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: not in golden file", name)
			continue
		}
		g := got[name]
		if g.Iterations != w.Iterations || g.TotalSteps != w.TotalSteps || g.Converged != w.Converged {
			t.Errorf("%s: iterations (%d,%d,%v) != golden (%d,%d,%v)",
				name, g.Iterations, g.TotalSteps, g.Converged, w.Iterations, w.TotalSteps, w.Converged)
		}
		if len(g.ResidualBits) != len(w.ResidualBits) {
			t.Errorf("%s: residual log length %d != golden %d", name, len(g.ResidualBits), len(w.ResidualBits))
		} else {
			for i := range g.ResidualBits {
				if g.ResidualBits[i] != w.ResidualBits[i] {
					t.Errorf("%s: residual %d bits %s != golden %s (trajectory changed)",
						name, i, g.ResidualBits[i], w.ResidualBits[i])
					break
				}
			}
		}
		if g.XDigest != w.XDigest {
			t.Errorf("%s: iterand digest %s != golden %s", name, g.XDigest, w.XDigest)
		}
		if g.SimTimeBits != w.SimTimeBits {
			t.Errorf("%s: simulated clock bits %s != golden %s (cost model drifted)", name, g.SimTimeBits, w.SimTimeBits)
		}
		if g.BytesSent != w.BytesSent || g.MsgsSent != w.MsgsSent || g.HaloBytes != w.HaloBytes {
			t.Errorf("%s: traffic (%d B, %d msgs, %d halo) != golden (%d, %d, %d)",
				name, g.BytesSent, g.MsgsSent, g.HaloBytes, w.BytesSent, w.MsgsSent, w.HaloBytes)
		}
		if g.MaxNodeBytes != w.MaxNodeBytes {
			t.Errorf("%s: max node bytes %d != golden %d", name, g.MaxNodeBytes, w.MaxNodeBytes)
		}
		if !reflect.DeepEqual(g.Events, w.Events) {
			t.Errorf("%s: recovery events %+v != golden %+v", name, g.Events, w.Events)
		}
	}
}
