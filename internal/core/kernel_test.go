package core

import (
	"strings"
	"testing"

	"esrp/internal/sparse"
)

// TestKernelTrajectoriesBitwiseIdentical is the solver-level acceptance of
// the structure-aware kernels: every forced storage layout must reproduce
// the scalar-CSR run of every strategy/recovery scenario bit for bit —
// residual logs, iterand, simulated clock and traffic included. The planner
// (auto) runs as one of the forced kinds, so its per-block choices are
// pinned too.
func TestKernelTrajectoriesBitwiseIdentical(t *testing.T) {
	for name, base := range localPathScenarios(t) {
		ref := base
		ref.Kernel = sparse.KernelCSR
		want := solveOK(t, ref)
		for _, kind := range []sparse.KernelKind{sparse.KernelAuto, sparse.KernelSellC, sparse.KernelBand} {
			t.Run(name+"/"+kind.String(), func(t *testing.T) {
				cfg := base
				cfg.Kernel = kind
				got := solveOK(t, cfg)
				if got.Iterations != want.Iterations || got.TotalSteps != want.TotalSteps {
					t.Fatalf("iterations (%d,%d) != csr (%d,%d)",
						got.Iterations, got.TotalSteps, want.Iterations, want.TotalSteps)
				}
				if len(got.Residuals) != len(want.Residuals) {
					t.Fatalf("residual log %d entries, csr %d", len(got.Residuals), len(want.Residuals))
				}
				for i := range got.Residuals {
					if got.Residuals[i] != want.Residuals[i] {
						t.Fatalf("residual %d = %v, csr %v (must be bitwise identical)",
							i, got.Residuals[i], want.Residuals[i])
					}
				}
				for i := range got.X {
					if got.X[i] != want.X[i] {
						t.Fatalf("x[%d] = %v, csr %v", i, got.X[i], want.X[i])
					}
				}
				if got.SimTime != want.SimTime || got.BytesSent != want.BytesSent ||
					got.MsgsSent != want.MsgsSent || got.HaloBytes != want.HaloBytes {
					t.Fatalf("clock/traffic (%v,%d,%d,%d) differ from csr (%v,%d,%d,%d)",
						got.SimTime, got.BytesSent, got.MsgsSent, got.HaloBytes,
						want.SimTime, want.BytesSent, want.MsgsSent, want.HaloBytes)
				}
			})
		}
	}
}

// TestSolveReportsKernels: Result.Kernels carries one layout name per node,
// and the Poisson test problem's slabs plan onto the band layout.
func TestSolveReportsKernels(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Kernel = sparse.KernelAuto
	res := solveOK(t, cfg)
	if len(res.Kernels) != cfg.Nodes {
		t.Fatalf("Result.Kernels has %d entries, want %d", len(res.Kernels), cfg.Nodes)
	}
	condensed := CondenseKernels(res.Kernels)
	if !strings.Contains(condensed, "band") {
		t.Fatalf("planner chose %q for the Poisson slabs, expected band blocks", condensed)
	}
	forced := baseConfig(t)
	forced.Kernel = sparse.KernelCSR
	fres := solveOK(t, forced)
	if c := CondenseKernels(fres.Kernels); c != "csr×8" {
		t.Fatalf("forced csr condenses to %q", c)
	}
}

// TestPreparedRejectsKernelMismatch: a Prepared context is bound to its
// kernel kind — reusing it under a different forced layout must fail loudly
// instead of silently dispatching through the wrong storage.
func TestPreparedRejectsKernelMismatch(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Kernel = sparse.KernelAuto
	prep, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if names := prep.KernelChoices(); len(names) != cfg.Nodes {
		t.Fatalf("KernelChoices has %d entries, want %d", len(names), cfg.Nodes)
	}
	bad := cfg
	bad.Kernel = sparse.KernelSellC
	bad.Prepared = prep
	if _, err := Solve(bad); err == nil {
		t.Fatal("Solve accepted a Prepared context built for a different kernel kind")
	}
}
