// Package core implements the paper's primary contribution: the distributed
// preconditioned conjugate gradient solver (Alg. 1) with pluggable
// node-failure resilience — ESR (exact state reconstruction, redundant
// storage every iteration), ESRP (ESR with periodic storage every T
// iterations, Alg. 3, the paper's new method), and IMCR (in-memory buddy
// checkpoint-restart, the baseline) — including the exact state
// reconstruction procedure of Alg. 2 run on replacement nodes after an
// injected node failure.
package core

import (
	"fmt"
	"strings"
	"time"

	"esrp/internal/cluster"
	"esrp/internal/hostobs"
	"esrp/internal/obs"
	"esrp/internal/precond"
	"esrp/internal/replay"
	"esrp/internal/sparse"
)

// Strategy selects the resilience scheme of a solve.
type Strategy int

// Available strategies.
const (
	// StrategyNone runs plain PCG with no redundancy. If a failure is
	// injected, the solver performs a "local restart": lost entries are
	// zeroed and r, z, p are re-initialized from the surviving iterand —
	// the costly scenario that motivates ESR (cf. [Pachajoa & Gansterer
	// 2017], cited as [19] in the paper).
	StrategyNone Strategy = iota
	// StrategyESR stores redundant copies in every iteration (T = 1).
	StrategyESR
	// StrategyESRP stores redundant copies in two consecutive iterations
	// every T iterations (the paper's contribution, Alg. 3).
	StrategyESRP
	// StrategyIMCR checkpoints all dynamic vectors to φ buddy nodes every T
	// iterations.
	StrategyIMCR
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyNone:
		return "none"
	case StrategyESR:
		return "ESR"
	case StrategyESRP:
		return "ESRP"
	case StrategyIMCR:
		return "IMCR"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy converts a name to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "none", "reference", "pcg":
		return StrategyNone, nil
	case "esr", "ESR":
		return StrategyESR, nil
	case "esrp", "ESRP":
		return StrategyESRP, nil
	case "imcr", "IMCR", "cr":
		return StrategyIMCR, nil
	}
	return StrategyNone, fmt.Errorf("core: unknown strategy %q", s)
}

// FailureSpec describes one injected node-failure event, mirroring the
// paper's framework: the ranks of the affected nodes and the iteration at
// which they fail are passed as parameters; at that iteration the nodes
// zero out all their dynamic data and act as their own replacements.
type FailureSpec struct {
	// Iteration at which the failure strikes. The failure is injected
	// immediately after the SpMV communication of this iteration, the point
	// at which redundant copies for the iteration (if any) have been pushed.
	Iteration int `json:"iteration"`
	// Ranks lists the failed nodes (ascending). The paper uses contiguous
	// blocks; ESR/ESRP recovery requires contiguity of the lost index range
	// only for the inner-system extraction, and this implementation checks
	// and enforces it.
	Ranks []int `json:"ranks"`
}

// Config describes one solve.
type Config struct {
	A  *sparse.CSR // sparse SPD system matrix (shared, read-only)
	B  []float64   // right-hand side, length A.Rows
	X0 []float64   // initial guess (nil = zero vector)

	Nodes int // number of simulated cluster nodes

	Rtol    float64 // convergence: ‖r‖₂/‖b‖₂ < Rtol (paper: 1e-8)
	MaxIter int     // iteration cap (0 = 10·M)

	PrecondKind precond.Kind // paper: block Jacobi
	MaxBlock    int          // block Jacobi maximum block size (paper: 10)

	// Kernel selects the storage layout of the local SpMV. The zero value
	// KernelAuto lets the Prepare-time planner inspect each node's interior
	// and boundary row blocks and pick per block (constant-band for stencil
	// runs, SELL-C for regular-width blocks, scalar CSR otherwise); the
	// forced kinds exist for ablation and irregular inputs. Every kind
	// computes identical per-row sums in identical order, so trajectories,
	// the simulated clock and all traffic counters are bitwise invariant
	// under this knob — only host wall-clock changes.
	Kernel sparse.KernelKind

	Strategy Strategy
	T        int // checkpointing interval (ignored for None/ESR)
	Phi      int // redundancy copies / supported simultaneous failures

	InnerRtol    float64 // reconstruction inner-solve tolerance (paper: 1e-14)
	InnerMaxIter int     // inner-solve iteration cap (0 = 100·|If|)

	// Failure injects a single node-failure event — the paper's framework.
	// It is shorthand for a one-element Failures timeline; setting both is an
	// error.
	Failure *FailureSpec

	// Failures is the multi-event failure timeline: events fire in order at
	// strictly increasing iterations (validated eagerly). Each event destroys
	// the dynamic state of its ranks exactly like the single-event framework;
	// the strategy's recovery runs after every event. Ranks are interpreted
	// in the rank space current at fire time (identical to the initial space
	// until a no-spare shrink removes nodes).
	Failures []FailureSpec

	// Spares is the replacement-node pool the recovery draws from: 0 means
	// an unlimited pool (every failed node is replaced — the paper's
	// framework, where failed nodes act as their own replacements); n > 0
	// caps the pool at n nodes, depleted across the failure timeline. Once
	// the pool cannot cover an event, ESR/ESRP recovery falls back to the
	// no-spare shrink path of [Pachajoa, Pacher, Gansterer 2019]: a survivor
	// adopts the failed rows and the solve continues on the smaller cluster.
	// A finite pool therefore requires ESR or ESRP. NoSpareNodes is the
	// pool-of-zero special case.
	Spares int

	CostModel *cluster.CostModel // nil = cluster.DefaultCostModel()

	// GatherInnerSolve switches the reconstruction inner solve (Alg. 2
	// line 8) from a distributed PCG across all replacement nodes to a
	// gather-to-one-node sequential solve (an ablation of the design choice).
	GatherInnerSolve bool

	// NaiveAugment replaces the paper's multiplicity-counted resilient-copy
	// sets Rc_{s,k} with the naive scheme that ships each node's whole block
	// to all φ designated destinations (an ablation of Section 2.2.1's
	// optimization; ESR/ESRP only).
	NaiveAugment bool

	// NoSpareNodes switches ESR/ESRP recovery to the spare-free variant of
	// [Pachajoa, Pacher, Gansterer 2019] (ref. 22 of the paper): failed
	// nodes are not replaced; a surviving node adjacent to the failed block
	// adopts its rows, the exact state is reconstructed there, and the
	// solve continues on the shrunken cluster with the identical
	// preconditioner operator (so the trajectory is preserved).
	NoSpareNodes bool

	// DetectionTime adds a fixed simulated cost (seconds) to every node's
	// clock when a failure strikes, standing in for the middleware tasks
	// the paper's framework leaves unmodeled (Section 4: detecting the
	// failure, identifying the lost ranks, re-establishing the
	// communicator, e.g. via ULFM). The paper argues this cost is
	// comparable across strategies; the knob lets users include it.
	DetectionTime float64

	// BalanceNNZ switches the block row distribution from uniform row
	// counts to contiguous ranges of balanced nonzero counts (see
	// dist.NewBalancedWeightPartition) — the paper's future-work question
	// of SpMV-optimizing partitioning strategies. All resilience machinery
	// works unchanged: it only requires contiguous ownership.
	BalanceNNZ bool

	// BlockingExchange disables the overlap of the interior-rows product
	// with the in-flight halo exchange: the SpMV waits for all ghost entries
	// before computing any row, as the pre-overlap implementation did. The
	// numerical trajectory is identical either way (the same per-row sums in
	// the same order); only the simulated clock differs. Ablation knob for
	// measuring what the overlap buys (see BenchmarkExchangeOverlap).
	BlockingExchange bool

	// ResidualReplacementInterval R > 0 replaces the recurrence residual
	// with the true residual b − A·x every R productive iterations (van der
	// Vorst & Ye, ref. 27 of the paper), curbing the residual drift that
	// Table 4 measures, at the cost of one extra SpMV per replacement. The
	// replacement happens before z, β and p are computed, so the search
	// direction recurrence p = z + β·p_prev — and with it the exact state
	// reconstruction — remains valid. 0 disables replacement.
	ResidualReplacementInterval int

	// RecordResiduals appends the relative residual of every productive
	// iteration to Result.Residuals (costs memory, intended for examples
	// and tests).
	RecordResiduals bool

	// Prepared supplies a prebuilt read-only solve context (partition, plan,
	// local matrices, preconditioners) from Prepare. Settings must match the
	// config (validated); nil rebuilds everything per solve. Sharing one
	// Prepared across solves — concurrent ones included — is safe and is how
	// the campaign engine amortizes setup across grid cells.
	Prepared *Prepared

	// Workspace recycles the per-rank solver vector buffers between
	// consecutive solves (see Workspace). A Workspace must not be shared by
	// two solves running at the same time; nil allocates fresh vectors.
	Workspace *Workspace

	// Observe enables the observability layer (internal/obs): per-rank span
	// timelines on the simulated clock and/or the per-iteration metric
	// series, returned in Result.Trace. Nil (the default) records nothing
	// and adds zero overhead — the recorder is nil-checked on every hot
	// path, so trajectories, the simulated clock and the zero-allocation
	// guarantees are bit-identical with observation off. With observation
	// on, the recorded data is itself deterministic (simulated timestamps,
	// single-writer per-rank buffers).
	Observe *obs.Options

	// Record captures the solve's abstract event schedule (internal/replay):
	// each rank's program-order stream of compute, point-to-point and
	// collective events plus the recovery-section markers, so the finished
	// schedule can be re-costed under any machine model in O(events)
	// without re-running the solve. One recorder records one solve. Nil
	// (the default) records nothing and keeps the zero-overhead hot path —
	// trajectories, the simulated clock and the zero-allocation guarantees
	// are bit-identical with recording off.
	Record *replay.Recorder

	// HostStats enables host-side barrier telemetry (internal/hostobs):
	// per-member wall-clock wait histograms split by spin/yield/park
	// regime, arrival-order skew, and abort counts from the combining-tree
	// barrier underneath every collective. It must have capacity ≥ Nodes
	// (validated) and may be shared by many solves — campaign runs hand
	// every cell the same stats so the histograms aggregate over the whole
	// sweep. Nil (the default) records nothing: the barrier hot path then
	// pays one nil check and never reads the wall clock, keeping the
	// zero-allocation and determinism guarantees exactly as without it.
	HostStats *hostobs.BarrierStats
}

// withDefaults returns a copy of cfg with defaults applied, or an error if
// the configuration is invalid.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.A == nil {
		return cfg, fmt.Errorf("core: missing matrix")
	}
	if cfg.A.Rows != cfg.A.Cols {
		return cfg, fmt.Errorf("core: matrix must be square, got %dx%d", cfg.A.Rows, cfg.A.Cols)
	}
	if len(cfg.B) != cfg.A.Rows {
		return cfg, fmt.Errorf("core: rhs length %d != matrix size %d", len(cfg.B), cfg.A.Rows)
	}
	if cfg.X0 != nil && len(cfg.X0) != cfg.A.Rows {
		return cfg, fmt.Errorf("core: x0 length %d != matrix size %d", len(cfg.X0), cfg.A.Rows)
	}
	if cfg.Nodes <= 0 {
		return cfg, fmt.Errorf("core: node count must be positive, got %d", cfg.Nodes)
	}
	if cfg.Nodes > cfg.A.Rows {
		return cfg, fmt.Errorf("core: more nodes (%d) than rows (%d)", cfg.Nodes, cfg.A.Rows)
	}
	if cfg.HostStats != nil && cfg.HostStats.Cap() < cfg.Nodes {
		return cfg, fmt.Errorf("core: HostStats capacity %d < %d nodes", cfg.HostStats.Cap(), cfg.Nodes)
	}
	if cfg.Rtol <= 0 {
		cfg.Rtol = 1e-8
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 10 * cfg.A.Rows
	}
	if cfg.MaxBlock <= 0 {
		cfg.MaxBlock = 10
	}
	if cfg.PrecondKind == precond.Default {
		cfg.PrecondKind = precond.BlockJacobi // the paper's choice
	}
	if !cfg.Kernel.Valid() {
		return cfg, fmt.Errorf("core: invalid SpMV kernel kind %d", int(cfg.Kernel))
	}
	if cfg.InnerRtol <= 0 {
		cfg.InnerRtol = 1e-14
	}
	switch cfg.Strategy {
	case StrategyNone:
	case StrategyESR:
		cfg.T = 1
		if cfg.Phi <= 0 {
			cfg.Phi = 1
		}
	case StrategyESRP:
		if cfg.T <= 2 {
			return cfg, fmt.Errorf("core: ESRP requires T > 2 (use StrategyESR for T ≤ 2), got %d", cfg.T)
		}
		if cfg.Phi <= 0 {
			cfg.Phi = 1
		}
	case StrategyIMCR:
		if cfg.T <= 0 {
			return cfg, fmt.Errorf("core: IMCR requires T ≥ 1, got %d", cfg.T)
		}
		if cfg.Phi <= 0 {
			cfg.Phi = 1
		}
	default:
		return cfg, fmt.Errorf("core: unknown strategy %d", int(cfg.Strategy))
	}
	if cfg.Phi > 0 && cfg.Phi > cfg.Nodes-1 {
		return cfg, fmt.Errorf("core: phi=%d requires at least %d nodes, have %d", cfg.Phi, cfg.Phi+1, cfg.Nodes)
	}
	if cfg.NoSpareNodes {
		if cfg.Strategy != StrategyESR && cfg.Strategy != StrategyESRP {
			return cfg, fmt.Errorf("core: NoSpareNodes requires ESR or ESRP, got %v", cfg.Strategy)
		}
	}
	if cfg.Spares < 0 {
		return cfg, fmt.Errorf("core: spare pool must be ≥ 0 (0 = unlimited), got %d", cfg.Spares)
	}
	if cfg.Spares > 0 {
		if cfg.Strategy != StrategyESR && cfg.Strategy != StrategyESRP {
			return cfg, fmt.Errorf("core: a finite spare pool requires ESR or ESRP (the shrink fallback), got %v", cfg.Strategy)
		}
		if cfg.NoSpareNodes {
			return cfg, fmt.Errorf("core: NoSpareNodes (empty pool) conflicts with Spares=%d", cfg.Spares)
		}
	}
	if cfg.Failure != nil {
		if len(cfg.Failures) > 0 {
			return cfg, fmt.Errorf("core: set either Failure (single event) or Failures (timeline), not both")
		}
		cfg.Failures = []FailureSpec{*cfg.Failure}
	}
	for k := range cfg.Failures {
		f := &cfg.Failures[k]
		if err := f.validate(cfg.Nodes); err != nil {
			return cfg, fmt.Errorf("core: failure event %d: %w", k, err)
		}
		if cfg.Strategy != StrategyNone && len(f.Ranks) > cfg.Phi {
			return cfg, fmt.Errorf("core: failure event %d: %d simultaneous failures exceed redundancy phi=%d", k, len(f.Ranks), cfg.Phi)
		}
		if k > 0 && f.Iteration <= cfg.Failures[k-1].Iteration {
			return cfg, fmt.Errorf("core: failure events out of order: event %d at iteration %d is not after event %d at iteration %d",
				k, f.Iteration, k-1, cfg.Failures[k-1].Iteration)
		}
	}
	return cfg, nil
}

// validate checks one failure event against a cluster of n nodes: non-empty
// contiguous ascending ranks (duplicates included in the check), ranks in
// range, not the whole cluster, and a non-negative iteration.
func (f *FailureSpec) validate(n int) error {
	if len(f.Ranks) == 0 {
		return fmt.Errorf("failure spec without ranks")
	}
	for i, r := range f.Ranks {
		if r < 0 || r >= n {
			return fmt.Errorf("failed rank %d out of range [0,%d)", r, n)
		}
		if i > 0 && f.Ranks[i] == f.Ranks[i-1] {
			return fmt.Errorf("duplicate failed rank %d in %v", r, f.Ranks)
		}
		if i > 0 && f.Ranks[i] != f.Ranks[i-1]+1 {
			return fmt.Errorf("failed ranks must be a contiguous ascending block, got %v", f.Ranks)
		}
	}
	if len(f.Ranks) >= n {
		return fmt.Errorf("all nodes failing is unrecoverable")
	}
	if f.Iteration < 0 {
		return fmt.Errorf("failure iteration must be ≥ 0, got %d", f.Iteration)
	}
	return nil
}

// Recovery modes of a handled failure event (RecoveryEvent.Mode).
const (
	// RecoverySpare: the failed ranks were replaced from the spare pool and
	// the exact state was reconstructed on the replacements (Alg. 2), or an
	// IMCR checkpoint was restored.
	RecoverySpare = "spare"
	// RecoveryShrink: no spare was available; a surviving node adopted the
	// failed rows and the cluster continued smaller (no-spare recovery).
	RecoveryShrink = "shrink"
	// RecoveryRestart: nothing to reconstruct from (no completed storage
	// stage, or redundant copies incomplete after an earlier loss); the
	// Krylov process restarted from the surviving iterand.
	RecoveryRestart = "restart"
	// RecoverySkipped: the event could not be applied to the current cluster
	// (e.g. its ranks no longer exist after a shrink) and was dropped.
	RecoverySkipped = "skipped"
)

// RecoveryEvent records one handled failure event of the timeline.
type RecoveryEvent struct {
	Iteration   int    `json:"iteration"`    // iteration the failure struck
	Ranks       []int  `json:"ranks"`        // failed ranks, in the rank space current at fire time
	Mode        string `json:"mode"`         // Recovery* constant
	RecoveredAt int    `json:"recovered_at"` // iteration the solver resumed from
	WastedIters int    `json:"wasted_iters"` // iterations discarded by this event's rollback
	SparesLeft  int    `json:"spares_left"`  // replacement nodes remaining afterwards (-1 = unlimited)
	ActiveNodes int    `json:"active_nodes"` // nodes still iterating after the event
}

// String renders the event for logs and reports: what failed, how it was
// recovered, and what the cluster looked like afterwards.
func (ev RecoveryEvent) String() string {
	spares := "∞"
	if ev.SparesLeft >= 0 {
		spares = fmt.Sprintf("%d", ev.SparesLeft)
	}
	return fmt.Sprintf("iteration %d, ranks %v → %s recovery, resumed at %d (%d active nodes, %s spares left)",
		ev.Iteration, ev.Ranks, ev.Mode, ev.RecoveredAt, ev.ActiveNodes, spares)
}

// Result reports the outcome of a solve.
type Result struct {
	X []float64 // converged iterand (global, gathered)

	Converged   bool
	Iterations  int     // trajectory length: PCG iterations along the final trajectory
	TotalSteps  int     // loop iterations executed, including rolled-back work
	RelResidual float64 // final ‖r‖₂/‖b‖₂ (recurrence residual)

	SimTime      float64       // modeled runtime: max simulated clock over nodes (seconds)
	WallTime     time.Duration // host wall-clock of the simulated run
	RecoveryTime float64       // modeled time of gathers + reconstruction (0 if no failure)
	WastedIters  int           // iterations discarded by the rollback (0 if no failure)

	Recovered   bool    // at least one failure was injected and recovery succeeded
	RecoveredAt int     // the iteration the last recovery rolled back to
	Drift       float64 // residual drift, Eq. 2 of the paper
	ActiveNodes int     // nodes still iterating at the end (< Nodes after a no-spare recovery)

	// Events records every failure event that fired, in timeline order —
	// including events skipped because their ranks no longer existed.
	// Events scheduled after the solve converged (or past MaxIter) never
	// fire and have no entry, so len(Events) can be below len(Failures).
	Events []RecoveryEvent

	BytesSent int64 // total point-to-point payload volume
	MsgsSent  int64

	// MaxNodeBytes is the largest per-node dynamic solver footprint (local
	// vector blocks, owned+ghost SpMV buffer, redundant storage) over all
	// nodes — O(n/s + halo), independent of the global size, now that no
	// solver path holds a full-length vector after setup. Transient recovery
	// scratch (the reconstruction gathers, the no-spare adopter's
	// repartitioning buffers, checkpoint payloads in flight) is sampled at
	// its peak too, so recovery-heavy scenarios report their true high-water
	// mark rather than the steady state.
	MaxNodeBytes int64
	// HaloBytes is the measured halo payload volume (plain ghost entries
	// plus resilient copies) actually shipped by the SpMV exchanges, summed
	// over nodes — as opposed to the planned volume of aspmv.ExtraTraffic.
	HaloBytes int64

	// Kernels holds each node's SpMV kernel layout ("csr", "sellc", "band",
	// or a mixed interior+boundary pair) as chosen by Config.Kernel and, for
	// KernelAuto, the Prepare-time planner. Condense for display with
	// CondenseKernels. Purely host-side metadata: the choice never affects
	// trajectories or the simulated clock.
	Kernels []string

	Residuals []float64 // per-iteration ‖r‖/‖b‖ if RecordResiduals

	// Trace is the observability record of the solve — span timelines,
	// recovery envelopes, the per-iteration series — when Config.Observe
	// asked for one; nil otherwise. Export with Trace.WriteChrome
	// (perfetto-viewable) or inspect via the structured API.
	Trace *obs.Trace
}

// CondenseKernels condenses per-node kernel layout names (Result.Kernels)
// into a compact "name×count" display, counts in first-seen node order:
// e.g. "band+sellc×14, csr×2".
func CondenseKernels(names []string) string {
	if len(names) == 0 {
		return ""
	}
	counts := make(map[string]int, 4)
	var order []string
	for _, n := range names {
		if counts[n] == 0 {
			order = append(order, n)
		}
		counts[n]++
	}
	if len(names) == 1 {
		return names[0]
	}
	var b strings.Builder
	for i, n := range order {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s×%d", n, counts[n])
	}
	return b.String()
}
