package core

import (
	"fmt"
	"math"

	"esrp/internal/aspmv"
	"esrp/internal/cluster"
	"esrp/internal/dist"
	"esrp/internal/obs"
	"esrp/internal/precond"
	"esrp/internal/sparse"
	"esrp/internal/vec"
)

// innerSolve solves A[If,If]·x_If = w (line 8 of Alg. 2) for this
// replacement node's share of the lost iterand, writing the result into
// run.x. By default the solve runs as a distributed PCG across the
// replacement sub-communicator, reusing each node's block Jacobi
// preconditioner (identical blocks, since blocks are node-local). With
// cfg.GatherInnerSolve the system is gathered to the first replacement and
// solved there sequentially (an ablation of that design choice).
//
// The extraction of A[If,If] and its communication plan stand in for the
// replacement nodes reloading static data from safe storage; like the
// paper, their cost is excluded from the modeled runtime (only Compute and
// message traffic advance the simulated clock).
func (run *nodeRun) innerSolve(failed []int, flo, fhi int, w []float64) {
	sub := run.subOf(failed)
	if sub == nil {
		panic("core: innerSolve called on a surviving node")
	}
	fsize := fhi - flo
	asub := run.cfg.A.SubRange(flo, fhi, flo, fhi)
	offsets := make([]int, len(failed)+1)
	for i, fr := range failed {
		offsets[i] = run.part.Lo(fr) - flo
	}
	offsets[len(failed)] = fsize
	ipart, err := dist.FromOffsets(offsets)
	if err != nil {
		panic(fmt.Sprintf("core: inner partition: %v", err))
	}

	maxIter := run.cfg.InnerMaxIter
	if maxIter <= 0 {
		maxIter = 100 * fsize
	}

	if run.cfg.GatherInnerSolve {
		run.innerSolveGathered(sub, asub, ipart, w, maxIter)
		return
	}

	iplan, err := aspmv.NewPlan(asub, ipart)
	if err != nil {
		panic(fmt.Sprintf("core: inner plan: %v", err))
	}
	x, halo := innerPCG(sub, asub, iplan, ipart, run.pc, w, run.cfg.InnerRtol, maxIter, run.cfg.BlockingExchange, run.cfg.Kernel)
	run.ex.AddHaloBytes(halo) // the reconstruction's SpMV halo counts too
	copy(run.x, x)
}

// innerSolveGathered gathers the inner right-hand side at sub-rank 0, solves
// the whole lost-block system there with a sequential PCG, and scatters the
// solution back.
func (run *nodeRun) innerSolveGathered(sub *cluster.Node, asub *sparse.CSR, ipart *dist.Partition, w []float64, maxIter int) {
	parts := sub.Gather(0, w)
	if sub.Rank() == 0 {
		ball := make([]float64, asub.Rows)
		for s, p := range parts {
			copy(ball[ipart.Lo(s):ipart.Hi(s)], p)
		}
		seqPart := dist.NewBlockPartition(asub.Rows, 1)
		seqPlan, err := aspmv.NewPlan(asub, seqPart)
		if err != nil {
			panic(fmt.Sprintf("core: sequential inner plan: %v", err))
		}
		pc, err := precond.Build(run.cfg.PrecondKind, asub, 0, asub.Rows, run.cfg.MaxBlock)
		if err != nil {
			panic(fmt.Sprintf("core: sequential inner preconditioner: %v", err))
		}
		solo := sub.Sub([]int{sub.GlobalRank()})
		xall, _ := innerPCG(solo, asub, seqPlan, seqPart, pc, ball, run.cfg.InnerRtol, maxIter, run.cfg.BlockingExchange, run.cfg.Kernel)
		copy(run.x, xall[ipart.Lo(0):ipart.Hi(0)])
		for s := 1; s < sub.Size(); s++ {
			sub.Send(s, tagInnerGather, xall[ipart.Lo(s):ipart.Hi(s)])
		}
		return
	}
	copy(run.x, sub.Recv(0, tagInnerGather))
}

// innerPCG is a plain distributed PCG without resilience, used for the
// reconstruction inner systems. nd is a (sub-)communicator handle whose
// rank corresponds to ipart's parts; b is the local right-hand side block;
// the returned slice is the local solution block. Convergence:
// ‖r‖₂/‖b‖₂ < rtol (exactly, since x0 = 0). Like the outer solver, the
// inner SpMV runs on the compact owned+ghost index space with the interior
// product overlapping the in-flight halo (unless blocking). The second
// return value is the halo payload this rank shipped during the solve, for
// the caller to fold into its measured-halo counter.
func innerPCG(nd *cluster.Node, a *sparse.CSR, plan *aspmv.Plan, ipart *dist.Partition, pc precond.Preconditioner, b []float64, rtol float64, maxIter int, blocking bool, kind sparse.KernelKind) ([]float64, int64) {
	me := nd.Rank()
	lo, hi := ipart.Lo(me), ipart.Hi(me)
	m := hi - lo
	local, err := sparse.NewLocal(a, lo, hi, plan.Ghost(me))
	if err != nil {
		panic(fmt.Sprintf("core: inner local matrix: %v", err))
	}
	kern := sparse.BuildKernel(local, kind)
	ex := plan.NewExchanger(me)

	x := make([]float64, m)
	r := append([]float64(nil), b...)
	z := make([]float64, m)
	p := make([]float64, m)
	q := make([]float64, m)
	pg := make([]float64, m+local.G())

	dot2 := func(u, v float64) (float64, float64) {
		buf := [2]float64{u, v}
		nd.Allreduce(cluster.OpSum, buf[:])
		return buf[0], buf[1]
	}
	// Inner-solve compute lands under its own span kind so the
	// reconstruction's nested PCG is distinguishable from outer-loop work
	// on the timeline (its collectives and SpMV halves keep their own kinds).
	compute := func(flops float64) {
		t0 := nd.Clock()
		nd.Compute(flops)
		nd.Trace().Span(obs.KindInnerSolve, t0, nd.Clock())
	}

	pc.Apply(z, r)
	compute(pc.ApplyFlops())
	copy(p, z)
	rzLoc := vec.Dot(r, z)
	bbLoc := vec.Dot(b, b)
	compute(4 * float64(m))
	rz, bb := dot2(rzLoc, bbLoc)
	bNorm := math.Sqrt(bb)
	if bNorm == 0 {
		return x, ex.HaloBytes() // zero rhs: zero solution
	}

	for it := 0; it < maxIter; it++ {
		copy(pg[:m], p)
		ex.MulOverlapped(nd, kern, q, pg, blocking)

		pqLoc := vec.Dot(p, q)
		compute(2 * float64(m))
		pq := nd.AllreduceScalar(cluster.OpSum, pqLoc)
		if pq == 0 {
			break
		}
		alpha := rz / pq
		vec.AxpyPair(alpha, p, x, -alpha, q, r)
		compute(4 * float64(m))
		pc.Apply(z, r)
		compute(pc.ApplyFlops())
		var rrLoc float64
		rzLoc, rrLoc = vec.Dot2(r, z)
		compute(4 * float64(m))
		rzNew, rr := dot2(rzLoc, rrLoc)
		beta := rzNew / rz
		vec.XpayInto(p, z, beta, p)
		compute(2 * float64(m))
		rz = rzNew
		if math.Sqrt(rr)/bNorm < rtol {
			break
		}
	}
	return x, ex.HaloBytes()
}
