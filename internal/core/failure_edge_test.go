package core

import (
	"testing"

	"esrp/internal/matgen"
)

// Failure-injection edge cases: the recovery protocols must stay live (no
// deadlock, no panic) and the solver must still converge at the boundaries
// of the storage machinery.

func TestESRFailureAtIterationZero(t *testing.T) {
	// At j = 0 only one redundant copy exists; ESR cannot reconstruct and
	// must fall back to a local restart, then converge.
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESR
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: 0, Ranks: []int{3}}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 5e-8)
	if !res.Recovered {
		t.Fatal("failure must be recorded as recovered (via fallback)")
	}
}

func TestESRFailureAtIterationOne(t *testing.T) {
	// At j = 1 the queue holds p′(0) and p′(1): the earliest point where ESR
	// can reconstruct exactly.
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESR
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: 1, Ranks: []int{3}}
	res := checkExactRecovery(t, cfg, 3)
	if res.RecoveredAt != 1 {
		t.Fatalf("RecoveredAt = %d, want 1", res.RecoveredAt)
	}
}

func TestESRPFailureLastIterationBeforeConvergence(t *testing.T) {
	cfg := baseConfig(t)
	ref := referenceFor(t, cfg)
	cfg.Strategy = StrategyESRP
	cfg.T = 10
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: ref.Iterations - 1, Ranks: []int{7}}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 5e-8)
	if !res.Recovered {
		t.Fatal("failure one iteration before convergence must still recover")
	}
}

func TestFailureIterationPastConvergenceNeverFires(t *testing.T) {
	cfg := baseConfig(t)
	ref := referenceFor(t, cfg)
	cfg.Strategy = StrategyESRP
	cfg.T = 10
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: ref.Iterations + 100, Ranks: []int{1}}
	res := solveOK(t, cfg)
	if res.Recovered {
		t.Fatal("failure scheduled past convergence must not fire")
	}
	if res.Iterations != ref.Iterations {
		t.Fatalf("iterations %d != reference %d", res.Iterations, ref.Iterations)
	}
}

func TestIMCRFailureExactlyAtCheckpointIteration(t *testing.T) {
	// The failure is injected after the SpMV of iteration j = T, i.e.
	// *before* afterIteration pushes the checkpoint of that iteration: the
	// previous checkpoint (from j = T... none, this is the first) is absent,
	// so the solver falls back; with j = 2T the checkpoint from T exists.
	cfg := baseConfig(t)
	cfg.Strategy = StrategyIMCR
	cfg.T = 10
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: 20, Ranks: []int{4}}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 5e-8)
	if !res.Recovered {
		t.Fatal("IMCR must recover at a checkpoint boundary")
	}
	if res.RecoveredAt != 11 {
		t.Fatalf("RecoveredAt = %d, want 11 (checkpoint after iteration 10)", res.RecoveredAt)
	}
}

func TestESRPFailureOfBoundaryRankBlocks(t *testing.T) {
	// First and last rank blocks exercise the modular neighbour wrap of the
	// designated destinations (Eq. 1).
	for _, ranks := range [][]int{{0, 1}, {6, 7}} {
		cfg := baseConfig(t)
		cfg.Strategy = StrategyESRP
		cfg.T = 10
		cfg.Phi = 2
		cfg.Failure = &FailureSpec{Iteration: 35, Ranks: ranks}
		res := checkExactRecovery(t, cfg, 3)
		if res.RecoveredAt != 31 {
			t.Fatalf("ranks %v: RecoveredAt = %d, want 31", ranks, res.RecoveredAt)
		}
	}
}

func TestESRPAllButOneNodeFails(t *testing.T) {
	// ψ = φ = N−1: a single survivor must hold everything needed.
	a := matgen.Poisson2D(20, 20)
	b := matgen.RHSOnes(a.Rows)
	cfg := Config{
		A: a, B: b, Nodes: 4,
		Strategy: StrategyESRP, T: 10, Phi: 3,
		Failure:   &FailureSpec{Iteration: 25, Ranks: []int{1, 2, 3}},
		CostModel: fastModel(),
	}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 5e-8)
	if !res.Recovered || res.RecoveredAt != 21 {
		t.Fatalf("recovered=%v at %d, want recovery to 21", res.Recovered, res.RecoveredAt)
	}
}

func TestNaiveAugmentRecoversIdentically(t *testing.T) {
	// The naive augmentation ships more data but must preserve recovery
	// semantics exactly. The traffic difference appears at φ = 1: the
	// counted scheme skips entries the product already replicates, the
	// naive scheme re-ships a boundary plane per node. (At φ = 2 on a
	// narrow-band matrix the schemes coincide: nearly every entry needs
	// both extra copies anyway.)
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 10
	cfg.Phi = 1
	cfg.NaiveAugment = true
	cfg.Failure = &FailureSpec{Iteration: 38, Ranks: []int{4}}
	res := checkExactRecovery(t, cfg, 3)
	if res.RecoveredAt != 31 {
		t.Fatalf("RecoveredAt = %d, want 31", res.RecoveredAt)
	}

	counted := cfg
	counted.NaiveAugment = false
	cres := checkExactRecovery(t, counted, 3)
	if res.BytesSent <= cres.BytesSent {
		t.Fatalf("naive augmentation must ship more bytes: %d vs %d", res.BytesSent, cres.BytesSent)
	}
}

func TestDetectionTimeChargedOnRecovery(t *testing.T) {
	// The middleware-cost knob must add to the modeled recovery cost of a
	// failure run and leave failure-free runs untouched.
	base := baseConfig(t)
	base.Strategy = StrategyESRP
	base.T = 10
	base.Phi = 1
	base.Failure = &FailureSpec{Iteration: 25, Ranks: []int{3}}
	plain := solveOK(t, base)

	det := base
	det.DetectionTime = 0.5
	res := solveOK(t, det)
	if res.RecoveryTime < plain.RecoveryTime+0.5 {
		t.Fatalf("recovery %g missing detection cost (plain %g)", res.RecoveryTime, plain.RecoveryTime)
	}
	if res.SimTime < plain.SimTime+0.5 {
		t.Fatalf("total time %g missing detection cost (plain %g)", res.SimTime, plain.SimTime)
	}

	ff := base
	ff.Failure = nil
	ff.DetectionTime = 0.5
	ffRes := solveOK(t, ff)
	if ffRes.RecoveryTime != 0 {
		t.Fatalf("failure-free run must not pay detection cost, got %g", ffRes.RecoveryTime)
	}
}
