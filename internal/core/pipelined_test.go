package core

import (
	"math"
	"testing"

	"esrp/internal/cluster"
	"esrp/internal/matgen"
	"esrp/internal/vec"
)

func pipeBaseConfig(t *testing.T) Config {
	t.Helper()
	a := matgen.Poisson2D(48, 48)
	b, _ := matgen.RHSForSolution(a, 12)
	return Config{
		A: a, B: b, Nodes: 8,
		Rtol:      1e-8,
		CostModel: fastModel(),
	}
}

func solvePipeOK(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := SolvePipelined(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("pipelined solver did not converge in %d iterations (relres %g)", res.Iterations, res.RelResidual)
	}
	return res
}

func TestPipelinedMatchesStandardSolution(t *testing.T) {
	cfg := pipeBaseConfig(t)
	std := solveOK(t, cfg)
	pipe := solvePipeOK(t, cfg)
	if d := vec.MaxAbsDiff(std.X, pipe.X); d > 1e-6 {
		t.Fatalf("pipelined solution deviates from standard by %g", d)
	}
	// Same Krylov process, same preconditioner: iteration counts must be
	// close (pipelined checks convergence at the top of the loop, and its
	// recurrences drift slightly differently).
	if diff := pipe.Iterations - std.Iterations; diff < -3 || diff > 10 {
		t.Fatalf("pipelined iterations %d vs standard %d", pipe.Iterations, std.Iterations)
	}
	checkSolution(t, cfg, pipe, 5e-8)
}

func TestPipelinedHalvesCollectives(t *testing.T) {
	// Standard PCG synchronizes twice per iteration (p·Ap, then r·z with
	// ‖r‖²); pipelined PCG once. Message counts per iteration must reflect
	// that (both also run one halo exchange per iteration).
	cfg := pipeBaseConfig(t)
	std := solveOK(t, cfg)
	pipe := solvePipeOK(t, cfg)
	stdPerIter := float64(std.MsgsSent) / float64(std.Iterations)
	pipePerIter := float64(pipe.MsgsSent) / float64(pipe.Iterations)
	if pipePerIter >= stdPerIter {
		t.Fatalf("pipelined messages/iter %g not below standard %g", pipePerIter, stdPerIter)
	}
}

func TestPipelinedWinsAtHighLatency(t *testing.T) {
	// In a latency-dominated regime (the method's design point) the single
	// collective per iteration must make the modeled runtime per iteration
	// cheaper than standard PCG's.
	model := cluster.DefaultCostModel()
	model.Latency *= 100
	cfg := pipeBaseConfig(t)
	cfg.CostModel = &model
	std := solveOK(t, cfg)
	pipe := solvePipeOK(t, cfg)
	stdPerIter := std.SimTime / float64(std.Iterations)
	pipePerIter := pipe.SimTime / float64(pipe.Iterations)
	if pipePerIter >= stdPerIter {
		t.Fatalf("pipelined %g s/iter not below standard %g s/iter at high latency", pipePerIter, stdPerIter)
	}
}

func TestPipelinedIMCRRecovery(t *testing.T) {
	cfg := pipeBaseConfig(t)
	cfg.Strategy = StrategyIMCR
	cfg.T = 10
	cfg.Phi = 1
	ref := cfg
	ref.Strategy = StrategyNone
	ref.T, ref.Phi = 0, 0
	refRes := solvePipeOK(t, ref)

	cfg.Failure = &FailureSpec{Iteration: refRes.Iterations / 2, Ranks: []int{3}}
	res := solvePipeOK(t, cfg)
	if !res.Recovered {
		t.Fatal("failure did not trigger recovery")
	}
	if res.Iterations < refRes.Iterations-1 || res.Iterations > refRes.Iterations+3 {
		t.Fatalf("trajectory length %d, reference %d", res.Iterations, refRes.Iterations)
	}
	if d := vec.MaxAbsDiff(res.X, refRes.X); d > 1e-6 {
		t.Fatalf("recovered pipelined solution deviates by %g", d)
	}
	if res.WastedIters <= 0 {
		t.Fatalf("rollback must waste iterations, got %d", res.WastedIters)
	}
}

func TestPipelinedIMCRMultipleFailures(t *testing.T) {
	cfg := pipeBaseConfig(t)
	cfg.Strategy = StrategyIMCR
	cfg.T = 10
	cfg.Phi = 2
	cfg.Failure = &FailureSpec{Iteration: 35, Ranks: []int{4, 5}}
	res := solvePipeOK(t, cfg)
	if !res.Recovered || res.RecoveredAt != 30 {
		t.Fatalf("recovered=%v at %d, want rollback to 30", res.Recovered, res.RecoveredAt)
	}
	checkSolution(t, cfg, res, 5e-8)
}

func TestPipelinedLocalRestartAfterFailure(t *testing.T) {
	cfg := pipeBaseConfig(t)
	cfg.Failure = &FailureSpec{Iteration: 40, Ranks: []int{2}}
	res := solvePipeOK(t, cfg)
	checkSolution(t, cfg, res, 5e-8)
	if !res.Recovered {
		t.Fatal("local restart must be recorded as recovery")
	}
}

func TestPipelinedFailureBeforeFirstCheckpoint(t *testing.T) {
	cfg := pipeBaseConfig(t)
	cfg.Strategy = StrategyIMCR
	cfg.T = 50
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: 5, Ranks: []int{1}}
	res := solvePipeOK(t, cfg)
	checkSolution(t, cfg, res, 5e-8)
}

func TestPipelinedRejectsUnsupportedStrategies(t *testing.T) {
	cfg := pipeBaseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 10
	if _, err := SolvePipelined(cfg); err == nil {
		t.Fatal("pipelined + ESRP must be rejected (ref. 16's machinery is not implemented)")
	}
	cfg = pipeBaseConfig(t)
	cfg.Strategy = StrategyESR
	if _, err := SolvePipelined(cfg); err == nil {
		t.Fatal("pipelined + ESR must be rejected")
	}
}

func TestPipelinedDeterministic(t *testing.T) {
	cfg := pipeBaseConfig(t)
	r1 := solvePipeOK(t, cfg)
	r2 := solvePipeOK(t, cfg)
	if r1.Iterations != r2.Iterations || r1.SimTime != r2.SimTime {
		t.Fatalf("nondeterministic: %d/%g vs %d/%g", r1.Iterations, r1.SimTime, r2.Iterations, r2.SimTime)
	}
	if d := vec.MaxAbsDiff(r1.X, r2.X); d != 0 {
		t.Fatalf("solutions differ by %g", d)
	}
}

func TestPipelinedDriftFinite(t *testing.T) {
	// The deeper recurrences are known to drift more than standard PCG;
	// the drift must still be small at these iteration counts.
	cfg := pipeBaseConfig(t)
	res := solvePipeOK(t, cfg)
	if math.IsNaN(res.Drift) || math.Abs(res.Drift) > 1e-3 {
		t.Fatalf("pipelined drift %g out of range", res.Drift)
	}
}
