package core

import (
	"fmt"
	"math"

	"esrp/internal/aspmv"
	"esrp/internal/cluster"
	"esrp/internal/dist"
	"esrp/internal/obs"
	"esrp/internal/precond"
	"esrp/internal/sparse"
	"esrp/internal/vec"
)

// Solve runs the configured PCG solve on a simulated cluster and returns the
// aggregated result. It is deterministic for a fixed configuration.
func Solve(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	model := cluster.DefaultCostModel()
	if cfg.CostModel != nil {
		model = *cfg.CostModel
	}
	var part *dist.Partition
	var plan *aspmv.Plan
	if prep := cfg.Prepared; prep != nil {
		if err := prep.compatibleWith(&cfg); err != nil {
			return nil, err
		}
		part, plan = prep.part, prep.plan
	} else if part, plan, err = buildPartitionPlan(&cfg); err != nil {
		return nil, err
	}
	if ws := cfg.Workspace; ws != nil {
		ws.reset(cfg.Nodes)
	}
	comm := cluster.New(cfg.Nodes, model)
	rec := newRecorder(&cfg)
	comm.Observe(rec)
	comm.RecordSchedule(cfg.Record) // nil = recording off
	if cfg.HostStats != nil {
		comm.ObserveHost(cfg.HostStats)
	}
	result := &Result{}
	// Per-node metric slots (each goroutine writes only its own index, like
	// comm's final clocks): collected host-side after the run so the
	// instrumentation costs nothing on the simulated clock.
	nodeMem := make([]int64, cfg.Nodes)
	nodeHalo := make([]int64, cfg.Nodes)
	nodeKern := make([]string, cfg.Nodes)
	runErr := comm.Run(func(nd *cluster.Node) {
		run, err := newNodeRun(&cfg, nd, part, plan)
		if err != nil {
			panic(err)
		}
		run.main(result)
		nodeMem[nd.GlobalRank()] = run.maxBytes()
		nodeHalo[nd.GlobalRank()] = run.ex.HaloBytes()
		nodeKern[nd.GlobalRank()] = run.kern.Name()
	})
	if runErr != nil {
		return nil, runErr
	}
	result.Kernels = nodeKern
	result.SimTime = comm.MaxClock()
	result.WallTime = comm.WallTime()
	result.BytesSent = comm.BytesSent()
	result.MsgsSent = comm.MsgsSent()
	result.MaxNodeBytes, result.HaloBytes = reduceFootprint(nodeMem, nodeHalo)
	if rec != nil {
		result.Trace = rec.Build(result.SimTime)
	}
	return result, nil
}

// newRecorder materializes the config's observability options: nil unless
// something was asked for, so the disabled path costs nothing anywhere.
func newRecorder(cfg *Config) *obs.Recorder {
	if !cfg.Observe.Enabled() {
		return nil
	}
	return obs.NewRecorder(*cfg.Observe, cfg.Nodes)
}

// reduceFootprint condenses the per-node metric slots: the largest dynamic
// footprint any node held, and the halo traffic summed over nodes.
func reduceFootprint(nodeMem, nodeHalo []int64) (maxMem, halo int64) {
	for i := range nodeMem {
		maxMem = max(maxMem, nodeMem[i])
		halo += nodeHalo[i]
	}
	return maxMem, halo
}

// buildPartition returns the block row partition of the configured solve:
// uniform row counts by default, work-balanced contiguous ranges with
// cfg.BalanceNNZ. The balancing weight models a row's full per-iteration
// cost, not just its SpMV share: 2·nnz flops for the product plus ~16 for
// the row's share of the vector updates plus ~2·blockSize for the block
// Jacobi apply — otherwise balancing the product alone shifts the critical
// path to the vector work of the row-heavy nodes.
func buildPartition(cfg *Config) (*dist.Partition, error) {
	if !cfg.BalanceNNZ {
		return dist.NewBlockPartition(cfg.A.Rows, cfg.Nodes), nil
	}
	perRow := 16.0 + 2*float64(cfg.MaxBlock)
	weights := make([]float64, cfg.A.Rows)
	for i := range weights {
		weights[i] = 2*float64(cfg.A.RowPtr[i+1]-cfg.A.RowPtr[i]) + perRow
	}
	return dist.NewBalancedWeightPartition(weights, cfg.Nodes)
}

// PartitionFor returns the block row partition a solve of cfg would run on
// (defaults applied): the uniform split, or the weight-balanced one with
// cfg.BalanceNNZ. It exists so reporting layers can analyze the exact
// distribution the solver uses instead of re-deriving the weight model.
func PartitionFor(cfg Config) (*dist.Partition, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return buildPartition(&cfg)
}

// nodeRun is the per-node solver state. All of it is O(local + halo): the
// node holds its block rows as a compact local matrix, its vector blocks,
// and an owned+ghost assembly buffer — never a full-length vector.
type nodeRun struct {
	cfg  *Config
	nd   *cluster.Node
	part *dist.Partition
	plan *aspmv.Plan
	pc   precond.Preconditioner

	// tr is this rank's observability buffer — nil with observation off
	// (every obs.Rank method no-ops on nil, so span sites carry no guards).
	// It lives on the cluster node's shared state, so it survives the
	// no-spare shrink's communicator replacement.
	tr *obs.Rank

	lo, hi   int // owned global index range
	m        int // local size
	nnzLocal float64

	// alloc provides the steady-state vector buffers: fresh makes by
	// default, workspace-recycled ones under Config.Workspace. alloc may
	// return dirty buffers (callers must fully overwrite before reading);
	// allocZero always clears, for vectors whose zero value is semantic.
	alloc     func(n int) []float64
	allocZero func(n int) []float64

	local *sparse.Local    // block rows in the compact owned+ghost index space
	kern  sparse.Kernel    // planned SpMV layout over those rows (Config.Kernel)
	ex    *aspmv.Exchanger // halo exchange driver (Start/Finish halves)

	// Dynamic solver state (local blocks). These are exactly the data a
	// node failure destroys.
	x, r, z, p  []float64
	q           []float64 // local rows of A·p
	pg          []float64 // owned+ghost SpMV input buffer, length m + g
	rz          float64   // r·z of the current iteration
	betaPrev    float64   // β of the previous iteration
	bNormGlobal float64

	res resilience // strategy-specific redundant storage (nil for None)

	// Failure timeline state. Every node advances it identically (the
	// timeline is deterministic shared configuration), so no communication
	// is needed to agree on what fires when.
	events     []FailureSpec   // remaining-and-past events, cfg.Failures
	nextEvent  int             // index of the next unfired event
	sparesLeft int             // replacement nodes remaining (-1 = unlimited)
	phi        int             // effective redundancy of the current cluster
	eventLog   []RecoveryEvent // handled events, in order

	recoveryTime float64
	recoveredAt  int
	wastedIters  int
	recovered    bool
	retired      bool // no-spare shrink: this node failed and dropped out

	peakBytes int64 // transient recovery high-water mark (see notePeak)

	// Recovery scratch, grown on first use and reused across events, so
	// failure-heavy campaign cells do not re-allocate the gather buffers per
	// event. Not part of stateBytes: the peak accounting (notePeak) already
	// samples these live during recovery.
	recPrev, recCur, recW []float64
	recCovered            []int
	sendScratch           []float64

	residLog []float64
}

// growF resizes buf to n floats, reusing its backing array when possible.
// The returned slice is zeroed.
func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// growI is growF for int slices.
func growI(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func newNodeRun(cfg *Config, nd *cluster.Node, part *dist.Partition, plan *aspmv.Plan) (*nodeRun, error) {
	s := nd.Rank()
	lo, hi := part.Lo(s), part.Hi(s)
	var pc precond.Preconditioner
	var local *sparse.Local
	var kern sparse.Kernel
	if prep := cfg.Prepared; prep != nil {
		// The shared context already built (and validated) this rank's
		// preconditioner, compact local matrix and planned kernel.
		pc, local, kern = prep.pcs[s], prep.locals[s], prep.kerns[s]
	} else {
		var err error
		pc, err = precond.Build(cfg.PrecondKind, cfg.A, lo, hi, cfg.MaxBlock)
		if err != nil {
			return nil, err
		}
		if pc.CouplesAcrossNodes() {
			return nil, fmt.Errorf("core: preconditioners coupling across node boundaries are not supported by the reconstruction")
		}
		local, err = sparse.NewLocal(cfg.A, lo, hi, plan.Ghost(s))
		if err != nil {
			return nil, fmt.Errorf("core: local matrix extraction: %w", err)
		}
		kern = sparse.BuildKernel(local, cfg.Kernel)
	}
	// Fresh makes by default; workspace-recycled buffers under
	// Config.Workspace. Only x needs the cleared variant (zero initial
	// guess); every other vector is fully overwritten before its first read
	// (bootstrap computes r, z, p, q and the exchange fills pg's ghost run).
	alloc := func(n int) []float64 { return make([]float64, n) }
	allocZero := alloc
	if ws := cfg.Workspace; ws != nil {
		na := ws.node(nd.GlobalRank())
		alloc, allocZero = na.grab, na.grabZero
	}
	run := &nodeRun{
		cfg: cfg, nd: nd, part: part, plan: plan, pc: pc, tr: nd.Trace(),
		lo: lo, hi: hi, m: hi - lo, nnzLocal: float64(local.NNZ()),
		local: local, kern: kern, ex: plan.NewExchanger(s), alloc: alloc, allocZero: allocZero,
		x: allocZero(hi - lo), r: alloc(hi - lo),
		z: alloc(hi - lo), p: alloc(hi - lo),
		q: alloc(hi - lo), pg: alloc(hi - lo + local.G()),
		events: cfg.Failures, phi: cfg.Phi,
		sparesLeft: initialSpares(cfg),
	}
	switch cfg.Strategy {
	case StrategyESR, StrategyESRP:
		run.res = newESRState(run)
	case StrategyIMCR:
		run.res = newIMCRState(run)
	}
	return run, nil
}

// initialSpares maps the config's pool knobs to the per-node counter:
// NoSpareNodes is the empty pool, Spares == 0 the unlimited one.
func initialSpares(cfg *Config) int {
	if cfg.NoSpareNodes {
		return 0
	}
	if cfg.Spares == 0 {
		return -1
	}
	return cfg.Spares
}

// dueEvent returns the timeline event firing at iteration j, or nil. It does
// not advance the cursor; handleFailure does once the event is processed.
func (run *nodeRun) dueEvent(j int) *FailureSpec {
	if run.nextEvent < len(run.events) && run.events[run.nextEvent].Iteration == j {
		return &run.events[run.nextEvent]
	}
	return nil
}

// pendingEvents reports whether unfired events remain on the timeline.
func (run *nodeRun) pendingEvents() bool { return run.nextEvent < len(run.events) }

// spmv computes q = (A·p) on the local rows via the compact halo exchange,
// dispatched through the node's planned kernel (run.kern). Unless
// cfg.BlockingExchange, the interior-rows product runs between the exchange's
// Start and Finish halves, hiding the halo latency behind local compute on
// the simulated clock. If augmented, the received redundant copy is returned
// by value (ok=true) for the caller to retain — a pointer here would escape
// to the heap once per iteration.
func (run *nodeRun) spmv(augmented bool, iter int) (rc aspmv.ReceivedCopy, ok bool) {
	if !augmented {
		run.spmvInto(run.q, run.p)
		return aspmv.ReceivedCopy{}, false
	}
	copy(run.pg[:run.m], run.p)
	rc = run.ex.MulOverlappedAugmented(run.nd, run.kern, run.q, run.pg, iter, run.cfg.BlockingExchange)
	return rc, true
}

// spmvInto computes dst = A·src on the local rows via the plain compact
// exchange, with the same overlap scheme as spmv. src has length m.
func (run *nodeRun) spmvInto(dst, src []float64) {
	copy(run.pg[:run.m], src)
	run.ex.MulOverlapped(run.nd, run.kern, dst, run.pg, run.cfg.BlockingExchange)
}

// compute advances the simulated clock by flops·FlopTime and attributes
// the interval to kind on the node's span timeline. With observation off
// this degenerates to nd.Compute: the clock reads are plain loads and the
// span call no-ops on the nil buffer — no branches worth measuring, no
// allocation, identical simulated time either way.
func (run *nodeRun) compute(kind obs.Kind, flops float64) {
	t0 := run.nd.Clock()
	run.nd.Compute(flops)
	run.tr.Span(kind, t0, run.nd.Clock())
}

// dot2 performs the fused allreduce of two local partial sums, the way an
// optimized PCG batches its residual norms.
func (run *nodeRun) dot2(a, b float64) (float64, float64) {
	buf := [2]float64{a, b}
	run.nd.Allreduce(cluster.OpSum, buf[:])
	return buf[0], buf[1]
}

// bootstrap initializes r, z, p, rz and the global ‖b‖ from x0 (line 1 of
// Alg. 1) and returns the initial relative residual ‖r₀‖/‖b‖.
func (run *nodeRun) bootstrap() float64 {
	bLoc := run.cfg.B[run.lo:run.hi]
	if run.cfg.X0 != nil {
		copy(run.x, run.cfg.X0[run.lo:run.hi])
	}
	// r = b - A x0 (reuses the SpMV path with p := x).
	copy(run.p, run.x)
	run.spmv(false, -1)
	vec.Sub(run.r, bLoc, run.q)
	run.compute(obs.KindVec, float64(run.m))
	run.pc.Apply(run.z, run.r)
	run.compute(obs.KindPrecond, run.pc.ApplyFlops())
	copy(run.p, run.z)
	rzLoc, rrLoc := vec.Dot2(run.r, run.z)
	bbLoc := vec.Dot(bLoc, bLoc)
	run.compute(obs.KindVec, 6*float64(run.m))
	buf := [3]float64{rzLoc, bbLoc, rrLoc}
	run.nd.Allreduce(cluster.OpSum, buf[:])
	run.rz = buf[0]
	run.bNormGlobal = math.Sqrt(buf[1])
	if run.bNormGlobal == 0 {
		run.bNormGlobal = 1 // solving Ax=0: converge on absolute residual
	}
	return math.Sqrt(buf[2]) / run.bNormGlobal
}

// main is the SPMD body executed by every node. All communication goes
// through run.nd, which the no-spare-node recovery replaces with the
// surviving sub-communicator mid-solve; a node that failed in no-spare mode
// sets run.retired and drops out.
func (run *nodeRun) main(result *Result) {
	cfg := run.cfg
	relres := run.bootstrap()

	totalSteps := 0
	converged := relres < cfg.Rtol // x0 may already satisfy the tolerance
	j := 0
	for ; !converged && j < cfg.MaxIter; totalSteps++ {
		run.tr.SetIter(j)
		// Storage-stage bookkeeping and the (possibly augmented) SpMV.
		augmented := false
		if run.res != nil {
			augmented = run.res.beforeSpMV(j)
		}
		if rc, ok := run.spmv(augmented, j); ok {
			run.res.retain(rc)
		}

		// Failure injection point: immediately after the SpMV communication
		// of the marked iteration, as in the paper's framework, so that the
		// redundant copies of this iteration (if it is a storage iteration)
		// have been pushed. Events fire in timeline order; strictly
		// ascending iterations guarantee each fires at most once even
		// across rollbacks.
		if ev := run.dueEvent(j); ev != nil {
			jrec, mode := run.handleFailure(j, ev)
			if run.retired {
				return // no-spare shrink: this node is gone
			}
			if mode != RecoverySkipped {
				run.wastedIters += j - jrec
				run.recoveredAt = jrec
				run.recovered = true
				j = jrec
				continue
			}
		}

		// α = r·z / p·(A p)
		pqLoc := vec.Dot(run.p, run.q)
		run.compute(obs.KindVec, 2*float64(run.m))
		pq := run.nd.AllreduceScalar(cluster.OpSum, pqLoc)
		alpha := run.rz / pq

		vec.AxpyPair(alpha, run.p, run.x, -alpha, run.q, run.r)
		run.compute(obs.KindVec, 4*float64(run.m))

		// Residual replacement (ref. 27): swap the recurrence residual for
		// the true residual before z, β and p are derived from it, so the
		// reconstruction recurrences stay valid.
		if rr := cfg.ResidualReplacementInterval; rr > 0 && (j+1)%rr == 0 {
			run.spmvInto(run.q, run.x)
			vec.Sub(run.r, run.cfg.B[run.lo:run.hi], run.q)
			run.compute(obs.KindVec, float64(run.m))
		}

		run.pc.Apply(run.z, run.r)
		run.compute(obs.KindPrecond, run.pc.ApplyFlops())

		rzLoc, rrLoc := vec.Dot2(run.r, run.z)
		run.compute(obs.KindVec, 4*float64(run.m))
		rzNew, rr := run.dot2(rzLoc, rrLoc)

		beta := rzNew / run.rz
		vec.XpayInto(run.p, run.z, beta, run.p)
		run.compute(obs.KindVec, 2*float64(run.m))

		run.rz = rzNew
		run.betaPrev = beta
		if run.res != nil {
			run.res.afterIteration(j, beta)
		}

		relres = math.Sqrt(rr) / run.bNormGlobal
		if cfg.RecordResiduals && run.nd.Rank() == 0 {
			run.residLog = append(run.residLog, relres)
		}
		// Series sample: only rank 0's buffer has the series enabled, so
		// this is a no-op everywhere else (and everywhere with obs off).
		run.tr.Point(totalSteps, j, relres, run.nd.Clock(), run.nd.BytesSent(), run.nd.MsgsSent())
		j++
		if relres < cfg.Rtol {
			converged = true
		}
	}

	run.tr.SetIter(-1) // epilogue: drift check and the final gather
	drift := run.residualDrift(relres)
	run.nd.Sched().RTFinal() // this rank's recoveryTime enters the reduction
	recovery := run.nd.AllreduceScalar(cluster.OpMax, run.recoveryTime)

	xParts := run.nd.Gather(0, run.x)
	if run.nd.Rank() == 0 {
		x := make([]float64, cfg.A.Rows)
		for s, xp := range xParts {
			copy(x[run.part.Lo(s):run.part.Hi(s)], xp)
		}
		result.X = x
		result.Converged = converged
		result.Iterations = j
		result.TotalSteps = totalSteps
		result.RelResidual = relres
		result.RecoveryTime = recovery
		result.Recovered = run.recovered
		result.RecoveredAt = run.recoveredAt
		result.WastedIters = run.wastedIters
		result.Drift = drift
		result.Residuals = run.residLog
		result.ActiveNodes = run.nd.Size()
		result.Events = run.eventLog
	}
}

// stateBytes returns this node's steady-state dynamic solver footprint in
// bytes: the local vector blocks, the owned+ghost SpMV buffer, and the
// strategy's redundant storage. Static shared data (matrix, plan,
// preconditioner) stands in for node-local files reloaded from safe storage
// and is excluded, as in the paper's measurement.
func (run *nodeRun) stateBytes() int64 {
	b := 8 * int64(len(run.x)+len(run.r)+len(run.z)+len(run.p)+len(run.q)+len(run.pg))
	if run.res != nil {
		b += run.res.stateBytes()
	}
	return b
}

// notePeak samples a transient recovery high-water mark: the steady state
// plus extra bytes of live recovery scratch (reconstruction gathers, adopter
// repartitioning buffers, checkpoint payloads in flight). Result.MaxNodeBytes
// reports the larger of the end-of-solve steady state and this peak, so the
// memory figure stays honest across recovery-heavy scenarios.
func (run *nodeRun) notePeak(extra int64) {
	if b := run.stateBytes() + extra; b > run.peakBytes {
		run.peakBytes = b
	}
}

// maxBytes is the footprint reported per node: steady state or recovery
// peak, whichever is larger.
func (run *nodeRun) maxBytes() int64 {
	return max(run.stateBytes(), run.peakBytes)
}

// residualDrift evaluates Eq. 2 of the paper after convergence:
// (‖r‖₂ − ‖b−Ax‖₂) / ‖b−Ax‖₂, comparing the recurrence residual with the
// true residual of the final iterand.
func (run *nodeRun) residualDrift(finalRelres float64) float64 {
	copy(run.p, run.x)
	run.spmv(false, -2)
	bLoc := run.cfg.B[run.lo:run.hi]
	trueLoc := 0.0
	for i := 0; i < run.m; i++ {
		d := bLoc[i] - run.q[i]
		trueLoc += d * d
	}
	run.compute(obs.KindVec, 3*float64(run.m))
	trueSq := run.nd.AllreduceScalar(cluster.OpSum, trueLoc)
	trueNorm := math.Sqrt(trueSq)
	if trueNorm == 0 {
		return 0
	}
	recNorm := finalRelres * run.bNormGlobal
	return (recNorm - trueNorm) / trueNorm
}
