package core

import (
	"math"
	"os"
	"testing"

	"esrp/internal/cluster"
	"esrp/internal/matgen"
	"esrp/internal/precond"
	"esrp/internal/sparse"
	"esrp/internal/vec"
)

func fastModel() *cluster.CostModel {
	m := cluster.DefaultCostModel()
	return &m
}

// testKernel returns the SpMV kernel kind the suite runs under: KernelAuto
// by default, or a forced layout from ESRP_TEST_KERNEL — how CI's
// kernel-matrix leg pins the golden trajectories and alloc gates once per
// forced kernel so the fallback paths cannot rot.
func testKernel(t *testing.T) sparse.KernelKind {
	t.Helper()
	s := os.Getenv("ESRP_TEST_KERNEL")
	if s == "" {
		return sparse.KernelAuto
	}
	kind, err := sparse.ParseKernelKind(s)
	if err != nil {
		t.Fatalf("ESRP_TEST_KERNEL: %v", err)
	}
	return kind
}

// baseConfig returns a small but non-trivial problem: a 2304-row Poisson
// system on 8 nodes with block Jacobi, which the reference solver needs
// ~105 iterations for — enough room to inject failures mid-solve.
func baseConfig(t *testing.T) Config {
	t.Helper()
	a := matgen.Poisson2D(48, 48)
	b, _ := matgen.RHSForSolution(a, 12)
	return Config{
		A: a, B: b, Nodes: 8,
		Rtol:        1e-8,
		PrecondKind: precond.BlockJacobi,
		MaxBlock:    10,
		CostModel:   fastModel(),
		Kernel:      testKernel(t),
	}
}

func solveOK(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations (relres %g)", res.Iterations, res.RelResidual)
	}
	return res
}

func checkSolution(t *testing.T, cfg Config, res *Result, tol float64) {
	t.Helper()
	// ‖b − A·x‖/‖b‖ must honor the convergence tolerance.
	ax := make([]float64, cfg.A.Rows)
	cfg.A.MulVec(ax, res.X)
	num, den := 0.0, 0.0
	for i := range ax {
		d := cfg.B[i] - ax[i]
		num += d * d
		den += cfg.B[i] * cfg.B[i]
	}
	if rel := math.Sqrt(num / den); rel > tol {
		t.Fatalf("true relative residual %g > %g", rel, tol)
	}
}

func TestReferenceSolveBase(t *testing.T) {
	cfg := baseConfig(t)
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 5e-8)
	if res.Recovered || res.RecoveryTime != 0 || res.WastedIters != 0 {
		t.Fatal("failure-free run must report no recovery")
	}
	if res.SimTime <= 0 || res.BytesSent <= 0 {
		t.Fatal("modeled time and traffic must be positive")
	}
	if res.TotalSteps != res.Iterations {
		t.Fatalf("TotalSteps %d != Iterations %d without failures", res.TotalSteps, res.Iterations)
	}
}

func TestReferenceSolvePoissonJacobiAndNone(t *testing.T) {
	a := matgen.Poisson2D(16, 16)
	b, xstar := matgen.RHSForSolution(a, 3)
	for _, pk := range []precond.Kind{precond.None, precond.Jacobi, precond.BlockJacobi} {
		cfg := Config{A: a, B: b, Nodes: 4, Rtol: 1e-10, PrecondKind: pk, CostModel: fastModel()}
		res := solveOK(t, cfg)
		if d := vec.MaxAbsDiff(res.X, xstar); d > 1e-6 {
			t.Fatalf("%v: solution off by %g", pk, d)
		}
	}
}

func TestPreconditioningReducesIterations(t *testing.T) {
	// BandedSPD has strong diagonal variation but moderate conditioning, so
	// plain CG converges and diagonal-based preconditioning visibly helps.
	// (The EmiliaLike analog is deliberately too ill-conditioned for
	// unpreconditioned CG, like the real Emilia_923.)
	a := matgen.BandedSPD(400, 6, 4)
	b := matgen.RHSOnes(a.Rows)
	iters := map[precond.Kind]int{}
	for _, pk := range []precond.Kind{precond.None, precond.BlockJacobi} {
		cfg := Config{A: a, B: b, Nodes: 4, Rtol: 1e-8, PrecondKind: pk, CostModel: fastModel()}
		iters[pk] = solveOK(t, cfg).Iterations
	}
	if iters[precond.BlockJacobi] >= iters[precond.None] {
		t.Fatalf("block Jacobi (%d iters) should beat plain CG (%d iters)",
			iters[precond.BlockJacobi], iters[precond.None])
	}
}

func TestSolveDeterministic(t *testing.T) {
	cfg := baseConfig(t)
	r1 := solveOK(t, cfg)
	r2 := solveOK(t, cfg)
	if r1.Iterations != r2.Iterations || r1.SimTime != r2.SimTime {
		t.Fatalf("nondeterministic: %d/%g vs %d/%g", r1.Iterations, r1.SimTime, r2.Iterations, r2.SimTime)
	}
	if d := vec.MaxAbsDiff(r1.X, r2.X); d != 0 {
		t.Fatalf("solutions differ by %g between identical runs", d)
	}
}

// ESRP without failures must follow bit-for-bit the reference trajectory:
// the augmented exchange moves extra data but performs identical arithmetic.
func TestESRPFailureFreeTrajectoryIdentical(t *testing.T) {
	ref := baseConfig(t)
	refRes := solveOK(t, ref)

	esrp := baseConfig(t)
	esrp.Strategy = StrategyESRP
	esrp.T = 20
	esrp.Phi = 3
	res := solveOK(t, esrp)

	if res.Iterations != refRes.Iterations {
		t.Fatalf("iterations %d != reference %d", res.Iterations, refRes.Iterations)
	}
	if d := vec.MaxAbsDiff(res.X, refRes.X); d != 0 {
		t.Fatalf("ESRP failure-free trajectory deviates by %g", d)
	}
	if res.SimTime <= refRes.SimTime {
		t.Fatal("redundant storage must cost modeled time")
	}
}

func TestESRFailureFreeCostsMoreThanESRP(t *testing.T) {
	mk := func(strategy Strategy, T int) float64 {
		cfg := baseConfig(t)
		cfg.Strategy = strategy
		cfg.T = T
		cfg.Phi = 3
		return solveOK(t, cfg).SimTime
	}
	esr := mk(StrategyESR, 1)
	esrp := mk(StrategyESRP, 20)
	if esrp >= esr {
		t.Fatalf("ESRP (%g s) must be cheaper than ESR (%g s) failure-free", esrp, esr)
	}
}

func referenceFor(t *testing.T, cfg Config) *Result {
	t.Helper()
	ref := cfg
	ref.Strategy = StrategyNone
	ref.T, ref.Phi = 0, 0
	ref.Failure = nil
	ref.NoSpareNodes = false
	return solveOK(t, ref)
}

// The reconstruction-exactness property: after a failure and recovery, the
// solver must converge to the same solution in the same number of
// trajectory iterations as the undisturbed solver (up to floating-point
// perturbation from the inner solves).
func checkExactRecovery(t *testing.T, cfg Config, maxExtraIters int) *Result {
	t.Helper()
	refRes := referenceFor(t, cfg)
	res := solveOK(t, cfg)
	if !res.Recovered {
		t.Fatal("failure did not trigger recovery")
	}
	if res.Iterations < refRes.Iterations-1 || res.Iterations > refRes.Iterations+maxExtraIters {
		t.Fatalf("trajectory length %d, reference %d (max extra %d)",
			res.Iterations, refRes.Iterations, maxExtraIters)
	}
	if d := vec.MaxAbsDiff(res.X, refRes.X); d > 1e-6 {
		t.Fatalf("recovered solution deviates from reference by %g", d)
	}
	checkSolution(t, cfg, res, 5e-8)
	if res.RecoveryTime <= 0 {
		t.Fatal("recovery must cost modeled time")
	}
	return res
}

func TestESRSingleFailureExactRecovery(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESR
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: 30, Ranks: []int{3}}
	res := checkExactRecovery(t, cfg, 3)
	if res.RecoveredAt != 30 {
		t.Fatalf("ESR must reconstruct the failure iteration, got %d", res.RecoveredAt)
	}
	if res.WastedIters != 0 {
		t.Fatalf("ESR wastes no iterations, got %d", res.WastedIters)
	}
}

func TestESRPSingleFailureExactRecovery(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 10
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: 38, Ranks: []int{2}}
	res := checkExactRecovery(t, cfg, 3)
	// Last completed storage stage before iteration 38 with T=10: (30, 31).
	if res.RecoveredAt != 31 {
		t.Fatalf("RecoveredAt = %d, want 31", res.RecoveredAt)
	}
	if res.WastedIters != 38-31 {
		t.Fatalf("WastedIters = %d, want 7", res.WastedIters)
	}
	if res.TotalSteps != res.Iterations+res.WastedIters+1 {
		t.Fatalf("TotalSteps %d != Iterations %d + wasted %d + 1",
			res.TotalSteps, res.Iterations, res.WastedIters)
	}
}

func TestESRPMultipleNodeFailures(t *testing.T) {
	for _, ranks := range [][]int{{0, 1, 2}, {3, 4, 5}, {5, 6, 7}} {
		cfg := baseConfig(t)
		cfg.Strategy = StrategyESRP
		cfg.T = 10
		cfg.Phi = 3
		cfg.Failure = &FailureSpec{Iteration: 45, Ranks: ranks}
		res := checkExactRecovery(t, cfg, 3)
		if res.RecoveredAt != 41 {
			t.Fatalf("ranks %v: RecoveredAt = %d, want 41", ranks, res.RecoveredAt)
		}
	}
}

// Failure striking after the first push of a storage stage must roll back to
// the *previous* stage — the scenario that requires queue depth 3 (Fig. 1).
func TestESRPFailureDuringStorageStage(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 10
	cfg.Phi = 2
	cfg.Failure = &FailureSpec{Iteration: 40, Ranks: []int{1, 2}} // right after the push of iteration 40
	res := checkExactRecovery(t, cfg, 3)
	if res.RecoveredAt != 31 {
		t.Fatalf("mid-stage failure must recover the previous stage (31), got %d", res.RecoveredAt)
	}
}

// Failure on the second stage iteration: the stage just completed, rollback
// loses only the partial iteration.
func TestESRPFailureAtStageCompletion(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 10
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: 41, Ranks: []int{4}}
	res := checkExactRecovery(t, cfg, 3)
	if res.RecoveredAt != 41 {
		t.Fatalf("RecoveredAt = %d, want 41", res.RecoveredAt)
	}
	if res.WastedIters != 0 {
		t.Fatalf("WastedIters = %d, want 0", res.WastedIters)
	}
}

// The same exactness property on the 27-point structural stencil the
// harness uses (the EmiliaLike analog), at its natural iteration count.
func TestESRPRecoveryOnEmiliaLikeStencil(t *testing.T) {
	a := matgen.EmiliaLike(8, 8, 8, 11) // 512 rows, C ≈ 32
	b, _ := matgen.RHSForSolution(a, 12)
	cfg := Config{
		A: a, B: b, Nodes: 8, Rtol: 1e-8,
		PrecondKind: precond.BlockJacobi, MaxBlock: 10,
		CostModel: fastModel(),
		Strategy:  StrategyESRP, T: 5, Phi: 2,
		Failure: &FailureSpec{Iteration: 18, Ranks: []int{3, 4}},
	}
	res := checkExactRecovery(t, cfg, 3)
	if res.RecoveredAt != 16 {
		t.Fatalf("RecoveredAt = %d, want 16", res.RecoveredAt)
	}
}

func TestIMCRSingleFailure(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyIMCR
	cfg.T = 10
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: 38, Ranks: []int{5}}
	res := checkExactRecovery(t, cfg, 3)
	if res.RecoveredAt != 31 {
		t.Fatalf("RecoveredAt = %d, want 31", res.RecoveredAt)
	}
}

func TestIMCRMultipleFailures(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyIMCR
	cfg.T = 10
	cfg.Phi = 3
	cfg.Failure = &FailureSpec{Iteration: 45, Ranks: []int{6, 7}}
	res := checkExactRecovery(t, cfg, 3)
	if res.RecoveredAt != 41 {
		t.Fatalf("RecoveredAt = %d, want 41", res.RecoveredAt)
	}
}

// IMCR recovery is a pure data transfer; ESRP recovery solves inner systems.
// The modeled reconstruction cost must reflect that (a headline observation
// of the paper's Tables 2 and 3).
func TestIMCRRecoveryCheaperThanESRP(t *testing.T) {
	mk := func(s Strategy) float64 {
		cfg := baseConfig(t)
		cfg.Strategy = s
		cfg.T = 10
		cfg.Phi = 1
		cfg.Failure = &FailureSpec{Iteration: 38, Ranks: []int{3}}
		return solveOK(t, cfg).RecoveryTime
	}
	imcr, esrp := mk(StrategyIMCR), mk(StrategyESRP)
	if imcr >= esrp {
		t.Fatalf("IMCR recovery (%g s) should be cheaper than ESRP reconstruction (%g s)", imcr, esrp)
	}
}

func TestNoneLocalRestartConvergesSlowly(t *testing.T) {
	cfg := baseConfig(t)
	refIters := solveOK(t, cfg).Iterations
	cfg.Failure = &FailureSpec{Iteration: refIters / 2, Ranks: []int{3}}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 5e-8)
	if !res.Recovered {
		t.Fatal("restart must be reported as a recovery event")
	}
	if res.Iterations <= refIters {
		t.Fatalf("local restart (%d iters) should be slower than the undisturbed solver (%d)",
			res.Iterations, refIters)
	}
}

func TestESRPFailureBeforeFirstStageFallsBack(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 50
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: 5, Ranks: []int{1}} // before stage (50,51)
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 5e-8)
	if !res.Recovered {
		t.Fatal("fallback restart must still be reported")
	}
}

func TestIMCRFailureBeforeFirstCheckpointFallsBack(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyIMCR
	cfg.T = 50
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: 5, Ranks: []int{1}}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 5e-8)
}

func TestGatherInnerSolveAblation(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 10
	cfg.Phi = 3
	cfg.Failure = &FailureSpec{Iteration: 45, Ranks: []int{2, 3, 4}}
	cfg.GatherInnerSolve = true
	res := checkExactRecovery(t, cfg, 3)
	if res.RecoveredAt != 41 {
		t.Fatalf("RecoveredAt = %d, want 41", res.RecoveredAt)
	}
}

func TestResidualDriftSmall(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 10
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: 38, Ranks: []int{3}}
	res := solveOK(t, cfg)
	if math.Abs(res.Drift) > 1 {
		t.Fatalf("residual drift %g implausibly large", res.Drift)
	}
}

func TestRecordResiduals(t *testing.T) {
	cfg := baseConfig(t)
	cfg.RecordResiduals = true
	res := solveOK(t, cfg)
	if len(res.Residuals) != res.TotalSteps {
		t.Fatalf("recorded %d residuals, want %d", len(res.Residuals), res.TotalSteps)
	}
	if last := res.Residuals[len(res.Residuals)-1]; last >= cfg.Rtol {
		t.Fatalf("final recorded residual %g ≥ rtol", last)
	}
}

func TestConfigValidation(t *testing.T) {
	a := matgen.Poisson2D(4, 4)
	b := matgen.RHSOnes(16)
	bad := []Config{
		{A: nil, B: b, Nodes: 2},
		{A: a, B: b[:3], Nodes: 2},
		{A: a, B: b, Nodes: 0},
		{A: a, B: b, Nodes: 32},                               // more nodes than rows
		{A: a, B: b, Nodes: 2, X0: make([]float64, 5)},        // bad x0
		{A: a, B: b, Nodes: 2, Strategy: StrategyESRP, T: 2},  // T too small
		{A: a, B: b, Nodes: 2, Strategy: StrategyIMCR, T: 0},  // T missing
		{A: a, B: b, Nodes: 2, Strategy: StrategyESR, Phi: 5}, // phi ≥ nodes
		{A: a, B: b, Nodes: 4, Strategy: StrategyESR, Phi: 1, Failure: &FailureSpec{Iteration: 1, Ranks: []int{1, 2}}}, // psi > phi
		{A: a, B: b, Nodes: 4, Strategy: StrategyESR, Phi: 3, Failure: &FailureSpec{Iteration: 1, Ranks: []int{1, 3}}}, // non-contiguous
		{A: a, B: b, Nodes: 4, Strategy: StrategyESR, Phi: 3, Failure: &FailureSpec{Iteration: -1, Ranks: []int{1}}},   // bad iteration
		{A: a, B: b, Nodes: 4, Strategy: StrategyESR, Phi: 3, Failure: &FailureSpec{Iteration: 1, Ranks: []int{7}}},    // bad rank
		{A: a, B: b, Nodes: 4, Strategy: StrategyESR, Phi: 3, Failure: &FailureSpec{Iteration: 1, Ranks: nil}},         // no ranks
	}
	for i, cfg := range bad {
		if _, err := Solve(cfg); err == nil {
			t.Fatalf("config %d must be rejected", i)
		}
	}
	rect := sparse.NewBuilder(3, 4)
	rect.Add(0, 0, 1)
	if _, err := Solve(Config{A: rect.Build(), B: make([]float64, 3), Nodes: 1}); err == nil {
		t.Fatal("rectangular matrix must be rejected")
	}
}

func TestStrategyStringParse(t *testing.T) {
	for _, s := range []Strategy{StrategyNone, StrategyESR, StrategyESRP, StrategyIMCR} {
		p, err := ParseStrategy(s.String())
		if err != nil {
			t.Fatal(err)
		}
		if p != s {
			t.Fatalf("round trip %v → %v", s, p)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

func TestX0InitialGuess(t *testing.T) {
	a := matgen.Poisson2D(8, 8)
	b, xstar := matgen.RHSForSolution(a, 9)
	cfg := Config{A: a, B: b, Nodes: 2, Rtol: 1e-10, PrecondKind: precond.Jacobi,
		X0: xstar, CostModel: fastModel()}
	res := solveOK(t, cfg)
	if res.Iterations > 1 {
		t.Fatalf("starting at the solution should converge immediately, took %d", res.Iterations)
	}
}

func TestSingleNodeCluster(t *testing.T) {
	a := matgen.Poisson2D(6, 6)
	b := matgen.RHSOnes(36)
	cfg := Config{A: a, B: b, Nodes: 1, PrecondKind: precond.BlockJacobi, CostModel: fastModel()}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 5e-8)
}

func TestZeroRHS(t *testing.T) {
	a := matgen.Poisson2D(6, 6)
	cfg := Config{A: a, B: make([]float64, 36), Nodes: 2, CostModel: fastModel()}
	res := solveOK(t, cfg)
	if vec.Norm2(res.X) != 0 {
		t.Fatalf("Ax=0 must give x=0, got norm %g", vec.Norm2(res.X))
	}
}
