package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"esrp/internal/obs"
)

// TestTraceNilWhenDisabled pins the disabled contract: without Observe the
// result carries no trace and the recorder machinery stays off the path.
func TestTraceNilWhenDisabled(t *testing.T) {
	res := solveOK(t, baseConfig(t))
	if res.Trace != nil {
		t.Fatal("Result.Trace must be nil without Config.Observe")
	}
	cfg := baseConfig(t)
	cfg.Observe = &obs.Options{} // present but all-off: still disabled
	if res := solveOK(t, cfg); res.Trace != nil {
		t.Fatal("Result.Trace must be nil for zero Observe options")
	}
}

// TestTraceDoesNotPerturbSolve is the observer-effect gate: turning the
// recorder on must not change one bit of the trajectory or the modeled
// runtime, for the standard and the pipelined solver, with and without
// failures.
func TestTraceDoesNotPerturbSolve(t *testing.T) {
	run := func(name string, mut func(*Config), solver func(Config) (*Result, error)) {
		t.Helper()
		plain := baseConfig(t)
		mut(&plain)
		traced := plain
		traced.Observe = &obs.Options{Trace: true, Series: true}
		a, err := solver(plain)
		if err != nil {
			t.Fatalf("%s plain: %v", name, err)
		}
		b, err := solver(traced)
		if err != nil {
			t.Fatalf("%s traced: %v", name, err)
		}
		if b.Trace == nil {
			t.Fatalf("%s: traced run returned no trace", name)
		}
		if a.SimTime != b.SimTime {
			t.Errorf("%s: SimTime %v != %v with tracing on", name, a.SimTime, b.SimTime)
		}
		if a.Iterations != b.Iterations || a.RelResidual != b.RelResidual {
			t.Errorf("%s: trajectory changed with tracing on", name)
		}
		if !reflect.DeepEqual(a.X, b.X) {
			t.Errorf("%s: iterand changed with tracing on", name)
		}
		if a.BytesSent != b.BytesSent || a.MsgsSent != b.MsgsSent {
			t.Errorf("%s: traffic changed with tracing on", name)
		}
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Errorf("%s: recovery events changed with tracing on", name)
		}
	}

	run("esrp-failure", func(cfg *Config) {
		cfg.Strategy = StrategyESRP
		cfg.T = 20
		cfg.Phi = 1
		cfg.Failure = &FailureSpec{Iteration: 50, Ranks: []int{3}}
	}, Solve)
	run("imcr-failure", func(cfg *Config) {
		cfg.Strategy = StrategyIMCR
		cfg.T = 20
		cfg.Phi = 1
		cfg.Failure = &FailureSpec{Iteration: 50, Ranks: []int{3}}
	}, Solve)
	run("none", func(cfg *Config) { cfg.Strategy = StrategyNone }, Solve)
	run("pipelined-imcr", func(cfg *Config) {
		cfg.Strategy = StrategyIMCR
		cfg.T = 20
		cfg.Phi = 1
		cfg.Failure = &FailureSpec{Iteration: 50, Ranks: []int{3}}
	}, SolvePipelined)
}

// TestTraceByteDeterminism pins the export contract: the same configuration
// always yields byte-identical Chrome trace JSON.
func TestTraceByteDeterminism(t *testing.T) {
	render := func() []byte {
		cfg := baseConfig(t)
		cfg.Strategy = StrategyESRP
		cfg.T = 20
		cfg.Phi = 1
		cfg.Failures = []FailureSpec{{Iteration: 30, Ranks: []int{2}}, {Iteration: 60, Ranks: []int{5}}}
		cfg.Observe = &obs.Options{Trace: true, Series: true}
		res := solveOK(t, cfg)
		var buf bytes.Buffer
		if err := res.Trace.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("trace JSON differs between identical runs")
	}
	if err := obs.ValidateChromeTrace(a); err != nil {
		t.Fatalf("emitted trace fails schema validation: %v", err)
	}
}

// TestTraceCoverage checks the taxonomy's completeness: on a failure run the
// leaf spans of the critical rank must account for ≥95% of the modeled
// runtime — nothing substantial happens on the simulated clock without a
// span saying what it was.
func TestTraceCoverage(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		run  func(Config) (*Result, error)
	}{
		{"esrp", func(cfg *Config) {
			cfg.Strategy = StrategyESRP
			cfg.T = 20
			cfg.Phi = 1
			cfg.Failure = &FailureSpec{Iteration: 50, Ranks: []int{3}}
			cfg.DetectionTime = 1e-4
		}, Solve},
		{"imcr", func(cfg *Config) {
			cfg.Strategy = StrategyIMCR
			cfg.T = 20
			cfg.Phi = 1
			cfg.Failure = &FailureSpec{Iteration: 50, Ranks: []int{3}}
		}, Solve},
		{"esr-nospare", func(cfg *Config) {
			cfg.Strategy = StrategyESR
			cfg.Phi = 2
			cfg.NoSpareNodes = true
			cfg.Failure = &FailureSpec{Iteration: 40, Ranks: []int{3, 4}}
		}, Solve},
		{"pipelined-imcr", func(cfg *Config) {
			cfg.Strategy = StrategyIMCR
			cfg.T = 20
			cfg.Phi = 1
			cfg.Failure = &FailureSpec{Iteration: 50, Ranks: []int{3}}
		}, SolvePipelined},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig(t)
			tc.mut(&cfg)
			cfg.Observe = &obs.Options{Trace: true}
			res, err := tc.run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Trace == nil {
				t.Fatal("no trace recorded")
			}
			rank, frac := res.Trace.Coverage()
			if frac < 0.95 {
				tot := res.Trace.Totals()
				t.Errorf("leaf spans cover %.1f%% of rank %d's timeline, want ≥95%% (totals %v, simtime %v)",
					100*frac, rank, tot, res.Trace.SimTime)
			}
			if frac > 1+1e-9 {
				t.Errorf("coverage %.4f > 1: leaf spans overlap", frac)
			}
		})
	}
}

// TestTraceRecoveryStats checks the per-event envelopes: one stat per
// injected failure, at the right iterations, with positive modeled cost.
func TestTraceRecoveryStats(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 20
	cfg.Phi = 1
	cfg.Failures = []FailureSpec{{Iteration: 30, Ranks: []int{2}}, {Iteration: 60, Ranks: []int{5}}}
	cfg.Observe = &obs.Options{Trace: true}
	res := solveOK(t, cfg)
	stats := res.Trace.RecoveryStats()
	if len(stats) != len(res.Events) {
		t.Fatalf("got %d recovery stats, want %d (one per handled event)", len(stats), len(res.Events))
	}
	for i, st := range stats {
		if st.Iter != res.Events[i].Iteration {
			t.Errorf("stat %d at iter %d, event at %d", i, st.Iter, res.Events[i].Iteration)
		}
		if st.Time <= 0 {
			t.Errorf("stat %d has non-positive recovery time %v", i, st.Time)
		}
		if st.Ranks == 0 {
			t.Errorf("stat %d recorded no ranks", i)
		}
	}
}

// TestTraceSeries checks the iteration series: monotone steps, cumulative
// counters, wasted-work attribution consistent with the rollback, and the
// final relres matching the result.
func TestTraceSeries(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 20
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: 50, Ranks: []int{3}}
	cfg.Observe = &obs.Options{Series: true}
	res := solveOK(t, cfg)
	pts := res.Trace.Series
	if len(pts) == 0 {
		t.Fatal("no series points recorded")
	}
	wasted := 0
	for i, p := range pts {
		// Steps increase strictly; the step interrupted by the failure itself
		// never reaches its sampling point, so gaps are legal.
		if i > 0 && p.Step <= pts[i-1].Step {
			t.Fatalf("point %d has step %d after step %d", i, p.Step, pts[i-1].Step)
		}
		if i > 0 && (p.Clock < pts[i-1].Clock || p.Bytes < pts[i-1].Bytes || p.Msgs < pts[i-1].Msgs) {
			t.Fatalf("cumulative counters regressed at step %d", i)
		}
		if p.Wasted {
			wasted++
		}
	}
	if wasted != res.WastedIters {
		t.Errorf("series marks %d wasted steps, result reports %d", wasted, res.WastedIters)
	}
	last := pts[len(pts)-1]
	if math.Abs(last.RelRes-res.RelResidual)/res.RelResidual > 1e-12 {
		t.Errorf("final series relres %g != result relres %g", last.RelRes, res.RelResidual)
	}
}

// TestTraceSurvivesShrink checks that the no-spare path records into the
// same buffers after the cluster shrinks (the tracer rides the shared node
// state across Sub views).
func TestTraceSurvivesShrink(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESR
	cfg.Phi = 2
	cfg.NoSpareNodes = true
	cfg.Failure = &FailureSpec{Iteration: 40, Ranks: []int{3, 4}}
	cfg.Observe = &obs.Options{Trace: true}
	res := solveOK(t, cfg)
	if res.ActiveNodes >= cfg.Nodes {
		t.Fatal("scenario did not shrink the cluster")
	}
	// The failed ranks retire at the failure; survivors keep recording to
	// the end of the solve.
	failedLast := res.Trace.Ranks[3][len(res.Trace.Ranks[3])-1].End
	survivorLast := res.Trace.Ranks[0][len(res.Trace.Ranks[0])-1].End
	if survivorLast <= failedLast {
		t.Errorf("survivor timeline ends at %v, not past the failed rank's %v", survivorLast, failedLast)
	}
}
