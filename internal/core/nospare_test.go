package core

import (
	"testing"

	"esrp/internal/matgen"
	"esrp/internal/precond"
	"esrp/internal/vec"
)

// checkNoSpareRecovery verifies the spare-free variant: the shrunken solver
// must stay on the reference trajectory (identical preconditioner operator)
// and converge to the same solution.
func checkNoSpareRecovery(t *testing.T, cfg Config) *Result {
	t.Helper()
	refRes := referenceFor(t, cfg)
	res := solveOK(t, cfg)
	if !res.Recovered {
		t.Fatal("failure did not trigger recovery")
	}
	if want := cfg.Nodes - len(cfg.Failure.Ranks); res.ActiveNodes != want {
		t.Fatalf("ActiveNodes = %d, want %d after losing %d of %d nodes",
			res.ActiveNodes, want, len(cfg.Failure.Ranks), cfg.Nodes)
	}
	if res.Iterations < refRes.Iterations-1 || res.Iterations > refRes.Iterations+3 {
		t.Fatalf("trajectory length %d, reference %d", res.Iterations, refRes.Iterations)
	}
	if d := vec.MaxAbsDiff(res.X, refRes.X); d > 1e-6 {
		t.Fatalf("no-spare solution deviates from reference by %g", d)
	}
	checkSolution(t, cfg, res, 5e-8)
	return res
}

func TestNoSpareESRPSingleFailure(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 10
	cfg.Phi = 1
	cfg.NoSpareNodes = true
	cfg.Failure = &FailureSpec{Iteration: 38, Ranks: []int{3}}
	res := checkNoSpareRecovery(t, cfg)
	if res.RecoveredAt != 31 {
		t.Fatalf("RecoveredAt = %d, want 31", res.RecoveredAt)
	}
}

func TestNoSpareESRPMultipleFailures(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 10
	cfg.Phi = 3
	cfg.NoSpareNodes = true
	cfg.Failure = &FailureSpec{Iteration: 45, Ranks: []int{2, 3, 4}}
	res := checkNoSpareRecovery(t, cfg)
	if res.RecoveredAt != 41 {
		t.Fatalf("RecoveredAt = %d, want 41", res.RecoveredAt)
	}
}

func TestNoSpareESRSingleFailure(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESR
	cfg.Phi = 1
	cfg.NoSpareNodes = true
	cfg.Failure = &FailureSpec{Iteration: 30, Ranks: []int{5}}
	res := checkNoSpareRecovery(t, cfg)
	if res.RecoveredAt != 30 {
		t.Fatalf("ESR reconstructs the failure iteration, got %d", res.RecoveredAt)
	}
	if res.WastedIters != 0 {
		t.Fatalf("ESR wastes no iterations, got %d", res.WastedIters)
	}
}

func TestNoSpareFailureOfFirstRanks(t *testing.T) {
	// Adopter is the survivor after the block.
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 10
	cfg.Phi = 2
	cfg.NoSpareNodes = true
	cfg.Failure = &FailureSpec{Iteration: 35, Ranks: []int{0, 1}}
	checkNoSpareRecovery(t, cfg)
}

func TestNoSpareFailureOfLastRanks(t *testing.T) {
	// The failed block reaches the top rank: the adopter is the survivor
	// *before* the block (the adopted range follows the adopter's own).
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 10
	cfg.Phi = 2
	cfg.NoSpareNodes = true
	cfg.Failure = &FailureSpec{Iteration: 35, Ranks: []int{6, 7}}
	checkNoSpareRecovery(t, cfg)
}

func TestNoSpareFallbackBeforeFirstStage(t *testing.T) {
	// Failure before the first completed storage stage: nothing to
	// reconstruct; the shrunken cluster restarts from the surviving iterand
	// and must still converge.
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 30
	cfg.Phi = 1
	cfg.NoSpareNodes = true
	cfg.Failure = &FailureSpec{Iteration: 5, Ranks: []int{4}}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 5e-8)
	if res.ActiveNodes != cfg.Nodes-1 {
		t.Fatalf("ActiveNodes = %d, want %d", res.ActiveNodes, cfg.Nodes-1)
	}
}

func TestNoSpareContinuedResilienceAfterShrink(t *testing.T) {
	// After shrinking, the solver re-augments the new plan; a failure-free
	// remainder must still converge identically and the redundancy invariant
	// is re-established (checked implicitly by convergence plus the queue
	// machinery running on the new plan through the remaining iterations).
	cfg := baseConfig(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 10
	cfg.Phi = 2
	cfg.NoSpareNodes = true
	cfg.Failure = &FailureSpec{Iteration: 25, Ranks: []int{1, 2}}
	res := checkNoSpareRecovery(t, cfg)
	if res.TotalSteps <= res.Iterations {
		t.Fatalf("rolled-back steps missing from TotalSteps: %d vs %d", res.TotalSteps, res.Iterations)
	}
}

func TestNoSpareDownToTwoNodes(t *testing.T) {
	// 4 nodes, 3 fail... not allowed with φ=3 needing n-1; use 2 failures on
	// 4 nodes → 2 survivors, φ clamps from 2 to 1 on the shrunken cluster.
	a := matgen.Poisson2D(24, 24)
	b, _ := matgen.RHSForSolution(a, 8)
	cfg := Config{
		A: a, B: b, Nodes: 4,
		Strategy: StrategyESRP, T: 10, Phi: 2,
		NoSpareNodes: true,
		Failure:      &FailureSpec{Iteration: 25, Ranks: []int{1, 2}},
		CostModel:    fastModel(),
	}
	res := checkNoSpareRecovery(t, cfg)
	if res.ActiveNodes != 2 {
		t.Fatalf("ActiveNodes = %d, want 2", res.ActiveNodes)
	}
}

func TestNoSpareConfigValidation(t *testing.T) {
	a := matgen.Poisson2D(8, 8)
	b := matgen.RHSOnes(a.Rows)
	_, err := Solve(Config{
		A: a, B: b, Nodes: 4,
		Strategy: StrategyIMCR, T: 10, Phi: 1,
		NoSpareNodes: true,
	})
	if err == nil {
		t.Fatal("NoSpareNodes with IMCR must be rejected")
	}
}

func TestNoSpareWithIC0(t *testing.T) {
	// The composite preconditioner path must reproduce IC(0) segments too.
	a := matgen.EmiliaLike(8, 8, 8, 21)
	b := matgen.RHSOnes(a.Rows)
	cfg := Config{
		A: a, B: b, Nodes: 8,
		PrecondKind: precond.IC0,
		Strategy:    StrategyESRP, T: 10, Phi: 2,
		NoSpareNodes: true,
		Failure:      &FailureSpec{Iteration: 25, Ranks: []int{3, 4}},
		CostModel:    fastModel(),
	}
	checkNoSpareRecovery(t, cfg)
}
