package core

import (
	"fmt"
	"math"

	"esrp/internal/aspmv"
	"esrp/internal/cluster"
	"esrp/internal/dist"
	"esrp/internal/obs"
	"esrp/internal/vec"
)

// SolvePipelined runs the communication-hiding pipelined PCG variant
// (Ghysels & Vanroose 2014) on the simulated cluster. The paper's related
// work [16] (Levonyak, Pacher, Gansterer, PP 2020) extends ESR to exactly
// this solver; here the pipelined solver is provided as a substrate with
// the strategies whose correctness does not depend on [16]'s additional
// redundancy machinery:
//
//   - StrategyNone — plain pipelined PCG; an injected failure triggers a
//     local restart from the surviving iterand.
//   - StrategyIMCR — in-memory buddy checkpointing of the full pipelined
//     state (eight vectors plus the two recurrence scalars) every T
//     iterations, with exact rollback.
//
// Pipelined PCG fuses the three dot products of an iteration into a single
// allreduce and hides it behind the preconditioner application and the
// SpMV. On the LogGP-modeled cluster the benefit appears directly: one
// synchronizing collective per iteration instead of two, which dominates
// when latency is high relative to local compute (the regime the method
// was designed for). Its known cost is also reproduced: the deeper
// auxiliary recurrences (s, q, z) drift further from the true residual
// than standard PCG (compare Result.Drift).
func SolvePipelined(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.Strategy != StrategyNone && cfg.Strategy != StrategyIMCR {
		return nil, fmt.Errorf("core: pipelined PCG supports strategies none and IMCR, got %v (ESR for pipelined solvers is ref. 16's contribution)", cfg.Strategy)
	}
	if cfg.NoSpareNodes {
		return nil, fmt.Errorf("core: pipelined PCG does not support NoSpareNodes")
	}
	model := cluster.DefaultCostModel()
	if cfg.CostModel != nil {
		model = *cfg.CostModel
	}
	var part *dist.Partition
	var plan *aspmv.Plan
	if prep := cfg.Prepared; prep != nil {
		if err := prep.compatibleWith(&cfg); err != nil {
			return nil, err
		}
		part, plan = prep.part, prep.plan
	} else if part, plan, err = buildPartitionPlan(&cfg); err != nil {
		// Pipelined strategies (None/IMCR) never augment, so the shared
		// builder yields the plain plan here.
		return nil, err
	}
	if ws := cfg.Workspace; ws != nil {
		ws.reset(cfg.Nodes)
	}
	comm := cluster.New(cfg.Nodes, model)
	rec := newRecorder(&cfg)
	comm.Observe(rec)
	comm.RecordSchedule(cfg.Record) // nil = recording off
	if cfg.HostStats != nil {
		comm.ObserveHost(cfg.HostStats)
	}
	result := &Result{}
	nodeMem := make([]int64, cfg.Nodes)
	nodeHalo := make([]int64, cfg.Nodes)
	runErr := comm.Run(func(nd *cluster.Node) {
		run, err := newPipeRun(&cfg, nd, part, plan)
		if err != nil {
			panic(err)
		}
		run.main(result)
		nodeMem[nd.GlobalRank()] = max(run.pipeStateBytes(), run.peakBytes)
		nodeHalo[nd.GlobalRank()] = run.ex.HaloBytes()
	})
	if runErr != nil {
		return nil, runErr
	}
	result.SimTime = comm.MaxClock()
	result.WallTime = comm.WallTime()
	result.BytesSent = comm.BytesSent()
	result.MsgsSent = comm.MsgsSent()
	result.MaxNodeBytes, result.HaloBytes = reduceFootprint(nodeMem, nodeHalo)
	if rec != nil {
		result.Trace = rec.Build(result.SimTime)
	}
	return result, nil
}

// pipeRun is the per-node state of the pipelined solver.
type pipeRun struct {
	*nodeRun // reuse partition/plan/preconditioner plumbing and counters

	// Pipelined state: u = P·r, w = A·u, and the auxiliary recurrences
	// s = A·p, q = P·s, z = A·q.
	u, w, s, qv, zv, mv, nv []float64
	gammaOld, alphaOld      float64

	ckpt *pipeCkpt // IMCR state (nil for StrategyNone)
}

// pipeCkpt is the pipelined IMCR checkpoint bookkeeping.
type pipeCkpt struct {
	buddies []int
	sources []int
	ownIter int
	ownData []float64
	held    map[int][]float64
}

func newPipeRun(cfg *Config, nd *cluster.Node, part *dist.Partition, plan *aspmv.Plan) (*pipeRun, error) {
	base, err := newNodeRun(cfg, nd, part, plan)
	if err != nil {
		return nil, err
	}
	base.res = nil // the pipelined solver manages its own redundancy
	m := base.m
	// s, qv, zv and the base's p enter the first iteration's recurrences
	// multiplied by β = 0 — they must start as true zeros (0·NaN ≠ 0), so
	// they come from the clearing allocator. u, w, mv, nv are computed
	// before their first read and may reuse dirty workspace buffers.
	run := &pipeRun{
		nodeRun: base,
		u:       base.alloc(m), w: base.alloc(m),
		s: base.allocZero(m), qv: base.allocZero(m),
		zv: base.allocZero(m), mv: base.alloc(m),
		nv: base.alloc(m),
	}
	vec.Zero(run.p) // p was dirty-allocated by newNodeRun
	if cfg.Strategy == StrategyIMCR {
		n, rank := cfg.Nodes, nd.Rank()
		ck := &pipeCkpt{ownIter: -1, held: make(map[int][]float64)}
		for k := 1; k <= cfg.Phi; k++ {
			ck.buddies = append(ck.buddies, aspmv.Designated(rank, k, n))
		}
		for u := 0; u < n; u++ {
			if u == rank {
				continue
			}
			for k := 1; k <= cfg.Phi; k++ {
				if aspmv.Designated(u, k, n) == rank {
					ck.sources = append(ck.sources, u)
					break
				}
			}
		}
		run.ckpt = ck
	}
	return run, nil
}

// bootstrap establishes r, u = P·r, w = A·u and ‖b‖. SpMVs go through the
// embedded nodeRun's compact overlapped data path (spmvInto).
func (run *pipeRun) bootstrap() {
	bLoc := run.cfg.B[run.lo:run.hi]
	if run.cfg.X0 != nil {
		copy(run.x, run.cfg.X0[run.lo:run.hi])
	}
	run.spmvInto(run.q, run.x)
	vec.Sub(run.r, bLoc, run.q)
	run.compute(obs.KindVec, float64(run.m))
	run.pc.Apply(run.u, run.r)
	run.compute(obs.KindPrecond, run.pc.ApplyFlops())
	run.spmvInto(run.w, run.u)
	bb := vec.Dot(bLoc, bLoc)
	run.compute(obs.KindVec, 2*float64(run.m))
	bb = run.nd.AllreduceScalar(cluster.OpSum, bb)
	run.bNormGlobal = math.Sqrt(bb)
	if run.bNormGlobal == 0 {
		run.bNormGlobal = 1
	}
}

// restart re-derives the pipelined state from the current iterand, used by
// bootstrap-equivalent recovery paths (local restart after a failure).
func (run *pipeRun) restart() {
	run.bootstrap()
	vec.Zero(run.s)
	vec.Zero(run.qv)
	vec.Zero(run.zv)
	vec.Zero(run.p)
	run.gammaOld, run.alphaOld = 0, 0
}

func (run *pipeRun) main(result *Result) {
	cfg := run.cfg
	run.bootstrap()

	totalSteps := 0
	converged := false
	relres := math.Inf(1)
	j := 0
	firstIter := true
	for ; j < cfg.MaxIter; totalSteps++ {
		run.tr.SetIter(j)
		// Fused allreduce: γ = (r,u), δ = (w,u), ‖r‖² — the single
		// synchronization point per iteration, with the three local partial
		// sums fused into one sweep over r, u, w.
		gammaLoc, deltaLoc, rrLoc := vec.Dot3(run.r, run.u, run.w)
		buf := [3]float64{gammaLoc, deltaLoc, rrLoc}
		run.compute(obs.KindVec, 6*float64(run.m))
		run.nd.Allreduce(cluster.OpSum, buf[:])
		gamma, delta, rr := buf[0], buf[1], buf[2]
		relres = math.Sqrt(rr) / run.bNormGlobal
		if cfg.RecordResiduals && run.nd.Rank() == 0 {
			run.residLog = append(run.residLog, relres)
		}
		run.tr.Point(totalSteps, j, relres, run.nd.Clock(), run.nd.BytesSent(), run.nd.MsgsSent())
		if relres < cfg.Rtol {
			converged = true
			break
		}

		// Overlapped work: m = P·w, n = A·m (the SpMV whose halo exchange
		// hides the allreduce in a real implementation).
		run.pc.Apply(run.mv, run.w)
		run.compute(obs.KindPrecond, run.pc.ApplyFlops())
		run.spmvInto(run.nv, run.mv)

		// Failure injection point: after the SpMV of the marked iteration.
		// The pipelined solver supports the same multi-event timeline as the
		// standard path; it never shrinks, so events always apply.
		if ev := run.dueEvent(j); ev != nil {
			run.nextEvent++
			jrec, mode := run.pipeRecover(j, ev.Ranks)
			run.logEvent(ev, ev.Ranks, mode, jrec, j)
			run.wastedIters += j - jrec
			run.recoveredAt = jrec
			run.recovered = true
			j = jrec
			firstIter = run.gammaOld == 0 // restart path resets the recurrences
			continue
		}

		var alpha, beta float64
		if firstIter {
			beta = 0
			alpha = gamma / delta
		} else {
			beta = gamma / run.gammaOld
			alpha = gamma / (delta - beta*gamma/run.alphaOld)
		}
		firstIter = false

		// Auxiliary recurrences (z = A·q, q = P·s, s = A·p implicitly).
		vec.XpayInto(run.zv, run.nv, beta, run.zv)
		vec.XpayInto(run.qv, run.mv, beta, run.qv)
		vec.XpayInto(run.s, run.w, beta, run.s)
		vec.XpayInto(run.p, run.u, beta, run.p)
		vec.AxpyPair(alpha, run.p, run.x, -alpha, run.s, run.r)
		vec.AxpyPair(-alpha, run.qv, run.u, -alpha, run.zv, run.w)
		run.compute(obs.KindVec, 16*float64(run.m))

		run.gammaOld, run.alphaOld = gamma, alpha
		j++
		run.pipeCheckpoint(j)
	}

	run.tr.SetIter(-1)
	drift := run.pipeDrift(relres)
	run.nd.Sched().RTFinal() // this rank's recoveryTime enters the reduction
	recovery := run.nd.AllreduceScalar(cluster.OpMax, run.recoveryTime)
	xParts := run.nd.Gather(0, run.x)
	if run.nd.Rank() == 0 {
		x := make([]float64, cfg.A.Rows)
		for s, xp := range xParts {
			copy(x[run.part.Lo(s):run.part.Hi(s)], xp)
		}
		result.X = x
		result.Converged = converged
		result.Iterations = j
		result.TotalSteps = totalSteps
		result.RelResidual = relres
		result.RecoveryTime = recovery
		result.Recovered = run.recovered
		result.RecoveredAt = run.recoveredAt
		result.WastedIters = run.wastedIters
		result.Drift = drift
		result.Residuals = run.residLog
		result.ActiveNodes = run.nd.Size()
		result.Events = run.eventLog
	}
}

// pipeStateBytes extends the base footprint with the pipelined auxiliary
// recurrences and the IMCR checkpoint payloads.
func (run *pipeRun) pipeStateBytes() int64 {
	b := run.stateBytes()
	b += 8 * int64(len(run.u)+len(run.w)+len(run.s)+len(run.qv)+len(run.zv)+len(run.mv)+len(run.nv))
	if ck := run.ckpt; ck != nil {
		b += 8 * int64(len(ck.ownData))
		for _, d := range ck.held {
			b += 8 * int64(len(d))
		}
	}
	return b
}

// notePipePeak samples a transient recovery high-water mark against the
// pipelined steady state (the base notePeak would undercount the auxiliary
// recurrence vectors).
func (run *pipeRun) notePipePeak(extra int64) {
	if b := run.pipeStateBytes() + extra; b > run.peakBytes {
		run.peakBytes = b
	}
}

// pipeDrift evaluates Eq. 2 for the pipelined solver.
func (run *pipeRun) pipeDrift(finalRelres float64) float64 {
	run.spmvInto(run.q, run.x)
	bLoc := run.cfg.B[run.lo:run.hi]
	trueLoc := 0.0
	for i := 0; i < run.m; i++ {
		d := bLoc[i] - run.q[i]
		trueLoc += d * d
	}
	run.compute(obs.KindVec, 3*float64(run.m))
	trueNorm := math.Sqrt(run.nd.AllreduceScalar(cluster.OpSum, trueLoc))
	if trueNorm == 0 {
		return 0
	}
	return (finalRelres*run.bNormGlobal - trueNorm) / trueNorm
}

// pipeCheckpoint ships the full pipelined state to the buddies every T
// completed iterations (StrategyIMCR only). The payload restores the state
// at the start of iteration j, i.e. after the updates of iteration j−1.
func (run *pipeRun) pipeCheckpoint(j int) {
	ck := run.ckpt
	if ck == nil || j%run.cfg.T != 0 || j == 0 {
		return
	}
	m := run.m
	payload := ck.ownData[:0]
	if cap(payload) < 8*m+2 {
		payload = make([]float64, 0, 8*m+2)
	}
	for _, v := range [][]float64{run.x, run.r, run.u, run.w, run.p, run.s, run.qv, run.zv} {
		payload = append(payload, v...)
	}
	payload = append(payload, run.gammaOld, run.alphaOld)
	ck.ownIter = j
	ck.ownData = payload
	tCkpt := run.nd.Clock()
	for _, b := range ck.buddies {
		run.nd.Send(b, tagCheckpoint, payload)
	}
	for _, src := range ck.sources {
		if old := ck.held[src]; old != nil {
			run.nd.Release(old)
		}
		ck.held[src] = run.nd.Recv(src, tagCheckpoint)
	}
	run.tr.Span(obs.KindCheckpoint, tCkpt, run.nd.Clock())
}

// pipeRestore loads a checkpoint payload into the solver state.
func (run *pipeRun) pipeRestore(data []float64) {
	m := run.m
	if len(data) != 8*m+2 {
		panic(fmt.Sprintf("core: pipelined checkpoint size %d, want %d", len(data), 8*m+2))
	}
	for i, v := range [][]float64{run.x, run.r, run.u, run.w, run.p, run.s, run.qv, run.zv} {
		copy(v, data[i*m:(i+1)*m])
	}
	run.gammaOld, run.alphaOld = data[8*m], data[8*m+1]
}

// pipeLose zeroes the node's dynamic pipelined state.
func (run *pipeRun) pipeLose() {
	for _, v := range [][]float64{run.x, run.r, run.u, run.w, run.p, run.s, run.qv, run.zv, run.q, run.mv, run.nv, run.pg} {
		vec.Zero(v)
	}
	run.gammaOld, run.alphaOld = 0, 0
	run.bNormGlobal = 0
	if ck := run.ckpt; ck != nil {
		ck.ownIter = -1
		ck.ownData = nil
		ck.held = make(map[int][]float64)
	}
}

// pipeRecover handles an injected failure: IMCR rollback when a checkpoint
// exists, local restart otherwise.
func (run *pipeRun) pipeRecover(j int, failed []int) (int, string) {
	tEnv := run.nd.Clock()
	run.nd.Sched().EnvStart(j)
	run.tr.SetPhase(obs.PhaseRecovery)
	defer func() {
		run.tr.Envelope(j, tEnv, run.nd.Clock())
		run.nd.Sched().EnvEnd()
		run.tr.SetPhase(obs.PhaseSteady)
	}()
	if dt := run.cfg.DetectionTime; dt > 0 {
		tDet := run.nd.Clock()
		run.nd.AddClock(dt) // failure detection + communicator repair
		run.tr.Span(obs.KindDetect, tDet, run.nd.Clock())
		defer func() {
			run.recoveryTime += dt
			run.nd.Sched().RecCharge(dt)
		}()
	}
	amFailed := run.amFailed(failed)
	t0 := run.nd.Clock()
	run.nd.Sched().RecStart()
	if amFailed {
		run.pipeLose()
	}
	ck := run.ckpt

	root := run.lowestSurvivor(failed)
	var hdr [2]float64
	if run.nd.Rank() == root && ck != nil && ck.ownIter >= 0 {
		hdr = [2]float64{float64(ck.ownIter), 1}
	}
	run.nd.Bcast(root, hdr[:])
	jrec, recoverable := int(hdr[0]), hdr[1] != 0

	if !recoverable {
		run.restart()
		run.recoveryTime = math.Max(run.recoveryTime, run.nd.Clock()-t0)
		run.nd.Sched().RecEnd()
		return j, RecoveryRestart
	}

	n := run.cfg.Nodes
	tGather := run.nd.Clock()
	for _, fr := range failed {
		sender := -1
		for k := 1; k <= run.cfg.Phi; k++ {
			b := aspmv.Designated(fr, k, n)
			if !rankIsFailed(failed, b) {
				sender = b
				break
			}
		}
		if sender < 0 {
			panic(fmt.Sprintf("core: no surviving buddy for failed rank %d", fr))
		}
		me := run.nd.Rank()
		if me == sender {
			data, ok := ck.held[fr]
			if !ok {
				panic(fmt.Sprintf("core: buddy %d holds no pipelined checkpoint of %d", me, fr))
			}
			run.nd.Send(fr, tagCkptRestore, data)
		} else if me == fr {
			data := run.nd.Recv(sender, tagCkptRestore)
			run.notePipePeak(8 * int64(len(data))) // restore payload in flight
			run.pipeRestore(data)
			ck.ownIter = jrec
			ck.ownData = append(ck.ownData[:0], data...)
			run.nd.Release(data)
		}
	}
	if !amFailed {
		run.pipeRestore(ck.ownData)
	}
	run.tr.Span(obs.KindRecoverGather, tGather, run.nd.Clock())
	if run.pendingEvents() {
		// Re-run the checkpoint exchange for the restored state so that a
		// follow-up event whose surviving buddy is a just-recovered node
		// still finds a checkpoint to restore from (mirrors recoverIMCR).
		tCkpt := run.nd.Clock()
		for _, b := range ck.buddies {
			run.nd.Send(b, tagCheckpoint, ck.ownData)
		}
		for _, src := range ck.sources {
			if old := ck.held[src]; old != nil {
				run.nd.Release(old)
			}
			ck.held[src] = run.nd.Recv(src, tagCheckpoint)
		}
		run.tr.Span(obs.KindCheckpoint, tCkpt, run.nd.Clock())
	}
	// Re-establish ‖b‖ (replicated scalar lost on the failed nodes).
	bLoc := run.cfg.B[run.lo:run.hi]
	bb := vec.Dot(bLoc, bLoc)
	run.compute(obs.KindVec, 2*float64(run.m))
	run.bNormGlobal = math.Sqrt(run.nd.AllreduceScalar(cluster.OpSum, bb))
	if run.bNormGlobal == 0 {
		run.bNormGlobal = 1
	}
	run.recoveryTime = math.Max(run.recoveryTime, run.nd.Clock()-t0)
	run.nd.Sched().RecEnd()
	return jrec, RecoverySpare
}
