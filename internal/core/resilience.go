package core

import (
	"fmt"
	"math"
	"sort"

	"esrp/internal/aspmv"
	"esrp/internal/cluster"
	"esrp/internal/obs"
	"esrp/internal/vec"
)

// Message tags of the recovery protocols (disjoint from aspmv's tag range).
const (
	tagRecoverP0   = 200 // redundant p entries for iteration jrec-1
	tagRecoverP1   = 201 // redundant p entries for iteration jrec
	tagRecoverX    = 202 // halo of the surviving iterand for Alg. 2 line 7
	tagCheckpoint  = 210 // IMCR checkpoint shipment
	tagCkptRestore = 211 // IMCR checkpoint retrieval after a failure
	tagInnerGather = 220 // gathered-inner-solve ablation scatter
)

// resilience is the per-node strategy hook interface invoked by the solver
// loop. Implementations store redundant data; the recovery protocols
// themselves live on nodeRun because they orchestrate all nodes.
type resilience interface {
	// beforeSpMV is called at the top of iteration j, before the halo
	// exchange. It returns whether the exchange must be augmented, and may
	// duplicate local state (the paper's starred copies).
	beforeSpMV(j int) (augmented bool)
	// retain stores the redundant copy received by an augmented exchange.
	retain(rc aspmv.ReceivedCopy)
	// afterIteration is called after β of iteration j has been computed.
	afterIteration(j int, beta float64)
	// lose destroys all redundant data held by this node (node failure).
	lose()
	// stateBytes returns the redundant storage held, in bytes, for the
	// per-node memory accounting (Result.MaxNodeBytes).
	stateBytes() int64
}

// esrState implements redundant storage for ESR (T = 1) and ESRP (T > 2):
// the depth-3 redundancy queue plus the starred local duplicates
// x*, r*, z*, p*, β* and the staging scalar β** of Alg. 3.
type esrState struct {
	run   *nodeRun
	t     int // storage interval; 1 = ESR
	queue *aspmv.Queue

	xs, rs, zs, ps []float64 // starred copies (ESRP only)
	betaStar       float64
	betaPending    float64 // β** of Alg. 3
	starsIter      int     // iteration the starred copies belong to; -1 none
	hasStars       bool
}

func newESRState(run *nodeRun) *esrState {
	depth := 3
	if run.cfg.Strategy == StrategyESR {
		depth = 2 // copies of two successive iterations always present
	}
	return &esrState{
		run: run, t: run.cfg.T, queue: aspmv.NewQueue(depth),
		xs: run.alloc(run.m), rs: run.alloc(run.m),
		zs: run.alloc(run.m), ps: run.alloc(run.m),
		starsIter: -1,
	}
}

func (st *esrState) beforeSpMV(j int) bool {
	if st.t == 1 { // ESR: augment every iteration, no rollback state needed
		return true
	}
	switch {
	case j%st.t == 0 && j > 2: // first storage-stage iteration (Alg. 3 l.4)
		return true
	case (j-1)%st.t == 0 && j > 2: // second storage-stage iteration (l.7)
		// Duplicate the local state for iteration j; these copies are what
		// the surviving nodes reset to after a rollback (Alg. 3 l.9-10).
		copy(st.xs, st.run.x)
		copy(st.rs, st.run.r)
		copy(st.zs, st.run.z)
		copy(st.ps, st.run.p)
		st.betaStar = st.betaPending
		st.starsIter = j
		st.hasStars = true
		return true
	}
	return false
}

func (st *esrState) retain(rc aspmv.ReceivedCopy) {
	// Recycle the evicted copy's value buffer: steady-state ESR iterations
	// then reuse the same storage instead of growing the heap.
	if old, ok := st.queue.Push(rc); ok {
		st.run.ex.Recycle(old.Val)
	}
}

func (st *esrState) afterIteration(j int, beta float64) {
	// β of the first storage-stage iteration is the scalar the next
	// reconstruction will need (Alg. 3 l.6); it must not overwrite β* until
	// the stage completes.
	if st.t > 1 && j%st.t == 0 && j > 2 {
		st.betaPending = beta
	}
}

// stateBytes counts the starred duplicates and the queued copies' values
// (the copies' index layout is plan-static and shared, hence excluded).
func (st *esrState) stateBytes() int64 {
	b := 8 * int64(len(st.xs)+len(st.rs)+len(st.zs)+len(st.ps))
	return b + st.queue.ValBytes()
}

func (st *esrState) lose() {
	st.queue.Reset()
	vec.Zero(st.xs)
	vec.Zero(st.rs)
	vec.Zero(st.zs)
	vec.Zero(st.ps)
	st.betaStar, st.betaPending = 0, 0
	st.starsIter, st.hasStars = -1, false
}

// imcrState implements in-memory buddy checkpoint-restart: every T
// iterations each node ships the local parts of x, r, z, p to its φ buddy
// nodes (chosen by the same Eq. 1 as the ASpMV designated destinations) and
// keeps a local copy for its own rollback.
type imcrState struct {
	run     *nodeRun
	t       int
	buddies []int // ranks I checkpoint to
	sources []int // ranks that checkpoint to me (ascending)

	ownIter int // iteration of the local checkpoint; -1 none
	ownData []float64
	held    map[int][]float64 // source rank -> latest checkpoint payload
	heldIt  map[int]int
}

func newIMCRState(run *nodeRun) *imcrState {
	n := run.cfg.Nodes
	s := run.nd.Rank()
	st := &imcrState{
		run: run, t: run.cfg.T, ownIter: -1,
		held: make(map[int][]float64), heldIt: make(map[int]int),
	}
	for k := 1; k <= run.cfg.Phi; k++ {
		st.buddies = append(st.buddies, aspmv.Designated(s, k, n))
	}
	for u := 0; u < n; u++ {
		if u == s {
			continue
		}
		for k := 1; k <= run.cfg.Phi; k++ {
			if aspmv.Designated(u, k, n) == s {
				st.sources = append(st.sources, u)
				break
			}
		}
	}
	sort.Ints(st.sources)
	return st
}

func (st *imcrState) beforeSpMV(int) bool       { return false }
func (st *imcrState) retain(aspmv.ReceivedCopy) { panic("core: IMCR retains no ASpMV copies") }
func (st *imcrState) afterIteration(j int, _ float64) {
	if j%st.t != 0 || j == 0 {
		return
	}
	run := st.run
	tCkpt := run.nd.Clock()
	// The state now in x, r, z, p is the state at the start of iteration
	// j+1, so the restorable checkpoint is for iteration j+1 — the same
	// recovery point ESRP's storage stage at (j, j+1) yields. The payload
	// reuses the previous checkpoint's backing array (Send copies it into a
	// pooled buffer before it leaves the node).
	payload := st.ownData[:0]
	if cap(payload) < 4*run.m {
		payload = make([]float64, 0, 4*run.m)
	}
	payload = append(payload, run.x...)
	payload = append(payload, run.r...)
	payload = append(payload, run.z...)
	payload = append(payload, run.p...)
	st.ownIter = j + 1
	st.ownData = payload
	for _, b := range st.buddies {
		run.nd.Send(b, tagCheckpoint, payload)
	}
	for _, src := range st.sources {
		if old := st.held[src]; old != nil {
			run.nd.Release(old) // superseded checkpoint: recycle its buffer
		} else {
			// First round for this source: seed the free list with a second
			// same-shaped buffer. The steady-state exchange then always has
			// one buffer held here and one in the pool, so the source's
			// next-round send never races this node's same-window Release —
			// with a single circulating buffer that race would allocate on
			// every lost flip. The slack absorbs uneven partition sizes
			// (the source's m can differ from ours by the remainder).
			run.nd.Release(make([]float64, 4*run.m+8))
		}
		st.held[src] = run.nd.Recv(src, tagCheckpoint)
		st.heldIt[src] = j + 1
	}
	run.tr.Span(obs.KindCheckpoint, tCkpt, run.nd.Clock())
}

func (st *imcrState) stateBytes() int64 {
	b := 8 * int64(len(st.ownData))
	for _, d := range st.held {
		b += 8 * int64(len(d))
	}
	return b
}

func (st *imcrState) lose() {
	st.ownIter = -1
	st.ownData = nil
	st.held = make(map[int][]float64)
	st.heldIt = make(map[int]int)
}

// ---------------------------------------------------------------------------
// Failure handling on nodeRun
// ---------------------------------------------------------------------------

// loseDynamicState simulates the node failure: all dynamic solver data held
// by this node is zeroed, exactly as in the paper's framework (Section 4).
// Static data (matrix, preconditioner, right-hand side, communication plan)
// is retained, standing in for the reload from safe storage whose cost the
// paper excludes from measurement.
func (run *nodeRun) loseDynamicState() {
	vec.Zero(run.x)
	vec.Zero(run.r)
	vec.Zero(run.z)
	vec.Zero(run.p)
	vec.Zero(run.q)
	vec.Zero(run.pg)
	run.rz = 0
	run.betaPrev = 0
	run.bNormGlobal = 0
	if run.res != nil {
		run.res.lose()
	}
}

func (run *nodeRun) amFailed(failed []int) bool {
	for _, r := range failed {
		if r == run.nd.Rank() {
			return true
		}
	}
	return false
}

// lowestSurvivor returns the smallest rank outside the contiguous failed
// block (guaranteed to exist: not all nodes may fail).
func (run *nodeRun) lowestSurvivor(failed []int) int {
	if failed[0] > 0 {
		return 0
	}
	return failed[len(failed)-1] + 1
}

func rankIsFailed(failed []int, s int) bool {
	return len(failed) > 0 && s >= failed[0] && s <= failed[len(failed)-1]
}

// handleFailure processes one timeline event on every node: it decides
// between the spare-pool recovery and the no-spare shrink fallback, runs the
// strategy's protocol, and records the event. It returns the iteration the
// solver resumes from and the recovery mode. All inputs to the decision
// (timeline, spare counter, cluster size) are replicated deterministically,
// so every node branches identically without communication.
func (run *nodeRun) handleFailure(j int, ev *FailureSpec) (int, string) {
	run.nextEvent++
	failed := ev.Ranks
	// Events outlive the cluster they were written against: after a shrink
	// the rank space is smaller, and an event whose block no longer exists
	// (or that would kill every remaining node) is dropped, visibly.
	if n := run.nd.Size(); failed[len(failed)-1] >= n || len(failed) >= n {
		run.logEvent(ev, failed, RecoverySkipped, j, j)
		return j, RecoverySkipped
	}
	// All spans until the restored scalars belong to this event's recovery
	// phase; the KindRecovery envelope recorded at the end encloses them
	// for the per-event breakdown.
	tEnv := run.nd.Clock()
	run.nd.Sched().EnvStart(j)
	run.tr.SetPhase(obs.PhaseRecovery)
	if dt := run.cfg.DetectionTime; dt > 0 {
		t0 := run.nd.Clock()
		run.nd.AddClock(dt) // failure detection + communicator repair
		run.tr.Span(obs.KindDetect, t0, run.nd.Clock())
	}
	var jrec int
	var mode string
	switch run.cfg.Strategy {
	case StrategyNone:
		jrec = run.localRestart(j, failed)
		mode = RecoveryRestart
	case StrategyESR, StrategyESRP:
		if run.sparesLeft >= 0 && run.sparesLeft < len(failed) {
			// Pool exhausted (or was empty from the start): no replacements
			// for this event, recover onto the survivors.
			jrec, mode = run.recoverNoSpare(j, failed)
		} else {
			if run.sparesLeft > 0 {
				run.sparesLeft -= len(failed)
			}
			jrec, mode = run.recoverESR(j, failed)
		}
	case StrategyIMCR:
		jrec, mode = run.recoverIMCR(j, failed)
	default:
		panic(fmt.Sprintf("core: no recovery for strategy %v", run.cfg.Strategy))
	}
	// The protocols measure their own elapsed time from after the detection
	// charge, so the detection cost is added on top here.
	run.recoveryTime += run.cfg.DetectionTime
	run.nd.Sched().RecCharge(run.cfg.DetectionTime)
	run.tr.Envelope(j, tEnv, run.nd.Clock())
	run.nd.Sched().EnvEnd()
	run.tr.SetPhase(obs.PhaseSteady)
	if !run.retired {
		run.logEvent(ev, failed, mode, jrec, j)
	}
	return jrec, mode
}

// logEvent appends one handled event to the node's replicated log.
func (run *nodeRun) logEvent(ev *FailureSpec, failed []int, mode string, jrec, j int) {
	run.eventLog = append(run.eventLog, RecoveryEvent{
		Iteration:   ev.Iteration,
		Ranks:       append([]int(nil), failed...),
		Mode:        mode,
		RecoveredAt: jrec,
		WastedIters: j - jrec,
		SparesLeft:  run.sparesLeft,
		ActiveNodes: run.nd.Size(),
	})
}

// localRestart is the no-redundancy fallback (and the StrategyNone
// behaviour): lost entries stay zeroed and the Krylov process restarts from
// the surviving iterand, discarding all built-up search-direction
// conjugacy. This is the expensive scenario motivating ESR.
func (run *nodeRun) localRestart(j int, failed []int) int {
	t0 := run.nd.Clock()
	run.nd.Sched().RecStart()
	if run.amFailed(failed) {
		run.loseDynamicState()
	}
	run.initFromX()
	run.recoveryTime = math.Max(run.recoveryTime, run.nd.Clock()-t0)
	run.nd.Sched().RecEnd()
	return j
}

// initFromX recomputes r = b − A·x, z = P·r, p = z, rz, and ‖b‖ from the
// current iterand — the restart path shared by bootstrap and localRestart.
func (run *nodeRun) initFromX() {
	bLoc := run.cfg.B[run.lo:run.hi]
	copy(run.p, run.x)
	run.spmv(false, -1)
	vec.Sub(run.r, bLoc, run.q)
	run.compute(obs.KindVec, float64(run.m))
	run.pc.Apply(run.z, run.r)
	run.compute(obs.KindPrecond, run.pc.ApplyFlops())
	copy(run.p, run.z)
	rzLoc := vec.Dot(run.r, run.z)
	bbLoc := vec.Dot(bLoc, bLoc)
	run.compute(obs.KindVec, 4*float64(run.m))
	run.rz, run.bNormGlobal = run.dot2(rzLoc, bbLoc)
	run.bNormGlobal = math.Sqrt(run.bNormGlobal)
	if run.bNormGlobal == 0 {
		run.bNormGlobal = 1
	}
}

// recoverESR implements the ESR/ESRP recovery: determine the reconstruction
// iteration, roll surviving nodes back to their starred copies, gather the
// redundant search directions and the iterand halo at the replacement
// nodes, and run the exact state reconstruction of Alg. 2. It returns the
// resume iteration and the recovery mode (RecoverySpare, or RecoveryRestart
// when there is nothing to reconstruct from).
func (run *nodeRun) recoverESR(j int, failed []int) (int, string) {
	st := run.res.(*esrState)
	flo, fhi := run.part.RangeOfParts(failed[0], failed[len(failed)-1]+1)
	amFailed := run.amFailed(failed)
	t0 := run.nd.Clock()
	run.nd.Sched().RecStart()

	if amFailed {
		run.loseDynamicState()
	} else if st.t > 1 {
		// Surviving nodes reset their state to the starred duplicates so
		// that all nodes continue from the reconstructed iteration.
		if st.hasStars {
			copy(run.x, st.xs)
			copy(run.r, st.rs)
			copy(run.z, st.zs)
			copy(run.p, st.ps)
		}
	}

	// The lowest surviving rank announces the reconstruction iteration and
	// β* (the paper's "retrieve the redundant copy of β", Alg. 2 line 3).
	root := run.lowestSurvivor(failed)
	var hdr [3]float64
	if run.nd.Rank() == root {
		if st.t == 1 && j >= 1 {
			// ESR reconstructs iteration j from p′^(j−1) and p′^(j): both
			// exist once at least one full iteration has completed.
			hdr = [3]float64{float64(j), run.betaPrev, 1}
		} else if st.t > 1 && st.hasStars {
			hdr = [3]float64{float64(st.starsIter), st.betaStar, 1}
		} else {
			hdr = [3]float64{0, 0, 0} // no completed storage stage yet
		}
	}
	run.nd.Bcast(root, hdr[:])
	jrec, betaStar, recoverable := int(hdr[0]), hdr[1], hdr[2] != 0

	if !recoverable {
		// Failure before the first storage stage completed: nothing to
		// reconstruct from; fall back to the local restart.
		if !amFailed {
			// Roll back nothing; survivors keep their current state.
		}
		run.initFromX()
		run.recoveryTime = math.Max(run.recoveryTime, run.nd.Clock()-t0)
		run.nd.Sched().RecEnd()
		return j, RecoveryRestart
	}

	// Gather the redundant copies p′^(jrec−1) and p′^(jrec) for the failed
	// index range at the replacement nodes. The set of surviving holders of
	// each failed node's entries is static: the plain and resilient-copy
	// receivers of that node's ASpMV traffic.
	run.recPrev = growF(run.recPrev, run.m)
	run.recCur = growF(run.recCur, run.m)
	run.recCovered = growI(run.recCovered, run.m) // bitmask: 1 = prev seen, 2 = cur seen
	pPrev, pCur, covered := run.recPrev, run.recCur, run.recCovered
	// Reconstruction scratch high-water mark: every node allocates the
	// gather buffers, but only the failed (reconstructing) nodes run the
	// inner solve and hold its working vectors.
	run.notePeak(8 * int64(3*run.m /* pPrev, pCur, covered */))
	if amFailed {
		run.notePeak(8 * int64(3*run.m+7*run.m /* w + inner PCG vectors */))
	}
	tGather := run.nd.Clock()
	for pass, tag := range []int{tagRecoverP0, tagRecoverP1} {
		iter := jrec - 1 + pass
		if !amFailed {
			c := st.queue.Get(iter)
			for _, fr := range failed {
				if !run.holdsEntriesOf(fr) {
					continue
				}
				var idx []int
				var val []float64
				if c != nil {
					idx, val = c.Lookup(run.part.Lo(fr), run.part.Hi(fr))
				}
				run.nd.SendFI(fr, tag, val, idx)
			}
		} else {
			dst := pPrev
			if pass == 1 {
				dst = pCur
			}
			for _, s := range run.survivingHoldersOf(run.nd.Rank(), failed) {
				val, idx := run.nd.RecvFI(s, tag)
				for k, gi := range idx {
					if gi >= run.lo && gi < run.hi {
						dst[gi-run.lo] = val[k]
						covered[gi-run.lo] |= 1 << pass
					}
				}
			}
		}
	}
	run.tr.Span(obs.KindRecoverGather, tGather, run.nd.Clock())
	if len(run.events) > 1 {
		// Multi-event timelines can leave the gathered copies incomplete: a
		// holder that itself failed earlier lost its queue, and the stage
		// whose copies we need may predate its recovery. The nodes vote on
		// coverage; on any gap the whole cluster degrades to a consistent
		// local restart instead of reconstructing from partial data.
		okLoc := 1.0
		if amFailed {
			for _, c := range covered {
				if c != 3 {
					okLoc = 0
					break
				}
			}
		}
		if run.nd.AllreduceScalar(cluster.OpMin, okLoc) == 0 {
			run.initFromX()
			run.recoveryTime = math.Max(run.recoveryTime, run.nd.Clock()-t0)
			run.nd.Sched().RecEnd()
			// ESRP survivors were already rolled back to the starred state
			// of iteration jrec before the vote, so resuming there keeps
			// the counter consistent with the state and the discarded work
			// [jrec, j) counted. ESR (t = 1) never rolled back: resume at j.
			if st.t > 1 {
				return jrec, RecoveryRestart
			}
			return j, RecoveryRestart
		}
	} else if amFailed {
		for i, c := range covered {
			if c != 3 {
				panic(fmt.Sprintf("core: entry %d of failed node %d not covered by redundant copies (mask %d)",
					run.lo+i, run.nd.Rank(), c))
			}
		}
	}

	// Halo of the surviving iterand x (Alg. 2 lines 2 and 7): survivors send
	// the entries the failed rows couple to; the failed node scatters them
	// into its compact ghost buffer (run.pg's ghost region — a scratch at
	// this point, refreshed by the next exchange anyway).
	me := run.nd.Rank()
	xg := run.pg[run.m:]
	tGather = run.nd.Clock()
	if !amFailed {
		for _, fr := range failed {
			for _, t := range run.plan.Recv[fr] {
				if t.Peer != me {
					continue
				}
				run.sendScratch = growF(run.sendScratch, len(t.Idx))
				buf := run.sendScratch
				for k, gi := range t.Idx {
					buf[k] = run.x[gi-run.lo]
				}
				run.nd.Send(fr, tagRecoverX, buf)
			}
		}
	} else {
		vec.Zero(xg)
		for ti, t := range run.plan.Recv[me] {
			if rankIsFailed(failed, t.Peer) {
				continue // unknowns of the inner system, not data
			}
			vals := run.nd.Recv(t.Peer, tagRecoverX)
			copy(xg[run.plan.RecvGhostOffset(me, ti):], vals)
		}
	}
	run.tr.Span(obs.KindRecoverGather, tGather, run.nd.Clock())

	// Exact state reconstruction on the replacement nodes (Alg. 2).
	if amFailed {
		// Line 4: z_If = p^(jrec)_If − β* p^(jrec−1)_If.
		for i := 0; i < run.m; i++ {
			run.z[i] = pCur[i] - betaStar*pPrev[i]
		}
		run.compute(obs.KindReconstruct, 2*float64(run.m))
		// Lines 5–6: v = z_If − P[If,I\If]·r (zero off-part for node-local
		// preconditioners), then solve P[If,If]·r_If = v.
		run.pc.SolveRestricted(run.r, run.z)
		run.compute(obs.KindReconstruct, run.pc.SolveRestrictedFlops())
		// Line 7: w = b_If − r_If − A[If,I\If]·x_(I\If), on the compact
		// local matrix: owned columns lie inside If by construction, ghost
		// columns owned by other failed ranks are inner-system unknowns —
		// both are skipped, leaving exactly the surviving coupling.
		run.recW = growF(run.recW, run.m)
		w := run.recW
		bLoc := run.cfg.B[run.lo:run.hi]
		for i := 0; i < run.m; i++ {
			cols, vals := run.local.Row(i)
			var s float64
			for k, c := range cols {
				if c < run.m {
					continue
				}
				if gi := run.local.Ghost[c-run.m]; gi >= flo && gi < fhi {
					continue
				}
				s += vals[k] * xg[c-run.m]
			}
			w[i] = bLoc[i] - run.r[i] - s
		}
		run.compute(obs.KindReconstruct, 2*run.nnzLocal)
		// Line 8: solve A[If,If]·x_If = w on the replacement nodes.
		run.innerSolve(failed, flo, fhi, w)
		copy(run.p, pCur)
	}

	run.restoreScalars(betaStar, st)
	run.recoveryTime = math.Max(run.recoveryTime, run.nd.Clock()-t0)
	run.nd.Sched().RecEnd()
	return jrec, RecoverySpare
}

// holdsEntriesOf reports whether this (surviving) node statically receives
// redundant copies of entries owned by rank fr.
func (run *nodeRun) holdsEntriesOf(fr int) bool {
	me := run.nd.Rank()
	for _, t := range run.plan.Send[fr] {
		if t.Peer == me {
			return true
		}
	}
	for _, t := range run.plan.ExtraSend[fr] {
		if t.Peer == me {
			return true
		}
	}
	return false
}

// survivingHoldersOf returns, in ascending order, the surviving ranks that
// hold redundant copies of at least one entry owned by rank owner. This is
// the exact set of ranks whose holdsEntriesOf(owner) is true, so the gather
// protocol's sends and receives pair up one-to-one even when multiple failed
// nodes have different holder sets.
func (run *nodeRun) survivingHoldersOf(owner int, failed []int) []int {
	mark := make([]bool, run.nd.Size())
	for _, t := range run.plan.Send[owner] {
		mark[t.Peer] = true
	}
	for _, t := range run.plan.ExtraSend[owner] {
		mark[t.Peer] = true
	}
	var out []int
	for s, m := range mark {
		if m && !rankIsFailed(failed, s) {
			out = append(out, s)
		}
	}
	return out
}

// restoreScalars re-establishes the replicated scalars after a rollback:
// rz and ‖b‖ by a fused allreduce, β bookkeeping from β* so that the
// resumed storage stage re-saves identical data.
func (run *nodeRun) restoreScalars(betaStar float64, st *esrState) {
	bLoc := run.cfg.B[run.lo:run.hi]
	rzLoc := vec.Dot(run.r, run.z)
	bbLoc := vec.Dot(bLoc, bLoc)
	run.compute(obs.KindVec, 4*float64(run.m))
	run.rz, run.bNormGlobal = run.dot2(rzLoc, bbLoc)
	run.bNormGlobal = math.Sqrt(run.bNormGlobal)
	if run.bNormGlobal == 0 {
		run.bNormGlobal = 1
	}
	run.betaPrev = betaStar
	if st != nil {
		st.betaPending = betaStar
	}
}

// recoverIMCR implements the checkpoint-restart recovery: replacements
// retrieve their vectors from a surviving buddy, survivors roll back to
// their local checkpoint copy.
func (run *nodeRun) recoverIMCR(j int, failed []int) (int, string) {
	st := run.res.(*imcrState)
	n := run.nd.Size()
	amFailed := run.amFailed(failed)
	t0 := run.nd.Clock()
	run.nd.Sched().RecStart()

	if amFailed {
		run.loseDynamicState()
	}
	root := run.lowestSurvivor(failed)
	var hdr [2]float64
	if run.nd.Rank() == root {
		if st.ownIter >= 0 {
			hdr = [2]float64{float64(st.ownIter), 1}
		}
	}
	run.nd.Bcast(root, hdr[:])
	jrec, recoverable := int(hdr[0]), hdr[1] != 0
	if !recoverable {
		run.initFromX()
		run.recoveryTime = math.Max(run.recoveryTime, run.nd.Clock()-t0)
		run.nd.Sched().RecEnd()
		return j, RecoveryRestart
	}

	// For each failed node, its designated sender is the first surviving
	// buddy in Eq. 1 order — computable by every node without communication.
	tGather := run.nd.Clock()
	for _, fr := range failed {
		var sender = -1
		for k := 1; k <= run.cfg.Phi; k++ {
			b := aspmv.Designated(fr, k, n)
			if !rankIsFailed(failed, b) {
				sender = b
				break
			}
		}
		if sender < 0 {
			panic(fmt.Sprintf("core: no surviving buddy for failed rank %d", fr))
		}
		me := run.nd.Rank()
		if me == sender {
			data, ok := st.held[fr]
			if !ok {
				panic(fmt.Sprintf("core: buddy %d holds no checkpoint of %d", me, fr))
			}
			run.nd.Send(fr, tagCkptRestore, data)
		} else if me == fr {
			data := run.nd.Recv(sender, tagCkptRestore)
			if len(data) != 4*run.m {
				panic(fmt.Sprintf("core: checkpoint size %d, want %d", len(data), 4*run.m))
			}
			run.notePeak(8 * int64(len(data))) // restore payload in flight
			copy(run.x, data[0:run.m])
			copy(run.r, data[run.m:2*run.m])
			copy(run.z, data[2*run.m:3*run.m])
			copy(run.p, data[3*run.m:4*run.m])
			st.ownIter = jrec
			st.ownData = append(st.ownData[:0], data...)
			run.nd.Release(data)
		}
	}
	if !amFailed {
		copy(run.x, st.ownData[0:run.m])
		copy(run.r, st.ownData[run.m:2*run.m])
		copy(run.z, st.ownData[2*run.m:3*run.m])
		copy(run.p, st.ownData[3*run.m:4*run.m])
	}
	run.tr.Span(obs.KindRecoverGather, tGather, run.nd.Clock())
	if run.pendingEvents() {
		// More events may strike before the next checkpoint stage, and the
		// nodes that just failed hold no checkpoints of their sources any
		// more. Re-run the checkpoint exchange for the restored state so
		// every buddy relationship is whole again — otherwise a follow-up
		// failure whose surviving buddy is a just-recovered node would find
		// nothing to restore from.
		tCkpt := run.nd.Clock()
		for _, b := range st.buddies {
			run.nd.Send(b, tagCheckpoint, st.ownData)
		}
		for _, src := range st.sources {
			if old := st.held[src]; old != nil {
				run.nd.Release(old)
			}
			st.held[src] = run.nd.Recv(src, tagCheckpoint)
			st.heldIt[src] = jrec
		}
		run.tr.Span(obs.KindCheckpoint, tCkpt, run.nd.Clock())
	}
	run.restoreScalars(0, nil)
	run.recoveryTime = math.Max(run.recoveryTime, run.nd.Clock()-t0)
	run.nd.Sched().RecEnd()
	return jrec, RecoverySpare
}
