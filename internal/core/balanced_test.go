package core

import (
	"testing"

	"esrp/internal/matgen"
	"esrp/internal/sparse"
	"esrp/internal/vec"
)

// skewedSPD builds an SPD matrix whose first rows are much denser than the
// rest (half-bandwidth 24 vs 2), so a uniform row split concentrates the
// SpMV work on the first nodes.
func skewedSPD(n int) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		bw := 2
		if i < n/4 {
			bw = 24
		}
		for j := i + 1; j <= i+bw && j < n; j++ {
			b.AddSym(i, j, -1)
			rowAbs[i]++
			rowAbs[j]++
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, rowAbs[i]+1)
	}
	return b.Build()
}

func TestBalanceNNZConverges(t *testing.T) {
	a := skewedSPD(800)
	b, xstar := matgen.RHSForSolution(a, 4)
	cfg := Config{A: a, B: b, Nodes: 8, BalanceNNZ: true, CostModel: fastModel()}
	res := solveOK(t, cfg)
	if d := vec.MaxAbsDiff(res.X, xstar); d > 1e-5 {
		t.Fatalf("solution off by %g", d)
	}
}

func TestBalanceNNZReducesCriticalPath(t *testing.T) {
	// On the skewed matrix the densest node dominates every SpMV under the
	// uniform split; nnz balancing must lower the modeled runtime.
	a := skewedSPD(2000)
	rhs := matgen.RHSOnes(a.Rows)
	uniform := solveOK(t, Config{A: a, B: rhs, Nodes: 8, CostModel: fastModel()})
	balanced := solveOK(t, Config{A: a, B: rhs, Nodes: 8, BalanceNNZ: true, CostModel: fastModel()})
	if balanced.SimTime >= uniform.SimTime {
		t.Fatalf("balanced %g s not below uniform %g s on a skewed matrix",
			balanced.SimTime, uniform.SimTime)
	}
	// Same Krylov process, so the trajectory is identical up to the
	// reduction order of the collectives.
	if diff := balanced.Iterations - uniform.Iterations; diff < -2 || diff > 2 {
		t.Fatalf("iterations differ too much: %d vs %d", balanced.Iterations, uniform.Iterations)
	}
}

func TestBalanceNNZWithESRPRecovery(t *testing.T) {
	// The resilience machinery only relies on contiguous ownership, so
	// exact recovery must hold on a balanced partition too.
	a := skewedSPD(800)
	b, _ := matgen.RHSForSolution(a, 4)
	cfg := Config{
		A: a, B: b, Nodes: 8, BalanceNNZ: true,
		Strategy: StrategyESRP, T: 10, Phi: 2,
		Failure:   &FailureSpec{Iteration: 15, Ranks: []int{2, 3}},
		CostModel: fastModel(),
	}
	res := checkExactRecovery(t, cfg, 3)
	if res.RecoveredAt != 11 {
		t.Fatalf("RecoveredAt = %d, want 11", res.RecoveredAt)
	}
}

func TestBalanceNNZWithIMCRAndPipelined(t *testing.T) {
	a := skewedSPD(800)
	b, _ := matgen.RHSForSolution(a, 4)
	imcr := Config{
		A: a, B: b, Nodes: 8, BalanceNNZ: true,
		Strategy: StrategyIMCR, T: 10, Phi: 1,
		Failure:   &FailureSpec{Iteration: 15, Ranks: []int{5}},
		CostModel: fastModel(),
	}
	res := solveOK(t, imcr)
	if !res.Recovered {
		t.Fatal("IMCR on balanced partition did not recover")
	}
	checkSolution(t, imcr, res, 5e-8)

	pipe := Config{A: a, B: b, Nodes: 8, BalanceNNZ: true, CostModel: fastModel()}
	pres, err := SolvePipelined(pipe)
	if err != nil {
		t.Fatal(err)
	}
	if !pres.Converged {
		t.Fatal("pipelined on balanced partition did not converge")
	}
}
