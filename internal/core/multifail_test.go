package core

import (
	"reflect"
	"testing"

	"esrp/internal/matgen"
)

// multiBase returns a problem big enough that three failure events fit well
// before convergence.
func multiBase(t *testing.T) Config {
	t.Helper()
	a := matgen.Poisson2D(48, 48)
	b, _ := matgen.RHSForSolution(a, 7)
	return Config{A: a, B: b, Nodes: 8, Rtol: 1e-8, RecordResiduals: true}
}

// Three events, unlimited spares: every recovery takes the spare path and
// the solve converges to the right solution.
func TestESRMultiEventUnlimitedSpares(t *testing.T) {
	cfg := multiBase(t)
	cfg.Strategy = StrategyESR
	cfg.Phi = 2
	cfg.Failures = []FailureSpec{
		{Iteration: 20, Ranks: []int{1}},
		{Iteration: 45, Ranks: []int{4, 5}},
		{Iteration: 70, Ranks: []int{1}}, // the same node can fail again
	}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 1e-6)
	if len(res.Events) != 3 {
		t.Fatalf("got %d recovery events, want 3: %+v", len(res.Events), res.Events)
	}
	for i, ev := range res.Events {
		if ev.Mode != RecoverySpare {
			t.Errorf("event %d mode %q, want %q", i, ev.Mode, RecoverySpare)
		}
		if ev.SparesLeft != -1 {
			t.Errorf("event %d spares left %d, want -1 (unlimited)", i, ev.SparesLeft)
		}
	}
	if res.ActiveNodes != cfg.Nodes {
		t.Fatalf("active nodes %d, want %d (spares never exhaust)", res.ActiveNodes, cfg.Nodes)
	}
	// ESR reconstructs the exact current iteration: recoveries happen but no
	// work is discarded.
	if !res.Recovered || res.WastedIters != 0 {
		t.Errorf("ESR recovery should waste nothing: recovered=%v wasted=%d", res.Recovered, res.WastedIters)
	}
}

// Same scenario twice ⇒ bitwise-identical trajectory (iterand, residual log,
// simulated time, event log).
func TestMultiEventDeterminism(t *testing.T) {
	mk := func() *Result {
		cfg := multiBase(t)
		cfg.Strategy = StrategyESRP
		cfg.T = 12
		cfg.Phi = 2
		cfg.Spares = 2
		cfg.Failures = []FailureSpec{
			{Iteration: 25, Ranks: []int{2, 3}},
			{Iteration: 50, Ranks: []int{5}},
			{Iteration: 75, Ranks: []int{0}},
		}
		return solveOK(t, cfg)
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a.X, b.X) {
		t.Error("iterands differ between identical runs")
	}
	if !reflect.DeepEqual(a.Residuals, b.Residuals) {
		t.Error("residual logs differ between identical runs")
	}
	if a.SimTime != b.SimTime {
		t.Errorf("simulated times differ: %g vs %g", a.SimTime, b.SimTime)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Errorf("event logs differ:\n%+v\n%+v", a.Events, b.Events)
	}
}

// Spare pool exhausted mid-run: the first event consumes the pool, the later
// ones fall back to the no-spare shrink, and the cluster ends smaller while
// still converging to the right solution.
func TestSparePoolExhaustionFallsBackToShrink(t *testing.T) {
	cfg := multiBase(t)
	cfg.Strategy = StrategyESR
	cfg.Phi = 1
	cfg.Spares = 1
	cfg.Failures = []FailureSpec{
		{Iteration: 20, Ranks: []int{3}}, // consumes the last spare
		{Iteration: 45, Ranks: []int{5}}, // pool empty: shrink to 7 nodes
		{Iteration: 70, Ranks: []int{2}}, // still empty: shrink to 6 nodes
	}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 1e-6)
	if len(res.Events) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(res.Events), res.Events)
	}
	wantModes := []string{RecoverySpare, RecoveryShrink, RecoveryShrink}
	wantSpares := []int{0, 0, 0}
	for i, ev := range res.Events {
		if ev.Mode != wantModes[i] {
			t.Errorf("event %d mode %q, want %q", i, ev.Mode, wantModes[i])
		}
		if ev.SparesLeft != wantSpares[i] {
			t.Errorf("event %d spares left %d, want %d", i, ev.SparesLeft, wantSpares[i])
		}
	}
	if res.Events[1].ActiveNodes != 7 || res.Events[2].ActiveNodes != 6 {
		t.Errorf("active nodes after shrinks = %d, %d; want 7, 6",
			res.Events[1].ActiveNodes, res.Events[2].ActiveNodes)
	}
	if res.ActiveNodes != 6 {
		t.Fatalf("final active nodes %d, want 6", res.ActiveNodes)
	}
}

// ESRP variant of the exhaustion path: the pool covers the first two-node
// event exactly, the follow-up shrinks.
func TestSparePoolExhaustionESRP(t *testing.T) {
	cfg := multiBase(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 12
	cfg.Phi = 2
	cfg.Spares = 2
	cfg.Failures = []FailureSpec{
		{Iteration: 30, Ranks: []int{2, 3}},
		{Iteration: 60, Ranks: []int{6}},
	}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 1e-6)
	if res.Events[0].Mode != RecoverySpare || res.Events[1].Mode != RecoveryShrink {
		t.Fatalf("modes = %q, %q; want spare, shrink", res.Events[0].Mode, res.Events[1].Mode)
	}
	if res.ActiveNodes != 7 {
		t.Fatalf("active nodes %d, want 7", res.ActiveNodes)
	}
}

// A partially-sufficient pool (1 spare, 2 simultaneous failures) must not
// split the event: the whole event takes the shrink path and the spare is
// kept.
func TestSparePoolNeverSplitsAnEvent(t *testing.T) {
	cfg := multiBase(t)
	cfg.Strategy = StrategyESR
	cfg.Phi = 2
	cfg.Spares = 1
	cfg.Failures = []FailureSpec{{Iteration: 25, Ranks: []int{4, 5}}}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 1e-6)
	if res.Events[0].Mode != RecoveryShrink {
		t.Fatalf("mode %q, want shrink", res.Events[0].Mode)
	}
	if res.Events[0].SparesLeft != 1 {
		t.Fatalf("spare consumed by a shrink recovery: left %d, want 1", res.Events[0].SparesLeft)
	}
	if res.ActiveNodes != 6 {
		t.Fatalf("active nodes %d, want 6", res.ActiveNodes)
	}
}

// Multi-event IMCR: the re-shipped checkpoints keep buddy relationships
// whole across consecutive failures.
func TestIMCRMultiEvent(t *testing.T) {
	cfg := multiBase(t)
	cfg.Strategy = StrategyIMCR
	cfg.T = 10
	cfg.Phi = 1
	cfg.Failures = []FailureSpec{
		{Iteration: 22, Ranks: []int{3}},
		{Iteration: 24, Ranks: []int{4}}, // before the next checkpoint stage
		{Iteration: 55, Ranks: []int{3}},
	}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 1e-6)
	if len(res.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(res.Events))
	}
	for i, ev := range res.Events {
		if ev.Mode != RecoverySpare {
			t.Errorf("event %d mode %q, want spare", i, ev.Mode)
		}
	}
}

// Multi-event on the pipelined solver.
func TestPipelinedMultiEvent(t *testing.T) {
	cfg := multiBase(t)
	cfg.Strategy = StrategyIMCR
	cfg.T = 10
	cfg.Phi = 1
	cfg.Failures = []FailureSpec{
		{Iteration: 20, Ranks: []int{2}},
		{Iteration: 40, Ranks: []int{6}},
	}
	res, err := SolvePipelined(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("pipelined multi-event did not converge (relres %g)", res.RelResidual)
	}
	checkSolution(t, cfg, res, 1e-6)
	if len(res.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(res.Events))
	}
}

// ESR events in consecutive iterations right after a rollback: stresses the
// queue refill and the coverage vote.
func TestESRBackToBackEvents(t *testing.T) {
	cfg := multiBase(t)
	cfg.Strategy = StrategyESR
	cfg.Phi = 1
	cfg.Failures = []FailureSpec{
		{Iteration: 20, Ranks: []int{1}},
		{Iteration: 21, Ranks: []int{2}},
		{Iteration: 22, Ranks: []int{1}},
	}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 1e-6)
	if len(res.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(res.Events))
	}
}

// StrategyNone with a timeline: every event degrades to a local restart but
// the solve still converges.
func TestNoneMultiEventRestarts(t *testing.T) {
	cfg := multiBase(t)
	cfg.Strategy = StrategyNone
	cfg.Failures = []FailureSpec{
		{Iteration: 20, Ranks: []int{1}},
		{Iteration: 50, Ranks: []int{6}},
	}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 1e-6)
	for i, ev := range res.Events {
		if ev.Mode != RecoveryRestart {
			t.Errorf("event %d mode %q, want restart", i, ev.Mode)
		}
	}
}

// Timeline validation: out-of-order events, duplicate ranks, Failure and
// Failures both set, bad spare pools.
func TestMultiEventValidation(t *testing.T) {
	a := matgen.Poisson2D(16, 16)
	b := matgen.RHSOnes(a.Rows)
	bad := []Config{
		{A: a, B: b, Nodes: 4, Strategy: StrategyESR, Phi: 1, Failures: []FailureSpec{
			{Iteration: 20, Ranks: []int{1}}, {Iteration: 10, Ranks: []int{2}}}}, // out of order
		{A: a, B: b, Nodes: 4, Strategy: StrategyESR, Phi: 1, Failures: []FailureSpec{
			{Iteration: 10, Ranks: []int{1}}, {Iteration: 10, Ranks: []int{2}}}}, // duplicate iteration
		{A: a, B: b, Nodes: 4, Strategy: StrategyESR, Phi: 2, Failures: []FailureSpec{
			{Iteration: 10, Ranks: []int{1, 1}}}}, // duplicate rank
		{A: a, B: b, Nodes: 4, Strategy: StrategyESR, Phi: 1,
			Failure:  &FailureSpec{Iteration: 5, Ranks: []int{1}},
			Failures: []FailureSpec{{Iteration: 10, Ranks: []int{2}}}}, // both set
		{A: a, B: b, Nodes: 4, Strategy: StrategyESR, Phi: 1, Spares: -1},                    // negative pool
		{A: a, B: b, Nodes: 4, Strategy: StrategyIMCR, T: 5, Phi: 1, Spares: 2},              // finite pool needs ESR/ESRP
		{A: a, B: b, Nodes: 4, Strategy: StrategyESR, Phi: 1, Spares: 2, NoSpareNodes: true}, // pool vs no-spare
	}
	for i, cfg := range bad {
		if _, err := Solve(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// The single-event shorthand still works and produces one event record.
func TestSingleEventShorthandStillWorks(t *testing.T) {
	cfg := multiBase(t)
	cfg.Strategy = StrategyESR
	cfg.Phi = 1
	cfg.Failure = &FailureSpec{Iteration: 30, Ranks: []int{3}}
	res := solveOK(t, cfg)
	if len(res.Events) != 1 || res.Events[0].Mode != RecoverySpare {
		t.Fatalf("events = %+v, want one spare recovery", res.Events)
	}
	if !res.Recovered || res.RecoveredAt != res.Events[0].RecoveredAt {
		t.Fatalf("scalar recovery fields inconsistent with the event log: %+v", res)
	}
}

// Recovery-heavy runs must report a strictly larger per-node footprint than
// the steady state the failure-free run samples: the reconstruction scratch
// is part of the high-water mark now.
func TestMaxNodeBytesSamplesRecoveryScratch(t *testing.T) {
	ff := multiBase(t)
	ff.Strategy = StrategyESR
	ff.Phi = 1
	ffRes := solveOK(t, ff)

	fail := multiBase(t)
	fail.Strategy = StrategyESR
	fail.Phi = 1
	fail.Failure = &FailureSpec{Iteration: 30, Ranks: []int{3}}
	failRes := solveOK(t, fail)

	if failRes.MaxNodeBytes <= ffRes.MaxNodeBytes {
		t.Fatalf("recovery run footprint %d not above failure-free %d — transient scratch unsampled",
			failRes.MaxNodeBytes, ffRes.MaxNodeBytes)
	}
}

// A second ESRP event striking before the re-filled redundancy queue covers
// the reconstruction pair again: the coverage vote must degrade the recovery
// to a consistent restart from the rolled-back starred state, with the
// discarded work counted.
func TestESRPVoteDegradesToRestart(t *testing.T) {
	cfg := multiBase(t)
	cfg.Strategy = StrategyESRP
	cfg.T = 20
	cfg.Phi = 1
	cfg.Failures = []FailureSpec{
		{Iteration: 25, Ranks: []int{3}}, // recovers to the stage at 21; rank 3's queue restarts
		{Iteration: 27, Ranks: []int{4}}, // needs copies of iteration 20, which rank 3 lost
	}
	res := solveOK(t, cfg)
	checkSolution(t, cfg, res, 1e-6)
	if res.Events[0].Mode != RecoverySpare {
		t.Fatalf("event 0 mode %q, want spare", res.Events[0].Mode)
	}
	ev := res.Events[1]
	if ev.Mode != RecoveryRestart {
		t.Fatalf("event 1 mode %q, want restart (incomplete redundant copies)", ev.Mode)
	}
	// The restart resumes from the starred state of iteration 21 that the
	// survivors already rolled back to, so the work since then counts as
	// wasted.
	if ev.RecoveredAt != 21 || ev.WastedIters != 27-21 {
		t.Fatalf("event 1 resumed at %d with %d wasted, want 21 and 6", ev.RecoveredAt, ev.WastedIters)
	}
}
