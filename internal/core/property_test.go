package core

import (
	"testing"
	"testing/quick"

	"esrp/internal/matgen"
	"esrp/internal/vec"
)

// The repo's strongest invariant, property-tested: for arbitrary ESRP
// configurations (interval, redundancy, failure time and place, spare or
// no-spare recovery), a failure-injected solve must rejoin the reference
// trajectory — same iteration count (±3 for FP reconstruction noise) and
// the same solution.
func TestESRPExactRecoveryProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep in -short mode")
	}
	a := matgen.Poisson2D(32, 32)
	b, _ := matgen.RHSForSolution(a, 9)
	const nodes = 6

	ref, err := Solve(Config{A: a, B: b, Nodes: nodes, CostModel: fastModel()})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged {
		t.Fatal("reference did not converge")
	}

	f := func(tRaw, phiRaw, iterRaw, rankRaw uint8, noSpare bool) bool {
		tInt := 3 + int(tRaw)%30
		phi := 1 + int(phiRaw)%3
		failIter := 3 + int(iterRaw)%(ref.Iterations-5)
		psi := 1 + int(rankRaw)%phi
		first := int(rankRaw) % (nodes - psi)
		ranks := make([]int, psi)
		for i := range ranks {
			ranks[i] = first + i
		}
		cfg := Config{
			A: a, B: b, Nodes: nodes,
			Strategy: StrategyESRP, T: tInt, Phi: phi,
			NoSpareNodes: noSpare,
			Failure:      &FailureSpec{Iteration: failIter, Ranks: ranks},
			CostModel:    fastModel(),
		}
		res, err := Solve(cfg)
		if err != nil {
			t.Logf("T=%d φ=%d ψ=%d fail@%d ranks=%v noSpare=%v: %v",
				tInt, phi, psi, failIter, ranks, noSpare, err)
			return false
		}
		if !res.Converged {
			t.Logf("T=%d φ=%d fail@%d ranks=%v noSpare=%v: no convergence", tInt, phi, failIter, ranks, noSpare)
			return false
		}
		// A failure before the first completed storage stage falls back to
		// a restart and legitimately leaves the trajectory; otherwise the
		// trajectory must match the reference.
		if failIter > tInt+1 {
			if res.Iterations < ref.Iterations-1 || res.Iterations > ref.Iterations+3 {
				t.Logf("T=%d φ=%d fail@%d ranks=%v noSpare=%v: iterations %d vs reference %d",
					tInt, phi, failIter, ranks, noSpare, res.Iterations, ref.Iterations)
				return false
			}
			if d := vec.MaxAbsDiff(res.X, ref.X); d > 1e-6 {
				t.Logf("T=%d φ=%d fail@%d ranks=%v noSpare=%v: solution off by %g",
					tInt, phi, failIter, ranks, noSpare, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Same property for IMCR: rollback must rejoin the reference trajectory.
func TestIMCRExactRecoveryProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep in -short mode")
	}
	a := matgen.Poisson2D(32, 32)
	b, _ := matgen.RHSForSolution(a, 9)
	const nodes = 6

	ref, err := Solve(Config{A: a, B: b, Nodes: nodes, CostModel: fastModel()})
	if err != nil || !ref.Converged {
		t.Fatalf("reference: %v", err)
	}
	f := func(tRaw, phiRaw, iterRaw, rankRaw uint8) bool {
		tInt := 1 + int(tRaw)%30
		phi := 1 + int(phiRaw)%3
		failIter := 1 + int(iterRaw)%(ref.Iterations-3)
		psi := 1 + int(rankRaw)%phi
		first := int(rankRaw) % (nodes - psi)
		ranks := make([]int, psi)
		for i := range ranks {
			ranks[i] = first + i
		}
		cfg := Config{
			A: a, B: b, Nodes: nodes,
			Strategy: StrategyIMCR, T: tInt, Phi: phi,
			Failure:   &FailureSpec{Iteration: failIter, Ranks: ranks},
			CostModel: fastModel(),
		}
		res, err := Solve(cfg)
		if err != nil || !res.Converged {
			t.Logf("T=%d φ=%d fail@%d ranks=%v: err=%v converged=%v", tInt, phi, failIter, ranks, err, res != nil && res.Converged)
			return false
		}
		if failIter > tInt {
			if res.Iterations < ref.Iterations-1 || res.Iterations > ref.Iterations+3 {
				return false
			}
			if d := vec.MaxAbsDiff(res.X, ref.X); d > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
