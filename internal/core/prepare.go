package core

import (
	"fmt"

	"esrp/internal/aspmv"
	"esrp/internal/dist"
	"esrp/internal/precond"
	"esrp/internal/sparse"
)

// Prepared is a reusable read-only solve context: the row partition, the
// (possibly φ-augmented) communication plan, and the per-rank compact local
// matrices and preconditioners of one (matrix, node count, redundancy,
// partitioning, preconditioner) combination. All of it is immutable during a
// solve, so one Prepared may back any number of solves — including
// concurrent ones — that share those settings. The campaign engine builds
// each distinct context once and shares it across every grid cell that uses
// it, instead of re-deriving identical plans per cell.
type Prepared struct {
	a        *sparse.CSR
	nodes    int
	phi      int // augmentation baked into the plan (0 = plain product)
	naive    bool
	balance  bool
	kind     precond.Kind
	maxBlock int
	kernel   sparse.KernelKind

	part   *dist.Partition
	plan   *aspmv.Plan
	locals []*sparse.Local
	kerns  []sparse.Kernel
	pcs    []precond.Preconditioner
}

// KernelChoices returns each rank's planned SpMV kernel layout name — what
// the planner picked per node under KernelAuto, or the forced kind.
func (p *Prepared) KernelChoices() []string {
	names := make([]string, len(p.kerns))
	for s, k := range p.kerns {
		names[s] = k.Name()
	}
	return names
}

// preparedPhi returns the augmentation level a config's solve bakes into
// its plan: φ for the redundant-storage strategies, 0 otherwise.
func preparedPhi(cfg *Config) int {
	if cfg.Strategy == StrategyESR || cfg.Strategy == StrategyESRP {
		return cfg.Phi
	}
	return 0
}

// buildPartitionPlan derives the partition and the (φ-augmented, when the
// strategy stores redundant copies) communication plan for a defaulted
// config — the single implementation behind Solve, SolvePipelined and
// Prepare, so the prepared and per-solve paths cannot drift apart.
func buildPartitionPlan(cfg *Config) (*dist.Partition, *aspmv.Plan, error) {
	part, err := buildPartition(cfg)
	if err != nil {
		return nil, nil, err
	}
	plan, err := aspmv.NewPlan(cfg.A, part)
	if err != nil {
		return nil, nil, err
	}
	if phi := preparedPhi(cfg); phi > 0 {
		augment := plan.Augment
		if cfg.NaiveAugment {
			augment = plan.AugmentNaive
		}
		if err := augment(phi); err != nil {
			return nil, nil, err
		}
	}
	return part, plan, nil
}

// Prepare builds the shared solve context for cfg (defaults applied): the
// exact partition, plan, local matrices and preconditioners Solve would
// derive on its own. Pass the result via Config.Prepared to any solve with
// matching settings.
func Prepare(cfg Config) (*Prepared, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	part, plan, err := buildPartitionPlan(&cfg)
	if err != nil {
		return nil, err
	}
	phi := preparedPhi(&cfg)
	p := &Prepared{
		a: cfg.A, nodes: cfg.Nodes, phi: phi, naive: cfg.NaiveAugment && phi > 0,
		balance: cfg.BalanceNNZ, kind: cfg.PrecondKind, maxBlock: cfg.MaxBlock,
		kernel: cfg.Kernel,
		part:   part, plan: plan,
		locals: make([]*sparse.Local, cfg.Nodes),
		kerns:  make([]sparse.Kernel, cfg.Nodes),
		pcs:    make([]precond.Preconditioner, cfg.Nodes),
	}
	for s := 0; s < cfg.Nodes; s++ {
		lo, hi := part.Lo(s), part.Hi(s)
		pc, err := precond.Build(cfg.PrecondKind, cfg.A, lo, hi, cfg.MaxBlock)
		if err != nil {
			return nil, err
		}
		if pc.CouplesAcrossNodes() {
			return nil, fmt.Errorf("core: preconditioners coupling across node boundaries are not supported by the reconstruction")
		}
		local, err := sparse.NewLocal(cfg.A, lo, hi, plan.Ghost(s))
		if err != nil {
			return nil, fmt.Errorf("core: local matrix extraction: %w", err)
		}
		p.pcs[s] = pc
		p.locals[s] = local
		p.kerns[s] = sparse.BuildKernel(local, cfg.Kernel)
	}
	return p, nil
}

// compatibleWith rejects reuse under mismatched settings — a silently wrong
// plan would corrupt trajectories, so this fails loudly instead.
func (p *Prepared) compatibleWith(cfg *Config) error {
	switch {
	case p.a != cfg.A:
		return fmt.Errorf("core: Prepared was built for a different matrix")
	case p.nodes != cfg.Nodes:
		return fmt.Errorf("core: Prepared was built for %d nodes, solve uses %d", p.nodes, cfg.Nodes)
	case p.phi != preparedPhi(cfg):
		return fmt.Errorf("core: Prepared plan augmentation phi=%d does not match solve phi=%d", p.phi, preparedPhi(cfg))
	case p.phi > 0 && p.naive != cfg.NaiveAugment:
		return fmt.Errorf("core: Prepared augmentation scheme (naive=%v) does not match config", p.naive)
	case p.balance != cfg.BalanceNNZ:
		return fmt.Errorf("core: Prepared partition balancing does not match config")
	case p.kind != cfg.PrecondKind || p.maxBlock != cfg.MaxBlock:
		return fmt.Errorf("core: Prepared preconditioner (%v, maxBlock %d) does not match config (%v, %d)",
			p.kind, p.maxBlock, cfg.PrecondKind, cfg.MaxBlock)
	case p.kernel != cfg.Kernel:
		return fmt.Errorf("core: Prepared SpMV kernel (%v) does not match config (%v)", p.kernel, cfg.Kernel)
	}
	return nil
}

// Workspace is a reusable pool of per-rank solver vector buffers. A
// campaign worker keeps one Workspace and passes it to every cell it solves
// (Config.Workspace): the steady-state vectors of cell k+1 then reuse the
// allocations of cell k instead of growing the heap. A Workspace must not
// be shared by two solves running at the same time. Buffers handed out by
// grab carry stale values from the previous cell — the solver routes only
// provably overwritten-before-read vectors through it — while grabZero
// clears, matching a fresh make.
type Workspace struct {
	nodes []*nodeArena
}

// nodeArena is one rank's bump allocator: buffers are handed out in call
// order and the cursor rewinds between solves. Only the goroutine of its
// rank touches it during a run.
type nodeArena struct {
	bufs [][]float64
	next int
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// reset prepares the workspace for a solve on n nodes. Solve calls it
// before the node goroutines spawn.
func (ws *Workspace) reset(n int) {
	for len(ws.nodes) < n {
		ws.nodes = append(ws.nodes, &nodeArena{})
	}
	for _, na := range ws.nodes {
		na.next = 0
	}
}

func (ws *Workspace) node(rank int) *nodeArena { return ws.nodes[rank] }

// grab returns a buffer of n floats, reusing the slot's previous allocation
// when it is large enough. Reused contents are NOT cleared — callers must
// fully overwrite the buffer before reading it (the previous cell may have
// left NaNs behind).
func (na *nodeArena) grab(n int) []float64 {
	if na.next < len(na.bufs) && cap(na.bufs[na.next]) >= n {
		buf := na.bufs[na.next][:n]
		na.next++
		return buf
	}
	buf := make([]float64, n)
	if na.next < len(na.bufs) {
		na.bufs[na.next] = buf
	} else {
		na.bufs = append(na.bufs, buf)
	}
	na.next++
	return buf
}

// grabZero is grab with the buffer cleared — for vectors whose zero value
// is semantically meaningful (the initial iterand).
func (na *nodeArena) grabZero(n int) []float64 {
	buf := na.grab(n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}
