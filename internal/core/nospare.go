package core

import (
	"fmt"
	"math"

	"esrp/internal/aspmv"
	"esrp/internal/cluster"
	"esrp/internal/dist"
	"esrp/internal/obs"
	"esrp/internal/precond"
	"esrp/internal/sparse"
)

// recoverNoSpare implements the spare-free ESR/ESRP recovery of [Pachajoa,
// Pacher, Gansterer 2019] (ref. 22 of the paper): failed nodes are not
// replaced. The surviving node adjacent to the contiguous failed rank block
// adopts the failed rows, the exact pre-failure state is reconstructed
// there from the redundant copies, and the solve continues on the shrunken
// cluster. The adopter applies the failed nodes' original preconditioner
// blocks (a precond.Composite), so the solver stays on the reference
// trajectory despite the repartitioning.
//
// Failed nodes lose their state and retire; the function returns the
// iteration the survivors resume from. The recovery mode is RecoveryShrink
// (the cluster got smaller either way, even when the reconstruction had to
// degrade to a restart of the surviving iterand).
func (run *nodeRun) recoverNoSpare(j int, failed []int) (int, string) {
	st, _ := run.res.(*esrState)
	n := run.nd.Size()
	flo, fhi := run.part.RangeOfParts(failed[0], failed[len(failed)-1]+1)
	fsize := fhi - flo

	if run.amFailed(failed) {
		run.loseDynamicState()
		run.retired = true
		return j, RecoveryShrink
	}
	t0 := run.nd.Clock()
	run.nd.Sched().RecStart()

	survivors := make([]int, 0, n-len(failed))
	for s := 0; s < n; s++ {
		if !rankIsFailed(failed, s) {
			survivors = append(survivors, s)
		}
	}
	sub := run.subOf(survivors)
	adopter := adopterRank(failed, n)
	me := run.nd.Rank()

	// Roll surviving nodes back to the last completed storage stage.
	if st != nil && st.t > 1 && st.hasStars {
		copy(run.x, st.xs)
		copy(run.r, st.rs)
		copy(run.z, st.zs)
		copy(run.p, st.ps)
	}

	// The lowest surviving rank (sub rank 0) announces the reconstruction
	// iteration and β*.
	var hdr [3]float64
	if sub.Rank() == 0 && st != nil {
		if st.t == 1 && j >= 1 {
			hdr = [3]float64{float64(j), run.betaPrev, 1}
		} else if st.t > 1 && st.hasStars {
			hdr = [3]float64{float64(st.starsIter), st.betaStar, 1}
		}
	}
	sub.Bcast(0, hdr[:])
	jrec, betaStar, recoverable := int(hdr[0]), hdr[1], hdr[2] != 0

	if !recoverable {
		// Nothing to reconstruct from: repartition with the lost block
		// zeroed and restart the Krylov process from the surviving iterand.
		run.shrinkTo(sub, survivors, failed, adopter, flo, fhi, nil, nil, nil, nil, jrec, betaStar)
		run.initFromX()
		run.recoveryTime = math.Max(run.recoveryTime, run.nd.Clock()-t0)
		run.nd.Sched().RecEnd()
		return j, RecoveryShrink
	}

	// Gather the redundant copies p′^(jrec−1), p′^(jrec) of the failed
	// range at the adopter.
	var pPrev, pCur []float64
	covered := make([]int, fsize)
	if me == adopter {
		pPrev = make([]float64, fsize)
		pCur = make([]float64, fsize)
	}
	tGather := run.nd.Clock()
	for pass, tag := range []int{tagRecoverP0, tagRecoverP1} {
		iter := jrec - 1 + pass
		c := st.queue.Get(iter)
		dst := pPrev
		if pass == 1 {
			dst = pCur
		}
		for _, fr := range failed {
			if me != adopter && run.holdsEntriesOf(fr) {
				var idx []int
				var val []float64
				if c != nil {
					idx, val = c.Lookup(run.part.Lo(fr), run.part.Hi(fr))
				}
				run.nd.SendFI(adopter, tag, val, idx)
			}
		}
		if me == adopter {
			// Local copies first (the adopter may itself hold entries).
			if c != nil {
				idx, val := c.Lookup(flo, fhi)
				for k, gi := range idx {
					dst[gi-flo] = val[k]
					covered[gi-flo] |= 1 << pass
				}
			}
			for _, fr := range failed {
				for _, s := range run.survivingHoldersOf(fr, failed) {
					if s == adopter {
						continue
					}
					val, idx := run.nd.RecvFI(s, tag)
					for k, gi := range idx {
						dst[gi-flo] = val[k]
						covered[gi-flo] |= 1 << pass
					}
				}
			}
		}
	}
	run.tr.Span(obs.KindRecoverGather, tGather, run.nd.Clock())
	if len(run.events) > 1 {
		// Multi-event timelines can leave the gather incomplete (a holder
		// lost its queue to an earlier event, or the event width exceeds the
		// shrunken cluster's redundancy). The survivors vote; on any gap the
		// shrink proceeds with the failed block zeroed and a consistent
		// restart instead of reconstructing from partial data.
		okLoc := 1.0
		if me == adopter {
			for _, cvr := range covered {
				if cvr != 3 {
					okLoc = 0
					break
				}
			}
		}
		if sub.AllreduceScalar(cluster.OpMin, okLoc) == 0 {
			run.shrinkTo(sub, survivors, failed, adopter, flo, fhi, nil, nil, nil, nil, jrec, betaStar)
			run.initFromX()
			run.recoveryTime = math.Max(run.recoveryTime, run.nd.Clock()-t0)
			run.nd.Sched().RecEnd()
			// Mirror the recoverESR vote path: ESRP survivors already hold
			// the starred state of jrec, so resume there and count the
			// discarded work; ESR never rolled back.
			if st.t > 1 {
				return jrec, RecoveryShrink
			}
			return j, RecoveryShrink
		}
	} else if me == adopter {
		for i, cvr := range covered {
			if cvr != 3 {
				panic(fmt.Sprintf("core: entry %d of failed range not covered by redundant copies (mask %d)",
					flo+i, cvr))
			}
		}
	}

	// Halo of the surviving iterand x for Alg. 2 line 7, collected at the
	// adopter into a full-length buffer.
	tGather = run.nd.Clock()
	xHalo := run.gatherXHalo(failed, adopter)
	run.tr.Span(obs.KindRecoverGather, tGather, run.nd.Clock())

	// Exact state reconstruction of the failed range, local to the adopter.
	var rIf, zIf, xIf []float64
	if me == adopter {
		// Adopter scratch high-water mark: the gathered copies, the halo
		// map (~2 words per entry), the reconstruction vectors, and the
		// sequential inner solve's working set all live at once on top of
		// the steady state.
		run.notePeak(8*int64(3*fsize /* pPrev, pCur, covered */ +11*fsize /* rIf,zIf,w,xIf + inner PCG */) + 16*int64(len(xHalo)))
		failedPC, err := run.failedRangePC(failed)
		if err != nil {
			panic(fmt.Sprintf("core: rebuilding failed nodes' preconditioner: %v", err))
		}
		zIf = make([]float64, fsize)
		for i := range zIf {
			zIf[i] = pCur[i] - betaStar*pPrev[i]
		}
		run.compute(obs.KindReconstruct, 2*float64(fsize))
		rIf = make([]float64, fsize)
		failedPC.SolveRestricted(rIf, zIf)
		run.compute(obs.KindReconstruct, failedPC.SolveRestrictedFlops())
		w := make([]float64, fsize)
		var nnzf float64
		for i := flo; i < fhi; i++ {
			cols, vals := run.cfg.A.Row(i)
			var s float64
			for k, c := range cols {
				if c < flo || c >= fhi {
					s += vals[k] * xHalo[c] // absent keys read as 0 = no coupling
				}
			}
			w[i-flo] = run.cfg.B[i] - rIf[i-flo] - s
			nnzf += float64(len(cols))
		}
		run.compute(obs.KindReconstruct, 2*nnzf)
		xIf = run.innerSolveLocal(flo, fhi, w, failedPC)
	}

	// Repartition onto the survivors and continue.
	run.shrinkTo(sub, survivors, failed, adopter, flo, fhi, xIf, rIf, zIf, pCur, jrec, betaStar)
	run.restoreScalars(betaStar, st)
	run.recoveryTime = math.Max(run.recoveryTime, run.nd.Clock()-t0)
	run.nd.Sched().RecEnd()
	return jrec, RecoveryShrink
}

// subOf derives the sub-communicator handle for the given current-view
// ranks, translating them to top-level ranks as cluster.Sub requires — the
// distinction matters from the second shrink on, when the current view no
// longer equals the top-level communicator.
func (run *nodeRun) subOf(viewRanks []int) *cluster.Node {
	g := make([]int, len(viewRanks))
	for i, r := range viewRanks {
		g[i] = run.nd.GlobalOf(r)
	}
	return run.nd.Sub(g)
}

// adopterRank returns the surviving rank that adopts the failed block: the
// first survivor after the block, or the last one before it when the block
// reaches the top rank.
func adopterRank(failed []int, n int) int {
	if failed[len(failed)-1] < n-1 {
		return failed[len(failed)-1] + 1
	}
	return failed[0] - 1
}

// gatherXHalo collects, at the adopter, the surviving iterand entries that
// the failed rows couple to, keyed by global index — O(halo) storage, not
// O(n); the adopter never materializes a full-length vector.
func (run *nodeRun) gatherXHalo(failed []int, adopter int) map[int]float64 {
	me := run.nd.Rank()
	var xHalo map[int]float64
	if me == adopter {
		size := 0
		for _, fr := range failed {
			for _, t := range run.plan.Recv[fr] {
				size += len(t.Idx)
			}
		}
		xHalo = make(map[int]float64, size)
	}
	for _, fr := range failed {
		for _, t := range run.plan.Recv[fr] {
			if rankIsFailed(failed, t.Peer) {
				continue // unknowns of the inner system, not data
			}
			switch {
			case t.Peer == me && me == adopter:
				for _, gi := range t.Idx {
					xHalo[gi] = run.x[gi-run.lo]
				}
			case t.Peer == me:
				run.sendScratch = growF(run.sendScratch, len(t.Idx))
				buf := run.sendScratch
				for k, gi := range t.Idx {
					buf[k] = run.x[gi-run.lo]
				}
				run.nd.Send(adopter, tagRecoverX, buf)
			case me == adopter:
				vals := run.nd.Recv(t.Peer, tagRecoverX)
				for k, gi := range t.Idx {
					xHalo[gi] = vals[k]
				}
			}
		}
	}
	return xHalo
}

// failedRangePC rebuilds the failed nodes' preconditioner segments (from
// static data) as one composite covering [flo,fhi) in rank order.
func (run *nodeRun) failedRangePC(failed []int) (*precond.Composite, error) {
	parts := make([]precond.Preconditioner, 0, len(failed))
	sizes := make([]int, 0, len(failed))
	for _, fr := range failed {
		lo, hi := run.part.Lo(fr), run.part.Hi(fr)
		pc, err := precond.Build(run.cfg.PrecondKind, run.cfg.A, lo, hi, run.cfg.MaxBlock)
		if err != nil {
			return nil, err
		}
		parts = append(parts, pc)
		sizes = append(sizes, hi-lo)
	}
	return precond.NewComposite(parts, sizes)
}

// innerSolveLocal solves A[If,If]·x = w sequentially on this node (the
// adopter), preconditioned with the failed nodes' own blocks.
func (run *nodeRun) innerSolveLocal(flo, fhi int, w []float64, pc precond.Preconditioner) []float64 {
	asub := run.cfg.A.SubRange(flo, fhi, flo, fhi)
	seqPart := dist.NewBlockPartition(asub.Rows, 1)
	seqPlan, err := aspmv.NewPlan(asub, seqPart)
	if err != nil {
		panic(fmt.Sprintf("core: no-spare inner plan: %v", err))
	}
	maxIter := run.cfg.InnerMaxIter
	if maxIter <= 0 {
		maxIter = 100 * asub.Rows
	}
	solo := run.nd.Sub([]int{run.nd.GlobalRank()})
	x, _ := innerPCG(solo, asub, seqPlan, seqPart, pc, w, run.cfg.InnerRtol, maxIter, run.cfg.BlockingExchange, run.cfg.Kernel)
	return x
}

// shrinkTo repartitions the solve onto the survivors: the adopter's range
// absorbs the failed block (reconstructed vectors xIf, rIf, zIf, pIf; nil
// in the non-recoverable fallback, leaving zeros), every survivor switches
// to the sub-communicator and the new plan, and the redundancy machinery is
// re-established for the shrunken cluster.
func (run *nodeRun) shrinkTo(sub *cluster.Node, survivors, failed []int, adopter, flo, fhi int,
	xIf, rIf, zIf, pIf []float64, jrec int, betaStar float64) {
	me := run.nd.Rank()
	amAdopter := me == adopter

	// New partition: survivors keep their ranges; the gap left by the
	// failed block is absorbed by the next survivor (or the previous one
	// when the block is at the top).
	newPart, err := run.part.ShrinkAfterLoss(survivors)
	if err != nil {
		panic(fmt.Sprintf("core: no-spare partition: %v", err))
	}

	newPlan, err := aspmv.NewPlan(run.cfg.A, newPart)
	if err != nil {
		panic(fmt.Sprintf("core: no-spare plan: %v", err))
	}
	phiNew := run.phi
	if max := len(survivors) - 1; phiNew > max {
		phiNew = max
	}
	run.phi = phiNew
	if phiNew >= 1 {
		augment := newPlan.Augment
		if run.cfg.NaiveAugment {
			augment = newPlan.AugmentNaive
		}
		if err := augment(phiNew); err != nil {
			panic(fmt.Sprintf("core: no-spare augment: %v", err))
		}
	} else {
		run.res = nil // single survivor: no peers to hold redundancy
	}

	// Rebuild this node's local view.
	subRank := sub.Rank()
	newLo, newHi := newPart.Lo(subRank), newPart.Hi(subRank)
	newM := newHi - newLo
	if amAdopter {
		// The adopter briefly holds both the old and the new vector sets.
		run.notePeak(8 * int64(5*newM))
		x := make([]float64, newM)
		r := make([]float64, newM)
		z := make([]float64, newM)
		p := make([]float64, newM)
		place := func(dst, src []float64, gLo int) {
			if src != nil {
				copy(dst[gLo-newLo:], src)
			}
		}
		place(x, run.x, run.lo)
		place(r, run.r, run.lo)
		place(z, run.z, run.lo)
		place(p, run.p, run.lo)
		place(x, xIf, flo)
		place(r, rIf, flo)
		place(z, zIf, flo)
		place(p, pIf, flo)
		run.x, run.r, run.z, run.p = x, r, z, p
		run.q = make([]float64, newM)

		ownPC := run.pc
		failedPC, err := run.failedRangePC(failed)
		if err != nil {
			panic(fmt.Sprintf("core: no-spare preconditioner: %v", err))
		}
		var parts []precond.Preconditioner
		var sizes []int
		if flo < run.lo { // adopted block precedes the own range
			parts = []precond.Preconditioner{failedPC, ownPC}
			sizes = []int{fhi - flo, run.hi - run.lo}
		} else {
			parts = []precond.Preconditioner{ownPC, failedPC}
			sizes = []int{run.hi - run.lo, fhi - flo}
		}
		comp, err := precond.NewComposite(parts, sizes)
		if err != nil {
			panic(fmt.Sprintf("core: no-spare composite: %v", err))
		}
		run.pc = comp
	}
	run.nd = sub
	run.part = newPart
	run.plan = newPlan
	run.lo, run.hi, run.m = newLo, newHi, newM

	// Re-extract the compact local view for the shrunken plan: every
	// survivor's ghost set changed, not just the adopter's. The halo-byte
	// counter carries over so Result.HaloBytes stays a whole-solve figure.
	local, err := sparse.NewLocal(run.cfg.A, newLo, newHi, newPlan.Ghost(subRank))
	if err != nil {
		panic(fmt.Sprintf("core: no-spare local matrix: %v", err))
	}
	run.local = local
	run.kern = sparse.BuildKernel(local, run.cfg.Kernel)
	run.nnzLocal = float64(local.NNZ())
	sent := run.ex.HaloBytes()
	run.ex = newPlan.NewExchanger(subRank)
	run.ex.AddHaloBytes(sent)
	run.pg = make([]float64, newM+local.G())

	// Re-anchor the redundancy machinery on the new layout: the queue held
	// copies routed by the old plan, which no longer matches the shrunken
	// holder sets, so it restarts empty; the starred duplicates become the
	// just-reconstructed state at jrec.
	if st, ok := run.res.(*esrState); ok && st != nil {
		st.queue.Reset()
		st.xs = make([]float64, newM)
		st.rs = make([]float64, newM)
		st.zs = make([]float64, newM)
		st.ps = make([]float64, newM)
		if st.t > 1 {
			copy(st.xs, run.x)
			copy(st.rs, run.r)
			copy(st.zs, run.z)
			copy(st.ps, run.p)
			st.starsIter = jrec
			st.hasStars = true
			st.betaStar = betaStar
			st.betaPending = betaStar
		}
	}
}
