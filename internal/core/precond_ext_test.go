package core

import (
	"testing"

	"esrp/internal/matgen"
	"esrp/internal/precond"
)

// IC(0) is the "more appropriate preconditioner" extension the paper's
// conclusions call for. It must (a) beat block Jacobi in iteration count on
// the ill-conditioned analogs and (b) remain fully compatible with the
// exact state reconstruction.
func TestIC0BeatsBlockJacobiIterations(t *testing.T) {
	a := matgen.EmiliaLike(10, 10, 10, 9)
	b := matgen.RHSOnes(a.Rows)
	iters := map[precond.Kind]int{}
	for _, pk := range []precond.Kind{precond.BlockJacobi, precond.IC0} {
		cfg := Config{A: a, B: b, Nodes: 4, PrecondKind: pk, CostModel: fastModel()}
		iters[pk] = solveOK(t, cfg).Iterations
	}
	if iters[precond.IC0] >= iters[precond.BlockJacobi] {
		t.Fatalf("IC(0) (%d iters) should beat block Jacobi (%d iters)",
			iters[precond.IC0], iters[precond.BlockJacobi])
	}
}

func TestIC0ESRPRecovery(t *testing.T) {
	a := matgen.EmiliaLike(8, 8, 8, 11)
	b := matgen.RHSOnes(a.Rows)
	cfg := Config{
		A: a, B: b, Nodes: 8,
		PrecondKind: precond.IC0,
		Strategy:    StrategyESRP, T: 10, Phi: 2,
		Failure:   &FailureSpec{Iteration: 25, Ranks: []int{3, 4}},
		CostModel: fastModel(),
	}
	res := checkExactRecovery(t, cfg, 3)
	if res.RecoveredAt != 21 {
		t.Fatalf("RecoveredAt = %d, want 21 (storage stage at T=10 before iteration 25)", res.RecoveredAt)
	}
}

func TestIC0ESRRecoveryMultipleFailures(t *testing.T) {
	a := matgen.EmiliaLike(8, 8, 8, 13)
	b := matgen.RHSOnes(a.Rows)
	cfg := Config{
		A: a, B: b, Nodes: 8,
		PrecondKind: precond.IC0,
		Strategy:    StrategyESR, Phi: 3,
		Failure:   &FailureSpec{Iteration: 30, Ranks: []int{5, 6, 7}},
		CostModel: fastModel(),
	}
	res := checkExactRecovery(t, cfg, 3)
	if res.WastedIters != 0 {
		t.Fatalf("ESR wastes no iterations, got %d", res.WastedIters)
	}
}

func TestIC0IMCRRecovery(t *testing.T) {
	a := matgen.EmiliaLike(8, 8, 8, 15)
	b := matgen.RHSOnes(a.Rows)
	cfg := Config{
		A: a, B: b, Nodes: 8,
		PrecondKind: precond.IC0,
		Strategy:    StrategyIMCR, T: 10, Phi: 1,
		Failure:   &FailureSpec{Iteration: 25, Ranks: []int{2}},
		CostModel: fastModel(),
	}
	res := checkExactRecovery(t, cfg, 3)
	if res.RecoveredAt != 21 {
		t.Fatalf("RecoveredAt = %d, want 21", res.RecoveredAt)
	}
}
