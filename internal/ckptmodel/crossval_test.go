package ckptmodel_test

import (
	"math"
	"testing"

	"esrp"
	"esrp/internal/ckptmodel"
)

// TestAnalyticOptimumMatchesReplaySweep cross-validates the Young/Daly
// interval models against the simulator itself: it measures δ (per
// storage-stage cost) and the per-iteration time from two failure-free
// recordings, sweeps the checkpoint interval T over a small grid under a
// fixed failure timeline via the replay engine, and checks that the swept
// SimTime minimum lands within a loose factor window of Daly's analytic
// optimum. The window is wide on purpose — the sweep uses one deterministic
// timeline, not the exponential-failure expectation the model averages over.
func TestAnalyticOptimumMatchesReplaySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps a T grid of full recordings")
	}
	a := esrp.Poisson2D(48, 48)
	b := esrp.RHSOnes(a.Rows)
	base := func() esrp.Config {
		return esrp.Config{
			A: a, B: b, Nodes: 4,
			Strategy: esrp.StrategyESRP, T: 8,
			Rtol: 1e-10, DetectionTime: 2e-5,
		}
	}
	record := func(cfg esrp.Config) (*esrp.Result, *esrp.Replayed) {
		t.Helper()
		res, sched, err := esrp.RecordSchedule(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := esrp.Recost(sched, esrp.DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		if rep.SimTime != res.SimTime {
			t.Fatalf("replay drifted from solve: %v vs %v", rep.SimTime, res.SimTime)
		}
		return res, rep
	}

	// Measure δ and the per-iteration time from two failure-free runs at
	// different T: the SimTime difference is purely the extra storage stages.
	cfgA, cfgB := base(), base()
	cfgA.T, cfgB.T = 4, 16
	resA, _ := record(cfgA)
	resB, _ := record(cfgB)
	if resA.Iterations != resB.Iterations {
		t.Fatalf("failure-free iteration count depends on T: %d vs %d", resA.Iterations, resB.Iterations)
	}
	iters := resA.Iterations
	nA, nB := iters/cfgA.T, iters/cfgB.T
	if nA <= nB {
		t.Fatalf("degenerate checkpoint counts: %d vs %d", nA, nB)
	}
	delta := (resA.SimTime - resB.SimTime) / float64(nA-nB)
	if delta <= 0 {
		t.Fatalf("non-positive storage-stage cost δ = %g", delta)
	}
	iterTime := (resB.SimTime - float64(nB)*delta) / float64(iters)
	if iterTime <= 0 {
		t.Fatalf("non-positive per-iteration time %g", iterTime)
	}

	// Fixed failure timeline: one failure every gap iterations, well inside
	// the failure-free horizon so every event fires under every T.
	const gap = 25
	var failures []esrp.FailureSpec
	for it := gap; it < iters-10; it += gap {
		failures = append(failures, esrp.FailureSpec{Iteration: it, Ranks: []int{1}})
	}
	if len(failures) < 2 {
		t.Fatalf("horizon too short for a failure timeline: %d iterations", iters)
	}
	mtbf := gap * iterTime

	plan, err := ckptmodel.Plan(delta, iterTime, mtbf)
	if err != nil {
		t.Fatal(err)
	}

	// Replay-swept minimum over a small T grid under the fixed timeline.
	// The grid stays below the failure gap: the Young/Daly model assumes a
	// completed checkpoint precedes every failure, and with T ≥ gap the
	// first failure strikes before any storage stage exists, degenerating
	// ESRP to a restart the model does not describe.
	grid := []int{3, 4, 5, 8, 12, 16, 20}
	bestT, bestTime := 0, math.Inf(1)
	for _, T := range grid {
		cfg := base()
		cfg.T = T
		cfg.Failures = failures
		res, rep := record(cfg)
		t.Logf("T=%-3d SimTime=%.6gs steps=%d events=%d wasted=%d", T, rep.SimTime, res.TotalSteps, len(res.Events), res.WastedIters)
		if rep.SimTime < bestTime {
			bestT, bestTime = T, rep.SimTime
		}
	}

	t.Logf("δ=%.3g s, iterTime=%.3g s, MTBF=%.3g s → Young=%d iters, Daly=%d iters; swept argmin T=%d",
		delta, iterTime, mtbf, plan.YoungIters, plan.DalyIters, bestT)

	// Project the analytic optimum onto ESRP's feasible range (T ≥ 3): with
	// a cheap storage stage Daly's τ can fall below the smallest legal T,
	// and the implementable optimum is the boundary.
	analyticT := plan.DalyIters
	if analyticT < 3 {
		analyticT = 3
	}
	ratio := float64(bestT) / float64(analyticT)
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("swept optimum T=%d is off Daly's analytic optimum %d (feasible-projected) by factor %.2f (want within [0.2, 5])",
			bestT, analyticT, ratio)
	}
}
