// Package ckptmodel implements the classical checkpoint-interval optimality
// models the paper's Section 1 points to for choosing the interval T:
// Young's first-order estimate [Young 1974, ref. 28 of the paper] and Daly's
// higher-order refinement [Daly 2006, ref. 8], plus the expected-runtime
// model that justifies them.
//
// The models trade the per-checkpoint cost δ against the expected rework
// after a failure for a machine with mean time between failures M: small
// intervals waste time checkpointing, large intervals waste time
// recomputing. For ESRP, δ is the cost of one storage stage (two augmented
// SpMVs plus the local duplications); for IMCR, δ is the cost of shipping
// the four dynamic vectors to φ buddies.
package ckptmodel

import (
	"fmt"
	"math"
)

// YoungInterval returns Young's first-order optimal checkpoint interval
// τ = √(2·δ·M) (seconds between checkpoint *starts* excluded; τ measures
// useful work between checkpoints), for per-checkpoint cost δ and mean time
// between failures M, both in seconds.
func YoungInterval(delta, mtbf float64) float64 {
	return math.Sqrt(2 * delta * mtbf)
}

// DalyInterval returns Daly's higher-order optimum
//
//	τ = √(2·δ·M)·[1 + ⅓·√(δ/(2M)) + (1/9)·(δ/(2M))] − δ   for δ < 2M
//	τ = M                                                  otherwise
//
// which reduces to Young's estimate as δ/M → 0.
func DalyInterval(delta, mtbf float64) float64 {
	if delta >= 2*mtbf {
		return mtbf
	}
	x := delta / (2 * mtbf)
	return math.Sqrt(2*delta*mtbf)*(1+math.Sqrt(x)/3+x/9) - delta
}

// ExpectedRuntime returns the expected total runtime of a job with failure-
// free work w, per-checkpoint cost δ, checkpoint interval τ (useful work
// between checkpoints), restart/recovery cost r, and exponentially
// distributed failures with MTBF M — Daly's complete model:
//
//	E = M·e^{r/M}·(e^{(τ+δ)/M} − 1)·w/τ
//
// It is minimized (over τ) near DalyInterval(δ, M).
func ExpectedRuntime(work, delta, tau, restart, mtbf float64) float64 {
	if tau <= 0 || mtbf <= 0 {
		return math.Inf(1)
	}
	return mtbf * math.Exp(restart/mtbf) * (math.Expm1((tau + delta) / mtbf)) * work / tau
}

// IntervalIters converts a time-domain interval τ into a checkpointing
// interval in solver iterations, given the failure-free per-iteration time.
// The result is at least 1.
func IntervalIters(tau, iterTime float64) int {
	if iterTime <= 0 {
		return 1
	}
	t := int(math.Round(tau / iterTime))
	if t < 1 {
		t = 1
	}
	return t
}

// Advise bundles the model inputs and outputs for one strategy's planning.
type Advise struct {
	Delta    float64 // per-checkpoint (storage-stage) cost, seconds
	IterTime float64 // failure-free per-iteration time, seconds
	MTBF     float64 // mean time between failures, seconds

	YoungTau   float64 // Young's τ, seconds
	DalyTau    float64 // Daly's τ, seconds
	YoungIters int     // Young's τ in iterations
	DalyIters  int     // Daly's τ in iterations
}

// Plan evaluates both models for the given costs.
func Plan(delta, iterTime, mtbf float64) (Advise, error) {
	if delta < 0 || iterTime <= 0 || mtbf <= 0 {
		return Advise{}, fmt.Errorf("ckptmodel: need delta ≥ 0, iterTime > 0, mtbf > 0 (got %g, %g, %g)",
			delta, iterTime, mtbf)
	}
	a := Advise{Delta: delta, IterTime: iterTime, MTBF: mtbf}
	a.YoungTau = YoungInterval(delta, mtbf)
	a.DalyTau = DalyInterval(delta, mtbf)
	a.YoungIters = IntervalIters(a.YoungTau, iterTime)
	a.DalyIters = IntervalIters(a.DalyTau, iterTime)
	return a, nil
}
