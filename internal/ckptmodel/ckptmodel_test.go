package ckptmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestYoungIntervalKnownValues(t *testing.T) {
	// δ = 50 s, MTBF = 1 h: τ = √(2·50·3600) = 600 s.
	if got := YoungInterval(50, 3600); math.Abs(got-600) > 1e-9 {
		t.Fatalf("YoungInterval(50, 3600) = %g, want 600", got)
	}
	if got := YoungInterval(0, 3600); got != 0 {
		t.Fatalf("zero checkpoint cost should give zero interval, got %g", got)
	}
}

func TestDalyReducesToYoungForSmallDelta(t *testing.T) {
	// As δ/M → 0, Daly ≈ Young.
	for _, mtbf := range []float64{3600, 9 * 3600} {
		delta := 1e-4 * mtbf
		y := YoungInterval(delta, mtbf)
		d := DalyInterval(delta, mtbf)
		if rel := math.Abs(d-y) / y; rel > 0.02 {
			t.Fatalf("Daly %g vs Young %g differ by %.2f%% for tiny δ", d, y, 100*rel)
		}
	}
}

func TestDalyLargeDeltaClamp(t *testing.T) {
	if got := DalyInterval(3*3600, 3600); got != 3600 {
		t.Fatalf("DalyInterval with δ ≥ 2M must clamp to M, got %g", got)
	}
}

func TestExpectedRuntimeMinimizedNearDaly(t *testing.T) {
	// The full expected-runtime model must be (near-)minimal at Daly's τ:
	// scan a grid of intervals and verify no grid point beats Daly's τ by
	// more than 1%.
	work, delta, restart, mtbf := 10*3600.0, 60.0, 120.0, 6*3600.0
	tauOpt := DalyInterval(delta, mtbf)
	best := ExpectedRuntime(work, delta, tauOpt, restart, mtbf)
	for tau := tauOpt / 10; tau < tauOpt*10; tau *= 1.1 {
		if e := ExpectedRuntime(work, delta, tau, restart, mtbf); e < best*0.99 {
			t.Fatalf("τ=%g gives E=%g, beating Daly τ=%g (E=%g) by >1%%", tau, e, tauOpt, best)
		}
	}
}

func TestExpectedRuntimeDegenerate(t *testing.T) {
	if !math.IsInf(ExpectedRuntime(1, 1, 0, 0, 100), 1) {
		t.Fatal("zero interval must be infinitely expensive")
	}
	if !math.IsInf(ExpectedRuntime(1, 1, 1, 0, 0), 1) {
		t.Fatal("zero MTBF must be infinitely expensive")
	}
}

func TestIntervalIters(t *testing.T) {
	if got := IntervalIters(600, 1.5); got != 400 {
		t.Fatalf("IntervalIters(600, 1.5) = %d, want 400", got)
	}
	if got := IntervalIters(0.1, 1.5); got != 1 {
		t.Fatalf("tiny τ must clamp to 1 iteration, got %d", got)
	}
	if got := IntervalIters(100, 0); got != 1 {
		t.Fatalf("degenerate iterTime must clamp to 1, got %d", got)
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := Plan(-1, 1, 1); err == nil {
		t.Error("negative delta must error")
	}
	if _, err := Plan(1, 0, 1); err == nil {
		t.Error("zero iterTime must error")
	}
	if _, err := Plan(1, 1, 0); err == nil {
		t.Error("zero mtbf must error")
	}
	a, err := Plan(50, 0.5, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if a.YoungIters != 1200 {
		t.Fatalf("YoungIters = %d, want 1200 (600 s / 0.5 s)", a.YoungIters)
	}
	if a.DalyIters <= 0 {
		t.Fatalf("DalyIters = %d", a.DalyIters)
	}
}

func TestYoungMonotonicProperty(t *testing.T) {
	// τ grows with both δ and MTBF.
	f := func(d1, d2, m uint16) bool {
		da, db := float64(d1)+1, float64(d1)+float64(d2)+2
		mtbf := float64(m) + 1
		return YoungInterval(da, mtbf) < YoungInterval(db, mtbf) &&
			YoungInterval(da, mtbf) < YoungInterval(da, 2*mtbf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
