package dist

import (
	"math"
	"math/rand"
	"testing"
)

func maxLoad(t *testing.T, p *Partition, weights []float64) float64 {
	t.Helper()
	loads, err := p.Loads(weights)
	if err != nil {
		t.Fatal(err)
	}
	var max float64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// skewedWeights models the row costs of a matrix whose leading quarter is
// much denser than the rest (the fixture of internal/core's balanced tests).
func skewedWeights(m int) []float64 {
	w := make([]float64, m)
	for i := range w {
		w[i] = 4
		if i < m/4 {
			w[i] = 50
		}
	}
	return w
}

func TestBalancedBeatsBlockOnSkewedWeights(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		w := skewedWeights(800)
		block := NewBlockPartition(len(w), n)
		bal, err := NewBalancedWeightPartition(w, n)
		if err != nil {
			t.Fatal(err)
		}
		checkTiling(t, bal)
		mb, ml := maxLoad(t, block, w), maxLoad(t, bal, w)
		if ml >= mb {
			t.Fatalf("n=%d: balanced max load %g not below block %g", n, ml, mb)
		}
		// On this fixture the block split is ~4× off; balanced must land
		// within 5%% of the perfect mean.
		var total float64
		for _, x := range w {
			total += x
		}
		if mean := total / float64(n); ml > 1.05*mean {
			t.Fatalf("n=%d: balanced max load %g far above mean %g", n, ml, mean)
		}
	}
}

// bruteForceOptimum solves the contiguous min-max partition exactly with the
// O(n·m²) dynamic program, the reference the parametric search must match.
func bruteForceOptimum(weights []float64, n int) float64 {
	m := len(weights)
	prefix := make([]float64, m+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	const inf = math.MaxFloat64
	dp := make([]float64, m+1) // dp[e]: best makespan of weights[0:e] in s parts
	for e := range dp {
		dp[e] = inf
	}
	dp[0] = 0
	for s := 1; s <= n; s++ {
		next := make([]float64, m+1)
		for e := range next {
			next[e] = inf
		}
		for e := s; e <= m-(n-s); e++ {
			for b := s - 1; b < e; b++ {
				if dp[b] == inf {
					continue
				}
				cand := math.Max(dp[b], prefix[e]-prefix[b])
				if cand < next[e] {
					next[e] = cand
				}
			}
		}
		dp = next
	}
	return dp[m]
}

func TestBalancedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(18)
		n := 1 + rng.Intn(m)
		w := make([]float64, m)
		for i := range w {
			w[i] = math.Floor(rng.Float64() * 20)
		}
		p, err := NewBalancedWeightPartition(w, n)
		if err != nil {
			t.Fatal(err)
		}
		checkTiling(t, p)
		got := maxLoad(t, p, w)
		want := bruteForceOptimum(w, n)
		if got > want*(1+1e-12)+1e-12 {
			t.Fatalf("m=%d n=%d w=%v: max load %g, optimum %g (%v)", m, n, w, got, want, p)
		}
	}
}

func TestBalancedUniformWeightsMatchesBlock(t *testing.T) {
	w := make([]float64, 60)
	for i := range w {
		w[i] = 3
	}
	p, err := NewBalancedWeightPartition(w, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(NewBlockPartition(60, 6)) {
		t.Fatalf("uniform weights gave %v", p)
	}
	// The uniform result must regain the O(1) Owner fast path.
	if p.blockQ < 0 {
		t.Fatal("uniform balanced partition lacks the fast Owner path")
	}
}

func TestBalancedNonEmptyParts(t *testing.T) {
	// One overwhelming weight must not starve the other parts.
	w := make([]float64, 10)
	w[0] = 1e9
	for i := 1; i < len(w); i++ {
		w[i] = 1
	}
	p, err := NewBalancedWeightPartition(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkTiling(t, p)
	for s := 0; s < p.N; s++ {
		if p.Size(s) == 0 {
			t.Fatalf("part %d empty: %v", s, p)
		}
	}
}

func TestBalancedZeroWeights(t *testing.T) {
	p, err := NewBalancedWeightPartition(make([]float64, 12), 3)
	if err != nil {
		t.Fatal(err)
	}
	checkTiling(t, p)
	for s := 0; s < p.N; s++ {
		if p.Size(s) == 0 {
			t.Fatalf("part %d empty under zero weights: %v", s, p)
		}
	}
}

func TestBalancedErrors(t *testing.T) {
	ones := []float64{1, 1, 1}
	for _, tc := range []struct {
		name string
		w    []float64
		n    int
	}{
		{"zero parts", ones, 0},
		{"more parts than indices", ones, 4},
		{"negative weight", []float64{1, -1, 1}, 2},
		{"NaN weight", []float64{1, math.NaN(), 1}, 2},
		{"Inf weight", []float64{1, math.Inf(1), 1}, 2},
	} {
		if _, err := NewBalancedWeightPartition(tc.w, tc.n); err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
	}
}
