package dist

import "testing"

func TestShrinkAfterLossMiddle(t *testing.T) {
	p := NewBlockPartition(40, 4) // parts of 10
	// Parts 1 and 2 are lost; survivor 3 (the adopter) absorbs [10,30).
	q, err := p.ShrinkAfterLoss([]int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromOffsets([]int{0, 10, 40})
	if !q.Equal(want) {
		t.Fatalf("shrink gave %v, want %v", q, want)
	}
	checkTiling(t, q)
}

func TestShrinkAfterLossTop(t *testing.T) {
	p := NewBlockPartition(40, 4)
	// The top part is lost; the last survivor absorbs its range.
	q, err := p.ShrinkAfterLoss([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromOffsets([]int{0, 10, 20, 40})
	if !q.Equal(want) {
		t.Fatalf("shrink gave %v, want %v", q, want)
	}
}

func TestShrinkAfterLossBottom(t *testing.T) {
	p := NewBlockPartition(40, 4)
	// The bottom part is lost; the first survivor absorbs [0,10).
	q, err := p.ShrinkAfterLoss([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromOffsets([]int{0, 20, 30, 40})
	if !q.Equal(want) {
		t.Fatalf("shrink gave %v, want %v", q, want)
	}
}

func TestShrinkAllSurvive(t *testing.T) {
	p := NewBlockPartition(21, 3)
	q, err := p.ShrinkAfterLoss([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Equal(p) {
		t.Fatalf("no-loss shrink changed the partition: %v vs %v", q, p)
	}
}

func TestShrinkSingleSurvivor(t *testing.T) {
	p := NewBlockPartition(30, 5)
	q, err := p.ShrinkAfterLoss([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if q.N != 1 || q.Lo(0) != 0 || q.Hi(0) != 30 {
		t.Fatalf("single survivor owns %v", q)
	}
}

func TestShrinkErrors(t *testing.T) {
	p := NewBlockPartition(30, 5)
	for _, bad := range [][]int{
		nil,
		{},
		{-1, 2},
		{2, 5},
		{3, 2},
		{2, 2},
	} {
		if _, err := p.ShrinkAfterLoss(bad); err == nil {
			t.Fatalf("ShrinkAfterLoss(%v) accepted", bad)
		}
	}
}
