// Package dist implements the block row data distribution that the ASpMV
// redundancy mechanism (Section 2.2, Eq. 1 of the paper) and the whole
// solver stack are defined against: a partition of the global index range
// [0,M) into N contiguous, ordered parts, one per simulated node.
//
// Beyond the uniform split the paper uses, the package provides
// weight-balanced contiguous partitioning (NewBalancedWeightPartition — the
// paper's future-work question of SpMV-optimizing distributions), partition
// quality diagnostics (per-node load, imbalance factor, ghost-entry
// communication volume against a sparse matrix), and the shrink mapping a
// partition onto the surviving nodes after a permanent node loss
// (ShrinkAfterLoss, feeding the no-spare-node recovery of ref. 22).
//
// All resilience machinery in internal/core requires only what Partition
// guarantees: contiguous ownership and ordered parts.
package dist

import (
	"fmt"
	"sort"
	"strings"
)

// Partition is a division of the global index range [0,M) into N contiguous
// parts: part s owns [Lo(s), Hi(s)), parts are ordered and tile the range.
// Parts may be empty. The zero value is not a valid Partition; use one of
// the constructors.
type Partition struct {
	M int // global size (number of rows / vector entries)
	N int // number of parts (nodes)

	// offsets[s] is the first index of part s; offsets[N] == M.
	offsets []int
	// blockQ/blockR enable the O(1) Owner fast path for uniform block
	// partitions: the first blockR parts have blockQ+1 indices, the rest
	// blockQ. blockQ < 0 means "not uniform, binary-search Owner".
	blockQ, blockR int
}

// NewBlockPartition returns the uniform block row partition of m indices
// over n parts: the first m%n parts own ⌈m/n⌉ indices, the rest ⌊m/n⌋ —
// the paper's distribution. Panics if m < 0 or n < 1.
func NewBlockPartition(m, n int) *Partition {
	if m < 0 || n < 1 {
		panic(fmt.Sprintf("dist: invalid block partition %d over %d", m, n))
	}
	q, r := m/n, m%n
	offsets := make([]int, n+1)
	for s := 0; s < n; s++ {
		size := q
		if s < r {
			size++
		}
		offsets[s+1] = offsets[s] + size
	}
	return &Partition{M: m, N: n, offsets: offsets, blockQ: q, blockR: r}
}

// FromOffsets builds a partition from its offset vector: offsets[s] is the
// first index of part s, offsets[len-1] the global size. Validation is
// strict: offsets must start at 0, be monotone non-decreasing (empty parts
// are allowed), and hold at least two entries, so the parts exactly tile
// [0, offsets[len-1]).
func FromOffsets(offsets []int) (*Partition, error) {
	if len(offsets) < 2 {
		return nil, fmt.Errorf("dist: need at least 2 offsets (1 part), got %d", len(offsets))
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("dist: offsets must start at 0, got %d", offsets[0])
	}
	for s := 1; s < len(offsets); s++ {
		if offsets[s] < offsets[s-1] {
			return nil, fmt.Errorf("dist: offsets must be monotone, offset %d is %d after %d",
				s, offsets[s], offsets[s-1])
		}
	}
	own := append([]int(nil), offsets...)
	p := &Partition{M: own[len(own)-1], N: len(own) - 1, offsets: own, blockQ: -1}
	p.detectUniform()
	return p, nil
}

// detectUniform enables the O(1) Owner fast path when the offsets happen to
// describe the uniform block layout of NewBlockPartition.
func (p *Partition) detectUniform() {
	q, r := p.M/p.N, p.M%p.N
	for s := 0; s < p.N; s++ {
		size := q
		if s < r {
			size++
		}
		if p.offsets[s+1]-p.offsets[s] != size {
			p.blockQ = -1
			return
		}
	}
	p.blockQ, p.blockR = q, r
}

// Lo returns the first global index owned by part s.
func (p *Partition) Lo(s int) int { return p.offsets[s] }

// Hi returns one past the last global index owned by part s.
func (p *Partition) Hi(s int) int { return p.offsets[s+1] }

// Size returns the number of indices part s owns.
func (p *Partition) Size(s int) int { return p.offsets[s+1] - p.offsets[s] }

// RangeOfParts returns the combined index range [Lo(a), Hi(b-1)) of the
// contiguous part block [a, b).
func (p *Partition) RangeOfParts(a, b int) (lo, hi int) {
	if a < 0 || b > p.N || a >= b {
		panic(fmt.Sprintf("dist: part range [%d,%d) invalid for %d parts", a, b, p.N))
	}
	return p.offsets[a], p.offsets[b]
}

// Owner returns the part that owns global index j: O(1) for uniform block
// partitions, binary search otherwise. Panics if j is outside [0,M).
func (p *Partition) Owner(j int) int {
	if j < 0 || j >= p.M {
		panic(fmt.Sprintf("dist: index %d outside [0,%d)", j, p.M))
	}
	if q := p.blockQ; q >= 0 {
		split := p.blockR * (q + 1)
		if j < split {
			return j / (q + 1)
		}
		return p.blockR + (j-split)/q
	}
	// First part whose end exceeds j; empty parts sort before it.
	return sort.SearchInts(p.offsets[1:], j+1)
}

// Offsets returns a copy of the partition's offset vector (length N+1).
func (p *Partition) Offsets() []int {
	return append([]int(nil), p.offsets...)
}

// Sizes returns the part sizes (length N).
func (p *Partition) Sizes() []int {
	sizes := make([]int, p.N)
	for s := range sizes {
		sizes[s] = p.Size(s)
	}
	return sizes
}

// Equal reports whether two partitions describe the identical distribution.
func (p *Partition) Equal(q *Partition) bool {
	if p == nil || q == nil {
		return p == q
	}
	if p.M != q.M || p.N != q.N {
		return false
	}
	for s := 0; s <= p.N; s++ {
		if p.offsets[s] != q.offsets[s] {
			return false
		}
	}
	return true
}

// String renders the partition compactly for test failures and harness
// reports, eliding the interior offsets of large partitions.
func (p *Partition) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Partition{M:%d N:%d offsets:[", p.M, p.N)
	const maxShown = 17
	if len(p.offsets) <= maxShown {
		for s, o := range p.offsets {
			if s > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", o)
		}
	} else {
		for s := 0; s < maxShown/2; s++ {
			fmt.Fprintf(&b, "%d ", p.offsets[s])
		}
		fmt.Fprintf(&b, "… %d more …", len(p.offsets)-maxShown+1)
		for s := len(p.offsets) - maxShown/2; s < len(p.offsets); s++ {
			fmt.Fprintf(&b, " %d", p.offsets[s])
		}
	}
	b.WriteString("]}")
	return b.String()
}
