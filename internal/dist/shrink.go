package dist

import "fmt"

// ShrinkAfterLoss maps the partition onto the surviving parts after a
// permanent node loss, the repartitioning of the no-spare-node recovery
// ([Pachajoa, Pacher, Gansterer 2019], ref. 22 of the paper): survivors
// keep their ranges and their relative order; the range of every lost part
// is absorbed by the next surviving part (the "adopter"), or by the last
// survivor when the loss reaches the top of the range. The result has
// len(survivors) parts and covers the same [0,M).
//
// survivors must be a strictly ascending, non-empty, proper-or-full subset
// of [0,N).
func (p *Partition) ShrinkAfterLoss(survivors []int) (*Partition, error) {
	if len(survivors) == 0 {
		return nil, fmt.Errorf("dist: shrink needs at least one survivor")
	}
	for i, s := range survivors {
		if s < 0 || s >= p.N {
			return nil, fmt.Errorf("dist: survivor %d outside [0,%d)", s, p.N)
		}
		if i > 0 && s <= survivors[i-1] {
			return nil, fmt.Errorf("dist: survivors must be strictly ascending, got %v", survivors)
		}
	}
	offsets := make([]int, len(survivors)+1)
	for i, s := range survivors {
		// New part i spans from the previous survivor's end to this
		// survivor's end, absorbing any lost parts in between.
		offsets[i+1] = p.Hi(s)
	}
	// Losses past the last survivor fall to it.
	offsets[len(survivors)] = p.M
	return FromOffsets(offsets)
}
