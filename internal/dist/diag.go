package dist

import (
	"fmt"
	"strings"

	"esrp/internal/sparse"
)

// Loads returns the per-part weight sums of the partition. The weight
// vector must cover the full global range.
func (p *Partition) Loads(weights []float64) ([]float64, error) {
	if len(weights) != p.M {
		return nil, fmt.Errorf("dist: %d weights for a partition of %d indices", len(weights), p.M)
	}
	loads := make([]float64, p.N)
	for s := 0; s < p.N; s++ {
		var sum float64
		for i := p.offsets[s]; i < p.offsets[s+1]; i++ {
			sum += weights[i]
		}
		loads[s] = sum
	}
	return loads, nil
}

// Imbalance returns the load-imbalance factor max/mean of the given
// per-part loads — 1.0 is perfect balance; the factor bounds the speedup
// lost to the slowest node. Zero total load reports 1.0.
func Imbalance(loads []float64) float64 {
	var max, total float64
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 1
	}
	return max * float64(len(loads)) / total
}

// GhostVolume estimates the communication volume of one distributed SpMV of
// a under the partition: perPart[s] counts the distinct external vector
// entries part s must receive (its ghost entries), total their sum — the
// number of vector-entry transfers per product, before any redundancy
// augmentation.
func (p *Partition) GhostVolume(a *sparse.CSR) (perPart []int, total int, err error) {
	if a.Rows != p.M {
		return nil, 0, fmt.Errorf("dist: matrix has %d rows, partition covers %d", a.Rows, p.M)
	}
	perPart = make([]int, p.N)
	seen := make([]bool, a.Cols)
	var touched []int
	for s := 0; s < p.N; s++ {
		lo, hi := p.offsets[s], p.offsets[s+1]
		touched = touched[:0]
		for i := lo; i < hi; i++ {
			cols, _ := a.Row(i)
			for _, j := range cols {
				if (j < lo || j >= hi) && !seen[j] {
					seen[j] = true
					touched = append(touched, j)
				}
			}
		}
		perPart[s] = len(touched)
		total += len(touched)
		for _, j := range touched {
			seen[j] = false
		}
	}
	return perPart, total, nil
}

// Quality bundles the partition diagnostics for one matrix: the per-part
// nonzero loads, their imbalance factor, and the SpMV ghost-entry volume.
type Quality struct {
	Loads      []float64 // per-part nonzero counts
	MaxLoad    float64
	MeanLoad   float64
	Imbalance  float64 // MaxLoad / MeanLoad
	Ghosts     []int   // per-part ghost entries of one SpMV
	GhostTotal int
}

// Analyze computes the Quality of the partition for matrix a, using the
// per-row nonzero count as the load weight (the SpMV flop share).
func (p *Partition) Analyze(a *sparse.CSR) (*Quality, error) {
	if a.Rows != p.M {
		return nil, fmt.Errorf("dist: matrix has %d rows, partition covers %d", a.Rows, p.M)
	}
	weights := make([]float64, a.Rows)
	for i := range weights {
		weights[i] = float64(a.RowPtr[i+1] - a.RowPtr[i])
	}
	loads, err := p.Loads(weights)
	if err != nil {
		return nil, err
	}
	q := &Quality{Loads: loads, Imbalance: Imbalance(loads)}
	var total float64
	for _, l := range loads {
		total += l
		if l > q.MaxLoad {
			q.MaxLoad = l
		}
	}
	q.MeanLoad = total / float64(p.N)
	if q.Ghosts, q.GhostTotal, err = p.GhostVolume(a); err != nil {
		return nil, err
	}
	return q, nil
}

// String renders the headline quality numbers for harness reports.
func (q *Quality) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load max/mean %.0f/%.0f (imbalance %.3f), ghosts %d",
		q.MaxLoad, q.MeanLoad, q.Imbalance, q.GhostTotal)
	return b.String()
}
