package dist

import (
	"fmt"
	"math"
	"sort"
)

// NewBalancedWeightPartition returns the contiguous partition of the
// weighted indices into n parts that minimizes the maximum per-part weight
// (the makespan of the block row distribution): the classic linear
// partitioning problem, solved by parametric search over the feasible
// capacity with a greedy packing oracle on prefix sums — O(m + n·log m·log)
// rather than the O(m²n) dynamic program.
//
// Weights must be finite and non-negative; with fewer indices than parts
// there is no partition giving every part work, so m ≥ n is required (the
// solver enforces Nodes ≤ Rows for the same reason). Every part is
// guaranteed at least one index, matching the seed's uniform splits where
// preconditioner construction assumes non-empty local ranges.
func NewBalancedWeightPartition(weights []float64, n int) (*Partition, error) {
	m := len(weights)
	if n < 1 {
		return nil, fmt.Errorf("dist: part count must be ≥ 1, got %d", n)
	}
	if m < n {
		return nil, fmt.Errorf("dist: cannot split %d indices into %d non-empty parts", m, n)
	}
	prefix := make([]float64, m+1)
	var maxW float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dist: weight %d is %g, want finite and ≥ 0", i, w)
		}
		prefix[i+1] = prefix[i] + w
		if w > maxW {
			maxW = w
		}
	}

	// Parametric search on the capacity: the smallest cap for which the
	// greedy packing fits every index into n parts. Feasibility is monotone
	// in cap, so ~60 bisection steps pin it to the last representable bit.
	lo, hi := maxW, prefix[m]
	if greedyFits(prefix, n, lo) {
		hi = lo
	}
	for iter := 0; iter < 64 && lo < hi; iter++ {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi { // capacity interval collapsed to ulps
			break
		}
		if greedyFits(prefix, n, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	offsets := greedyOffsets(prefix, n, hi)
	p := &Partition{M: m, N: n, offsets: offsets, blockQ: -1}
	p.detectUniform()
	return p, nil
}

// greedyFits reports whether every index fits into at most n contiguous
// parts of weight ≤ cap, packing each part as full as possible. Each part
// takes ≥ 1 index, so infeasibility can only come from leftover indices.
func greedyFits(prefix []float64, n int, cap float64) bool {
	m := len(prefix) - 1
	b := 0
	for s := 0; s < n; s++ {
		e := packEnd(prefix, b, cap)
		if reserve := m - (n - 1 - s); e > reserve {
			e = reserve // leave ≥ 1 index for every remaining part
		}
		b = e
	}
	return b == m
}

// packEnd returns the largest e > b with prefix[e]-prefix[b] ≤ cap (at
// least b+1: a single index heavier than cap still occupies its own part).
func packEnd(prefix []float64, b int, cap float64) int {
	m := len(prefix) - 1
	target := prefix[b] + cap
	// Smallest k with prefix[b+1+k] > target bounds the packing: every end
	// e ≤ b+k keeps the part weight within cap.
	e := b + sort.Search(m-b, func(k int) bool { return prefix[b+1+k] > target })
	if e <= b {
		e = b + 1
	}
	return e
}

// greedyOffsets materializes the greedy packing for a feasible capacity.
func greedyOffsets(prefix []float64, n int, cap float64) []int {
	m := len(prefix) - 1
	offsets := make([]int, n+1)
	b := 0
	for s := 0; s < n; s++ {
		e := packEnd(prefix, b, cap)
		if reserve := m - (n - 1 - s); e > reserve {
			e = reserve
		}
		offsets[s+1] = e
		b = e
	}
	// A generous capacity can exhaust the indices early; the reserve clamp
	// above then feeds the remaining parts one index each, but the final
	// offset must always cover the range.
	offsets[n] = m
	return offsets
}
