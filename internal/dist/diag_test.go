package dist

import (
	"strings"
	"testing"

	"esrp/internal/sparse"
)

// tridiag builds the n×n tridiagonal stencil matrix: every interior row
// couples to its two neighbours, so each part's ghost set is exactly its
// one or two boundary neighbours.
func tridiag(n int) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i+1 < n {
			b.AddSym(i, i+1, -1)
		}
	}
	return b.Build()
}

func TestLoads(t *testing.T) {
	p := NewBlockPartition(6, 3)
	loads, err := p.Loads([]float64{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 7, 11}
	for s, l := range loads {
		if l != want[s] {
			t.Fatalf("Loads = %v, want %v", loads, want)
		}
	}
	if _, err := p.Loads([]float64{1, 2}); err == nil {
		t.Fatal("short weight vector accepted")
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{2, 2, 2}); got != 1 {
		t.Fatalf("perfect balance reports %g", got)
	}
	if got := Imbalance([]float64{4, 1, 1}); got != 2 {
		t.Fatalf("Imbalance([4 1 1]) = %g, want 2", got)
	}
	if got := Imbalance([]float64{0, 0}); got != 1 {
		t.Fatalf("zero loads report %g", got)
	}
}

func TestGhostVolume(t *testing.T) {
	a := tridiag(12)
	p := NewBlockPartition(12, 3)
	perPart, total, err := p.GhostVolume(a)
	if err != nil {
		t.Fatal(err)
	}
	// End parts see one boundary neighbour, the middle part two.
	want := []int{1, 2, 1}
	for s := range want {
		if perPart[s] != want[s] {
			t.Fatalf("GhostVolume per part = %v, want %v", perPart, want)
		}
	}
	if total != 4 {
		t.Fatalf("total ghosts = %d, want 4", total)
	}
	if _, _, err := NewBlockPartition(5, 2).GhostVolume(a); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestGhostVolumeSinglePart(t *testing.T) {
	_, total, err := NewBlockPartition(12, 1).GhostVolume(tridiag(12))
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Fatalf("sequential partition has %d ghosts", total)
	}
}

func TestAnalyze(t *testing.T) {
	a := tridiag(12)
	p := NewBlockPartition(12, 3)
	q, err := p.Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	// tridiag(12) has 34 nonzeros: 10 interior rows of 3, 2 end rows of 2.
	if q.MeanLoad*3 != float64(a.NNZ()) {
		t.Fatalf("mean load %g does not account for all %d nonzeros", q.MeanLoad, a.NNZ())
	}
	if q.MaxLoad != 12 { // the middle part: four rows of three entries
		t.Fatalf("max load %g, want 12", q.MaxLoad)
	}
	if q.Imbalance <= 1 || q.GhostTotal != 4 {
		t.Fatalf("quality %+v", q)
	}
	if s := q.String(); !strings.Contains(s, "imbalance") || !strings.Contains(s, "ghosts 4") {
		t.Fatalf("String: %s", s)
	}
	if _, err := NewBlockPartition(5, 2).Analyze(a); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestAnalyzeBalancedImprovesSkewed(t *testing.T) {
	// The headline acceptance property at the diagnostics level: on a
	// skew-weighted matrix, the balanced partition's max nonzero load is
	// measurably below the uniform block split's.
	n := 400
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 30)
		bw := 1
		if i < n/4 {
			bw = 20
		}
		for j := i + 1; j <= i+bw && j < n; j++ {
			b.AddSym(i, j, -1)
		}
	}
	a := b.Build()
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = float64(a.RowPtr[i+1] - a.RowPtr[i])
	}
	block := NewBlockPartition(n, 8)
	bal, err := NewBalancedWeightPartition(weights, 8)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := block.Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	ql, err := bal.Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	if ql.MaxLoad >= qb.MaxLoad {
		t.Fatalf("balanced max load %g not below block %g", ql.MaxLoad, qb.MaxLoad)
	}
	if ql.Imbalance >= qb.Imbalance {
		t.Fatalf("balanced imbalance %g not below block %g", ql.Imbalance, qb.Imbalance)
	}
}
