package dist

import (
	"math/rand"
	"strings"
	"testing"
)

// checkTiling asserts the partition invariants: parts are ordered, tile
// [0,M) exactly, and Owner is the inverse of Lo/Hi.
func checkTiling(t *testing.T, p *Partition) {
	t.Helper()
	if p.Lo(0) != 0 {
		t.Fatalf("%v: first part starts at %d", p, p.Lo(0))
	}
	if p.Hi(p.N-1) != p.M {
		t.Fatalf("%v: last part ends at %d, want %d", p, p.Hi(p.N-1), p.M)
	}
	for s := 0; s < p.N; s++ {
		if p.Lo(s) > p.Hi(s) {
			t.Fatalf("%v: part %d is inverted", p, s)
		}
		if s > 0 && p.Lo(s) != p.Hi(s-1) {
			t.Fatalf("%v: gap between parts %d and %d", p, s-1, s)
		}
		if p.Size(s) != p.Hi(s)-p.Lo(s) {
			t.Fatalf("%v: Size(%d) = %d", p, s, p.Size(s))
		}
	}
	for j := 0; j < p.M; j++ {
		s := p.Owner(j)
		if j < p.Lo(s) || j >= p.Hi(s) {
			t.Fatalf("%v: Owner(%d) = %d but range is [%d,%d)", p, j, s, p.Lo(s), p.Hi(s))
		}
	}
}

func TestBlockPartitionTiles(t *testing.T) {
	for _, tc := range []struct{ m, n int }{
		{1, 1}, {10, 1}, {10, 10}, {11, 3}, {100, 7}, {64, 8}, {5, 8}, {0, 3},
	} {
		p := NewBlockPartition(tc.m, tc.n)
		if p.M != tc.m || p.N != tc.n {
			t.Fatalf("NewBlockPartition(%d,%d) reports M=%d N=%d", tc.m, tc.n, p.M, p.N)
		}
		checkTiling(t, p)
		// Uniform split: sizes differ by at most one, larger parts first.
		for s := 1; s < p.N; s++ {
			if d := p.Size(s-1) - p.Size(s); d < 0 || d > 1 {
				t.Fatalf("block partition %v: sizes not uniform at part %d", p, s)
			}
		}
	}
}

func TestBlockPartitionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBlockPartition(-1, 2) },
		func() { NewBlockPartition(4, 0) },
		func() { NewBlockPartition(8, 2).Owner(-1) },
		func() { NewBlockPartition(8, 2).Owner(8) },
		func() { NewBlockPartition(8, 2).RangeOfParts(1, 1) },
		func() { NewBlockPartition(8, 2).RangeOfParts(0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFromOffsets(t *testing.T) {
	p, err := FromOffsets([]int{0, 3, 3, 7, 10})
	if err != nil {
		t.Fatal(err)
	}
	if p.M != 10 || p.N != 4 {
		t.Fatalf("M=%d N=%d, want 10, 4", p.M, p.N)
	}
	checkTiling(t, p)
	if p.Size(1) != 0 {
		t.Fatalf("part 1 should be empty, has %d", p.Size(1))
	}
	// Empty parts never own anything.
	for j := 0; j < p.M; j++ {
		if p.Owner(j) == 1 {
			t.Fatalf("empty part owns index %d", j)
		}
	}
}

func TestFromOffsetsValidation(t *testing.T) {
	for _, bad := range [][]int{
		nil,
		{0},
		{1, 5},
		{0, 4, 3, 6},
		{-2, 0, 4},
	} {
		if _, err := FromOffsets(bad); err == nil {
			t.Fatalf("FromOffsets(%v) accepted", bad)
		}
	}
}

func TestFromOffsetsDoesNotAliasInput(t *testing.T) {
	offsets := []int{0, 2, 5}
	p, err := FromOffsets(offsets)
	if err != nil {
		t.Fatal(err)
	}
	offsets[1] = 99
	if p.Hi(0) != 2 {
		t.Fatal("partition aliases the caller's offsets slice")
	}
	got := p.Offsets()
	got[1] = 42
	if p.Hi(0) != 2 {
		t.Fatal("Offsets() exposes internal storage")
	}
}

func TestRangeOfParts(t *testing.T) {
	p := NewBlockPartition(20, 4)
	lo, hi := p.RangeOfParts(1, 3)
	if lo != p.Lo(1) || hi != p.Hi(2) {
		t.Fatalf("RangeOfParts(1,3) = [%d,%d), want [%d,%d)", lo, hi, p.Lo(1), p.Hi(2))
	}
	lo, hi = p.RangeOfParts(0, 4)
	if lo != 0 || hi != 20 {
		t.Fatalf("full range = [%d,%d)", lo, hi)
	}
}

func TestOwnerFastPathMatchesSearch(t *testing.T) {
	// FromOffsets detects uniform layouts; defeat the detection with an
	// equivalent-but-shifted layout to compare both Owner paths.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(200)
		n := 1 + rng.Intn(m)
		fast := NewBlockPartition(m, n)
		slow := &Partition{M: m, N: n, offsets: fast.Offsets(), blockQ: -1}
		for j := 0; j < m; j++ {
			if fast.Owner(j) != slow.Owner(j) {
				t.Fatalf("m=%d n=%d: fast Owner(%d)=%d, search says %d",
					m, n, j, fast.Owner(j), slow.Owner(j))
			}
		}
	}
}

func TestRandomPartitionsTile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		offsets := make([]int, n+1)
		for s := 1; s <= n; s++ {
			offsets[s] = offsets[s-1] + rng.Intn(9) // empty parts included
		}
		p, err := FromOffsets(offsets)
		if err != nil {
			t.Fatal(err)
		}
		if p.M > 0 {
			checkTiling(t, p)
		}
	}
}

func TestEqual(t *testing.T) {
	a := NewBlockPartition(12, 3)
	b := NewBlockPartition(12, 3)
	c := NewBlockPartition(12, 4)
	d, _ := FromOffsets([]int{0, 5, 8, 12})
	if !a.Equal(b) {
		t.Fatal("identical partitions not Equal")
	}
	if a.Equal(c) || a.Equal(d) || a.Equal(nil) {
		t.Fatal("different partitions Equal")
	}
	var nilP *Partition
	if !nilP.Equal(nil) {
		t.Fatal("nil partitions should be Equal")
	}
}

func TestUniformDetection(t *testing.T) {
	// A FromOffsets partition with the uniform layout gets the O(1) path.
	p, err := FromOffsets(NewBlockPartition(23, 5).Offsets())
	if err != nil {
		t.Fatal(err)
	}
	if p.blockQ < 0 {
		t.Fatal("uniform layout not detected")
	}
	q, err := FromOffsets([]int{0, 1, 23})
	if err != nil {
		t.Fatal(err)
	}
	if q.blockQ >= 0 {
		t.Fatal("skewed layout misdetected as uniform")
	}
}

func TestString(t *testing.T) {
	small := NewBlockPartition(10, 2)
	if s := small.String(); !strings.Contains(s, "M:10") || !strings.Contains(s, "0 5 10") {
		t.Fatalf("small String: %s", s)
	}
	big := NewBlockPartition(1000, 100)
	if s := big.String(); !strings.Contains(s, "more") {
		t.Fatalf("big String should elide offsets: %s", s)
	}
	if sz := NewBlockPartition(10, 4).Sizes(); len(sz) != 4 || sz[0] != 3 || sz[3] != 2 {
		t.Fatalf("Sizes = %v", sz)
	}
}
