// Package matgen generates deterministic sparse SPD test matrices.
//
// The paper evaluates on two SuiteSparse structural matrices, Emilia_923
// (923 136 rows, 40.4M nnz) and audikw_1 (943 695 rows, 77.7M nnz). Those
// files are not redistributable here, so this package builds synthetic
// analogs with the same sparsity-pattern character at configurable scale:
//
//   - EmiliaLike: 3-D 27-point hexahedral stencil — banded, ~25 nnz/row,
//     like a scalar structural/geomechanics discretization.
//   - AudikwLike: 3-D 27-point stencil with 3 degrees of freedom per vertex
//     (elasticity-style block coupling) — ~2–3× denser rows, wider band.
//
// All generators produce symmetric positive definite matrices (verified by
// tests via Gershgorin dominance or small-scale Cholesky).
package matgen

import (
	"math"
	"math/rand"

	"esrp/internal/sparse"
)

// Poisson2D returns the 5-point finite-difference Laplacian on an nx×ny grid
// with Dirichlet boundaries: M = nx·ny rows, 4 on the diagonal, -1 for the
// four neighbours. SPD.
func Poisson2D(nx, ny int) *sparse.CSR {
	idx := func(i, j int) int { return i*ny + j }
	b := sparse.NewBuilder(nx*ny, nx*ny)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			r := idx(i, j)
			b.Add(r, r, 4)
			if i > 0 {
				b.Add(r, idx(i-1, j), -1)
			}
			if i < nx-1 {
				b.Add(r, idx(i+1, j), -1)
			}
			if j > 0 {
				b.Add(r, idx(i, j-1), -1)
			}
			if j < ny-1 {
				b.Add(r, idx(i, j+1), -1)
			}
		}
	}
	return b.Build()
}

// Poisson3D returns the 7-point Laplacian on an nx×ny×nz grid with Dirichlet
// boundaries. SPD.
func Poisson3D(nx, ny, nz int) *sparse.CSR {
	idx := func(i, j, k int) int { return (i*ny+j)*nz + k }
	b := sparse.NewBuilder(nx*ny*nz, nx*ny*nz)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				r := idx(i, j, k)
				b.Add(r, r, 6)
				if i > 0 {
					b.Add(r, idx(i-1, j, k), -1)
				}
				if i < nx-1 {
					b.Add(r, idx(i+1, j, k), -1)
				}
				if j > 0 {
					b.Add(r, idx(i, j-1, k), -1)
				}
				if j < ny-1 {
					b.Add(r, idx(i, j+1, k), -1)
				}
				if k > 0 {
					b.Add(r, idx(i, j, k-1), -1)
				}
				if k < nz-1 {
					b.Add(r, idx(i, j, k+1), -1)
				}
			}
		}
	}
	return b.Build()
}

// EmiliaLike returns a scalar 27-point stencil matrix on an nx×ny×nz grid
// mimicking the banded structural character of Emilia_923: ~26 nnz/row,
// narrow band relative to the matrix size.
//
// The matrix is the Dirichlet discretization of a diffusion operator with
// layered, seeded material coefficients jumping by up to two orders of
// magnitude between z-layers (the way geomechanical strata do). Interior
// rows are weakly diagonally dominant and boundary rows strictly dominant,
// so the matrix is irreducibly diagonally dominant with positive diagonal
// and therefore SPD — with Laplacian-like conditioning that grows with the
// grid, giving the realistic (hundreds to thousands) PCG iteration counts
// the paper's checkpoint-interval trade-off depends on.
func EmiliaLike(nx, ny, nz int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	idx := func(i, j, k int) int { return (i*ny+j)*nz + k }
	n := nx * ny * nz
	b := sparse.NewBuilder(n, n)
	// Material coefficient: per-layer base spanning ±2.5 decades (strata)
	// times a rough per-cell log-uniform factor spanning ±2.5 decades
	// (inclusions, faults). Cell-to-cell contrast is what diagonal-scaling-
	// type preconditioners cannot remove, so this controls the PCG iteration
	// count the way the real problem's heterogeneity does. The combined
	// contrast stays below ~1e10 so that double-precision PCG still reaches
	// rtol = 1e-8 without residual replacement.
	layer := make([]float64, nz)
	for k := range layer {
		layer[k] = math.Pow(10, 5*rng.Float64()-2.5)
	}
	coeff := make([]float64, n)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				coeff[idx(i, j, k)] = layer[k] * math.Pow(10, 5*rng.Float64()-2.5)
			}
		}
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				r := idx(i, j, k)
				var diag float64
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						for dk := -1; dk <= 1; dk++ {
							if di == 0 && dj == 0 && dk == 0 {
								continue
							}
							// Flat hexahedral elements: vertical (z) coupling is
							// much weaker than horizontal, the anisotropy that
							// makes geomechanical systems hard for point-local
							// preconditioners.
							aniso := 1.0
							if dk != 0 {
								aniso = 1e-2
							}
							dist := float64(di*di+dj*dj+dk*dk) / aniso
							ii, jj, kk := i+di, j+dj, k+dk
							if ii < 0 || ii >= nx || jj < 0 || jj >= ny || kk < 0 || kk >= nz {
								// Dirichlet: the virtual neighbour contributes its
								// coupling weight to the diagonal only, which makes
								// boundary-adjacent rows strictly dominant.
								diag += coeff[r] / dist
								continue
							}
							c := idx(ii, jj, kk)
							// Symmetric coupling: harmonic-mean weight of the two
							// cell coefficients (the physical flux weight across a
							// material interface), scaled by stencil distance.
							w := 2 * coeff[r] * coeff[c] / (coeff[r] + coeff[c])
							b.Add(r, c, -w/dist)
							diag += w / dist
						}
					}
				}
				b.Add(r, r, diag)
			}
		}
	}
	return b.Build()
}

// AudikwLike returns a vector-valued 27-point stencil on an nx×ny×nz grid
// with dof degrees of freedom per vertex (3 for elasticity), coupling all
// dofs of neighbouring vertices: ~26·dof nnz/row, band dof× wider than
// EmiliaLike.
//
// Like EmiliaLike, the discretization is Dirichlet-style: each vertex dof's
// diagonal carries the full absolute coupling weight of all 26 stencil
// neighbours (virtual out-of-domain neighbours included) plus the
// intra-vertex coupling, so the matrix is irreducibly diagonally dominant,
// symmetric, positive-diagonal — hence SPD — with grid-dependent
// conditioning rather than an artificial dominance margin.
func AudikwLike(nx, ny, nz, dof int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	nv := nx * ny * nz
	n := nv * dof
	vidx := func(i, j, k int) int { return (i*ny+j)*nz + k }
	b := sparse.NewBuilder(n, n)
	// Rough per-vertex stiffness spanning five orders of magnitude: the
	// mixed thin-shell/solid character of crankshaft models like audikw_1
	// yields exactly this kind of local stiffness contrast.
	coeff := make([]float64, nv)
	for i := range coeff {
		coeff[i] = math.Pow(10, 5*rng.Float64()-2.5)
	}
	// Fixed symmetric dof×dof coupling template (dof ≤ 3 entries used).
	tmpl := [3][3]float64{
		{1.00, 0.25, 0.10},
		{0.25, 1.00, 0.25},
		{0.10, 0.25, 1.00},
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				rv := vidx(i, j, k)
				diag := make([]float64, dof)
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						for dk := -1; dk <= 1; dk++ {
							if di == 0 && dj == 0 && dk == 0 {
								continue
							}
							// Thin-shell regions: vertical coupling is weak
							// relative to in-plane coupling.
							aniso := 1.0
							if dk != 0 {
								aniso = 1e-2
							}
							dist := float64(di*di+dj*dj+dk*dk) / aniso
							ii, jj, kk := i+di, j+dj, k+dk
							if ii < 0 || ii >= nx || jj < 0 || jj >= ny || kk < 0 || kk >= nz {
								// Dirichlet: virtual neighbours load the diagonal only.
								for a := 0; a < dof; a++ {
									for c := 0; c < dof; c++ {
										diag[a] += coeff[rv] * tmpl[a%3][c%3] / dist
									}
								}
								continue
							}
							cv := vidx(ii, jj, kk)
							w := 2 * coeff[rv] * coeff[cv] / (coeff[rv] + coeff[cv])
							for a := 0; a < dof; a++ {
								for c := 0; c < dof; c++ {
									v := -w * tmpl[a%3][c%3] / dist
									b.Add(rv*dof+a, cv*dof+c, v)
									diag[a] += math.Abs(v)
								}
							}
						}
					}
				}
				// Intra-vertex off-diagonal coupling.
				for a := 0; a < dof; a++ {
					for c := 0; c < dof; c++ {
						if a == c {
							continue
						}
						v := -0.1 * coeff[rv] * tmpl[a%3][c%3]
						b.Add(rv*dof+a, rv*dof+c, v)
						diag[a] += math.Abs(v)
					}
				}
				for a := 0; a < dof; a++ {
					b.Add(rv*dof+a, rv*dof+a, diag[a])
				}
			}
		}
	}
	return b.Build()
}

// BandedSPD returns an n×n random banded SPD matrix with half-bandwidth bw:
// symmetric random entries in the band, diagonal boosted to strict dominance.
// Used by property-based tests that need varied sparsity patterns.
func BandedSPD(n, bw int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(n, n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j <= i+bw && j < n; j++ {
			// Keep the band sparse: each in-band entry present w.p. 0.6.
			if rng.Float64() < 0.4 {
				continue
			}
			v := rng.NormFloat64()
			b.AddSym(i, j, v)
			rowAbs[i] += math.Abs(v)
			rowAbs[j] += math.Abs(v)
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, rowAbs[i]*1.1+1)
	}
	return b.Build()
}

// RHSOnes returns the all-ones right-hand side of length n — the conventional
// smoke-test load vector.
func RHSOnes(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	return x
}

// RHSForSolution returns b = A·xstar for a seeded random solution vector
// xstar in [-1,1)ⁿ, so tests can verify convergence to a known solution.
func RHSForSolution(a *sparse.CSR, seed int64) (b, xstar []float64) {
	rng := rand.New(rand.NewSource(seed))
	xstar = make([]float64, a.Cols)
	for i := range xstar {
		xstar[i] = 2*rng.Float64() - 1
	}
	b = make([]float64, a.Rows)
	a.MulVec(b, xstar)
	return b, xstar
}
