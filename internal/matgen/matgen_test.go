package matgen

import (
	"math"
	"testing"

	"esrp/internal/dense"
	"esrp/internal/sparse"
)

// assertSPDStructure checks symmetry and (for small sizes) positive
// definiteness via dense Cholesky.
func assertSPDStructure(t *testing.T, a *sparse.CSR, name string) {
	t.Helper()
	if err := a.Validate(); err != nil {
		t.Fatalf("%s: invalid CSR: %v", name, err)
	}
	if !a.IsSymmetric(1e-12) {
		t.Fatalf("%s: not symmetric", name)
	}
	if a.Rows <= 200 {
		d := dense.FromRows(denseRows(a))
		if _, err := dense.Factor(d); err != nil {
			t.Fatalf("%s: not SPD: %v", name, err)
		}
	}
}

func denseRows(a *sparse.CSR) [][]float64 {
	rows := make([][]float64, a.Rows)
	flat := a.Dense()
	for i := range rows {
		rows[i] = flat[i*a.Cols : (i+1)*a.Cols]
	}
	return rows
}

func TestPoisson2D(t *testing.T) {
	a := Poisson2D(5, 4)
	if a.Rows != 20 {
		t.Fatalf("rows = %d, want 20", a.Rows)
	}
	assertSPDStructure(t, a, "Poisson2D")
	if a.At(0, 0) != 4 {
		t.Fatalf("diagonal = %g, want 4", a.At(0, 0))
	}
	// Interior point has 5 nonzeros (center + 4 neighbours).
	cols, _ := a.Row(1*4 + 1)
	if len(cols) != 5 {
		t.Fatalf("interior row nnz = %d, want 5", len(cols))
	}
}

func TestPoisson3D(t *testing.T) {
	a := Poisson3D(3, 3, 3)
	if a.Rows != 27 {
		t.Fatalf("rows = %d, want 27", a.Rows)
	}
	assertSPDStructure(t, a, "Poisson3D")
	// Center vertex couples to 6 neighbours.
	cols, _ := a.Row(13)
	if len(cols) != 7 {
		t.Fatalf("center row nnz = %d, want 7", len(cols))
	}
}

func TestEmiliaLike(t *testing.T) {
	a := EmiliaLike(4, 4, 4, 1)
	if a.Rows != 64 {
		t.Fatalf("rows = %d, want 64", a.Rows)
	}
	assertSPDStructure(t, a, "EmiliaLike")
	// Interior vertex of a 27-point stencil has 27 nonzeros.
	idx := (1*4+1)*4 + 1
	cols, _ := a.Row(idx)
	if len(cols) != 27 {
		t.Fatalf("interior row nnz = %d, want 27", len(cols))
	}
}

func TestEmiliaLikeDeterministic(t *testing.T) {
	a := EmiliaLike(3, 3, 3, 42)
	b := EmiliaLike(3, 3, 3, 42)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed must give identical matrices")
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] {
			t.Fatal("same seed must give identical values")
		}
	}
	c := EmiliaLike(3, 3, 3, 43)
	same := true
	for k := range a.Val {
		if a.Val[k] != c.Val[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different values")
	}
}

func TestAudikwLike(t *testing.T) {
	a := AudikwLike(3, 3, 3, 3, 1)
	if a.Rows != 81 {
		t.Fatalf("rows = %d, want 81", a.Rows)
	}
	assertSPDStructure(t, a, "AudikwLike")
	// audikw-like rows must be denser than emilia-like rows.
	e := EmiliaLike(3, 3, 3, 1)
	if float64(a.NNZ())/float64(a.Rows) <= float64(e.NNZ())/float64(e.Rows) {
		t.Fatalf("AudikwLike should have denser rows: %g vs %g",
			float64(a.NNZ())/float64(a.Rows), float64(e.NNZ())/float64(e.Rows))
	}
}

func TestBandedSPD(t *testing.T) {
	a := BandedSPD(50, 4, 3)
	assertSPDStructure(t, a, "BandedSPD")
	if bw := a.Bandwidth(); bw > 4 {
		t.Fatalf("bandwidth %d exceeds 4", bw)
	}
}

func TestRHSOnes(t *testing.T) {
	b := RHSOnes(5)
	for _, v := range b {
		if v != 1 {
			t.Fatalf("RHSOnes: %v", b)
		}
	}
}

func TestRHSForSolution(t *testing.T) {
	a := Poisson2D(4, 4)
	b, xstar := RHSForSolution(a, 5)
	ax := make([]float64, a.Rows)
	a.MulVec(ax, xstar)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-12 {
			t.Fatalf("b ≠ A·xstar at %d", i)
		}
	}
}

// Irreducible diagonal dominance is the SPD guarantee for the large
// generators: every row weakly dominant, at least one strictly dominant (a
// stencil matrix on a connected grid is irreducible). Check directly at
// sizes where dense Cholesky is impractical.
func TestGeneratorsDiagonallyDominant(t *testing.T) {
	for _, tc := range []struct {
		name   string
		a      *sparse.CSR
		strict bool // every row strictly dominant
	}{
		{"EmiliaLike", EmiliaLike(6, 6, 6, 2), false},
		{"AudikwLike", AudikwLike(4, 4, 4, 3, 2), false},
		{"BandedSPD", BandedSPD(300, 8, 2), true},
	} {
		a := tc.a
		strictRows := 0
		for i := 0; i < a.Rows; i++ {
			cols, vals := a.Row(i)
			var off, diag float64
			for k, j := range cols {
				if j == i {
					diag = vals[k]
				} else {
					off += math.Abs(vals[k])
				}
			}
			if diag < off-1e-9*off {
				t.Fatalf("%s: row %d not weakly diagonally dominant: %g < %g", tc.name, i, diag, off)
			}
			if diag > off+1e-12*off {
				strictRows++
			}
		}
		if strictRows == 0 {
			t.Fatalf("%s: no strictly dominant row; irreducible dominance argument fails", tc.name)
		}
		if tc.strict && strictRows != a.Rows {
			t.Fatalf("%s: only %d of %d rows strictly dominant", tc.name, strictRows, a.Rows)
		}
	}
}
