// Package dense implements small dense symmetric linear algebra: storage,
// Cholesky factorization, and triangular solves.
//
// The block Jacobi preconditioner (internal/precond) factors one small dense
// SPD block (≤ ~10×10) per partition block, and the ESR reconstruction phase
// (internal/core) solves small local systems directly when an iterative inner
// solve is not warranted. Matrices are stored row-major in a flat slice.
package dense

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense n×n matrix stored row-major.
type Matrix struct {
	N    int
	Data []float64 // len N*N, Data[i*N+j] = A(i,j)
}

// New returns a zero n×n matrix.
func New(n int) *Matrix {
	if n < 0 {
		panic("dense: negative dimension")
	}
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// FromRows builds a matrix from row slices (each of length n).
func FromRows(rows [][]float64) *Matrix {
	n := len(rows)
	m := New(n)
	for i, r := range rows {
		if len(r) != n {
			panic(fmt.Sprintf("dense: row %d has length %d, want %d", i, len(r), n))
		}
		copy(m.Data[i*n:(i+1)*n], r)
	}
	return m
}

// At returns A(i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns A(i,j) = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Add accumulates A(i,j) += v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.N+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.N)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes dst = A*x. dst must not alias x.
func (m *Matrix) MulVec(dst, x []float64) {
	n := m.N
	for i := 0; i < n; i++ {
		row := m.Data[i*n : (i+1)*n]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		dst[i] = s
	}
}

// IsSymmetric reports whether |A(i,j)-A(j,i)| <= tol for all i,j.
func (m *Matrix) IsSymmetric(tol float64) bool {
	n := m.N
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// ErrNotSPD is returned by Cholesky when a non-positive pivot is encountered,
// meaning the input matrix is not (numerically) symmetric positive definite.
var ErrNotSPD = errors.New("dense: matrix is not positive definite")

// Cholesky holds the lower-triangular Cholesky factor L with A = L·Lᵀ.
type Cholesky struct {
	N int
	L []float64 // row-major lower triangle (full N×N storage, upper part zero)

	// ut is Lᵀ stored row-major (upper triangle), so the backward
	// substitution of Solve walks memory contiguously instead of striding
	// down a column of L. Same values, same operation order — Solve results
	// are bitwise unchanged; this is purely a memory-layout optimization for
	// the block-Jacobi hot path.
	ut []float64
}

// Factor computes the Cholesky factorization of the symmetric positive
// definite matrix a. Only the lower triangle of a is referenced.
func Factor(a *Matrix) (*Cholesky, error) {
	n := a.N
	l := make([]float64, n*n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l[j*n+k] * l[j*n+k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d = %g)", ErrNotSPD, j, d)
		}
		ljj := math.Sqrt(d)
		l[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			l[i*n+j] = s / ljj
		}
	}
	ut := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := i; k < n; k++ {
			ut[i*n+k] = l[k*n+i]
		}
	}
	return &Cholesky{N: n, L: l, ut: ut}, nil
}

// Solve computes x = A⁻¹ b in place: b is overwritten with the solution.
func (c *Cholesky) Solve(b []float64) {
	n := c.N
	if len(b) != n {
		panic(fmt.Sprintf("dense: Cholesky.Solve dimension mismatch: %d vs %d", len(b), n))
	}
	// Forward substitution: L y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		bi := b[:i]
		for k, lik := range c.L[i*n : i*n+i] {
			s -= lik * bi[k]
		}
		b[i] = s / c.L[i*n+i]
	}
	// Backward substitution: Lᵀ x = y, reading the transposed copy so the
	// inner loop is contiguous. Identical operand values in identical order.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		bs := b[i+1 : n]
		for k, u := range c.ut[i*n+i+1 : i*n+n] {
			s -= u * bs[k]
		}
		b[i] = s / c.ut[i*n+i]
	}
}

// SolveInto computes dst = A⁻¹ src without modifying src. dst and src may
// alias (then it behaves like Solve).
func (c *Cholesky) SolveInto(dst, src []float64) {
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	c.Solve(dst)
}

// MulVec computes dst = A*x = L·(Lᵀ x), reconstituting the original operator
// from the factorization. Used by the ESR reconstruction (Alg. 2 line 6):
// solving P[If,If]·r = v where P is the block Jacobi *inverse* operator is a
// multiplication by the original blocks.
func (c *Cholesky) MulVec(dst, x []float64) {
	n := c.N
	// t = Lᵀ x
	t := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for k := i; k < n; k++ {
			s += c.L[k*n+i] * x[k]
		}
		t[i] = s
	}
	// dst = L t
	for i := 0; i < n; i++ {
		var s float64
		for k := 0; k <= i; k++ {
			s += c.L[i*n+k] * t[k]
		}
		dst[i] = s
	}
}

// Det returns the determinant of the factored matrix (∏ L(i,i)²).
func (c *Cholesky) Det() float64 {
	d := 1.0
	for i := 0; i < c.N; i++ {
		d *= c.L[i*c.N+i] * c.L[i*c.N+i]
	}
	return d
}
