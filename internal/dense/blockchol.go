package dense

import (
	"fmt"
	"math"
)

// BlockCholesky is a batch of small Cholesky factors in one flat arena: the
// lower triangles (and their transposes, for the contiguous backward pass)
// of many independent SPD blocks packed back to back, row-major, without the
// zero half that full N×N storage carries. The block Jacobi preconditioner
// holds its many ≤10×10 diagonal blocks this way: one backsolve sweep then
// streams a few contiguous kilobytes instead of chasing per-block heap
// pointers, which is worth integer percents of the whole solve at stencil
// block counts.
//
// Factorization and the triangular solves perform the exact same operations
// in the exact same order as Factor/Cholesky.Solve on each block, so results
// are bitwise identical to the per-block path.
type BlockCholesky struct {
	dims []int // block sizes
	ptr  []int // arena offset of each block's packed triangle (len nblocks+1)
	l    []float64
	ut   []float64
}

// NumBlocks returns the number of appended blocks.
func (bc *BlockCholesky) NumBlocks() int { return len(bc.dims) }

// Dim returns the size of block b.
func (bc *BlockCholesky) Dim(b int) int { return bc.dims[b] }

// Append factors the SPD matrix a and packs the factor into the arena as the
// next block. On a non-positive pivot the arena is left unchanged and
// ErrNotSPD is wrapped in the returned error.
func (bc *BlockCholesky) Append(a *Matrix) error {
	n := a.N
	base := len(bc.l)
	if len(bc.ptr) == 0 {
		bc.ptr = append(bc.ptr, 0)
	}
	bc.l = append(bc.l, make([]float64, n*(n+1)/2)...)
	l := bc.l[base:]
	// Packed row-major lower triangle: row i starts at i(i+1)/2 and holds
	// i+1 entries. The update loops below are Factor's, re-indexed.
	rp := func(i int) int { return i * (i + 1) / 2 }
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lj := l[rp(j) : rp(j)+j]
		for _, v := range lj {
			d -= v * v
		}
		if !(d > 0) {
			bc.l = bc.l[:base]
			return fmt.Errorf("%w (pivot %d = %g)", ErrNotSPD, j, d)
		}
		ljj := math.Sqrt(d)
		l[rp(j)+j] = ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l[rp(i) : rp(i)+j]
			for k, v := range lj {
				s -= li[k] * v
			}
			l[rp(i)+j] = s / ljj
		}
	}
	// Transposed copy (packed upper triangle, row-major): row i holds
	// L[i..n)[i], so the backward substitution streams contiguously.
	ubase := len(bc.ut)
	bc.ut = append(bc.ut, make([]float64, n*(n+1)/2)...)
	ut := bc.ut[ubase:]
	up := 0
	for i := 0; i < n; i++ {
		for k := i; k < n; k++ {
			ut[up] = l[rp(k)+i]
			up++
		}
	}
	bc.dims = append(bc.dims, n)
	bc.ptr = append(bc.ptr, len(bc.l))
	return nil
}

// Solve overwrites v (length Dim(b)) with A_b⁻¹ v: forward substitution on
// the packed lower triangle, backward on the packed transpose — operand for
// operand the same arithmetic as Cholesky.Solve.
func (bc *BlockCholesky) Solve(b int, v []float64) {
	n := bc.dims[b]
	l := bc.l[bc.ptr[b]:bc.ptr[b+1]]
	// Forward: L y = v. Row i of the packed triangle starts at i(i+1)/2.
	rp := 0
	for i := 0; i < n; i++ {
		s := v[i]
		row := l[rp : rp+i]
		vi := v[:i]
		for k, lik := range row {
			s -= lik * vi[k]
		}
		v[i] = s / l[rp+i]
		rp += i + 1
	}
	// Backward: Lᵀ x = y, streaming the packed transpose. Row i of ut holds
	// L[i,i], L[i+1,i], …, L[n-1,i]; it ends at the arena position where row
	// i+1 of l would start counting from the top, so walk it backwards.
	ut := bc.ut[bc.ptr[b]:bc.ptr[b+1]]
	up := len(ut)
	for i := n - 1; i >= 0; i-- {
		w := n - i // entries in ut row i
		up -= w
		row := ut[up+1 : up+w]
		s := v[i]
		vs := v[i+1 : n]
		for k, u := range row {
			s -= u * vs[k]
		}
		v[i] = s / ut[up]
	}
}

// SolvePair runs Solve on two independent blocks with their rows
// interleaved. A lone triangular solve is bound by its serial
// division/dot-product chain (row i needs row i-1's quotient); two blocks
// have no data dependencies, so interleaving their rows lets the CPU overlap
// one block's division latency with the other's multiply-adds. Each block's
// own operations run in the exact order Solve uses, so results are bitwise
// identical to two Solve calls.
func (bc *BlockCholesky) SolvePair(b0, b1 int, v0, v1 []float64) {
	n0, n1 := bc.dims[b0], bc.dims[b1]
	l0 := bc.l[bc.ptr[b0]:bc.ptr[b0+1]]
	l1 := bc.l[bc.ptr[b1]:bc.ptr[b1+1]]
	rp0, rp1 := 0, 0
	for i := 0; i < n0 || i < n1; i++ {
		if i < n0 {
			s := v0[i]
			row := l0[rp0 : rp0+i]
			vi := v0[:i]
			for k, lik := range row {
				s -= lik * vi[k]
			}
			v0[i] = s / l0[rp0+i]
			rp0 += i + 1
		}
		if i < n1 {
			s := v1[i]
			row := l1[rp1 : rp1+i]
			vi := v1[:i]
			for k, lik := range row {
				s -= lik * vi[k]
			}
			v1[i] = s / l1[rp1+i]
			rp1 += i + 1
		}
	}
	ut0 := bc.ut[bc.ptr[b0]:bc.ptr[b0+1]]
	ut1 := bc.ut[bc.ptr[b1]:bc.ptr[b1+1]]
	up0, up1 := len(ut0), len(ut1)
	for i := max(n0, n1) - 1; i >= 0; i-- {
		if i < n0 {
			w := n0 - i
			up0 -= w
			row := ut0[up0+1 : up0+w]
			s := v0[i]
			vs := v0[i+1 : n0]
			for k, u := range row {
				s -= u * vs[k]
			}
			v0[i] = s / ut0[up0]
		}
		if i < n1 {
			w := n1 - i
			up1 -= w
			row := ut1[up1+1 : up1+w]
			s := v1[i]
			vs := v1[i+1 : n1]
			for k, u := range row {
				s -= u * vs[k]
			}
			v1[i] = s / ut1[up1]
		}
	}
}

// MulVec computes dst = A_b x = L·(Lᵀ x), reconstituting the block operator
// from the packed factor (the reconstruction path's SolveRestricted).
// dst must not alias x.
func (bc *BlockCholesky) MulVec(b int, dst, x []float64) {
	n := bc.dims[b]
	ut := bc.ut[bc.ptr[b]:bc.ptr[b+1]]
	// t = Lᵀ x: ut row i is L[i..n)[i], the column-i dot against x[i..n).
	t := make([]float64, n)
	up := 0
	for i := 0; i < n; i++ {
		var s float64
		row := ut[up : up+n-i]
		xs := x[i:n]
		for k, u := range row {
			s += u * xs[k]
		}
		t[i] = s
		up += n - i
	}
	// dst = L t.
	l := bc.l[bc.ptr[b]:bc.ptr[b+1]]
	rp := 0
	for i := 0; i < n; i++ {
		var s float64
		row := l[rp : rp+i+1]
		for k, v := range row {
			s += v * t[k]
		}
		dst[i] = s
		rp += i + 1
	}
}
