package dense

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSPD(n int, rng *rand.Rand) *Matrix {
	// A = Bᵀ B + n·I is SPD for any B.
	b := make([]float64, n*n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	a := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b[k*n+i] * b[k*n+j]
			}
			if i == j {
				s += float64(n)
			}
			a.Set(i, j, s)
		}
	}
	return a
}

func TestFromRowsAtSet(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows: wrong entries: %v", m.Data)
	}
	m.Set(0, 0, 9)
	m.Add(0, 0, 1)
	if m.At(0, 0) != 10 {
		t.Fatalf("Set/Add: got %g, want 10", m.At(0, 0))
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1})
	if dst[0] != 3 || dst[1] != 7 {
		t.Fatalf("MulVec: got %v, want [3 7]", dst)
	}
}

func TestIsSymmetric(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {2, 1}})
	if !m.IsSymmetric(0) {
		t.Fatal("symmetric matrix reported asymmetric")
	}
	m.Set(0, 1, 3)
	if m.IsSymmetric(0.5) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	if !m.IsSymmetric(2) {
		t.Fatal("tolerance not honored")
	}
}

func TestCholeskySolveKnown(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 7] → x = [2, 1].
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	ch, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{10, 7}
	ch.Solve(x)
	if math.Abs(x[0]-2) > 1e-14 || math.Abs(x[1]-1) > 1e-14 {
		t.Fatalf("Solve: got %v, want [2 1]", x)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Factor(a); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("Factor of indefinite matrix: err = %v, want ErrNotSPD", err)
	}
}

func TestCholeskyRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 10, 17} {
		a := randomSPD(n, rng)
		ch, err := Factor(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		xstar := make([]float64, n)
		for i := range xstar {
			xstar[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, xstar)
		ch.Solve(b)
		for i := range b {
			if math.Abs(b[i]-xstar[i]) > 1e-9*(1+math.Abs(xstar[i])) {
				t.Fatalf("n=%d: x[%d] = %g, want %g", n, i, b[i], xstar[i])
			}
		}
	}
}

func TestCholeskyMulVecReconstitutesOperator(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomSPD(8, rng)
	ch, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, 8)
	a.MulVec(want, x)
	got := make([]float64, 8)
	ch.MulVec(got, x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("MulVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestCholeskySolveInto(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	ch, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	src := []float64{8, 27}
	dst := make([]float64, 2)
	ch.SolveInto(dst, src)
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("SolveInto: got %v, want [2 3]", dst)
	}
	if src[0] != 8 || src[1] != 27 {
		t.Fatalf("SolveInto must not modify src, got %v", src)
	}
}

func TestCholeskyDet(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	ch, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := ch.Det(); math.Abs(d-36) > 1e-12 {
		t.Fatalf("Det = %g, want 36", d)
	}
}

// Property: for random SPD matrices, Solve then MulVec round-trips.
func TestCholeskyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		a := randomSPD(n, r)
		ch, err := Factor(a)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x := append([]float64(nil), b...)
		ch.Solve(x)
		ax := make([]float64, n)
		a.MulVec(ax, x)
		for i := range ax {
			if math.Abs(ax[i]-b[i]) > 1e-8*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
