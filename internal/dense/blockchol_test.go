package dense

import (
	"math"
	"math/rand"
	"testing"
)

// TestBlockCholeskyMatchesPerBlock pins the flat packed-triangle arena to
// the per-block Cholesky path bit for bit: same factors, same Solve, same
// MulVec, across a spread of block sizes including 1×1 and the block-Jacobi
// default 10×10.
func TestBlockCholeskyMatchesPerBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var bc BlockCholesky
	var refs []*Cholesky
	sizes := []int{1, 2, 3, 7, 10, 10, 4, 9}
	for _, n := range sizes {
		a := randomSPD(n, rng)
		ch, err := Factor(a)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ch)
		if err := bc.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	if bc.NumBlocks() != len(sizes) {
		t.Fatalf("NumBlocks = %d, want %d", bc.NumBlocks(), len(sizes))
	}
	for b, n := range sizes {
		if bc.Dim(b) != n {
			t.Fatalf("Dim(%d) = %d, want %d", b, bc.Dim(b), n)
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		want := append([]float64(nil), v...)
		refs[b].Solve(want)
		got := append([]float64(nil), v...)
		bc.Solve(b, got)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("block %d Solve[%d] = %x, per-block %x", b, i,
					math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
		wantM := make([]float64, n)
		refs[b].MulVec(wantM, v)
		gotM := make([]float64, n)
		bc.MulVec(b, gotM, v)
		for i := range gotM {
			if math.Float64bits(gotM[i]) != math.Float64bits(wantM[i]) {
				t.Fatalf("block %d MulVec[%d] = %x, per-block %x", b, i,
					math.Float64bits(gotM[i]), math.Float64bits(wantM[i]))
			}
		}
	}
}

// TestBlockCholeskySolvePairBitwise: the interleaved pair sweep must equal
// two independent Solve calls bit for bit, including mixed block sizes.
func TestBlockCholeskySolvePairBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var bc BlockCholesky
	sizes := []int{10, 9, 1, 10, 5, 2}
	for _, n := range sizes {
		if err := bc.Append(randomSPD(n, rng)); err != nil {
			t.Fatal(err)
		}
	}
	for b0 := 0; b0 < len(sizes); b0++ {
		for b1 := 0; b1 < len(sizes); b1++ {
			if b0 == b1 {
				continue
			}
			v0 := make([]float64, sizes[b0])
			v1 := make([]float64, sizes[b1])
			for i := range v0 {
				v0[i] = rng.NormFloat64()
			}
			for i := range v1 {
				v1[i] = rng.NormFloat64()
			}
			w0 := append([]float64(nil), v0...)
			w1 := append([]float64(nil), v1...)
			bc.Solve(b0, w0)
			bc.Solve(b1, w1)
			bc.SolvePair(b0, b1, v0, v1)
			for i := range v0 {
				if math.Float64bits(v0[i]) != math.Float64bits(w0[i]) {
					t.Fatalf("pair (%d,%d) block0[%d]: %x != %x", b0, b1, i,
						math.Float64bits(v0[i]), math.Float64bits(w0[i]))
				}
			}
			for i := range v1 {
				if math.Float64bits(v1[i]) != math.Float64bits(w1[i]) {
					t.Fatalf("pair (%d,%d) block1[%d]: %x != %x", b0, b1, i,
						math.Float64bits(v1[i]), math.Float64bits(w1[i]))
				}
			}
		}
	}
}

// TestBlockCholeskyRejectsIndefinite mirrors Factor's SPD check: a failed
// Append must leave the arena unchanged and usable.
func TestBlockCholeskyRejectsIndefinite(t *testing.T) {
	var bc BlockCholesky
	rng := rand.New(rand.NewSource(7))
	if err := bc.Append(randomSPD(4, rng)); err != nil {
		t.Fatal(err)
	}
	bad := New(3)
	bad.Set(0, 0, -1)
	if err := bc.Append(bad); err == nil {
		t.Fatal("Append accepted an indefinite block")
	}
	if bc.NumBlocks() != 1 {
		t.Fatalf("failed Append corrupted the arena: %d blocks", bc.NumBlocks())
	}
	v := []float64{1, 2, 3, 4}
	bc.Solve(0, v) // must not panic on the surviving block
}
