package cluster

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"
)

// TestAllreduceSteadyStateZeroAlloc gates the collective arena: after the
// warm-up calls have sized the slot banks, Allreduce/AllreduceScalar/Barrier
// must not touch the heap. Rank 0 reads the global malloc counter while the
// other nodes are parked at a barrier (blocked in the arena's cond wait,
// which does not allocate), so the measurement window covers exactly the
// steady-state collectives of all nodes.
func TestAllreduceSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; gate runs in the non-race job")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const n = 8
	c := New(n, testModel())
	var allocs uint64
	err := c.Run(func(nd *Node) {
		x := []float64{1, 2, 3}
		for i := 0; i < 16; i++ { // warm the slot banks and scheduler
			nd.Allreduce(OpSum, x)
			nd.Barrier()
		}
		var m1, m2 runtime.MemStats
		nd.Barrier()
		if nd.Rank() == 0 {
			runtime.ReadMemStats(&m1)
		}
		nd.Barrier()
		for i := 0; i < 400; i++ {
			nd.Allreduce(OpSum, x)
			nd.AllreduceScalar(OpMax, float64(i))
			nd.Barrier()
		}
		nd.Barrier()
		if nd.Rank() == 0 {
			runtime.ReadMemStats(&m2)
			allocs = m2.Mallocs - m1.Mallocs
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1200 collectives across 8 nodes. The arena itself must stay off the
	// heap; a small constant (≤ 2 per goroutine) is tolerated for runtime
	// internals (sudog cache fills when a goroutine first parks inside the
	// window) — any real per-call allocation would show up 400-fold.
	if allocs > 2*n {
		t.Fatalf("steady-state collectives allocated %d times over 1200 calls (want ≤ %d runtime-internal)", allocs, 2*n)
	}
}

// TestP2PSteadyStateZeroAlloc gates the point-to-point free list: once the
// receiver recycles payload buffers with Release, a steady Send/Recv stream
// must not allocate.
func TestP2PSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; gate runs in the non-race job")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	c := New(2, testModel())
	var allocs uint64
	err := c.Run(func(nd *Node) {
		payload := make([]float64, 32)
		exchange := func() {
			if nd.Rank() == 0 {
				nd.Send(1, 7, payload)
			} else {
				nd.Release(nd.Recv(0, 7))
			}
		}
		for i := 0; i < 16; i++ { // warm the destination's free list
			exchange()
			nd.Barrier()
		}
		var m1, m2 runtime.MemStats
		nd.Barrier()
		if nd.Rank() == 0 {
			runtime.ReadMemStats(&m1)
		}
		nd.Barrier()
		for i := 0; i < 400; i++ {
			exchange()
			nd.Barrier() // bound sender run-ahead: in-flight stays ≤ 1 buffer
		}
		nd.Barrier()
		if nd.Rank() == 0 {
			runtime.ReadMemStats(&m2)
			allocs = m2.Mallocs - m1.Mallocs
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs > 4 { // runtime-internal slack only; 400 sends would show 400-fold
		t.Fatalf("steady-state P2P stream allocated %d times over 400 sends (want ~0)", allocs)
	}
}

// TestCollectiveHammer drives the shared-memory collectives hard from all
// node goroutines — mixed Allreduce/Bcast/Gather/Barrier on the root view
// and on freshly derived (arena-sharing) sub-views, with P2P traffic
// interleaved. Primarily a data-race trap: `go test -race` runs it with the
// race detector watching the arena's slot banks and the sense-reversing
// barrier.
func TestCollectiveHammer(t *testing.T) {
	const n = 9
	c := New(n, testModel())
	evens := []int{0, 2, 4, 6, 8}
	err := c.Run(func(nd *Node) {
		buf := make([]float64, 5)
		for round := 0; round < 300; round++ {
			for i := range buf {
				buf[i] = float64(nd.Rank()*1000 + round + i)
			}
			nd.Allreduce(OpSum, buf)
			wantHead := float64(n*(n-1)/2*1000 + n*round) // Σ ranks·1000 + n·round
			if buf[0] != wantHead {
				panic(fmt.Sprintf("round %d: allreduce head %v, want %v", round, buf[0], wantHead))
			}
			if s := nd.AllreduceScalar(OpMax, float64(nd.Rank())); s != float64(n-1) {
				panic(fmt.Sprintf("round %d: max %v", round, s))
			}

			// P2P ring traffic between collectives.
			next, prev := (nd.Rank()+1)%n, (nd.Rank()+n-1)%n
			nd.ISend(next, 42, buf[:2])
			req := nd.IRecv(prev, 42)
			nd.Compute(100)
			nd.Release(req.Wait())

			data := []float64{float64(round), 0}
			root := round % n
			if nd.Rank() == root {
				data[1] = float64(root)
			}
			nd.Bcast(root, data)
			if data[1] != float64(root) {
				panic(fmt.Sprintf("round %d: bcast got %v", round, data))
			}

			if parts := nd.Gather(root, data); nd.Rank() == root {
				if len(parts) != n || parts[n-1][0] != float64(round) {
					panic(fmt.Sprintf("round %d: gather got %v", round, parts))
				}
			}

			// Sub-communicator collectives every few rounds: the even ranks
			// share one arena (looked up by rank set, so all rounds reuse it).
			if round%5 == 0 && nd.Rank()%2 == 0 {
				sub := nd.Sub(evens)
				v := sub.AllreduceScalar(OpSum, 1)
				if v != float64(len(evens)) {
					panic(fmt.Sprintf("round %d: sub allreduce %v", round, v))
				}
				sub.Barrier()
			}
			nd.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
