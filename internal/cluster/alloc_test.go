package cluster

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"
)

// collectiveWindowAllocs runs `rounds` steady-state rounds of
// Allreduce + AllreduceScalar + Barrier on 8 nodes after a fixed warm-up and
// returns the global malloc count over the window. Rank 0 reads the counter
// while the other nodes are parked at a barrier, so the window covers
// exactly the steady-state collectives of all nodes.
func collectiveWindowAllocs(t *testing.T, rounds int) uint64 {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const n = 8
	c := New(n, testModel())
	var allocs uint64
	err := c.Run(func(nd *Node) {
		x := []float64{1, 2, 3}
		for i := 0; i < 16; i++ { // warm the slot banks and scheduler
			nd.Allreduce(OpSum, x)
			nd.Barrier()
		}
		var m1, m2 runtime.MemStats
		nd.Barrier()
		if nd.Rank() == 0 {
			runtime.ReadMemStats(&m1)
		}
		nd.Barrier()
		for i := 0; i < rounds; i++ {
			nd.Allreduce(OpSum, x)
			nd.AllreduceScalar(OpMax, float64(i))
			nd.Barrier()
		}
		nd.Barrier()
		if nd.Rank() == 0 {
			runtime.ReadMemStats(&m2)
			allocs = m2.Mallocs - m1.Mallocs
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return allocs
}

// TestAllreduceSteadyStateZeroAlloc gates the collective arena: after the
// warm-up calls have sized the slot banks, Allreduce/AllreduceScalar/Barrier
// must not touch the heap. The Go runtime itself allocates a small *constant*
// amount around goroutine park/unpark (sudog and per-P cache refills — at
// GOMAXPROCS > 1 tens of objects, not attributable per call), so the gate
// measures marginally: a real per-call allocation separates a 400-round
// window from a 6400-round window 6000-fold, constant runtime noise cancels.
func TestAllreduceSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; gate runs in the non-race job")
	}
	short := collectiveWindowAllocs(t, 400)
	long := collectiveWindowAllocs(t, 6400)
	marginal := (float64(long) - float64(short)) / 6000
	if marginal > 0.02 {
		t.Fatalf("steady-state collectives allocate %.3f times per round (windows: %d over 400, %d over 6400; want ~0)",
			marginal, short, long)
	}
}

// p2pWindowAllocs runs `rounds` steady-state Send/Recv/Release exchanges
// after warming the destination's free list and returns the global malloc
// count over the window.
func p2pWindowAllocs(t *testing.T, rounds int) uint64 {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	c := New(2, testModel())
	var allocs uint64
	err := c.Run(func(nd *Node) {
		payload := make([]float64, 32)
		exchange := func() {
			if nd.Rank() == 0 {
				nd.Send(1, 7, payload)
			} else {
				nd.Release(nd.Recv(0, 7))
			}
		}
		for i := 0; i < 16; i++ { // warm the destination's free list
			exchange()
			nd.Barrier()
		}
		var m1, m2 runtime.MemStats
		nd.Barrier()
		if nd.Rank() == 0 {
			runtime.ReadMemStats(&m1)
		}
		nd.Barrier()
		for i := 0; i < rounds; i++ {
			exchange()
			nd.Barrier() // bound sender run-ahead: in-flight stays ≤ 1 buffer
		}
		nd.Barrier()
		if nd.Rank() == 0 {
			runtime.ReadMemStats(&m2)
			allocs = m2.Mallocs - m1.Mallocs
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return allocs
}

// TestP2PSteadyStateZeroAlloc gates the point-to-point free list: once the
// receiver recycles payload buffers with Release, a steady Send/Recv stream
// must not allocate. Measured marginally between a 400- and a 6400-exchange
// window so constant runtime park/unpark noise cancels (see the collective
// gate above).
func TestP2PSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; gate runs in the non-race job")
	}
	short := p2pWindowAllocs(t, 400)
	long := p2pWindowAllocs(t, 6400)
	marginal := (float64(long) - float64(short)) / 6000
	if marginal > 0.02 {
		t.Fatalf("steady-state P2P stream allocates %.3f times per exchange (windows: %d over 400, %d over 6400; want ~0)",
			marginal, short, long)
	}
}

// TestCollectiveHammer drives the shared-memory collectives hard from all
// node goroutines — mixed Allreduce/Bcast/Gather/Barrier on the root view
// and on freshly derived (arena-sharing) sub-views, with P2P traffic
// interleaved. Primarily a data-race trap: `go test -race` runs it with the
// race detector watching the arena's slot banks and the sense-reversing
// barrier.
func TestCollectiveHammer(t *testing.T) {
	const n = 9
	c := New(n, testModel())
	evens := []int{0, 2, 4, 6, 8}
	err := c.Run(func(nd *Node) {
		buf := make([]float64, 5)
		for round := 0; round < 300; round++ {
			for i := range buf {
				buf[i] = float64(nd.Rank()*1000 + round + i)
			}
			nd.Allreduce(OpSum, buf)
			wantHead := float64(n*(n-1)/2*1000 + n*round) // Σ ranks·1000 + n·round
			if buf[0] != wantHead {
				panic(fmt.Sprintf("round %d: allreduce head %v, want %v", round, buf[0], wantHead))
			}
			if s := nd.AllreduceScalar(OpMax, float64(nd.Rank())); s != float64(n-1) {
				panic(fmt.Sprintf("round %d: max %v", round, s))
			}

			// P2P ring traffic between collectives.
			next, prev := (nd.Rank()+1)%n, (nd.Rank()+n-1)%n
			nd.ISend(next, 42, buf[:2])
			req := nd.IRecv(prev, 42)
			nd.Compute(100)
			nd.Release(req.Wait())

			data := []float64{float64(round), 0}
			root := round % n
			if nd.Rank() == root {
				data[1] = float64(root)
			}
			nd.Bcast(root, data)
			if data[1] != float64(root) {
				panic(fmt.Sprintf("round %d: bcast got %v", round, data))
			}

			if parts := nd.Gather(root, data); nd.Rank() == root {
				if len(parts) != n || parts[n-1][0] != float64(round) {
					panic(fmt.Sprintf("round %d: gather got %v", round, parts))
				}
			}

			// Sub-communicator collectives every few rounds: the even ranks
			// share one arena (looked up by rank set, so all rounds reuse it).
			if round%5 == 0 && nd.Rank()%2 == 0 {
				sub := nd.Sub(evens)
				v := sub.AllreduceScalar(OpSum, 1)
				if v != float64(len(evens)) {
					panic(fmt.Sprintf("round %d: sub allreduce %v", round, v))
				}
				sub.Barrier()
			}
			nd.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
