package cluster

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

func testModel() CostModel {
	return CostModel{FlopTime: 1e-9, Latency: 1e-6, BytePeriod: 1e-9, Overhead: 1e-7}
}

func TestRankSize(t *testing.T) {
	c := New(4, testModel())
	var seen [4]int32
	err := c.Run(func(nd *Node) {
		if nd.Size() != 4 {
			panic(fmt.Sprintf("Size = %d", nd.Size()))
		}
		atomic.AddInt32(&seen[nd.Rank()], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("rank %d ran %d times", r, n)
		}
	}
}

func TestSendRecv(t *testing.T) {
	c := New(2, testModel())
	err := c.Run(func(nd *Node) {
		if nd.Rank() == 0 {
			nd.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := nd.Recv(0, 7)
			if len(got) != 3 || got[2] != 3 {
				panic(fmt.Sprintf("Recv got %v", got))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	c := New(2, testModel())
	err := c.Run(func(nd *Node) {
		if nd.Rank() == 0 {
			buf := []float64{42}
			nd.Send(1, 1, buf) // Send copies synchronously...
			buf[0] = 0         // ...so this mutation must not reach the receiver.
		} else {
			if got := nd.Recv(0, 1); got[0] != 42 {
				panic(fmt.Sprintf("payload mutated: %v", got))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendFIRecvFI(t *testing.T) {
	c := New(2, testModel())
	err := c.Run(func(nd *Node) {
		if nd.Rank() == 0 {
			nd.SendFI(1, 3, []float64{1.5}, []int{10, 20})
		} else {
			f, i := nd.RecvFI(0, 3)
			if f[0] != 1.5 || i[1] != 20 {
				panic(fmt.Sprintf("RecvFI got %v %v", f, i))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMismatchPanicsIntoError(t *testing.T) {
	c := New(2, testModel())
	err := c.Run(func(nd *Node) {
		if nd.Rank() == 0 {
			nd.Send(1, 1, nil)
		} else {
			nd.Recv(0, 2) // wrong tag
		}
	})
	if err == nil || !strings.Contains(err.Error(), "expected tag") {
		t.Fatalf("err = %v, want tag mismatch", err)
	}
}

func TestNodePanicPropagates(t *testing.T) {
	c := New(3, testModel())
	err := c.Run(func(nd *Node) {
		if nd.Rank() == 1 {
			panic("boom")
		}
		// Other nodes block on a message that never arrives; the abort must
		// unwind them.
		nd.Recv((nd.Rank()+1)%3, 5)
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		c := New(n, testModel())
		err := c.Run(func(nd *Node) {
			x := []float64{float64(nd.Rank()), 1}
			nd.Allreduce(OpSum, x)
			wantSum := float64(n*(n-1)) / 2
			if x[0] != wantSum || x[1] != float64(n) {
				panic(fmt.Sprintf("n=%d rank=%d allreduce got %v", n, nd.Rank(), x))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	c := New(4, testModel())
	err := c.Run(func(nd *Node) {
		if got := nd.AllreduceScalar(OpMax, float64(nd.Rank())); got != 3 {
			panic(fmt.Sprintf("max got %g", got))
		}
		if got := nd.AllreduceScalar(OpMin, float64(nd.Rank())); got != 0 {
			panic(fmt.Sprintf("min got %g", got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceDeterministicOrder(t *testing.T) {
	// Floating-point sums depend on order; the contract is ascending rank
	// order at rank 0. Values chosen so that a different order changes the
	// result: x_s = 1e16 for rank 0, 1.0 otherwise.
	run := func() float64 {
		c := New(8, testModel())
		var out float64
		err := c.Run(func(nd *Node) {
			v := 1.0
			if nd.Rank() == 0 {
				v = 1e16
			}
			got := nd.AllreduceScalar(OpSum, v)
			if nd.Rank() == 0 {
				out = got
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("allreduce not deterministic: %g vs %g", got, first)
		}
	}
}

func TestBcast(t *testing.T) {
	c := New(5, testModel())
	err := c.Run(func(nd *Node) {
		data := make([]float64, 3)
		if nd.Rank() == 2 {
			data = []float64{7, 8, 9}
		}
		nd.Bcast(2, data)
		if data[0] != 7 || data[2] != 9 {
			panic(fmt.Sprintf("rank %d bcast got %v", nd.Rank(), data))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	c := New(4, testModel())
	err := c.Run(func(nd *Node) {
		parts := nd.Gather(0, []float64{float64(nd.Rank()), float64(nd.Rank() * 10)})
		if nd.Rank() == 0 {
			if len(parts) != 4 {
				panic("wrong part count")
			}
			for s, p := range parts {
				if p[0] != float64(s) || p[1] != float64(10*s) {
					panic(fmt.Sprintf("part %d = %v", s, p))
				}
			}
		} else if parts != nil {
			panic("non-root must get nil")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierCompletes(t *testing.T) {
	c := New(8, testModel())
	err := c.Run(func(nd *Node) {
		for i := 0; i < 10; i++ {
			nd.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubCommunicator(t *testing.T) {
	c := New(6, testModel())
	err := c.Run(func(nd *Node) {
		sub := nd.Sub([]int{1, 3, 4})
		switch nd.GlobalRank() {
		case 1, 3, 4:
			if sub == nil {
				panic("member got nil sub")
			}
			if sub.Size() != 3 {
				panic(fmt.Sprintf("sub size %d", sub.Size()))
			}
			wantRank := map[int]int{1: 0, 3: 1, 4: 2}[nd.GlobalRank()]
			if sub.Rank() != wantRank {
				panic(fmt.Sprintf("sub rank %d, want %d", sub.Rank(), wantRank))
			}
			sum := sub.AllreduceScalar(OpSum, float64(nd.GlobalRank()))
			if sum != 8 {
				panic(fmt.Sprintf("sub allreduce %g, want 8", sum))
			}
			// Point-to-point within the sub view uses sub ranks.
			if sub.Rank() == 0 {
				sub.Send(2, 9, []float64{5})
			} else if sub.Rank() == 2 {
				if got := sub.Recv(0, 9); got[0] != 5 {
					panic("sub send/recv failed")
				}
			}
		default:
			if sub != nil {
				panic("non-member got non-nil sub")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubSharesClock(t *testing.T) {
	c := New(4, testModel())
	err := c.Run(func(nd *Node) {
		sub := nd.Sub([]int{0, 1, 2, 3})
		sub.Compute(1e6)
		if nd.Clock() != sub.Clock() || nd.Clock() <= 0 {
			panic("sub must share the node clock")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimulatedClockAdvances(t *testing.T) {
	m := testModel()
	c := New(2, m)
	err := c.Run(func(nd *Node) {
		if nd.Rank() == 0 {
			nd.Compute(1000)
			nd.Send(1, 1, make([]float64, 100))
		} else {
			nd.Recv(0, 1)
			// Arrival ≥ sender compute + latency + 800 bytes serialization.
			min := 1000*m.FlopTime + m.Latency + 800*m.BytePeriod
			if nd.Clock() < min {
				panic(fmt.Sprintf("receiver clock %g < %g", nd.Clock(), min))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxClock() <= 0 {
		t.Fatal("MaxClock must be positive")
	}
}

func TestClockDeterminism(t *testing.T) {
	run := func() float64 {
		c := New(8, testModel())
		err := c.Run(func(nd *Node) {
			for i := 0; i < 20; i++ {
				nd.Compute(float64(100 * (nd.Rank() + 1)))
				nd.AllreduceScalar(OpSum, 1)
				if nd.Rank() == 0 {
					nd.Send(7, 1, make([]float64, 10))
				}
				if nd.Rank() == 7 {
					nd.Recv(0, 1)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("modeled time not deterministic: %g vs %g", got, first)
		}
	}
}

func TestCounters(t *testing.T) {
	c := New(2, testModel())
	err := c.Run(func(nd *Node) {
		if nd.Rank() == 0 {
			nd.Send(1, 1, make([]float64, 4)) // 32 bytes
		} else {
			nd.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.BytesSent() != 32 {
		t.Fatalf("BytesSent = %d, want 32", c.BytesSent())
	}
	if c.MsgsSent() != 1 {
		t.Fatalf("MsgsSent = %d, want 1", c.MsgsSent())
	}
}

func TestAddClockAndSyncClock(t *testing.T) {
	c := New(1, testModel())
	err := c.Run(func(nd *Node) {
		nd.AddClock(1.5)
		nd.SyncClock(1.0) // no-op, behind
		if nd.Clock() != 1.5 {
			panic("SyncClock must not rewind")
		}
		nd.SyncClock(2.0)
		if nd.Clock() != 2.0 {
			panic("SyncClock must raise")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveCostScalesWithLogN(t *testing.T) {
	timeFor := func(n int) float64 {
		c := New(n, testModel())
		if err := c.Run(func(nd *Node) { nd.Barrier() }); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}
	t4, t64 := timeFor(4), timeFor(64)
	if t64 <= t4 {
		t.Fatalf("64-node barrier (%g) should cost more than 4-node (%g)", t64, t4)
	}
	ratio := t64 / t4
	if math.Abs(ratio-3) > 0.75 { // log2(64)/log2(4) = 3
		t.Fatalf("cost ratio %g, want ≈ 3", ratio)
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	m := DefaultCostModel()
	if m.FlopTime <= 0 || m.Latency <= 0 || m.BytePeriod <= 0 || m.Overhead < 0 {
		t.Fatalf("degenerate default model: %+v", m)
	}
	if m.Latency < m.Overhead {
		t.Fatal("latency should dominate per-message overhead")
	}
}

// TestNonblockingOverlapHidesLatency pins the LogGP semantics of IRecv+Wait:
// compute between the post and the wait overlaps with the message flight, so
// the overlapped receiver finishes at max(compute, delivery)+tail instead of
// delivery+compute+tail.
func TestNonblockingOverlapHidesLatency(t *testing.T) {
	model := testModel()
	payload := []float64{1, 2, 3, 4}
	bytes := float64(8 * len(payload))
	delivery := model.Overhead + model.Latency + bytes*model.BytePeriod

	run := func(overlap bool) float64 {
		var clock float64
		c := New(2, model)
		err := c.Run(func(nd *Node) {
			if nd.Rank() == 0 {
				nd.ISend(1, 5, payload)
				return
			}
			const flops = 1e4
			req := nd.IRecv(0, 5)
			if overlap {
				nd.Compute(flops) // hidden behind the flight
				req.Wait()
			} else {
				req.Wait()
				nd.Compute(flops) // stacked on top of the delivery
			}
			clock = nd.Clock()
		})
		if err != nil {
			t.Fatal(err)
		}
		return clock
	}

	compute := 1e4 * model.FlopTime
	if got, want := run(true), math.Max(compute, delivery); math.Abs(got-want) > 1e-15 {
		t.Fatalf("overlapped clock %v, want max(compute, delivery) = %v", got, want)
	}
	if got, want := run(false), delivery+compute; math.Abs(got-want) > 1e-15 {
		t.Fatalf("blocking clock %v, want delivery+compute = %v", got, want)
	}
	if run(true) >= run(false) {
		t.Fatal("overlap must yield a strictly lower clock when both compute and flight are nonzero")
	}
}

// TestWaitIsIdempotent checks that a second Wait returns the same payload
// without advancing the clock again.
func TestWaitIsIdempotent(t *testing.T) {
	c := New(2, testModel())
	err := c.Run(func(nd *Node) {
		if nd.Rank() == 0 {
			nd.ISend(1, 9, []float64{7})
			return
		}
		req := nd.IRecv(0, 9)
		first := req.Wait()
		clock := nd.Clock()
		second := req.Wait()
		if &first[0] != &second[0] || nd.Clock() != clock {
			panic("second Wait must be a no-op")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
