// Package cluster simulates the distributed-memory machine the paper runs
// on: N nodes executing the same SPMD program, exchanging messages, with
// node-failure events injected by the application layer.
//
// Each node is a goroutine; point-to-point messages travel over lazily
// created FIFO channels, and collectives (allreduce, broadcast, gather,
// barrier) are built on top of them with deterministic, rank-ordered
// reductions so that floating-point results are reproducible run to run.
//
// # Simulated time
//
// The paper reports wall-clock runtimes on the VSC3 cluster. Since this
// reproduction runs all "nodes" on one host, wall-clock would conflate host
// scheduling with algorithmic cost. Instead every node carries a simulated
// clock advanced by a LogGP-style cost model:
//
//   - computation: Compute(flops) advances the clock by flops·FlopTime;
//   - a point-to-point message costs the sender Overhead and delivers at
//     send-clock + Latency + bytes·BytePeriod (the receiver's clock becomes
//     the max of its own clock and the delivery time);
//   - nonblocking point-to-point (ISend, IRecv+Wait) uses the same costs,
//     but because the receiver's clock only advances to the delivery time at
//     Wait, any Compute between the post and the Wait overlaps with the
//     modeled message flight — communication the application hides behind
//     local work is hidden in the simulated runtime too;
//   - collectives over n nodes synchronize all participants to
//     max(clocks) + ⌈log₂ n⌉·(Latency + bytes·BytePeriod).
//
// The solver's reported runtime is the maximum clock over nodes, which is
// deterministic and host-independent; relative overheads (the paper's
// metric) therefore depend only on algorithmic communication and compute
// volume. Wall-clock is tracked as well for sanity checks.
package cluster

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// CostModel holds the LogGP-style machine parameters of the simulated
// cluster, all in seconds (per flop / per message / per byte).
type CostModel struct {
	FlopTime   float64 // seconds per floating-point operation
	Latency    float64 // end-to-end latency per message (α)
	BytePeriod float64 // seconds per payload byte (1/bandwidth, β)
	Overhead   float64 // sender-side CPU overhead per message (o)
}

// DefaultCostModel returns parameters loosely calibrated to the paper's
// platform (VSC3: QDR InfiniBand fat-tree, one MPI process per node, and an
// effective SpMV rate implied by 10 279 iterations of Emilia_923 on 128
// nodes in 14.66 s): ~0.7 GF/s effective per-process compute, ~1.8 µs
// latency, ~3 GB/s effective point-to-point bandwidth.
func DefaultCostModel() CostModel {
	return CostModel{
		FlopTime:   1.0 / 0.7e9,
		Latency:    1.8e-6,
		BytePeriod: 1.0 / 3e9,
		Overhead:   0.4e-6,
	}
}

// message is one point-to-point transmission.
type message struct {
	tag      int
	floats   []float64
	ints     []int
	sendTime float64 // sender's simulated clock at send
}

// bytes returns the modeled payload size.
func (m *message) bytes() int { return 8*len(m.floats) + 8*len(m.ints) }

// endpoint is the receive side of one node: a map of per-sender FIFO
// channels, created lazily so that mostly-neighbour traffic patterns do not
// allocate N² buffers.
type endpoint struct {
	mu    sync.Mutex
	boxes map[int]chan message
}

const boxCapacity = 4096

func (e *endpoint) box(src int) chan message {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.boxes[src]
	if !ok {
		b = make(chan message, boxCapacity)
		e.boxes[src] = b
	}
	return b
}

// Comm is the simulated machine: the set of endpoints plus the cost model.
type Comm struct {
	n         int
	model     CostModel
	endpoints []*endpoint
	abort     chan struct{}
	abortOnce sync.Once
	abortErr  atomic.Value // error

	bytesSent atomic.Int64
	msgsSent  atomic.Int64

	finalClocks []float64 // filled by Run
	wallTime    time.Duration
}

// New creates a simulated cluster of n nodes.
func New(n int, model CostModel) *Comm {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: invalid node count %d", n))
	}
	c := &Comm{n: n, model: model, abort: make(chan struct{})}
	c.endpoints = make([]*endpoint, n)
	for i := range c.endpoints {
		c.endpoints[i] = &endpoint{boxes: make(map[int]chan message)}
	}
	c.finalClocks = make([]float64, n)
	return c
}

// N returns the number of nodes.
func (c *Comm) N() int { return c.n }

// Model returns the cost model.
func (c *Comm) Model() CostModel { return c.model }

// errAborted is the panic value used to unwind node goroutines after another
// node has failed with a real error.
type abortedError struct{ cause error }

func (e abortedError) Error() string { return "cluster: aborted: " + e.cause.Error() }

func (c *Comm) fail(err error) {
	c.abortOnce.Do(func() {
		c.abortErr.Store(err)
		close(c.abort)
	})
}

// Run executes body on every node concurrently and waits for completion.
// A panic on any node aborts the whole run and is returned as an error.
// Run may be called once per Comm.
func (c *Comm) Run(body func(nd *Node)) error {
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(c.n)
	for g := 0; g < c.n; g++ {
		go func(g int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if ab, ok := r.(abortedError); ok {
						_ = ab // secondary victim of another node's failure
						return
					}
					c.fail(fmt.Errorf("cluster: node %d panicked: %v", g, r))
				}
			}()
			nd := &Node{
				comm:  c,
				view:  identityView(c.n),
				g:     g,
				state: &nodeState{},
			}
			body(nd)
			c.finalClocks[g] = nd.state.clock
		}(g)
	}
	wg.Wait()
	c.wallTime = time.Since(start)
	if err, ok := c.abortErr.Load().(error); ok {
		return err
	}
	return nil
}

// MaxClock returns the maximum simulated clock over all nodes after Run —
// the modeled runtime of the program.
func (c *Comm) MaxClock() float64 {
	m := 0.0
	for _, t := range c.finalClocks {
		if t > m {
			m = t
		}
	}
	return m
}

// WallTime returns the host wall-clock duration of Run.
func (c *Comm) WallTime() time.Duration { return c.wallTime }

// BytesSent returns the total point-to-point payload bytes sent.
func (c *Comm) BytesSent() int64 { return c.bytesSent.Load() }

// MsgsSent returns the total number of point-to-point messages.
func (c *Comm) MsgsSent() int64 { return c.msgsSent.Load() }

// view maps local ranks of a (sub-)communicator to global ranks.
type view struct {
	ranks []int       // global rank per local rank, ascending
	pos   map[int]int // global rank -> local rank
}

func identityView(n int) *view {
	v := &view{ranks: make([]int, n), pos: make(map[int]int, n)}
	for i := 0; i < n; i++ {
		v.ranks[i] = i
		v.pos[i] = i
	}
	return v
}

// nodeState is the per-goroutine mutable state shared between a node and all
// sub-communicator handles derived from it.
type nodeState struct {
	clock     float64
	flops     float64
	bytesSent int64
	msgsSent  int64
}

// Node is one simulated cluster node's handle, bound to a communicator view.
// All methods must be called only from the goroutine running this node.
type Node struct {
	comm  *Comm
	view  *view
	g     int // global rank
	state *nodeState
}

// Rank returns this node's rank within the current view.
func (nd *Node) Rank() int { return nd.view.pos[nd.g] }

// Size returns the number of nodes in the current view.
func (nd *Node) Size() int { return len(nd.view.ranks) }

// GlobalRank returns the node's rank in the top-level communicator.
func (nd *Node) GlobalRank() int { return nd.g }

// GlobalOf returns the top-level rank of the given view rank — the inverse
// of the mapping Sub establishes. Callers deriving a sub-communicator from
// view-relative rank lists translate through this before calling Sub.
func (nd *Node) GlobalOf(viewRank int) int { return nd.view.ranks[viewRank] }

// Clock returns the node's simulated time.
func (nd *Node) Clock() float64 { return nd.state.clock }

// AddClock advances the simulated clock by dt seconds (dt ≥ 0).
func (nd *Node) AddClock(dt float64) {
	if dt < 0 {
		panic("cluster: negative clock advance")
	}
	nd.state.clock += dt
}

// SyncClock raises the simulated clock to at least t.
func (nd *Node) SyncClock(t float64) {
	if t > nd.state.clock {
		nd.state.clock = t
	}
}

// Compute advances the clock by flops·FlopTime and accounts the flops.
func (nd *Node) Compute(flops float64) {
	nd.state.flops += flops
	nd.state.clock += flops * nd.comm.model.FlopTime
}

// Flops returns the total flops accounted on this node.
func (nd *Node) Flops() float64 { return nd.state.flops }

// BytesSent returns the payload bytes this node has sent.
func (nd *Node) BytesSent() int64 { return nd.state.bytesSent }

// Sub returns a handle bound to the sub-communicator consisting of the given
// global ranks (ascending order defines the new rank order). It returns nil
// if this node is not a member. The handle shares the node's clock and
// counters. The reconstruction phase uses this to run a distributed inner
// solver on the replacement nodes only.
func (nd *Node) Sub(globalRanks []int) *Node {
	v := &view{ranks: append([]int(nil), globalRanks...), pos: make(map[int]int, len(globalRanks))}
	prev := -1
	for i, r := range v.ranks {
		if r <= prev || r < 0 || r >= nd.comm.n {
			panic(fmt.Sprintf("cluster: Sub ranks must be ascending and in range, got %v", globalRanks))
		}
		prev = r
		v.pos[r] = i
	}
	if _, ok := v.pos[nd.g]; !ok {
		return nil
	}
	return &Node{comm: nd.comm, view: v, g: nd.g, state: nd.state}
}

// send delivers a message to the local-rank dst of the current view,
// cloning payloads so callers may reuse their buffers.
func (nd *Node) send(dst, tag int, floats []float64, ints []int, clocked bool) {
	gdst := nd.view.ranks[dst]
	m := message{tag: tag, sendTime: nd.state.clock}
	if floats != nil {
		m.floats = append(make([]float64, 0, len(floats)), floats...)
	}
	if ints != nil {
		m.ints = append(make([]int, 0, len(ints)), ints...)
	}
	if clocked {
		nd.state.clock += nd.comm.model.Overhead
		m.sendTime = nd.state.clock
	}
	nd.comm.bytesSent.Add(int64(m.bytes()))
	nd.comm.msgsSent.Add(1)
	nd.state.bytesSent += int64(m.bytes())
	nd.state.msgsSent++
	select {
	case nd.comm.endpoints[gdst].box(nd.g) <- m:
	case <-nd.comm.abort:
		panic(abortedError{cause: fmt.Errorf("send to %d aborted", gdst)})
	}
}

// recv receives the next message from local-rank src of the current view.
// The message's tag must equal tag; a mismatch indicates a protocol bug and
// panics. If clocked, the receiver's clock advances to the modeled delivery
// time.
func (nd *Node) recv(src, tag int, clocked bool) message {
	gsrc := nd.view.ranks[src]
	var m message
	select {
	case m = <-nd.comm.endpoints[nd.g].box(gsrc):
	case <-nd.comm.abort:
		panic(abortedError{cause: fmt.Errorf("recv from %d aborted", gsrc)})
	}
	if m.tag != tag {
		panic(fmt.Sprintf("cluster: node %d expected tag %d from %d, got %d", nd.g, tag, gsrc, m.tag))
	}
	if clocked {
		arrival := m.sendTime + nd.comm.model.Latency + float64(m.bytes())*nd.comm.model.BytePeriod
		if arrival > nd.state.clock {
			nd.state.clock = arrival
		}
	}
	return m
}

// Send transmits floats to view-rank dst with the given tag.
func (nd *Node) Send(dst, tag int, floats []float64) {
	nd.send(dst, tag, floats, nil, true)
}

// SendFI transmits a float payload plus an integer payload.
func (nd *Node) SendFI(dst, tag int, floats []float64, ints []int) {
	nd.send(dst, tag, floats, ints, true)
}

// Recv receives a float payload from view-rank src with the given tag.
func (nd *Node) Recv(src, tag int) []float64 {
	return nd.recv(src, tag, true).floats
}

// Request is the handle of a nonblocking receive posted with IRecv. The zero
// value is invalid; requests are single-use and must not be shared across
// goroutines (like every Node method, they belong to the node's goroutine).
type Request struct {
	nd       *Node
	src, tag int
	done     bool
	floats   []float64
}

// ISend transmits floats to view-rank dst without blocking. The payload is
// captured at post time (the simulated NIC owns a copy), so the caller may
// reuse the buffer immediately — the MPI_Isend+MPI_Wait pair collapses into
// one call under this machine model. The sender's clock is charged the
// per-message Overhead at post, exactly as for Send.
func (nd *Node) ISend(dst, tag int, floats []float64) {
	nd.send(dst, tag, floats, nil, true)
}

// IRecv posts a nonblocking receive for a message from view-rank src with
// the given tag. Posting is free on the simulated clock; the LogGP delivery
// cost is applied by Wait. Compute performed between IRecv and Wait
// genuinely hides the message latency: the clock at Wait becomes
// max(own clock, sender clock + Latency + bytes·BytePeriod), so local work
// advancing the own clock overlaps with the modeled message flight instead
// of stacking on top of it.
func (nd *Node) IRecv(src, tag int) Request {
	return Request{nd: nd, src: src, tag: tag}
}

// Wait completes the receive, advancing the node's clock to the modeled
// delivery time if the message is still in flight, and returns the payload.
// Waiting twice returns the same payload without further clock effect.
func (r *Request) Wait() []float64 {
	if r.nd == nil {
		panic("cluster: Wait on a zero Request")
	}
	if !r.done {
		r.floats = r.nd.recv(r.src, r.tag, true).floats
		r.done = true
	}
	return r.floats
}

// RecvFI receives a float plus integer payload.
func (nd *Node) RecvFI(src, tag int) ([]float64, []int) {
	m := nd.recv(src, tag, true)
	return m.floats, m.ints
}

// Op selects the reduction operator for Allreduce.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func (op Op) apply(dst, src []float64) {
	switch op {
	case OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case OpMax:
		for i := range dst {
			dst[i] = math.Max(dst[i], src[i])
		}
	case OpMin:
		for i := range dst {
			dst[i] = math.Min(dst[i], src[i])
		}
	default:
		panic(fmt.Sprintf("cluster: unknown op %d", op))
	}
}

const (
	tagReduceUp = -101
	tagReduceDn = -102
	tagBcast    = -103
	tagGather   = -104
)

// collectiveCost returns the modeled time for one size-`bytes` collective
// over n participants: ⌈log₂ n⌉ rounds of latency plus serialization.
func (nd *Node) collectiveCost(bytes int) float64 {
	n := nd.Size()
	rounds := math.Ceil(math.Log2(float64(max(n, 2))))
	return rounds * (nd.comm.model.Latency + nd.comm.model.Overhead + float64(bytes)*nd.comm.model.BytePeriod)
}

// Allreduce reduces x elementwise over all view members with operator op,
// leaving the identical result in x on every member. The reduction is
// performed in ascending rank order at rank 0, so results are bitwise
// deterministic. All members' clocks synchronize to
// max(member clocks) + collectiveCost.
func (nd *Node) Allreduce(op Op, x []float64) {
	n := nd.Size()
	me := nd.Rank()
	if n == 1 {
		nd.state.clock += 0 // no communication
		return
	}
	payload := append(append(make([]float64, 0, len(x)+1), x...), nd.state.clock)
	if me == 0 {
		tmax := nd.state.clock
		acc := append([]float64(nil), x...)
		for r := 1; r < n; r++ {
			m := nd.recv(r, tagReduceUp, false)
			body, clk := m.floats[:len(x)], m.floats[len(x)]
			op.apply(acc, body)
			if clk > tmax {
				tmax = clk
			}
		}
		newClock := tmax + nd.collectiveCost(8*len(x))
		out := append(append(make([]float64, 0, len(x)+1), acc...), newClock)
		for r := 1; r < n; r++ {
			nd.send(r, tagReduceDn, out, nil, false)
		}
		copy(x, acc)
		nd.state.clock = newClock
		return
	}
	nd.send(0, tagReduceUp, payload, nil, false)
	m := nd.recv(0, tagReduceDn, false)
	copy(x, m.floats[:len(x)])
	nd.state.clock = m.floats[len(x)]
}

// AllreduceScalar reduces a single value.
func (nd *Node) AllreduceScalar(op Op, v float64) float64 {
	buf := [1]float64{v}
	nd.Allreduce(op, buf[:])
	return buf[0]
}

// Barrier synchronizes all view members (an empty allreduce).
func (nd *Node) Barrier() {
	nd.Allreduce(OpMax, nil)
}

// Bcast broadcasts data from view-rank root to all members, in place.
func (nd *Node) Bcast(root int, data []float64) {
	n := nd.Size()
	if n == 1 {
		return
	}
	me := nd.Rank()
	if me == root {
		payload := append(append(make([]float64, 0, len(data)+1), data...), nd.state.clock)
		for r := 0; r < n; r++ {
			if r != root {
				nd.send(r, tagBcast, payload, nil, false)
			}
		}
		nd.state.clock += nd.collectiveCost(8 * len(data))
		return
	}
	m := nd.recv(root, tagBcast, false)
	copy(data, m.floats[:len(data)])
	rootClock := m.floats[len(data)]
	t := math.Max(rootClock, nd.state.clock) + nd.collectiveCost(8*len(data))
	nd.state.clock = t
}

// Gather collects each member's data slice at view-rank root. On root it
// returns one slice per rank (rank order); on other members it returns nil.
func (nd *Node) Gather(root int, data []float64) [][]float64 {
	n := nd.Size()
	me := nd.Rank()
	if me != root {
		payload := append(append(make([]float64, 0, len(data)+1), data...), nd.state.clock)
		nd.send(root, tagGather, payload, nil, false)
		// The sender's clock advances only by its own send overhead; gather is
		// not synchronizing for non-roots.
		nd.state.clock += nd.comm.model.Overhead
		return nil
	}
	out := make([][]float64, n)
	out[me] = append([]float64(nil), data...)
	tmax := nd.state.clock
	totalBytes := 0
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		m := nd.recv(r, tagGather, false)
		out[r] = append([]float64(nil), m.floats[:len(m.floats)-1]...)
		clk := m.floats[len(m.floats)-1]
		if clk > tmax {
			tmax = clk
		}
		totalBytes += 8 * (len(m.floats) - 1)
	}
	nd.state.clock = tmax + nd.comm.model.Latency*math.Ceil(math.Log2(float64(max(n, 2)))) +
		float64(totalBytes)*nd.comm.model.BytePeriod
	return out
}
