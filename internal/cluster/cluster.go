// Package cluster simulates the distributed-memory machine the paper runs
// on: N nodes executing the same SPMD program, exchanging messages, with
// node-failure events injected by the application layer.
//
// Each node is a goroutine; point-to-point messages travel over lazily
// created FIFO channels whose payload buffers come from a per-receiver
// free list, and collectives (allreduce, broadcast, gather, barrier) run
// over a per-view shared-memory arena — preallocated per-rank slot buffers
// synchronized by a combining-tree barrier (barrier.go) — with deterministic,
// rank-ordered reductions so that floating-point results are reproducible
// run to run. In steady state neither path allocates: the arena slots, the
// send buffers and the receive buffers are all recycled.
//
// # Simulated time
//
// The paper reports wall-clock runtimes on the VSC3 cluster. Since this
// reproduction runs all "nodes" on one host, wall-clock would conflate host
// scheduling with algorithmic cost. Instead every node carries a simulated
// clock advanced by a LogGP-style cost model:
//
//   - computation: Compute(flops) advances the clock by flops·FlopTime;
//   - a point-to-point message costs the sender Overhead and delivers at
//     send-clock + Latency + bytes·BytePeriod (the receiver's clock becomes
//     the max of its own clock and the delivery time);
//   - nonblocking point-to-point (ISend, IRecv+Wait) uses the same costs,
//     but because the receiver's clock only advances to the delivery time at
//     Wait, any Compute between the post and the Wait overlaps with the
//     modeled message flight — communication the application hides behind
//     local work is hidden in the simulated runtime too;
//   - collectives over n nodes synchronize all participants to
//     max(clocks) + ⌈log₂ n⌉·(Latency + bytes·BytePeriod).
//
// The collective arena is a host-side execution detail: the modeled cost and
// the modeled traffic (the messages the retired star implementation would
// have sent) are accounted identically, so simulated clocks and byte
// counters are bit-for-bit unchanged — only the host does less work.
//
// The solver's reported runtime is the maximum clock over nodes, which is
// deterministic and host-independent; relative overheads (the paper's
// metric) therefore depend only on algorithmic communication and compute
// volume. Wall-clock is tracked as well for sanity checks.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"esrp/internal/hostobs"
	"esrp/internal/obs"
	"esrp/internal/replay"
)

// CostModel holds the LogGP-style machine parameters of the simulated
// cluster, all in seconds (per flop / per message / per byte).
type CostModel struct {
	FlopTime   float64 // seconds per floating-point operation
	Latency    float64 // end-to-end latency per message (α)
	BytePeriod float64 // seconds per payload byte (1/bandwidth, β)
	Overhead   float64 // sender-side CPU overhead per message (o)
}

// DefaultCostModel returns parameters loosely calibrated to the paper's
// platform (VSC3: QDR InfiniBand fat-tree, one MPI process per node, and an
// effective SpMV rate implied by 10 279 iterations of Emilia_923 on 128
// nodes in 14.66 s): ~0.7 GF/s effective per-process compute, ~1.8 µs
// latency, ~3 GB/s effective point-to-point bandwidth.
func DefaultCostModel() CostModel {
	return CostModel{
		FlopTime:   1.0 / 0.7e9,
		Latency:    1.8e-6,
		BytePeriod: 1.0 / 3e9,
		Overhead:   0.4e-6,
	}
}

// message is one point-to-point transmission.
type message struct {
	tag      int
	floats   []float64
	ints     []int
	sendTime float64 // sender's simulated clock at send
}

// bytes returns the modeled payload size.
func (m *message) bytes() int { return 8*len(m.floats) + 8*len(m.ints) }

// endpoint is the receive side of one node: per-sender FIFO channels,
// created lazily so that mostly-neighbour traffic patterns do not allocate
// N² buffers, plus a free list of payload buffers. The channel table is a
// fixed slice of atomic pointers — the steady-state lookup is one atomic
// load, no lock, no map hashing. Senders draw their payload copies from the
// destination's free list and the receiver returns them via Node.Release,
// so steady-state traffic recycles a fixed working set instead of
// allocating per message.
type endpoint struct {
	mu    sync.Mutex                // guards slow-path box creation
	boxes []atomic.Pointer[msgChan] // per-sender, nil until first use

	pmu  sync.Mutex
	pool [][]float64
}

// msgChan wraps a channel so it fits atomic.Pointer.
type msgChan struct{ ch chan message }

// boxCapacity bounds the in-flight messages per (sender, receiver) pair.
// Collectives run over the shared-memory arena (never these channels), and
// the arena barriers keep nodes within one collective of each other, so a
// pair accumulates at most one round of halo/extra/checkpoint/recovery
// traffic (≤ ~16 messages) before the receiver drains it. 64 leaves 4×
// headroom while keeping the per-pair channel footprint a few KB — the
// 4096-deep boxes of the star-collective era were 93% of a campaign cell's
// allocations.
const (
	boxCapacity = 64
	poolDepth   = 64 // free-list bound per endpoint
)

func (e *endpoint) box(src int) chan message {
	if b := e.boxes[src].Load(); b != nil {
		return b.ch
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if b := e.boxes[src].Load(); b != nil {
		return b.ch
	}
	b := &msgChan{ch: make(chan message, boxCapacity)}
	e.boxes[src].Store(b)
	return b.ch
}

// getBuf pops the best-fitting free buffer with capacity in [n, 2n+32] (or
// allocates one). Traffic patterns here are static per (pair, tag), so the
// most recently released buffer is almost always an exact fit and the
// top-down scan stops immediately. The fit ceiling matters when payloads of
// very different sizes share one receiver (halo exchanges next to buddy
// checkpoints): a small request must never strip the pool's one large
// buffer — the next large send would allocate afresh every round — so badly
// oversized buffers are left in place and a fresh small buffer (which joins
// the pool's fixed working set on Release) is allocated instead.
func (e *endpoint) getBuf(n int) []float64 {
	limit := 2*n + 32
	e.pmu.Lock()
	best := -1
	for i := len(e.pool) - 1; i >= 0; i-- {
		if c := cap(e.pool[i]); c >= n && c <= limit && (best < 0 || c < cap(e.pool[best])) {
			best = i
			if c == n {
				break
			}
		}
	}
	if best >= 0 {
		buf := e.pool[best]
		e.pool[best] = e.pool[len(e.pool)-1]
		e.pool = e.pool[:len(e.pool)-1]
		e.pmu.Unlock()
		return buf[:n]
	}
	e.pmu.Unlock()
	return make([]float64, n)
}

// putBuf returns a buffer to the free list (dropped when full).
func (e *endpoint) putBuf(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	e.pmu.Lock()
	if len(e.pool) < poolDepth {
		e.pool = append(e.pool, buf[:0])
	}
	e.pmu.Unlock()
}

// Comm is the simulated machine: the set of endpoints plus the cost model.
type Comm struct {
	n         int
	model     CostModel
	endpoints []*endpoint
	abort     chan struct{}
	abortOnce sync.Once
	abortErr  atomic.Value // error

	bytesSent atomic.Int64
	msgsSent  atomic.Int64

	rootView *view // identity view shared by all nodes (read-only)

	arenaMu sync.Mutex
	arenas  map[string]*arena // collective arenas keyed by member-rank set

	rec *obs.Recorder // nil = no instrumentation (the default)

	rep *replay.Recorder // nil = no schedule recording (the default)

	hostStats *hostobs.BarrierStats // nil = no host telemetry (the default)

	finalClocks []float64 // filled by Run
	wallTime    time.Duration
}

// New creates a simulated cluster of n nodes.
func New(n int, model CostModel) *Comm {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: invalid node count %d", n))
	}
	c := &Comm{n: n, model: model, abort: make(chan struct{}), arenas: make(map[string]*arena)}
	c.endpoints = make([]*endpoint, n)
	for i := range c.endpoints {
		c.endpoints[i] = &endpoint{
			boxes: make([]atomic.Pointer[msgChan], n),
			pool:  make([][]float64, 0, poolDepth), // full capacity up front: putBuf never regrows it
		}
	}
	c.finalClocks = make([]float64, n)
	c.rootView = identityView(n)
	c.rootView.ar = c.arenaFor(c.rootView.ranks)
	return c
}

// Observe attaches an observability recorder: each node's goroutine then
// records collective spans (and whatever the layers above add) into its
// own per-rank buffer. Must be called before Run; a nil recorder (or not
// calling Observe at all) keeps the zero-overhead disabled path.
func (c *Comm) Observe(rec *obs.Recorder) { c.rec = rec }

// ObserveHost attaches host-side barrier telemetry: every arena barrier —
// the root view's and any sub-communicator's — records per-member wait
// time (split by spin/yield/park regime), arrival-order skew, releases,
// and aborts into st. Members are indexed by view-local rank, so st must
// have capacity ≥ n. Must be called before Run, like Observe; a nil st
// (or not calling ObserveHost) keeps the zero-overhead disabled path.
func (c *Comm) ObserveHost(st *hostobs.BarrierStats) {
	if st != nil && st.Cap() < c.n {
		panic(fmt.Sprintf("cluster: ObserveHost stats capacity %d < %d nodes", st.Cap(), c.n))
	}
	c.hostStats = st
	// The root arena already exists (New creates it); retrofit it and any
	// other pre-Run arenas. Arenas created later pick st up in arenaFor.
	c.arenaMu.Lock()
	for _, a := range c.arenas {
		a.bar.stats = st
	}
	c.arenaMu.Unlock()
}

// RecordSchedule attaches a schedule recorder: each node's goroutine then
// appends its abstract event stream (compute, p2p, collectives) into its
// own per-rank buffer, and every collective arena registers its view
// membership, so the finished recording can be re-costed under any
// CostModel (see internal/replay). Must be called before Run; a nil
// recorder (or not calling RecordSchedule) keeps the zero-overhead
// disabled path.
func (c *Comm) RecordSchedule(rec *replay.Recorder) {
	if rec == nil {
		return
	}
	c.rep = rec
	rec.Init(c.n)
	// The root arena already exists (New creates it); retrofit it and any
	// other pre-Run arenas. Arenas created later register in arenaFor.
	c.arenaMu.Lock()
	for _, a := range c.arenas {
		a.repID = rec.RegisterView(a.ranks)
	}
	c.arenaMu.Unlock()
}

// N returns the number of nodes.
func (c *Comm) N() int { return c.n }

// Model returns the cost model.
func (c *Comm) Model() CostModel { return c.model }

// errAborted is the panic value used to unwind node goroutines after another
// node has failed with a real error.
type abortedError struct{ cause error }

func (e abortedError) Error() string { return "cluster: aborted: " + e.cause.Error() }

// errCollectiveAborted is the shared cause of collective-abort unwinds; a
// single value so the (already-failing) abort path allocates nothing.
var errCollectiveAborted = errors.New("collective aborted")

// abortedPanic is the value node goroutines unwind with when a collective is
// torn down by another node's failure.
func abortedPanic() abortedError { return abortedError{cause: errCollectiveAborted} }

func (c *Comm) fail(err error) {
	c.abortOnce.Do(func() {
		c.abortErr.Store(err)
		close(c.abort)
		// Wake every arena so nodes parked in a collective barrier unwind
		// instead of waiting for a member that will never arrive.
		c.arenaMu.Lock()
		for _, a := range c.arenas {
			a.abortAll()
		}
		c.arenaMu.Unlock()
	})
}

// arenaFor returns the collective arena shared by all members of the given
// global-rank set, creating it on first use. Callers on every member pass
// the identical ascending rank list (the view's), so the key is canonical.
func (c *Comm) arenaFor(ranks []int) *arena {
	key := make([]byte, 0, 4*len(ranks))
	for _, r := range ranks {
		key = strconv.AppendInt(key, int64(r), 36)
		key = append(key, ',')
	}
	c.arenaMu.Lock()
	defer c.arenaMu.Unlock()
	a, ok := c.arenas[string(key)]
	if !ok {
		a = newArena(len(ranks), c.hostStats)
		a.ranks = append([]int(nil), ranks...)
		if c.rep != nil {
			// Assigned inside the critical section, so every member that
			// looks the arena up afterwards sees the id.
			a.repID = c.rep.RegisterView(a.ranks)
		}
		select {
		case <-c.abort: // run already failed: new arenas are born aborted
			a.abortAll()
		default:
		}
		c.arenas[string(key)] = a
	}
	return a
}

// Run executes body on every node concurrently and waits for completion.
// A panic on any node aborts the whole run and is returned as an error.
// Run may be called once per Comm.
func (c *Comm) Run(body func(nd *Node)) error {
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(c.n)
	for g := 0; g < c.n; g++ {
		go func(g int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if ab, ok := r.(abortedError); ok {
						_ = ab // secondary victim of another node's failure
						return
					}
					c.fail(fmt.Errorf("cluster: node %d panicked: %v", g, r))
				}
			}()
			nd := &Node{
				comm:  c,
				view:  c.rootView,
				g:     g,
				state: &nodeState{trace: c.rec.Rank(g), sched: c.rep.Rank(g)},
			}
			body(nd)
			c.finalClocks[g] = nd.state.clock
		}(g)
	}
	wg.Wait()
	c.wallTime = time.Since(start)
	if err, ok := c.abortErr.Load().(error); ok {
		return err
	}
	return nil
}

// MaxClock returns the maximum simulated clock over all nodes after Run —
// the modeled runtime of the program.
func (c *Comm) MaxClock() float64 {
	m := 0.0
	for _, t := range c.finalClocks {
		if t > m {
			m = t
		}
	}
	return m
}

// WallTime returns the host wall-clock duration of Run.
func (c *Comm) WallTime() time.Duration { return c.wallTime }

// BytesSent returns the total point-to-point payload bytes sent.
func (c *Comm) BytesSent() int64 { return c.bytesSent.Load() }

// MsgsSent returns the total number of point-to-point messages.
func (c *Comm) MsgsSent() int64 { return c.msgsSent.Load() }

// view maps local ranks of a (sub-)communicator to global ranks. Views are
// immutable after construction and may be shared across goroutines.
type view struct {
	ranks []int       // global rank per local rank, ascending
	pos   map[int]int // global rank -> local rank
	ar    *arena      // the members' shared collective arena
}

func identityView(n int) *view {
	v := &view{ranks: make([]int, n), pos: make(map[int]int, n)}
	for i := 0; i < n; i++ {
		v.ranks[i] = i
		v.pos[i] = i
	}
	return v
}

// arena is the shared-memory collective workspace of one communicator view:
// per-member slot buffers and clock cells, synchronized by a combining-tree
// barrier (see barrier.go). A collective is ONE barrier phase: every member publishes its
// contribution and entry clock into the current bank, the barrier flips, and
// every member reads all slots (reducing in ascending rank order, so results
// are bitwise deterministic). Slots are double-buffered in two banks that
// alternate per collective: a member racing ahead into collective k+1 writes
// the other bank, so it cannot clobber a slot a slower member is still
// reading in collective k — that's what makes the single barrier sufficient.
// (A member can be at most one collective ahead: the barrier of k+1 cannot
// pass until everyone arrived there, and arriving at k+1 implies having
// finished reading bank k.)
type arena struct {
	n      int
	slots  [2][][]float64 // per-bank, per-member contribution scratch (owner-written)
	clocks [2][]float64   // per-bank, per-member simulated clock at entry

	ranks []int // global members, ascending (the canonical arena key)
	repID int32 // replay view id (meaningful only while recording)

	bar *barrier
}

func newArena(n int, st *hostobs.BarrierStats) *arena {
	a := &arena{n: n, bar: newBarrier(n, st)}
	for b := range a.slots {
		a.slots[b] = make([][]float64, n)
		a.clocks[b] = make([]float64, n)
	}
	return a
}

// slot returns member me's contribution buffer in bank b resized to n
// floats, growing its capacity on first use only — steady-state collectives
// reuse it.
func (a *arena) slot(b, me, n int) []float64 {
	s := a.slots[b]
	if cap(s[me]) < n {
		s[me] = make([]float64, n)
	}
	s[me] = s[me][:n]
	return s[me]
}

// await is one barrier phase for view-rank me. Publishing before await and
// reading after it is race-free (the barrier's atomic arrival chain orders
// the slot writes before the reads). An abort (another node failed) unparks
// every waiter with the abort panic.
func (a *arena) await(me int) {
	a.bar.await(me)
}

func (a *arena) abortAll() {
	a.bar.abort()
}

// nodeState is the per-goroutine mutable state shared between a node and all
// sub-communicator handles derived from it.
type nodeState struct {
	clock     float64
	flops     float64
	bytesSent int64
	msgsSent  int64
	trace     *obs.Rank    // nil unless Comm.Observe attached a recorder
	sched     *replay.Rank // nil unless Comm.RecordSchedule attached one
}

// Node is one simulated cluster node's handle, bound to a communicator view.
// All methods must be called only from the goroutine running this node.
type Node struct {
	comm  *Comm
	view  *view
	g     int // global rank
	state *nodeState

	collSeq uint64 // collectives completed on this view (selects the arena bank)
}

// Rank returns this node's rank within the current view.
func (nd *Node) Rank() int { return nd.view.pos[nd.g] }

// Size returns the number of nodes in the current view.
func (nd *Node) Size() int { return len(nd.view.ranks) }

// GlobalRank returns the node's rank in the top-level communicator.
func (nd *Node) GlobalRank() int { return nd.g }

// GlobalOf returns the top-level rank of the given view rank — the inverse
// of the mapping Sub establishes. Callers deriving a sub-communicator from
// view-relative rank lists translate through this before calling Sub.
func (nd *Node) GlobalOf(viewRank int) int { return nd.view.ranks[viewRank] }

// Clock returns the node's simulated time.
func (nd *Node) Clock() float64 { return nd.state.clock }

// AddClock advances the simulated clock by dt seconds (dt ≥ 0).
func (nd *Node) AddClock(dt float64) {
	if dt < 0 {
		panic("cluster: negative clock advance")
	}
	nd.state.clock += dt
	nd.state.sched.ClockAdd(dt)
}

// SyncClock raises the simulated clock to at least t.
func (nd *Node) SyncClock(t float64) {
	if t > nd.state.clock {
		nd.state.clock = t
	}
	nd.state.sched.ClockSync(t)
}

// Compute advances the clock by flops·FlopTime and accounts the flops.
func (nd *Node) Compute(flops float64) {
	nd.state.flops += flops
	nd.state.clock += flops * nd.comm.model.FlopTime
	nd.state.sched.Compute(flops)
}

// Flops returns the total flops accounted on this node.
func (nd *Node) Flops() float64 { return nd.state.flops }

// BytesSent returns the payload bytes this node has sent.
func (nd *Node) BytesSent() int64 { return nd.state.bytesSent }

// MsgsSent returns the number of point-to-point messages this node has
// sent (collective traffic accounted as the retired star's messages).
func (nd *Node) MsgsSent() int64 { return nd.state.msgsSent }

// Trace returns the node's observability buffer — nil when no recorder is
// attached, which every obs.Rank method tolerates, so callers instrument
// unconditionally. Shared across Sub handles (it lives on nodeState).
func (nd *Node) Trace() *obs.Rank { return nd.state.trace }

// Sched returns the node's replay event stream — nil when no schedule
// recorder is attached, which every replay.Rank method tolerates, so the
// core layer marks its recovery sections unconditionally. Shared across
// Sub handles (it lives on nodeState).
func (nd *Node) Sched() *replay.Rank { return nd.state.sched }

// account books msgs messages of bytes total payload against the node and
// the machine-wide counters (the modeled traffic of a collective that the
// arena executes without actual messages).
func (nd *Node) account(msgs, bytes int64) {
	nd.comm.bytesSent.Add(bytes)
	nd.comm.msgsSent.Add(msgs)
	nd.state.bytesSent += bytes
	nd.state.msgsSent += msgs
}

// Sub returns a handle bound to the sub-communicator consisting of the given
// global ranks (ascending order defines the new rank order). It returns nil
// if this node is not a member. The handle shares the node's clock and
// counters; all members share one collective arena, looked up by the rank
// set. The reconstruction phase uses this to run a distributed inner solver
// on the replacement nodes only.
func (nd *Node) Sub(globalRanks []int) *Node {
	v := &view{ranks: append([]int(nil), globalRanks...), pos: make(map[int]int, len(globalRanks))}
	prev := -1
	for i, r := range v.ranks {
		if r <= prev || r < 0 || r >= nd.comm.n {
			panic(fmt.Sprintf("cluster: Sub ranks must be ascending and in range, got %v", globalRanks))
		}
		prev = r
		v.pos[r] = i
	}
	if _, ok := v.pos[nd.g]; !ok {
		return nil
	}
	v.ar = nd.comm.arenaFor(v.ranks)
	return &Node{comm: nd.comm, view: v, g: nd.g, state: nd.state}
}

// send delivers a message to the local-rank dst of the current view. The
// payload is copied — callers may reuse their buffers — but the copy lands
// in a buffer drawn from the destination's free list, so steady-state
// traffic does not allocate. The receiver may hand the buffer back with
// Release once it is done with the payload.
func (nd *Node) send(dst, tag int, floats []float64, ints []int, clocked bool) {
	gdst := nd.view.ranks[dst]
	ep := nd.comm.endpoints[gdst]
	m := message{tag: tag, sendTime: nd.state.clock}
	if floats != nil {
		buf := ep.getBuf(len(floats))
		copy(buf, floats)
		m.floats = buf
	}
	if ints != nil {
		m.ints = append(make([]int, 0, len(ints)), ints...)
	}
	if clocked {
		nd.state.clock += nd.comm.model.Overhead
		m.sendTime = nd.state.clock
	}
	nd.account(1, int64(m.bytes()))
	nd.state.sched.Send(gdst, int64(m.bytes()))
	box := ep.box(nd.g)
	select {
	case box <- m: // fast path: box has room (it almost always does)
	default:
		select {
		case box <- m:
		case <-nd.comm.abort:
			panic(abortedError{cause: fmt.Errorf("send to %d aborted", gdst)})
		}
	}
}

// recv receives the next message from local-rank src of the current view.
// The message's tag must equal tag; a mismatch indicates a protocol bug and
// panics. If clocked, the receiver's clock advances to the modeled delivery
// time.
func (nd *Node) recv(src, tag int, clocked bool) message {
	gsrc := nd.view.ranks[src]
	box := nd.comm.endpoints[nd.g].box(gsrc)
	var m message
	select {
	case m = <-box: // fast path: message already delivered
	default:
		select {
		case m = <-box:
		case <-nd.comm.abort:
			panic(abortedError{cause: fmt.Errorf("recv from %d aborted", gsrc)})
		}
	}
	if m.tag != tag {
		panic(fmt.Sprintf("cluster: node %d expected tag %d from %d, got %d", nd.g, tag, gsrc, m.tag))
	}
	if clocked {
		arrival := m.sendTime + nd.comm.model.Latency + float64(m.bytes())*nd.comm.model.BytePeriod
		if arrival > nd.state.clock {
			nd.state.clock = arrival
		}
	}
	nd.state.sched.Recv(gsrc)
	return m
}

// Send transmits floats to view-rank dst with the given tag.
func (nd *Node) Send(dst, tag int, floats []float64) {
	nd.send(dst, tag, floats, nil, true)
}

// SendFI transmits a float payload plus an integer payload.
func (nd *Node) SendFI(dst, tag int, floats []float64, ints []int) {
	nd.send(dst, tag, floats, ints, true)
}

// Recv receives a float payload from view-rank src with the given tag. The
// returned slice is owned by the caller; pass it to Release when done to
// recycle it, or retain it indefinitely.
func (nd *Node) Recv(src, tag int) []float64 {
	return nd.recv(src, tag, true).floats
}

// Release returns a payload slice previously obtained from Recv / RecvFI /
// Request.Wait to this node's free list, so a later sender to this node can
// reuse it. Releasing a buffer the caller still reads from — or one not
// obtained from a receive — corrupts future messages; when in doubt, don't:
// unreleased buffers are simply collected by the GC.
func (nd *Node) Release(buf []float64) {
	nd.comm.endpoints[nd.g].putBuf(buf)
}

// Request is the handle of a nonblocking receive posted with IRecv. The zero
// value is invalid; requests are single-use and must not be shared across
// goroutines (like every Node method, they belong to the node's goroutine).
type Request struct {
	nd       *Node
	src, tag int
	done     bool
	floats   []float64
}

// ISend transmits floats to view-rank dst without blocking. The payload is
// captured at post time (the simulated NIC owns a copy), so the caller may
// reuse the buffer immediately — the MPI_Isend+MPI_Wait pair collapses into
// one call under this machine model. The sender's clock is charged the
// per-message Overhead at post, exactly as for Send.
func (nd *Node) ISend(dst, tag int, floats []float64) {
	nd.send(dst, tag, floats, nil, true)
}

// IRecv posts a nonblocking receive for a message from view-rank src with
// the given tag. Posting is free on the simulated clock; the LogGP delivery
// cost is applied by Wait. Compute performed between IRecv and Wait
// genuinely hides the message latency: the clock at Wait becomes
// max(own clock, sender clock + Latency + bytes·BytePeriod), so local work
// advancing the own clock overlaps with the modeled message flight instead
// of stacking on top of it.
func (nd *Node) IRecv(src, tag int) Request {
	return Request{nd: nd, src: src, tag: tag}
}

// Wait completes the receive, advancing the node's clock to the modeled
// delivery time if the message is still in flight, and returns the payload.
// Waiting twice returns the same payload without further clock effect.
func (r *Request) Wait() []float64 {
	if r.nd == nil {
		panic("cluster: Wait on a zero Request")
	}
	if !r.done {
		r.floats = r.nd.recv(r.src, r.tag, true).floats
		r.done = true
	}
	return r.floats
}

// RecvFI receives a float plus integer payload.
func (nd *Node) RecvFI(src, tag int) ([]float64, []int) {
	m := nd.recv(src, tag, true)
	return m.floats, m.ints
}

// Op selects the reduction operator for Allreduce.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func (op Op) apply(dst, src []float64) {
	switch op {
	case OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case OpMax:
		for i := range dst {
			dst[i] = math.Max(dst[i], src[i])
		}
	case OpMin:
		for i := range dst {
			dst[i] = math.Min(dst[i], src[i])
		}
	default:
		panic(fmt.Sprintf("cluster: unknown op %d", op))
	}
}

// collectiveCost returns the modeled time for one size-`bytes` collective
// over n participants: ⌈log₂ n⌉ rounds of latency plus serialization.
func (nd *Node) collectiveCost(bytes int) float64 {
	n := nd.Size()
	rounds := math.Ceil(math.Log2(float64(max(n, 2))))
	return rounds * (nd.comm.model.Latency + nd.comm.model.Overhead + float64(bytes)*nd.comm.model.BytePeriod)
}

// Allreduce reduces x elementwise over all view members with operator op,
// leaving the identical result in x on every member. Every member applies
// the reduction over the arena slots in ascending rank order — the same
// order the retired rank-0 star used — so results are bitwise deterministic
// and identical on all members. All members' clocks synchronize to
// max(member clocks) + collectiveCost; the traffic the star implementation
// would have sent (each member one payload up, rank 0 one payload down per
// member) is accounted so byte counters stay comparable run over run.
// Steady-state calls perform no heap allocation.
func (nd *Node) Allreduce(op Op, x []float64) {
	n := nd.Size()
	if n == 1 {
		return // no communication, no clock effect
	}
	me := nd.Rank()
	a := nd.view.ar
	bank := int(nd.collSeq & 1)
	nd.collSeq++

	slot := a.slot(bank, me, len(x))
	copy(slot, x)
	t0 := nd.state.clock
	a.clocks[bank][me] = nd.state.clock
	a.await(me) // all contributions published

	slots, clocks := a.slots[bank], a.clocks[bank]
	copy(x, slots[0][:len(x)])
	tmax := clocks[0]
	for r := 1; r < n; r++ {
		op.apply(x, slots[r][:len(x)])
		if clocks[r] > tmax {
			tmax = clocks[r]
		}
	}
	nd.state.clock = tmax + nd.collectiveCost(8*len(x))
	nd.state.trace.Span(obs.KindAllreduce, t0, nd.state.clock)

	payloadBytes := int64(8 * (len(x) + 1)) // star payload: body + clock
	if me == 0 {
		nd.account(int64(n-1), int64(n-1)*payloadBytes)
	} else {
		nd.account(1, payloadBytes)
	}
	if s := nd.state.sched; s != nil {
		msgs, bytes := int64(1), payloadBytes
		if me == 0 {
			msgs, bytes = int64(n-1), int64(n-1)*payloadBytes
		}
		s.Collective(replay.KindAllreduce, nd.view.ar.repID, int64(8*len(x)), msgs, bytes, false)
	}
}

// AllreduceScalar reduces a single value.
func (nd *Node) AllreduceScalar(op Op, v float64) float64 {
	buf := [1]float64{v}
	nd.Allreduce(op, buf[:])
	return buf[0]
}

// Barrier synchronizes all view members (an empty allreduce).
func (nd *Node) Barrier() {
	nd.Allreduce(OpMax, nil)
}

// Bcast broadcasts data from view-rank root to all members, in place.
func (nd *Node) Bcast(root int, data []float64) {
	n := nd.Size()
	if n == 1 {
		return
	}
	me := nd.Rank()
	a := nd.view.ar
	bank := int(nd.collSeq & 1)
	nd.collSeq++
	t0 := nd.state.clock
	if me == root {
		slot := a.slot(bank, me, len(data))
		copy(slot, data)
		a.clocks[bank][me] = nd.state.clock
	}
	a.await(me)
	cost := nd.collectiveCost(8 * len(data))
	if me == root {
		nd.state.clock += cost
		nd.account(int64(n-1), int64(n-1)*int64(8*(len(data)+1)))
	} else {
		copy(data, a.slots[bank][root][:len(data)])
		nd.state.clock = math.Max(a.clocks[bank][root], nd.state.clock) + cost
	}
	nd.state.trace.Span(obs.KindBcast, t0, nd.state.clock)
	if s := nd.state.sched; s != nil {
		var msgs, bytes int64
		if me == root {
			msgs, bytes = int64(n-1), int64(n-1)*int64(8*(len(data)+1))
		}
		s.Collective(replay.KindBcast, a.repID, int64(8*len(data)), msgs, bytes, me == root)
	}
}

// Gather collects each member's data slice at view-rank root. On root it
// returns one slice per rank (rank order); on other members it returns nil.
func (nd *Node) Gather(root int, data []float64) [][]float64 {
	n := nd.Size()
	me := nd.Rank()
	a := nd.view.ar
	bank := int(nd.collSeq & 1)
	nd.collSeq++

	slot := a.slot(bank, me, len(data))
	copy(slot, data)
	t0 := nd.state.clock
	a.clocks[bank][me] = nd.state.clock
	if s := nd.state.sched; s != nil {
		// Recorded at entry (before the non-root overhead advance): the
		// replay publishes the entry clock, then applies the same
		// per-role arithmetic. Bytes is this member's payload — the root
		// replay sums the non-root payloads for its serialization term.
		var msgs, bytes int64
		if me != root {
			msgs, bytes = 1, int64(8*(len(data)+1))
		}
		s.Collective(replay.KindGather, a.repID, int64(8*len(data)), msgs, bytes, me == root)
	}
	if me != root {
		// The sender's clock advances only by its own send overhead; gather
		// is not synchronizing for non-roots on the simulated clock (the
		// arena barrier is a host-side artifact with no modeled cost).
		nd.account(1, int64(8*(len(data)+1)))
		nd.state.clock += nd.comm.model.Overhead
	}
	a.await(me)
	var out [][]float64
	if me == root {
		slots, clocks := a.slots[bank], a.clocks[bank]
		out = make([][]float64, n)
		tmax := nd.state.clock
		totalBytes := 0
		for r := 0; r < n; r++ {
			out[r] = append([]float64(nil), slots[r]...)
			if r == root {
				continue
			}
			if clocks[r] > tmax {
				tmax = clocks[r]
			}
			totalBytes += 8 * len(slots[r])
		}
		nd.state.clock = tmax + nd.comm.model.Latency*math.Ceil(math.Log2(float64(max(n, 2)))) +
			float64(totalBytes)*nd.comm.model.BytePeriod
	}
	nd.state.trace.Span(obs.KindGather, t0, nd.state.clock)
	return out
}
