package cluster

import (
	"runtime"
	"sync/atomic"
	"time"

	"esrp/internal/hostobs"
)

// barrier is the scalable synchronization core of a collective arena. It
// replaces the retired single-mutex sense-reversing barrier (one sync.Cond
// all rank goroutines serialized on) with a combining tree plus per-member
// park cells:
//
//   - Arrival climbs a tree of padded atomic counters with fan-in
//     combineArity: each member increments its leaf node, the last arriver
//     at every node propagates one increment to the parent, and the member
//     that completes the root owns the phase release. High rank counts
//     therefore contend on ⌈n/arity⌉ separate cache lines instead of one
//     mutex.
//   - Release is a single atomic phase-counter increment that every waiter
//     observes with a read-only spin on its own cached copy, followed by a
//     wake sweep over the members that declared themselves parked.
//   - Waiting is bounded spin-then-park. When the arena's members fit the
//     host's GOMAXPROCS, waiters spin briefly (the releaser is running on
//     another P and the flip is imminent). When ranks oversubscribe the
//     cores — the common shape for large simulated clusters — spinning
//     only steals cycles from the goroutines that still have to arrive, so
//     waiters yield to the scheduler a few times and then park on their
//     own one-token channel.
//
// Parking protocol: a waiter publishes parked=1, rechecks the phase, and
// blocks on its wake channel. A releaser (phase flip or abort) sweeps the
// members and sends one token to every cell it swaps 1→0. The swap
// arbitrates the race with a waiter that saw the flip on its recheck: the
// swap's winner owns the token — releaser wins → it sends and the waiter
// must drain; waiter wins → no token is in flight. Every store(1) is
// therefore matched by at most one token, consumed before the next
// store(1), so a one-slot channel never blocks a releaser.
//
// The barrier carries no payload semantics: slot publication before arrival
// and slot reads after release are ordered by the atomic arrival chain
// (every member's slot writes happen before its leaf increment; the root
// completion happens after all increments; the phase flip happens after the
// root completion; every reader observes the flip).
type barrier struct {
	n     int
	tree  []combineNode
	cells []parkCell

	phase   atomic.Uint32 // completed barrier phases; the "sense" waiters watch
	aborted atomic.Bool

	// spin is the bounded pre-park spin budget, chosen at construction:
	// positive when the members fit the host Ps, zero (yield-then-park)
	// when the ranks oversubscribe them.
	spin int

	// stats is the optional host-telemetry sink (nil = uninstrumented; the
	// hot path then pays one nil check and touches no clock). arrivals is
	// the within-phase arrival sequence feeding the arrival-order skew
	// tally; the phase releaser resets it before flipping the phase, which
	// is safe because every next-phase arrival happens after observing the
	// flip.
	stats    *hostobs.BarrierStats
	arrivals atomic.Int32
}

// combineArity is the fan-in of the arrival tree. 4 keeps the tree shallow
// (⌈log₄ n⌉ levels) while spreading arrivals over n/4 leaf cache lines.
const combineArity = 4

// spinBudget bounds the pre-park spin when the arena's members fit the
// host's Ps; yieldBudget bounds the Gosched rounds when they do not.
const (
	spinBudget  = 192
	yieldBudget = 4
)

// combineNode is one arrival counter of the tree, padded to its own cache
// line pair so concurrent leaf increments never false-share.
type combineNode struct {
	_      [64]byte
	count  atomic.Int32
	fanIn  int32
	parent int32 // index into tree; -1 = root
	_      [40]byte
}

// parkCell is one member's park flag and wake token slot, padded like the
// tree nodes: the owner writes parked, releasers swap it, and the channel
// carries exactly the swap winner's token.
type parkCell struct {
	_      [64]byte
	parked atomic.Uint32
	wake   chan struct{}
	_      [48]byte
}

// newBarrier builds the combining tree for n members (n ≥ 1). st is the
// optional telemetry sink (nil = uninstrumented); when set, it must have
// capacity for at least n members.
func newBarrier(n int, st *hostobs.BarrierStats) *barrier {
	b := &barrier{n: n, cells: make([]parkCell, n), stats: st}
	for i := range b.cells {
		b.cells[i].wake = make(chan struct{}, 1)
	}
	// Level sizes: ⌈n/arity⌉ leaves, then ⌈size/arity⌉ per level up to one
	// root. Nodes are laid out level by level so a node's parent is in the
	// next level's block.
	sizes := []int{(n + combineArity - 1) / combineArity}
	for sizes[len(sizes)-1] > 1 {
		s := sizes[len(sizes)-1]
		sizes = append(sizes, (s+combineArity-1)/combineArity)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	b.tree = make([]combineNode, total)
	offset := 0
	childCount := n // fan-in source of the current level (members for leaves)
	for lvl, s := range sizes {
		next := offset + s
		for j := 0; j < s; j++ {
			nd := &b.tree[offset+j]
			fan := combineArity
			if rem := childCount - j*combineArity; rem < fan {
				fan = rem
			}
			nd.fanIn = int32(fan)
			if lvl == len(sizes)-1 {
				nd.parent = -1
			} else {
				nd.parent = int32(next + j/combineArity)
			}
		}
		offset = next
		childCount = s
	}
	if n <= runtime.GOMAXPROCS(0) {
		b.spin = spinBudget
	}
	return b
}

// arrive signals member me's arrival and reports whether me completed the
// phase (and therefore owns the release). The last arriver at each tree
// node resets it for the next phase before climbing — safe because the
// phase flip (and hence any next-phase arrival) happens after every reset.
func (b *barrier) arrive(me int) bool {
	idx := int32(me / combineArity)
	for {
		nd := &b.tree[idx]
		if nd.count.Add(1) < nd.fanIn {
			return false
		}
		nd.count.Store(0)
		if nd.parent < 0 {
			return true
		}
		idx = nd.parent
	}
}

// await is one full barrier phase for member me: arrive, and either release
// everyone (last member) or wait for the release. It panics with the abort
// error when the arena was aborted — callers unwind exactly as the retired
// cond-based barrier did.
func (b *barrier) await(me int) {
	if b.aborted.Load() {
		panic(abortedPanic())
	}
	st := b.stats // nil on the uninstrumented path: no clock reads below
	if st != nil {
		st.Arrive(me, b.arrivals.Add(1)-1)
	}
	p := b.phase.Load()
	if b.arrive(me) {
		if st != nil {
			// Reset the arrival sequence for the next phase before the flip:
			// next-phase arrivals happen-after observing the flip, so none
			// can race the reset.
			b.arrivals.Store(0)
			st.Release(me)
		}
		b.phase.Add(1)
		b.wakeParked()
		return
	}
	var t0 time.Time
	if b.spin > 0 {
		if st != nil {
			t0 = time.Now()
		}
		for i := 0; i < b.spin; i++ {
			if b.phase.Load() != p {
				if st != nil {
					st.Wait(me, hostobs.RegimeSpin, int64(time.Since(t0)))
				}
				return
			}
			if b.aborted.Load() {
				panic(abortedPanic())
			}
		}
		if st != nil {
			st.Wait(me, hostobs.RegimeSpin, int64(time.Since(t0)))
		}
	}
	if st != nil {
		t0 = time.Now()
	}
	for i := 0; i < yieldBudget; i++ {
		runtime.Gosched()
		if b.phase.Load() != p {
			if st != nil {
				st.Wait(me, hostobs.RegimeYield, int64(time.Since(t0)))
			}
			return
		}
		if b.aborted.Load() {
			panic(abortedPanic())
		}
	}
	if st != nil {
		st.Wait(me, hostobs.RegimeYield, int64(time.Since(t0)))
		t0 = time.Now()
	}
	cell := &b.cells[me]
	for b.phase.Load() == p && !b.aborted.Load() {
		cell.parked.Store(1)
		if b.phase.Load() != p || b.aborted.Load() {
			if cell.parked.Swap(0) == 1 {
				break // reclaimed the park before any releaser saw it
			}
			<-cell.wake // a releaser won the swap; its token is in flight
			break
		}
		<-cell.wake
	}
	if st != nil {
		st.Wait(me, hostobs.RegimePark, int64(time.Since(t0)))
	}
	if b.aborted.Load() {
		panic(abortedPanic())
	}
}

// wakeParked sends one token to every member that declared itself parked.
// Called by the phase releaser and by abort; the parked swap guarantees at
// most one token per park declaration, so the one-slot sends never block.
func (b *barrier) wakeParked() {
	for i := range b.cells {
		if b.cells[i].parked.Swap(0) == 1 {
			b.cells[i].wake <- struct{}{}
		}
	}
}

// abort marks the barrier dead and unparks every waiter; spinning waiters
// observe the flag directly. Arrivals after abort panic on entry.
func (b *barrier) abort() {
	b.stats.Abort() // nil-safe
	b.aborted.Store(true)
	b.wakeParked()
}
