package cluster

import (
	"math"
	"sync"
	"testing"
	"time"

	"esrp/internal/hostobs"
)

// TestBarrierStatsWaitBounded drives an instrumented barrier over many
// phases and checks the accounting invariants the observability layer
// promises: per-member phase counts match, exactly one member releases each
// phase, arrival positions cover [0, n), and — the headline invariant — the
// summed wait time never exceeds members × wall time.
func TestBarrierStatsWaitBounded(t *testing.T) {
	const n, phases = 5, 300
	st := hostobs.NewBarrierStats(n)
	b := newBarrier(n, st)
	start := time.Now()
	var wg sync.WaitGroup
	for me := 0; me < n; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			for p := 0; p < phases; p++ {
				b.await(me)
			}
		}(me)
	}
	wg.Wait()
	wall := time.Since(start)

	snap := st.Snapshot()
	var releases, arrivalSum int64
	for m, ms := range snap.Members {
		if ms.Phases != phases {
			t.Errorf("member %d recorded %d phases, want %d", m, ms.Phases, phases)
		}
		releases += ms.Releases
		arrivalSum += int64(math.Round(ms.MeanArrival * float64(ms.Phases)))
		if ms.MeanArrival < 0 || ms.MeanArrival > n-1 {
			t.Errorf("member %d mean arrival %g outside [0,%d]", m, ms.MeanArrival, n-1)
		}
	}
	if releases != phases {
		t.Errorf("%d releases recorded, want exactly one per phase (%d)", releases, phases)
	}
	// Each phase's arrival positions are a permutation of 0..n-1, so the
	// total across members is phases * n*(n-1)/2.
	if want := int64(phases * n * (n - 1) / 2); arrivalSum != want {
		t.Errorf("arrival position sum %d, want %d", arrivalSum, want)
	}
	if got, limit := st.TotalWaitNs(), int64(n)*wall.Nanoseconds(); got > limit {
		t.Errorf("total recorded wait %dns exceeds members×wall %dns", got, limit)
	}
	if st.Aborts() != 0 {
		t.Errorf("aborts %d, want 0", st.Aborts())
	}
}

// TestBarrierStatsAbort pins that an aborted barrier counts the abort and
// that recording stops cleanly (waiters unwind without corrupting stats).
func TestBarrierStatsAbort(t *testing.T) {
	const n = 4
	st := hostobs.NewBarrierStats(n)
	b := newBarrier(n, st)
	var wg sync.WaitGroup
	for me := 0; me < n-1; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			defer func() { recover() }()
			b.await(me)
		}(me)
	}
	time.Sleep(10 * time.Millisecond)
	b.abort()
	wg.Wait()
	if got := st.Aborts(); got != 1 {
		t.Errorf("aborts %d, want 1", got)
	}
}

// TestObserveHostOnComm runs collectives through an observed Comm and
// checks the stats surface real barrier traffic, including the root arena
// that exists before ObserveHost is called (the retrofit path).
func TestObserveHostOnComm(t *testing.T) {
	const n = 4
	c := New(n, DefaultCostModel())
	st := hostobs.NewBarrierStats(n)
	c.ObserveHost(st)
	err := c.Run(func(nd *Node) {
		for i := 0; i < 10; i++ {
			nd.Barrier()
			nd.AllreduceScalar(OpSum, float64(nd.Rank()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	var phases int64
	for _, ms := range snap.Members {
		phases += ms.Phases
	}
	if phases == 0 {
		t.Fatal("observed Comm recorded no barrier phases")
	}
	if st.TotalWaitNs() < 0 {
		t.Errorf("negative total wait %d", st.TotalWaitNs())
	}
}

// TestObserveHostCapacityPanics pins the guard against undersized stats.
func TestObserveHostCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ObserveHost with capacity < n did not panic")
		}
	}()
	New(4, DefaultCostModel()).ObserveHost(hostobs.NewBarrierStats(2))
}

// TestBarrierUninstrumentedAllocFree pins that with stats disabled the
// barrier's await path does not allocate and never reads the wall clock —
// the zero-overhead-when-off contract.
func TestBarrierUninstrumentedAllocFree(t *testing.T) {
	b := newBarrier(1, nil)
	if allocs := testing.AllocsPerRun(100, func() { b.await(0) }); allocs != 0 {
		t.Errorf("uninstrumented await allocates %.1f per phase, want 0", allocs)
	}
	bi := newBarrier(1, hostobs.NewBarrierStats(1))
	if allocs := testing.AllocsPerRun(100, func() { bi.await(0) }); allocs != 0 {
		t.Errorf("instrumented await allocates %.1f per phase, want 0", allocs)
	}
}
