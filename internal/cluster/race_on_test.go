//go:build race

package cluster

// raceEnabled reports that the race detector is active: allocation gates
// are skipped because the detector's instrumentation allocates on its own.
const raceEnabled = true
