package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBarrierPhases drives the combining-tree barrier directly over many
// phases and member counts, checking the release ordering contract: every
// write a member performs before await(p) is visible to every member after
// await(p). The tree shapes covered include a single leaf (n ≤ 4), a
// two-level tree, ragged last nodes, and a three-level tree.
func TestBarrierPhases(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 16, 17, 33} {
		t.Run(fmt.Sprintf("n-%d", n), func(t *testing.T) {
			b := newBarrier(n, nil)
			var counter atomic.Int64
			const phases = 200
			var wg sync.WaitGroup
			for me := 0; me < n; me++ {
				wg.Add(1)
				go func(me int) {
					defer wg.Done()
					for p := 0; p < phases; p++ {
						counter.Add(1)
						b.await(me)
						// All n arrivals of phase p happened before any
						// release; racing ahead only adds more.
						if got := counter.Load(); got < int64((p+1)*n) {
							t.Errorf("member %d phase %d: counter %d < %d", me, p, got, (p+1)*n)
							return
						}
					}
				}(me)
			}
			wg.Wait()
		})
	}
}

// TestBarrierAbortUnparks parks all but one member, aborts, and requires
// every waiter to unwind with the abort panic — the teardown path that keeps
// a failed run from deadlocking on a member that will never arrive. It also
// pins that await after abort panics immediately.
func TestBarrierAbortUnparks(t *testing.T) {
	const n = 5
	b := newBarrier(n, nil)
	var aborted atomic.Int32
	var wg sync.WaitGroup
	for me := 0; me < n-1; me++ { // member n-1 never arrives
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			defer func() {
				if _, ok := recover().(abortedError); ok {
					aborted.Add(1)
				}
			}()
			b.await(me)
		}(me)
	}
	time.Sleep(20 * time.Millisecond) // let the waiters spin down and park
	b.abort()
	wg.Wait()
	if got := aborted.Load(); got != n-1 {
		t.Fatalf("%d members unwound with the abort panic, want %d", got, n-1)
	}
	func() {
		defer func() {
			if _, ok := recover().(abortedError); !ok {
				t.Error("await after abort did not panic with abortedError")
			}
		}()
		b.await(n - 1)
	}()
}

// TestBarrierHammer exercises the full collective stack under both waiting
// regimes of the barrier: ranks ≫ GOMAXPROCS (the yield-then-park
// oversubscription policy every large simulated cluster hits) and ranks ≤
// GOMAXPROCS (the bounded-spin path). GOMAXPROCS is set before New because
// the barrier chooses its spin budget at construction. Primarily a -race
// trap for the arrival tree, the park/wake protocol and the slot banks.
func TestBarrierHammer(t *testing.T) {
	cases := []struct {
		name  string
		procs int
		n     int
	}{
		{"oversubscribed-1proc", 1, 33},
		{"oversubscribed-4proc", 4, 33},
		{"spinning-4proc", 4, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prev := runtime.GOMAXPROCS(tc.procs)
			defer runtime.GOMAXPROCS(prev)
			n := tc.n
			c := New(n, testModel())
			err := c.Run(func(nd *Node) {
				buf := make([]float64, 3)
				for round := 0; round < 250; round++ {
					for i := range buf {
						buf[i] = float64(nd.Rank() + round + i)
					}
					nd.Allreduce(OpSum, buf)
					want := float64(n*(n-1)/2 + n*round) // Σ ranks + n·round
					if buf[0] != want {
						panic(fmt.Sprintf("round %d: allreduce head %v, want %v", round, buf[0], want))
					}

					root := round % n
					data := []float64{0}
					if nd.Rank() == root {
						data[0] = float64(round)
					}
					nd.Bcast(root, data)
					if data[0] != float64(round) {
						panic(fmt.Sprintf("round %d: bcast got %v", round, data))
					}

					nd.Barrier()
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
