package replay

import (
	"fmt"
	"math"
)

// This file is the re-coster: it replays a Schedule's per-rank event
// streams under a CostModel, running the identical clock arithmetic the
// cluster ran when the schedule was recorded — delivery = sendTime +
// Latency + bytes·BytePeriod with a receiver max-merge at the matched
// receive, ⌈log₂ n⌉·(Latency + Overhead + bytes·BytePeriod) collective
// rounds over the max of the members' entry clocks, per-message sender
// Overhead — plus the recovery-time bookkeeping internal/core marks into
// the stream. No numeric solver state exists here at all; a replay is pure
// O(events) float arithmetic.
//
// Scheduling: ranks are swept round-robin, each executing events until it
// blocks (a receive whose matching send has not been replayed yet, or a
// collective missing members). Every sweep retires all newly unblocked
// work, so the total cost is O(events) amortized — the sweep count is
// bounded by the schedule's synchronization depth, and a blocked rank's
// re-check is O(1). A recorded schedule cannot deadlock (replay blocking
// is a subset of the original run's blocking); the no-progress check below
// guards against truncated or hand-edited schedules.

// sendRec is one in-flight point-to-point message: payload size and the
// sender's clock after the send overhead.
type sendRec struct {
	bytes    int64
	sendTime float64
}

// pairQueue is the per-(src,dst) FIFO box of the replay machine.
type pairQueue struct {
	q    []sendRec
	head int
}

// collInst is one collective instance shared by a view's members,
// identified by (view, per-member completion count on that view).
type collInst struct {
	entries  []float64 // per local rank: clock at entry
	bytes    []int64   // per local rank: gather payload bytes
	present  []bool
	arrived  int
	departed int
	rootSeen bool
	rootIn   float64 // root's entry clock (bcast)
}

// rankState is one rank's replay cursor.
type rankState struct {
	pc        int
	clock     float64
	rt        float64 // recoveryTime accumulator
	t0        float64 // last RecStart clock
	envIter   int32
	envStart  float64
	rtFinal   bool
	published bool // current collective event already contributed
	envs      []EnvSpan
}

// machine is the full replay state for one Recost call.
type machine struct {
	s     *Schedule
	m     CostModel
	rs    []rankState
	pairs map[int64]*pairQueue
	insts map[int64]*collInst
	seq   [][]int32       // per rank, per view: collectives completed
	pos   []map[int32]int // per view: global rank → local rank
	acctB int64
	acctM int64
}

// Recost replays the schedule under machine model m. Safe for concurrent
// calls on one Schedule (the schedule is read-only; all replay state is
// local to the call).
func (s *Schedule) Recost(m CostModel) (*Replayed, error) {
	mach := &machine{
		s:     s,
		m:     m,
		rs:    make([]rankState, s.Nodes),
		pairs: make(map[int64]*pairQueue),
		insts: make(map[int64]*collInst),
		seq:   make([][]int32, s.Nodes),
		pos:   make([]map[int32]int, len(s.Views)),
	}
	for g := range mach.seq {
		mach.seq[g] = make([]int32, len(s.Views))
	}
	for v, members := range s.Views {
		mach.pos[v] = make(map[int32]int, len(members))
		for i, g := range members {
			mach.pos[v][int32(g)] = i
		}
	}

	for {
		progress, done := false, true
		for g := range mach.rs {
			adv, err := mach.runRank(g)
			if err != nil {
				return nil, err
			}
			if adv {
				progress = true
			}
			if mach.rs[g].pc < len(s.Events[g]) {
				done = false
			}
		}
		if done {
			break
		}
		if !progress {
			return nil, mach.deadlockErr()
		}
	}

	out := &Replayed{
		Clocks:    make([]float64, s.Nodes),
		Envelopes: make([][]EnvSpan, s.Nodes),
		BytesSent: mach.acctB,
		MsgsSent:  mach.acctM,
		Events:    s.NumEvents(),
	}
	for g := range mach.rs {
		out.Clocks[g] = mach.rs[g].clock
		out.Envelopes[g] = mach.rs[g].envs
		if mach.rs[g].clock > out.SimTime {
			out.SimTime = mach.rs[g].clock
		}
	}
	// The final recovery time is the OpMax allreduce over the surviving
	// view: the fold starts from the lowest-ranked participant and applies
	// math.Max in ascending rank order, mirroring the arena reduction.
	first := true
	for g := range mach.rs {
		if !mach.rs[g].rtFinal {
			continue
		}
		if first {
			out.RecoveryTime = mach.rs[g].rt
			first = false
		} else {
			out.RecoveryTime = math.Max(out.RecoveryTime, mach.rs[g].rt)
		}
	}
	return out, nil
}

// runRank executes rank g's events until it blocks or finishes, reporting
// whether it made any progress.
func (mc *machine) runRank(g int) (bool, error) {
	st := &mc.rs[g]
	evs := mc.s.Events[g]
	advanced := false
	for st.pc < len(evs) {
		ok, err := mc.step(g, st, &evs[st.pc])
		if err != nil {
			return advanced, fmt.Errorf("replay: rank %d event %d (%v): %w", g, st.pc, evs[st.pc].Kind, err)
		}
		if !ok {
			return advanced, nil
		}
		st.pc++
		advanced = true
	}
	return advanced, nil
}

// step executes one event; false means blocked (retry later).
func (mc *machine) step(g int, st *rankState, e *Event) (bool, error) {
	m := mc.m
	switch e.Kind {
	case KindCompute:
		st.clock += e.Val * m.FlopTime
	case KindClockAdd:
		st.clock += e.Val
	case KindClockSync:
		if e.Val > st.clock {
			st.clock = e.Val
		}
	case KindSend:
		st.clock += m.Overhead
		q := mc.pair(g, int(e.Peer))
		q.q = append(q.q, sendRec{bytes: e.Bytes, sendTime: st.clock})
		mc.account(st, e)
	case KindRecv:
		q := mc.pair(int(e.Peer), g)
		if q.head >= len(q.q) {
			return false, nil
		}
		sr := q.q[q.head]
		q.head++
		if q.head == len(q.q) { // drained: recycle the slice
			q.q, q.head = q.q[:0], 0
		}
		arrival := sr.sendTime + m.Latency + float64(sr.bytes)*m.BytePeriod
		if arrival > st.clock {
			st.clock = arrival
		}
	case KindAllreduce, KindBcast, KindGather:
		return mc.stepCollective(g, st, e)
	case KindRecStart:
		st.t0 = st.clock
	case KindRecEnd:
		st.rt = math.Max(st.rt, st.clock-st.t0)
	case KindRecCharge:
		st.rt += e.Val
	case KindEnvStart:
		st.envIter, st.envStart = e.Peer, st.clock
	case KindEnvEnd:
		if st.clock > st.envStart { // obs.Envelope drops empty spans
			st.envs = append(st.envs, EnvSpan{Iter: int(st.envIter), Start: st.envStart, End: st.clock})
		}
	case KindRTFinal:
		st.rtFinal = true
	default:
		return false, fmt.Errorf("unknown event kind %d", e.Kind)
	}
	return true, nil
}

// stepCollective replays one member's half of a collective.
func (mc *machine) stepCollective(g int, st *rankState, e *Event) (bool, error) {
	v := int(e.View)
	if v < 0 || v >= len(mc.s.Views) {
		return false, fmt.Errorf("view %d out of range", v)
	}
	members := mc.s.Views[v]
	n := len(members)
	me, ok := mc.pos[v][int32(g)]
	if !ok {
		return false, fmt.Errorf("rank not a member of view %d %v", v, members)
	}
	key := int64(v)<<32 | int64(mc.seq[g][v])
	inst := mc.insts[key]
	if inst == nil {
		inst = &collInst{
			entries: make([]float64, n),
			bytes:   make([]int64, n),
			present: make([]bool, n),
		}
		mc.insts[key] = inst
	}

	complete := func() {
		st.published = false
		mc.seq[g][v]++
		inst.departed++
		if inst.departed == n {
			delete(mc.insts, key)
		}
	}

	switch e.Kind {
	case KindAllreduce:
		if !st.published {
			inst.entries[me], inst.present[me] = st.clock, true
			inst.arrived++
			st.published = true
		}
		if inst.arrived < n {
			return false, nil
		}
		tmax := inst.entries[0]
		for r := 1; r < n; r++ {
			if inst.entries[r] > tmax {
				tmax = inst.entries[r]
			}
		}
		st.clock = tmax + mc.m.collectiveCost(n, e.Bytes)
		mc.account(st, e)
		complete()

	case KindBcast:
		if e.Root {
			inst.rootSeen, inst.rootIn = true, st.clock
			cost := mc.m.collectiveCost(n, e.Bytes)
			st.clock += cost
			mc.account(st, e)
			complete()
			return true, nil
		}
		if !inst.rootSeen {
			return false, nil
		}
		st.clock = math.Max(inst.rootIn, st.clock) + mc.m.collectiveCost(n, e.Bytes)
		mc.account(st, e)
		complete()

	case KindGather:
		if !st.published {
			inst.entries[me], inst.bytes[me], inst.present[me] = st.clock, e.Bytes, true
			inst.arrived++
			st.published = true
			if e.Root {
				inst.rootSeen = true
			}
		}
		if !e.Root {
			// Non-roots only pay their send overhead; gather does not
			// synchronize them on the simulated clock.
			mc.account(st, e)
			st.clock += mc.m.Overhead
			complete()
			return true, nil
		}
		if inst.arrived < n {
			return false, nil
		}
		tmax := st.clock
		totalBytes := 0
		for r := 0; r < n; r++ {
			if r == me {
				continue
			}
			if inst.entries[r] > tmax {
				tmax = inst.entries[r]
			}
			totalBytes += int(inst.bytes[r])
		}
		st.clock = tmax + mc.m.Latency*math.Ceil(math.Log2(float64(max(n, 2)))) +
			float64(totalBytes)*mc.m.BytePeriod
		mc.account(st, e)
		complete()
	}
	return true, nil
}

// pair returns the (src,dst) FIFO, creating it on first use.
func (mc *machine) pair(src, dst int) *pairQueue {
	key := int64(src)*int64(mc.s.Nodes) + int64(dst)
	q := mc.pairs[key]
	if q == nil {
		q = &pairQueue{}
		mc.pairs[key] = q
	}
	return q
}

// account books one event's modeled traffic.
func (mc *machine) account(st *rankState, e *Event) {
	mc.acctM += e.AcctMsgs
	mc.acctB += e.AcctBytes
}

// deadlockErr describes where every unfinished rank is stuck — reached only
// for schedules that were truncated or edited after recording.
func (mc *machine) deadlockErr() error {
	msg := "replay: no progress (truncated or inconsistent schedule); stuck:"
	for g := range mc.rs {
		if mc.rs[g].pc < len(mc.s.Events[g]) {
			e := mc.s.Events[g][mc.rs[g].pc]
			msg += fmt.Sprintf(" rank %d at event %d (%v)", g, mc.rs[g].pc, e.Kind)
		}
	}
	return fmt.Errorf("%s", msg)
}
