package replay

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Serialization of schedules: a compact self-describing binary format for
// resumable sweeps and artifacts, and plain JSON for diffing and ad-hoc
// tooling. Both round-trip bit-exactly (floats travel as their IEEE-754
// bit patterns), so a deserialized schedule re-costs to the identical
// bytes the in-memory one does.
//
// Binary layout (all ints unsigned varints unless noted):
//
//	magic "ESRPRPL1" (8 bytes)
//	nodes, nviews
//	per view:  nmembers, then member ranks delta-encoded (rank − prev − 1
//	           for the tail, absolute for the first; views are ascending)
//	per rank:  nevents, then per event: kind byte followed by the fields
//	           that kind defines (see decodeEvent); float64s are fixed
//	           8-byte little-endian bit patterns
const binaryMagic = "ESRPRPL1"

// WriteBinary encodes the schedule in the compact binary format.
func (s *Schedule) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		bw.Write(scratch[:n])
	}
	putFloat := func(f float64) {
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(f))
		bw.Write(scratch[:8])
	}
	putUvarint(uint64(s.Nodes))
	putUvarint(uint64(len(s.Views)))
	for _, members := range s.Views {
		putUvarint(uint64(len(members)))
		prev := -1
		for _, g := range members {
			putUvarint(uint64(g - prev - 1))
			prev = g
		}
	}
	for _, evs := range s.Events {
		putUvarint(uint64(len(evs)))
		for i := range evs {
			e := &evs[i]
			bw.WriteByte(byte(e.Kind))
			switch e.Kind {
			case KindCompute, KindClockAdd, KindClockSync, KindRecCharge:
				putFloat(e.Val)
			case KindSend:
				putUvarint(uint64(e.Peer))
				putUvarint(uint64(e.Bytes))
			case KindRecv:
				putUvarint(uint64(e.Peer))
			case KindAllreduce, KindBcast, KindGather:
				root := byte(0)
				if e.Root {
					root = 1
				}
				bw.WriteByte(root)
				putUvarint(uint64(e.View))
				putUvarint(uint64(e.Bytes))
				putUvarint(uint64(e.AcctMsgs))
				putUvarint(uint64(e.AcctBytes))
			case KindEnvStart:
				putUvarint(uint64(e.Peer))
			case KindRecStart, KindRecEnd, KindEnvEnd, KindRTFinal:
				// kind byte only
			default:
				return fmt.Errorf("replay: cannot encode event kind %d", e.Kind)
			}
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a schedule written by WriteBinary.
func ReadBinary(r io.Reader) (*Schedule, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("replay: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("replay: bad magic %q (not a schedule file)", magic)
	}
	getUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	getFloat := func() (float64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
	}

	nodes, err := getUvarint()
	if err != nil {
		return nil, err
	}
	const sane = 1 << 24 // corrupt-length guard for preallocation
	if nodes == 0 || nodes > sane {
		return nil, fmt.Errorf("replay: implausible node count %d", nodes)
	}
	nviews, err := getUvarint()
	if err != nil {
		return nil, err
	}
	if nviews > sane {
		return nil, fmt.Errorf("replay: implausible view count %d", nviews)
	}
	s := &Schedule{Nodes: int(nodes), Views: make([][]int, nviews), Events: make([][]Event, nodes)}
	for v := range s.Views {
		nm, err := getUvarint()
		if err != nil {
			return nil, err
		}
		if nm > nodes {
			return nil, fmt.Errorf("replay: view %d has %d members > %d nodes", v, nm, nodes)
		}
		members := make([]int, nm)
		prev := -1
		for i := range members {
			d, err := getUvarint()
			if err != nil {
				return nil, err
			}
			members[i] = prev + 1 + int(d)
			prev = members[i]
		}
		s.Views[v] = members
	}
	for g := range s.Events {
		ne, err := getUvarint()
		if err != nil {
			return nil, err
		}
		if ne > 1<<32 {
			return nil, fmt.Errorf("replay: implausible event count %d", ne)
		}
		evs := make([]Event, ne)
		for i := range evs {
			kb, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			e := &evs[i]
			e.Kind = Kind(kb)
			switch e.Kind {
			case KindCompute, KindClockAdd, KindClockSync, KindRecCharge:
				if e.Val, err = getFloat(); err != nil {
					return nil, err
				}
			case KindSend:
				var p, b uint64
				if p, err = getUvarint(); err != nil {
					return nil, err
				}
				if b, err = getUvarint(); err != nil {
					return nil, err
				}
				e.Peer, e.Bytes = int32(p), int64(b)
				e.AcctMsgs, e.AcctBytes = 1, e.Bytes
			case KindRecv:
				var p uint64
				if p, err = getUvarint(); err != nil {
					return nil, err
				}
				e.Peer = int32(p)
			case KindAllreduce, KindBcast, KindGather:
				rb, err := br.ReadByte()
				if err != nil {
					return nil, err
				}
				e.Root = rb != 0
				var v, b, am, ab uint64
				if v, err = getUvarint(); err != nil {
					return nil, err
				}
				if b, err = getUvarint(); err != nil {
					return nil, err
				}
				if am, err = getUvarint(); err != nil {
					return nil, err
				}
				if ab, err = getUvarint(); err != nil {
					return nil, err
				}
				e.View, e.Bytes = int32(v), int64(b)
				e.AcctMsgs, e.AcctBytes = int64(am), int64(ab)
			case KindEnvStart:
				var p uint64
				if p, err = getUvarint(); err != nil {
					return nil, err
				}
				e.Peer = int32(p)
			case KindRecStart, KindRecEnd, KindEnvEnd, KindRTFinal:
			default:
				return nil, fmt.Errorf("replay: rank %d event %d: unknown kind %d", g, i, kb)
			}
		}
		s.Events[g] = evs
	}
	return s, nil
}

// EncodeBinary returns the schedule's compact binary encoding as one byte
// slice — the same bytes WriteBinary streams. The content-addressed campaign
// cache frames these bytes (length + checksum) for its schedule tier, so
// there is exactly one serializer for schedules on disk.
func (s *Schedule) EncodeBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeBinary decodes a schedule from its compact binary encoding.
func DecodeBinary(data []byte) (*Schedule, error) {
	return ReadBinary(bytes.NewReader(data))
}

// WriteJSON emits the schedule as JSON (large but diffable; floats are
// round-trip exact under Go's JSON shortest-representation encoding).
func (s *Schedule) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(s)
}

// ReadJSON decodes a schedule written by WriteJSON.
func ReadJSON(r io.Reader) (*Schedule, error) {
	var s Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("replay: decoding JSON schedule: %w", err)
	}
	return &s, nil
}
