// Package replay records one solve's abstract event schedule and re-costs
// it under arbitrary machine parameters in O(events), without re-running
// any numeric work.
//
// The LogGP clock of internal/cluster is pure arithmetic applied to a fixed
// communication schedule: which events a solve executes — every Compute,
// point-to-point message, collective, and recovery section — depends only
// on (matrix, strategy, T, φ, failure timeline), never on the machine
// parameters (FlopTime, Latency, BytePeriod, Overhead). A Recorder attached
// via cluster.Comm.RecordSchedule captures each rank's program-order event
// stream plus the membership of every communicator view; Schedule.Recost
// then replays the identical clock arithmetic under any CostModel,
// reproducing SimTime, BytesSent, MsgsSent, RecoveryTime and the per-event
// recovery envelopes bit-for-bit when replayed under the recording model.
//
// The package follows the same nil-handle contract as internal/obs: a nil
// *Recorder yields nil *Rank handles, every Rank method tolerates a nil
// receiver, and a solve without a recorder pays only dead nil-checks on the
// hot path — zero allocations, bit-identical results.
//
// replay deliberately imports nothing from internal/cluster (cluster
// imports replay); CostModel is a structurally identical twin of
// cluster.CostModel so call sites convert with a plain Go conversion.
package replay

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// CostModel mirrors cluster.CostModel field-for-field (same names, types,
// order), so cluster.CostModel values convert directly:
// replay.CostModel(m).
type CostModel struct {
	FlopTime   float64 // seconds per floating-point operation
	Latency    float64 // end-to-end latency per message (α)
	BytePeriod float64 // seconds per payload byte (1/bandwidth, β)
	Overhead   float64 // sender-side CPU overhead per message (o)
}

// Kind labels one recorded event.
type Kind uint8

// Event kinds. The first group is emitted by internal/cluster's clock
// primitives; the Rec*/Env*/RTFinal markers are emitted by internal/core
// around its recovery protocols so a replay can rebuild Result.RecoveryTime
// and the per-event recovery envelopes without touching solver state.
const (
	KindInvalid   Kind = iota
	KindCompute        // Val = flops; clock += flops·FlopTime
	KindClockAdd       // Val = dt (model-independent, e.g. DetectionTime)
	KindClockSync      // Val = t; clock = max(clock, t) — recorded verbatim
	KindSend           // Peer = dst global rank, Bytes = payload
	KindRecv           // Peer = src global rank
	KindAllreduce      // View, Bytes = reduced payload, Acct* = star traffic
	KindBcast          // View, Root, Bytes = broadcast payload, Acct*
	KindGather         // View, Root, Bytes = this member's payload, Acct*
	KindRecStart       // recovery protocol entry: t0 = clock
	KindRecEnd         // recoveryTime = max(recoveryTime, clock − t0)
	KindRecCharge      // Val = dt; recoveryTime += dt (detection charge)
	KindEnvStart       // Peer = failure iteration; envelope opens at clock
	KindEnvEnd         // envelope closes at clock
	KindRTFinal        // rank contributes recoveryTime to the final OpMax
)

func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindClockAdd:
		return "clockadd"
	case KindClockSync:
		return "clocksync"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindAllreduce:
		return "allreduce"
	case KindBcast:
		return "bcast"
	case KindGather:
		return "gather"
	case KindRecStart:
		return "recstart"
	case KindRecEnd:
		return "recend"
	case KindRecCharge:
		return "reccharge"
	case KindEnvStart:
		return "envstart"
	case KindEnvEnd:
		return "envend"
	case KindRTFinal:
		return "rtfinal"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one entry of a rank's program-order stream. Only the fields the
// Kind documents are meaningful; the rest stay zero (and are elided by the
// binary encoding).
type Event struct {
	Kind      Kind    `json:"k"`
	Root      bool    `json:"root,omitempty"` // bcast/gather: this member is the root
	Peer      int32   `json:"peer,omitempty"` // send dst / recv src / envelope iteration
	View      int32   `json:"view,omitempty"` // collective communicator view id
	Bytes     int64   `json:"bytes,omitempty"`
	AcctMsgs  int64   `json:"amsgs,omitempty"`  // modeled messages booked by this member
	AcctBytes int64   `json:"abytes,omitempty"` // modeled payload bytes booked
	Val       float64 `json:"val,omitempty"`    // flops / dt / sync target
}

// Recorder captures one solve's schedule. Attach with
// cluster.Comm.RecordSchedule before Run; one Recorder records one solve.
// View registration is the only synchronized path (arenas are created
// lazily under the cluster's arena lock); event appends are per-rank
// single-writer, so recording adds no cross-rank contention.
type Recorder struct {
	mu    sync.Mutex
	n     int
	ranks []*Rank
	views [][]int // view id → ascending global member ranks
}

// NewRecorder returns an empty recorder; the cluster sizes it in
// RecordSchedule.
func NewRecorder() *Recorder { return &Recorder{} }

// Init sizes the recorder for an n-rank cluster. Called by
// cluster.Comm.RecordSchedule; calling it twice resets the recording.
func (rc *Recorder) Init(n int) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.n = n
	rc.ranks = make([]*Rank, n)
	for g := range rc.ranks {
		rc.ranks[g] = &Rank{}
	}
	rc.views = rc.views[:0]
}

// Rank returns global rank g's event stream handle — nil when the recorder
// itself is nil, which every Rank method tolerates.
func (rc *Recorder) Rank(g int) *Rank {
	if rc == nil || g < 0 || g >= len(rc.ranks) {
		return nil
	}
	return rc.ranks[g]
}

// RegisterView records a communicator view's membership (ascending global
// ranks) and returns its id. The cluster calls it once per collective
// arena; ids are assigned in creation order (racy across runs for
// sub-communicators) and canonicalized by Schedule.
func (rc *Recorder) RegisterView(ranks []int) int32 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	id := int32(len(rc.views))
	rc.views = append(rc.views, append([]int(nil), ranks...))
	return id
}

// Schedule freezes the recording into its serializable, canonical form.
// Views are reordered lexicographically by member list and event View
// fields remapped, so the bytes of a schedule are independent of the
// (racy) arena-creation order of the recorded run. Call after the solve
// returns; the recorder must not be recording concurrently.
func (rc *Recorder) Schedule() *Schedule {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	perm := make([]int, len(rc.views))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		return lessRanks(rc.views[perm[a]], rc.views[perm[b]])
	})
	remap := make([]int32, len(rc.views))
	views := make([][]int, len(rc.views))
	for newID, oldID := range perm {
		remap[oldID] = int32(newID)
		views[newID] = append([]int(nil), rc.views[oldID]...)
	}
	s := &Schedule{Nodes: rc.n, Views: views, Events: make([][]Event, rc.n)}
	for g, r := range rc.ranks {
		evs := append([]Event(nil), r.ev...)
		for i := range evs {
			switch evs[i].Kind {
			case KindAllreduce, KindBcast, KindGather:
				evs[i].View = remap[evs[i].View]
			}
		}
		s.Events[g] = evs
	}
	return s
}

// lessRanks orders member lists lexicographically (views have distinct
// member sets, so this is a strict total order).
func lessRanks(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Rank is one global rank's append-only event stream. All methods are
// single-goroutine (the rank's own) and tolerate a nil receiver — the
// zero-overhead-off contract.
type Rank struct {
	ev []Event
}

// Compute records a Compute(flops) clock advance.
func (r *Rank) Compute(flops float64) {
	if r == nil {
		return
	}
	r.ev = append(r.ev, Event{Kind: KindCompute, Val: flops})
}

// ClockAdd records an AddClock(dt) advance (model-independent).
func (r *Rank) ClockAdd(dt float64) {
	if r == nil {
		return
	}
	r.ev = append(r.ev, Event{Kind: KindClockAdd, Val: dt})
}

// ClockSync records a SyncClock(t). The target t is a clock value of the
// recorded run, so a schedule containing sync events only re-costs exactly
// under the recording model; the solver does not use SyncClock.
func (r *Rank) ClockSync(t float64) {
	if r == nil {
		return
	}
	r.ev = append(r.ev, Event{Kind: KindClockSync, Val: t})
}

// Send records a clocked point-to-point send of bytes payload to global
// rank dst (books 1 message + bytes, like the cluster).
func (r *Rank) Send(dst int, bytes int64) {
	if r == nil {
		return
	}
	r.ev = append(r.ev, Event{Kind: KindSend, Peer: int32(dst), Bytes: bytes, AcctMsgs: 1, AcctBytes: bytes})
}

// Recv records a clocked receive from global rank src; payload size and
// send time come from the matched send at replay.
func (r *Rank) Recv(src int) {
	if r == nil {
		return
	}
	r.ev = append(r.ev, Event{Kind: KindRecv, Peer: int32(src)})
}

// Collective records this member's half of one collective on the given
// view: kind, the payload size its clock arithmetic uses, the modeled star
// traffic it books, and whether it is the root (bcast/gather).
func (r *Rank) Collective(kind Kind, view int32, bytes, acctMsgs, acctBytes int64, root bool) {
	if r == nil {
		return
	}
	r.ev = append(r.ev, Event{Kind: kind, View: view, Bytes: bytes, AcctMsgs: acctMsgs, AcctBytes: acctBytes, Root: root})
}

// RecStart marks a recovery protocol's t0 := Clock() sample.
func (r *Rank) RecStart() {
	if r == nil {
		return
	}
	r.ev = append(r.ev, Event{Kind: KindRecStart})
}

// RecEnd marks recoveryTime = max(recoveryTime, Clock() − t0).
func (r *Rank) RecEnd() {
	if r == nil {
		return
	}
	r.ev = append(r.ev, Event{Kind: KindRecEnd})
}

// RecCharge marks recoveryTime += dt (the detection-time charge).
func (r *Rank) RecCharge(dt float64) {
	if r == nil {
		return
	}
	r.ev = append(r.ev, Event{Kind: KindRecCharge, Val: dt})
}

// EnvStart opens failure event j's recovery envelope at the current clock.
func (r *Rank) EnvStart(j int) {
	if r == nil {
		return
	}
	r.ev = append(r.ev, Event{Kind: KindEnvStart, Peer: int32(j)})
}

// EnvEnd closes the open recovery envelope at the current clock.
func (r *Rank) EnvEnd() {
	if r == nil {
		return
	}
	r.ev = append(r.ev, Event{Kind: KindEnvEnd})
}

// RTFinal marks that this rank contributes its recoveryTime to the final
// OpMax reduction (retired ranks never reach it).
func (r *Rank) RTFinal() {
	if r == nil {
		return
	}
	r.ev = append(r.ev, Event{Kind: KindRTFinal})
}

// Schedule is a recorded solve's full event schedule: per-rank program-order
// streams plus the membership of every communicator view, in canonical
// order. It is immutable once built; Recost may be called concurrently from
// multiple goroutines (each replay allocates its own machine state).
type Schedule struct {
	Nodes  int       `json:"nodes"`
	Views  [][]int   `json:"views"`
	Events [][]Event `json:"events"`
}

// NumEvents returns the total event count across ranks.
func (s *Schedule) NumEvents() int {
	n := 0
	for _, evs := range s.Events {
		n += len(evs)
	}
	return n
}

// EnvSpan is one replayed recovery envelope: failure event Iter's recovery
// section on one rank, in simulated seconds.
type EnvSpan struct {
	Iter  int     `json:"iter"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Replayed is the outcome of re-costing a schedule under one machine model:
// the replayed counterparts of Result.SimTime / RecoveryTime / BytesSent /
// MsgsSent, per-rank final clocks, and per-failure-event recovery envelopes
// (indexed by global rank, zero-length spans dropped like obs.Envelope).
type Replayed struct {
	SimTime      float64
	RecoveryTime float64
	BytesSent    int64
	MsgsSent     int64
	Clocks       []float64
	Envelopes    [][]EnvSpan
	Events       int
}

// collectiveCost mirrors cluster.Node.collectiveCost bit-for-bit.
func (m CostModel) collectiveCost(n int, bytes int64) float64 {
	rounds := math.Ceil(math.Log2(float64(max(n, 2))))
	return rounds * (m.Latency + m.Overhead + float64(bytes)*m.BytePeriod)
}
