// Benchmarks regenerating the paper's tables and figures (reduced scale so
// `go test -bench=. -benchmem` completes in minutes; run cmd/esrpbench for
// the full default-scale constellation), plus ablation benches for the
// design choices called out in DESIGN.md §5.
//
// Reported custom metrics:
//
//	simsec/solve      simulated (LogGP-modeled) runtime of one solve
//	overhead%         relative overhead over the non-resilient reference
//	iters             PCG iterations of the final trajectory
package esrp_test

import (
	"testing"
	"time"

	"esrp"
	"esrp/internal/aspmv"
	"esrp/internal/dist"
)

// benchEmilia returns the reduced-scale Emilia_923 analog shared by the
// benchmarks: 4 096 rows, ~100k nnz.
func benchEmilia() *esrp.CSR { return esrp.EmiliaLike(16, 16, 16, 923) }

// benchAudikw returns the reduced-scale audikw_1 analog: 5 184 rows, ~390k
// nnz, denser rows. (12³ vertices keep the reference iteration count above
// 2×T for every benchmarked interval, so failure injection always lands
// after a completed storage stage.)
func benchAudikw() *esrp.CSR { return esrp.AudikwLike(12, 12, 12, 3, 944) }

const benchNodes = 16

// BenchmarkTable1Matrices measures the matrix generators that stand in for
// the paper's Table 1 inventory.
func BenchmarkTable1Matrices(b *testing.B) {
	b.Run("EmiliaLike", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := benchEmilia()
			b.ReportMetric(float64(a.NNZ()), "nnz")
		}
	})
	b.Run("AudikwLike", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := benchAudikw()
			b.ReportMetric(float64(a.NNZ()), "nnz")
		}
	})
}

// benchConstellation runs the reduced constellation of Tables 2/3 for one
// matrix and reports the headline metrics.
func benchConstellation(b *testing.B, name string, a *esrp.CSR) *esrp.ExperimentReport {
	b.Helper()
	var rep *esrp.ExperimentReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = esrp.RunExperiment(esrp.ExperimentSpec{
			Name:   name,
			Matrix: a,
			Nodes:  benchNodes,
			Ts:     []int{1, 20, 50},
			Phis:   []int{1, 3},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.RefTime, "simsec/ref")
	b.ReportMetric(float64(rep.RefIters), "iters")
	return rep
}

// BenchmarkTable2EmiliaLike regenerates the Table 2 constellation (reduced
// sweep) for the Emilia analog.
func BenchmarkTable2EmiliaLike(b *testing.B) {
	rep := benchConstellation(b, "Emilia-like", benchEmilia())
	if len(rep.ESRP) == 0 || len(rep.IMCR) == 0 {
		b.Fatal("empty constellation")
	}
}

// BenchmarkTable3AudikwLike regenerates the Table 3 constellation (reduced
// sweep) for the audikw analog.
func BenchmarkTable3AudikwLike(b *testing.B) {
	rep := benchConstellation(b, "audikw-like", benchAudikw())
	if len(rep.ESRP) == 0 || len(rep.IMCR) == 0 {
		b.Fatal("empty constellation")
	}
}

// BenchmarkTable4ResidualDrift measures the drift metric (Eq. 2) of
// failure-free and failure runs, the data behind Table 4.
func BenchmarkTable4ResidualDrift(b *testing.B) {
	a := benchEmilia()
	rhs := esrp.RHSOnes(a.Rows)
	for i := 0; i < b.N; i++ {
		ref, err := esrp.Solve(esrp.Config{A: a, B: rhs, Nodes: benchNodes})
		if err != nil {
			b.Fatal(err)
		}
		fr, err := esrp.Solve(esrp.Config{
			A: a, B: rhs, Nodes: benchNodes,
			Strategy: esrp.StrategyESRP, T: 20, Phi: 1,
			Failure: &esrp.FailureSpec{Iteration: ref.Iterations / 2, Ranks: []int{0}},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ref.Drift, "refdrift")
		b.ReportMetric(fr.Drift, "faildrift")
	}
}

// benchFigurePoint measures one figure marker: a (strategy, T, φ) pair with
// and without a failure, reporting the overhead percentages of Fig. 2/3.
func benchFigurePoint(b *testing.B, a *esrp.CSR, strat esrp.Strategy, t, phi int, fail bool) {
	b.Helper()
	rhs := esrp.RHSOnes(a.Rows)
	ref, err := esrp.Solve(esrp.Config{A: a, B: rhs, Nodes: benchNodes})
	if err != nil {
		b.Fatal(err)
	}
	cfg := esrp.Config{
		A: a, B: rhs, Nodes: benchNodes,
		Strategy: strat, T: t, Phi: phi,
	}
	if fail {
		cfg.Failure = &esrp.FailureSpec{Iteration: ref.Iterations / 2, Ranks: locRanks(phi)}
	}
	b.ResetTimer()
	var sim float64
	for i := 0; i < b.N; i++ {
		res, err := esrp.Solve(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("did not converge")
		}
		sim = res.SimTime
	}
	b.ReportMetric(sim, "simsec/solve")
	b.ReportMetric(100*(sim-ref.SimTime)/ref.SimTime, "overhead%")
}

func locRanks(psi int) []int {
	ranks := make([]int, psi)
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}

// BenchmarkFig2EmiliaLike regenerates the Fig. 2 series points (ESRP vs ESR
// vs IMCR across T, failure-free and with failures) on the Emilia analog.
func BenchmarkFig2EmiliaLike(b *testing.B) {
	a := benchEmilia()
	for _, sub := range []struct {
		name  string
		strat esrp.Strategy
		t     int
		fail  bool
	}{
		{"ESR/ff", esrp.StrategyESR, 1, false},
		{"ESR/fail", esrp.StrategyESR, 1, true},
		{"ESRP-T20/ff", esrp.StrategyESRP, 20, false},
		{"ESRP-T20/fail", esrp.StrategyESRP, 20, true},
		{"ESRP-T50/ff", esrp.StrategyESRP, 50, false},
		{"ESRP-T50/fail", esrp.StrategyESRP, 50, true},
		{"IMCR-T20/ff", esrp.StrategyIMCR, 20, false},
		{"IMCR-T20/fail", esrp.StrategyIMCR, 20, true},
		{"IMCR-T50/ff", esrp.StrategyIMCR, 50, false},
		{"IMCR-T50/fail", esrp.StrategyIMCR, 50, true},
	} {
		b.Run(sub.name, func(b *testing.B) {
			benchFigurePoint(b, a, sub.strat, sub.t, 1, sub.fail)
		})
	}
}

// BenchmarkFig3AudikwLike regenerates the Fig. 3 series points on the audikw
// analog.
func BenchmarkFig3AudikwLike(b *testing.B) {
	a := benchAudikw()
	for _, sub := range []struct {
		name  string
		strat esrp.Strategy
		t     int
		fail  bool
	}{
		{"ESR/ff", esrp.StrategyESR, 1, false},
		{"ESR/fail", esrp.StrategyESR, 1, true},
		{"ESRP-T20/ff", esrp.StrategyESRP, 20, false},
		{"ESRP-T20/fail", esrp.StrategyESRP, 20, true},
		{"IMCR-T20/ff", esrp.StrategyIMCR, 20, false},
		{"IMCR-T20/fail", esrp.StrategyIMCR, 20, true},
	} {
		b.Run(sub.name, func(b *testing.B) {
			benchFigurePoint(b, a, sub.strat, sub.t, 1, sub.fail)
		})
	}
}

// BenchmarkAblationAugmentNaive compares the paper's multiplicity-counted
// resilient-copy routing (Section 2.2.1) against the naive ship-everything
// scheme, in failure-free ESRP runs — the traffic difference shows up
// directly in the modeled runtime.
func BenchmarkAblationAugmentNaive(b *testing.B) {
	a := benchEmilia()
	rhs := esrp.RHSOnes(a.Rows)
	for _, sub := range []struct {
		name  string
		naive bool
	}{
		{"counted", false},
		{"naive", true},
	} {
		b.Run(sub.name, func(b *testing.B) {
			var sim float64
			var bytes int64
			for i := 0; i < b.N; i++ {
				// φ = 1 on a banded matrix is where the multiplicity
				// counting matters: the plain product already replicates
				// boundary planes, which the counted scheme skips and the
				// naive scheme re-ships. (At φ ≥ 2 nearly every entry needs
				// extra copies under either scheme and the plans coincide.)
				res, err := esrp.Solve(esrp.Config{
					A: a, B: rhs, Nodes: benchNodes,
					Strategy: esrp.StrategyESR, Phi: 1,
					NaiveAugment: sub.naive,
				})
				if err != nil {
					b.Fatal(err)
				}
				sim, bytes = res.SimTime, res.BytesSent
			}
			b.ReportMetric(sim, "simsec/solve")
			b.ReportMetric(float64(bytes), "bytes/solve")
		})
	}
}

// BenchmarkAblationInnerSolveGathered compares the distributed inner
// reconstruction solve (Alg. 2 line 8 across all replacement nodes) against
// gathering the lost block to a single node and solving sequentially.
func BenchmarkAblationInnerSolveGathered(b *testing.B) {
	a := benchEmilia()
	rhs := esrp.RHSOnes(a.Rows)
	ref, err := esrp.Solve(esrp.Config{A: a, B: rhs, Nodes: benchNodes})
	if err != nil {
		b.Fatal(err)
	}
	for _, sub := range []struct {
		name   string
		gather bool
	}{
		{"distributed", false},
		{"gathered", true},
	} {
		b.Run(sub.name, func(b *testing.B) {
			var rec float64
			for i := 0; i < b.N; i++ {
				res, err := esrp.Solve(esrp.Config{
					A: a, B: rhs, Nodes: benchNodes,
					Strategy: esrp.StrategyESRP, T: 20, Phi: 3,
					GatherInnerSolve: sub.gather,
					Failure: &esrp.FailureSpec{
						Iteration: ref.Iterations / 2,
						Ranks:     []int{4, 5, 6},
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged || !res.Recovered {
					b.Fatal("failed run did not recover/converge")
				}
				rec = res.RecoveryTime
			}
			b.ReportMetric(rec, "recsec/solve")
		})
	}
}

// BenchmarkAblationAugmentTraffic isolates the plan-level traffic cost of
// the two augmentation schemes (no solve; pure plan accounting).
func BenchmarkAblationAugmentTraffic(b *testing.B) {
	a := benchEmilia()
	part := dist.NewBlockPartition(a.Rows, benchNodes)
	for _, sub := range []struct {
		name  string
		naive bool
	}{
		{"counted", false},
		{"naive", true},
	} {
		b.Run(sub.name, func(b *testing.B) {
			var extra, regular int
			for i := 0; i < b.N; i++ {
				plan, err := aspmv.NewPlan(a, part)
				if err != nil {
					b.Fatal(err)
				}
				if sub.naive {
					err = plan.AugmentNaive(1)
				} else {
					err = plan.Augment(1)
				}
				if err != nil {
					b.Fatal(err)
				}
				extra, regular = plan.ExtraTraffic()
			}
			b.ReportMetric(float64(extra), "extra-entries")
			b.ReportMetric(float64(extra)/float64(regular)*100, "extra%")
		})
	}
}

// BenchmarkSpMVExchange measures the halo exchange plus local SpMV, the hot
// kernel of every PCG iteration.
func BenchmarkSpMVExchange(b *testing.B) {
	a := benchEmilia()
	rhs := esrp.RHSOnes(a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := esrp.Solve(esrp.Config{
			A: a, B: rhs, Nodes: benchNodes, MaxIter: 50, Rtol: 1e-30,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkExchangeOverlap compares the blocking halo exchange against the
// overlapped Start/Finish halves on both matrix analogs: same iterates and
// traffic, different simulated clock. Reported metrics are the modeled
// runtime (simsec/solve — the gap is what hiding the halo behind the
// interior-rows product buys at default LogGP parameters), the end-of-solve
// per-node footprint, and host allocs/op for the steady-state data path.
//
// 4 nodes, not benchNodes: overlap needs interior rows to hide the halo
// behind, i.e. slabs thicker than the stencil's coupling depth. At 16 nodes
// the reduced-scale analogs degenerate to one stencil plane per node (pure
// surface, zero interior rows) and the two modes coincide by construction.
func BenchmarkExchangeOverlap(b *testing.B) {
	const overlapNodes = 4
	for _, mat := range []struct {
		name string
		a    *esrp.CSR
	}{
		{"EmiliaLike", benchEmilia()},
		{"AudikwLike", benchAudikw()},
	} {
		rhs := esrp.RHSOnes(mat.a.Rows)
		for _, mode := range []struct {
			name     string
			blocking bool
		}{
			{"blocking", true},
			{"overlapped", false},
		} {
			b.Run(mat.name+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				var sim float64
				var mem int64
				for i := 0; i < b.N; i++ {
					res, err := esrp.Solve(esrp.Config{
						A: mat.a, B: rhs, Nodes: overlapNodes,
						MaxIter: 60, Rtol: 1e-30, // fixed-length run: pure data-path cost
						BlockingExchange: mode.blocking,
					})
					if err != nil {
						b.Fatal(err)
					}
					sim, mem = res.SimTime, res.MaxNodeBytes
				}
				b.ReportMetric(sim, "simsec/solve")
				b.ReportMetric(float64(mem), "nodebytes")
			})
		}
	}
}

// BenchmarkPipelinedVsStandard compares standard PCG (two synchronizing
// collectives per iteration) with the pipelined variant (one) in a normal
// and a latency-dominated regime, reporting modeled time per iteration.
func BenchmarkPipelinedVsStandard(b *testing.B) {
	a := benchEmilia()
	rhs := esrp.RHSOnes(a.Rows)
	for _, reg := range []struct {
		name    string
		latMult float64
	}{
		{"default-latency", 1},
		{"100x-latency", 100},
	} {
		model := esrp.DefaultCostModel()
		model.Latency *= reg.latMult
		for _, solver := range []struct {
			name string
			fn   func(esrp.Config) (*esrp.Result, error)
		}{
			{"standard", esrp.Solve},
			{"pipelined", esrp.SolvePipelined},
		} {
			b.Run(reg.name+"/"+solver.name, func(b *testing.B) {
				var perIter float64
				for i := 0; i < b.N; i++ {
					res, err := solver.fn(esrp.Config{
						A: a, B: rhs, Nodes: benchNodes, CostModel: &model,
					})
					if err != nil {
						b.Fatal(err)
					}
					if !res.Converged {
						b.Fatal("did not converge")
					}
					perIter = res.SimTime / float64(res.Iterations)
				}
				b.ReportMetric(perIter*1e6, "simus/iter")
			})
		}
	}
}

// BenchmarkAblationBalancedPartition compares uniform-rows and work-balanced
// row distributions on the audikw-like matrix (near-uniform rows; balancing
// is cheap insurance) — the paper's future-work question on partitioning.
func BenchmarkAblationBalancedPartition(b *testing.B) {
	a := benchAudikw()
	rhs := esrp.RHSOnes(a.Rows)
	for _, sub := range []struct {
		name    string
		balance bool
	}{
		{"uniform-rows", false},
		{"balanced-work", true},
	} {
		b.Run(sub.name, func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				res, err := esrp.Solve(esrp.Config{
					A: a, B: rhs, Nodes: benchNodes, BalanceNNZ: sub.balance,
				})
				if err != nil {
					b.Fatal(err)
				}
				sim = res.SimTime
			}
			b.ReportMetric(sim, "simsec/solve")
		})
	}
}

// BenchmarkAblationResidualReplacement measures the drift reduction and the
// time cost of van-der-Vorst/Ye residual replacement (the paper's ref. 27).
func BenchmarkAblationResidualReplacement(b *testing.B) {
	a := benchEmilia()
	rhs := esrp.RHSOnes(a.Rows)
	for _, sub := range []struct {
		name string
		rr   int
	}{
		{"off", 0},
		{"every-20", 20},
	} {
		b.Run(sub.name, func(b *testing.B) {
			var sim, drift float64
			for i := 0; i < b.N; i++ {
				res, err := esrp.Solve(esrp.Config{
					A: a, B: rhs, Nodes: benchNodes,
					ResidualReplacementInterval: sub.rr,
				})
				if err != nil {
					b.Fatal(err)
				}
				sim, drift = res.SimTime, res.Drift
			}
			b.ReportMetric(sim, "simsec/solve")
			b.ReportMetric(drift, "drift")
		})
	}
}

// BenchmarkHostSolve measures the host-side cost of the simulator itself —
// wall-clock ns/op and allocs/op of one fixed-length solve — the figure the
// zero-allocation hot path and the structure-aware kernels optimize. Fixed
// MaxIter + unreachable Rtol makes the run length independent of
// convergence, so the metric is a pure data-path cost. The default cases run
// the kernel planner (auto); the kernel=* cases force each layout on the
// reference strategy for the attribution. BENCH_PR5.json records these
// numbers run over run.
func BenchmarkHostSolve(b *testing.B) {
	a := benchEmilia()
	rhs := esrp.RHSOnes(a.Rows)
	run := func(name string, cfg esrp.Config) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := esrp.Solve(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("none", esrp.Config{A: a, B: rhs, Nodes: benchNodes, MaxIter: 60, Rtol: 1e-30})
	run("esr", esrp.Config{A: a, B: rhs, Nodes: benchNodes, MaxIter: 60, Rtol: 1e-30,
		Strategy: esrp.StrategyESR, Phi: 1})
	run("esrp-T20", esrp.Config{A: a, B: rhs, Nodes: benchNodes, MaxIter: 60, Rtol: 1e-30,
		Strategy: esrp.StrategyESRP, T: 20, Phi: 1})
	run("imcr-T20", esrp.Config{A: a, B: rhs, Nodes: benchNodes, MaxIter: 60, Rtol: 1e-30,
		Strategy: esrp.StrategyIMCR, T: 20, Phi: 1})
	for _, kind := range []esrp.KernelKind{esrp.KernelCSR, esrp.KernelSellC, esrp.KernelBand} {
		run("kernel="+kind.String(), esrp.Config{A: a, B: rhs, Nodes: benchNodes,
			MaxIter: 60, Rtol: 1e-30, Kernel: kind})
	}
}

// BenchmarkCampaignSweep measures the experiment-sweep engine's host
// throughput in cells/sec on the CI smoke grid shape (2 strategies × 2
// intervals × 2 seeds under a Poisson failure process). This is the number
// the campaign-cell reuse (shared matrix/partition/plan, worker-local solver
// arenas) multiplies.
func BenchmarkCampaignSweep(b *testing.B) {
	a := esrp.Poisson2D(32, 32)
	grid := esrp.CampaignGrid{
		Matrices:   []esrp.CampaignMatrix{{Name: "poisson2d-32", A: a}},
		Nodes:      []int{8},
		Strategies: []esrp.Strategy{esrp.StrategyESRP, esrp.StrategyIMCR},
		Ts:         []int{10, 20},
		Phis:       []int{1},
		Seeds:      []int64{1, 2},
		Scenario:   esrp.FailureScenario{Model: esrp.ScenarioExponential, MTBF: 500, Horizon: 80},
	}
	b.ReportAllocs()
	var cells int
	start := time.Now()
	for i := 0; i < b.N; i++ {
		rep, err := esrp.RunCampaign(grid)
		if err != nil {
			b.Fatal(err)
		}
		cells += len(rep.Cells)
	}
	if sec := time.Since(start).Seconds(); sec > 0 {
		b.ReportMetric(float64(cells)/sec, "cells/sec")
	}
}

// BenchmarkNoSpareVsSpare compares recovery with replacement nodes against
// the spare-free adoption variant (ref. 22): same failure, same rollback
// point, different recovery protocol and post-recovery cluster size.
func BenchmarkNoSpareVsSpare(b *testing.B) {
	a := benchEmilia()
	rhs := esrp.RHSOnes(a.Rows)
	ref, err := esrp.Solve(esrp.Config{A: a, B: rhs, Nodes: benchNodes})
	if err != nil {
		b.Fatal(err)
	}
	for _, sub := range []struct {
		name    string
		noSpare bool
	}{
		{"spare-replacements", false},
		{"no-spare-adoption", true},
	} {
		b.Run(sub.name, func(b *testing.B) {
			var sim, rec float64
			for i := 0; i < b.N; i++ {
				res, err := esrp.Solve(esrp.Config{
					A: a, B: rhs, Nodes: benchNodes,
					Strategy: esrp.StrategyESRP, T: 20, Phi: 2,
					NoSpareNodes: sub.noSpare,
					Failure: &esrp.FailureSpec{
						Iteration: ref.Iterations / 2,
						Ranks:     []int{4, 5},
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged || !res.Recovered {
					b.Fatal("failure run did not recover/converge")
				}
				sim, rec = res.SimTime, res.RecoveryTime
			}
			b.ReportMetric(sim, "simsec/solve")
			b.ReportMetric(rec, "recsec/solve")
		})
	}
}
