module esrp

go 1.24
