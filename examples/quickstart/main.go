// Quickstart: solve a small SPD system with the node-failure-resilient PCG
// solver, inject one node failure mid-solve, and verify that the solver
// recovers and converges to the correct solution.
package main

import (
	"fmt"
	"log"
	"math"

	"esrp"
)

func main() {
	// A 64×64 Poisson problem (4096 unknowns) distributed over 8 simulated
	// cluster nodes, with a known solution x* so we can check the answer.
	a := esrp.Poisson2D(64, 64)
	b, xstar := esrp.RHSForSolution(a, 42)

	res, err := esrp.Solve(esrp.Config{
		A: a, B: b, Nodes: 8,

		// ESRP: store redundant copies of the search direction every T = 20
		// iterations (two consecutive augmented matrix-vector products),
		// tolerating up to φ = 1 node failure.
		Strategy: esrp.StrategyESRP, T: 20, Phi: 1,

		// Kill node 3 at iteration 50. The failed node zeroes all its
		// dynamic data and acts as its own replacement, as in the paper's
		// experimental framework.
		Failure: &esrp.FailureSpec{Iteration: 50, Ranks: []int{3}},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged: %v after %d iterations (relative residual %.2e)\n",
		res.Converged, res.Iterations, res.RelResidual)
	fmt.Printf("recovered from the failure at iteration %d; rolled back to %d (%d iterations re-done)\n",
		50, res.RecoveredAt, res.WastedIters)
	fmt.Printf("simulated runtime %.4g s, recovery cost %.4g s\n", res.SimTime, res.RecoveryTime)
	fmt.Printf("per-node memory %d B (O(local+halo)), measured halo traffic %d B\n",
		res.MaxNodeBytes, res.HaloBytes)

	maxErr := 0.0
	for i := range xstar {
		maxErr = math.Max(maxErr, math.Abs(res.X[i]-xstar[i]))
	}
	fmt.Printf("max error against the known solution: %.2e\n", maxErr)
}
