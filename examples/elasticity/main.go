// Elasticity with multiple simultaneous node failures: a switch fault takes
// out a contiguous block of three nodes at once (the paper's Section 5
// justification for contiguous failed-rank blocks), while the solver works
// on an audikw_1-like elasticity system with 3 degrees of freedom per
// vertex.
//
// The example contrasts ESRP with the in-memory buddy checkpoint-restart
// baseline (IMCR) at the same checkpoint interval and redundancy: ESRP pays
// for recovery with gathers plus two inner solves, IMCR with pure
// communication — the paper's headline trade-off.
package main

import (
	"fmt"
	"log"

	"esrp"
)

func main() {
	// Elasticity-like system: 12×12×12 vertices × 3 dofs = 5 184 unknowns,
	// ~78 nnz/row, on 12 simulated nodes.
	a := esrp.AudikwLike(12, 12, 12, 3, 944)
	b := esrp.RHSOnes(a.Rows)
	const nodes = 12

	ref, err := esrp.Solve(esrp.Config{A: a, B: b, Nodes: nodes})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix: %d rows, %d nnz (%.1f nnz/row)\n", a.Rows, a.NNZ(),
		float64(a.NNZ())/float64(a.Rows))
	fmt.Printf("reference: %d iterations, %.4g s simulated\n\n", ref.Iterations, ref.SimTime)

	// A switch fault kills nodes 4, 5, 6 simultaneously halfway through.
	failed := []int{4, 5, 6}
	phi := len(failed)
	failAt := ref.Iterations / 2
	fmt.Printf("simultaneous failure of nodes %v at iteration %d (φ = ψ = %d):\n\n",
		failed, failAt, phi)

	for _, tc := range []struct {
		label    string
		strategy esrp.Strategy
	}{
		{"ESRP", esrp.StrategyESRP},
		{"IMCR", esrp.StrategyIMCR},
	} {
		res, err := esrp.Solve(esrp.Config{
			A: a, B: b, Nodes: nodes,
			Strategy: tc.strategy, T: 20, Phi: phi,
			Failure: &esrp.FailureSpec{Iteration: failAt, Ranks: failed},
		})
		if err != nil {
			log.Fatal(err)
		}
		overhead := 100 * (res.SimTime - ref.SimTime) / ref.SimTime
		recovery := 100 * res.RecoveryTime / ref.SimTime
		fmt.Printf("%-5s T=20 φ=%d: converged=%v  overhead=%6.2f%%  recovery=%5.2f%%  rolled back to %d  drift=%.2e\n",
			tc.label, phi, res.Converged, overhead, recovery, res.RecoveredAt, res.Drift)
	}

	fmt.Println("\nBoth recover exactly; IMCR's recovery is near-free communication while")
	fmt.Println("ESRP's includes the reconstruction solves — but ESRP ships far less data")
	fmt.Println("per checkpoint, which shows in the failure-free overhead (see esrpbench).")
}
