// Incremental campaign: PR 10's content-addressed cache makes parameter
// studies resumable and machine sweeps nearly free. This example runs the
// same small campaign three times against one cache directory:
//
//  1. cold   — every cell solved, results and event schedules cached;
//  2. warm   — zero solves: every cell is a result-tier hit;
//  3. warm at a NEW machine point — still zero solves: the cache key
//     deliberately excludes the LogGP model, so each cell's recorded
//     schedule is re-costed under the new machine in O(events).
//
// The warm reports must be byte-identical to what a cold run would have
// produced (run 3 is checked against a live cacheless sweep under the same
// machine), and the hit counters must show zero misses — this example exits
// non-zero on any violation, so it doubles as a smoke test for the cache.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"time"

	"esrp"
)

func grid() esrp.CampaignGrid {
	return esrp.CampaignGrid{
		Matrices:   []esrp.CampaignMatrix{{Name: "poisson2d-32", A: esrp.Poisson2D(32, 32)}},
		Nodes:      []int{8},
		Strategies: []esrp.Strategy{esrp.StrategyESRP, esrp.StrategyIMCR},
		Ts:         []int{10, 20},
		Phis:       []int{1},
		Seeds:      []int64{1, 2},
		Scenario:   esrp.FailureScenario{Model: esrp.ScenarioExponential, MTBF: 500, Horizon: 80},
	}
}

// sweep runs one cache-backed sweep and returns the report bytes, the wall
// time, and the cache counters.
func sweep(cache *esrp.CampaignCache, model *esrp.CostModel) ([]byte, time.Duration, *esrp.CampaignCacheCounters) {
	g := grid()
	g.Cache = cache
	g.CostModel = model
	rec := esrp.NewHostRecorder()
	g.HostObs = rec
	start := time.Now()
	rep, err := esrp.RunCampaign(g)
	elapsed := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes(), elapsed, rec.Telemetry().Cache
}

func main() {
	dir, err := os.MkdirTemp("", "esrp-ccache")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cache, note, err := esrp.OpenCampaignCache(dir, esrp.CacheMismatchBypass)
	if err != nil {
		log.Fatal(err)
	}
	if note != "" {
		fmt.Println(note)
	}

	cold, coldT, coldCtr := sweep(cache, nil)
	warm, warmT, warmCtr := sweep(cache, nil)

	// A machine point the cache has never seen: 4× the latency, half the
	// bandwidth. Served entirely from the schedule tier.
	slow := esrp.DefaultCostModel()
	slow.Latency *= 4
	slow.BytePeriod *= 2
	moved, movedT, movedCtr := sweep(cache, &slow)

	fmt.Printf("campaign: %d cells, cache at %s\n\n", coldCtr.Misses, dir)
	fmt.Printf("%-26s %10s %8s %8s %8s\n", "run", "wall", "solves", "res-hit", "sch-hit")
	fmt.Printf("%-26s %10s %8d %8d %8d\n", "cold", coldT.Round(time.Millisecond), coldCtr.Misses, coldCtr.ResultHits, coldCtr.ScheduleHits)
	fmt.Printf("%-26s %10s %8d %8d %8d\n", "warm (same inputs)", warmT.Round(time.Millisecond), warmCtr.Misses, warmCtr.ResultHits, warmCtr.ScheduleHits)
	fmt.Printf("%-26s %10s %8d %8d %8d\n", "warm (new machine point)", movedT.Round(time.Millisecond), movedCtr.Misses, movedCtr.ResultHits, movedCtr.ScheduleHits)
	if warmT > 0 {
		fmt.Printf("\nwarm re-run: %.0f× faster than cold, byte-identical report\n",
			float64(coldT)/float64(warmT))
	}

	// The gates that make the numbers above trustworthy.
	if !bytes.Equal(cold, warm) {
		log.Fatal("cache smoke test FAILED: warm report differs from cold")
	}
	if warmCtr.Misses != 0 || movedCtr.Misses != 0 {
		log.Fatalf("cache smoke test FAILED: warm runs solved cells (warm %d, machine %d misses)",
			warmCtr.Misses, movedCtr.Misses)
	}
	if movedCtr.ScheduleHits != coldCtr.Misses {
		log.Fatalf("cache smoke test FAILED: machine-point run made %d schedule hits, want %d",
			movedCtr.ScheduleHits, coldCtr.Misses)
	}
	liveG := grid()
	liveG.CostModel = &slow
	liveRep, err := esrp.RunCampaign(liveG)
	if err != nil {
		log.Fatal(err)
	}
	var live bytes.Buffer
	if err := liveRep.WriteJSON(&live); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(moved, live.Bytes()) {
		log.Fatal("cache smoke test FAILED: schedule-tier re-cost differs from a live solve under the new machine")
	}
	fmt.Println("machine-point run served from the schedule tier, equal to a live solve — zero cells re-solved")
}
