// Heat conduction: the paper's motivating problem class — an elliptic PDE
// (steady-state heat equation) discretized on a 3-D grid, solved on an
// unreliable cluster. This example compares what happens to an unprotected
// solver versus ESR and ESRP when a node dies mid-solve.
//
// The unprotected solver survives only by a "local restart": it zeroes the
// lost entries and restarts the Krylov process from the surviving iterand,
// discarding all accumulated search-direction conjugacy — the costly
// scenario (cf. [19] in the paper) that motivates exact state
// reconstruction.
package main

import (
	"fmt"
	"log"

	"esrp"
)

func main() {
	// Steady-state heat equation on a 24×24×24 grid: 13 824 unknowns over
	// 12 simulated nodes.
	a := esrp.Poisson3D(24, 24, 24)
	b := esrp.RHSOnes(a.Rows)

	// Reference: how long does the undisturbed solve take?
	ref, err := esrp.Solve(esrp.Config{A: a, B: b, Nodes: 12})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference (failure-free): %d iterations, %.4g s simulated\n\n",
		ref.Iterations, ref.SimTime)

	failAt := ref.Iterations / 2
	fail := &esrp.FailureSpec{Iteration: failAt, Ranks: []int{5}}
	fmt.Printf("injecting a failure of node 5 at iteration %d:\n\n", failAt)

	for _, tc := range []struct {
		label    string
		strategy esrp.Strategy
		t        int
	}{
		{"none (local restart)", esrp.StrategyNone, 0},
		{"ESR  (T=1)", esrp.StrategyESR, 1},
		{"ESRP (T=25)", esrp.StrategyESRP, 25},
	} {
		res, err := esrp.Solve(esrp.Config{
			A: a, B: b, Nodes: 12,
			Strategy: tc.strategy, T: tc.t, Phi: 1,
			Failure: fail,
		})
		if err != nil {
			log.Fatal(err)
		}
		overhead := 100 * (res.SimTime - ref.SimTime) / ref.SimTime
		fmt.Printf("%-22s converged=%v  total iterations=%5d  overhead=%6.2f%%  wasted=%d\n",
			tc.label, res.Converged, res.TotalSteps, overhead, res.WastedIters)
	}

	fmt.Println("\nESR/ESRP resume the exact pre-failure trajectory; the unprotected")
	fmt.Println("solver pays for the lost conjugacy with many extra iterations.")
}
