// Failure rates: the paper's closing argument is that whether ESRP or IMCR
// (and which interval T) is the right choice depends on how often the
// machine fails. This example makes that concrete: it draws failure times
// from a seeded exponential distribution for a range of machine MTBFs and
// reports the *expected* total runtime per strategy and interval — alongside
// Daly's closed-form prediction of the optimal interval from
// internal/ckptmodel.
//
// The estimator runs on the replay engine: each distinct scenario shape
// (strategy, interval, failure iteration) is simulated and *recorded* once,
// and every draw that maps onto it is costed by re-playing the recorded
// event schedule in O(events) instead of re-running the solver. A re-cost
// under the default machine reproduces the recorded solve bit for bit, and
// this example checks that on every recording — so it doubles as a smoke
// test for the replay engine (it exits non-zero on the first mismatch).
//
// One failure event at most strikes per solve (the paper's framework
// simulates exactly one event per run; with MTBF ≫ solve time the chance of
// two is negligible).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"esrp"
)

func main() {
	a := esrp.EmiliaLike(14, 14, 14, 7)
	b := esrp.RHSOnes(a.Rows)
	// φ = 3: redundancy with a measurable storage cost (at φ = 1 the banded
	// product replicates nearly everything already, making δ ≈ 0).
	const nodes, phi, trials = 12, 3, 40

	ref, err := esrp.Solve(esrp.Config{A: a, B: b, Nodes: nodes})
	if err != nil {
		log.Fatal(err)
	}
	t0 := ref.SimTime
	iterTime := t0 / float64(ref.Iterations)
	fmt.Printf("reference: %d iterations, t0 = %.4g s simulated, %d nodes\n",
		ref.Iterations, t0, nodes)

	est := &estimator{a: a, b: b, nodes: nodes, phi: phi, trials: trials}

	intervals := []int{5, 20, 50, 100}
	for _, mtbfFactor := range []float64{0.8, 5, 50} {
		mtbf := mtbfFactor * t0
		fmt.Printf("\nMTBF = %.1f × solve time (failures are %s):\n",
			mtbfFactor, regime(mtbfFactor))
		fmt.Printf("%-14s", "strategy")
		for _, t := range intervals {
			fmt.Printf("  T=%-8d", t)
		}
		fmt.Println()

		for _, strat := range []esrp.Strategy{esrp.StrategyESRP, esrp.StrategyIMCR} {
			fmt.Printf("%-14v", strat)
			for _, t := range intervals {
				mean := est.expectedRuntime(strat, t, mtbf, iterTime)
				fmt.Printf("  %8.2f%%", 100*(mean-t0)/t0)
			}
			fmt.Println()
		}

		// Daly's closed-form optimum for comparison: δ measured as the
		// failure-free cost of one ESRP storage stage.
		ff20, err := esrp.Solve(esrp.Config{
			A: a, B: b, Nodes: nodes, Strategy: esrp.StrategyESRP, T: 20, Phi: phi,
		})
		if err != nil {
			log.Fatal(err)
		}
		delta := (ff20.SimTime - t0) / float64(ref.Iterations/20)
		if advice, err := esrp.PlanCheckpointInterval(math.Max(delta, 1e-12), iterTime, mtbf); err == nil {
			fmt.Printf("Daly's optimal interval for this δ and MTBF: T* ≈ %d iterations\n", advice.DalyIters)
		}
	}

	fmt.Printf("\nreplay engine: %d draws costed by %d recorded solves (%.2fs) + %d re-costs (%.0fms)\n",
		est.draws, est.records, est.recordSec(), est.recosts, 1e3*est.recostSec())
	if est.recosts > 0 && est.recostSec() > 0 {
		fmt.Printf("per-draw speedup: full solve %.1fms vs re-cost %.2fms — %.0f× faster\n",
			1e3*est.recordSec()/float64(est.records),
			1e3*est.recostSec()/float64(est.recosts),
			(est.recordSec()/float64(est.records))/(est.recostSec()/float64(est.recosts)))
	}

	fmt.Println("\nExpected overhead over the failure-free reference, averaged across")
	fmt.Println("seeded random failure times. Frequent failures favour small T (and")
	fmt.Println("IMCR's cheap recovery); rare failures favour large T, where ESRP's")
	fmt.Println("storage is almost free — the paper's concluding trade-off.")
}

func regime(f float64) string {
	switch {
	case f < 2:
		return "frequent"
	case f < 20:
		return "occasional"
	default:
		return "rare"
	}
}

// estimator draws failure times and costs them on the replay engine: each
// distinct (strategy, T, failure iteration) shape is recorded once, every
// draw is a re-cost of the matching schedule.
type estimator struct {
	a      *esrp.CSR
	b      []float64
	nodes  int
	phi    int
	trials int

	schedules map[string]*esrp.Schedule

	draws, records, recosts int
	recordNs, recostNs      int64
}

func (e *estimator) recordSec() float64 { return float64(e.recordNs) / 1e9 }
func (e *estimator) recostSec() float64 { return float64(e.recostNs) / 1e9 }

// expectedRuntime replays `trials` seeded failure draws against the
// recorded schedules and returns the mean simulated total runtime.
func (e *estimator) expectedRuntime(strat esrp.Strategy, t int, mtbf, iterTime float64) float64 {
	if e.schedules == nil {
		e.schedules = make(map[string]*esrp.Schedule)
	}
	rng := rand.New(rand.NewSource(42))
	var sum float64
	for trial := 0; trial < e.trials; trial++ {
		failTime := rng.ExpFloat64() * mtbf
		failIter := int(failTime / iterTime)
		key := fmt.Sprintf("%v/%d/%d", strat, t, failIter)
		sched, ok := e.schedules[key]
		if !ok {
			sched = e.record(strat, t, failIter)
			e.schedules[key] = sched
		}
		start := time.Now()
		rep, err := esrp.Recost(sched, esrp.DefaultCostModel())
		e.recostNs += time.Since(start).Nanoseconds()
		e.recosts++
		if err != nil {
			log.Fatalf("%v T=%d: re-cost: %v", strat, t, err)
		}
		sum += rep.SimTime
		e.draws++
	}
	return sum / float64(e.trials)
}

// record runs one solve with recording on and holds the smoke gate: the
// schedule re-costed under the default machine must reproduce the solve's
// figures bit for bit.
func (e *estimator) record(strat esrp.Strategy, t, failIter int) *esrp.Schedule {
	cfg := esrp.Config{
		A: e.a, B: e.b, Nodes: e.nodes,
		Strategy: strat, T: t, Phi: e.phi,
	}
	if strat == esrp.StrategyESRP && t <= 2 {
		cfg.Strategy = esrp.StrategyESR
	}
	cfg.Failure = &esrp.FailureSpec{Iteration: failIter, Ranks: []int{e.nodes / 2}}
	start := time.Now()
	res, sched, err := esrp.RecordSchedule(cfg)
	e.recordNs += time.Since(start).Nanoseconds()
	e.records++
	if err != nil {
		log.Fatalf("%v T=%d: %v", strat, t, err)
	}
	if !res.Converged {
		log.Fatalf("%v T=%d: did not converge", strat, t)
	}
	rep, err := esrp.Recost(sched, esrp.DefaultCostModel())
	if err != nil {
		log.Fatalf("%v T=%d: re-cost: %v", strat, t, err)
	}
	if rep.SimTime != res.SimTime || rep.RecoveryTime != res.RecoveryTime ||
		rep.BytesSent != res.BytesSent || rep.MsgsSent != res.MsgsSent {
		log.Fatalf("replay smoke test FAILED: %v T=%d fail@%d: re-cost (%.17g s, %d B, %d msgs) "+
			"diverged from solve (%.17g s, %d B, %d msgs)",
			strat, t, failIter, rep.SimTime, rep.BytesSent, rep.MsgsSent,
			res.SimTime, res.BytesSent, res.MsgsSent)
	}
	return sched
}
