// Failure rates: the paper's closing argument is that whether ESRP or IMCR
// (and which interval T) is the right choice depends on how often the
// machine fails. This example makes that concrete: it draws failure times
// from a seeded exponential distribution for a range of machine MTBFs,
// replays the solver against them, and reports the *expected* total runtime
// per strategy and interval — alongside Daly's closed-form prediction of
// the optimal interval from internal/ckptmodel.
//
// One failure event at most strikes per solve (the paper's framework
// simulates exactly one event per run; with MTBF ≫ solve time the chance of
// two is negligible).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"esrp"
)

func main() {
	a := esrp.EmiliaLike(14, 14, 14, 7)
	b := esrp.RHSOnes(a.Rows)
	// φ = 3: redundancy with a measurable storage cost (at φ = 1 the banded
	// product replicates nearly everything already, making δ ≈ 0).
	const nodes, phi, trials = 12, 3, 40

	ref, err := esrp.Solve(esrp.Config{A: a, B: b, Nodes: nodes})
	if err != nil {
		log.Fatal(err)
	}
	t0 := ref.SimTime
	iterTime := t0 / float64(ref.Iterations)
	fmt.Printf("reference: %d iterations, t0 = %.4g s simulated, %d nodes\n",
		ref.Iterations, t0, nodes)

	intervals := []int{5, 20, 50, 100}
	for _, mtbfFactor := range []float64{0.8, 5, 50} {
		mtbf := mtbfFactor * t0
		fmt.Printf("\nMTBF = %.1f × solve time (failures are %s):\n",
			mtbfFactor, regime(mtbfFactor))
		fmt.Printf("%-14s", "strategy")
		for _, t := range intervals {
			fmt.Printf("  T=%-8d", t)
		}
		fmt.Println()

		for _, strat := range []esrp.Strategy{esrp.StrategyESRP, esrp.StrategyIMCR} {
			fmt.Printf("%-14v", strat)
			for _, t := range intervals {
				mean := expectedRuntime(a, b, nodes, strat, t, phi, mtbf, iterTime, trials)
				fmt.Printf("  %8.2f%%", 100*(mean-t0)/t0)
			}
			fmt.Println()
		}

		// Daly's closed-form optimum for comparison: δ measured as the
		// failure-free cost of one ESRP storage stage.
		ff20, err := esrp.Solve(esrp.Config{
			A: a, B: b, Nodes: nodes, Strategy: esrp.StrategyESRP, T: 20, Phi: phi,
		})
		if err != nil {
			log.Fatal(err)
		}
		delta := (ff20.SimTime - t0) / float64(ref.Iterations/20)
		if advice, err := esrp.PlanCheckpointInterval(math.Max(delta, 1e-12), iterTime, mtbf); err == nil {
			fmt.Printf("Daly's optimal interval for this δ and MTBF: T* ≈ %d iterations\n", advice.DalyIters)
		}
	}

	fmt.Println("\nExpected overhead over the failure-free reference, averaged across")
	fmt.Println("seeded random failure times. Frequent failures favour small T (and")
	fmt.Println("IMCR's cheap recovery); rare failures favour large T, where ESRP's")
	fmt.Println("storage is almost free — the paper's concluding trade-off.")
}

func regime(f float64) string {
	switch {
	case f < 2:
		return "frequent"
	case f < 20:
		return "occasional"
	default:
		return "rare"
	}
}

// expectedRuntime replays the solver against `trials` seeded failure draws
// and returns the mean simulated total runtime.
func expectedRuntime(a *esrp.CSR, b []float64, nodes int, strat esrp.Strategy, t, phi int, mtbf, iterTime float64, trials int) float64 {
	rng := rand.New(rand.NewSource(42))
	cache := map[int]float64{} // failure iteration -> simulated time
	var sum float64
	for trial := 0; trial < trials; trial++ {
		failTime := rng.ExpFloat64() * mtbf
		failIter := int(failTime / iterTime)
		key := failIter
		if v, ok := cache[key]; ok {
			sum += v
			continue
		}
		cfg := esrp.Config{
			A: a, B: b, Nodes: nodes,
			Strategy: strat, T: t, Phi: phi,
		}
		if strat == esrp.StrategyESRP && t <= 2 {
			cfg.Strategy = esrp.StrategyESR
		}
		cfg.Failure = &esrp.FailureSpec{Iteration: failIter, Ranks: []int{nodes / 2}}
		res, err := esrp.Solve(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Converged {
			log.Fatalf("%v T=%d: did not converge", strat, t)
		}
		cache[key] = res.SimTime
		sum += res.SimTime
	}
	return sum / float64(trials)
}
