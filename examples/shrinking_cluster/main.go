// Shrinking cluster: recovery *without* spare nodes — the extension the
// paper points to in its related work ([22]: Pachajoa, Pacher, Gansterer,
// "Node-Failure-Resistant PCG without Replacement Nodes").
//
// When no replacement nodes are available, the surviving node adjacent to
// the failed block adopts the lost rows: the exact pre-failure state is
// reconstructed on the adopter from the ASpMV redundancy, the cluster
// shrinks, and the solve continues on fewer nodes — still on the exact
// reference trajectory, because the adopter keeps applying the failed
// nodes' original preconditioner blocks.
package main

import (
	"fmt"
	"log"
	"math"

	"esrp"
)

func main() {
	a := esrp.EmiliaLike(14, 14, 14, 7)
	b, xstar := esrp.RHSForSolution(a, 3)
	const nodes = 12

	ref, err := esrp.Solve(esrp.Config{A: a, B: b, Nodes: nodes})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference: %d iterations on %d nodes, %.4g s simulated\n\n",
		ref.Iterations, nodes, ref.SimTime)

	failed := []int{5, 6}
	failAt := ref.Iterations / 2
	fmt.Printf("nodes %v die at iteration %d — and there are no spares.\n\n", failed, failAt)

	// The repartitioning the recovery will perform: the survivor adjacent
	// to the failed block adopts its rows.
	part := esrp.NewBlockPartition(a.Rows, nodes)
	survivors := make([]int, 0, nodes-len(failed))
	for s := 0; s < nodes; s++ {
		if s != failed[0] && s != failed[1] {
			survivors = append(survivors, s)
		}
	}
	shrunk, err := part.ShrinkAfterLoss(survivors)
	if err != nil {
		log.Fatal(err)
	}
	adopter := failed[len(failed)-1] + 1
	fmt.Printf("node %d's range grows from %d to %d rows when it adopts rows [%d,%d)\n",
		adopter, part.Size(adopter), shrunk.Size(adopter-len(failed)),
		part.Lo(failed[0]), part.Hi(failed[len(failed)-1]))
	before, _ := part.Analyze(a)
	after, _ := shrunk.Analyze(a)
	fmt.Printf("partition quality before: %v\n", before)
	fmt.Printf("partition quality after:  %v\n\n", after)

	res, err := esrp.Solve(esrp.Config{
		A: a, B: b, Nodes: nodes,
		Strategy: esrp.StrategyESRP, T: 15, Phi: 2,
		NoSpareNodes: true,
		Failure:      &esrp.FailureSpec{Iteration: failAt, Ranks: failed},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged: %v after %d trajectory iterations (%d executed)\n",
		res.Converged, res.Iterations, res.TotalSteps)
	fmt.Printf("cluster shrank from %d to %d active nodes; node %d adopted rows of %v\n",
		nodes, res.ActiveNodes, failed[len(failed)-1]+1, failed)
	fmt.Printf("rolled back to iteration %d, recovery cost %.4g s simulated\n",
		res.RecoveredAt, res.RecoveryTime)

	maxErr := 0.0
	for i := range xstar {
		maxErr = math.Max(maxErr, math.Abs(res.X[i]-xstar[i]))
	}
	fmt.Printf("max error against the known solution: %.2e\n", maxErr)
	fmt.Printf("trajectory matches the reference within %+d iterations\n",
		res.Iterations-ref.Iterations)
}
