// Checkpoint-interval trade-off: the core tension of any checkpoint-restart
// scheme (Section 3.1 of the paper). Storing redundant state less often
// (larger T) cuts the failure-free overhead, but a failure then rolls the
// solver back further, wasting more iterations.
//
// This example sweeps T for ESRP on an Emilia-like system, measuring both
// sides of the trade-off, and compares the empirical sweet spot with the
// classical Young/Daly first-order estimate T* ≈ √(2·C_ckpt·MTBF) that the
// paper cites ([8, 28]).
package main

import (
	"fmt"
	"log"

	"esrp"
)

func main() {
	a := esrp.EmiliaLike(20, 20, 20, 923)
	b := esrp.RHSOnes(a.Rows)
	// φ = 3: with a banded matrix the plain product already replicates every
	// boundary-plane entry once, so φ = 1 redundancy is almost free; three
	// copies per entry make the storage cost visible.
	const nodes, phi = 8, 3

	ref, err := esrp.Solve(esrp.Config{A: a, B: b, Nodes: nodes})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference: %d iterations, t0 = %.4g s simulated\n\n", ref.Iterations, ref.SimTime)
	fmt.Printf("%6s %18s %22s %14s\n", "T", "failure-free ovh", "ovh with 3 failures", "wasted iters")

	// Measure the per-storage-stage cost δ for the Young/Daly models: the
	// extra time of an ESRP run with exactly one storage stage per interval,
	// divided by the number of stages.
	var delta float64
	iterTime := ref.SimTime / float64(ref.Iterations)

	for _, t := range []int{1, 5, 10, 20, 50, 100} {
		strat := esrp.StrategyESRP
		if t <= 2 {
			strat = esrp.StrategyESR
		}
		ff, err := esrp.Solve(esrp.Config{
			A: a, B: b, Nodes: nodes, Strategy: strat, T: t, Phi: phi,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Worst-case failure placement: two iterations before the end of
		// the interval containing the midpoint, as in the paper.
		failAt := failureIteration(ref.Iterations, t)
		fr, err := esrp.Solve(esrp.Config{
			A: a, B: b, Nodes: nodes, Strategy: strat, T: t, Phi: phi,
			Failure: &esrp.FailureSpec{Iteration: failAt, Ranks: []int{3, 4, 5}},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %17.2f%% %21.2f%% %14d\n",
			t,
			100*(ff.SimTime-ref.SimTime)/ref.SimTime,
			100*(fr.SimTime-ref.SimTime)/ref.SimTime,
			fr.WastedIters)
		if t == 20 {
			stages := float64(ref.Iterations / t)
			delta = (ff.SimTime - ref.SimTime) / stages
		}
	}

	fmt.Println("\nSmall T: you pay for redundancy every few iterations but lose almost")
	fmt.Println("nothing on rollback. Large T: free when nothing fails, expensive when")
	fmt.Println("something does. The optimum depends on the machine's failure rate.")

	// The Young/Daly models the paper cites ([28, 8]) pick T* from the
	// storage-stage cost δ and the machine's MTBF. On a machine failing
	// every ~100 solves, the optimum lands at a large T — exactly the
	// paper's argument for ESRP over every-iteration ESR.
	mtbf := 100 * ref.SimTime
	advice, err := esrp.PlanCheckpointInterval(delta, iterTime, mtbf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nYoung/Daly for δ=%.3g s, MTBF=%.3g s (≈100 solves):\n", delta, mtbf)
	fmt.Printf("  Young: τ*=%.4g s  →  T* ≈ %d iterations\n", advice.YoungTau, advice.YoungIters)
	fmt.Printf("  Daly:  τ*=%.4g s  →  T* ≈ %d iterations\n", advice.DalyTau, advice.DalyIters)
}

// failureIteration mirrors the paper's protocol: the failure lands two
// iterations before the end of the checkpoint interval containing C/2.
func failureIteration(c, t int) int {
	if t <= 1 {
		return c / 2
	}
	k := (c / 2) / t
	j := (k+1)*t - 2
	if j < 0 {
		return 0
	}
	return j
}
