// Package esrp is a node-failure-resilient preconditioned conjugate gradient
// (PCG) solver on a simulated distributed-memory cluster, reproducing
//
//	Pachajoa, Pacher, Levonyak, Gansterer:
//	"Algorithm-Based Checkpoint-Recovery for the Conjugate Gradient Method",
//	ICPP 2020 (DOI 10.1145/3404397.3404438).
//
// The solver distributes a sparse symmetric positive-definite system over N
// simulated nodes (block row partition) and protects the solve against the
// simultaneous failure of up to φ nodes with one of three strategies:
//
//   - ESR — exact state reconstruction: every iteration's sparse
//     matrix–vector product is augmented so that each entry of the search
//     direction is replicated on φ other nodes; after a failure the exact
//     solver state is reconstructed by running the PCG recurrences backwards
//     (Alg. 2 of the paper).
//   - ESRP — ESR with periodic storage (the paper's contribution): redundant
//     copies are stored only in two consecutive iterations every T
//     iterations, making ESR an algorithm-based checkpoint-restart method
//     with tunable interval (Alg. 3).
//   - IMCR — in-memory buddy checkpoint-restart (the baseline): every T
//     iterations each node ships its dynamic vectors to φ buddy nodes.
//
// Failures are injected experimentally, exactly as in the paper's framework:
// at a marked iteration the chosen ranks zero their dynamic state and act as
// their own replacement nodes.
//
// # Quickstart
//
//	a := esrp.Poisson2D(64, 64)
//	b := esrp.RHSOnes(a.Rows)
//	res, err := esrp.Solve(esrp.Config{
//		A: a, B: b, Nodes: 8,
//		Strategy: esrp.StrategyESRP, T: 20, Phi: 1,
//		Failure:  &esrp.FailureSpec{Iteration: 50, Ranks: []int{3}},
//	})
//
// Runtime is reported on a deterministic simulated clock (LogGP model); see
// internal/cluster for the machine model and DESIGN.md for the substitutions
// made relative to the paper's 128-node MPI setup.
//
// The SpMV data path is fully localized, as in production distributed CG
// codes: every node holds only its block rows in a compact owned+ghost index
// space (O(n/s + halo) memory, never a full-length vector), and the halo
// exchange runs in nonblocking Start/Finish halves with the interior-rows
// product overlapped with the in-flight messages — the overlap shows up
// directly in the simulated runtime. Result.MaxNodeBytes reports the largest
// per-node footprint and Result.HaloBytes the measured halo traffic;
// Config.BlockingExchange disables the overlap for ablation (bitwise
// identical trajectories, strictly slower modeled runtime).
package esrp

import (
	"io"

	"esrp/internal/campaign"
	"esrp/internal/ccache"
	"esrp/internal/ckptmodel"
	"esrp/internal/cluster"
	"esrp/internal/core"
	"esrp/internal/dist"
	"esrp/internal/faultsim"
	"esrp/internal/harness"
	"esrp/internal/hostobs"
	"esrp/internal/matgen"
	"esrp/internal/obs"
	"esrp/internal/precond"
	"esrp/internal/replay"
	"esrp/internal/sparse"
)

// Core solver types.
type (
	// Config describes one distributed solve; see core.Config. Beyond the
	// paper's single Failure event, Config.Failures takes a multi-event
	// timeline and Config.Spares bounds the replacement-node pool (recovery
	// falls back to the no-spare shrink once it is exhausted).
	Config = core.Config
	// Result is the outcome of a solve; Result.Events records every handled
	// failure event of a multi-failure timeline.
	Result = core.Result
	// FailureSpec marks the iteration and ranks of an injected node failure.
	FailureSpec = core.FailureSpec
	// RecoveryEvent is one handled failure event of a timeline.
	RecoveryEvent = core.RecoveryEvent
	// Strategy selects the resilience scheme.
	Strategy = core.Strategy
	// CostModel holds the simulated machine parameters.
	CostModel = cluster.CostModel
	// CSR is the sparse matrix type consumed by the solver.
	CSR = sparse.CSR
	// PrecondKind selects the preconditioner.
	PrecondKind = precond.Kind
	// KernelKind selects the local SpMV storage layout (Config.Kernel). All
	// kinds produce bitwise-identical trajectories; only host speed differs.
	KernelKind = sparse.KernelKind
)

// Resilience strategies.
const (
	// StrategyNone runs plain PCG; after a failure it can only restart
	// locally from the surviving iterand.
	StrategyNone = core.StrategyNone
	// StrategyESR stores redundant copies every iteration (T = 1).
	StrategyESR = core.StrategyESR
	// StrategyESRP stores redundant copies every T iterations (T > 2).
	StrategyESRP = core.StrategyESRP
	// StrategyIMCR checkpoints to buddy nodes every T iterations.
	StrategyIMCR = core.StrategyIMCR
)

// Preconditioner kinds.
const (
	// PrecondIdentity applies no preconditioning (plain CG).
	PrecondIdentity = precond.None
	// PrecondJacobi applies point Jacobi (diagonal) preconditioning.
	PrecondJacobi = precond.Jacobi
	// PrecondBlockJacobi applies non-overlapping block Jacobi precondition-
	// ing with node-local dense Cholesky blocks (the paper's choice).
	PrecondBlockJacobi = precond.BlockJacobi
	// PrecondIC0 applies node-local zero-fill incomplete Cholesky — the
	// stronger preconditioner the paper's conclusions call for; it remains
	// compatible with the exact state reconstruction.
	PrecondIC0 = precond.IC0
)

// SpMV kernel kinds (Config.Kernel).
const (
	// KernelAuto lets the Prepare-time planner pick the layout per row
	// block from its structure statistics (the default).
	KernelAuto = sparse.KernelAuto
	// KernelCSR forces the generic scalar CSR traversal.
	KernelCSR = sparse.KernelCSR
	// KernelSellC forces the SELL-C sliced-ELL layout.
	KernelSellC = sparse.KernelSellC
	// KernelBand forces the constant-band/stencil layout.
	KernelBand = sparse.KernelBand
)

// ParseKernel converts a kernel name ("auto", "csr", "sellc", "band").
func ParseKernel(s string) (KernelKind, error) { return sparse.ParseKernelKind(s) }

// CondenseKernels condenses Result.Kernels (per-node SpMV layout names)
// into a compact "name×count" display string.
func CondenseKernels(names []string) string { return core.CondenseKernels(names) }

// Data distribution (the block row partition of Section 2.2; internal/dist).
type (
	// Partition divides the global row range into contiguous per-node
	// blocks; all redundancy machinery is defined relative to it.
	Partition = dist.Partition
	// PartitionQuality reports per-node load, imbalance factor and SpMV
	// ghost-entry volume of a partition for one matrix.
	PartitionQuality = dist.Quality
)

// NewBlockPartition returns the uniform block row partition of m rows over
// n nodes — the paper's distribution.
func NewBlockPartition(m, n int) *Partition { return dist.NewBlockPartition(m, n) }

// NewBalancedPartition returns the contiguous partition minimizing the
// maximum per-node weight (Config.BalanceNNZ uses this internally with
// per-row cost weights).
func NewBalancedPartition(weights []float64, n int) (*Partition, error) {
	return dist.NewBalancedWeightPartition(weights, n)
}

// PartitionFromOffsets builds a partition from explicit part boundaries;
// offsets[s] is node s's first row, offsets[len-1] the matrix size.
func PartitionFromOffsets(offsets []int) (*Partition, error) {
	return dist.FromOffsets(offsets)
}

// Solve runs one configured PCG solve on the simulated cluster.
func Solve(cfg Config) (*Result, error) { return core.Solve(cfg) }

// Prepared is a reusable read-only solve context (partition, communication
// plan, local matrices, preconditioners). Build it once with Prepare and
// pass it via Config.Prepared to amortize setup across repeated solves with
// identical settings — the campaign engine does this per grid automatically.
type Prepared = core.Prepared

// SolveWorkspace recycles per-rank solver vector buffers between
// consecutive solves (Config.Workspace). Not safe for concurrent solves.
type SolveWorkspace = core.Workspace

// Prepare builds the shared solve context for cfg.
func Prepare(cfg Config) (*Prepared, error) { return core.Prepare(cfg) }

// NewSolveWorkspace returns an empty solver-buffer workspace.
func NewSolveWorkspace() *SolveWorkspace { return core.NewWorkspace() }

// SolvePipelined runs the communication-hiding pipelined PCG variant
// (Ghysels & Vanroose; the solver the paper's related work [16] extends ESR
// to). It fuses the iteration's dot products into a single allreduce, which
// halves the synchronization points — the win shows directly in the modeled
// runtime when latency dominates. Supported strategies: StrategyNone (local
// restart on failure) and StrategyIMCR (full-state buddy checkpointing).
func SolvePipelined(cfg Config) (*Result, error) { return core.SolvePipelined(cfg) }

// ParseStrategy converts a strategy name ("esr", "esrp", "imcr", "none").
func ParseStrategy(s string) (Strategy, error) { return core.ParseStrategy(s) }

// Observability: simulated-clock tracing and metrics (see internal/obs and
// DESIGN.md § Observability).
type (
	// ObserveOptions opts a solve into span tracing and/or the
	// per-iteration metric series (Config.Observe). A nil Observe keeps the
	// instrumentation-free hot path: bit-identical results, zero overhead.
	ObserveOptions = obs.Options
	// Trace is a traced solve's observability artifact (Result.Trace):
	// per-rank span timelines on the simulated clock, recovery envelopes,
	// the iteration series, and the build stamp. Trace.WriteChrome exports
	// Chrome trace_event JSON viewable in Perfetto.
	Trace = obs.Trace
	// Span is one timed section of a rank's simulated-clock timeline.
	Span = obs.Span
	// SpanKind labels what a span measured (spmv halves, halo exchange,
	// collectives, checkpoint shipments, recovery sections, …).
	SpanKind = obs.Kind
	// IterPoint is one sample of the per-iteration metric series.
	IterPoint = obs.IterPoint
	// RecoveryStat condenses one failure event's recovery envelopes
	// (Trace.RecoveryStats).
	RecoveryStat = obs.RecoveryStat
	// BuildInfo is the build provenance stamp (Go version, VCS revision)
	// carried by traces and exports.
	BuildInfo = obs.BuildInfo
)

// Host observability: wall-clock telemetry of the real execution engine —
// the counterpart of the simulated-clock layer above (see internal/hostobs
// and DESIGN.md § Host observability).
type (
	// BarrierStats accumulates per-member wall-clock wait histograms
	// (spin/yield/park regimes), arrival-order skew and abort counts from
	// the combining-tree barrier under every collective (Config.HostStats).
	BarrierStats = hostobs.BarrierStats
	// HostRecorder records a campaign's host-side execution: per-worker
	// cell/steal timelines, shard layout, affinity hit rate, shared barrier
	// stats, and Go-runtime phase samples (CampaignGrid.HostObs).
	HostRecorder = hostobs.CampaignRecorder
	// HostTelemetry is the aggregated post-run view of a HostRecorder.
	HostTelemetry = hostobs.CampaignTelemetry
	// HostTrace is the wall-clock Chrome trace of a campaign's host
	// workers; WriteChrome emits the same trace_event JSON schema as the
	// simulated-clock Trace.
	HostTrace = obs.HostTrace
)

// NewBarrierStats sizes host barrier telemetry for clusters of up to n nodes.
func NewBarrierStats(n int) *BarrierStats { return hostobs.NewBarrierStats(n) }

// NewHostRecorder returns an empty campaign host recorder; RunCampaign
// initializes it when attached via CampaignGrid.HostObs.
func NewHostRecorder() *HostRecorder { return hostobs.NewCampaignRecorder() }

// BuildHostTrace converts a finished campaign's host recorder into the
// wall-clock worker trace, with cell spans labeled by grid coordinates.
func BuildHostTrace(rec *HostRecorder, rep *CampaignReport, build BuildInfo) *HostTrace {
	return campaign.BuildHostTrace(rec, rep, build)
}

// CurrentBuild reports the running binary's build provenance, read from the
// embedded debug build information.
func CurrentBuild() BuildInfo { return obs.CurrentBuild() }

// ValidateChromeTrace structurally checks Chrome trace_event JSON as emitted
// by Trace.WriteChrome (used by the CLI's self-check and the CI gate).
func ValidateChromeTrace(data []byte) error { return obs.ValidateChromeTrace(data) }

// DefaultCostModel returns the LogGP parameters loosely calibrated to the
// paper's VSC3 platform.
func DefaultCostModel() CostModel { return cluster.DefaultCostModel() }

// Replay engine (internal/replay): record one solve's abstract event
// schedule — every clock advance, point-to-point message, collective, and
// recovery section — then re-cost it under arbitrary machine parameters in
// O(events), without re-running any numeric work. Replayed under the
// recording model, a schedule reproduces the solve's SimTime, RecoveryTime,
// BytesSent and MsgsSent bit-for-bit.
type (
	// Schedule is a recorded solve's event schedule: per-rank program-order
	// event streams plus communicator-view memberships, in canonical order.
	// Serialize with Schedule.WriteBinary / Schedule.WriteJSON.
	Schedule = replay.Schedule
	// Replayed is the outcome of re-costing a schedule under one machine
	// model: the replayed SimTime / RecoveryTime / BytesSent / MsgsSent plus
	// per-rank clocks and per-event recovery envelopes.
	Replayed = replay.Replayed
	// ReplayEnvSpan is one replayed recovery envelope (failure event, start
	// and end on the replayed simulated clock).
	ReplayEnvSpan = replay.EnvSpan
	// CampaignMachine is one named machine model of a campaign's
	// machine-parameter sweep axis (CampaignGrid.Machines).
	CampaignMachine = campaign.MachinePoint
	// CampaignMachineCell is one (cell, machine) replay result of a swept
	// campaign (CampaignReport.MachineCells).
	CampaignMachineCell = campaign.MachineCell
)

// RecordSchedule runs one solve with schedule recording attached and returns
// both the result and the recorded schedule. Recording adds no simulated
// cost: the result is bit-identical to Solve(cfg)'s.
func RecordSchedule(cfg Config) (*Result, *Schedule, error) {
	rec := replay.NewRecorder()
	cfg.Record = rec
	res, err := core.Solve(cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, rec.Schedule(), nil
}

// RecordSchedulePipelined is RecordSchedule for the pipelined solver.
func RecordSchedulePipelined(cfg Config) (*Result, *Schedule, error) {
	rec := replay.NewRecorder()
	cfg.Record = rec
	res, err := core.SolvePipelined(cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, rec.Schedule(), nil
}

// Recost replays a recorded schedule under machine model m, running the
// identical LogGP clock arithmetic the cluster ran when recording. Safe for
// concurrent calls on one schedule.
func Recost(s *Schedule, m CostModel) (*Replayed, error) {
	return s.Recost(replay.CostModel(m))
}

// ReadScheduleBinary decodes a schedule written by Schedule.WriteBinary.
func ReadScheduleBinary(r io.Reader) (*Schedule, error) { return replay.ReadBinary(r) }

// ReadScheduleJSON decodes a schedule written by Schedule.WriteJSON.
func ReadScheduleJSON(r io.Reader) (*Schedule, error) { return replay.ReadJSON(r) }

// Persistent campaign cache (internal/ccache): a content-addressed store
// of per-cell results and recorded schedules, keyed by a digest of each
// cell's complete input with the machine model deliberately excluded —
// so one cold sweep serves exact re-runs from the result tier and any
// new machine point from the schedule tier via Recost.

type (
	// CampaignCache is an open cache directory (CampaignGrid.Cache). A
	// nil *CampaignCache is fully inert, so it can be threaded
	// unconditionally.
	CampaignCache = ccache.Cache
	// CacheMismatchPolicy selects how OpenCampaignCache treats a
	// directory stamped by a different build.
	CacheMismatchPolicy = ccache.MismatchPolicy
	// CacheStats snapshots a cache's raw I/O counters.
	CacheStats = ccache.IOStats
	// CampaignCacheCounters is the cache section of a HostRecorder's
	// telemetry: hit/miss classification plus I/O and corruption totals.
	CampaignCacheCounters = hostobs.CacheCounters
)

// Mismatch policies for OpenCampaignCache.
const (
	// CacheMismatchBypass leaves a foreign-build cache untouched and runs
	// without one (the returned cache is nil).
	CacheMismatchBypass = ccache.MismatchBypass
	// CacheMismatchRefresh discards a foreign-build cache's entries and
	// restamps it for this binary.
	CacheMismatchRefresh = ccache.MismatchRefresh
)

// OpenCampaignCache opens (creating if absent) a campaign cache stamped
// with this binary's build provenance. On a build mismatch it applies
// policy and returns a non-empty note the caller should surface — entries
// from different builds are never silently mixed.
func OpenCampaignCache(dir string, policy CacheMismatchPolicy) (*CampaignCache, string, error) {
	return ccache.Open(dir, obs.CurrentBuild(), policy)
}

// WriteScheduleFile writes one recorded schedule as a framed
// (length + CRC-32) file — the single on-disk schedule format, shared by
// the cache's schedule tier and the esrpcampaign -schedules export.
func WriteScheduleFile(path string, s *Schedule) error { return ccache.WriteScheduleFile(path, s) }

// ReadScheduleFile reads a schedule written by WriteScheduleFile (or a
// bare pre-cache Schedule.WriteBinary stream).
func ReadScheduleFile(path string) (*Schedule, error) { return ccache.ReadScheduleFile(path) }

// Matrix generators (synthetic analogs of the paper's test problems).

// Poisson2D returns the 5-point finite-difference Laplacian on an nx×ny grid.
func Poisson2D(nx, ny int) *CSR { return matgen.Poisson2D(nx, ny) }

// Poisson3D returns the 7-point Laplacian on an nx×ny×nz grid.
func Poisson3D(nx, ny, nz int) *CSR { return matgen.Poisson3D(nx, ny, nz) }

// EmiliaLike returns a banded 3-D 27-point stencil matrix with the sparsity
// character of the paper's Emilia_923 structural problem.
func EmiliaLike(nx, ny, nz int, seed int64) *CSR { return matgen.EmiliaLike(nx, ny, nz, seed) }

// AudikwLike returns a 3-D 27-point stencil with dof unknowns per vertex,
// with the denser block-coupled character of the paper's audikw_1 problem.
func AudikwLike(nx, ny, nz, dof int, seed int64) *CSR {
	return matgen.AudikwLike(nx, ny, nz, dof, seed)
}

// BandedSPD returns a random diagonally dominant banded SPD matrix.
func BandedSPD(n, bw int, seed int64) *CSR { return matgen.BandedSPD(n, bw, seed) }

// RHSOnes returns the all-ones right-hand side of length n.
func RHSOnes(n int) []float64 { return matgen.RHSOnes(n) }

// RHSForSolution returns b = A·x* for a deterministic random solution x*,
// so solves have a known ground truth.
func RHSForSolution(a *CSR, seed int64) (b, xstar []float64) {
	return matgen.RHSForSolution(a, seed)
}

// Experiment harness (the paper's constellation; Tables 2–4, Figures 2–3).
type (
	// ExperimentSpec describes a sweep over strategies, intervals and
	// redundancy counts for one matrix.
	ExperimentSpec = harness.Spec
	// ExperimentReport aggregates the sweep's measurements.
	ExperimentReport = harness.Report
	// ExperimentCell is one measured (strategy, T, φ) setting of a report.
	ExperimentCell = harness.Cell
	// ExperimentScenario is the report's multi-failure scenario cell
	// (Spec.Timeline), with the per-event recovery records.
	ExperimentScenario = harness.ScenarioCell
	// Table1Row is one matrix-inventory entry.
	Table1Row = harness.Table1Row
)

// RunExperiment executes the full constellation for the spec.
func RunExperiment(spec ExperimentSpec) (*ExperimentReport, error) { return harness.Run(spec) }

// RenderTable1 prints a matrix inventory in the layout of Table 1.
func RenderTable1(rows []Table1Row) string { return harness.RenderTable1(rows) }

// RenderOverheadTable prints a report in the layout of Tables 2–3.
func RenderOverheadTable(r *ExperimentReport) string { return harness.RenderOverheadTable(r) }

// RenderDriftTable prints residual-drift statistics in the layout of Table 4.
func RenderDriftTable(reports []*ExperimentReport) string { return harness.RenderDriftTable(reports) }

// RenderFigure prints the data series of Figures 2–3; failureFree selects
// subfigure (a), otherwise (b).
func RenderFigure(r *ExperimentReport, failureFree bool) string {
	return harness.RenderFigure(r, failureFree)
}

// RenderFigureASCII draws the Figures 2–3 layout as a log-scale ASCII
// scatter, mirroring the paper's plots.
func RenderFigureASCII(r *ExperimentReport, failureFree bool) string {
	return harness.RenderFigureASCII(r, failureFree)
}

// ExperimentSummary prints a compact headline comparison for a report.
func ExperimentSummary(r *ExperimentReport) string { return harness.Summary(r) }

// Failure scenarios and experiment campaigns (internal/faultsim and
// internal/campaign): stochastic multi-failure processes compiled into event
// timelines, and concurrent sweeps of whole experiment grids.
type (
	// FailureScenario describes a seeded failure process — fixed schedule,
	// exponential (Poisson), or Weibull per-node inter-arrivals, optionally
	// with correlated group failures — compiled into a Config.Failures
	// timeline.
	FailureScenario = faultsim.Scenario
	// ScenarioModel selects the scenario's inter-arrival process.
	ScenarioModel = faultsim.Model
	// CampaignGrid describes one experiment campaign: the sweep axes
	// (strategy × T × φ × matrix × node count × seed), the failure process,
	// and shared solver settings.
	CampaignGrid = campaign.Grid
	// CampaignMatrix names one SPD system of a campaign grid.
	CampaignMatrix = campaign.MatrixSpec
	// CampaignReport is a campaign's full output: per-cell results plus
	// median/percentile aggregates over seeds.
	CampaignReport = campaign.Report
	// CampaignCell is one grid point's condensed result.
	CampaignCell = campaign.Cell
	// CampaignAggregate condenses one grid group over its seeds.
	CampaignAggregate = campaign.Aggregate
)

// Scenario models.
const (
	// ScenarioFixed replays an explicit schedule.
	ScenarioFixed = faultsim.ModelFixed
	// ScenarioExponential draws per-node Poisson failure processes.
	ScenarioExponential = faultsim.ModelExponential
	// ScenarioWeibull draws per-node Weibull inter-arrivals (clustered or
	// wear-out failures, by shape).
	ScenarioWeibull = faultsim.ModelWeibull
)

// CompileScenario turns a failure scenario into the ordered event timeline
// Config.Failures consumes. Deterministic: the same scenario (including
// seed) always compiles to the same events.
func CompileScenario(s FailureScenario) ([]FailureSpec, error) { return s.Compile() }

// ParseScenarioModel converts a model name ("fixed", "exp", "weibull").
func ParseScenarioModel(s string) (ScenarioModel, error) { return faultsim.ParseModel(s) }

// RunCampaign executes a whole experiment grid concurrently across host
// cores — each cell an independent simulated cluster — and aggregates the
// per-seed results. Output is bitwise reproducible for a fixed grid.
func RunCampaign(g CampaignGrid) (*CampaignReport, error) { return campaign.Run(g) }

// RenderCampaignTable prints a campaign's aggregate table.
func RenderCampaignTable(r *CampaignReport) string { return campaign.Render(r) }

// CampaignSummary prints a compact campaign headline.
func CampaignSummary(r *CampaignReport) string { return campaign.Summary(r) }

// Checkpoint-interval planning (the Young/Daly models the paper cites).

// IntervalAdvice holds the optimal-checkpoint-interval estimates of Young's
// and Daly's models for one strategy's measured costs.
type IntervalAdvice = ckptmodel.Advise

// PlanCheckpointInterval evaluates Young's √(2δM) estimate and Daly's
// higher-order refinement for a per-storage-stage cost delta, failure-free
// per-iteration time iterTime, and machine mean-time-between-failures mtbf
// (all in seconds — simulated or real, as long as they are consistent).
func PlanCheckpointInterval(delta, iterTime, mtbf float64) (IntervalAdvice, error) {
	return ckptmodel.Plan(delta, iterTime, mtbf)
}

// ExpectedRuntimeWithFailures returns Daly's expected-runtime model for a
// job of failure-free length work, checkpoint cost delta, interval tau,
// recovery cost restart, and exponential failures with the given mtbf.
func ExpectedRuntimeWithFailures(work, delta, tau, restart, mtbf float64) float64 {
	return ckptmodel.ExpectedRuntime(work, delta, tau, restart, mtbf)
}
