package esrp_test

import (
	"math"
	"testing"

	"esrp"
)

func TestQuickstartAPI(t *testing.T) {
	a := esrp.Poisson2D(32, 32)
	b, xstar := esrp.RHSForSolution(a, 7)
	res, err := esrp.Solve(esrp.Config{
		A: a, B: b, Nodes: 4,
		Strategy: esrp.StrategyESRP, T: 20, Phi: 1,
	})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: relres=%g after %d iterations", res.RelResidual, res.Iterations)
	}
	maxErr := 0.0
	for i := range xstar {
		if d := math.Abs(res.X[i] - xstar[i]); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 1e-5 {
		t.Errorf("solution error %g too large", maxErr)
	}
}

func TestFailureRecoveryAPI(t *testing.T) {
	a := esrp.EmiliaLike(8, 8, 8, 3)
	b := esrp.RHSOnes(a.Rows)
	res, err := esrp.Solve(esrp.Config{
		A: a, B: b, Nodes: 8,
		Strategy: esrp.StrategyESRP, T: 10, Phi: 2,
		Failure: &esrp.FailureSpec{Iteration: 25, Ranks: []int{3, 4}},
	})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Converged || !res.Recovered {
		t.Fatalf("converged=%v recovered=%v, want both true", res.Converged, res.Recovered)
	}
	if res.RecoveryTime <= 0 {
		t.Errorf("recovery time %g, want > 0", res.RecoveryTime)
	}
}

func TestStrategiesConverge(t *testing.T) {
	a := esrp.Poisson2D(24, 24)
	b := esrp.RHSOnes(a.Rows)
	for _, tc := range []struct {
		name     string
		strategy esrp.Strategy
		tInt     int
	}{
		{"none", esrp.StrategyNone, 0},
		{"esr", esrp.StrategyESR, 1},
		{"esrp", esrp.StrategyESRP, 15},
		{"imcr", esrp.StrategyIMCR, 15},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := esrp.Solve(esrp.Config{
				A: a, B: b, Nodes: 6,
				Strategy: tc.strategy, T: tc.tInt, Phi: 1,
			})
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if !res.Converged {
				t.Errorf("%s did not converge", tc.name)
			}
		})
	}
}

func TestExperimentAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("constellation run in -short mode")
	}
	rep, err := esrp.RunExperiment(esrp.ExperimentSpec{
		Name:   "poisson-api",
		Matrix: esrp.Poisson2D(20, 20),
		Nodes:  4,
		Ts:     []int{1, 10},
		Phis:   []int{1},
	})
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if got := esrp.RenderOverheadTable(rep); got == "" {
		t.Error("empty overhead table")
	}
	if got := esrp.RenderDriftTable([]*esrp.ExperimentReport{rep}); got == "" {
		t.Error("empty drift table")
	}
	if got := esrp.RenderFigure(rep, true); got == "" {
		t.Error("empty figure")
	}
	if got := esrp.ExperimentSummary(rep); got == "" {
		t.Error("empty summary")
	}
}

func TestParseStrategy(t *testing.T) {
	s, err := esrp.ParseStrategy("esrp")
	if err != nil || s != esrp.StrategyESRP {
		t.Errorf("ParseStrategy(esrp) = %v, %v", s, err)
	}
	if _, err := esrp.ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy(bogus) should fail")
	}
}

func TestDefaultCostModel(t *testing.T) {
	m := esrp.DefaultCostModel()
	if m.FlopTime <= 0 || m.Latency <= 0 || m.BytePeriod <= 0 {
		t.Errorf("degenerate cost model: %+v", m)
	}
}

func TestGeneratorsProduceSPDStructure(t *testing.T) {
	for name, a := range map[string]*esrp.CSR{
		"poisson2d": esrp.Poisson2D(12, 12),
		"poisson3d": esrp.Poisson3D(6, 6, 6),
		"emilia":    esrp.EmiliaLike(5, 5, 5, 1),
		"audikw":    esrp.AudikwLike(4, 4, 4, 3, 1),
		"banded":    esrp.BandedSPD(200, 5, 1),
	} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: invalid CSR: %v", name, err)
		}
		if !a.IsSymmetric(1e-12) {
			t.Errorf("%s: not symmetric", name)
		}
	}
}

func TestPartitionAPI(t *testing.T) {
	a := esrp.BandedSPD(300, 4, 2)
	part := esrp.NewBlockPartition(a.Rows, 6)
	if part.N != 6 || part.M != a.Rows {
		t.Fatalf("block partition reports M=%d N=%d", part.M, part.N)
	}
	weights := make([]float64, a.Rows)
	for i := range weights {
		weights[i] = 1 + float64(i%7)
	}
	bal, err := esrp.NewBalancedPartition(weights, 6)
	if err != nil {
		t.Fatal(err)
	}
	q, err := bal.Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	if q.Imbalance < 1 {
		t.Fatalf("imbalance %g < 1", q.Imbalance)
	}
	fromOff, err := esrp.PartitionFromOffsets(part.Offsets())
	if err != nil {
		t.Fatal(err)
	}
	if !fromOff.Equal(part) {
		t.Fatalf("offsets round trip gave %v, want %v", fromOff, part)
	}
	if _, err := esrp.PartitionFromOffsets([]int{3, 1}); err == nil {
		t.Fatal("invalid offsets accepted")
	}

	// BalanceNNZ is the solver-facing entry to the balanced layout.
	b := esrp.RHSOnes(a.Rows)
	res, err := esrp.Solve(esrp.Config{A: a, B: b, Nodes: 6, BalanceNNZ: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("balanced solve did not converge")
	}
}

// TestOverlapFasterOnBenchAnalogs is the public acceptance check of the
// overlapped halo exchange: on the benchmark matrix analogs, at default
// LogGP parameters and a node count whose slabs have interior rows, the
// overlapped exchange must yield a strictly lower simulated runtime than the
// blocking ablation while reporting identical traffic.
func TestOverlapFasterOnBenchAnalogs(t *testing.T) {
	for _, m := range []struct {
		name string
		a    *esrp.CSR
	}{
		{"EmiliaLike", esrp.EmiliaLike(16, 16, 16, 923)},
		{"AudikwLike", esrp.AudikwLike(12, 12, 12, 3, 944)},
	} {
		rhs := esrp.RHSOnes(m.a.Rows)
		run := func(blocking bool) *esrp.Result {
			res, err := esrp.Solve(esrp.Config{
				A: m.a, B: rhs, Nodes: 4,
				MaxIter: 40, Rtol: 1e-30,
				BlockingExchange: blocking,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		block, over := run(true), run(false)
		if over.SimTime >= block.SimTime {
			t.Errorf("%s: overlapped %.9f simsec not strictly below blocking %.9f",
				m.name, over.SimTime, block.SimTime)
		}
		if over.HaloBytes != block.HaloBytes || over.BytesSent != block.BytesSent {
			t.Errorf("%s: traffic differs between modes", m.name)
		}
		// ~6 local vector blocks of n/4 entries plus the halo: well below the
		// 6 full-length vectors a pFull-style node would need, but above one
		// full vector at this small node count — the strict locality bound is
		// asserted at 16 nodes in core's TestPerNodeMemoryIsLocal.
		if over.MaxNodeBytes <= 0 || over.MaxNodeBytes >= int64(8*m.a.Rows)*3 {
			t.Errorf("%s: per-node memory %d B not in (0, 3 full vectors)", m.name, over.MaxNodeBytes)
		}
	}
}

// The scenario/campaign surface: compile a stochastic failure process, run a
// multi-failure solve against a finite spare pool, and sweep a tiny grid.
func TestScenarioAndCampaignAPI(t *testing.T) {
	events, err := esrp.CompileScenario(esrp.FailureScenario{
		Model: esrp.ScenarioExponential, Nodes: 8, Horizon: 60, MTBF: 250, Seed: 11,
	})
	if err != nil {
		t.Fatalf("CompileScenario: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("scenario compiled to no events")
	}

	a := esrp.Poisson2D(48, 48)
	b, xstar := esrp.RHSForSolution(a, 3)
	res, err := esrp.Solve(esrp.Config{
		A: a, B: b, Nodes: 8,
		Strategy: esrp.StrategyESR, Phi: 1, Spares: 1,
		Failures: []esrp.FailureSpec{
			{Iteration: 20, Ranks: []int{3}},
			{Iteration: 45, Ranks: []int{5}},
			{Iteration: 70, Ranks: []int{2}},
		},
	})
	if err != nil {
		t.Fatalf("multi-failure Solve: %v", err)
	}
	if !res.Converged {
		t.Fatal("multi-failure solve did not converge")
	}
	if len(res.Events) != 3 {
		t.Fatalf("got %d recovery events, want 3", len(res.Events))
	}
	if res.ActiveNodes != 6 {
		t.Fatalf("spare pool of 1 with 3 events must shrink to 6 nodes, got %d", res.ActiveNodes)
	}
	maxErr := 0.0
	for i, x := range res.X {
		maxErr = math.Max(maxErr, math.Abs(x-xstar[i]))
	}
	if maxErr > 1e-5 {
		t.Fatalf("max error %g after shrinking recovery", maxErr)
	}

	rep, err := esrp.RunCampaign(esrp.CampaignGrid{
		Matrices:   []esrp.CampaignMatrix{{Name: "poisson", A: esrp.Poisson2D(32, 32)}},
		Nodes:      []int{6},
		Strategies: []esrp.Strategy{esrp.StrategyESR},
		Phis:       []int{1},
		Seeds:      []int64{1, 2},
		Scenario:   esrp.FailureScenario{Model: esrp.ScenarioExponential, MTBF: 400, Horizon: 50},
	})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if len(rep.Cells) != 2 || len(rep.Aggregates) != 1 {
		t.Fatalf("campaign shape: %d cells, %d aggregates", len(rep.Cells), len(rep.Aggregates))
	}
	if esrp.RenderCampaignTable(rep) == "" || esrp.CampaignSummary(rep) == "" {
		t.Fatal("campaign rendering empty")
	}
}
