package main

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"esrp"
)

// This file measures the PR 10 cache row family: the CI campaign smoke grid
// swept cold (every cell solved, the cache populated as a side effect), warm
// (every cell a result-tier hit — zero solves), and warm at a machine point
// the cache has never seen (every cell a schedule-tier hit: the recorded
// event schedule re-costed under the new LogGP model, still zero solves).
// The simulated figures are byte-identical across all three paths — the
// cache-determinism CI job holds that gate — so the rows isolate pure host
// throughput: how many sweep cells per second each path sustains.

// benchCachedCampaign measures one cache-backed sweep variant: ns per full
// sweep plus the derived cells/sec throughput.
func benchCachedCampaign(name string, sweep func() error, cells int) HostMetric {
	fmt.Fprintf(os.Stderr, "esrpbench: cache rows: %s...\n", name)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := sweep(); err != nil {
				b.Fatal(err)
			}
		}
	})
	m := HostMetric{
		Name: name, GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
	}
	if r.NsPerOp() > 0 {
		m.CellsPerSec = float64(cells) / (float64(r.NsPerOp()) / 1e9)
	}
	return m
}

// runCacheBench measures the three cache sweep paths over the smoke grid and
// returns the rows plus the warm-over-cold throughput multiplier.
func runCacheBench() ([]HostMetric, float64) {
	grid := smokeGrid(esrp.KernelAuto)
	rep, err := esrp.RunCampaign(grid)
	if err != nil {
		fmt.Fprintf(os.Stderr, "esrpbench: cache rows skipped: %v\n", err)
		return nil, 0
	}
	cells := len(rep.Cells)

	// Cold: a fresh cache directory per iteration, so every sweep both
	// solves all cells and pays the full cache-write path.
	cold := benchCachedCampaign("cache/cold-sweep", func() error {
		dir, err := os.MkdirTemp("", "esrpbench-ccache")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		g := smokeGrid(esrp.KernelAuto)
		g.Cache, _, err = esrp.OpenCampaignCache(dir, esrp.CacheMismatchBypass)
		if err != nil {
			return err
		}
		_, err = esrp.RunCampaign(g)
		return err
	}, cells)

	// Warm: one pre-populated directory, every iteration a pure
	// result-tier sweep — zero solves, zero re-costs.
	warmDir, err := os.MkdirTemp("", "esrpbench-ccache")
	if err != nil {
		fmt.Fprintf(os.Stderr, "esrpbench: cache rows skipped: %v\n", err)
		return []HostMetric{cold}, 0
	}
	defer os.RemoveAll(warmDir)
	cache, _, err := esrp.OpenCampaignCache(warmDir, esrp.CacheMismatchBypass)
	if err != nil {
		fmt.Fprintf(os.Stderr, "esrpbench: cache rows skipped: %v\n", err)
		return []HostMetric{cold}, 0
	}
	// One grid value reused across iterations (matrix generation is not
	// part of the measured sweep — matching benchCampaign).
	warmGrid := smokeGrid(esrp.KernelAuto)
	warmGrid.Cache = cache
	if _, err := esrp.RunCampaign(warmGrid); err != nil {
		fmt.Fprintf(os.Stderr, "esrpbench: cache rows skipped: %v\n", err)
		return []HostMetric{cold}, 0
	}
	warm := benchCachedCampaign("cache/warm-sweep", func() error {
		_, err := esrp.RunCampaign(warmGrid)
		return err
	}, cells)

	// Warm at a new machine point: the stored entries never match the
	// requested model, so every cell re-costs its recorded schedule under
	// the new LogGP parameters. A schedule hit upgrades the entry to the
	// model it served, so two alternating machine points keep every
	// iteration on the schedule-tier path instead of degenerating into
	// result hits after the first sweep.
	slow := esrp.DefaultCostModel()
	slow.Latency *= 4
	slow.BytePeriod *= 2
	slower := esrp.DefaultCostModel()
	slower.Latency *= 16
	models := [2]esrp.CostModel{slow, slower}
	recostGrid := warmGrid
	iter := 0
	recost := benchCachedCampaign("cache/warm-machine-recost", func() error {
		recostGrid.CostModel = &models[iter%2]
		iter++
		_, err := esrp.RunCampaign(recostGrid)
		return err
	}, cells)

	speedup := 0.0
	if warm.NsPerOp > 0 {
		speedup = float64(cold.NsPerOp) / float64(warm.NsPerOp)
	}
	fmt.Fprintf(os.Stderr, "esrpbench: cache rows: cold %.3g cells/sec vs warm %.3g cells/sec (%.0f× over %d cells; machine re-cost %.3g cells/sec)\n",
		cold.CellsPerSec, warm.CellsPerSec, speedup, cells, recost.CellsPerSec)
	return []HostMetric{cold, warm, recost}, speedup
}
