package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"esrp"
)

// hostBenchFile is the export this tree's -hostbench writes. Bump the PR
// number alongside each performance PR: the chaining below picks up the
// newest lower-numbered BENCH_PR*.json automatically, so the trajectory
// stays machine-readable without hand-wiring file names.
const hostBenchFile = "BENCH_PR10.json"

// HostMetric is one host-side performance measurement: wall-clock and
// allocation cost per operation, plus sweep throughput for the campaign
// row. These are the numbers the structure-aware kernels optimize — the
// simulated (LogGP) figures in the same exports are bitwise invariant.
// Every row carries the GOMAXPROCS it was measured under, so mixed-procs
// files (the -scaling sweep writes into the same export) stay
// interpretable row by row.
type HostMetric struct {
	Name        string  `json:"name"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu,omitempty"` // host CPU count the row was measured on
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	CellsPerSec float64 `json:"cells_per_sec,omitempty"` // campaign rows only

	// Host-telemetry columns (internal/hostobs), measured by a separate
	// instrumented pass after the clean timing runs so they never perturb
	// ns/op or allocs/op. BarrierWaitShare is Σ member barrier-wait ns over
	// (members × instrumented wall ns) — the fraction of aggregate rank
	// time spent waiting at collectives. Steals and GCPauseNs come from the
	// campaign recorder (campaign rows only).
	BarrierWaitShare float64 `json:"barrier_wait_share,omitempty"`
	Steals           int64   `json:"steals,omitempty"`
	GCPauseNs        int64   `json:"gc_pause_ns,omitempty"`
}

// ScalingRow is one (benchmark, GOMAXPROCS) point of the -scaling sweep:
// the raw per-op cost plus the derived parallel-scaling figures against the
// same benchmark's 1-proc row.
type ScalingRow struct {
	Name        string  `json:"name"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu,omitempty"` // host CPU count: gomaxprocs > num_cpu rows are oversubscribed
	NsPerOp     int64   `json:"ns_per_op"`
	CellsPerSec float64 `json:"cells_per_sec,omitempty"` // campaign rows only
	Speedup     float64 `json:"speedup"`                 // t(1 proc) / t(this row)
	Efficiency  float64 `json:"efficiency"`              // speedup / gomaxprocs

	// Host-telemetry columns from one instrumented pass per point (see
	// HostMetric): how barrier waiting, steal traffic and GC pressure move
	// as the procs sweep widens.
	BarrierWaitShare float64 `json:"barrier_wait_share,omitempty"`
	Steals           int64   `json:"steals,omitempty"`
	GCPauseNs        int64   `json:"gc_pause_ns,omitempty"`
}

// HostBenchReport is the BENCH_PR<N>.json schema: the current tree measured
// under the forced scalar-CSR kernel ("baseline", the PR 4 data path) and
// under the planner ("optimized", kernel=auto), plus the previous PR's
// optimized rows carried over from the newest lower-numbered BENCH_PR*.json
// ("previous") so the perf trajectory chains across PRs.
type HostBenchReport struct {
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu,omitempty"`
	Note       string `json:"note,omitempty"`

	// Build carries the VCS provenance of the benchmarking binary, so a
	// perf regression in the chain is attributable to a commit.
	Build esrp.BuildInfo `json:"build"`

	BaselineKernel  string `json:"baseline_kernel"`
	OptimizedKernel string `json:"optimized_kernel"`

	PreviousFile string       `json:"previous_file,omitempty"`
	Previous     []HostMetric `json:"previous,omitempty"`
	Baseline     []HostMetric `json:"baseline"`
	Optimized    []HostMetric `json:"optimized"`

	// Scaling holds the -scaling sweep: the solve and campaign-smoke
	// benchmarks re-measured at GOMAXPROCS ∈ {1, 2, 4, NumCPU} under
	// kernel=auto, with per-row speedup and parallel efficiency.
	Scaling []ScalingRow `json:"scaling,omitempty"`

	// Replay is the PR 9 row family: the same machine-parameter grid costed
	// the full way (one solve per machine point) and the replay way (one
	// recorded solve, one O(events) re-cost per machine point). Both rows
	// report cells/sec over the same grid; ReplaySpeedup is their ratio —
	// the throughput multiplier the replay engine buys machine sweeps.
	Replay        []HostMetric `json:"replay,omitempty"`
	ReplaySpeedup float64      `json:"replay_speedup,omitempty"`

	// Cache is the PR 10 row family: the campaign smoke grid swept cold
	// (solves + cache population), warm (pure result-tier hits, zero
	// solves), and warm at an uncached machine point (pure schedule-tier
	// re-costs, zero solves). CacheWarmSpeedup is warm-over-cold sweep
	// throughput — the multiplier the content-addressed cache buys an
	// unchanged re-run.
	Cache            []HostMetric `json:"cache,omitempty"`
	CacheWarmSpeedup float64      `json:"cache_warm_speedup,omitempty"`
}

// hostBenchCases mirrors bench_test.go's BenchmarkHostSolve fixtures — the
// reduced-scale Emilia analog plus the denser audikw analog, 16 nodes, fixed
// 60 iterations (unreachable tolerance) so the measured cost is the pure
// data path.
func hostBenchCases() []struct {
	name string
	cfg  esrp.Config
} {
	emilia := esrp.EmiliaLike(16, 16, 16, 923)
	audikw := esrp.AudikwLike(10, 10, 10, 3, 944)
	fixed := esrp.Config{A: emilia, B: esrp.RHSOnes(emilia.Rows), Nodes: 16, MaxIter: 60, Rtol: 1e-30}
	esr, esrpT20, imcr := fixed, fixed, fixed
	esr.Strategy, esr.Phi = esrp.StrategyESR, 1
	esrpT20.Strategy, esrpT20.T, esrpT20.Phi = esrp.StrategyESRP, 20, 1
	imcr.Strategy, imcr.T, imcr.Phi = esrp.StrategyIMCR, 20, 1
	audi := esrp.Config{A: audikw, B: esrp.RHSOnes(audikw.Rows), Nodes: 16, MaxIter: 60, Rtol: 1e-30}
	audiESRP := audi
	audiESRP.Strategy, audiESRP.T, audiESRP.Phi = esrp.StrategyESRP, 20, 1
	return []struct {
		name string
		cfg  esrp.Config
	}{
		{"solve/none", fixed},
		{"solve/esr", esr},
		{"solve/esrp-T20", esrpT20},
		{"solve/imcr-T20", imcr},
		{"solve/audikw-none", audi},
		{"solve/audikw-esrp-T20", audiESRP},
	}
}

// smokeGrid is the CI campaign smoke grid under a Poisson failure process
// (identical to bench_test.go's BenchmarkCampaignSweep), shared by the
// hostbench campaign row and the -scaling sweep.
func smokeGrid(kernel esrp.KernelKind) esrp.CampaignGrid {
	return esrp.CampaignGrid{
		Matrices:   []esrp.CampaignMatrix{{Name: "poisson2d-32", A: esrp.Poisson2D(32, 32)}},
		Nodes:      []int{8},
		Strategies: []esrp.Strategy{esrp.StrategyESRP, esrp.StrategyIMCR},
		Ts:         []int{10, 20},
		Phis:       []int{1},
		Seeds:      []int64{1, 2},
		Scenario:   esrp.FailureScenario{Model: esrp.ScenarioExponential, MTBF: 500, Horizon: 80},
		Kernel:     kernel,
	}
}

// benchCampaign measures the smoke grid's sweep throughput under the given
// kernel, at whatever GOMAXPROCS is currently in force.
func benchCampaign(kernel esrp.KernelKind) HostMetric {
	grid := smokeGrid(kernel)
	cells := 0
	start := time.Now()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := esrp.RunCampaign(grid)
			if err != nil {
				b.Fatal(err)
			}
			cells += len(rep.Cells)
		}
	})
	elapsed := time.Since(start).Seconds()
	m := HostMetric{
		Name: "campaign/smoke-grid", GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
	}
	if elapsed > 0 {
		m.CellsPerSec = float64(cells) / elapsed
	}
	return m
}

// benchSolve measures one solve configuration under the given kernel, at
// whatever GOMAXPROCS is currently in force.
func benchSolve(cfg esrp.Config, kernel esrp.KernelKind) HostMetric {
	cfg.Kernel = kernel
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := esrp.Solve(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	return HostMetric{
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), NsPerOp: r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
	}
}

// instrumentSolve runs one telemetry-enabled solve and returns the
// barrier-wait share: Σ member wait ns over (Nodes × wall ns), i.e. the
// fraction of aggregate rank-goroutine time spent waiting at collectives.
// A separate pass from benchSolve so the clean rows stay uninstrumented.
func instrumentSolve(cfg esrp.Config, kernel esrp.KernelKind) float64 {
	cfg.Kernel = kernel
	st := esrp.NewBarrierStats(cfg.Nodes)
	cfg.HostStats = st
	start := time.Now()
	if _, err := esrp.Solve(cfg); err != nil {
		return 0
	}
	wall := time.Since(start).Nanoseconds()
	if wall <= 0 {
		return 0
	}
	return float64(st.TotalWaitNs()) / (float64(cfg.Nodes) * float64(wall))
}

// instrumentCampaign runs one telemetry-enabled sweep of the smoke grid and
// condenses the recorder: barrier-wait share normalized by the full
// concurrency capacity (workers × largest cluster × wall), successful
// steals, and the campaign-attributable GC pause delta.
func instrumentCampaign(kernel esrp.KernelKind) (share float64, steals, gcPauseNs int64) {
	grid := smokeGrid(kernel)
	rec := esrp.NewHostRecorder()
	grid.HostObs = rec
	if _, err := esrp.RunCampaign(grid); err != nil {
		return 0, 0, 0
	}
	tel := rec.Telemetry()
	maxNodes := 0
	for _, n := range grid.Nodes {
		if n > maxNodes {
			maxNodes = n
		}
	}
	if capacity := float64(len(tel.Workers)) * float64(maxNodes) * float64(tel.WallNs); capacity > 0 {
		share = float64(tel.BarrierWaitNs) / capacity
	}
	return share, tel.Steals, tel.GCPauseDeltaNs()
}

// runHostBench measures the host-side suite under the given kernel and
// returns the metric rows (solve cases plus the campaign sweep). Each row
// also carries the hostobs columns from one instrumented pass run after
// the clean timing benchmark.
func runHostBench(kernel esrp.KernelKind) []HostMetric {
	var out []HostMetric
	for _, c := range hostBenchCases() {
		fmt.Fprintf(os.Stderr, "esrpbench: hostbench %s kernel=%v...\n", c.name, kernel)
		m := benchSolve(c.cfg, kernel)
		m.Name = c.name
		m.BarrierWaitShare = instrumentSolve(c.cfg, kernel)
		out = append(out, m)
	}
	fmt.Fprintf(os.Stderr, "esrpbench: hostbench campaign sweep kernel=%v...\n", kernel)
	cm := benchCampaign(kernel)
	cm.BarrierWaitShare, cm.Steals, cm.GCPauseNs = instrumentCampaign(kernel)
	return append(out, cm)
}

// scalingProcs is the GOMAXPROCS sweep of -scaling: 1, 2, 4 and the host's
// CPU count, deduplicated in ascending order. Points past NumCPU are kept —
// on a small host they measure the oversubscribed regime honestly (the
// barrier's yield-then-park policy is exactly for that shape) instead of
// silently narrowing the sweep.
func scalingProcs() []int {
	procs := []int{1, 2, 4, runtime.NumCPU()}
	sort.Ints(procs)
	out := procs[:1]
	for _, p := range procs[1:] {
		if p > out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// runScaling sweeps GOMAXPROCS over the solve and campaign-smoke benchmarks
// (kernel=auto — the optimized data path) and derives speedup and parallel
// efficiency against each benchmark's 1-proc row. The solve rows exercise
// rank-goroutine parallelism inside one simulated cluster; the campaign
// rows exercise cell parallelism across clusters (Workers defaults to
// GOMAXPROCS, so the sweep scales the worker pool with the procs).
func runScaling() []ScalingRow {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	solveCase := hostBenchCases()[0] // solve/none: the pure data path
	var rows []ScalingRow
	baseNs := make(map[string]float64)
	numCPU := runtime.NumCPU()
	for _, p := range scalingProcs() {
		runtime.GOMAXPROCS(p)
		if p > numCPU {
			fmt.Fprintf(os.Stderr,
				"esrpbench: WARNING: GOMAXPROCS=%d exceeds the host's %d CPUs — this point is OVERSUBSCRIBED; "+
					"its ns/op measures scheduler contention, not parallel speedup\n", p, numCPU)
		}
		fmt.Fprintf(os.Stderr, "esrpbench: scaling GOMAXPROCS=%d...\n", p)

		sm := benchSolve(solveCase.cfg, esrp.KernelAuto)
		sm.BarrierWaitShare = instrumentSolve(solveCase.cfg, esrp.KernelAuto)
		cm := benchCampaign(esrp.KernelAuto)
		cm.BarrierWaitShare, cm.Steals, cm.GCPauseNs = instrumentCampaign(esrp.KernelAuto)
		for _, m := range []HostMetric{
			{Name: solveCase.name, NsPerOp: sm.NsPerOp, BarrierWaitShare: sm.BarrierWaitShare},
			{Name: cm.Name, NsPerOp: cm.NsPerOp, CellsPerSec: cm.CellsPerSec,
				BarrierWaitShare: cm.BarrierWaitShare, Steals: cm.Steals, GCPauseNs: cm.GCPauseNs}} {
			row := ScalingRow{
				Name: m.Name, GoMaxProcs: p, NumCPU: numCPU,
				NsPerOp: m.NsPerOp, CellsPerSec: m.CellsPerSec,
				BarrierWaitShare: m.BarrierWaitShare, Steals: m.Steals, GCPauseNs: m.GCPauseNs,
			}
			if p == 1 || baseNs[m.Name] == 0 {
				baseNs[m.Name] = float64(m.NsPerOp)
			}
			if m.NsPerOp > 0 {
				row.Speedup = baseNs[m.Name] / float64(m.NsPerOp)
				row.Efficiency = row.Speedup / float64(p)
			}
			rows = append(rows, row)
		}
	}
	return rows
}

var benchPRFile = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// latestBenchFile finds the newest BENCH_PR*.json below the current export's
// number in dir, so each perf PR chains onto the last one's measured rows
// without hand-updating any flag or workflow.
func latestBenchFile(dir string) (string, bool) {
	cur := 0
	if m := benchPRFile.FindStringSubmatch(hostBenchFile); m != nil {
		cur, _ = strconv.Atoi(m[1])
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", false
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := benchPRFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		if n < cur && n > bestN {
			best, bestN = filepath.Join(dir, e.Name()), n
		}
	}
	return best, bestN >= 0
}

// writeHostBench runs the suite twice — kernel=csr as the baseline (the
// PR 4 data path) and kernel=auto as the optimized rows — and writes
// BENCH_PR<N>.json into dir. With scaling set it also sweeps GOMAXPROCS
// over the solve and campaign-smoke benchmarks into the export's scaling
// section. The previous PR's export (baselinePath, or the newest
// lower-numbered BENCH_PR*.json in the working directory when empty)
// contributes its optimized rows as the "previous" chain link.
func writeHostBench(dir, baselinePath, note string, scaling bool) (string, error) {
	if p := runtime.GOMAXPROCS(0); p > runtime.NumCPU() {
		fmt.Fprintf(os.Stderr,
			"esrpbench: WARNING: GOMAXPROCS=%d exceeds the host's %d CPUs — every row below is OVERSUBSCRIBED\n",
			p, runtime.NumCPU())
	}
	rep := HostBenchReport{
		GoVersion:       runtime.Version(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Build:           esrp.CurrentBuild(),
		Note:            note,
		BaselineKernel:  esrp.KernelCSR.String(),
		OptimizedKernel: esrp.KernelAuto.String(),
		Baseline:        runHostBench(esrp.KernelCSR),
		Optimized:       runHostBench(esrp.KernelAuto),
	}
	rep.Replay, rep.ReplaySpeedup = runReplayBench()
	rep.Cache, rep.CacheWarmSpeedup = runCacheBench()
	if scaling {
		rep.Scaling = runScaling()
	}
	if baselinePath == "" {
		if found, ok := latestBenchFile("."); ok {
			baselinePath = found
		}
	}
	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return "", fmt.Errorf("reading baseline: %w", err)
		}
		var prev HostBenchReport
		if err := json.Unmarshal(data, &prev); err != nil {
			return "", fmt.Errorf("parsing baseline: %w", err)
		}
		rep.PreviousFile = filepath.Base(baselinePath)
		rep.Previous = prev.Optimized
	}
	path := filepath.Join(dir, hostBenchFile)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}
