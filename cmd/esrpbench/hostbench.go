package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"esrp"
)

// HostMetric is one host-side performance measurement: wall-clock and
// allocation cost per operation, plus sweep throughput for the campaign
// row. These are the numbers the zero-allocation hot path optimizes — the
// simulated (LogGP) figures in the same exports are bitwise invariant.
type HostMetric struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	CellsPerSec float64 `json:"cells_per_sec,omitempty"` // campaign rows only
}

// HostBenchReport is the BENCH_PR4.json schema: the current tree's numbers
// ("optimized") next to a reference tree's ("baseline", carried over from a
// previous export via -host-baseline), starting the host-side performance
// trajectory.
type HostBenchReport struct {
	GoVersion  string       `json:"go_version"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Note       string       `json:"note,omitempty"`
	Baseline   []HostMetric `json:"baseline,omitempty"`
	Optimized  []HostMetric `json:"optimized"`
}

// hostBenchCases mirrors bench_test.go's BenchmarkHostSolve fixtures: the
// reduced-scale Emilia analog, 16 nodes, fixed 60 iterations (unreachable
// tolerance) so the measured cost is the pure data path.
func hostBenchCases() []struct {
	name string
	cfg  esrp.Config
} {
	a := esrp.EmiliaLike(16, 16, 16, 923)
	rhs := esrp.RHSOnes(a.Rows)
	fixed := esrp.Config{A: a, B: rhs, Nodes: 16, MaxIter: 60, Rtol: 1e-30}
	esr, esrpT20, imcr := fixed, fixed, fixed
	esr.Strategy, esr.Phi = esrp.StrategyESR, 1
	esrpT20.Strategy, esrpT20.T, esrpT20.Phi = esrp.StrategyESRP, 20, 1
	imcr.Strategy, imcr.T, imcr.Phi = esrp.StrategyIMCR, 20, 1
	return []struct {
		name string
		cfg  esrp.Config
	}{
		{"solve/none", fixed},
		{"solve/esr", esr},
		{"solve/esrp-T20", esrpT20},
		{"solve/imcr-T20", imcr},
	}
}

// runHostBench measures the host-side suite with testing.Benchmark and
// returns the metric rows (solve cases plus the campaign sweep).
func runHostBench() []HostMetric {
	var out []HostMetric
	for _, c := range hostBenchCases() {
		cfg := c.cfg
		fmt.Fprintf(os.Stderr, "esrpbench: hostbench %s...\n", c.name)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := esrp.Solve(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, HostMetric{
			Name: c.name, NsPerOp: r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		})
	}

	// Campaign sweep throughput: the CI smoke grid shape under a Poisson
	// failure process (identical to bench_test.go's BenchmarkCampaignSweep).
	grid := esrp.CampaignGrid{
		Matrices:   []esrp.CampaignMatrix{{Name: "poisson2d-32", A: esrp.Poisson2D(32, 32)}},
		Nodes:      []int{8},
		Strategies: []esrp.Strategy{esrp.StrategyESRP, esrp.StrategyIMCR},
		Ts:         []int{10, 20},
		Phis:       []int{1},
		Seeds:      []int64{1, 2},
		Scenario:   esrp.FailureScenario{Model: esrp.ScenarioExponential, MTBF: 500, Horizon: 80},
	}
	fmt.Fprintln(os.Stderr, "esrpbench: hostbench campaign sweep...")
	cells := 0
	start := time.Now()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := esrp.RunCampaign(grid)
			if err != nil {
				b.Fatal(err)
			}
			cells += len(rep.Cells)
		}
	})
	elapsed := time.Since(start).Seconds()
	m := HostMetric{
		Name: "campaign/smoke-grid", NsPerOp: r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
	}
	if elapsed > 0 {
		m.CellsPerSec = float64(cells) / elapsed
	}
	out = append(out, m)
	return out
}

// writeHostBench runs the suite and writes BENCH_PR4.json into dir. When
// baselinePath names a previous export, its "optimized" rows become this
// export's "baseline" — so each perf PR chains onto the last one's numbers.
func writeHostBench(dir, baselinePath, note string) (string, error) {
	rep := HostBenchReport{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note:       note,
		Optimized:  runHostBench(),
	}
	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return "", fmt.Errorf("reading baseline: %w", err)
		}
		var base HostBenchReport
		if err := json.Unmarshal(data, &base); err != nil {
			return "", fmt.Errorf("parsing baseline: %w", err)
		}
		rep.Baseline = base.Optimized
	}
	path := filepath.Join(dir, "BENCH_PR4.json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}
