// Command esrpbench regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	esrpbench -table 1          # Table 1: test-matrix inventory
//	esrpbench -table 2          # Table 2: Emilia-like overhead constellation
//	esrpbench -table 3          # Table 3: audikw-like overhead constellation
//	esrpbench -table 4          # Table 4: residual drift (runs both matrices)
//	esrpbench -fig 2            # Fig. 2: Emilia-like overhead-vs-T series
//	esrpbench -fig 3            # Fig. 3: audikw-like overhead-vs-T series
//	esrpbench -all              # everything
//
// Scale knobs (the paper runs 923k–944k rows on 128 nodes; the default here
// is a laptop-scale analog preserving the sparsity-pattern class):
//
//	-nodes N    cluster size (default 32)
//	-scale S    grid refinement factor (default 1; 2 ≈ 8× the rows)
//	-phis CSV   redundancy counts (default 1,3,8)
//	-ts CSV     checkpoint intervals (default 1,20,50,100)
//	-reps R     repetitions per setting (default 1; runs are deterministic)
//
// Every constellation run also writes a machine-readable BENCH_<name>.json
// (simulated time, iterations, halo bytes, max per-node bytes for the
// reference and every cell) into -json-dir, so the performance trajectory is
// tracked across changes; -json-dir "" disables the export.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"esrp"
	"esrp/internal/profiling"
)

func main() {
	var (
		table = flag.Int("table", 0, "regenerate Table 1..4 (0 = none)")
		fig   = flag.Int("fig", 0, "regenerate Figure 2..3 (0 = none)")
		all   = flag.Bool("all", false, "regenerate every table and figure")

		nodes   = flag.Int("nodes", 32, "simulated cluster size")
		scale   = flag.Int("scale", 1, "grid refinement factor for the test matrices")
		phis    = flag.String("phis", "1,3,8", "comma-separated redundancy counts φ")
		ts      = flag.String("ts", "1,20,50,100", "comma-separated checkpoint intervals T")
		reps    = flag.Int("reps", 1, "repetitions per setting (median reported)")
		rtol    = flag.Float64("rtol", 1e-8, "outer relative tolerance")
		kernel  = flag.String("kernel", "auto", "SpMV kernel layout: auto|csr|sellc|band (simulated figures are bit-identical under every choice)")
		jsonDir = flag.String("json-dir", ".", "directory for the BENCH_<name>.json exports (\"\" = disabled)")

		hostbench    = flag.Bool("hostbench", false, "measure host-side performance (ns/op, allocs/op, campaign cells/sec; kernel=csr baseline vs kernel=auto) and write "+hostBenchFile+" to -json-dir")
		scaling      = flag.Bool("scaling", false, "with the hostbench suite, sweep GOMAXPROCS ∈ {1,2,4,NumCPU} over the solve and campaign-smoke benchmarks and record per-procs rows plus parallel efficiency in "+hostBenchFile+" (implies -hostbench)")
		hostBaseline = flag.String("host-baseline", "", "previous BENCH_PR*.json to chain from (\"\" = newest BENCH_PR*.json in the current directory)")
		hostNote     = flag.String("host-note", "", "free-form note recorded in the "+hostBenchFile+" export")

		check          = flag.String("check", "", "perf-regression sentinel: re-run the benchmarks of this committed BENCH_PR*.json and exit non-zero (with a per-row delta table) when ns/op or allocs/op regress beyond the tolerances")
		checkTolNs     = flag.Float64("check-tol-ns", 0.35, "fractional ns/op regression tolerated by -check (0.35 = +35%)")
		checkTolAllocs = flag.Float64("check-tol-allocs", 0.15, "fractional allocs/op regression tolerated by -check")

		cpuprofile    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile    = flag.String("memprofile", "", "write a heap profile to this file on exit")
		allocsprofile = flag.String("allocsprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile, *allocsprofile)
	if err != nil {
		fatalf("%v", err)
	}
	stopProfile = stop // fatalf finishes the profiles before os.Exit
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintf(os.Stderr, "esrpbench: %v\n", err)
		}
	}()

	if *check != "" {
		failed, err := runCheck(*check, *checkTolNs, *checkTolAllocs)
		if err != nil {
			fatalf("%v", err)
		}
		if failed > 0 {
			fatalf("check: %d row(s) regressed beyond tolerance", failed)
		}
		fmt.Fprintln(os.Stderr, "esrpbench: check passed")
		return
	}

	if *hostbench || *scaling {
		if *jsonDir == "" {
			fatalf("-hostbench writes %s and needs a -json-dir (got the disabled value \"\")", hostBenchFile)
		}
		path, err := writeHostBench(*jsonDir, *hostBaseline, *hostNote, *scaling)
		if err != nil {
			fatalf("hostbench: %v", err)
		}
		fmt.Fprintf(os.Stderr, "esrpbench: wrote %s\n", path)
		return
	}

	if !*all && *table == 0 && *fig == 0 {
		flag.Usage()
		os.Exit(2)
	}

	phiList, err := parseInts(*phis)
	if err != nil {
		fatalf("bad -phis: %v", err)
	}
	tList, err := parseInts(*ts)
	if err != nil {
		fatalf("bad -ts: %v", err)
	}

	kk, err := esrp.ParseKernel(*kernel)
	if err != nil {
		fatalf("bad -kernel: %v", err)
	}

	g := generator{nodes: *nodes, scale: *scale, phis: phiList, ts: tList, reps: *reps, rtol: *rtol, kernel: kk, jsonDir: *jsonDir}

	want := func(t, f int) bool {
		if *all {
			return true
		}
		return (t != 0 && *table == t) || (f != 0 && *fig == f)
	}

	if want(1, 0) {
		fmt.Print(esrpTable1(g))
		fmt.Println()
	}
	// Tables 2/3 and Figures 2/3 share the same underlying constellation, so
	// run each matrix at most once.
	var emilia, audikw *esrp.ExperimentReport
	if want(2, 2) || *all || *table == 4 {
		emilia = g.run("Emilia-like", g.emilia())
	}
	if want(3, 3) || *all || *table == 4 {
		audikw = g.run("audikw-like", g.audikw())
	}
	if want(2, 0) {
		fmt.Println("== Table 2 ==")
		fmt.Print(esrp.RenderOverheadTable(emilia))
		fmt.Println()
	}
	if want(3, 0) {
		fmt.Println("== Table 3 ==")
		fmt.Print(esrp.RenderOverheadTable(audikw))
		fmt.Println()
	}
	if want(4, 0) {
		fmt.Println("== Table 4 ==")
		fmt.Print(esrp.RenderDriftTable([]*esrp.ExperimentReport{emilia, audikw}))
		fmt.Println()
	}
	if want(0, 2) {
		fmt.Println("== Figure 2 ==")
		fmt.Print(esrp.RenderFigure(emilia, true))
		fmt.Println()
		fmt.Print(esrp.RenderFigureASCII(emilia, true))
		fmt.Println()
		fmt.Print(esrp.RenderFigure(emilia, false))
		fmt.Println()
		fmt.Print(esrp.RenderFigureASCII(emilia, false))
		fmt.Println()
	}
	if want(0, 3) {
		fmt.Println("== Figure 3 ==")
		fmt.Print(esrp.RenderFigure(audikw, true))
		fmt.Println()
		fmt.Print(esrp.RenderFigureASCII(audikw, true))
		fmt.Println()
		fmt.Print(esrp.RenderFigure(audikw, false))
		fmt.Println()
		fmt.Print(esrp.RenderFigureASCII(audikw, false))
		fmt.Println()
	}
}

// generator holds the scale parameters and builds the experiment specs.
type generator struct {
	nodes, scale, reps int
	phis, ts           []int
	rtol               float64
	kernel             esrp.KernelKind
	jsonDir            string
}

// emilia returns the Emilia_923 analog at the configured scale: a banded
// scalar 27-point stencil (structural/geomechanics character).
func (g generator) emilia() *esrp.CSR {
	s := g.scale
	return esrp.EmiliaLike(24*s, 24*s, 24*s, 923)
}

// audikw returns the audikw_1 analog: 27-point stencil with 3 dofs/vertex
// (elasticity character, denser rows, wider band).
func (g generator) audikw() *esrp.CSR {
	// 28³ vertices keep the reference iteration count above 2·T for every
	// default interval, so the T = 100 failure runs land after a completed
	// storage stage, as in the paper.
	s := g.scale
	return esrp.AudikwLike(28*s, 28*s, 28*s, 3, 944)
}

func (g generator) run(name string, a *esrp.CSR) *esrp.ExperimentReport {
	fmt.Fprintf(os.Stderr, "esrpbench: running %s constellation (%d rows, %d nnz, %d nodes)...\n",
		name, a.Rows, a.NNZ(), g.nodes)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	rep, err := esrp.RunExperiment(esrp.ExperimentSpec{
		Name:   name,
		Matrix: a,
		Nodes:  g.nodes,
		Ts:     g.ts,
		Phis:   g.phis,
		Reps:   g.reps,
		Rtol:   g.rtol,
		Kernel: g.kernel,
	})
	hostNs := time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&m1)
	if err != nil {
		fatalf("%s constellation: %v", name, err)
	}
	hostAllocs := int64(m1.Mallocs - m0.Mallocs)
	fmt.Fprintf(os.Stderr, "esrpbench: %s done in %v (reference: %d iterations, %.4g s simulated)\n",
		name, time.Since(start).Round(time.Millisecond), rep.RefIters, rep.RefTime)
	if g.jsonDir != "" {
		if path, err := writeBenchJSON(g.jsonDir, name, g, a, rep, hostNs, hostAllocs); err != nil {
			fmt.Fprintf(os.Stderr, "esrpbench: writing %s results: %v\n", name, err)
		} else {
			fmt.Fprintf(os.Stderr, "esrpbench: wrote %s\n", path)
		}
	}
	return rep
}

// benchCell is one machine-readable measurement row of the export.
type benchCell struct {
	Strategy     string  `json:"strategy"`
	T            int     `json:"t"`
	Phi          int     `json:"phi"`
	SimTime      float64 `json:"sim_time_s"`
	Overhead     float64 `json:"overhead"`
	Iterations   int     `json:"iterations"`
	MaxNodeBytes int64   `json:"max_node_bytes"`
	HaloBytes    int64   `json:"halo_bytes"`
}

// benchJSON is the BENCH_<name>.json schema: the reference run plus every
// failure-free cell of the constellation, in stable sweep order.
type benchJSON struct {
	Name  string `json:"name"`
	Rows  int    `json:"rows"`
	NNZ   int    `json:"nnz"`
	Nodes int    `json:"nodes"`
	Scale int    `json:"scale"`

	// Build is the provenance stamp of the binary that produced the export
	// (Go version, VCS revision) — the anchor for comparing figures across
	// runs.
	Build esrp.BuildInfo `json:"build"`

	RefSimTime      float64 `json:"ref_sim_time_s"`
	RefIterations   int     `json:"ref_iterations"`
	RefMaxNodeBytes int64   `json:"ref_max_node_bytes"`
	RefHaloBytes    int64   `json:"ref_halo_bytes"`

	// Host-side cost of regenerating the whole constellation: wall-clock
	// nanoseconds and heap allocations. Unlike the simulated figures above,
	// these change with engine optimizations.
	HostWallNs int64 `json:"host_wall_ns"`
	HostAllocs int64 `json:"host_allocs"`

	Cells []benchCell `json:"cells"`
}

// writeBenchJSON exports one constellation's headline numbers so the perf
// trajectory (simulated time, traffic, memory, host-side cost) is tracked
// run over run.
func writeBenchJSON(dir, name string, g generator, a *esrp.CSR, rep *esrp.ExperimentReport, hostNs, hostAllocs int64) (string, error) {
	out := benchJSON{
		Name: name, Rows: a.Rows, NNZ: a.NNZ(), Nodes: g.nodes, Scale: g.scale,
		Build:      esrp.CurrentBuild(),
		RefSimTime: rep.RefTime, RefIterations: rep.RefIters,
		RefMaxNodeBytes: rep.RefMaxNodeBytes, RefHaloBytes: rep.RefHaloBytes,
		HostWallNs: hostNs, HostAllocs: hostAllocs,
	}
	add := func(label string, cells []esrp.ExperimentCell) {
		for _, c := range cells {
			strat := label
			if label == "ESRP" && c.T == 1 {
				strat = "ESR"
			}
			out.Cells = append(out.Cells, benchCell{
				Strategy: strat, T: c.T, Phi: c.Phi,
				SimTime: c.FFTime, Overhead: c.FFOverhead, Iterations: c.FFIters,
				MaxNodeBytes: c.FFMaxNodeBytes, HaloBytes: c.FFHaloBytes,
			})
		}
	}
	add("ESRP", rep.ESRP)
	add("IMCR", rep.IMCR)

	path := filepath.Join(dir, "BENCH_"+sanitizeName(name)+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// sanitizeName keeps the export filename shell-friendly.
func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, name)
}

func esrpTable1(g generator) string {
	em, au := g.emilia(), g.audikw()
	return esrp.RenderTable1([]esrp.Table1Row{
		{Name: "Emilia-like (paper: Emilia_923)", ProblemType: "Structural", Size: em.Rows, NNZ: em.NNZ()},
		{Name: "audikw-like (paper: audikw_1)", ProblemType: "Structural", Size: au.Rows, NNZ: au.NNZ()},
	})
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// stopProfile finishes any active -cpuprofile/-memprofile capture; fatalf
// calls it so error exits (os.Exit skips defers) still produce readable
// profiles — the failing runs are the ones worth profiling.
var stopProfile func() error

func fatalf(format string, args ...any) {
	if stopProfile != nil {
		if err := stopProfile(); err != nil {
			fmt.Fprintf(os.Stderr, "esrpbench: %v\n", err)
		}
	}
	fmt.Fprintf(os.Stderr, "esrpbench: "+format+"\n", args...)
	os.Exit(1)
}
