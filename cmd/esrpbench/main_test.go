package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"esrp"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 20,50")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 50 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts(""); err == nil {
		t.Error("empty list must fail")
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("non-integer must fail")
	}
}

func TestGeneratorsAtScaleOne(t *testing.T) {
	g := generator{scale: 1}
	if a := g.emilia(); a.Rows != 24*24*24 {
		t.Fatalf("emilia rows = %d", a.Rows)
	}
	if a := g.audikw(); a.Rows != 28*28*28*3 {
		t.Fatalf("audikw rows = %d", a.Rows)
	}
}

func TestSanitizeName(t *testing.T) {
	if got := sanitizeName("Emilia-like (paper)"); got != "Emilia-like--paper-" {
		t.Fatalf("sanitizeName = %q", got)
	}
}

// The JSON export must carry the reference and per-cell perf figures and be
// valid JSON on disk.
func TestWriteBenchJSON(t *testing.T) {
	dir := t.TempDir()
	a := esrp.Poisson2D(24, 24)
	rep, err := esrp.RunExperiment(esrp.ExperimentSpec{
		Name: "tiny", Matrix: a, Nodes: 6, Ts: []int{1, 10}, Phis: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := generator{nodes: 6, scale: 1, jsonDir: dir}
	path, err := writeBenchJSON(dir, "tiny", g, a, rep, 12345, 678)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_tiny.json" {
		t.Fatalf("unexpected export path %q", path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out benchJSON
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if out.RefSimTime <= 0 || out.RefIterations <= 0 || out.RefMaxNodeBytes <= 0 || out.RefHaloBytes <= 0 {
		t.Fatalf("reference figures missing: %+v", out)
	}
	// 2 ESRP cells (T=1 is ESR) + 1 IMCR cell.
	if len(out.Cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(out.Cells))
	}
	if out.Cells[0].Strategy != "ESR" {
		t.Fatalf("T=1 cell labeled %q, want ESR", out.Cells[0].Strategy)
	}
	for _, c := range out.Cells {
		if c.SimTime <= 0 || c.Iterations <= 0 || c.MaxNodeBytes <= 0 || c.HaloBytes <= 0 {
			t.Fatalf("cell figures missing: %+v", c)
		}
	}
}
