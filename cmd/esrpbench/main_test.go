package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 20,50")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 50 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts(""); err == nil {
		t.Error("empty list must fail")
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("non-integer must fail")
	}
}

func TestGeneratorsAtScaleOne(t *testing.T) {
	g := generator{scale: 1}
	if a := g.emilia(); a.Rows != 24*24*24 {
		t.Fatalf("emilia rows = %d", a.Rows)
	}
	if a := g.audikw(); a.Rows != 28*28*28*3 {
		t.Fatalf("audikw rows = %d", a.Rows)
	}
}
