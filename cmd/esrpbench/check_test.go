package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func sentinelBaseline() []HostMetric {
	return []HostMetric{
		{Name: "solve/poisson-small", GoMaxProcs: 1, NsPerOp: 1_000_000, AllocsPerOp: 100},
		{Name: "campaign/smoke-grid", GoMaxProcs: 1, NsPerOp: 50_000_000, AllocsPerOp: 9000},
	}
}

// TestCheckPassesOnUnchangedMeasurements pins that the sentinel passes when
// the re-measured tree matches the baseline exactly.
func TestCheckPassesOnUnchangedMeasurements(t *testing.T) {
	base := sentinelBaseline()
	same := func(name string) (esrpMetric, bool) {
		for _, b := range base {
			if b.Name == name {
				return esrpMetric{NsPerOp: b.NsPerOp, AllocsPerOp: b.AllocsPerOp}, true
			}
		}
		return esrpMetric{}, false
	}
	rows, failed := checkAgainst(base, same, 0.35, 0.15)
	if failed != 0 {
		t.Fatalf("identical measurements failed %d rows", failed)
	}
	for _, r := range rows {
		if r.Failed || r.Skipped {
			t.Errorf("row %s: failed=%v skipped=%v, want clean pass", r.Name, r.Failed, r.Skipped)
		}
		if r.DeltaNs != 0 || r.DeltaAllocs != 0 {
			t.Errorf("row %s: deltas %g/%g, want 0", r.Name, r.DeltaNs, r.DeltaAllocs)
		}
	}
}

// TestCheckFailsOnInjectedSlowdown is the acceptance pin: a slowdown past
// the ns/op tolerance must fail the run with a non-zero count, and the
// offending row must carry the Failed mark the delta table renders.
func TestCheckFailsOnInjectedSlowdown(t *testing.T) {
	base := sentinelBaseline()
	slowed := func(name string) (esrpMetric, bool) {
		for _, b := range base {
			if b.Name == name {
				// 2× ns/op — far past the 35% tolerance.
				return esrpMetric{NsPerOp: 2 * b.NsPerOp, AllocsPerOp: b.AllocsPerOp}, true
			}
		}
		return esrpMetric{}, false
	}
	rows, failed := checkAgainst(base, slowed, 0.35, 0.15)
	if failed != len(base) {
		t.Fatalf("2x slowdown failed %d rows, want all %d", failed, len(base))
	}
	for _, r := range rows {
		if !r.Failed {
			t.Errorf("row %s not marked Failed after 2x slowdown", r.Name)
		}
		if r.DeltaNs < 0.99 || r.DeltaNs > 1.01 {
			t.Errorf("row %s DeltaNs %g, want ~1.0", r.Name, r.DeltaNs)
		}
	}
}

// TestCheckFailsOnAllocRegression pins the tight allocs/op gate: ns/op
// within tolerance but a reintroduced per-op allocation past 15% fails.
func TestCheckFailsOnAllocRegression(t *testing.T) {
	base := sentinelBaseline()[:1]
	leaky := func(string) (esrpMetric, bool) {
		return esrpMetric{NsPerOp: base[0].NsPerOp, AllocsPerOp: base[0].AllocsPerOp * 2}, true
	}
	_, failed := checkAgainst(base, leaky, 0.35, 0.15)
	if failed != 1 {
		t.Fatalf("doubled allocs/op failed %d rows, want 1", failed)
	}
}

// TestCheckImprovementsAndSkipsPass pins that speedups (negative deltas)
// never fail and unknown baseline rows are skipped, not failed — renaming a
// benchmark must not brick the sentinel.
func TestCheckImprovementsAndSkipsPass(t *testing.T) {
	base := append(sentinelBaseline(), HostMetric{Name: "solve/retired-case", NsPerOp: 10, AllocsPerOp: 10})
	faster := func(name string) (esrpMetric, bool) {
		if name == "solve/retired-case" {
			return esrpMetric{}, false
		}
		return esrpMetric{NsPerOp: 1, AllocsPerOp: 1}, true
	}
	rows, failed := checkAgainst(base, faster, 0.35, 0.15)
	if failed != 0 {
		t.Fatalf("improvements + skip failed %d rows, want 0", failed)
	}
	var skips int
	for _, r := range rows {
		if r.Skipped {
			skips++
		}
	}
	if skips != 1 {
		t.Errorf("%d rows skipped, want 1", skips)
	}
}

// TestRenderCheckTable sanity-checks the human-facing delta table: one line
// per row plus the tolerance footer, FAIL verdicts on failed rows only.
func TestRenderCheckTable(t *testing.T) {
	base := sentinelBaseline()
	slowed := func(name string) (esrpMetric, bool) {
		if name == base[0].Name {
			return esrpMetric{NsPerOp: 3 * base[0].NsPerOp, AllocsPerOp: base[0].AllocsPerOp}, true
		}
		return esrpMetric{NsPerOp: base[1].NsPerOp, AllocsPerOp: base[1].AllocsPerOp}, true
	}
	rows, _ := checkAgainst(base, slowed, 0.35, 0.15)
	var sb strings.Builder
	renderCheckTable(&sb, rows, 0.35, 0.15)
	out := sb.String()
	if !strings.Contains(out, "FAIL") {
		t.Errorf("table missing FAIL verdict:\n%s", out)
	}
	if strings.Count(out, "FAIL") != 1 {
		t.Errorf("table has %d FAIL verdicts, want 1:\n%s", strings.Count(out, "FAIL"), out)
	}
	if !strings.Contains(out, "tolerances: ns/op +35%, allocs/op +15%") {
		t.Errorf("table missing tolerance footer:\n%s", out)
	}
}

// TestCheckToleratesPR5EraBaseline pins backward compatibility of the
// sentinel's baseline format: a BENCH_PR5-era export predates the host
// telemetry columns (barrier_wait_share, steals, gc_pause_ns) and the
// num_cpu stamp, and -check must parse it and compare cleanly — the
// missing columns decode to zero and never enter the ns/allocs gates.
func TestCheckToleratesPR5EraBaseline(t *testing.T) {
	const pr5JSON = `{
  "go_version": "go1.24",
  "gomaxprocs": 8,
  "build": {"go_version": "go1.24"},
  "baseline_kernel": "csr",
  "optimized_kernel": "auto",
  "baseline": [
    {"name": "solve/none", "gomaxprocs": 8, "ns_per_op": 2000000, "allocs_per_op": 300, "bytes_per_op": 40000}
  ],
  "optimized": [
    {"name": "solve/none", "gomaxprocs": 8, "ns_per_op": 1000000, "allocs_per_op": 200, "bytes_per_op": 30000},
    {"name": "campaign/smoke-grid", "gomaxprocs": 8, "ns_per_op": 60000000, "allocs_per_op": 8000, "bytes_per_op": 900000, "cells_per_sec": 120}
  ]
}`
	var base HostBenchReport
	if err := json.Unmarshal([]byte(pr5JSON), &base); err != nil {
		t.Fatalf("PR5-era baseline no longer parses: %v", err)
	}
	if len(base.Optimized) != 2 {
		t.Fatalf("decoded %d optimized rows, want 2", len(base.Optimized))
	}
	for _, r := range base.Optimized {
		if r.BarrierWaitShare != 0 || r.Steals != 0 || r.GCPauseNs != 0 || r.NumCPU != 0 {
			t.Errorf("row %s: missing telemetry columns decoded non-zero: %+v", r.Name, r)
		}
	}
	same := func(name string) (esrpMetric, bool) {
		for _, b := range base.Optimized {
			if b.Name == name {
				return esrpMetric{NsPerOp: b.NsPerOp, AllocsPerOp: b.AllocsPerOp}, true
			}
		}
		return esrpMetric{}, false
	}
	rows, failed := checkAgainst(base.Optimized, same, 0.35, 0.15)
	if failed != 0 {
		t.Fatalf("PR5-era baseline failed %d rows on identical measurements", failed)
	}
	for _, r := range rows {
		if r.Skipped || r.Failed {
			t.Errorf("row %s: skipped=%v failed=%v, want clean pass", r.Name, r.Skipped, r.Failed)
		}
	}
}

// TestHostBenchCaseNamesUnique pins that liveMeasure's by-name matching is
// unambiguous: every solve case the bench emits has a distinct name, and
// none collides with the campaign row.
func TestHostBenchCaseNamesUnique(t *testing.T) {
	seen := map[string]bool{"campaign/smoke-grid": true}
	for _, c := range hostBenchCases() {
		if c.name == "" {
			t.Error("hostBenchCases contains an unnamed case")
		}
		if seen[c.name] {
			t.Errorf("duplicate benchmark name %q", c.name)
		}
		seen[c.name] = true
	}
}
