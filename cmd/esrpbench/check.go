package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"esrp"
)

// This file is the perf-regression sentinel: `esrpbench -check <baseline>`
// loads a committed BENCH_PR*.json, re-runs the benchmarks its optimized
// rows were measured from, and fails (non-zero exit, per-row delta table)
// when ns/op or allocs/op regress beyond the configured tolerances. CI
// runs it against the committed baseline so the BENCH_PR4 → PR5 → PR7 →
// PR8 trajectory is enforced, not just recorded.
//
// Tolerance semantics: a row fails when (current − baseline)/baseline
// exceeds the fractional tolerance. ns/op needs a loose tolerance on
// shared CI machines; allocs/op is machine-independent and can be held
// much tighter — it is the column that catches "someone re-introduced a
// per-iteration allocation" exactly.

// checkRow is one compared row of the delta table.
type checkRow struct {
	Name        string
	Procs       int
	BaseNs      int64
	CurNs       int64
	DeltaNs     float64 // fractional: (cur-base)/base
	BaseAllocs  int64
	CurAllocs   int64
	DeltaAllocs float64
	Skipped     bool // no matching benchmark in this tree
	Failed      bool
}

// measureFunc re-measures one named baseline row and reports whether the
// name is known. Indirected so tests can pin the sentinel's pass/fail
// behaviour with synthetic measurements instead of minute-long reruns.
type measureFunc func(name string) (esrpMetric, bool)

// esrpMetric is the slice of HostMetric the sentinel compares.
type esrpMetric struct {
	NsPerOp     int64
	AllocsPerOp int64
}

// checkAgainst compares the baseline's optimized rows against fresh
// measurements and returns the delta table plus the failed-row count.
func checkAgainst(base []HostMetric, measure measureFunc, tolNs, tolAllocs float64) ([]checkRow, int) {
	rows := make([]checkRow, 0, len(base))
	failed := 0
	for _, b := range base {
		row := checkRow{Name: b.Name, Procs: b.GoMaxProcs, BaseNs: b.NsPerOp, BaseAllocs: b.AllocsPerOp}
		cur, ok := measure(b.Name)
		if !ok {
			row.Skipped = true
			rows = append(rows, row)
			continue
		}
		row.CurNs, row.CurAllocs = cur.NsPerOp, cur.AllocsPerOp
		if b.NsPerOp > 0 {
			row.DeltaNs = float64(cur.NsPerOp-b.NsPerOp) / float64(b.NsPerOp)
		}
		if b.AllocsPerOp > 0 {
			row.DeltaAllocs = float64(cur.AllocsPerOp-b.AllocsPerOp) / float64(b.AllocsPerOp)
		}
		if row.DeltaNs > tolNs || row.DeltaAllocs > tolAllocs {
			row.Failed = true
			failed++
		}
		rows = append(rows, row)
	}
	return rows, failed
}

// renderCheckTable prints the delta table. Improvements print as negative
// deltas; only regressions beyond tolerance are marked FAIL.
func renderCheckTable(w io.Writer, rows []checkRow, tolNs, tolAllocs float64) {
	fmt.Fprintf(w, "%-28s %6s  %14s %14s %8s  %12s %12s %8s  %s\n",
		"benchmark", "procs", "base ns/op", "cur ns/op", "Δns", "base allocs", "cur allocs", "Δallocs", "verdict")
	for _, r := range rows {
		if r.Skipped {
			fmt.Fprintf(w, "%-28s %6d  %14d %14s %8s  %12d %12s %8s  SKIP (unknown benchmark)\n",
				r.Name, r.Procs, r.BaseNs, "-", "-", r.BaseAllocs, "-", "-")
			continue
		}
		verdict := "ok"
		if r.Failed {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "%-28s %6d  %14d %14d %+7.1f%%  %12d %12d %+7.1f%%  %s\n",
			r.Name, r.Procs, r.BaseNs, r.CurNs, 100*r.DeltaNs,
			r.BaseAllocs, r.CurAllocs, 100*r.DeltaAllocs, verdict)
	}
	fmt.Fprintf(w, "tolerances: ns/op +%.0f%%, allocs/op +%.0f%%\n", 100*tolNs, 100*tolAllocs)
}

// liveMeasure re-runs the benchmark matching a baseline row name: the
// solve cases by fixture name, the campaign smoke grid by its row name —
// all under kernel=auto (the optimized configuration the baseline's rows
// were measured with). Rows measured at a different GOMAXPROCS are
// re-measured at this host's setting; ns/op tolerance must absorb that.
func liveMeasure(name string) (esrpMetric, bool) {
	if name == "campaign/smoke-grid" {
		fmt.Fprintf(os.Stderr, "esrpbench: check re-running %s...\n", name)
		m := benchCampaign(esrp.KernelAuto)
		return esrpMetric{NsPerOp: m.NsPerOp, AllocsPerOp: m.AllocsPerOp}, true
	}
	for _, c := range hostBenchCases() {
		if c.name == name {
			fmt.Fprintf(os.Stderr, "esrpbench: check re-running %s...\n", name)
			m := benchSolve(c.cfg, esrp.KernelAuto)
			return esrpMetric{NsPerOp: m.NsPerOp, AllocsPerOp: m.AllocsPerOp}, true
		}
	}
	return esrpMetric{}, false
}

// runCheck loads the baseline export and runs the sentinel. It returns an
// error for an unusable baseline and the failed-row count otherwise.
func runCheck(path string, tolNs, tolAllocs float64) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("check: %w", err)
	}
	var base HostBenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return 0, fmt.Errorf("check: parsing %s: %w", path, err)
	}
	if len(base.Optimized) == 0 {
		return 0, fmt.Errorf("check: %s has no optimized rows to compare against", path)
	}
	fmt.Fprintf(os.Stderr, "esrpbench: checking against %s (%s, gomaxprocs=%d, this host gomaxprocs=%d)\n",
		path, base.GoVersion, base.GoMaxProcs, runtime.GOMAXPROCS(0))
	rows, failed := checkAgainst(base.Optimized, liveMeasure, tolNs, tolAllocs)
	renderCheckTable(os.Stdout, rows, tolNs, tolAllocs)
	if failed > 0 {
		names := make([]string, 0, failed)
		for _, r := range rows {
			if r.Failed {
				names = append(names, r.Name)
			}
		}
		fmt.Fprintf(os.Stderr, "esrpbench: PERF REGRESSION in %d row(s): %s\n", failed, strings.Join(names, ", "))
	}
	return failed, nil
}
