package main

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"esrp"
)

// This file measures the PR 9 replay row family: the same machine-parameter
// grid costed the full way (one complete simulated solve per machine point)
// and the replay way (one recorded solve, then one O(events) re-cost per
// point). The simulated figures are identical by construction — the replay
// bitwise gate below asserts it — so the rows isolate pure host-side
// throughput: how many machine-sweep cells per second each path sustains.

// replayBenchConfig is the recorded fixture: the Emilia-like analog at a
// size where the numerical work of a full solve dwarfs the event stream
// (the schedule length depends on iterations × ranks, not on rows), ESRP
// with a mid sweep interval, fixed iteration count so the comparison is a
// pure data-path measurement.
func replayBenchConfig() esrp.Config {
	a := esrp.EmiliaLike(32, 32, 32, 923)
	return esrp.Config{
		A: a, B: esrp.RHSOnes(a.Rows), Nodes: 8,
		Strategy: esrp.StrategyESRP, T: 20, Phi: 1,
		MaxIter: 60, Rtol: 1e-30,
	}
}

// replayBenchMachines is the swept machine grid: latency × bandwidth
// variations of the default LogGP model, 8 points.
func replayBenchMachines() []esrp.CostModel {
	base := esrp.DefaultCostModel()
	var out []esrp.CostModel
	for _, lMult := range []float64{1, 2, 4, 8} {
		for _, gMult := range []float64{1, 4} {
			m := base
			m.Latency *= lMult
			m.BytePeriod *= gMult
			out = append(out, m)
		}
	}
	return out
}

// runReplayBench measures both sweep paths over the same machine grid and
// returns the rows plus the throughput ratio (re-cost cells/sec over
// full-solve cells/sec). The one-time recording cost is reported as its own
// row, so the fixed cost the replay path amortizes stays visible.
func runReplayBench() ([]HostMetric, float64) {
	cfg := replayBenchConfig()
	machines := replayBenchMachines()

	// Record once and hold the bitwise gate: a re-cost under the default
	// model must reproduce the recorded solve exactly, or the replay rows
	// would be comparing different figures.
	fmt.Fprintf(os.Stderr, "esrpbench: replay rows: recording fixture (%d rows, %d nodes, %d machine points)...\n",
		cfg.A.Rows, cfg.Nodes, len(machines))
	recStart := time.Now()
	res, sched, err := esrp.RecordSchedule(cfg)
	recordNs := time.Since(recStart).Nanoseconds()
	if err != nil {
		fmt.Fprintf(os.Stderr, "esrpbench: replay rows skipped: %v\n", err)
		return nil, 0
	}
	rep, err := esrp.Recost(sched, esrp.DefaultCostModel())
	if err != nil {
		fmt.Fprintf(os.Stderr, "esrpbench: replay rows skipped: %v\n", err)
		return nil, 0
	}
	if rep.SimTime != res.SimTime || rep.BytesSent != res.BytesSent || rep.MsgsSent != res.MsgsSent {
		fmt.Fprintf(os.Stderr, "esrpbench: replay rows skipped: re-cost diverged from solve (%v vs %v)\n",
			rep.SimTime, res.SimTime)
		return nil, 0
	}

	bench := func(name string, sweep func() error) HostMetric {
		fmt.Fprintf(os.Stderr, "esrpbench: replay rows: %s...\n", name)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := sweep(); err != nil {
					b.Fatal(err)
				}
			}
		})
		m := HostMetric{
			Name: name, GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
			NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		}
		if r.NsPerOp() > 0 {
			m.CellsPerSec = float64(len(machines)) / (float64(r.NsPerOp()) / 1e9)
		}
		return m
	}

	full := bench("replay/full-solve-sweep", func() error {
		for i := range machines {
			c := cfg
			c.CostModel = &machines[i]
			if _, err := esrp.Solve(c); err != nil {
				return err
			}
		}
		return nil
	})
	recost := bench("replay/recost-sweep", func() error {
		for i := range machines {
			if _, err := esrp.Recost(sched, machines[i]); err != nil {
				return err
			}
		}
		return nil
	})
	record := HostMetric{
		Name: "replay/record-once", GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		NsPerOp: recordNs,
	}

	speedup := 0.0
	if recost.NsPerOp > 0 {
		speedup = float64(full.NsPerOp) / float64(recost.NsPerOp)
	}
	fmt.Fprintf(os.Stderr, "esrpbench: replay rows: full %.3g cells/sec vs re-cost %.3g cells/sec (%.0f× over %d machine points)\n",
		full.CellsPerSec, recost.CellsPerSec, speedup, len(machines))
	return []HostMetric{full, record, recost}, speedup
}
