package main

import "testing"

// TestReplayRowFamily runs the PR 9 replay rows end to end: the bitwise
// gate inside runReplayBench must hold (rows are dropped when re-cost
// diverges from the solve), and the re-cost sweep must beat the full-solve
// sweep by a wide margin. The committed BENCH_PR9.json carries the real
// measured ratio; the bound here is deliberately loose so a loaded CI host
// cannot flake it.
func TestReplayRowFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full-solve machine sweep benchmark")
	}
	rows, speedup := runReplayBench()
	if len(rows) != 3 {
		t.Fatalf("replay row family has %d rows, want 3 (full, record-once, recost)", len(rows))
	}
	for _, r := range rows {
		if r.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %d, want > 0", r.Name, r.NsPerOp)
		}
		if r.NumCPU <= 0 {
			t.Errorf("%s: num_cpu not stamped", r.Name)
		}
	}
	if speedup < 20 {
		t.Errorf("re-cost sweep only %.1f× faster than full-solve sweep, want ≥ 20×", speedup)
	}
	t.Logf("replay sweep speedup: %.0f×", speedup)
}
