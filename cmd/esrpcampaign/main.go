// Command esrpcampaign sweeps a whole experiment grid — strategy ×
// checkpoint interval T × redundancy φ × matrix × node count × scenario
// seed — concurrently across host cores, injecting stochastic multi-failure
// scenarios into every cell, and exports the per-cell results and seed
// aggregates as JSON (and optionally CSV).
//
// Examples:
//
//	# 2 strategies × 2 intervals × 3 seeds under a Poisson failure process
//	esrpcampaign -gen emilia -n 16 -nodes 16 -strategies esrp,imcr \
//	             -ts 20,50 -phis 1 -seeds 3 -mtbf 4000 -horizon 400
//
//	# correlated blade failures against a finite spare pool
//	esrpcampaign -gen poisson3d -n 16 -nodes 12 -strategies esrp \
//	             -ts 20 -phis 4 -seeds 5 -mtbf 2000 -group 4 -group-prob 0.5 \
//	             -spares 4 -json campaign.json -csv campaign.csv
//
// The grid is deterministic: the same flags always produce byte-identical
// JSON, regardless of -workers.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"esrp"
	"esrp/internal/faultsim"
	"esrp/internal/profiling"
)

func main() {
	var (
		gens = flag.String("gen", "poisson2d", "comma-separated matrix generators: poisson2d|poisson3d|emilia|audikw|banded")
		n    = flag.Int("n", 32, "generator grid scale")
		seed = flag.Int64("matrix-seed", 1, "generator seed")

		nodesCSV   = flag.String("nodes", "8", "comma-separated simulated cluster sizes")
		strategies = flag.String("strategies", "esrp,imcr", "comma-separated strategies: none|esr|esrp|imcr")
		tsCSV      = flag.String("ts", "20", "comma-separated checkpoint intervals T")
		phisCSV    = flag.String("phis", "1", "comma-separated redundancy counts φ")
		seeds      = flag.Int("seeds", 3, "number of scenario seeds (1..N)")

		model     = flag.String("model", "exp", "failure process: exp|weibull|fixed (fixed uses -events)")
		mtbf      = flag.Float64("mtbf", 5000, "per-node mean iterations between failures")
		shape     = flag.Float64("shape", 1, "Weibull shape k (model=weibull)")
		horizon   = flag.Int("horizon", 200, "last iteration failures may strike (set near the expected iteration count)")
		group     = flag.Int("group", 1, "correlated blade width (adjacent ranks failing together)")
		groupProb = flag.Float64("group-prob", 0, "probability a failure takes down its whole blade")
		maxEvents = flag.Int("max-events", 0, "cap on events per cell (0 = none)")
		events    = flag.String("events", "", "fixed schedule for -model fixed: iter:r0-r1;iter:r0;... (e.g. 20:2-3;50:5)")

		spares = flag.Int("spares", 0, "replacement-node pool for ESR/ESRP cells (0 = unlimited); exhaustion falls back to the no-spare shrink")

		rtol    = flag.Float64("rtol", 1e-8, "outer relative tolerance")
		maxIter = flag.Int("maxiter", 0, "iteration cap (0 = solver default)")
		workers = flag.Int("workers", 0, "concurrent cells on the host (0 = GOMAXPROCS)")
		kernel  = flag.String("kernel", "auto", "SpMV kernel layout: auto|csr|sellc|band (cells and JSON are bit-identical under every choice)")

		sweepMachine = flag.String("sweep-machine", "", "machine-parameter sweep on the replay engine: semicolon-separated LogGP value lists crossed into a grid, e.g. \"L=1x,4x,16x;G=1x,8x\" (keys L|o|G|f; absolute seconds or Nx multipliers of the default model). Each grid cell is solved and recorded once, then re-costed per machine point in O(events); results land in the report's machine_cells")
		schedulesDir = flag.String("schedules", "", "directory for the per-cell recorded schedules (framed compact binary, replayable via esrp.ReadScheduleFile); requires -sweep-machine")
		machineSpec  = flag.String("machine", "", "override the base machine model for every cell: same syntax as -sweep-machine but naming exactly one point, e.g. \"L=2x;G=0.5x\". Against a warm -cache this is served entirely from the schedule tier (re-cost, no solves)")

		cachePath     = flag.String("cache", "", "persistent content-addressed cell cache directory: completed cells are reused across runs (result tier), machine-model changes are re-costed from recorded schedules (schedule tier), and interrupted sweeps resume — partial or corrupt entries are detected and recomputed")
		cacheMismatch = flag.String("cache-mismatch", "bypass", "when -cache was written by a different build: bypass (run cold, leave the directory untouched) or refresh (discard its entries and restamp)")

		jsonPath = flag.String("json", "-", "JSON output path (- = stdout)")
		csvPath  = flag.String("csv", "", "optional CSV output path (one row per cell)")
		quiet    = flag.Bool("q", false, "suppress the aggregate table, summary, and live progress on stderr")
		verbose  = flag.Bool("v", false, "extend the live progress meter with host-engine counters (cells done per shard, steals so far); report JSON/CSV are byte-identical either way")

		metricsPath   = flag.String("metrics", "", "write a Prometheus textfile snapshot of the campaign counters (plus host-engine telemetry) to this path")
		traceSample   = flag.Int("trace-sample", 0, "trace every N-th grid cell (0 = off); traces land in -trace-dir")
		traceDir      = flag.String("trace-dir", "traces", "directory for sampled cell traces (Chrome trace_event JSON)")
		hostTracePath = flag.String("host-trace", "", "write a wall-clock Chrome trace of the host workers (cell and steal spans) to this path")

		cpuprofile    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile    = flag.String("memprofile", "", "write a heap profile to this file on exit")
		allocsprofile = flag.String("allocsprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile, *allocsprofile)
	if err != nil {
		fatalf("%v", err)
	}
	stopProfile = stop // fatalf finishes the profiles before os.Exit
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintf(os.Stderr, "esrpcampaign: %v\n", err)
		}
	}()

	grid, err := buildGrid(gridFlags{
		gens: *gens, n: *n, seed: *seed,
		nodes: *nodesCSV, strategies: *strategies, ts: *tsCSV, phis: *phisCSV, seeds: *seeds,
		model: *model, mtbf: *mtbf, shape: *shape, horizon: *horizon,
		group: *group, groupProb: *groupProb, maxEvents: *maxEvents, events: *events,
		spares: *spares, rtol: *rtol, maxIter: *maxIter, workers: *workers,
		kernel: *kernel,
	})
	if err != nil {
		fatalf("%v", err)
	}

	if *machineSpec != "" {
		points, err := parseMachineSweep(*machineSpec, esrp.DefaultCostModel())
		if err != nil {
			fatalf("bad -machine: %v", err)
		}
		if len(points) != 1 {
			fatalf("-machine must name exactly one machine point, got %d (use -sweep-machine for grids)", len(points))
		}
		model := points[0].Model
		grid.CostModel = &model
	}
	if *sweepMachine != "" {
		machines, err := parseMachineSweep(*sweepMachine, esrp.DefaultCostModel())
		if err != nil {
			fatalf("bad -sweep-machine: %v", err)
		}
		grid.Machines = machines
	}
	if *cachePath != "" {
		var policy esrp.CacheMismatchPolicy
		switch *cacheMismatch {
		case "bypass":
			policy = esrp.CacheMismatchBypass
		case "refresh":
			policy = esrp.CacheMismatchRefresh
		default:
			fatalf("bad -cache-mismatch %q (want bypass or refresh)", *cacheMismatch)
		}
		cache, note, err := esrp.OpenCampaignCache(*cachePath, policy)
		if err != nil {
			fatalf("opening cache: %v", err)
		}
		if note != "" {
			fmt.Fprintf(os.Stderr, "esrpcampaign: %s\n", note)
		}
		grid.Cache = cache // nil after a bypassed mismatch: the run stays cold
	}
	if *schedulesDir != "" {
		if len(grid.Machines) == 0 {
			fatalf("-schedules requires -sweep-machine (schedules are recorded by the machine sweep)")
		}
		if err := os.MkdirAll(*schedulesDir, 0o755); err != nil {
			fatalf("%v", err)
		}
		dir := *schedulesDir
		grid.OnCellSchedule = func(index int, c *esrp.CampaignCell, s *esrp.Schedule) {
			// Delivered concurrently, but every cell index gets its own file,
			// so the writes never contend. The file format is the cache's
			// framed schedule encoding — one serializer for schedules on disk.
			path := filepath.Join(dir, fmt.Sprintf("cell-%04d-%s-%s-T%d-seed%d.sched", index, c.Matrix, c.Strategy, c.T, c.Seed))
			if err := esrp.WriteScheduleFile(path, s); err != nil {
				fmt.Fprintf(os.Stderr, "esrpcampaign: schedule %s: %v\n", path, err)
			}
		}
	}

	if *traceSample > 0 {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatalf("%v", err)
		}
		grid.TraceSample = *traceSample
		dir := *traceDir
		grid.OnCellTrace = func(index int, c *esrp.CampaignCell, tr *esrp.Trace) {
			// Sampled concurrently, but every cell index gets its own file,
			// so the writes never contend.
			path := filepath.Join(dir, fmt.Sprintf("cell-%04d-%s-%s-seed%d.trace.json", index, c.Matrix, c.Strategy, c.Seed))
			if err := writeCellTrace(tr, path); err != nil {
				fmt.Fprintf(os.Stderr, "esrpcampaign: trace %s: %v\n", path, err)
			}
		}
	}
	// Host telemetry rides along whenever something consumes it: the -v
	// meter, the host trace, the metrics textfile, or the cache hit/miss
	// accounting. The report JSON/CSV bytes are identical with the
	// recorder on or off (pinned by tests).
	var hostRec *esrp.HostRecorder
	if *verbose || *hostTracePath != "" || *metricsPath != "" || grid.Cache != nil {
		hostRec = esrp.NewHostRecorder()
		grid.HostObs = hostRec
	}

	if !*quiet {
		start := time.Now()
		var progressMu sync.Mutex
		hi := 0
		showShards := *verbose
		grid.Progress = func(done, total int) {
			progressMu.Lock()
			defer progressMu.Unlock()
			// The engine delivers each done value exactly once, but worker
			// goroutines can overtake each other between the counter
			// increment and this callback; redraw only on a new high-water
			// mark so the meter never runs backwards.
			if done <= hi {
				return
			}
			hi = done
			elapsed := time.Since(start).Seconds()
			rate := float64(done) / math.Max(elapsed, 1e-9)
			eta := time.Duration(float64(total-done) / rate * float64(time.Second))
			cacheMeter := ""
			if grid.Cache != nil {
				rh, sh, ms := hostRec.LiveCacheHits()
				cacheMeter = fmt.Sprintf(" cache %d+%d hit/%d miss", rh, sh, ms)
			}
			if showShards {
				perShard := make([]string, 0, 8)
				for _, c := range hostRec.LiveWorkerCells() {
					perShard = append(perShard, strconv.FormatInt(c, 10))
				}
				fmt.Fprintf(os.Stderr, "\rcells %d/%d (%.1f/s, ETA %v) shards [%s] steals %d%s   ",
					done, total, rate, eta.Round(time.Second),
					strings.Join(perShard, " "), hostRec.LiveSteals(), cacheMeter)
				return
			}
			fmt.Fprintf(os.Stderr, "\rcells %d/%d (%.1f/s, ETA %v)%s   ", done, total, rate, eta.Round(time.Second), cacheMeter)
		}
	}

	rep, err := esrp.RunCampaign(*grid)
	if err != nil {
		fatalf("%v", err)
	}

	if !*quiet {
		fmt.Fprintln(os.Stderr) // terminate the progress line
		fmt.Fprint(os.Stderr, esrp.RenderCampaignTable(rep))
		fmt.Fprint(os.Stderr, esrp.CampaignSummary(rep))
	}
	if err := writeOut(*jsonPath, rep.WriteJSON); err != nil {
		fatalf("writing JSON: %v", err)
	}
	if *csvPath != "" {
		if err := writeOut(*csvPath, rep.WriteCSV); err != nil {
			fatalf("writing CSV: %v", err)
		}
	}
	if *hostTracePath != "" {
		if err := writeHostTrace(hostRec, rep, *hostTracePath); err != nil {
			fatalf("writing host trace: %v", err)
		}
	}
	if *metricsPath != "" {
		if err := writeOut(*metricsPath, func(w io.Writer) error {
			if err := rep.WriteMetrics(w, esrp.CurrentBuild()); err != nil {
				return err
			}
			// Host-engine telemetry lands in the same textfile, so one
			// scrape target carries the simulated and the wall-clock view.
			tel := hostRec.Telemetry()
			return tel.WritePrometheus(w)
		}); err != nil {
			fatalf("writing metrics: %v", err)
		}
	}
}

// writeHostTrace exports the wall-clock worker trace, self-validated
// against the same trace_event schema check as the simulated cell traces.
func writeHostTrace(rec *esrp.HostRecorder, rep *esrp.CampaignReport, path string) error {
	tr := esrp.BuildHostTrace(rec, rep, esrp.CurrentBuild())
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		return err
	}
	if err := esrp.ValidateChromeTrace(buf.Bytes()); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// writeCellTrace exports one sampled cell's Chrome trace, self-validated
// against the same schema check the CI gate runs.
func writeCellTrace(tr *esrp.Trace, path string) error {
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		return err
	}
	if err := esrp.ValidateChromeTrace(buf.Bytes()); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// gridFlags bundles the parsed flag values for buildGrid, keeping the flag
// wiring testable.
type gridFlags struct {
	gens       string
	n          int
	seed       int64
	nodes      string
	strategies string
	ts         string
	phis       string
	seeds      int
	model      string
	mtbf       float64
	shape      float64
	horizon    int
	group      int
	groupProb  float64
	maxEvents  int
	events     string
	spares     int
	rtol       float64
	maxIter    int
	workers    int
	kernel     string
}

func buildGrid(f gridFlags) (*esrp.CampaignGrid, error) {
	var matrices []esrp.CampaignMatrix
	for _, g := range splitCSV(f.gens) {
		a, name, err := genMatrix(g, f.n, f.seed)
		if err != nil {
			return nil, err
		}
		matrices = append(matrices, esrp.CampaignMatrix{Name: name, A: a})
	}
	nodes, err := parseInts(f.nodes)
	if err != nil {
		return nil, fmt.Errorf("bad -nodes: %w", err)
	}
	ts, err := parseInts(f.ts)
	if err != nil {
		return nil, fmt.Errorf("bad -ts: %w", err)
	}
	phis, err := parseInts(f.phis)
	if err != nil {
		return nil, fmt.Errorf("bad -phis: %w", err)
	}
	var strats []esrp.Strategy
	for _, s := range splitCSV(f.strategies) {
		st, err := esrp.ParseStrategy(s)
		if err != nil {
			return nil, err
		}
		strats = append(strats, st)
	}
	if f.seeds < 1 {
		return nil, fmt.Errorf("need at least 1 seed, got %d", f.seeds)
	}
	seedList := make([]int64, f.seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}

	mdl, err := esrp.ParseScenarioModel(f.model)
	if err != nil {
		return nil, err
	}
	horizon := f.horizon
	if horizon <= 0 {
		horizon = 200
	}
	scenario := esrp.FailureScenario{
		Model: mdl, MTBF: f.mtbf, Shape: f.shape, Horizon: horizon,
		GroupSize: f.group, GroupProb: f.groupProb, MaxEvents: f.maxEvents,
	}
	if mdl == esrp.ScenarioFixed {
		scenario.Schedule, err = parseSchedule(f.events)
		if err != nil {
			return nil, fmt.Errorf("bad -events: %w", err)
		}
	}

	kernel, err := esrp.ParseKernel(f.kernel)
	if err != nil {
		return nil, err
	}

	return &esrp.CampaignGrid{
		Matrices:   matrices,
		Nodes:      nodes,
		Strategies: strats,
		Ts:         ts,
		Phis:       phis,
		Seeds:      seedList,
		Scenario:   scenario,
		Spares:     f.spares,
		Rtol:       f.rtol,
		MaxIter:    f.maxIter,
		Workers:    f.workers,
		Kernel:     kernel,
	}, nil
}

func genMatrix(gen string, n int, seed int64) (*esrp.CSR, string, error) {
	switch gen {
	case "poisson2d":
		return esrp.Poisson2D(n, n), fmt.Sprintf("poisson2d-%dx%d", n, n), nil
	case "poisson3d":
		return esrp.Poisson3D(n, n, n), fmt.Sprintf("poisson3d-%d", n), nil
	case "emilia":
		return esrp.EmiliaLike(n, n, n, seed), fmt.Sprintf("emilia-like-%d", n), nil
	case "audikw":
		return esrp.AudikwLike(n, n, n, 3, seed), fmt.Sprintf("audikw-like-%dx3", n), nil
	case "banded":
		return esrp.BandedSPD(n*n, 8, seed), fmt.Sprintf("banded-%d", n*n), nil
	}
	return nil, "", fmt.Errorf("unknown generator %q", gen)
}

// parseSchedule reads a fixed event list "iter:r0-r1;iter:r0;...", e.g.
// "20:2-3;50:5" = ranks {2,3} fail at iteration 20, rank 5 at 50.
func parseSchedule(s string) ([]esrp.FailureSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("model fixed needs -events")
	}
	return faultsim.ParseSchedule(s)
}

func writeOut(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range splitCSV(csv) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// stopProfile finishes any active -cpuprofile/-memprofile capture; fatalf
// calls it so error exits (os.Exit skips defers) still produce readable
// profiles.
var stopProfile func() error

func fatalf(format string, args ...any) {
	if stopProfile != nil {
		if err := stopProfile(); err != nil {
			fmt.Fprintf(os.Stderr, "esrpcampaign: %v\n", err)
		}
	}
	fmt.Fprintf(os.Stderr, "esrpcampaign: "+format+"\n", args...)
	os.Exit(1)
}
