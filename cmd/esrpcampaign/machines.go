package main

import (
	"fmt"
	"strconv"
	"strings"

	"esrp"
)

// parseMachineSweep parses the -sweep-machine axis: semicolon-separated
// per-parameter value lists "L=...;o=...;G=...;f=..." crossed into a machine
// grid. Keys name the LogGP parameters: L = Latency, o = Overhead,
// G = BytePeriod (seconds per byte, 1/bandwidth), f = FlopTime. Values are
// comma-separated absolute seconds, or multipliers of the base model with an
// "x" suffix ("L=1x,4x,16x"). Parameters not swept keep the base model's
// values; points are enumerated with the last segment varying fastest, so
// the grid order is deterministic.
func parseMachineSweep(spec string, base esrp.CostModel) ([]esrp.CampaignMachine, error) {
	type axis struct {
		key  string
		vals []float64
	}
	baseOf := map[string]float64{
		"L": base.Latency, "o": base.Overhead, "G": base.BytePeriod, "f": base.FlopTime,
	}
	var axes []axis
	seen := make(map[string]bool)
	for _, seg := range strings.Split(spec, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		key, list, ok := strings.Cut(seg, "=")
		if !ok {
			return nil, fmt.Errorf("segment %q: want key=v1,v2,...", seg)
		}
		key = strings.TrimSpace(key)
		baseVal, known := baseOf[key]
		if !known {
			return nil, fmt.Errorf("unknown machine parameter %q (want L, o, G or f)", key)
		}
		if seen[key] {
			return nil, fmt.Errorf("parameter %q swept twice", key)
		}
		seen[key] = true
		var vals []float64
		for _, v := range splitCSV(list) {
			var f float64
			var err error
			if m, isMult := strings.CutSuffix(v, "x"); isMult {
				f, err = strconv.ParseFloat(m, 64)
				f *= baseVal
			} else {
				f, err = strconv.ParseFloat(v, 64)
			}
			if err != nil {
				return nil, fmt.Errorf("bad value %q for %s: %w", v, key, err)
			}
			if f <= 0 {
				return nil, fmt.Errorf("value %q for %s: machine parameters must be positive", v, key)
			}
			vals = append(vals, f)
		}
		if len(vals) == 0 {
			return nil, fmt.Errorf("parameter %q has no values", key)
		}
		axes = append(axes, axis{key: key, vals: vals})
	}
	if len(axes) == 0 {
		return nil, fmt.Errorf("empty spec (want e.g. \"L=1x,4x,16x;G=1x,8x\")")
	}

	models := []esrp.CostModel{base}
	names := []string{""}
	for _, ax := range axes {
		next := make([]esrp.CostModel, 0, len(models)*len(ax.vals))
		nextNames := make([]string, 0, len(models)*len(ax.vals))
		for i, m := range models {
			for _, v := range ax.vals {
				p := m
				switch ax.key {
				case "L":
					p.Latency = v
				case "o":
					p.Overhead = v
				case "G":
					p.BytePeriod = v
				case "f":
					p.FlopTime = v
				}
				name := names[i]
				if name != "" {
					name += ","
				}
				next = append(next, p)
				nextNames = append(nextNames, name+fmt.Sprintf("%s=%g", ax.key, v))
			}
		}
		models, names = next, nextNames
	}
	out := make([]esrp.CampaignMachine, len(models))
	for i := range models {
		out[i] = esrp.CampaignMachine{Name: names[i], Model: models[i]}
	}
	return out, nil
}
