package main

import (
	"testing"

	"esrp"
)

func TestParseSchedule(t *testing.T) {
	ev, err := parseSchedule("20:2-3;50:5")
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 2 {
		t.Fatalf("got %d events", len(ev))
	}
	if ev[0].Iteration != 20 || len(ev[0].Ranks) != 2 || ev[0].Ranks[0] != 2 || ev[0].Ranks[1] != 3 {
		t.Fatalf("event 0 = %+v", ev[0])
	}
	if ev[1].Iteration != 50 || len(ev[1].Ranks) != 1 || ev[1].Ranks[0] != 5 {
		t.Fatalf("event 1 = %+v", ev[1])
	}
	for _, bad := range []string{"", "20", "x:1", "20:a", "20:5-3"} {
		if _, err := parseSchedule(bad); err == nil {
			t.Errorf("schedule %q accepted", bad)
		}
	}
}

func TestBuildGrid(t *testing.T) {
	g, err := buildGrid(gridFlags{
		gens: "poisson2d", n: 16, seed: 1,
		nodes: "4,8", strategies: "esr,imcr", ts: "10", phis: "1", seeds: 2,
		model: "exp", mtbf: 1000, shape: 1, horizon: 50,
		group: 1, rtol: 1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Matrices) != 1 || len(g.Nodes) != 2 || len(g.Strategies) != 2 || len(g.Seeds) != 2 {
		t.Fatalf("grid axes wrong: %+v", g)
	}
	if g.Scenario.Model != esrp.ScenarioExponential || g.Scenario.Horizon != 50 {
		t.Fatalf("scenario = %+v", g.Scenario)
	}

	if _, err := buildGrid(gridFlags{gens: "nope", n: 8, nodes: "4", strategies: "esr", ts: "10", phis: "1", seeds: 1, model: "exp", mtbf: 1}); err == nil {
		t.Error("unknown generator accepted")
	}
	if _, err := buildGrid(gridFlags{gens: "poisson2d", n: 8, nodes: "4", strategies: "esr", ts: "10", phis: "1", seeds: 1, model: "fixed", events: ""}); err == nil {
		t.Error("fixed model without events accepted")
	}
	if _, err := buildGrid(gridFlags{gens: "poisson2d", n: 8, nodes: "4", strategies: "esr", ts: "10", phis: "1", seeds: 0, model: "exp", mtbf: 1}); err == nil {
		t.Error("zero seeds accepted")
	}
}

// End-to-end: a tiny grid through the library surface the CLI drives.
func TestTinyGridEndToEnd(t *testing.T) {
	g, err := buildGrid(gridFlags{
		gens: "poisson2d", n: 24, seed: 1,
		nodes: "6", strategies: "esr", ts: "10", phis: "1", seeds: 2,
		model: "exp", mtbf: 600, shape: 1, horizon: 40,
		group: 1, rtol: 1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := esrp.RunCampaign(*g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Err != "" || !c.Converged {
			t.Errorf("cell seed %d: err=%q converged=%v", c.Seed, c.Err, c.Converged)
		}
	}
}
