package main

import (
	"math"
	"testing"

	"esrp"
)

func TestParseMachineSweep(t *testing.T) {
	base := esrp.DefaultCostModel()

	t.Run("grid", func(t *testing.T) {
		ms, err := parseMachineSweep("L=1x,4x;G=1x,2x,8x", base)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 6 {
			t.Fatalf("got %d machine points, want 6", len(ms))
		}
		// Last segment varies fastest: first three points share L = base.
		for i := 0; i < 3; i++ {
			if ms[i].Model.Latency != base.Latency {
				t.Errorf("point %d: Latency = %g, want base %g", i, ms[i].Model.Latency, base.Latency)
			}
		}
		if got, want := ms[3].Model.Latency, 4*base.Latency; got != want {
			t.Errorf("point 3: Latency = %g, want %g", got, want)
		}
		if got, want := ms[5].Model.BytePeriod, 8*base.BytePeriod; got != want {
			t.Errorf("point 5: BytePeriod = %g, want %g", got, want)
		}
		// Unswept parameters keep the base model's values.
		for i, m := range ms {
			if m.Model.Overhead != base.Overhead || m.Model.FlopTime != base.FlopTime {
				t.Errorf("point %d: unswept parameter changed: %+v", i, m.Model)
			}
		}
		// Names are unique and deterministic.
		seen := make(map[string]bool)
		for _, m := range ms {
			if m.Name == "" || seen[m.Name] {
				t.Errorf("bad or duplicate machine name %q", m.Name)
			}
			seen[m.Name] = true
		}
	})

	t.Run("absolute values", func(t *testing.T) {
		ms, err := parseMachineSweep("o=1e-6,2.5e-6", base)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 2 {
			t.Fatalf("got %d points, want 2", len(ms))
		}
		if math.Abs(ms[1].Model.Overhead-2.5e-6) > 0 {
			t.Errorf("Overhead = %g, want 2.5e-6", ms[1].Model.Overhead)
		}
	})

	t.Run("errors", func(t *testing.T) {
		for _, spec := range []string{
			"",             // empty
			" ; ",          // only empty segments
			"L",            // no '='
			"Q=1x",         // unknown key
			"L=1x;L=2x",    // duplicate key
			"L=",           // no values
			"L=abc",        // unparsable
			"L=0x",         // non-positive (multiplier)
			"G=-1e-9",      // non-positive (absolute)
			"L=1x,oops,2x", // bad value mid-list
		} {
			if _, err := parseMachineSweep(spec, base); err == nil {
				t.Errorf("spec %q: expected error, got nil", spec)
			}
		}
	})
}
