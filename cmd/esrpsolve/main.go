// Command esrpsolve runs one resilient PCG solve on the simulated cluster
// and reports convergence, modeled runtime and recovery statistics.
//
// The system is either read from a Matrix Market file (-matrix file.mtx) or
// generated (-gen poisson2d|poisson3d|emilia|audikw|banded with -n scale).
//
// Examples:
//
//	esrpsolve -gen emilia -n 16 -nodes 16 -strategy esrp -T 20 -phi 2 \
//	          -fail-iter 100 -fail-ranks 3,4
//	esrpsolve -matrix system.mtx -nodes 8 -strategy imcr -T 50 -phi 1
//
// Beyond the paper's single event, a whole failure timeline can be injected
// with -events "iter:ranks;..." against a finite spare pool:
//
//	esrpsolve -gen poisson2d -n 48 -nodes 8 -strategy esr -phi 1 \
//	          -events "20:3;45:5;70:2" -spares 1
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"esrp"
	"esrp/internal/faultsim"
	"esrp/internal/sparse"
)

func main() {
	var (
		matrixFile = flag.String("matrix", "", "Matrix Market file with the SPD system")
		gen        = flag.String("gen", "poisson2d", "generator: poisson2d|poisson3d|emilia|audikw|banded")
		n          = flag.Int("n", 32, "generator grid scale (rows ≈ n² or n³ depending on generator)")
		seed       = flag.Int64("seed", 1, "generator seed")

		nodes    = flag.Int("nodes", 8, "simulated cluster size")
		strategy = flag.String("strategy", "esrp", "resilience strategy: none|esr|esrp|imcr")
		tInt     = flag.Int("T", 20, "checkpointing interval")
		phi      = flag.Int("phi", 1, "redundancy copies / tolerated simultaneous failures")
		rtol     = flag.Float64("rtol", 1e-8, "relative residual tolerance")
		precond  = flag.String("precond", "blockjacobi", "preconditioner: none|jacobi|blockjacobi|ic0")
		maxBlock = flag.Int("maxblock", 10, "block Jacobi maximum block size")
		kernel   = flag.String("kernel", "auto", "SpMV kernel layout: auto|csr|sellc|band (auto = planner; trajectories are identical under every choice)")

		failIter  = flag.Int("fail-iter", -1, "iteration to inject a node failure at (-1 = none)")
		failRanks = flag.String("fail-ranks", "0", "comma-separated contiguous ranks that fail")
		events    = flag.String("events", "", "multi-event failure timeline iter:r0-r1;iter:r0;... (e.g. 20:2-3;50:5)")
		spares    = flag.Int("spares", 0, "replacement-node pool (0 = unlimited); exhausted pool falls back to the no-spare shrink (ESR/ESRP)")
		noSpare   = flag.Bool("no-spare", false, "recover onto surviving nodes instead of replacements (ESR/ESRP)")

		pipelined = flag.Bool("pipelined", false, "use the communication-hiding pipelined PCG variant (strategies none|imcr)")
		balance   = flag.Bool("balance", false, "balance the row distribution by per-row work instead of row counts")
		rr        = flag.Int("rr", 0, "residual replacement interval (0 = off)")

		tracePath  = flag.String("trace", "", "write the per-rank span timeline as Chrome trace_event JSON to this file (open in https://ui.perfetto.dev)")
		seriesPath = flag.String("series", "", "write the per-iteration metric series to this file (.json, anything else = CSV)")
		verbose    = flag.Bool("v", false, "print residual history, per-event recovery breakdown, and traffic counters")
	)
	flag.Parse()

	a, name, err := loadMatrix(*matrixFile, *gen, *n, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	strat, err := esrp.ParseStrategy(*strategy)
	if err != nil {
		fatalf("%v", err)
	}
	pk, err := parsePrecond(*precond)
	if err != nil {
		fatalf("%v", err)
	}
	kk, err := esrp.ParseKernel(*kernel)
	if err != nil {
		fatalf("%v", err)
	}

	cfg := esrp.Config{
		A: a, B: esrp.RHSOnes(a.Rows), Nodes: *nodes,
		Strategy: strat, T: *tInt, Phi: *phi,
		Rtol: *rtol, PrecondKind: pk, MaxBlock: *maxBlock, Kernel: kk,
		RecordResiduals:             *verbose,
		NoSpareNodes:                *noSpare,
		BalanceNNZ:                  *balance,
		ResidualReplacementInterval: *rr,
	}
	cfg.Spares = *spares
	// -v derives its recovery breakdown from the trace envelopes, so it
	// turns tracing on too; the recorder never alters the trajectory.
	if *tracePath != "" || *seriesPath != "" || *verbose {
		cfg.Observe = &esrp.ObserveOptions{
			Trace:  *tracePath != "" || *verbose,
			Series: *seriesPath != "",
		}
	}
	if *events != "" {
		if *failIter >= 0 {
			fatalf("use either -fail-iter/-fail-ranks (single event) or -events (timeline), not both")
		}
		timeline, err := faultsim.ParseSchedule(*events)
		if err != nil {
			fatalf("bad -events: %v", err)
		}
		cfg.Failures = timeline
	} else if *failIter >= 0 {
		ranks, err := parseRanks(*failRanks)
		if err != nil {
			fatalf("bad -fail-ranks: %v", err)
		}
		cfg.Failure = &esrp.FailureSpec{Iteration: *failIter, Ranks: ranks}
	}

	solver, solverName := esrp.Solve, "PCG"
	if *pipelined {
		solver, solverName = esrp.SolvePipelined, "pipelined PCG"
	}
	fmt.Printf("solving %s with %s: %d rows, %d nnz, %d nodes, strategy %v (T=%d, φ=%d)\n",
		name, solverName, a.Rows, a.NNZ(), *nodes, strat, *tInt, *phi)
	res, err := solver(cfg)
	if err != nil {
		fatalf("solve: %v", err)
	}

	status := "converged"
	if !res.Converged {
		status = "DID NOT CONVERGE"
	}
	fmt.Printf("%s: %d iterations (relres %.3e), simulated time %.4g s, wall %v\n",
		status, res.Iterations, res.RelResidual, res.SimTime, res.WallTime.Round(1e6))
	if res.Recovered {
		fmt.Printf("recovered from node failure: rolled back to iteration %d (%d iterations wasted), recovery cost %.4g s simulated\n",
			res.RecoveredAt, res.WastedIters, res.RecoveryTime)
		for i, ev := range res.Events {
			fmt.Printf("  event %d: %s\n", i, ev)
		}
		if res.ActiveNodes < *nodes {
			fmt.Printf("cluster shrank to %d active nodes (no spares)\n", res.ActiveNodes)
		}
	}
	fmt.Printf("residual drift (Eq. 2): %.3e\n", res.Drift)
	if *verbose {
		fmt.Printf("traffic: %d messages, %d payload bytes (%d halo)\n", res.MsgsSent, res.BytesSent, res.HaloBytes)
		fmt.Printf("per-node memory: %d bytes max (O(local+halo))\n", res.MaxNodeBytes)
		fmt.Printf("spmv kernels (%s): %s\n", *kernel, esrp.CondenseKernels(res.Kernels))
		printResiduals(res.Residuals)
		printRecoveryBreakdown(res.Trace)
	}
	if *tracePath != "" {
		if err := writeTrace(res.Trace, *tracePath); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("trace: %s (open in https://ui.perfetto.dev)\n", *tracePath)
	}
	if *seriesPath != "" {
		if err := writeSeries(res.Trace, *seriesPath); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("series: %s (%d iteration samples)\n", *seriesPath, len(res.Trace.Series))
	}
	if !res.Converged {
		os.Exit(1)
	}
}

// printResiduals shows the residual history's head and tail — enough to see
// the convergence slope and any post-recovery jump without pages of output.
func printResiduals(resid []float64) {
	fmt.Printf("recorded %d residuals\n", len(resid))
	const edge = 4
	if len(resid) <= 2*edge {
		for i, r := range resid {
			fmt.Printf("  resid[%d] = %.6e\n", i, r)
		}
		return
	}
	for i := 0; i < edge; i++ {
		fmt.Printf("  resid[%d] = %.6e\n", i, resid[i])
	}
	fmt.Printf("  ... %d more ...\n", len(resid)-2*edge)
	for i := len(resid) - edge; i < len(resid); i++ {
		fmt.Printf("  resid[%d] = %.6e\n", i, resid[i])
	}
}

// printRecoveryBreakdown itemizes each failure event's simulated recovery
// cost from the trace envelopes.
func printRecoveryBreakdown(tr *esrp.Trace) {
	if tr == nil {
		return
	}
	stats := tr.RecoveryStats()
	if len(stats) == 0 {
		return
	}
	fmt.Printf("recovery breakdown (%d events):\n", len(stats))
	for _, st := range stats {
		fmt.Printf("  iter %d: %.4g s simulated across %d ranks\n", st.Iter, st.Time, st.Ranks)
	}
}

// writeTrace exports the Chrome trace_event JSON, self-validating the bytes
// against the schema checker the CI gate uses before they hit disk.
func writeTrace(tr *esrp.Trace, path string) error {
	if tr == nil {
		return fmt.Errorf("no trace recorded")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		return fmt.Errorf("building trace: %w", err)
	}
	if err := esrp.ValidateChromeTrace(buf.Bytes()); err != nil {
		return fmt.Errorf("trace failed self-validation: %w", err)
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// writeSeries exports the per-iteration series, JSON or CSV by extension.
func writeSeries(tr *esrp.Trace, path string) error {
	if tr == nil {
		return fmt.Errorf("no series recorded")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = tr.WriteSeriesJSON(f)
	} else {
		err = tr.WriteSeriesCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func loadMatrix(file, gen string, n int, seed int64) (*esrp.CSR, string, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		a, err := sparse.ReadMatrixMarket(f)
		if err != nil {
			return nil, "", fmt.Errorf("reading %s: %w", file, err)
		}
		return a, file, nil
	}
	switch gen {
	case "poisson2d":
		return esrp.Poisson2D(n, n), fmt.Sprintf("poisson2d-%dx%d", n, n), nil
	case "poisson3d":
		return esrp.Poisson3D(n, n, n), fmt.Sprintf("poisson3d-%d³", n), nil
	case "emilia":
		return esrp.EmiliaLike(n, n, n, seed), fmt.Sprintf("emilia-like-%d³", n), nil
	case "audikw":
		return esrp.AudikwLike(n, n, n, 3, seed), fmt.Sprintf("audikw-like-%d³x3", n), nil
	case "banded":
		return esrp.BandedSPD(n*n, 8, seed), fmt.Sprintf("banded-%d", n*n), nil
	default:
		return nil, "", fmt.Errorf("unknown generator %q", gen)
	}
}

func parsePrecond(s string) (esrp.PrecondKind, error) {
	switch strings.ToLower(s) {
	case "none", "identity":
		return esrp.PrecondIdentity, nil
	case "jacobi":
		return esrp.PrecondJacobi, nil
	case "blockjacobi", "block-jacobi", "bj":
		return esrp.PrecondBlockJacobi, nil
	case "ic0", "icc", "ichol":
		return esrp.PrecondIC0, nil
	}
	return esrp.PrecondIdentity, fmt.Errorf("unknown preconditioner %q", s)
}

func parseRanks(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "esrpsolve: "+format+"\n", args...)
	os.Exit(1)
}
