package main

import "testing"

func TestParsePrecond(t *testing.T) {
	for _, name := range []string{"none", "jacobi", "blockjacobi", "ic0"} {
		if _, err := parsePrecond(name); err != nil {
			t.Errorf("parsePrecond(%q): %v", name, err)
		}
	}
	if _, err := parsePrecond("bogus"); err == nil {
		t.Error("bogus preconditioner must fail")
	}
}

func TestParseRanks(t *testing.T) {
	got, err := parseRanks("3, 4,5")
	if err != nil || len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("parseRanks = %v, %v", got, err)
	}
	if _, err := parseRanks("a"); err == nil {
		t.Error("non-integer rank must fail")
	}
}

func TestLoadMatrixGenerators(t *testing.T) {
	for _, gen := range []string{"poisson2d", "poisson3d", "emilia", "audikw", "banded"} {
		a, name, err := loadMatrix("", gen, 4, 1)
		if err != nil || a == nil || name == "" {
			t.Errorf("loadMatrix(%q): %v", gen, err)
		}
	}
	if _, _, err := loadMatrix("", "bogus", 4, 1); err == nil {
		t.Error("unknown generator must fail")
	}
	if _, _, err := loadMatrix("/nonexistent.mtx", "", 0, 0); err == nil {
		t.Error("missing file must fail")
	}
}
