package esrp_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"esrp"
)

// replayCase is one (strategy, failure timeline) shape of the bitwise
// re-cost gate. Pipelined cases go through RecordSchedulePipelined.
type replayCase struct {
	name      string
	pipelined bool
	cfg       esrp.Config
}

func replayCases(t *testing.T) []replayCase {
	t.Helper()
	a := esrp.Poisson2D(32, 32)
	b := esrp.RHSOnes(a.Rows)
	base := func() esrp.Config {
		return esrp.Config{A: a, B: b, Nodes: 4, Rtol: 1e-8, DetectionTime: 2e-5}
	}
	mk := func(name string, mut func(*esrp.Config)) replayCase {
		cfg := base()
		mut(&cfg)
		return replayCase{name: name, cfg: cfg}
	}
	cases := []replayCase{
		mk("none/failure-free", func(c *esrp.Config) { c.Strategy = esrp.StrategyNone }),
		mk("none/restart", func(c *esrp.Config) {
			c.Strategy = esrp.StrategyNone
			c.Failure = &esrp.FailureSpec{Iteration: 12, Ranks: []int{2}}
		}),
		mk("esr/failure", func(c *esrp.Config) {
			c.Strategy = esrp.StrategyESR
			c.Phi = 1
			c.Failure = &esrp.FailureSpec{Iteration: 12, Ranks: []int{1}}
		}),
		mk("esrp/multi-event", func(c *esrp.Config) {
			c.Strategy = esrp.StrategyESRP
			c.T, c.Phi = 8, 1
			c.Failures = []esrp.FailureSpec{
				{Iteration: 12, Ranks: []int{1}},
				{Iteration: 30, Ranks: []int{3}},
			}
		}),
		mk("imcr/failure", func(c *esrp.Config) {
			c.Strategy = esrp.StrategyIMCR
			c.T, c.Phi = 8, 1
			c.Failure = &esrp.FailureSpec{Iteration: 12, Ranks: []int{2}}
		}),
		mk("nospare/shrink", func(c *esrp.Config) {
			c.Strategy = esrp.StrategyESRP
			c.T, c.Phi = 8, 1
			c.NoSpareNodes = true
			c.Failure = &esrp.FailureSpec{Iteration: 12, Ranks: []int{1}}
		}),
		mk("spares-exhausted/multi-event", func(c *esrp.Config) {
			c.Strategy = esrp.StrategyESRP
			c.T, c.Phi = 8, 1
			c.Spares = 1
			c.Failures = []esrp.FailureSpec{
				{Iteration: 12, Ranks: []int{1}}, // consumes the pool
				{Iteration: 30, Ranks: []int{2}}, // falls back to the shrink
			}
		}),
	}
	pipeNone := base()
	pipeNone.Strategy = esrp.StrategyNone
	pipeNone.Failure = &esrp.FailureSpec{Iteration: 12, Ranks: []int{2}}
	cases = append(cases, replayCase{name: "pipelined/none-restart", pipelined: true, cfg: pipeNone})
	pipeIMCR := base()
	pipeIMCR.Strategy = esrp.StrategyIMCR
	pipeIMCR.T, pipeIMCR.Phi = 8, 1
	pipeIMCR.Failure = &esrp.FailureSpec{Iteration: 12, Ranks: []int{1}}
	cases = append(cases, replayCase{name: "pipelined/imcr", pipelined: true, cfg: pipeIMCR})
	return cases
}

func record(t *testing.T, rc replayCase) (*esrp.Result, *esrp.Schedule) {
	t.Helper()
	var res *esrp.Result
	var sched *esrp.Schedule
	var err error
	if rc.pipelined {
		res, sched, err = esrp.RecordSchedulePipelined(rc.cfg)
	} else {
		res, sched, err = esrp.RecordSchedule(rc.cfg)
	}
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	return res, sched
}

// TestRecostReproducesSolveBitForBit is the tentpole gate: replayed under
// the recording machine model, a schedule reproduces the full solve's
// SimTime, RecoveryTime, BytesSent and MsgsSent exactly (float equality, no
// tolerance) for every strategy including multi-event and shrink timelines.
func TestRecostReproducesSolveBitForBit(t *testing.T) {
	for _, rc := range replayCases(t) {
		t.Run(rc.name, func(t *testing.T) {
			cfg := rc.cfg
			cfg.Observe = &esrp.ObserveOptions{Trace: true} // envelope cross-check
			rcT := rc
			rcT.cfg = cfg
			res, sched := record(t, rcT)
			if !res.Converged {
				t.Fatalf("case did not converge (relres %g)", res.RelResidual)
			}
			if len(rc.cfg.Failures) > 0 || rc.cfg.Failure != nil {
				if len(res.Events) == 0 {
					t.Fatalf("no failure events fired; the case is vacuous")
				}
			}
			rep, err := esrp.Recost(sched, esrp.DefaultCostModel())
			if err != nil {
				t.Fatalf("Recost: %v", err)
			}
			if rep.SimTime != res.SimTime {
				t.Errorf("SimTime: replay %.17g, solve %.17g", rep.SimTime, res.SimTime)
			}
			if rep.RecoveryTime != res.RecoveryTime {
				t.Errorf("RecoveryTime: replay %.17g, solve %.17g", rep.RecoveryTime, res.RecoveryTime)
			}
			if rep.BytesSent != res.BytesSent {
				t.Errorf("BytesSent: replay %d, solve %d", rep.BytesSent, res.BytesSent)
			}
			if rep.MsgsSent != res.MsgsSent {
				t.Errorf("MsgsSent: replay %d, solve %d", rep.MsgsSent, res.MsgsSent)
			}
			// Per-event recovery envelopes must match the trace's bit-for-bit:
			// same count per rank, same failure iteration, same [start, end).
			if tr := res.Trace; tr != nil {
				for g := range tr.Envelopes {
					want := tr.Envelopes[g]
					got := rep.Envelopes[g]
					if len(got) != len(want) {
						t.Errorf("rank %d: %d replayed envelopes, trace has %d", g, len(got), len(want))
						continue
					}
					for k := range want {
						if got[k].Iter != want[k].Iter || got[k].Start != want[k].Start || got[k].End != want[k].End {
							t.Errorf("rank %d envelope %d: replay {%d %.17g %.17g}, trace {%d %.17g %.17g}",
								g, k, got[k].Iter, got[k].Start, got[k].End,
								want[k].Iter, want[k].Start, want[k].End)
						}
					}
				}
			}
		})
	}
}

// TestRecordingDoesNotPerturbSolve pins the zero-interference half of the
// contract: a recorded solve's figures equal an unrecorded one's.
func TestRecordingDoesNotPerturbSolve(t *testing.T) {
	rc := replayCases(t)[3] // esrp/multi-event
	res, _ := record(t, rc)
	plain, err := esrp.Solve(rc.cfg)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.SimTime != plain.SimTime || res.BytesSent != plain.BytesSent ||
		res.MsgsSent != plain.MsgsSent || res.RecoveryTime != plain.RecoveryTime ||
		res.Iterations != plain.Iterations {
		t.Fatalf("recording perturbed the solve: recorded %+v, plain %+v", res, plain)
	}
}

// TestRecostUnderSweptMachines checks the point of the exercise: replays
// under different machine models move the modeled runtime the way the LogGP
// arithmetic says they must, without re-running the solve.
func TestRecostUnderSweptMachines(t *testing.T) {
	rc := replayCases(t)[3] // esrp/multi-event
	_, sched := record(t, rc)
	base := esrp.DefaultCostModel()
	ref, err := esrp.Recost(sched, base)
	if err != nil {
		t.Fatalf("Recost: %v", err)
	}
	slow := base
	slow.Latency *= 10
	repSlow, err := esrp.Recost(sched, slow)
	if err != nil {
		t.Fatalf("Recost(10×L): %v", err)
	}
	if repSlow.SimTime <= ref.SimTime {
		t.Errorf("10× latency should slow the replayed solve: %.6g ≤ %.6g", repSlow.SimTime, ref.SimTime)
	}
	if repSlow.BytesSent != ref.BytesSent || repSlow.MsgsSent != ref.MsgsSent {
		t.Errorf("traffic is model-independent; replays disagree: %d/%d vs %d/%d",
			repSlow.BytesSent, repSlow.MsgsSent, ref.BytesSent, ref.MsgsSent)
	}
	fast := base
	fast.FlopTime /= 8
	repFast, err := esrp.Recost(sched, fast)
	if err != nil {
		t.Fatalf("Recost(8× flops): %v", err)
	}
	if repFast.SimTime >= ref.SimTime {
		t.Errorf("8× faster cores should speed the replayed solve: %.6g ≥ %.6g", repFast.SimTime, ref.SimTime)
	}
}

// TestScheduleSerializationRoundTrip: binary and JSON encodings round-trip
// to a schedule whose replay is bit-identical, and re-encoding the decoded
// schedule reproduces the original bytes.
func TestScheduleSerializationRoundTrip(t *testing.T) {
	rc := replayCases(t)[3] // esrp/multi-event: exercises every event kind
	_, sched := record(t, rc)
	ref, err := esrp.Recost(sched, esrp.DefaultCostModel())
	if err != nil {
		t.Fatalf("Recost: %v", err)
	}

	var bin bytes.Buffer
	if err := sched.WriteBinary(&bin); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	first := append([]byte(nil), bin.Bytes()...)
	decoded, err := esrp.ReadScheduleBinary(&bin)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	var again bytes.Buffer
	if err := decoded.WriteBinary(&again); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Errorf("binary encoding is not stable under decode/encode (%d vs %d bytes)", len(first), again.Len())
	}
	repBin, err := esrp.Recost(decoded, esrp.DefaultCostModel())
	if err != nil {
		t.Fatalf("Recost(decoded): %v", err)
	}
	if repBin.SimTime != ref.SimTime || repBin.RecoveryTime != ref.RecoveryTime ||
		repBin.BytesSent != ref.BytesSent || repBin.MsgsSent != ref.MsgsSent {
		t.Errorf("binary round-trip changed the replay: %+v vs %+v", repBin, ref)
	}

	var js bytes.Buffer
	if err := sched.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	fromJSON, err := esrp.ReadScheduleJSON(&js)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	repJSON, err := esrp.Recost(fromJSON, esrp.DefaultCostModel())
	if err != nil {
		t.Fatalf("Recost(json): %v", err)
	}
	if repJSON.SimTime != ref.SimTime || repJSON.RecoveryTime != ref.RecoveryTime ||
		repJSON.BytesSent != ref.BytesSent || repJSON.MsgsSent != ref.MsgsSent {
		t.Errorf("JSON round-trip changed the replay: %+v vs %+v", repJSON, ref)
	}

	if _, err := esrp.ReadScheduleBinary(bytes.NewReader([]byte("notaschedule"))); err == nil {
		t.Errorf("ReadScheduleBinary accepted garbage")
	}
}

// TestScheduleBytesDeterministicAcrossRuns: recording the same solve twice
// yields byte-identical serialized schedules — the view canonicalization
// erases the racy arena-creation order.
func TestScheduleBytesDeterministicAcrossRuns(t *testing.T) {
	rc := replayCases(t)[6] // spares-exhausted: creates sub-communicator views
	_, s1 := record(t, rc)
	_, s2 := record(t, rc)
	var b1, b2 bytes.Buffer
	if err := s1.WriteBinary(&b1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteBinary(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("two recordings of one solve serialize differently (%d vs %d bytes)", b1.Len(), b2.Len())
	}
}

// TestCampaignMachineSweepDeterministicAcrossWorkers: a -sweep-machine
// campaign's full report (cells and machine cells) is byte-identical
// regardless of the worker count, and each machine cell replayed under the
// recording model matches its cell's full solve bit-for-bit.
func TestCampaignMachineSweepDeterministicAcrossWorkers(t *testing.T) {
	a := esrp.Poisson2D(24, 24)
	base := esrp.DefaultCostModel()
	slow := base
	slow.Latency *= 10
	grid := func(workers int) esrp.CampaignGrid {
		return esrp.CampaignGrid{
			Matrices:   []esrp.CampaignMatrix{{Name: "poisson24", A: a}},
			Nodes:      []int{4},
			Strategies: []esrp.Strategy{esrp.StrategyESRP, esrp.StrategyIMCR},
			Ts:         []int{8, 16},
			Phis:       []int{1},
			Seeds:      []int64{1, 2},
			Scenario: esrp.FailureScenario{
				Model: esrp.ScenarioExponential, Horizon: 60, MTBF: 150, MaxEvents: 2,
			},
			Machines: []esrp.CampaignMachine{
				{Name: "default", Model: base},
				{Name: "slow-net", Model: slow},
			},
			Workers: workers,
		}
	}
	rep1, err := esrp.RunCampaign(grid(1))
	if err != nil {
		t.Fatalf("RunCampaign(workers=1): %v", err)
	}
	rep4, err := esrp.RunCampaign(grid(4))
	if err != nil {
		t.Fatalf("RunCampaign(workers=4): %v", err)
	}
	j1, err := json.Marshal(rep1)
	if err != nil {
		t.Fatal(err)
	}
	j4, err := json.Marshal(rep4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j4) {
		t.Errorf("machine-sweep report bytes differ across worker counts (%d vs %d bytes)", len(j1), len(j4))
	}
	if len(rep1.MachineCells) != len(rep1.Cells)*len(rep1.Machines) {
		t.Fatalf("machine cells: got %d, want %d", len(rep1.MachineCells), len(rep1.Cells)*len(rep1.Machines))
	}
	for _, mc := range rep1.MachineCells {
		if mc.Err != "" {
			t.Fatalf("machine cell (%d,%d): %s", mc.Cell, mc.Machine, mc.Err)
		}
		if rep1.Machines[mc.Machine].Name != "default" {
			continue
		}
		c := rep1.Cells[mc.Cell]
		if c.Err != "" {
			t.Fatalf("cell %d: %s", mc.Cell, c.Err)
		}
		if mc.SimTime != c.SimTime || mc.RecoveryTime != c.RecoveryTime || mc.BytesSent != c.BytesSent {
			t.Errorf("cell %d under the recording model: replay (%.17g, %.17g, %d) vs solve (%.17g, %.17g, %d)",
				mc.Cell, mc.SimTime, mc.RecoveryTime, mc.BytesSent, c.SimTime, c.RecoveryTime, c.BytesSent)
		}
	}
}
